package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed generator looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 10)
		if v < 5 || v > 10 {
			t.Fatalf("IntRange(5,10) = %d", v)
		}
	}
	if got := r.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d", got)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for IntRange(2,1)")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(0, 40)
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(29)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child must be deterministic given parent state.
	parent2 := New(31)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloatRange(t *testing.T) {
	r := New(37)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("FloatRange out of bounds: %v", v)
		}
	}
}

func TestUint64Uniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets of the top nibble.
	r := New(41)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	expect := float64(n) / 16
	for i, c := range buckets {
		if math.Abs(float64(c)-expect) > expect*0.05 {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, expect)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
