// Package xrand provides a small, deterministic pseudo-random number
// generator used throughout the simulator and the workload generators.
//
// Reproducibility matters for this repository: every experiment in the paper
// is regenerated from a fixed seed so that EXPERIMENTS.md numbers can be
// reproduced bit-for-bit. The generator is xoshiro256** seeded through
// splitmix64, the combination recommended by its authors; it is not intended
// for cryptographic use.
package xrand

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via splitmix64.
// Any seed, including zero, yields a valid internal state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// FloatRange returns a uniform float64 in [lo, hi).
func (r *RNG) FloatRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator from the current one. The derived
// stream is deterministic given the parent's state, so splitting is itself
// reproducible. Useful for giving each generated job its own stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}
