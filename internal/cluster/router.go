// Package cluster runs many independent scheduling engines — each a full
// abgd server shard with its own journal, SSE stream, and metrics — behind
// one HTTP front door, re-partitioning one machine's P processors across the
// shards at every quantum boundary.
//
// The design is the paper's two-level feedback applied once more,
// hierarchically: jobs report desires to their shard's allocator, each shard
// reports its aggregate desire to the cluster allocator, and the cluster
// allocator runs the same alloc.Multi policies (DEQ by default) over shards
// that the shards run over jobs. A shard therefore behaves exactly like a
// machine whose capacity varies quantum by quantum — a setting the engine
// already handles deterministically — which is what keeps sharded runs
// bit-identically replayable.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"abg/internal/server"
)

// Router picks the shard for one normalized submission. loads[k] is shard
// k's current load (queued + unfinished jobs); implementations must be
// deterministic in (request, loads) so a replayed submission sequence routes
// identically.
type Router interface {
	Route(req server.JobRequest, loads []int) int
	Name() string
}

// routingKey is the stable identity a submission hashes under: the
// idempotency key when present (retries must land on the shard that already
// holds the promise), else the job name, else the generator parameters.
func routingKey(req server.JobRequest) string {
	if req.Key != "" {
		return req.Key
	}
	if req.Name != "" {
		return req.Name
	}
	return fmt.Sprintf("%s/%d/%d/%d", req.Kind, req.Seed, req.Count, req.Width)
}

// HashRing is the default router: consistent hashing over virtual nodes,
// with a least-loaded tiebreak between the two distinct shards that own the
// key's ring neighbourhood. Pure hashing keeps related submissions together
// and is stable as N grows; the two-choice tiebreak bounds the imbalance a
// skewed key population would otherwise produce (power of two choices).
type HashRing struct {
	n     int
	vnode []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// vnodesPerShard spreads each shard around the ring finely enough that the
// arc a shard owns is close to 1/N without making Route's binary search hot.
const vnodesPerShard = 64

// NewHashRing builds a consistent-hash router over n shards.
func NewHashRing(n int) *HashRing {
	if n < 1 {
		panic("cluster: ring needs at least one shard")
	}
	r := &HashRing{n: n, vnode: make([]ringPoint, 0, n*vnodesPerShard)}
	for k := 0; k < n; k++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.vnode = append(r.vnode, ringPoint{hash64(fmt.Sprintf("shard-%d/%d", k, v)), k})
		}
	}
	sort.Slice(r.vnode, func(i, j int) bool { return r.vnode[i].hash < r.vnode[j].hash })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a alone leaves short sequential keys ("job-1", "job-2", …)
	// clustered in one ring neighbourhood — the high bits barely move per
	// trailing digit, so one shard would own the whole key population. The
	// splitmix64 finalizer avalanches every input bit across the word.
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Route implements Router: walk clockwise from the key's hash, collect the
// first two *distinct* shards, and pick the less loaded (ring order breaks
// ties, so the choice is deterministic).
func (r *HashRing) Route(req server.JobRequest, loads []int) int {
	if r.n == 1 {
		return 0
	}
	h := hash64(routingKey(req))
	i := sort.Search(len(r.vnode), func(i int) bool { return r.vnode[i].hash >= h })
	first := r.vnode[i%len(r.vnode)].shard
	second := first
	for j := 1; j < len(r.vnode); j++ {
		if s := r.vnode[(i+j)%len(r.vnode)].shard; s != first {
			second = s
			break
		}
	}
	if second != first && loads[second] < loads[first] {
		return second
	}
	return first
}

// Name implements Router.
func (r *HashRing) Name() string { return fmt.Sprintf("hash-ring(%d×%d)", r.n, vnodesPerShard) }

// RoundRobin routes submissions in rotation, ignoring keys and loads — the
// contrast router for experiments (perfect count balance, no affinity).
// The counter is part of routing state, so replays that re-present the same
// submission sequence still route identically.
type RoundRobin struct {
	n, next int
}

// NewRoundRobin builds a round-robin router over n shards.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic("cluster: round robin needs at least one shard")
	}
	return &RoundRobin{n: n}
}

// Route implements Router. Callers serialise Route calls (the front end
// routes under its own lock), so the rotation needs no internal locking.
func (r *RoundRobin) Route(server.JobRequest, []int) int {
	k := r.next
	r.next = (r.next + 1) % r.n
	return k
}

// Name implements Router.
func (r *RoundRobin) Name() string { return fmt.Sprintf("round-robin(%d)", r.n) }
