package cluster

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"abg/internal/obs"
	"abg/internal/server"
)

// Merged SSE. Each shard's event stream already has exact, crash-stable
// sequence numbers; the cluster must merge N such streams without inventing
// a new global counter that a restart could not reconstruct (the shards
// recover independently, so no total order of past events survives a crash —
// only the per-shard orders do). Event ids on the merged stream are therefore
// *vector* ids: "s0,s1,…,sN-1", the per-shard sequence numbers as of the
// frame. A client resumes by sending the vector back; the hub replays, per
// shard, everything newer than the client's component — exactly the
// single-daemon contract applied component-wise. With one shard the vector
// is a single number, so a one-shard cluster's stream is indistinguishable
// from a plain daemon's.
//
// Merge order within a round is deterministic: shards step concurrently, but
// their taps buffer events and the driver flushes them serially in shard
// order after the round's barrier, so the merged stream is a pure function
// of the submission sequence regardless of worker count.

// frame is one merged-stream item.
type frame struct {
	shard int
	seq   uint64 // per-shard sequence number of this event
	id    string // rendered vector id as of this frame
	data  []byte // marshalled event, shard-tagged when the cluster has >1 shard
}

// shardTap subscribes to one shard's bus, buffering marshalled events until
// the driver flushes them into the merged hub. The payload splice happens at
// capture: `{"shard":K,` replaces the opening brace, tagging every merged
// event with its origin without re-marshalling.
type shardTap struct {
	shard  int
	prefix []byte // nil for a one-shard cluster (payloads stay byte-identical)
	seq    uint64 // per-shard sequence of the last flushed event (driver-owned)

	mu  sync.Mutex
	buf [][]byte
}

func newShardTap(shard, clusterSize int, startSeq uint64) *shardTap {
	t := &shardTap{shard: shard, seq: startSeq}
	if clusterSize > 1 {
		t.prefix = []byte(`{"shard":` + strconv.Itoa(shard) + `,`)
	}
	return t
}

// OnEvent implements obs.Subscriber; called synchronously from the shard's
// engine step (possibly concurrently with other shards' taps, never with
// itself).
func (t *shardTap) OnEvent(e obs.Event) {
	data := server.MarshalEvent(e)
	if t.prefix != nil {
		spliced := make([]byte, 0, len(t.prefix)+len(data)-1)
		spliced = append(spliced, t.prefix...)
		spliced = append(spliced, data[1:]...)
		data = spliced
	}
	t.mu.Lock()
	t.buf = append(t.buf, data)
	t.mu.Unlock()
}

// flush publishes the buffered events in capture order. Only the cluster
// driver calls flush, serially across taps, after the stepping barrier.
func (t *shardTap) flush(h *mergedHub) {
	t.mu.Lock()
	buf := t.buf
	t.buf = nil
	t.mu.Unlock()
	for _, data := range buf {
		t.seq++
		h.publish(t.shard, t.seq, data)
	}
}

// mergedHub is the cluster-level sseHub: vector-id bookkeeping plus the same
// bounded replay ring and non-blocking fan-out semantics as a shard's hub.
type mergedHub struct {
	mu      sync.Mutex
	seqs    []uint64 // latest published per-shard sequence numbers
	clients map[chan frame]struct{}
	ring    []frame
	ringCap int
	closed  bool
	n       atomic.Int64
	dropped atomic.Int64
	evicted atomic.Int64
}

func newMergedHub(shards, ringCap int) *mergedHub {
	return &mergedHub{
		seqs:    make([]uint64, shards),
		clients: make(map[chan frame]struct{}),
		ringCap: ringCap,
	}
}

// setSeq seeds one shard's sequence component at boot (recovery restored the
// shard to this position; its pre-crash events are not re-merged).
func (h *mergedHub) setSeq(shard int, seq uint64) {
	h.mu.Lock()
	h.seqs[shard] = seq
	h.mu.Unlock()
}

func (h *mergedHub) publish(shard int, seq uint64, data []byte) {
	h.mu.Lock()
	h.seqs[shard] = seq
	m := frame{shard: shard, seq: seq, id: renderVector(h.seqs), data: data}
	if len(h.ring) == h.ringCap {
		copy(h.ring, h.ring[1:])
		h.ring = h.ring[:len(h.ring)-1]
		h.evicted.Add(1)
	}
	h.ring = append(h.ring, m)
	for ch := range h.clients {
		select {
		case ch <- m:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// subscribe registers a client that has seen events up to the per-shard
// positions in after (all-zero for a fresh client). Replay and registration
// happen under one lock acquisition, so no frame can fall in between. resync
// reports that some shard's component has already been evicted from the
// ring; the client must refetch absolute state.
func (h *mergedHub) subscribe(buffer int, after []uint64) (replay []frame, ch <-chan frame, resync bool, unsub func()) {
	c := make(chan frame, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, false, func() {}
	}
	// Oldest retained sequence per shard; a shard absent from the ring has
	// published nothing retrievable, so any gap on it forces a resync.
	oldest := make([]uint64, len(h.seqs))
	for i := len(h.ring) - 1; i >= 0; i-- {
		oldest[h.ring[i].shard] = h.ring[i].seq
	}
	for k, a := range after {
		switch {
		case a > h.seqs[k]:
			// Ahead of us: the client saw a shard tail that did not survive.
			resync = true
		case a < h.seqs[k]:
			if oldest[k] == 0 || a+1 < oldest[k] {
				resync = true
			}
		}
	}
	for _, m := range h.ring {
		if m.seq > after[m.shard] {
			replay = append(replay, m)
		}
	}
	h.clients[c] = struct{}{}
	h.n.Store(int64(len(h.clients)))
	var once sync.Once
	return replay, c, resync, func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.clients[c]; ok {
				delete(h.clients, c)
				close(c)
			}
			h.n.Store(int64(len(h.clients)))
			h.mu.Unlock()
		})
	}
}

// vector returns a copy of the current per-shard positions.
func (h *mergedHub) vector() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.seqs...)
}

// total returns the total number of events published across all shards.
func (h *mergedHub) total() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum uint64
	for _, s := range h.seqs {
		sum += s
	}
	return sum
}

// closeAll disconnects every client (end of drain).
func (h *mergedHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.clients {
		delete(h.clients, ch)
		close(ch)
	}
	h.n.Store(0)
}

// renderVector renders per-shard positions as the wire id: "s0,s1,…".
func renderVector(seqs []uint64) string {
	var sb strings.Builder
	for i, s := range seqs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatUint(s, 10))
	}
	return sb.String()
}

// parseVector parses a Last-Event-ID into per-shard positions. A scalar id
// against a one-shard cluster is the degenerate one-component vector, so
// plain-daemon clients interoperate unchanged.
func parseVector(s string, shards int) ([]uint64, bool) {
	parts := strings.Split(s, ",")
	if len(parts) != shards {
		return nil, false
	}
	out := make([]uint64, shards)
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}
