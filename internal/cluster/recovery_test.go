package cluster

import (
	"bytes"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"abg/internal/server"
)

// Per-shard crash recovery: SIGKILL the whole cluster mid-run, reboot it on
// the same journal tree, and the run continues exactly — same results, same
// journal bytes, same event ids — as a cluster that never crashed. The test
// drives rounds by hand (no Start) so the crash point is exact.

// crashWorkload submits a deterministic mix that needs well over three
// rounds to finish, so a three-round crash is genuinely mid-run.
func crashWorkload(t *testing.T, c *Cluster) {
	t.Helper()
	reqs := []server.JobRequest{
		{Kind: "batch", Count: 5, Seed: 31, CL: 18},
		{Kind: "serial", Name: "deep", Quanta: 8},
		{Kind: "serial", Name: "pinned", Quanta: 3, Key: "crash-key"},
		{Kind: "fullpar", Name: "wide", Width: 6, Quanta: 5},
	}
	for i, req := range reqs {
		req.Normalize()
		if _, status, err := c.submit(req, ""); err != nil || status != http.StatusAccepted {
			t.Fatalf("submit %d: status %d err %v", i, status, err)
		}
	}
}

// finish drains a hand-driven cluster to completion.
func finish(t *testing.T, c *Cluster) {
	t.Helper()
	c.Drain()
	c.drain()
	if c.finalErr != nil {
		t.Fatalf("drain: %v", c.finalErr)
	}
}

// shardOutputs captures what recovery must reproduce exactly.
func shardOutputs(t *testing.T, c *Cluster) (statuses [][]server.JobStatusDTO, journals [][]byte, seqs []uint64) {
	t.Helper()
	for _, sh := range c.shards {
		statuses = append(statuses, sh.srv.JobStatuses())
		journals = append(journals, readJournal(t, sh.srv.Recovery().JournalPath))
		seqs = append(seqs, sh.srv.SSESeq())
	}
	return statuses, journals, seqs
}

func TestClusterCrashRecovery(t *testing.T) {
	const shards = 2
	refDir, crashDir := t.TempDir(), t.TempDir()
	cfg := func(dir string) Config {
		return Config{Shards: shards, Shard: shardConfig(dir, "")}
	}

	// Reference: the same run with no crash.
	ref, err := New(cfg(refDir))
	if err != nil {
		t.Fatalf("ref New: %v", err)
	}
	crashWorkload(t, ref)
	for i := 0; i < 3; i++ {
		ref.round(false)
	}
	finish(t, ref)
	refStatuses, refJournals, refSeqs := shardOutputs(t, ref)

	// Crashed run: identical up to round 3, then SIGKILL every shard.
	c1, err := New(cfg(crashDir))
	if err != nil {
		t.Fatalf("c1 New: %v", err)
	}
	crashWorkload(t, c1)
	for i := 0; i < 3; i++ {
		c1.round(false)
	}
	keyShard := c1.keys["crash-key"]
	for _, sh := range c1.shards {
		sh.srv.Kill()
	}

	// Reboot on the same journal tree.
	c2, err := New(cfg(crashDir))
	if err != nil {
		t.Fatalf("recovery New: %v", err)
	}
	for k, sh := range c2.shards {
		rec := sh.srv.Recovery()
		if !rec.Recovered {
			t.Errorf("shard %d: not recovered", k)
		}
		if rec.ReplayedRecords == 0 {
			t.Errorf("shard %d: no records replayed", k)
		}
	}
	// Routing affinity survives the crash: the recovered key table pins the
	// keyed job's retries to the shard that journaled its promise...
	if got, ok := c2.keys["crash-key"]; !ok || got != keyShard {
		t.Errorf("recovered key affinity: shard %d ok=%v, want %d", got, ok, keyShard)
	}
	// ...and the retry itself deduplicates instead of double-admitting.
	dupReq := server.JobRequest{Kind: "serial", Name: "pinned", Quanta: 3, Key: "crash-key"}
	dupReq.Normalize()
	dup, status, err := c2.submit(dupReq, "")
	if err != nil || status != http.StatusOK || dup.State != "duplicate" {
		t.Fatalf("post-crash retry: state %q status %d err %v", dup.State, status, err)
	}
	if dup.Shard != keyShard {
		t.Errorf("post-crash retry routed to shard %d, want %d", dup.Shard, keyShard)
	}

	// The recovered cluster finishes the run bit-identically.
	finish(t, c2)
	gotStatuses, gotJournals, gotSeqs := shardOutputs(t, c2)
	for k := 0; k < shards; k++ {
		if !reflect.DeepEqual(gotStatuses[k], refStatuses[k]) {
			t.Errorf("shard %d results diverge after recovery:\ngot:  %+v\nwant: %+v",
				k, gotStatuses[k], refStatuses[k])
		}
		if len(gotStatuses[k]) == 0 {
			t.Errorf("shard %d finished with no jobs — routing sent it nothing", k)
		}
		if !bytes.Equal(gotJournals[k], refJournals[k]) {
			t.Errorf("shard %d journal diverges after recovery: %d vs %d bytes (first diff %d)",
				k, len(gotJournals[k]), len(refJournals[k]), firstDiff(gotJournals[k], refJournals[k]))
		}
		if gotSeqs[k] != refSeqs[k] {
			t.Errorf("shard %d SSE seq %d after recovery, want %d", k, gotSeqs[k], refSeqs[k])
		}
	}
}

// TestClusterShardCountGuard: booting a journal tree with fewer shards than
// wrote it must fail loudly instead of stranding the extra shards' jobs.
func TestClusterShardCountGuard(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Shards: 2, Shard: shardConfig(dir, "")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	finish(t, c)

	if _, err := New(Config{Shards: 1, Shard: shardConfig(dir, "")}); err == nil {
		t.Fatal("booting 1 shard over a 2-shard journal tree succeeded; want error")
	} else if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The original shard count is fine.
	if _, err := New(Config{Shards: 2, Shard: shardConfig(dir, "")}); err != nil {
		t.Fatalf("rebooting with the original shard count: %v", err)
	}
}
