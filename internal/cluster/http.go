package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"abg/internal/cli"
	"abg/internal/obs"
	"abg/internal/obs/promexport"
	"abg/internal/server"
)

// The front door speaks the same API as a single daemon — clients built
// against abgd (server.Client, abgload, curl scripts) work unchanged — with
// cluster-wide semantics: job ids are global, /api/v1/state aggregates, the
// event stream merges, /metrics renders every shard's families under a
// shard label, and /api/v1/shards exposes the routing and allocation state
// that has no single-daemon counterpart.
//
// Global job ids interleave the shard index into the shard-local id:
// global = local*N + shard, so shard = global mod N. With one shard the
// mapping is the identity — a one-shard cluster's ids, acks, events and
// journal bytes are exactly a plain daemon's.

func (c *Cluster) globalID(local, shard int) int { return local*len(c.shards) + shard }

func (c *Cluster) splitID(global int) (local, shard int, ok bool) {
	if global < 0 {
		return 0, 0, false
	}
	n := len(c.shards)
	return global / n, global % n, true
}

func (c *Cluster) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", c.instrument("/api/v1/jobs", c.handleSubmit))
	mux.HandleFunc("GET /api/v1/jobs", c.instrument("/api/v1/jobs", c.handleJobs))
	mux.HandleFunc("GET /api/v1/jobs/{id}", c.instrument("/api/v1/jobs/{id}", c.handleJob))
	mux.HandleFunc("GET /api/v1/jobs/{id}/timeline", c.instrument("/api/v1/jobs/{id}/timeline", c.handleTimeline))
	mux.HandleFunc("GET /api/v1/traces/{id}", c.instrument("/api/v1/traces/{id}", c.handleTrace))
	mux.HandleFunc("GET /api/v1/state", c.instrument("/api/v1/state", c.handleState))
	mux.HandleFunc("GET /api/v1/shards", c.instrument("/api/v1/shards", c.handleShards))
	mux.HandleFunc("GET /api/v1/events", c.instrument("/api/v1/events", c.handleEvents))
	mux.HandleFunc("POST /api/v1/drain", c.instrument("/api/v1/drain", c.handleDrain))
	mux.HandleFunc("GET /api/v1/recovery", c.instrument("/api/v1/recovery", c.handleRecovery))
	mux.HandleFunc("GET /api/v1/version", c.instrument("/api/v1/version", c.handleVersion))
	mux.HandleFunc("GET /healthz", c.instrument("/healthz", c.handleHealth))
	mux.HandleFunc("GET /metrics", c.instrument("/metrics", c.handleMetrics))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorDTO struct {
	Error string `json:"error"`
}

// statusRecorder captures the response code for the HTTP metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// httpBuckets match the daemon's: sub-millisecond reads to multi-second
// drain waits.
var httpBuckets = obs.ExponentialBuckets(0.001, 4, 7)

// instrument wraps one front-door route with the same abgd_http_* families a
// daemon exposes, in the cluster registry (no shard label — this is the
// front door's own traffic).
func (c *Cluster) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reg := c.metrics.reg
	hist := reg.Histogram(
		promexport.Name("abgd_http_request_seconds", "route", route), httpBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		reg.Counter(promexport.Name("abgd_http_requests_total",
			"route", route, "method", r.Method, "code", strconv.Itoa(code))).Inc()
		hist.Observe(time.Since(start).Seconds())
	}
}

// SubmitResponse is the front door's ack: the daemon's ack with global ids
// plus the shard the submission landed on.
type SubmitResponse struct {
	server.SubmitResponse
	Shard int `json:"shard"`
}

func (c *Cluster) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorDTO{"draining: admission closed"})
		return
	}
	var req server.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad request body: " + err.Error()})
		return
	}
	if err := req.Normalize(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{err.Error()})
		return
	}
	resp, status, err := c.submit(req, r.Header.Get(server.TraceHeader))
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorDTO{err.Error()})
		return
	}
	writeJSON(w, status, resp)
}

// submit routes one normalized request and runs the owning shard's admission
// path, remapping the acked ids to global.
func (c *Cluster) submit(req server.JobRequest, traceID string) (SubmitResponse, int, error) {
	k := c.route(req)
	resp, status, err := c.shards[k].srv.SubmitLocal(req, traceID)
	if err != nil {
		return SubmitResponse{}, status, fmt.Errorf("shard %d: %w", k, err)
	}
	if resp.State == "queued" {
		c.shards[k].routed.Add(int64(len(resp.IDs)))
		c.metrics.routed[k].Add(int64(len(resp.IDs)))
		c.notify()
	}
	// The shard's response aliases the slice its idempotency map keeps (a
	// duplicate retry echoes that stored slice), so remap a copy — mutating
	// it in place would global-map the stored local ids once per retry.
	global := make([]int, len(resp.IDs))
	for i, id := range resp.IDs {
		global[i] = c.globalID(id, k)
	}
	resp.IDs = global
	return SubmitResponse{SubmitResponse: resp, Shard: k}, status, nil
}

// route picks the submission's shard: idempotency-key affinity first (a
// retry must land on the shard already holding the promise), the router
// otherwise. Routing is serialised so the (request, loads) sequence — and
// therefore the placement — is a pure function of the submission order.
func (c *Cluster) route(req server.JobRequest) int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if req.Key != "" {
		if k, ok := c.keys[req.Key]; ok {
			return k
		}
	}
	loads := make([]int, len(c.shards))
	for i, sh := range c.shards {
		loads[i] = sh.srv.Load()
	}
	k := c.router.Route(req, loads)
	if req.Key != "" {
		c.keys[req.Key] = k
	}
	return k
}

// JobDTO is a daemon job status plus the shard that owns the job.
type JobDTO struct {
	server.JobStatusDTO
	Shard int `json:"shard"`
}

func (c *Cluster) handleJobs(w http.ResponseWriter, _ *http.Request) {
	var out []JobDTO
	for k, sh := range c.shards {
		for _, dto := range sh.srv.JobStatuses() {
			dto.ID = c.globalID(dto.ID, k)
			out = append(out, JobDTO{JobStatusDTO: dto, Shard: k})
		}
	}
	// Global ids interleave round-robin across shards, so sorting by id
	// reads as submission-ish order rather than shard-grouped.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if out == nil {
		out = []JobDTO{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Cluster) jobFromPath(w http.ResponseWriter, r *http.Request) (local, shard int, ok bool) {
	g, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad job id: " + r.PathValue("id")})
		return 0, 0, false
	}
	local, shard, ok = c.splitID(g)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("no job %d", g)})
	}
	return local, shard, ok
}

func (c *Cluster) handleJob(w http.ResponseWriter, r *http.Request) {
	local, k, ok := c.jobFromPath(w, r)
	if !ok {
		return
	}
	dto, ok := c.shards[k].srv.LookupJob(local)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("no job %d", c.globalID(local, k))})
		return
	}
	dto.History = c.shards[k].srv.JobHistory(local)
	dto.ID = c.globalID(local, k)
	writeJSON(w, http.StatusOK, JobDTO{JobStatusDTO: dto, Shard: k})
}

func (c *Cluster) handleTimeline(w http.ResponseWriter, r *http.Request) {
	local, k, ok := c.jobFromPath(w, r)
	if !ok {
		return
	}
	tl, ok := c.shards[k].srv.JobTimeline(local)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("no job %d", c.globalID(local, k))})
		return
	}
	tl.ID = c.globalID(local, k)
	writeJSON(w, http.StatusOK, tl)
}

func (c *Cluster) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, sh := range c.shards {
		if dto, ok := sh.srv.TraceByID(id); ok {
			writeJSON(w, http.StatusOK, dto)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, errorDTO{"no trace " + id})
}

// InfoDTO is the cluster sub-object of the aggregated state.
type InfoDTO struct {
	Shards     int    `json:"shards"`
	Policy     string `json:"policy"`
	Router     string `json:"router"`
	Workers    int    `json:"workers,omitempty"`
	EventID    string `json:"eventId"`
	Rebalances int64  `json:"rebalances"`
}

// StateDTO aggregates the shards into one daemon-shaped state (so
// server.Client.State decodes it) plus the cluster sub-object.
type StateDTO struct {
	server.StateDTO
	Cluster InfoDTO `json:"cluster"`
}

func (c *Cluster) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.state())
}

func (c *Cluster) state() StateDTO {
	st := StateDTO{
		Cluster: InfoDTO{
			Shards:     len(c.shards),
			Policy:     c.policy.Name(),
			Router:     c.router.Name(),
			Workers:    c.cfg.Workers,
			EventID:    renderVector(c.hub.vector()),
			Rebalances: c.rebalances.Load(),
		},
	}
	var respWeighted float64
	for _, sh := range c.shards {
		s := sh.srv.Snapshot()
		if st.Scheduler == "" {
			st.Scheduler, st.Clock, st.Fault = s.Scheduler, s.Clock, s.Fault
		}
		st.Submitted += s.Submitted
		st.Queued += s.Queued
		st.Pending += s.Pending
		st.Running += s.Running
		st.Completed += s.Completed
		st.QueueLimit += s.QueueLimit
		st.TotalWaste += s.TotalWaste
		respWeighted += s.MeanResponse * float64(s.Completed)
		if s.Boundary > st.Boundary {
			st.Boundary = s.Boundary
		}
		if s.Now > st.Now {
			st.Now = s.Now
		}
		if s.QuantaElapsed > st.QuantaElapsed {
			st.QuantaElapsed = s.QuantaElapsed
		}
		if s.Makespan > st.Makespan {
			st.Makespan = s.Makespan
		}
		if s.Error != "" && st.Error == "" {
			st.Error = s.Error
		}
	}
	if st.Completed > 0 {
		st.MeanResponse = respWeighted / float64(st.Completed)
	}
	st.Version = cli.Version
	st.P = c.cfg.Shard.P
	st.L = c.cfg.Shard.L
	st.Draining = c.draining.Load()
	st.SSEClients = c.hub.n.Load()
	st.SSEDropped = c.hub.dropped.Load()
	st.LastEventID = c.hub.total()
	st.UptimeSec = time.Since(c.started).Seconds()
	return st
}

// ShardDTO is one row of /api/v1/shards: the routing and allocation state
// of one engine shard.
type ShardDTO struct {
	Shard int `json:"shard"`
	// Desire and Share are the shard's aggregate processor request and the
	// cluster allocator's grant, as of the last completed round.
	Desire int `json:"desire"`
	Share  int `json:"share"`
	// Routed counts jobs this process routed here; Submitted counts every
	// job the shard has ever acked (it survives restarts, Routed does not).
	Routed    int64  `json:"routed"`
	Submitted int    `json:"submitted"`
	Queued    int    `json:"queued"`
	Load      int    `json:"load"`
	Boundary  int    `json:"boundary"`
	Completed int    `json:"completed"`
	SSESeq    uint64 `json:"sseSeq"`
	Health    string `json:"health"`
	// Epoch is the shard's leadership epoch. Shards of one cluster process
	// never elect (there is no shard-level group), but journals carry the
	// epoch per record, so a shard journal lifted into a replication group
	// later keeps fencing exactly; surfacing it here keeps the operator view
	// uniform with /api/v1/replication.
	Epoch uint32 `json:"epoch"`
}

func (c *Cluster) handleShards(w http.ResponseWriter, _ *http.Request) {
	out := make([]ShardDTO, len(c.shards))
	for k, sh := range c.shards {
		s := sh.srv.Snapshot()
		desire, share := sh.roundStats()
		h, _ := sh.srv.Health()
		out[k] = ShardDTO{
			Shard: k, Desire: desire, Share: share,
			Routed: sh.routed.Load(), Submitted: s.Submitted,
			Queued: s.Queued, Load: sh.srv.Load(),
			Boundary: s.Boundary, Completed: s.Completed,
			SSESeq: sh.srv.SSESeq(), Health: h.Status,
			Epoch: sh.srv.Epoch(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Cluster) handleDrain(w http.ResponseWriter, r *http.Request) {
	c.Drain()
	wait := r.URL.Query().Get("wait")
	done := false
	if wait == "1" || wait == "true" {
		select {
		case <-c.drained:
			done = true
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, map[string]bool{"draining": true, "done": done})
}

// RecoveryDTO lists every shard's boot-time recovery report.
type RecoveryDTO struct {
	Shards []server.RecoveryDTO `json:"shards"`
}

func (c *Cluster) handleRecovery(w http.ResponseWriter, _ *http.Request) {
	dto := RecoveryDTO{Shards: make([]server.RecoveryDTO, len(c.shards))}
	for k, sh := range c.shards {
		dto.Shards[k] = sh.srv.Recovery()
	}
	writeJSON(w, http.StatusOK, dto)
}

func (c *Cluster) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version": cli.Version,
		"go":      runtime.Version(),
		"cluster": strconv.Itoa(len(c.shards)),
	})
}

// HealthDTO is the cluster health verdict: the worst shard status, with
// every shard's reasons attributed.
type HealthDTO struct {
	Status   string             `json:"status"`
	Draining bool               `json:"draining,omitempty"`
	Shards   []server.HealthDTO `json:"shards"`
	Reasons  []string           `json:"reasons,omitempty"`
}

func healthRank(status string) int {
	switch status {
	case "ok":
		return 0
	case "degraded":
		return 1
	default: // failing
		return 2
	}
}

func (c *Cluster) handleHealth(w http.ResponseWriter, _ *http.Request) {
	dto := HealthDTO{Status: "ok", Draining: c.draining.Load()}
	worst := 0
	for k, sh := range c.shards {
		h, _ := sh.srv.Health()
		dto.Shards = append(dto.Shards, h)
		if r := healthRank(h.Status); r > worst {
			worst = r
			dto.Status = h.Status
		}
		for _, reason := range h.Reasons {
			dto.Reasons = append(dto.Reasons, fmt.Sprintf("shard %d: %s", k, reason))
		}
	}
	code := http.StatusOK
	if worst > 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, dto)
}

// handleMetrics renders the cluster registry plus every shard's registry
// under a shard label, in one exposition: the sim_* and abgd_* families
// appear once per shard, distinguished by shard="k", alongside the
// cluster-only abgd_cluster_* families.
func (c *Cluster) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	c.sample()
	sets := make([]promexport.Set, 0, len(c.shards)+1)
	sets = append(sets, promexport.Set{Reg: c.metrics.reg})
	for k, sh := range c.shards {
		sh.srv.SampleMetrics()
		sets = append(sets, promexport.Set{
			Reg:    sh.srv.MetricsRegistry(),
			Labels: []string{"shard", strconv.Itoa(k)},
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = promexport.WriteSets(w, sets...)
}

// handleEvents streams the merged event feed: every shard's SSE events in
// the deterministic round-merge order, with vector ids (see sse.go). The
// Last-Event-ID contract is the single-daemon one applied per component.
func (c *Cluster) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDTO{"streaming unsupported"})
		return
	}
	after := make([]uint64, len(c.shards))
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("lastEventID")
	}
	if lastID != "" {
		vec, ok := parseVector(lastID, len(c.shards))
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorDTO{"bad Last-Event-ID: " + lastID})
			return
		}
		after = vec
	}
	replay, ch, resync, unsubscribe := c.hub.subscribe(1024, after)
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n: abgd event stream (%s)\n\n", 1000, c.scheduler())
	flusher.Flush()
	if ch == nil { // hub already closed (drained)
		return
	}
	if resync {
		fmt.Fprintf(w, "id: %s\nevent: resync\ndata: {\"reason\":\"replay ring evicted, refetch /api/v1/state\"}\n\n",
			renderVector(c.hub.vector()))
	}
	for _, m := range replay {
		if _, err := fmt.Fprintf(w, "id: %s\ndata: %s\n\n", m.id, m.data); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case m, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %s\ndata: %s\n\n", m.id, m.data); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// scheduler names the shards' scheduler (all shards share the template).
func (c *Cluster) scheduler() string {
	if c.cfg.Shard.Scheduler == "" {
		return "abg"
	}
	return c.cfg.Shard.Scheduler
}
