package cluster

import (
	"fmt"
	"testing"

	"abg/internal/server"
)

func req(key, name string) server.JobRequest {
	return server.JobRequest{Kind: "serial", Name: name, Key: key}
}

func TestHashRingDeterministic(t *testing.T) {
	r1, r2 := NewHashRing(4), NewHashRing(4)
	loads := []int{3, 1, 4, 1}
	for i := 0; i < 100; i++ {
		q := req("", fmt.Sprintf("job-%d", i))
		a, b := r1.Route(q, loads), r2.Route(q, loads)
		if a != b {
			t.Fatalf("job-%d: rings disagree (%d vs %d)", i, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("job-%d: shard %d out of range", i, a)
		}
		if again := r1.Route(q, loads); again != a {
			t.Fatalf("job-%d: unstable (%d then %d)", i, a, again)
		}
	}
}

func TestHashRingDistribution(t *testing.T) {
	const shards, jobs = 4, 2000
	r := NewHashRing(shards)
	loads := make([]int, shards) // all equal: pure hash placement
	counts := make([]int, shards)
	for i := 0; i < jobs; i++ {
		counts[r.Route(req("", fmt.Sprintf("key-%d", i)), loads)]++
	}
	for k, n := range counts {
		// 64 vnodes per shard keeps the spread loose but bounded; a shard
		// receiving under 10% or over 50% of a uniform keyspace means the
		// ring is broken, not merely unlucky.
		if n < jobs/10 || n > jobs/2 {
			t.Errorf("shard %d got %d/%d jobs — ring badly unbalanced: %v", k, n, jobs, counts)
		}
	}
}

func TestHashRingKeyAffinity(t *testing.T) {
	r := NewHashRing(8)
	loads := make([]int, 8)
	// The routing key prefers the idempotency key: the same key always lands
	// on the same shard regardless of the rest of the request.
	a := r.Route(req("stable-key", "first"), loads)
	b := r.Route(req("stable-key", "second"), loads)
	if a != b {
		t.Fatalf("same key routed to %d then %d", a, b)
	}
}

func TestHashRingLeastLoadedTiebreak(t *testing.T) {
	const shards = 4
	r := NewHashRing(shards)
	even := make([]int, shards)
	q := req("", "tiebreak-job")
	home := r.Route(q, even)
	// Overload the home shard: the ring must spill to its clockwise
	// neighbour rather than pile on.
	skew := make([]int, shards)
	skew[home] = 1000
	alt := r.Route(q, skew)
	if alt == home {
		t.Fatalf("overloaded home shard %d still chosen", home)
	}
	// And the spill target is itself stable.
	if again := r.Route(q, skew); again != alt {
		t.Fatalf("spill unstable: %d then %d", alt, again)
	}
}

func TestRoundRobin(t *testing.T) {
	r := NewRoundRobin(3)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Route(server.JobRequest{}, nil))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}
