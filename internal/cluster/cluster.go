package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"abg/internal/alloc"
	"abg/internal/fault"
	"abg/internal/obs"
	"abg/internal/obs/promexport"
	"abg/internal/parallel"
	"abg/internal/server"
)

// Config assembles a cluster: N engine shards built from one shard template
// plus the cluster-level routing and allocation policies.
type Config struct {
	// Addr is the front door's listen address.
	Addr string
	// Shards is the number of engine shards (≥ 1).
	Shards int
	// Shard is the template every shard is built from. Addr, Bus, Metrics,
	// Capacity and FollowURL are owned by the cluster and must be zero; P is
	// the *total* machine the cluster partitions; JournalDir, if set, gains
	// a shard-<k> subdirectory per shard.
	Shard server.Config
	// Policy re-partitions the machine across shards each round by feeding
	// the shards' aggregate desires through an alloc.Multi — the same
	// policies jobs are allotted with. Default dynamic equi-partitioning.
	Policy alloc.Multi
	// Router picks the shard for each submission. Default NewHashRing(Shards).
	Router Router
	// Workers bounds the goroutines stepping shards within one round
	// (0 = one per CPU). Purely an execution knob: results, journals and
	// the merged event stream are identical at every setting.
	Workers int
	// EventRing bounds the merged SSE replay ring (default 4096).
	EventRing int
	// Metrics receives the cluster-level abgd_cluster_* families and the
	// front door's HTTP metrics; a private registry is created when nil.
	// Shard registries stay private per shard and are rendered at /metrics
	// under a shard label.
	Metrics *obs.Registry
}

// shard is one engine shard plus its cluster-side bookkeeping.
type shard struct {
	srv *server.Server
	bus *obs.Bus
	tap *shardTap

	routed atomic.Int64 // submissions (jobs) routed here, this process

	// Round telemetry, written by the driver, read by /api/v1/shards.
	mu     sync.Mutex
	desire int
	share  int
}

func (sh *shard) roundStats() (desire, share int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.desire, sh.share
}

// Cluster is N shards behind one front door.
type Cluster struct {
	cfg    Config
	shards []*shard
	policy alloc.Multi
	router Router
	hub    *mergedHub
	log    *slog.Logger

	routeMu sync.Mutex
	keys    map[string]int // idempotency key → shard (routing affinity)

	driveMu    sync.Mutex // serialises rounds (driver) with the final drain
	lastShares []int
	rebalances atomic.Int64

	draining atomic.Bool
	finalErr error // first shard failure, set before drained closes
	wake     chan struct{}
	drained  chan struct{}
	stopped  chan struct{}
	drainOne sync.Once
	stopOne  sync.Once

	metrics *clusterMetrics
	started time.Time
	ln      net.Listener
	hsrv    *http.Server
}

// New builds the shards and the front door. Each shard is a complete abgd
// server — journal, SSE hub, metrics, recovery — that is never Start()ed;
// the cluster drives it through the server package's external-drive API.
func New(cfg Config) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: needs at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Shard.Addr != "" || cfg.Shard.Bus != nil || cfg.Shard.Metrics != nil ||
		cfg.Shard.Capacity != nil || cfg.Shard.FollowURL != "" {
		return nil, fmt.Errorf("cluster: shard template must leave Addr, Bus, Metrics, Capacity and FollowURL unset")
	}
	if cfg.EventRing == 0 {
		cfg.EventRing = 4096
	}
	if cfg.Policy == nil {
		cfg.Policy = alloc.DynamicEquiPartition{}
	}
	if cfg.Router == nil {
		cfg.Router = NewHashRing(cfg.Shards)
	}
	plan, err := fault.ParseSpec(cfg.Shard.FaultSpec, cfg.Shard.P)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Shard.JournalDir != "" {
		// Booting N shards over a journal tree written by more than N would
		// silently strand the extra shards' acked jobs.
		extra := filepath.Join(cfg.Shard.JournalDir, shardDirName(cfg.Shards))
		if _, err := os.Stat(extra); err == nil {
			return nil, fmt.Errorf("cluster: journal dir %s holds more shards than -cluster %d; boot with the original shard count",
				cfg.Shard.JournalDir, cfg.Shards)
		}
	}
	c := &Cluster{
		cfg:     cfg,
		policy:  cfg.Policy,
		router:  cfg.Router,
		hub:     newMergedHub(cfg.Shards, cfg.EventRing),
		log:     obs.Component("cluster"),
		keys:    make(map[string]int),
		wake:    make(chan struct{}, 1),
		drained: make(chan struct{}),
		stopped: make(chan struct{}),
		started: time.Now(),
	}
	c.metrics = newClusterMetrics(cfg.Metrics, cfg.Shards)
	c.metrics.shards.Set(int64(cfg.Shards))
	for k := 0; k < cfg.Shards; k++ {
		scfg := cfg.Shard
		scfg.Bus = obs.NewBus()
		if cfg.Shards > 1 {
			// Each shard's capacity is the cluster-assigned share, clamped by
			// the fault plan's machine-wide availability. A one-shard cluster
			// installs nothing: the shard owns the whole machine, and its
			// journal stays byte-identical to a plain daemon's.
			scfg.Capacity = server.NewShareTable(cfg.Shard.P, plan.Capacity)
		}
		if scfg.JournalDir != "" {
			scfg.JournalDir = filepath.Join(scfg.JournalDir, shardDirName(k))
		}
		srv, err := server.New(scfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", k, err)
		}
		sh := &shard{srv: srv, bus: scfg.Bus}
		// The tap attaches after New, so recovery's replayed events — already
		// renumbered exactly by the shard's own hub — are not re-merged; the
		// merged stream resumes from the shard's recovered position.
		sh.tap = newShardTap(k, cfg.Shards, srv.SSESeq())
		c.hub.setSeq(k, srv.SSESeq())
		scfg.Bus.Subscribe(sh.tap)
		c.shards = append(c.shards, sh)
	}
	// Routing affinity survives a restart: re-pin every recovered
	// idempotency key to the shard that journaled it.
	for k, sh := range c.shards {
		for key := range sh.srv.IdemKeys() {
			c.keys[key] = k
		}
	}
	c.lastShares = make([]int, cfg.Shards)
	for k := range c.lastShares {
		c.lastShares[k] = -1 // first assignment always counts as a rebalance
	}
	return c, nil
}

func shardDirName(k int) string { return "shard-" + strconv.Itoa(k) }

// Start binds the front door and launches the cluster's quantum-clock
// driver. Cancelling ctx initiates a graceful drain.
func (c *Cluster) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	c.ln = ln
	c.started = time.Now()
	c.hsrv = &http.Server{Handler: c.mux(), ReadHeaderTimeout: 5 * time.Second}
	go c.drive(ctx)
	go func() {
		if err := c.hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			c.log.Error("cluster http server failed", "err", err)
		}
	}()
	c.log.Info("abgd cluster listening",
		"addr", ln.Addr().String(), "shards", c.cfg.Shards,
		"P", c.cfg.Shard.P, "policy", c.policy.Name(), "router", c.router.Name(),
		"clock", string(c.cfg.Shard.Clock))
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (c *Cluster) Addr() string {
	if c.ln == nil {
		return c.cfg.Addr
	}
	return c.ln.Addr().String()
}

// drive is the cluster's quantum clock: the single goroutine that advances
// every shard, mirroring a single daemon's driver — wall mode runs one round
// per tick, virtual mode fast-forwards while any shard has work and parks
// while the cluster is empty.
func (c *Cluster) drive(ctx context.Context) {
	defer c.closeStopped()
	var tick *time.Ticker
	if c.cfg.Shard.Clock == server.ClockWall {
		tick = time.NewTicker(c.cfg.Shard.Tick)
		defer tick.Stop()
	}
	for {
		if c.draining.Load() {
			break
		}
		if c.anyFatal() != nil {
			// A wedged shard cannot make progress; drain the healthy ones
			// and shut down instead of serving a partially dead cluster.
			c.Drain()
			continue
		}
		switch c.cfg.Shard.Clock {
		case server.ClockWall:
			select {
			case <-ctx.Done():
				c.Drain()
			case <-tick.C:
				c.round(true)
			case <-c.wake:
			}
		default: // virtual
			if c.anyNeedsSteps() {
				c.round(false)
				continue
			}
			select {
			case <-ctx.Done():
				c.Drain()
			case <-c.wake:
			}
		}
	}
	c.drain()
	c.hub.closeAll()
	c.closeDrained()
	c.log.Info("cluster drain complete", "shards", c.cfg.Shards)
}

// round runs one cluster quantum: collect each shard's aggregate desire,
// re-partition the machine with the cluster allocator, pin the shares, step
// every shard concurrently, then flush the shards' event taps into the
// merged stream serially in shard order (the barrier between stepping and
// flushing is what makes the merge order deterministic at any worker count).
func (c *Cluster) round(idleOK bool) {
	c.driveMu.Lock()
	defer c.driveMu.Unlock()
	n := len(c.shards)
	if n > 1 {
		desires := make([]int, n)
		for k, sh := range c.shards {
			desires[k] = sh.srv.AggregateDesire()
		}
		shares := c.policy.Allot(desires, c.cfg.Shard.P)
		for k, sh := range c.shards {
			sh.srv.SetShare(shares[k])
			sh.mu.Lock()
			sh.desire, sh.share = desires[k], shares[k]
			sh.mu.Unlock()
		}
		if !equalInts(shares, c.lastShares) {
			c.rebalances.Add(1)
			c.metrics.rebalances.Inc()
			copy(c.lastShares, shares)
		}
	}
	parallel.ForEachN(n, c.cfg.Workers, func(k int) {
		c.shards[k].srv.StepExternal(idleOK)
	})
	for _, sh := range c.shards {
		sh.tap.flush(c.hub)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// anyNeedsSteps reports whether any shard still has steppable work.
func (c *Cluster) anyNeedsSteps() bool {
	for _, sh := range c.shards {
		if sh.srv.NeedsSteps() {
			return true
		}
	}
	return false
}

// anyFatal returns the first shard fatal error, if any.
func (c *Cluster) anyFatal() error {
	for k, sh := range c.shards {
		if err := sh.srv.Fatal(); err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
	}
	return nil
}

// Drain initiates a graceful cluster drain: admission closes on the front
// door and on every shard (each journals the drain command, so restarted
// shards finish draining instead of reopening admission). Idempotent.
func (c *Cluster) Drain() {
	if c.draining.CompareAndSwap(false, true) {
		c.log.Info("cluster drain initiated")
		for _, sh := range c.shards {
			sh.srv.Drain()
		}
	}
	c.notify()
}

// drain runs rounds until no shard has steppable work, then finishes every
// shard: final admissions, engine drain, journal sync and close, SSE hub
// close. Runs on the driver goroutine after the main loop exits.
func (c *Cluster) drain() {
	for _, sh := range c.shards {
		sh.srv.DrainEngine()
	}
	for c.anyNeedsSteps() {
		c.round(false)
	}
	for k, sh := range c.shards {
		if err := sh.srv.FinishExternal(); err != nil && c.finalErr == nil {
			c.finalErr = fmt.Errorf("shard %d: %w", k, err)
		}
		// FinishExternal may execute straggler quanta; merge their events.
		sh.tap.flush(c.hub)
	}
}

// Wait blocks until the cluster has fully drained, then shuts the front
// door down and reports the first shard failure, if any.
func (c *Cluster) Wait() error {
	<-c.drained
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if c.hsrv != nil {
		if err := c.hsrv.Shutdown(shutdownCtx); err != nil {
			c.hsrv.Close()
		}
	}
	return c.finalErr
}

// notify wakes the driver loop (non-blocking).
func (c *Cluster) notify() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *Cluster) closeDrained() { c.drainOne.Do(func() { close(c.drained) }) }
func (c *Cluster) closeStopped() { c.stopOne.Do(func() { close(c.stopped) }) }

// clusterMetrics is the cluster-level registry content: topology, routing,
// and allocation families, labelled per shard where that makes sense.
type clusterMetrics struct {
	reg        *obs.Registry
	shards     *obs.Gauge
	rebalances *obs.Counter
	routed     []*obs.Counter // abgd_cluster_routed_jobs_total{shard}
	queueDepth []*obs.Gauge   // abgd_cluster_queue_depth{shard}
	desire     []*obs.Gauge   // abgd_cluster_shard_desire{shard}
	share      []*obs.Gauge   // abgd_cluster_shard_share{shard}
	load       []*obs.Gauge   // abgd_cluster_shard_load{shard}
}

func newClusterMetrics(reg *obs.Registry, shards int) *clusterMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &clusterMetrics{
		reg:        reg,
		shards:     reg.Gauge("abgd_cluster_shards"),
		rebalances: reg.Counter("abgd_cluster_rebalances_total"),
	}
	for k := 0; k < shards; k++ {
		label := strconv.Itoa(k)
		m.routed = append(m.routed, reg.Counter(promexport.Name("abgd_cluster_routed_jobs_total", "shard", label)))
		m.queueDepth = append(m.queueDepth, reg.Gauge(promexport.Name("abgd_cluster_queue_depth", "shard", label)))
		m.desire = append(m.desire, reg.Gauge(promexport.Name("abgd_cluster_shard_desire", "shard", label)))
		m.share = append(m.share, reg.Gauge(promexport.Name("abgd_cluster_shard_share", "shard", label)))
		m.load = append(m.load, reg.Gauge(promexport.Name("abgd_cluster_shard_load", "shard", label)))
	}
	return m
}

// sample refreshes the scrape-sampled cluster gauges.
func (c *Cluster) sample() {
	for k, sh := range c.shards {
		desire, share := sh.roundStats()
		c.metrics.queueDepth[k].Set(int64(sh.srv.QueueDepth()))
		c.metrics.desire[k].Set(int64(desire))
		c.metrics.share[k].Set(int64(share))
		c.metrics.load[k].Set(int64(sh.srv.Load()))
	}
}
