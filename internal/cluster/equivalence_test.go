package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"abg/internal/server"
)

// The golden satellite: a 1-shard cluster is bit-identical to a single
// daemon. Same submissions over HTTP must yield byte-identical journals,
// identical SSE streams (same ids, same payloads), and DeepEqual job
// results — with and without a fault plan armed.

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	ID    string
	Event string
	Data  string
}

// collectSSE connects to the event stream and parses frames until the server
// closes it (end of drain). The returned channel yields the full frame list
// exactly once.
func collectSSE(t *testing.T, base string) <-chan []sseFrame {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/events")
	if err != nil {
		t.Fatalf("events connect: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events connect: status %d", resp.StatusCode)
	}
	out := make(chan []sseFrame, 1)
	go func() {
		defer resp.Body.Close()
		var frames []sseFrame
		var cur sseFrame
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if cur.Data != "" {
					frames = append(frames, cur)
				}
				cur = sseFrame{}
			case strings.HasPrefix(line, "id: "):
				cur.ID = line[4:]
			case strings.HasPrefix(line, "event: "):
				cur.Event = line[7:]
			case strings.HasPrefix(line, "data: "):
				cur.Data = line[6:]
			}
		}
		out <- frames
	}()
	return out
}

// postJSON posts a body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	resp, err := http.Post(url, "application/json", rd)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches a URL and decodes the JSON response into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

// equivalenceWorkload submits the same deterministic job mix to a daemon
// front door: a mix of kinds, a keyed submission plus its duplicate retry,
// and a multi-job batch. Kept small so the full run emits well under the
// 1024-event SSE subscriber buffer (no drops — the streams must be exact).
func equivalenceWorkload(t *testing.T, base string) {
	t.Helper()
	reqs := []server.JobRequest{
		{Kind: "fullpar", Name: "fp", Width: 8, Quanta: 3},
		{Kind: "serial", Name: "ser", Quanta: 5},
		{Kind: "batch", Count: 3, Seed: 99, CL: 12},
		{Kind: "serial", Name: "keyed", Quanta: 2, Key: "alpha"},
		{Kind: "adversarial", Name: "adv", Width: 8, Quanta: 4, Shrink: 2},
	}
	var keyed server.SubmitResponse
	for i, req := range reqs {
		var ack server.SubmitResponse
		if code := postJSON(t, base+"/api/v1/jobs", req, &ack); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		if req.Key != "" {
			keyed = ack
		}
	}
	// Retry the keyed submission twice: deduplicated, acked 200 with the
	// original ids each time (a second retry catches any in-place id
	// remapping of the stored promise).
	for attempt := 0; attempt < 2; attempt++ {
		var dup server.SubmitResponse
		if code := postJSON(t, base+"/api/v1/jobs", reqs[3], &dup); code != http.StatusOK {
			t.Fatalf("duplicate retry %d: status %d, want 200", attempt, code)
		}
		if dup.State != "duplicate" {
			t.Fatalf("duplicate retry %d: state %q", attempt, dup.State)
		}
		if !reflect.DeepEqual(dup.IDs, keyed.IDs) {
			t.Fatalf("duplicate retry %d: ids %v, want original %v", attempt, dup.IDs, keyed.IDs)
		}
	}
}

// shardConfig is the common engine template for both sides: wall clock with
// an hour-long tick, so every quantum runs inside the drain fast-forward and
// the two runs see identical admission boundaries regardless of timing.
func shardConfig(dir, faultSpec string) server.Config {
	return server.Config{
		P: 16, L: 100,
		Scheduler: "abg", R: 0.2,
		Clock: server.ClockWall, Tick: time.Hour,
		QueueLimit: 256, Seed: 4242, FaultSpec: faultSpec,
		JournalDir: dir, SnapshotEvery: 4, Fsync: "always",
	}
}

// runSingle drives the workload through a plain daemon and returns its
// observable outputs.
func runSingle(t *testing.T, dir, faultSpec string) (jobs []server.JobStatusDTO, frames []sseFrame, journal []byte, state server.StateDTO) {
	t.Helper()
	cfg := shardConfig(dir, faultSpec)
	cfg.Addr = "127.0.0.1:0"
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("single New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatalf("single Start: %v", err)
	}
	base := "http://" + srv.Addr()
	framesCh := collectSSE(t, base)
	equivalenceWorkload(t, base)
	if code := postJSON(t, base+"/api/v1/drain?wait=1", nil, nil); code != http.StatusOK {
		t.Fatalf("single drain: status %d", code)
	}
	getJSON(t, base+"/api/v1/jobs", &jobs)
	getJSON(t, base+"/api/v1/state", &state)
	if err := srv.Wait(); err != nil {
		t.Fatalf("single Wait: %v", err)
	}
	frames = <-framesCh
	journal = readJournal(t, srv.Recovery().JournalPath)
	return jobs, frames, journal, state
}

// runCluster drives the same workload through an N=1 cluster front door.
func runCluster(t *testing.T, dir, faultSpec string) (jobs []server.JobStatusDTO, frames []sseFrame, journal []byte, state server.StateDTO) {
	t.Helper()
	c, err := New(Config{
		Addr:   "127.0.0.1:0",
		Shards: 1,
		Shard:  shardConfig(dir, faultSpec),
	})
	if err != nil {
		t.Fatalf("cluster New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatalf("cluster Start: %v", err)
	}
	base := "http://" + c.Addr()
	framesCh := collectSSE(t, base)
	equivalenceWorkload(t, base)
	if code := postJSON(t, base+"/api/v1/drain?wait=1", nil, nil); code != http.StatusOK {
		t.Fatalf("cluster drain: status %d", code)
	}
	getJSON(t, base+"/api/v1/jobs", &jobs)
	getJSON(t, base+"/api/v1/state", &state)
	if err := c.Wait(); err != nil {
		t.Fatalf("cluster Wait: %v", err)
	}
	frames = <-framesCh
	journal = readJournal(t, c.shards[0].srv.Recovery().JournalPath)
	return jobs, frames, journal, state
}

func readJournal(t *testing.T, path string) []byte {
	t.Helper()
	if path == "" {
		t.Fatal("empty journal path")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return b
}

func TestOneShardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		fault string
	}{
		{"clean", ""},
		{"faulted", "drop=0.2,cap=churn:0.5:8,seed=11"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			sJobs, sFrames, sJournal, sState := runSingle(t, filepath.Join(root, "single"), tc.fault)
			cJobs, cFrames, cJournal, cState := runCluster(t, filepath.Join(root, "cluster"), tc.fault)

			if !reflect.DeepEqual(sJobs, cJobs) {
				t.Errorf("job results diverge:\nsingle:  %+v\ncluster: %+v", sJobs, cJobs)
			}
			if len(sJobs) == 0 || sState.Completed == 0 {
				t.Fatalf("workload did not run: %d jobs, %d completed", len(sJobs), sState.Completed)
			}
			if !reflect.DeepEqual(sFrames, cFrames) {
				t.Errorf("SSE streams diverge: single %d frames, cluster %d frames", len(sFrames), len(cFrames))
				for i := 0; i < len(sFrames) && i < len(cFrames); i++ {
					if sFrames[i] != cFrames[i] {
						t.Errorf("first divergent frame %d:\nsingle:  %+v\ncluster: %+v", i, sFrames[i], cFrames[i])
						break
					}
				}
			}
			if len(sFrames) == 0 {
				t.Error("no SSE frames collected")
			}
			if !bytes.Equal(sJournal, cJournal) {
				t.Errorf("journals diverge: single %d bytes, cluster %d bytes (first diff at %d)",
					len(sJournal), len(cJournal), firstDiff(sJournal, cJournal))
			}
			if sState.SSEDropped != 0 || cState.SSEDropped != 0 {
				t.Errorf("dropped SSE events: single %d, cluster %d — streams not comparable",
					sState.SSEDropped, cState.SSEDropped)
			}
			for _, cmp := range []struct {
				what      string
				got, want any
			}{
				{"submitted", cState.Submitted, sState.Submitted},
				{"completed", cState.Completed, sState.Completed},
				{"makespan", cState.Makespan, sState.Makespan},
				{"totalWaste", cState.TotalWaste, sState.TotalWaste},
				{"meanResponse", cState.MeanResponse, sState.MeanResponse},
			} {
				if !reflect.DeepEqual(cmp.got, cmp.want) {
					t.Errorf("state.%s: cluster %v, single %v", cmp.what, cmp.got, cmp.want)
				}
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestOneShardEquivalenceIDs checks the global-id mapping degenerates to the
// identity at one shard: the cluster ack carries the same dense ids and the
// per-job endpoints resolve them.
func TestOneShardEquivalenceIDs(t *testing.T) {
	c, err := New(Config{Addr: "127.0.0.1:0", Shards: 1, Shard: shardConfig("", "")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + c.Addr()
	var ack SubmitResponse
	if code := postJSON(t, base+"/api/v1/jobs", server.JobRequest{Kind: "batch", Count: 3}, &ack); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(ack.IDs, want) {
		t.Fatalf("ids %v, want %v (identity mapping at one shard)", ack.IDs, want)
	}
	if ack.Shard != 0 {
		t.Fatalf("shard %d, want 0", ack.Shard)
	}
	if code := postJSON(t, base+"/api/v1/drain?wait=1", nil, nil); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}
	var job JobDTO
	if code := getJSON(t, fmt.Sprintf("%s/api/v1/jobs/%d", base, 2), &job); code != http.StatusOK {
		t.Fatalf("job lookup: status %d", code)
	}
	if job.ID != 2 || job.State != "done" {
		t.Fatalf("job 2: id %d state %q", job.ID, job.State)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
