package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"abg/internal/server"
)

// N-shard replay determinism: the same seed and submission sequence must
// produce DeepEqual results, identical merged event streams, and identical
// per-shard journal bytes at every worker count — cluster Workers and
// engine StepWorkers are execution knobs, not semantics.

type clusterRun struct {
	jobs     []JobDTO
	frames   []sseFrame
	journals [][]byte
	shards   []ShardDTO
	state    StateDTO
}

// runShardedCluster drives a fixed deterministic workload through an N-shard
// cluster and captures everything the determinism contract covers.
func runShardedCluster(t *testing.T, dir string, shards, workers, stepWorkers int) clusterRun {
	t.Helper()
	scfg := shardConfig(dir, "")
	scfg.StepWorkers = stepWorkers
	c, err := New(Config{
		Addr:    "127.0.0.1:0",
		Shards:  shards,
		Workers: workers,
		Shard:   scfg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + c.Addr()
	framesCh := collectSSE(t, base)

	reqs := []server.JobRequest{
		{Kind: "batch", Count: 6, Seed: 7, CL: 15},
		{Kind: "fullpar", Name: "wide", Width: 12, Quanta: 3},
		{Kind: "serial", Name: "deep", Quanta: 6},
		{Kind: "serial", Name: "pinned", Quanta: 2, Key: "det-key"},
		{Kind: "adversarial", Name: "adv", Width: 8, Quanta: 3, Shrink: 2},
		{Kind: "batch", Count: 4, Seed: 21, CL: 10},
	}
	var keyed SubmitResponse
	for i, req := range reqs {
		var ack SubmitResponse
		if code := postJSON(t, base+"/api/v1/jobs", req, &ack); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		if req.Key != "" {
			keyed = ack
		}
	}
	// Duplicate retries at N>1 must echo the original *global* ids every
	// time — the stored per-shard promise holds local ids, and remapping it
	// in place instead of a copy would drift the ids once per retry.
	for attempt := 0; attempt < 2; attempt++ {
		var dup SubmitResponse
		if code := postJSON(t, base+"/api/v1/jobs", reqs[3], &dup); code != http.StatusOK {
			t.Fatalf("duplicate retry %d: status %d, want 200", attempt, code)
		}
		if dup.State != "duplicate" || !reflect.DeepEqual(dup.IDs, keyed.IDs) || dup.Shard != keyed.Shard {
			t.Fatalf("duplicate retry %d: got state %q ids %v shard %d, want %q %v %d",
				attempt, dup.State, dup.IDs, dup.Shard, "duplicate", keyed.IDs, keyed.Shard)
		}
	}
	if code := postJSON(t, base+"/api/v1/drain?wait=1", nil, nil); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}

	var run clusterRun
	getJSON(t, base+"/api/v1/jobs", &run.jobs)
	getJSON(t, base+"/api/v1/shards", &run.shards)
	getJSON(t, base+"/api/v1/state", &run.state)
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	run.frames = <-framesCh
	for k := range c.shards {
		run.journals = append(run.journals, readJournal(t, c.shards[k].srv.Recovery().JournalPath))
	}
	return run
}

func TestShardedDeterminismAcrossWorkerCounts(t *testing.T) {
	const shards = 3
	// Serial cluster stepping with serial engines vs maximal parallelism on
	// both levels: every observable output must be identical.
	a := runShardedCluster(t, t.TempDir(), shards, 1, 0)
	b := runShardedCluster(t, t.TempDir(), shards, 8, -1)

	if a.state.SSEDropped != 0 || b.state.SSEDropped != 0 {
		t.Fatalf("dropped SSE events (%d, %d) — streams not comparable", a.state.SSEDropped, b.state.SSEDropped)
	}
	if !reflect.DeepEqual(a.jobs, b.jobs) {
		t.Errorf("job results diverge across worker counts")
	}
	if len(a.jobs) != 14 {
		t.Errorf("got %d jobs, want 14", len(a.jobs))
	}
	done := 0
	for _, j := range a.jobs {
		if j.State == "done" {
			done++
		}
	}
	if done != len(a.jobs) {
		t.Errorf("%d/%d jobs done after drain", done, len(a.jobs))
	}
	if !reflect.DeepEqual(a.frames, b.frames) {
		t.Errorf("merged SSE streams diverge: %d vs %d frames", len(a.frames), len(b.frames))
		for i := 0; i < len(a.frames) && i < len(b.frames); i++ {
			if a.frames[i] != b.frames[i] {
				t.Errorf("first divergent frame %d:\nA: %+v\nB: %+v", i, a.frames[i], b.frames[i])
				break
			}
		}
	}
	if len(a.frames) == 0 {
		t.Error("no merged SSE frames collected")
	}
	for k := 0; k < shards; k++ {
		if !bytes.Equal(a.journals[k], b.journals[k]) {
			t.Errorf("shard %d journal diverges: %d vs %d bytes (first diff %d)",
				k, len(a.journals[k]), len(b.journals[k]), firstDiff(a.journals[k], b.journals[k]))
		}
		if len(a.journals[k]) == 0 {
			t.Errorf("shard %d journal empty — routing sent it nothing?", k)
		}
	}
	if !reflect.DeepEqual(a.shards, b.shards) {
		t.Errorf("per-shard telemetry diverges:\nA: %+v\nB: %+v", a.shards, b.shards)
	}

	// The cluster allocator must conserve the machine: every recorded share
	// vector sums to ≤ P and each share is clamped by its shard's desire
	// (DEQ is conservative). Spot-check the final round's telemetry.
	totalShare := 0
	for _, sh := range a.shards {
		if sh.Share < 0 || sh.Share > a.state.P {
			t.Errorf("shard %d share %d outside [0, P=%d]", sh.Shard, sh.Share, a.state.P)
		}
		totalShare += sh.Share
	}
	if totalShare > a.state.P {
		t.Errorf("shares sum to %d > P=%d", totalShare, a.state.P)
	}
}

// TestShardedStateAggregation sanity-checks the merged /state and vector
// event ids on a multi-shard run.
func TestShardedStateAggregation(t *testing.T) {
	run := runShardedCluster(t, t.TempDir(), 3, 0, 0)
	if run.state.Cluster.Shards != 3 {
		t.Errorf("cluster.shards = %d, want 3", run.state.Cluster.Shards)
	}
	if run.state.Submitted != 14 || run.state.Completed != 14 {
		t.Errorf("submitted/completed = %d/%d, want 14/14", run.state.Submitted, run.state.Completed)
	}
	var routed int64
	for _, sh := range run.shards {
		routed += sh.Routed
	}
	if routed != 14 {
		t.Errorf("routed jobs sum to %d, want 14", routed)
	}
	// Vector event ids: one component per shard, comma-separated.
	for _, f := range run.frames {
		var s0, s1, s2 uint64
		if n, err := fmt.Sscanf(f.ID, "%d,%d,%d", &s0, &s1, &s2); n != 3 || err != nil {
			t.Fatalf("event id %q is not a 3-component vector", f.ID)
		}
	}
	// Shard-tagged payloads: every merged event carries its origin.
	for _, f := range run.frames {
		if f.Event != "" {
			continue // resync frames are cluster-level
		}
		if !bytes.HasPrefix([]byte(f.Data), []byte(`{"shard":`)) {
			t.Fatalf("merged event payload %q lacks shard tag", f.Data)
		}
	}
}
