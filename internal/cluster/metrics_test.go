package cluster

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"abg/internal/server"
)

// The metrics satellite: every sim_*/abgd_* family from every shard renders
// under a shard label with no name collisions, and the cluster-level
// abgd_cluster_* families sit alongside them.
func TestClusterMetricsShardLabels(t *testing.T) {
	c, err := New(Config{Addr: "127.0.0.1:0", Shards: 2, Shard: shardConfig("", "")})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + c.Addr()
	for i := 0; i < 4; i++ {
		var ack SubmitResponse
		if code := postJSON(t, base+"/api/v1/jobs",
			server.JobRequest{Kind: "batch", Name: "m", Seed: uint64(50 + i)}, &ack); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
	}
	if code := postJSON(t, base+"/api/v1/drain?wait=1", nil, nil); code != http.StatusOK {
		t.Fatalf("drain: status %d", code)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	for _, want := range []string{
		`sim_quanta_total{shard="0"}`,
		`sim_quanta_total{shard="1"}`,
		"abgd_cluster_shards 2",
		`abgd_cluster_routed_jobs_total{shard="0"}`,
		`abgd_cluster_queue_depth{shard="1"}`,
		`abgd_cluster_shard_share{shard="0"}`,
		"abgd_http_requests_total{",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Shard labels merge with a family's own labels instead of colliding.
	if !strings.Contains(body, `shard="0"`) || !strings.Contains(body, `shard="1"`) {
		t.Error("/metrics lacks per-shard series")
	}
	// Prometheus text format allows each # TYPE line exactly once per family.
	seen := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if seen[line] {
			t.Errorf("duplicate type declaration: %q", line)
		}
		seen[line] = true
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
