package sched

import (
	"reflect"
	"testing"

	"abg/internal/job"
)

// TestRunQuantumScratchMatchesFresh: a single Scratch reused across
// heterogeneous jobs, orders, and allotments yields measurements
// bit-identical to fresh-scratch calls — the contract that lets the engine
// share one Scratch per step worker.
func TestRunQuantumScratchMatchesFresh(t *testing.T) {
	profiles := []*job.Profile{
		job.Constant(8, 40),
		job.Serial(30),
		job.FromWidths([]int{1, 16, 2, 9, 9, 1, 5}),
		job.Concat(job.Constant(4, 10), job.Serial(5), job.Constant(2, 12)),
	}
	scheds := []Scheduler{BGreedy(), Greedy(), DepthGreedy()}
	allots := []int{1, 3, 7}
	var reused Scratch
	for pi, p := range profiles {
		for si, sc := range scheds {
			for _, a := range allots {
				instA, instB := job.NewRun(p), job.NewRun(p)
				for q := 0; !instA.Done(); q++ {
					want := RunQuantum(instA, sc, a, 9)
					got := RunQuantumScratch(instB, sc, a, 9, &reused)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("profile %d sched %d a=%d quantum %d:\nfresh:  %+v\nreused: %+v",
							pi, si, a, q, want, got)
					}
					if q > 10000 {
						t.Fatal("job did not finish")
					}
				}
				if !instB.Done() {
					t.Fatal("reused-scratch instance lags the fresh one")
				}
			}
		}
	}
	// The all-zero invariant is what makes reuse correct: a dirty slot would
	// silently inflate a later job's CPL measurement.
	for l, c := range reused.levelDone {
		if c != 0 {
			t.Fatalf("scratch levelDone[%d] = %d after use, want 0", l, c)
		}
	}
}

// TestRunQuantumScratchZeroLength mirrors the old guard: non-positive
// quantum lengths execute nothing.
func TestRunQuantumScratchZeroLength(t *testing.T) {
	var scr Scratch
	st := RunQuantumScratch(job.NewRun(job.Constant(2, 2)), BGreedy(), 2, 0, &scr)
	if st.Steps != 0 || st.Work != 0 || st.CPL != 0 {
		t.Fatalf("zero-length quantum executed work: %+v", st)
	}
}

func BenchmarkRunQuantumScratch(b *testing.B) {
	p := job.Constant(8, 1<<20)
	inst := job.NewRun(p)
	var scr Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inst.Done() {
			b.StopTimer()
			inst.Reset()
			b.StartTimer()
		}
		RunQuantumScratch(inst, BGreedy(), 8, 100, &scr)
	}
}
