package sched_test

import (
	"fmt"

	"abg/internal/job"
	"abg/internal/sched"
)

// ExampleRunQuantum reproduces the paper's Figure 2 measurement: a quantum
// of 3 steps with 4 processors on a job whose levels are 5 wide, starting
// one task into the first level, measures T1(q)=12 and the fractional
// T∞(q)=0.8+1+0.6=2.4, so A(q)=5.
func ExampleRunQuantum() {
	p := job.Constant(5, 3)
	r := job.NewRun(p)
	r.Step(1, job.BreadthFirst, nil) // pre-quantum: 1 task of level 0 done

	st := sched.RunQuantum(r, sched.BGreedy(), 4, 3)
	fmt.Printf("T1(q) = %d\n", st.Work)
	fmt.Printf("T∞(q) = %.1f\n", st.CPL)
	fmt.Printf("A(q)  = %.0f\n", st.AvgParallelism())
	// Output:
	// T1(q) = 12
	// T∞(q) = 2.4
	// A(q)  = 5
}
