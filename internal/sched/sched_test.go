package sched

import (
	"math"
	"strings"
	"testing"

	"abg/internal/dag"
	"abg/internal/job"
	"abg/internal/xrand"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestFigure2QuantumMeasurement reproduces the paper's Figure 2 numbers
// exactly: a quantum that completes 4 tasks of a 5-wide level, all 5 of the
// next, and 3 of the one after yields T1(q)=12, T∞(q)=0.8+1+0.6=2.4 and
// A(q)=5.
func TestFigure2QuantumMeasurement(t *testing.T) {
	p := job.Constant(5, 3)
	r := job.NewRun(p)
	// Pre-quantum: one step with a single processor completes 1 task of
	// level 0, so the measured quantum starts mid-level.
	if n, _ := r.Step(1, job.BreadthFirst, nil); n != 1 {
		t.Fatal("pre-step failed")
	}
	st := RunQuantum(r, BGreedy(), 4, 3)
	if st.Work != 12 {
		t.Fatalf("T1(q) = %d, want 12", st.Work)
	}
	if !approx(st.CPL, 2.4, 1e-12) {
		t.Fatalf("T∞(q) = %v, want 2.4", st.CPL)
	}
	if !approx(st.AvgParallelism(), 5, 1e-12) {
		t.Fatalf("A(q) = %v, want 5", st.AvgParallelism())
	}
}

func TestQuantumStatsDerived(t *testing.T) {
	st := QuantumStats{Allotment: 4, Length: 10, Steps: 10, Work: 25, CPL: 5}
	if !st.Full() {
		t.Fatal("should be full")
	}
	if st.Waste() != 4*10-25 {
		t.Fatalf("waste = %d", st.Waste())
	}
	if !approx(st.WorkEfficiency(), 25.0/40.0, 1e-12) {
		t.Fatalf("α = %v", st.WorkEfficiency())
	}
	if !approx(st.CPLEfficiency(), 0.5, 1e-12) {
		t.Fatalf("β = %v", st.CPLEfficiency())
	}
	if !strings.Contains(st.String(), "T1=25") {
		t.Fatalf("String: %s", st.String())
	}
}

func TestQuantumStatsEdges(t *testing.T) {
	var st QuantumStats
	if st.AvgParallelism() != 0 {
		t.Fatal("empty quantum parallelism should be 0")
	}
	if st.WorkEfficiency() != 0 || st.CPLEfficiency() != 0 {
		t.Fatal("zero-division guards failed")
	}
	st = QuantumStats{Length: 10, Steps: 3, IdleSteps: 0}
	if st.Full() {
		t.Fatal("short quantum is not full")
	}
	st = QuantumStats{Length: 10, Steps: 10, IdleSteps: 1}
	if st.Full() {
		t.Fatal("idle quantum is not full")
	}
}

func TestSchedulerIdentities(t *testing.T) {
	if BGreedy().Name() != "B-Greedy" || BGreedy().Order() != job.BreadthFirst {
		t.Fatal("BGreedy wrong")
	}
	if Greedy().Name() != "Greedy" || Greedy().Order() != job.FIFO {
		t.Fatal("Greedy wrong")
	}
	if DepthGreedy().Order() != job.DepthFirst {
		t.Fatal("DepthGreedy wrong")
	}
}

func TestRunQuantumCompletesJob(t *testing.T) {
	p := job.Constant(3, 4) // 12 tasks
	r := job.NewRun(p)
	st := RunQuantum(r, BGreedy(), 3, 100)
	if !st.Completed {
		t.Fatal("job should complete")
	}
	if st.Steps != 4 { // one level per step with a=width
		t.Fatalf("steps = %d", st.Steps)
	}
	if st.Work != 12 {
		t.Fatalf("work = %d", st.Work)
	}
	if !approx(st.CPL, 4, 1e-12) {
		t.Fatalf("cpl = %v", st.CPL)
	}
	// A finished job yields an empty quantum afterwards.
	st2 := RunQuantum(r, BGreedy(), 3, 10)
	if st2.Work != 0 || st2.Steps != 0 || st2.Completed {
		t.Fatalf("quantum on finished job: %+v", st2)
	}
}

func TestRunQuantumZeroLength(t *testing.T) {
	r := job.NewRun(job.Serial(3))
	st := RunQuantum(r, BGreedy(), 2, 0)
	if st.Steps != 0 || st.Work != 0 {
		t.Fatalf("zero-length quantum: %+v", st)
	}
}

func TestRunQuantumZeroAllotment(t *testing.T) {
	r := job.NewRun(job.Serial(3))
	st := RunQuantum(r, BGreedy(), 0, 5)
	if st.Work != 0 {
		t.Fatal("no allotment should do no work")
	}
	if st.IdleSteps != 5 || st.Steps != 5 {
		t.Fatalf("idle accounting: %+v", st)
	}
	if st.Full() {
		t.Fatal("all-idle quantum is not full")
	}
}

// TestFractionsSumToLevels checks that, over a whole execution, the quantum
// critical-path lengths sum to the job's T∞ — every level contributes its
// fractions exactly once.
func TestFractionsSumToLevels(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		nLevels := rng.IntRange(1, 15)
		widths := make([]int, nLevels)
		for i := range widths {
			widths[i] = rng.IntRange(1, 9)
		}
		p := job.FromWidths(widths)
		r := job.NewRun(p)
		a := rng.IntRange(1, 12)
		L := rng.IntRange(1, 9)
		var sumCPL float64
		var sumWork int64
		for !r.Done() {
			st := RunQuantum(r, BGreedy(), a, L)
			sumCPL += st.CPL
			sumWork += st.Work
		}
		if !approx(sumCPL, float64(p.CriticalPathLen()), 1e-9) {
			t.Fatalf("ΣT∞(q) = %v, want %d (widths %v a=%d L=%d)",
				sumCPL, p.CriticalPathLen(), widths, a, L)
		}
		if sumWork != p.Work() {
			t.Fatalf("ΣT1(q) = %d, want %d", sumWork, p.Work())
		}
	}
}

// TestAlphaPlusBetaAtLeastOne verifies Inequality (5) of the paper:
// α(q) + β(q) ≥ 1 for every full quantum under B-Greedy, on the paper's job
// family — fork-join jobs whose parallel phases are equal-width chains. (On
// that family every incomplete step telescopes to exactly one fractional
// level of progress. The inequality is NOT exact on arbitrary
// level-synchronized dags: a quantum that starts on the 1-task tail of a
// wide barrier level earns only 1/width of a level for one whole incomplete
// step; see TestGrahamFormGreedyBound for the invariant that holds
// universally. EXPERIMENTS.md records this subtlety.)
func TestAlphaPlusBetaAtLeastOne(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		w := rng.IntRange(1, 24)
		h := rng.IntRange(2, 60)
		p := job.Constant(w, h)
		r := job.NewRun(p)
		a := rng.IntRange(1, 16)
		L := rng.IntRange(2, 12)
		for !r.Done() {
			st := RunQuantum(r, BGreedy(), a, L)
			if !st.Full() {
				continue
			}
			if s := st.WorkEfficiency() + st.CPLEfficiency(); s < 1-1e-9 {
				t.Fatalf("α+β = %v < 1 on full quantum %+v (w=%d h=%d a=%d L=%d)", s, st, w, h, a, L)
			}
		}
	}
}

// TestGrahamFormGreedyBound verifies the integer form of the greedy bound
// that holds on every dag: for a full quantum,
// L ≤ T1(q)/a(q) + LevelsTouched(q), equivalently
// PartialSteps(q) ≤ LevelsTouched(q), because every step either completes
// a(q) tasks or advances the ready frontier past at least one level.
func TestGrahamFormGreedyBound(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 40; trial++ {
		nLevels := rng.IntRange(2, 30)
		widths := make([]int, nLevels)
		for i := range widths {
			widths[i] = rng.IntRange(1, 20)
		}
		p := job.FromWidths(widths)
		r := job.NewRun(p)
		a := rng.IntRange(1, 16)
		L := rng.IntRange(2, 12)
		for !r.Done() {
			st := RunQuantum(r, BGreedy(), a, L)
			if !st.Full() {
				continue
			}
			if st.PartialSteps > st.LevelsTouched {
				t.Fatalf("partial steps %d > levels touched %d: %+v (widths %v)",
					st.PartialSteps, st.LevelsTouched, st, widths)
			}
			bound := float64(st.Work)/float64(st.Allotment) + float64(st.LevelsTouched)
			if float64(st.Length) > bound+1e-9 {
				t.Fatalf("L=%d > %v: %+v", st.Length, bound, st)
			}
		}
	}
}

// TestConstantParallelismMeasurement: on a constant-parallelism job with
// allotment ≥ width, B-Greedy measures A(q) equal to the width exactly.
func TestConstantParallelismMeasurement(t *testing.T) {
	for _, w := range []int{1, 3, 12} {
		p := job.Constant(w, 50)
		r := job.NewRun(p)
		st := RunQuantum(r, BGreedy(), w+5, 10)
		if !approx(st.AvgParallelism(), float64(w), 1e-9) {
			t.Fatalf("width %d: A(q) = %v", w, st.AvgParallelism())
		}
	}
}

// TestUnderAllottedMeasurement: with a < A, a full quantum yields A(q) ≥ a —
// enough parallelism exists to keep every processor busy, so the measured
// parallelism cannot underestimate the allotment.
func TestUnderAllottedMeasurement(t *testing.T) {
	p := job.Constant(16, 200)
	r := job.NewRun(p)
	st := RunQuantum(r, BGreedy(), 4, 20)
	if !st.Full() {
		t.Fatal("quantum should be full")
	}
	if st.AvgParallelism() < 4-1e-9 {
		t.Fatalf("A(q) = %v < allotment 4", st.AvgParallelism())
	}
}

// TestDagAndProfileQuantumAgreement: the measurement must agree across the
// two executors on level-synchronized jobs.
func TestDagAndProfileQuantumAgreement(t *testing.T) {
	rng := xrand.New(19)
	for trial := 0; trial < 15; trial++ {
		nLevels := rng.IntRange(1, 8)
		widths := make([]int, nLevels)
		for i := range widths {
			widths[i] = rng.IntRange(1, 6)
		}
		pr := job.NewRun(job.FromWidths(widths))
		dr := dag.NewRun(dag.FromProfileWidths(widths))
		a := rng.IntRange(1, 8)
		L := rng.IntRange(1, 6)
		for !pr.Done() || !dr.Done() {
			sp := RunQuantum(pr, BGreedy(), a, L)
			sd := RunQuantum(dr, BGreedy(), a, L)
			if sp.Work != sd.Work || !approx(sp.CPL, sd.CPL, 1e-9) {
				t.Fatalf("divergence: profile %+v dag %+v (widths %v)", sp, sd, widths)
			}
		}
	}
}

// TestDepthFirstDistortsMeasurement demonstrates the ablation rationale: a
// depth-first order can inflate the measured T∞(q) relative to breadth-first
// (more levels are touched for the same work), never deflate the work.
func TestDepthFirstDistortsMeasurement(t *testing.T) {
	p := job.Constant(4, 60)
	bf := job.NewRun(p)
	df := job.NewRun(p)
	stBF := RunQuantum(bf, BGreedy(), 2, 30)
	stDF := RunQuantum(df, DepthGreedy(), 2, 30)
	if stDF.CPL < stBF.CPL-1e-9 {
		t.Fatalf("DF touched fewer levels (%v) than BF (%v)", stDF.CPL, stBF.CPL)
	}
}

func BenchmarkRunQuantumProfile(b *testing.B) {
	p := job.Constant(64, 10000)
	r := job.NewRun(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			r.Reset()
		}
		RunQuantum(r, BGreedy(), 64, 100)
	}
}

func BenchmarkRunQuantumDag(b *testing.B) {
	g := dag.IndependentChains(32, 512)
	r := dag.NewRun(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			r = dag.NewRun(g)
		}
		RunQuantum(r, BGreedy(), 32, 64)
	}
}
