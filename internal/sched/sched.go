// Package sched implements the user-level task schedulers of the paper:
// B-Greedy (greedy with breadth-first priority, §2) and plain greedy, plus
// the per-quantum measurement both rely on.
//
// Within a scheduling quantum the task scheduler executes the job step by
// step with the quantum's allotment and collects:
//
//	T1(q)  — quantum work: tasks completed in the quantum;
//	T∞(q)  — quantum critical-path length: the number of levels the job
//	         advanced, where a partially completed level contributes the
//	         fraction (tasks of that level completed in q) / (level width);
//	A(q)   — quantum average parallelism T1(q)/T∞(q).
//
// The fractional rule reproduces the paper's Figure 2 example exactly
// (T1(q)=12, T∞(q)=0.8+1+0.6=2.4, A(q)=5).
package sched

import (
	"fmt"
	"sort"

	"abg/internal/job"
)

// Scheduler is a task scheduler: an execution order plus a name. The order
// is what distinguishes B-Greedy (breadth-first) from a plain greedy
// scheduler; both execute min(allotment, #ready) tasks per step.
type Scheduler struct {
	name  string
	order job.Order
}

// BGreedy returns the breadth-first greedy scheduler of the paper.
func BGreedy() Scheduler { return Scheduler{name: "B-Greedy", order: job.BreadthFirst} }

// Greedy returns a plain greedy scheduler executing ready tasks in FIFO
// order, the task scheduler underneath A-Greedy.
func Greedy() Scheduler { return Scheduler{name: "Greedy", order: job.FIFO} }

// DepthGreedy returns a greedy scheduler that prioritises the deepest ready
// tasks; the adversarial ordering used by the execution-order ablation.
func DepthGreedy() Scheduler { return Scheduler{name: "DepthGreedy", order: job.DepthFirst} }

// Name returns the scheduler's display name.
func (s Scheduler) Name() string { return s.name }

// Order returns the task selection order the scheduler uses.
func (s Scheduler) Order() job.Order { return s.order }

// QuantumStats records what happened to one job during one quantum. All the
// feedback policies in abg/internal/feedback decide from this alone.
type QuantumStats struct {
	Index     int     // quantum number, 1-based
	Start     int64   // absolute step at which the quantum began (set by the engine)
	Request   float64 // d(q), the request the policy issued
	Allotment int     // a(q) granted by the OS allocator
	Length    int     // quantum length L in steps
	Steps     int     // steps actually executed (< Length only on completion)
	Work      int64   // T1(q)
	CPL       float64 // T∞(q), fractional
	IdleSteps int     // steps on which no task completed
	// PartialSteps counts steps on which some but fewer than a(q) tasks
	// completed — the "incomplete steps" of the classical greedy argument.
	PartialSteps int
	// LevelsTouched counts distinct levels with at least one completion in
	// the quantum. The integer (Graham-form) greedy bound
	// L ≤ T1(q)/a(q) + LevelsTouched(q) holds for every full quantum of any
	// dag, whereas the paper's fractional α(q)+β(q) ≥ 1 (Inequality 5) is
	// exact only on the fork-join job family it simulates.
	LevelsTouched int
	Deprived      bool // a(q) < request (after integer rounding)
	Completed     bool // job finished during this quantum
}

// Full reports whether the quantum is full per §5.1: work was done on every
// time step of the quantum.
func (s QuantumStats) Full() bool { return s.IdleSteps == 0 && s.Steps == s.Length }

// AvgParallelism returns A(q) = T1(q)/T∞(q). It returns 0 for an empty
// quantum (no work done).
func (s QuantumStats) AvgParallelism() float64 {
	if s.CPL == 0 {
		return 0
	}
	return float64(s.Work) / s.CPL
}

// Waste returns the processor cycles wasted in the quantum: allotted
// processor-steps not spent completing tasks. Only the steps the job
// actually held processors count; the boundary tail after completion is
// accounted separately by the engine (see sim.BoundaryWaste).
func (s QuantumStats) Waste() int64 {
	return int64(s.Allotment)*int64(s.Steps) - s.Work
}

// WorkEfficiency returns α(q) = T1(q) / (a(q)·L) for a full quantum.
func (s QuantumStats) WorkEfficiency() float64 {
	if s.Allotment == 0 || s.Length == 0 {
		return 0
	}
	return float64(s.Work) / (float64(s.Allotment) * float64(s.Length))
}

// CPLEfficiency returns β(q) = T∞(q) / L.
func (s QuantumStats) CPLEfficiency() float64 {
	if s.Length == 0 {
		return 0
	}
	return s.CPL / float64(s.Length)
}

// String renders the stats compactly for traces and debugging.
func (s QuantumStats) String() string {
	return fmt.Sprintf("q=%d d=%.2f a=%d steps=%d/%d T1=%d T∞=%.3f A=%.2f",
		s.Index, s.Request, s.Allotment, s.Steps, s.Length, s.Work, s.CPL, s.AvgParallelism())
}

// RunQuantum executes one scheduling quantum: up to length steps of inst
// with the given allotment, selecting tasks per the scheduler's order, and
// returns the measured statistics. The Index, Request and Deprived fields
// are left for the caller (the engine) to fill in.
func RunQuantum(inst job.Instance, sc Scheduler, allotment, length int) QuantumStats {
	st := QuantumStats{Allotment: allotment, Length: length}
	if length <= 0 {
		return st
	}
	var buf []job.LevelCount
	// Accumulate per-level fractions. Levels touched within a quantum form a
	// short contiguous-ish window, so a small map is fine here; the hot path
	// for the big sweeps is the profile Step itself.
	levelDone := make(map[int]int, 8)
	for s := 0; s < length; s++ {
		if inst.Done() {
			break
		}
		var n int
		buf = buf[:0]
		n, buf = inst.Step(allotment, sc.order, buf)
		st.Steps++
		if n == 0 {
			st.IdleSteps++
			continue
		}
		st.Work += int64(n)
		if n < allotment {
			st.PartialSteps++
		}
		for _, lc := range buf {
			levelDone[lc.Level] += lc.Count
		}
		if inst.Done() {
			st.Completed = true
			break
		}
	}
	st.LevelsTouched = len(levelDone)
	// Sum in level order: float addition is not associative, and replay
	// determinism (same seed ⇒ bit-identical run) must not hinge on map
	// iteration order.
	levels := make([]int, 0, len(levelDone))
	for level := range levelDone {
		levels = append(levels, level)
	}
	sort.Ints(levels)
	for _, level := range levels {
		st.CPL += float64(levelDone[level]) / float64(inst.LevelWidth(level))
	}
	return st
}
