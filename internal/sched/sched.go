// Package sched implements the user-level task schedulers of the paper:
// B-Greedy (greedy with breadth-first priority, §2) and plain greedy, plus
// the per-quantum measurement both rely on.
//
// Within a scheduling quantum the task scheduler executes the job step by
// step with the quantum's allotment and collects:
//
//	T1(q)  — quantum work: tasks completed in the quantum;
//	T∞(q)  — quantum critical-path length: the number of levels the job
//	         advanced, where a partially completed level contributes the
//	         fraction (tasks of that level completed in q) / (level width);
//	A(q)   — quantum average parallelism T1(q)/T∞(q).
//
// The fractional rule reproduces the paper's Figure 2 example exactly
// (T1(q)=12, T∞(q)=0.8+1+0.6=2.4, A(q)=5).
package sched

import (
	"fmt"

	"abg/internal/job"
)

// Scheduler is a task scheduler: an execution order plus a name. The order
// is what distinguishes B-Greedy (breadth-first) from a plain greedy
// scheduler; both execute min(allotment, #ready) tasks per step.
type Scheduler struct {
	name  string
	order job.Order
}

// BGreedy returns the breadth-first greedy scheduler of the paper.
func BGreedy() Scheduler { return Scheduler{name: "B-Greedy", order: job.BreadthFirst} }

// Greedy returns a plain greedy scheduler executing ready tasks in FIFO
// order, the task scheduler underneath A-Greedy.
func Greedy() Scheduler { return Scheduler{name: "Greedy", order: job.FIFO} }

// DepthGreedy returns a greedy scheduler that prioritises the deepest ready
// tasks; the adversarial ordering used by the execution-order ablation.
func DepthGreedy() Scheduler { return Scheduler{name: "DepthGreedy", order: job.DepthFirst} }

// Name returns the scheduler's display name.
func (s Scheduler) Name() string { return s.name }

// Order returns the task selection order the scheduler uses.
func (s Scheduler) Order() job.Order { return s.order }

// QuantumStats records what happened to one job during one quantum. All the
// feedback policies in abg/internal/feedback decide from this alone.
type QuantumStats struct {
	Index     int     // quantum number, 1-based
	Start     int64   // absolute step at which the quantum began (set by the engine)
	Request   float64 // d(q), the request the policy issued
	Allotment int     // a(q) granted by the OS allocator
	Length    int     // quantum length L in steps
	Steps     int     // steps actually executed (< Length only on completion)
	Work      int64   // T1(q)
	CPL       float64 // T∞(q), fractional
	IdleSteps int     // steps on which no task completed
	// PartialSteps counts steps on which some but fewer than a(q) tasks
	// completed — the "incomplete steps" of the classical greedy argument.
	PartialSteps int
	// LevelsTouched counts distinct levels with at least one completion in
	// the quantum. The integer (Graham-form) greedy bound
	// L ≤ T1(q)/a(q) + LevelsTouched(q) holds for every full quantum of any
	// dag, whereas the paper's fractional α(q)+β(q) ≥ 1 (Inequality 5) is
	// exact only on the fork-join job family it simulates.
	LevelsTouched int
	Deprived      bool // a(q) < request (after integer rounding)
	Completed     bool // job finished during this quantum
}

// Full reports whether the quantum is full per §5.1: work was done on every
// time step of the quantum.
func (s QuantumStats) Full() bool { return s.IdleSteps == 0 && s.Steps == s.Length }

// AvgParallelism returns A(q) = T1(q)/T∞(q). It returns 0 for an empty
// quantum (no work done).
func (s QuantumStats) AvgParallelism() float64 {
	if s.CPL == 0 {
		return 0
	}
	return float64(s.Work) / s.CPL
}

// Waste returns the processor cycles wasted in the quantum: allotted
// processor-steps not spent completing tasks. Only the steps the job
// actually held processors count; the boundary tail after completion is
// accounted separately by the engine (see sim.BoundaryWaste).
func (s QuantumStats) Waste() int64 {
	return int64(s.Allotment)*int64(s.Steps) - s.Work
}

// WorkEfficiency returns α(q) = T1(q) / (a(q)·L) for a full quantum.
func (s QuantumStats) WorkEfficiency() float64 {
	if s.Allotment == 0 || s.Length == 0 {
		return 0
	}
	return float64(s.Work) / (float64(s.Allotment) * float64(s.Length))
}

// CPLEfficiency returns β(q) = T∞(q) / L.
func (s QuantumStats) CPLEfficiency() float64 {
	if s.Length == 0 {
		return 0
	}
	return s.CPL / float64(s.Length)
}

// String renders the stats compactly for traces and debugging.
func (s QuantumStats) String() string {
	return fmt.Sprintf("q=%d d=%.2f a=%d steps=%d/%d T1=%d T∞=%.3f A=%.2f",
		s.Index, s.Request, s.Allotment, s.Steps, s.Length, s.Work, s.CPL, s.AvgParallelism())
}

// Scratch holds the reusable buffers RunQuantumScratch needs: the per-step
// completion buffer and a dense per-level accumulator. A Scratch belongs to
// exactly one goroutine at a time (the engine keeps one per step worker);
// the zero value is ready to use and the buffers grow to the largest job
// seen, so a long-lived Scratch makes the quantum loop allocation-free.
type Scratch struct {
	buf []job.LevelCount
	// levelDone[l] accumulates tasks completed at level l this quantum.
	// Invariant between calls: every element is zero — RunQuantumScratch
	// clears exactly the window it touched before returning, so reuse never
	// pays for the full slice.
	levelDone []int
}

// RunQuantum executes one scheduling quantum: up to length steps of inst
// with the given allotment, selecting tasks per the scheduler's order, and
// returns the measured statistics. The Index, Request and Deprived fields
// are left for the caller (the engine) to fill in. It allocates fresh
// scratch; hot loops should hold a Scratch and call RunQuantumScratch.
func RunQuantum(inst job.Instance, sc Scheduler, allotment, length int) QuantumStats {
	var scr Scratch
	return RunQuantumScratch(inst, sc, allotment, length, &scr)
}

// RunQuantumScratch is RunQuantum with caller-owned scratch buffers, the
// allocation-free form the engine's hot path uses. The measurement is
// bit-identical to RunQuantum's: per-level fractions are summed in
// ascending level order (float addition is not associative, and replay
// determinism must not hinge on accumulation order), which the dense
// accumulator gives for free where the old map needed a sort.
func RunQuantumScratch(inst job.Instance, sc Scheduler, allotment, length int, scr *Scratch) QuantumStats {
	st := QuantumStats{Allotment: allotment, Length: length}
	if length <= 0 {
		return st
	}
	lo, hi := int(^uint(0)>>1), -1 // touched level window [lo, hi]
	for s := 0; s < length; s++ {
		if inst.Done() {
			break
		}
		var n int
		scr.buf = scr.buf[:0]
		n, scr.buf = inst.Step(allotment, sc.order, scr.buf)
		st.Steps++
		if n == 0 {
			st.IdleSteps++
			continue
		}
		st.Work += int64(n)
		if n < allotment {
			st.PartialSteps++
		}
		for _, lc := range scr.buf {
			for len(scr.levelDone) <= lc.Level {
				scr.levelDone = append(scr.levelDone, 0)
			}
			scr.levelDone[lc.Level] += lc.Count
			if lc.Level < lo {
				lo = lc.Level
			}
			if lc.Level > hi {
				hi = lc.Level
			}
		}
		if inst.Done() {
			st.Completed = true
			break
		}
	}
	for l := lo; l <= hi; l++ {
		if c := scr.levelDone[l]; c > 0 {
			st.LevelsTouched++
			st.CPL += float64(c) / float64(inst.LevelWidth(l))
			scr.levelDone[l] = 0
		}
	}
	return st
}
