package validate

import (
	"strings"
	"testing"
)

func smallOpts() Options {
	return Options{Seed: 11, Trials: 6, P: 64, L: 80}
}

func TestAllChecksPass(t *testing.T) {
	for _, c := range All(smallOpts()) {
		if !c.Passed {
			t.Errorf("%s failed: %s", c.Name, c.Detail)
		}
		if c.Samples == 0 {
			t.Errorf("%s evaluated no samples", c.Name)
		}
		if !strings.Contains(c.String(), c.Name) {
			t.Errorf("%s: String broken: %q", c.Name, c.String())
		}
	}
}

func TestCheckStringStatus(t *testing.T) {
	pass := Check{Name: "x", Passed: true}
	fail := Check{Name: "x"}
	if !strings.HasPrefix(pass.String(), "PASS") || !strings.HasPrefix(fail.String(), "FAIL") {
		t.Fatal("status rendering broken")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	o.normalize()
	if o.Trials < 1 || o.P < 1 || o.L < 1 {
		t.Fatalf("normalize failed: %+v", o)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Trials < 10 || o.P != 128 {
		t.Fatalf("defaults: %+v", o)
	}
}

func TestDeterministic(t *testing.T) {
	a := Lemma2(smallOpts())
	b := Lemma2(smallOpts())
	if a.Detail != b.Detail || a.Samples != b.Samples {
		t.Fatal("validation run is not deterministic")
	}
}
