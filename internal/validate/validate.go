// Package validate runs the paper's analytical results against randomized
// simulation at configurable scale and reports the observed margins — the
// machine-checkable form of §4–§6. The unit tests cover the same properties
// at fixed small scale; this package powers cmd/abgvalidate for larger
// sweeps.
package validate

import (
	"fmt"
	"math"

	"abg/internal/alloc"
	"abg/internal/control"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// Options sizes a validation run.
type Options struct {
	Seed   uint64
	Trials int
	P, L   int
}

// DefaultOptions returns a medium-scale validation setup.
func DefaultOptions() Options {
	return Options{Seed: 2008, Trials: 40, P: 128, L: 200}
}

func (o *Options) normalize() {
	if o.Trials < 1 {
		o.Trials = 1
	}
	if o.P < 1 {
		o.P = 128
	}
	if o.L < 1 {
		o.L = 200
	}
}

// Check is the outcome of validating one analytical result.
type Check struct {
	// Name identifies the result (e.g. "Lemma 2").
	Name string
	// Passed reports whether every sampled instance satisfied the result.
	Passed bool
	// Samples counts the individual assertions evaluated.
	Samples int
	// Detail summarises the observed margins.
	Detail string
}

// String renders the check on one line.
func (c Check) String() string {
	status := "PASS"
	if !c.Passed {
		status = "FAIL"
	}
	return fmt.Sprintf("%-4s %-22s %6d samples  %s", status, c.Name, c.Samples, c.Detail)
}

// Named lists every check with its constructor, in report order, so callers
// can run them one at a time (cmd/abgvalidate stops between checks when
// interrupted).
var Named = []struct {
	Name string
	Run  func(Options) Check
}{
	{"Theorem 1", Theorem1},
	{"Lemma 2", Lemma2},
	{"Theorem 3", Theorem3},
	{"Theorem 4", Theorem4},
	{"Inequality 5", Inequality5},
}

// All runs every check.
func All(opts Options) []Check {
	out := make([]Check, len(Named))
	for i, n := range Named {
		out[i] = n.Run(opts)
	}
	return out
}

// Theorem1 validates the controller's transient claims on simulated
// constant-parallelism jobs: zero overshoot, vanishing steady-state error,
// measured convergence rate ≈ r.
func Theorem1(opts Options) Check {
	opts.normalize()
	rng := xrand.New(opts.Seed)
	c := Check{Name: "Theorem 1", Passed: true}
	maxOver, maxSSE, maxRateErr := 0.0, 0.0, 0.0
	for trial := 0; trial < opts.Trials; trial++ {
		width := rng.IntRange(2, opts.P)
		r := rng.Float64() * 0.8
		// The error decays geometrically at rate r, so the horizon must be
		// long enough for the largest r: r^28 < 1e-2 even at r = 0.8.
		profile := workload.ConstantJob(width, 30, opts.L)
		res, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewUnconstrained(opts.P), sim.SingleConfig{L: opts.L, KeepTrace: true})
		if err != nil {
			return failed(c, err)
		}
		m := control.Measure(res.Requests(), float64(width))
		c.Samples++
		if m.MaxOvershoot > maxOver {
			maxOver = m.MaxOvershoot
		}
		if sse := m.SteadyStateError / float64(width); sse > maxSSE {
			maxSSE = sse
		}
		if r > 0.05 && !math.IsNaN(m.ConvergenceRate) {
			if e := math.Abs(m.ConvergenceRate-r) / r; e > maxRateErr {
				maxRateErr = e
			}
		}
		if m.MaxOvershoot > 1e-9 || m.SteadyStateError/float64(width) > 0.01 {
			c.Passed = false
		}
	}
	c.Detail = fmt.Sprintf("max overshoot %.2g, max rel. SSE %.2g, max rate error %.1f%%",
		maxOver, maxSSE, 100*maxRateErr)
	return c
}

// Lemma2 validates the request envelope on random fork-join jobs with
// r < 1/C_L, reporting how much slack the bounds leave.
func Lemma2(opts Options) Check {
	opts.normalize()
	rng := xrand.New(opts.Seed + 1)
	c := Check{Name: "Lemma 2", Passed: true}
	minLoMargin, minHiMargin := math.Inf(1), math.Inf(1)
	for trial := 0; trial < opts.Trials; trial++ {
		w := rng.IntRange(2, 6)
		r := rng.FloatRange(0, 0.12)
		profile := workload.GenJob(rng, workload.ScaledJobParams(w, opts.L, 2))
		res, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewUnconstrained(opts.P*4), sim.SingleConfig{L: opts.L, KeepTrace: true})
		if err != nil {
			return failed(c, err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		if r >= 1/cl {
			continue
		}
		lo, hi := metrics.Lemma2Bounds(cl, r)
		for _, q := range res.Quanta {
			if !q.Full() {
				continue
			}
			a := q.AvgParallelism()
			c.Samples++
			if m := q.Request - lo*a; m < minLoMargin {
				minLoMargin = m
			}
			if m := hi*a - q.Request; m < minHiMargin {
				minHiMargin = m
			}
			if q.Request < lo*a-1e-9 || q.Request > hi*a+1e-9 {
				c.Passed = false
			}
		}
	}
	c.Detail = fmt.Sprintf("tightest lower margin %.3g, tightest upper margin %.3g (processors)",
		minLoMargin, minHiMargin)
	return c
}

// Theorem3 validates the trimmed-availability runtime bound on gradual
// parallelism ramps under a starve-and-flood adversary, counting how many
// trials produced a finite (non-vacuous) bound.
func Theorem3(opts Options) Check {
	opts.normalize()
	rng := xrand.New(opts.Seed + 2)
	c := Check{Name: "Theorem 3", Passed: true}
	nonVacuous := 0
	minMargin := math.Inf(1) // bound/runtime ratio
	for trial := 0; trial < opts.Trials; trial++ {
		r := rng.FloatRange(0, 0.12)
		widths := []int{2}
		for widths[len(widths)-1] < opts.P {
			next := widths[len(widths)-1]*3/2 + 1
			if next > opts.P {
				next = opts.P
			}
			widths = append(widths, next)
		}
		profile := workload.StepWidths(widths, rng.IntRange(opts.L, 3*opts.L))
		flood := rng.IntRange(5, 9)
		availFn := func(q int) int {
			if q%flood == 0 {
				return opts.P
			}
			return 2
		}
		res, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewAvailabilityTrace(opts.P, availFn, "adversary"), sim.SingleConfig{L: opts.L, KeepTrace: true})
		if err != nil {
			return failed(c, err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		trimTerm := metrics.Theorem3TrimTerm(res.CriticalPath, cl, r)
		avail := make([]int, res.NumQuanta)
		for q := 1; q <= res.NumQuanta; q++ {
			v := availFn(q)
			if v > opts.P {
				v = opts.P
			}
			avail[q-1] = v
		}
		pTrim := metrics.TrimmedAvailability(avail, opts.L, trimTerm+float64(opts.L))
		bound := metrics.Theorem3RuntimeBound(res.Work, res.CriticalPath, cl, r, opts.L, pTrim)
		c.Samples++
		if pTrim > 0 {
			nonVacuous++
			if m := bound / float64(res.Runtime); m < minMargin {
				minMargin = m
			}
		}
		if float64(res.Runtime) > bound+1e-6 {
			c.Passed = false
		}
	}
	if nonVacuous == 0 {
		c.Passed = false
	}
	c.Detail = fmt.Sprintf("%d/%d non-vacuous, tightest bound/runtime ratio %.2f",
		nonVacuous, c.Samples, minMargin)
	return c
}

// Theorem4 validates the waste bound on random fork-join jobs.
func Theorem4(opts Options) Check {
	opts.normalize()
	rng := xrand.New(opts.Seed + 3)
	c := Check{Name: "Theorem 4", Passed: true}
	minMargin := math.Inf(1)
	for trial := 0; trial < opts.Trials; trial++ {
		w := rng.IntRange(2, 6)
		r := rng.FloatRange(0, 0.12)
		profile := workload.GenJob(rng, workload.ScaledJobParams(w, opts.L, 2))
		res, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewUnconstrained(opts.P), sim.SingleConfig{L: opts.L, KeepTrace: true})
		if err != nil {
			return failed(c, err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		if r >= 1/cl {
			continue
		}
		bound := metrics.Theorem4WasteBound(res.Work, cl, r, opts.P, opts.L)
		total := float64(res.Waste + res.BoundaryWaste)
		c.Samples++
		if total > 0 {
			if m := bound / total; m < minMargin {
				minMargin = m
			}
		}
		if total > bound+1e-6 {
			c.Passed = false
		}
	}
	c.Detail = fmt.Sprintf("tightest bound/waste ratio %.2f", minMargin)
	return c
}

// Inequality5 validates α(q)+β(q) ≥ 1 on the fork-join family (constant
// equal-width chain phases), reporting the smallest observed sum.
func Inequality5(opts Options) Check {
	opts.normalize()
	rng := xrand.New(opts.Seed + 4)
	c := Check{Name: "Inequality 5", Passed: true}
	minSum := math.Inf(1)
	for trial := 0; trial < opts.Trials; trial++ {
		w := rng.IntRange(1, 32)
		h := rng.IntRange(2, 4*opts.L/10)
		profile := job.Constant(w, h)
		run := job.NewRun(profile)
		a := rng.IntRange(1, opts.P/2)
		for !run.Done() {
			st := sched.RunQuantum(run, sched.BGreedy(), a, opts.L/10)
			if !st.Full() {
				continue
			}
			sum := st.WorkEfficiency() + st.CPLEfficiency()
			c.Samples++
			if sum < minSum {
				minSum = sum
			}
			if sum < 1-1e-9 {
				c.Passed = false
			}
		}
	}
	c.Detail = fmt.Sprintf("min α+β = %.4f", minSum)
	return c
}

func failed(c Check, err error) Check {
	c.Passed = false
	c.Detail = "error: " + err.Error()
	return c
}
