package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ParseCSV reads records previously written by WriteCSV. The header row is
// required and must match WriteCSV's column order exactly — the decoder is a
// round-trip partner, not a general CSV importer.
func ParseCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, name := range csvHeader {
		if header[i] != name {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], name)
		}
	}
	var records []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return records, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		records = append(records, rec)
	}
}

// parseRow decodes one CSV data row in csvHeader order.
func parseRow(row []string) (Record, error) {
	var (
		rec  Record
		err  error
		fail = func(col string, e error) (Record, error) {
			return Record{}, fmt.Errorf("column %s: %w", col, e)
		}
	)
	if rec.Quantum, err = strconv.Atoi(row[0]); err != nil {
		return fail("quantum", err)
	}
	if rec.Request, err = strconv.ParseFloat(row[1], 64); err != nil {
		return fail("request", err)
	}
	if rec.Allotment, err = strconv.Atoi(row[2]); err != nil {
		return fail("allotment", err)
	}
	if rec.Steps, err = strconv.Atoi(row[3]); err != nil {
		return fail("steps", err)
	}
	if rec.Work, err = strconv.ParseInt(row[4], 10, 64); err != nil {
		return fail("work", err)
	}
	if rec.CPL, err = strconv.ParseFloat(row[5], 64); err != nil {
		return fail("cpl", err)
	}
	if rec.Parallelism, err = strconv.ParseFloat(row[6], 64); err != nil {
		return fail("parallelism", err)
	}
	if rec.Waste, err = strconv.ParseInt(row[7], 10, 64); err != nil {
		return fail("waste", err)
	}
	if rec.Full, err = strconv.ParseBool(row[8]); err != nil {
		return fail("full", err)
	}
	if rec.Deprived, err = strconv.ParseBool(row[9]); err != nil {
		return fail("deprived", err)
	}
	if rec.Completed, err = strconv.ParseBool(row[10]); err != nil {
		return fail("completed", err)
	}
	if rec.WorkEff, err = strconv.ParseFloat(row[11], 64); err != nil {
		return fail("alpha", err)
	}
	if rec.CPLEff, err = strconv.ParseFloat(row[12], 64); err != nil {
		return fail("beta", err)
	}
	if rec.LevelsTouched, err = strconv.Atoi(row[13]); err != nil {
		return fail("levels_touched", err)
	}
	return rec, nil
}

// ParseJSON reads records previously written by WriteJSON.
func ParseJSON(r io.Reader) ([]Record, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON records: %w", err)
	}
	return records, nil
}
