package trace

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"abg/internal/sched"
)

func sampleQuanta() []sched.QuantumStats {
	return []sched.QuantumStats{
		{Index: 1, Request: 1, Allotment: 1, Length: 10, Steps: 10, Work: 10, CPL: 10, LevelsTouched: 10},
		{Index: 2, Request: 5.5, Allotment: 6, Length: 10, Steps: 4, Work: 20, CPL: 4, Completed: true, Deprived: true, LevelsTouched: 4},
	}
}

func TestFromQuanta(t *testing.T) {
	recs := FromQuanta(sampleQuanta())
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Parallelism != 1 || recs[1].Parallelism != 5 {
		t.Fatalf("parallelisms: %v, %v", recs[0].Parallelism, recs[1].Parallelism)
	}
	if !recs[0].Full || recs[1].Full {
		t.Fatal("fullness wrong")
	}
	if recs[1].Waste != 6*4-20 {
		t.Fatalf("waste = %d", recs[1].Waste)
	}
	if !recs[1].Deprived || !recs[1].Completed {
		t.Fatal("flags lost")
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, FromQuanta(sampleQuanta())); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "quantum" || len(rows[0]) != len(csvHeader) {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[2][1] != "5.5" {
		t.Fatalf("request cell = %q", rows[2][1])
	}
	if rows[2][10] != "true" {
		t.Fatalf("completed cell = %q", rows[2][10])
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, FromQuanta(sampleQuanta())); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Request != 5.5 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestNewSeries(t *testing.T) {
	if _, err := NewSeries("a", []float64{1, 2}, []float64{3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	s, err := NewSeries("a", []float64{1, 2}, []float64{3, 4})
	if err != nil || s.Name != "a" {
		t.Fatalf("series: %+v err=%v", s, err)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	series := []Series{
		{Name: "abg", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
		{Name: "agreedy", X: []float64{1}, Y: []float64{0.9}},
	}
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][0] != "abg" || rows[3][0] != "agreedy" {
		t.Fatalf("series names: %v", rows)
	}
	// Broken series is rejected.
	if err := WriteSeriesCSV(&sb, []Series{{Name: "x", X: []float64{1}}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteSeriesJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesJSON(&sb, []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}); err != nil {
		t.Fatal(err)
	}
	var back []Series
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Y[0] != 2 {
		t.Fatalf("round trip: %+v", back)
	}
}
