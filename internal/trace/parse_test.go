package trace

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"abg/internal/sched"
)

// sampleRecords builds an export trace that exercises both deprivation
// states and the completion flag.
func sampleRecords() []Record {
	return FromQuanta([]sched.QuantumStats{
		{Index: 1, Start: 0, Length: 100, Steps: 100, Request: 2, Allotment: 2,
			Work: 180, CPL: 90, LevelsTouched: 3},
		{Index: 2, Start: 100, Length: 100, Steps: 100, Request: 6, Allotment: 4,
			Work: 380, CPL: 95, Deprived: true, LevelsTouched: 5},
		{Index: 3, Start: 200, Length: 100, Steps: 40, Request: 4, Allotment: 4,
			Work: 150, CPL: 38, Completed: true, LevelsTouched: 2},
	})
}

// recordsAlmostEqual compares record slices, tolerating the float rounding
// of the 10-significant-digit CSV encoding.
func recordsAlmostEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	near := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }
	for i := range want {
		g, w := got[i], want[i]
		if g.Quantum != w.Quantum || g.Allotment != w.Allotment || g.Steps != w.Steps ||
			g.Work != w.Work || g.Waste != w.Waste || g.LevelsTouched != w.LevelsTouched ||
			g.Full != w.Full || g.Deprived != w.Deprived || g.Completed != w.Completed ||
			!near(g.Request, w.Request) || !near(g.CPL, w.CPL) ||
			!near(g.Parallelism, w.Parallelism) || !near(g.WorkEff, w.WorkEff) ||
			!near(g.CPLEff, w.CPLEff) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := sampleRecords()
	var sb strings.Builder
	if err := WriteCSV(&sb, want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	recordsAlmostEqual(t, got, want)
	// The boolean columns must actually carry through, not default to false.
	if !got[1].Deprived || got[0].Deprived {
		t.Fatalf("deprived column mangled: %+v", got)
	}
	if !got[2].Completed || got[0].Completed {
		t.Fatalf("completed column mangled: %+v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	want := sampleRecords()
	var sb strings.Builder
	if err := WriteJSON(&sb, want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	// JSON floats round-trip exactly.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round trip:\n got %+v\nwant %+v", got, want)
	}
	if !got[1].Deprived || !got[2].Completed {
		t.Fatalf("boolean fields mangled: %+v", got)
	}
}

func TestParseCSVRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty input":     "",
		"wrong width":     "quantum,request\n1,2\n",
		"renamed column":  strings.Replace(csvLine(), "deprived", "starved", 1),
		"non-numeric row": csvLine() + "x,2,3,4,5,6,7,8,true,false,false,1,1,2\n",
		"bad boolean":     csvLine() + "1,2,3,4,5,6,7,8,yes?,false,false,1,1,2\n",
	}
	for name, in := range cases {
		if _, err := ParseCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// csvLine returns the canonical header line.
func csvLine() string {
	return strings.Join(csvHeader, ",") + "\n"
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
