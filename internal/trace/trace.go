// Package trace records and exports per-quantum simulation traces. The CLI
// tools use it to dump request/allotment/parallelism series as CSV or JSON
// so results can be plotted outside this repository.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"abg/internal/sched"
)

// Record is one exported per-quantum sample.
type Record struct {
	Quantum       int     `json:"quantum"`
	Request       float64 `json:"request"`
	Allotment     int     `json:"allotment"`
	Steps         int     `json:"steps"`
	Work          int64   `json:"work"`
	CPL           float64 `json:"cpl"`
	Parallelism   float64 `json:"parallelism"`
	Waste         int64   `json:"waste"`
	Full          bool    `json:"full"`
	Deprived      bool    `json:"deprived"`
	Completed     bool    `json:"completed"`
	WorkEff       float64 `json:"alpha"`
	CPLEff        float64 `json:"beta"`
	LevelsTouched int     `json:"levelsTouched"`
}

// FromQuanta converts a quantum-stats trace into export records.
func FromQuanta(quanta []sched.QuantumStats) []Record {
	out := make([]Record, len(quanta))
	for i, q := range quanta {
		out[i] = Record{
			Quantum:       q.Index,
			Request:       q.Request,
			Allotment:     q.Allotment,
			Steps:         q.Steps,
			Work:          q.Work,
			CPL:           q.CPL,
			Parallelism:   q.AvgParallelism(),
			Waste:         q.Waste(),
			Full:          q.Full(),
			Deprived:      q.Deprived,
			Completed:     q.Completed,
			WorkEff:       q.WorkEfficiency(),
			CPLEff:        q.CPLEfficiency(),
			LevelsTouched: q.LevelsTouched,
		}
	}
	return out
}

// csvHeader is the column order of WriteCSV.
var csvHeader = []string{
	"quantum", "request", "allotment", "steps", "work", "cpl",
	"parallelism", "waste", "full", "deprived", "completed",
	"alpha", "beta", "levels_touched",
}

// WriteCSV writes the records as CSV with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.Quantum),
			f(r.Request),
			strconv.Itoa(r.Allotment),
			strconv.Itoa(r.Steps),
			strconv.FormatInt(r.Work, 10),
			f(r.CPL),
			f(r.Parallelism),
			strconv.FormatInt(r.Waste, 10),
			strconv.FormatBool(r.Full),
			strconv.FormatBool(r.Deprived),
			strconv.FormatBool(r.Completed),
			f(r.WorkEff),
			f(r.CPLEff),
			strconv.Itoa(r.LevelsTouched),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the records as an indented JSON array.
func WriteJSON(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// Series is a named (x, y) series for experiment output (one plotted curve).
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// NewSeries validates lengths and builds a Series.
func NewSeries(name string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("trace: series %q has %d x values but %d y values", name, len(x), len(y))
	}
	return Series{Name: name, X: x, Y: y}, nil
}

// WriteSeriesCSV writes one or more series sharing no particular x grid as
// long-form CSV: series,x,y.
func WriteSeriesCSV(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("trace: series %q length mismatch", s.Name)
		}
		for i := range s.X {
			if err := cw.Write([]string{s.Name, f(s.X[i]), f(s.Y[i])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSeriesJSON writes the series as indented JSON.
func WriteSeriesJSON(w io.Writer, series []Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series)
}
