package sim

import (
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/workload"
	"abg/internal/xrand"
)

func TestAdaptiveLValidation(t *testing.T) {
	p := workload.ConstantJob(2, 1, 10)
	bad := []AdaptiveLConfig{
		{LMin: 0, LMax: 10},
		{LMin: 10, LMax: 5},
		{LMin: 5, LMax: 10, Grow: 0.5},
		{LMin: 5, LMax: 10, StableTol: -1},
	}
	for i, cfg := range bad {
		if _, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(4), cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestAdaptiveLGrowsOnStableRequests(t *testing.T) {
	// Constant parallelism: after convergence the requests stop moving and
	// the quantum length must ramp from LMin to LMax.
	p := workload.ConstantJob(8, 60, 50)
	res, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(32), AdaptiveLConfig{LMin: 25, LMax: 400, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	sawMax := false
	for _, q := range res.Quanta {
		if q.Length == 400 {
			sawMax = true
		}
		if q.Length < 25 || q.Length > 400 {
			t.Fatalf("quantum length %d out of bounds", q.Length)
		}
	}
	if !sawMax {
		t.Fatal("quantum length never reached LMax on a stable job")
	}
	// Fewer feedback actions than fixed LMin would need.
	fixed, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(32), SingleConfig{L: 25, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumQuanta >= fixed.NumQuanta {
		t.Fatalf("adaptive L used %d quanta, fixed LMin used %d", res.NumQuanta, fixed.NumQuanta)
	}
}

func TestAdaptiveLResetsOnParallelismChange(t *testing.T) {
	// A job that steps between two very different widths keeps disturbing
	// the request, so the length must fall back to LMin after each change.
	p := workload.StepWidths([]int{2, 40, 2, 40, 2, 40}, 600)
	res, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(64), AdaptiveLConfig{LMin: 50, LMax: 800, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	resets := 0
	for i := 1; i < len(res.Quanta); i++ {
		if res.Quanta[i].Length == 50 && res.Quanta[i-1].Length > 50 {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("quantum length never reset on parallelism changes")
	}
}

func TestAdaptiveLAccounting(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 5; trial++ {
		p := workload.GenJob(rng, workload.ScaledJobParams(rng.IntRange(2, 10), 50, 1))
		res, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(64), AdaptiveLConfig{LMin: 20, LMax: 200, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.AllottedCycles-res.Work != res.Waste {
			t.Fatal("accounting identity broken")
		}
		var steps int64
		var work int64
		for _, q := range res.Quanta {
			steps += int64(q.Steps)
			work += q.Work
		}
		if steps != res.Runtime || work != res.Work {
			t.Fatal("trace totals disagree")
		}
	}
}

func TestAdaptiveLMaxQuanta(t *testing.T) {
	p := workload.ConstantJob(2, 20, 20)
	_, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewStatic(1), sched.BGreedy(),
		alloc.NewUnconstrained(4), AdaptiveLConfig{LMin: 5, LMax: 10, MaxQuanta: 2})
	if err == nil {
		t.Fatal("expected max-quanta error")
	}
}

func TestAdaptiveLDefaultsApplied(t *testing.T) {
	cfg := AdaptiveLConfig{LMin: 5, LMax: 50}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Grow != 2 || cfg.StableTol != 0.05 || cfg.MaxQuanta != DefaultMaxQuanta {
		t.Fatalf("defaults: %+v", cfg)
	}
}
