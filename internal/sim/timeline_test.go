package sim

import (
	"reflect"
	"testing"

	"abg/internal/alloc"
	"abg/internal/fault"
	"abg/internal/obs"
)

// timelineRun drives the equivSpecs job set through an engine with the given
// TimelineRing setting and returns the engine, result, and event stream.
func timelineRun(t *testing.T, ring int) (*Engine, MultiResult, []obs.Event) {
	t.Helper()
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	eng, err := NewEngine(MultiConfig{
		P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{},
		Obs: bus, TimelineRing: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range equivSpecs(t, fault.Plan{}, bus) {
		if _, err := eng.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return eng, res, rec.Events()
}

func TestTimelineObservational(t *testing.T) {
	// Enabling the timeline ring must leave the simulation bit-identical:
	// same MultiResult, same event stream, sample for sample.
	_, resOff, evOff := timelineRun(t, 0)
	engOn, resOn, evOn := timelineRun(t, 64)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Fatalf("TimelineRing perturbed the result:\noff=%+v\non=%+v", resOff, resOn)
	}
	if !reflect.DeepEqual(evOff, evOn) {
		t.Fatalf("TimelineRing perturbed the event stream (%d vs %d events)",
			len(evOff), len(evOn))
	}
	// And the timeline itself must agree with the authoritative outcome.
	for id := range resOn.Jobs {
		samples, evicted, ok := engOn.Timeline(id)
		if !ok {
			t.Fatalf("Timeline(%d) unknown id", id)
		}
		if evicted != 0 {
			t.Fatalf("job %d evicted %d samples with a 64-deep ring", id, evicted)
		}
		executed := 0
		var work int64
		for _, s := range samples {
			if s.Allotment > 0 {
				executed++
				work += s.Work
			} else if !s.Deprived || s.Steps != 0 {
				t.Fatalf("job %d stalled sample malformed: %+v", id, s)
			}
		}
		if executed != resOn.Jobs[id].NumQuanta {
			t.Fatalf("job %d timeline has %d executed quanta, outcome says %d",
				id, executed, resOn.Jobs[id].NumQuanta)
		}
		if work != resOn.Jobs[id].Work+resOn.Jobs[id].LostWork {
			t.Fatalf("job %d timeline work %d, outcome %d", id, work, resOn.Jobs[id].Work)
		}
		last := samples[len(samples)-1]
		if !last.Completed {
			t.Fatalf("job %d final sample not marked completed: %+v", id, last)
		}
	}
}

func TestTimelineRingBounded(t *testing.T) {
	bus := obs.NewBus()
	eng, err := NewEngine(MultiConfig{
		P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{},
		Obs: bus, TimelineRing: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := equivSpecs(t, fault.Plan{}, bus)
	id, err := eng.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := res.Jobs[id].NumQuanta
	if total <= 4 {
		t.Fatalf("test job too short to exercise eviction: %d quanta", total)
	}
	samples, evicted, ok := eng.Timeline(id)
	if !ok || len(samples) != 4 {
		t.Fatalf("ring kept %d samples (ok=%v), want 4", len(samples), ok)
	}
	if evicted != total-4 {
		t.Fatalf("evicted = %d, want %d", evicted, total-4)
	}
	// Chronological order, ending at the final quantum.
	for i := 1; i < len(samples); i++ {
		if samples[i].Boundary <= samples[i-1].Boundary {
			t.Fatalf("samples out of order: %+v", samples)
		}
	}
	if got := samples[3].Quantum; got != total {
		t.Fatalf("last retained quantum = %d, want %d", got, total)
	}
	if !samples[3].Completed {
		t.Fatal("final quantum not marked completed")
	}
}

func TestTimelineDisabledAndUnknown(t *testing.T) {
	bus := obs.NewBus()
	eng, err := NewEngine(MultiConfig{
		P: 4, L: 50, Allocator: alloc.DynamicEquiPartition{}, Obs: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := equivSpecs(t, fault.Plan{}, bus)
	id, _ := eng.Submit(specs[0])
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if samples, evicted, ok := eng.Timeline(id); !ok || samples != nil || evicted != 0 {
		t.Fatalf("disabled timeline: samples=%v evicted=%d ok=%v", samples, evicted, ok)
	}
	if _, _, ok := eng.Timeline(99); ok {
		t.Fatal("unknown id reported ok")
	}
}
