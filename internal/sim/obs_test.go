package sim

import (
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/workload"
)

// countKinds tallies recorded events per kind.
func countKinds(events []obs.Event) map[obs.Kind]int {
	out := make(map[obs.Kind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

func TestRunSingleEmitsEventStream(t *testing.T) {
	const width, L = 6, 50
	p := workload.ConstantJob(width, 8, L)
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()

	res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(64), SingleConfig{L: L, KeepTrace: true, Obs: bus})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	if events[0].Kind != obs.EvJobAdmitted {
		t.Fatalf("first event %v, want job_admitted", events[0].Kind)
	}
	if last := events[len(events)-1]; last.Kind != obs.EvJobCompleted {
		t.Fatalf("last event %v, want job_completed", last.Kind)
	} else if last.Response != res.Runtime {
		t.Fatalf("completion response %d, want runtime %d", last.Response, res.Runtime)
	}
	counts := countKinds(events)
	if counts[obs.EvRequest] != res.NumQuanta || counts[obs.EvAllotment] != res.NumQuanta ||
		counts[obs.EvQuantumEnd] != res.NumQuanta {
		t.Fatalf("per-quantum event counts %v, want %d each", counts, res.NumQuanta)
	}
	// Unconstrained allocator: never deprived, so no transitions.
	if counts[obs.EvDeprived] != 0 || counts[obs.EvSatisfied] != 0 {
		t.Fatalf("unexpected deprivation transitions: %v", counts)
	}
	// The quantum-end stream mirrors the kept trace.
	qi := 0
	for _, e := range events {
		if e.Kind != obs.EvQuantumEnd {
			continue
		}
		st := res.Quanta[qi]
		if e.Quantum != st.Index || e.Steps != st.Steps || e.Work != st.Work ||
			e.Time != st.Start+int64(st.Steps) {
			t.Fatalf("quantum_end %d = %+v, trace %+v", qi, e, st)
		}
		qi++
	}
}

func TestRunSingleDeprivationTransitions(t *testing.T) {
	const width, L = 12, 40
	p := workload.ConstantJob(width, 12, L)
	// Availability alternates between plentiful and starved in blocks, so
	// the job crosses the deprived boundary at least twice.
	avail := func(q int) int {
		if (q/3)%2 == 1 {
			return 2
		}
		return 64
	}
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	_, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewAvailabilityTrace(64, avail, "blocky"), SingleConfig{L: L, Obs: bus})
	if err != nil {
		t.Fatal(err)
	}
	counts := countKinds(rec.Events())
	if counts[obs.EvDeprived] == 0 {
		t.Fatal("no deprived transition emitted under a starving allocator")
	}
	if counts[obs.EvSatisfied] == 0 {
		t.Fatal("no satisfied transition emitted after availability returned")
	}
	// Transitions alternate: deprived and satisfied counts differ by ≤ 1.
	diff := counts[obs.EvDeprived] - counts[obs.EvSatisfied]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("transitions do not alternate: %v", counts)
	}
}

func TestRunSingleStartStamps(t *testing.T) {
	p := workload.ConstantJob(4, 6, 30)
	res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(16), SingleConfig{L: 30, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	var at int64
	for i, q := range res.Quanta {
		if q.Start != at {
			t.Fatalf("quantum %d starts at %d, want %d", i, q.Start, at)
		}
		at += int64(q.Steps)
	}
	if at != res.Runtime {
		t.Fatalf("start+steps chain ends at %d, runtime %d", at, res.Runtime)
	}
}

func TestRunMultiEmitsEventStream(t *testing.T) {
	const L = 25
	specs := []JobSpec{
		abgSpec("a", 0, workload.ConstantJob(8, 6, L)),
		abgSpec("b", L, workload.ConstantJob(8, 6, L)),
	}
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	res, err := RunMulti(specs, MultiConfig{
		P: 8, L: L, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true, Obs: bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	counts := countKinds(events)
	if counts[obs.EvJobAdmitted] != 2 || counts[obs.EvJobCompleted] != 2 {
		t.Fatalf("job lifecycle counts: %v", counts)
	}
	if counts[obs.EvAllocDecision] != res.QuantaElapsed {
		t.Fatalf("alloc decisions %d, want one per boundary %d",
			counts[obs.EvAllocDecision], res.QuantaElapsed)
	}
	wantQuanta := res.Jobs[0].NumQuanta + res.Jobs[1].NumQuanta
	if counts[obs.EvQuantumEnd] != wantQuanta {
		t.Fatalf("quantum_end events %d, want %d", counts[obs.EvQuantumEnd], wantQuanta)
	}
	// Job b is admitted at its release boundary, not before.
	for _, e := range events {
		if e.Kind == obs.EvJobAdmitted && e.Name == "b" {
			if e.Time < specs[1].Release {
				t.Fatalf("job b admitted at %d before release %d", e.Time, specs[1].Release)
			}
		}
		if e.Kind == obs.EvJobCompleted {
			j := res.Jobs[e.Job]
			if e.Response != j.Response || e.Time != j.Completion {
				t.Fatalf("completion event %+v disagrees with outcome %+v", e, j)
			}
		}
		if e.Kind == obs.EvAllocDecision {
			if e.Name != "dynamic-equi-partitioning" || e.P != 8 {
				t.Fatalf("alloc decision %+v", e)
			}
		}
	}
}

func TestRunSingleAdaptiveLEmits(t *testing.T) {
	p := workload.ConstantJob(5, 10, 40)
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	res, err := RunSingleAdaptiveL(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(16), AdaptiveLConfig{LMin: 10, LMax: 80, Obs: bus})
	if err != nil {
		t.Fatal(err)
	}
	counts := countKinds(rec.Events())
	if counts[obs.EvQuantumEnd] != res.NumQuanta || counts[obs.EvJobCompleted] != 1 {
		t.Fatalf("adaptive-L event counts %v (quanta %d)", counts, res.NumQuanta)
	}
	if len(res.Quanta) != 0 {
		t.Fatal("trace kept without KeepTrace")
	}
}

func TestDeprecatedRetentionShims(t *testing.T) {
	p := workload.ConstantJob(4, 4, 20)
	run := func(cfg SingleConfig) SingleResult {
		t.Helper()
		res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(SingleConfig{L: 20}); len(res.Quanta) != 0 {
		t.Fatal("zero-value SingleConfig kept a trace")
	}
	if res := run(SingleConfig{L: 20, KeepTrace: true}); len(res.Quanta) == 0 {
		t.Fatal("KeepTrace dropped the trace")
	}
	// The deprecated opt-out still forces the trace off.
	if res := run(SingleConfig{L: 20, KeepTrace: true, DropTrace: true}); len(res.Quanta) != 0 {
		t.Fatal("DropTrace shim ignored")
	}

	mrun := func(cfg MultiConfig) MultiResult {
		t.Helper()
		cfg.P, cfg.L, cfg.Allocator = 8, 20, alloc.DynamicEquiPartition{}
		res, err := RunMulti([]JobSpec{abgSpec("a", 0, workload.ConstantJob(4, 4, 20))}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := mrun(MultiConfig{}); len(res.Jobs[0].Quanta) != 0 {
		t.Fatal("zero-value MultiConfig kept traces")
	}
	if res := mrun(MultiConfig{KeepTrace: true}); len(res.Jobs[0].Quanta) == 0 {
		t.Fatal("MultiConfig.KeepTrace dropped traces")
	}
	// The deprecated plural spelling still opts in.
	if res := mrun(MultiConfig{KeepTraces: true}); len(res.Jobs[0].Quanta) == 0 {
		t.Fatal("KeepTraces shim ignored")
	}
}
