package sim

import (
	"fmt"
	"runtime"

	"abg/internal/alloc"
	"abg/internal/obs"
	"abg/internal/parallel"
	"abg/internal/sched"
)

// Engine is the incremental form of the multiprogrammed simulator: the body
// of RunMulti exposed as a stepped state machine. Where RunMulti materialises
// the whole job set up front and runs to completion, an Engine accepts jobs
// while it runs — Submit enqueues a job that becomes schedulable at the next
// quantum boundary, Step advances the simulation by exactly one boundary, and
// Drain stops admission so the remaining work can be run down. RunMulti is a
// thin wrapper over the Engine, and stepped execution reproduces its event
// stream and MultiResult bit-identically.
//
// An Engine is not safe for concurrent use; callers that drive it from
// multiple goroutines (e.g. abg/internal/server) must serialise access.
type Engine struct {
	cfg  MultiConfig
	maxQ int
	L64  int64

	states    []jobState
	res       MultiResult
	remaining int
	k         int // next quantum boundary to process
	capNow    int // last emitted effective capacity
	draining  bool

	// Reusable per-boundary scratch. allot wraps the configured allocator
	// with buffer reuse; qstats holds the execute phase's per-position
	// measurements; scratch is the per-step-worker quantum scratch (worker w
	// owns scratch[w] exclusively while a step's execute phase runs);
	// statusBuf backs Statuses.
	activeIdx []int
	requests  []int
	allot     *alloc.Allotter
	qstats    []sched.QuantumStats
	scratch   []sched.Scratch
	statusBuf []JobStatus
}

// jobState is the engine's per-job bookkeeping.
type jobState struct {
	spec        *JobSpec
	request     float64
	started     bool
	done        bool
	deprived    bool
	attemptWork int64 // work completed since the job's last (re)start
	last        sched.QuantumStats
	// timeline is the bounded quantum-sample ring (MultiConfig.TimelineRing);
	// observational only, excluded from snapshots.
	timeline *timelineRing
}

// StepInfo reports what one Step processed.
type StepInfo struct {
	// Boundary is the global boundary index that was processed (the k-th
	// quantum boundary, 0-based); Time is its simulation step, k·L.
	Boundary int
	Time     int64
	// Executed reports that at least one job was active and a quantum ran.
	Executed bool
	// Idle reports that no unfinished job exists: time advanced one quantum
	// with nothing to do (only a live service ever observes this).
	Idle bool
	// FastForwarded reports that every unfinished job is released in the
	// future and the clock jumped to the boundary at or after the earliest
	// release (the same jump RunMulti performs).
	FastForwarded bool
	// Active is the number of jobs that took part in the executed quantum.
	Active int
	// Completed lists the ids of jobs that finished during this step.
	Completed []int
	// QuantaElapsed is the global boundary count after this step.
	QuantaElapsed int
}

// JobState classifies a job's lifecycle stage.
type JobState uint8

const (
	// JobPending: submitted, but its release is still in the future.
	JobPending JobState = iota
	// JobRunning: admitted and executing.
	JobRunning
	// JobDone: all tasks complete.
	JobDone
)

// String returns the state's lowercase name.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// JobStatus is a live snapshot of one job — the per-job view a service
// exposes while the engine runs. Request is the current continuous d(q);
// Allotment, Parallelism and Deprived describe the job's last executed
// quantum.
type JobStatus struct {
	ID           int
	Name         string
	State        JobState
	Release      int64
	Completion   int64 // valid when State == JobDone
	Response     int64 // valid when State == JobDone
	Work         int64
	CriticalPath int
	Request      float64 // current continuous request d(q)
	IntRequest   int     // ⌈d(q)⌉ as presented to the allocator
	Allotment    int     // a(q) of the last executed quantum
	Parallelism  float64 // measured A(q) of the last executed quantum
	Deprived     bool    // last executed quantum was deprived
	NumQuanta    int
	DeprivedQ    int
	Restarts     int
	LostWork     int64
	Waste        int64
}

// NewEngine validates the machine configuration and returns an empty engine
// at boundary 0 with no jobs submitted.
func NewEngine(cfg MultiConfig) (*Engine, error) {
	if cfg.P < 1 || cfg.L < 1 {
		return nil, fmt.Errorf("sim: invalid machine P=%d L=%d", cfg.P, cfg.L)
	}
	if cfg.Allocator == nil {
		return nil, fmt.Errorf("sim: nil allocator")
	}
	maxQ := cfg.MaxQuanta
	if maxQ <= 0 {
		maxQ = DefaultMaxQuanta
	}
	return &Engine{cfg: cfg, maxQ: maxQ, L64: int64(cfg.L), capNow: -1,
		allot: alloc.NewAllotter(cfg.Allocator)}, nil
}

// stepWorkers resolves MultiConfig.StepWorkers against the number of jobs
// active this boundary: ≤ 0 selects one worker per CPU, and the count never
// exceeds the active job count.
func (e *Engine) stepWorkers(active int) int {
	w := e.cfg.StepWorkers
	if w <= 0 {
		if w == 0 {
			return 1 // default: serial
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > active {
		w = active
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Submit adds a job to the running simulation and returns its id (dense,
// in submission order). The job becomes schedulable at the first boundary at
// or after its Release; a Release at or before Now lands on the next
// processed boundary. The engine owns a copy of the spec, so a restart never
// mutates the caller's value. Submit fails after Drain.
func (e *Engine) Submit(spec JobSpec) (int, error) {
	if e.draining {
		return -1, fmt.Errorf("sim: engine is draining, submission rejected")
	}
	if spec.Inst == nil || spec.Policy == nil {
		return -1, fmt.Errorf("sim: job %d missing instance or policy", len(e.states))
	}
	sp := spec
	id := len(e.states)
	e.states = append(e.states, jobState{spec: &sp})
	e.res.Jobs = append(e.res.Jobs, JobOutcome{
		Name:         sp.Name,
		Release:      sp.Release,
		Work:         sp.Inst.TotalWork(),
		CriticalPath: sp.Inst.CriticalPathLen(),
	})
	e.remaining++
	return id, nil
}

// Drain stops admission: every later Submit fails, while the jobs already
// accepted keep running to completion. Draining is idempotent.
func (e *Engine) Drain() { e.draining = true }

// Draining reports whether Drain has been called.
func (e *Engine) Draining() bool { return e.draining }

// Done reports whether every submitted job has completed.
func (e *Engine) Done() bool { return e.remaining == 0 }

// NumJobs returns the number of jobs submitted so far.
func (e *Engine) NumJobs() int { return len(e.states) }

// Boundary returns the index of the next quantum boundary to process.
func (e *Engine) Boundary() int { return e.k }

// Now returns the simulation time of the next boundary, Boundary()·L.
func (e *Engine) Now() int64 { return int64(e.k) * e.L64 }

// QuantaElapsed returns the number of executed global boundaries.
func (e *Engine) QuantaElapsed() int { return e.res.QuantaElapsed }

// Remaining returns the number of admitted-but-unfinished jobs.
func (e *Engine) Remaining() int { return e.remaining }

// AggregateRequest sums the integer processor requests of every admitted,
// unfinished job — the engine's aggregate desire for the next quantum. This
// is the second level of the paper's feedback protocol: just as each job
// reports a desire d(q) to its engine, an engine reports Σ d(q) to a
// cluster-level allocator, which partitions the machine across engine shards
// by the same desire/allotment rules (see internal/cluster). The value is a
// pure function of engine state and reading it never perturbs the run.
func (e *Engine) AggregateRequest() int {
	total := 0
	for i := range e.states {
		s := &e.states[i]
		if s.started && !s.done {
			total += RoundRequest(s.request)
		}
	}
	return total
}

// Step advances the simulation by one quantum boundary: it admits every
// submitted job whose release has arrived, collects their requests, invokes
// the allocator once, executes one quantum per active job, and feeds the
// measured statistics back into each job's policy — exactly one iteration of
// RunMulti's loop. When every unfinished job is released in the future the
// clock jumps to the earliest release boundary instead (FastForwarded); with
// no unfinished jobs at all it advances one idle quantum (Idle).
func (e *Engine) Step() (StepInfo, error) {
	info := StepInfo{Boundary: e.k, Time: int64(e.k) * e.L64,
		QuantaElapsed: e.res.QuantaElapsed}
	if e.remaining == 0 {
		// Nothing submitted and unfinished: a live service idling between
		// arrivals. Time advances; the MaxQuanta budget (a bound on how long
		// a job set may take, not on service uptime) is not consumed.
		e.k++
		info.Idle = true
		return info, nil
	}
	if e.k > e.maxQ {
		return info, fmt.Errorf("sim: job set did not finish within %d quanta", e.maxQ)
	}
	cfg := &e.cfg
	now := info.Time
	// Collect active jobs; fast-forward if none are released yet.
	e.activeIdx = e.activeIdx[:0]
	var nextRelease int64 = -1
	for i := range e.states {
		s := &e.states[i]
		if s.done {
			continue
		}
		if s.spec.Release > now {
			if nextRelease < 0 || s.spec.Release < nextRelease {
				nextRelease = s.spec.Release
			}
			continue
		}
		if !s.started {
			s.started = true
			s.request = s.spec.Policy.InitialRequest()
			if cfg.Obs.Active() {
				cfg.Obs.Emit(obs.Event{Kind: obs.EvJobAdmitted, Time: now,
					Job: i, Name: s.spec.Name, Work: e.res.Jobs[i].Work,
					Parallelism: avgParallelism(e.res.Jobs[i].Work, e.res.Jobs[i].CriticalPath)})
			}
			if s.spec.Inst.Done() {
				// A zero-work job (nothing left to execute) completes in its
				// arrival quantum: running it through the allocator would
				// never raise Completed and the job would hang the set.
				e.completeJob(i, now)
				info.Completed = append(info.Completed, i)
				continue
			}
		}
		e.activeIdx = append(e.activeIdx, i)
	}
	if len(e.activeIdx) == 0 {
		if e.remaining == 0 {
			// Zero-work admissions emptied the system at this boundary.
			e.k++
			info.QuantaElapsed = e.res.QuantaElapsed
			return info, nil
		}
		// Jump to the boundary at or after the next release.
		e.k = int((nextRelease + e.L64 - 1) / e.L64)
		info.FastForwarded = true
		return info, nil
	}
	e.res.QuantaElapsed++
	info.Executed = true
	info.Active = len(e.activeIdx)
	e.requests = e.requests[:0]
	for _, i := range e.activeIdx {
		r := RoundRequest(e.states[i].request)
		e.requests = append(e.requests, r)
		if cfg.Obs.Active() {
			cfg.Obs.Emit(obs.Event{Kind: obs.EvRequest, Time: now,
				Quantum: e.res.Jobs[i].NumQuanta + 1, Job: i, Name: e.states[i].spec.Name,
				Request: e.states[i].request, IntRequest: r})
		}
	}
	pEff := cfg.P
	if cfg.Capacity != nil {
		pEff = alloc.CapAt(cfg.Capacity, e.k+1, cfg.P)
		if pEff != e.capNow {
			e.capNow = pEff
			if cfg.Obs.Active() {
				cfg.Obs.Emit(obs.Event{Kind: obs.EvCapacity, Time: now,
					Quantum: e.res.QuantaElapsed, Job: -1,
					Name: cfg.Capacity.Name(), P: pEff})
			}
		}
	}
	allots := e.allot.Allot(e.requests, pEff)
	if cfg.Obs.Active() {
		totalReq, totalAllot := 0, 0
		for pos := range e.requests {
			totalReq += e.requests[pos]
			totalAllot += allots[pos]
		}
		cfg.Obs.Emit(obs.Event{Kind: obs.EvAllocDecision, Time: now,
			Quantum: e.res.QuantaElapsed, Job: -1, Name: cfg.Allocator.Name(),
			P: pEff, IntRequest: totalReq, Allotment: totalAllot})
	}
	// Execute phase: run every granted job's quantum. Each execution is
	// self-contained — the job's own instance plus one per-worker Scratch —
	// and the measured stats land by position, so the phase parallelises
	// across jobs without changing any observable output: every read or
	// write of shared engine state (events, traces, waste, restarts,
	// completions, feedback) happens in the reduce loop below, serially and
	// in job-index order, exactly as the serial engine did it.
	if cap(e.qstats) < len(e.activeIdx) {
		e.qstats = make([]sched.QuantumStats, len(e.activeIdx))
	}
	qstats := e.qstats[:len(e.activeIdx)]
	workers := e.stepWorkers(len(e.activeIdx))
	for len(e.scratch) < workers {
		e.scratch = append(e.scratch, sched.Scratch{})
	}
	execOne := func(worker, pos int) {
		if a := allots[pos]; a > 0 {
			s := &e.states[e.activeIdx[pos]]
			qstats[pos] = sched.RunQuantumScratch(s.spec.Inst, s.spec.Sched, a, cfg.L, &e.scratch[worker])
		}
	}
	if workers > 1 {
		parallel.ForEachShard(len(e.activeIdx), workers, execOne)
	} else {
		for pos := range e.activeIdx {
			execOne(0, pos)
		}
	}
	// Reduce phase, in job-index order.
	for pos, i := range e.activeIdx {
		s := &e.states[i]
		a := allots[pos]
		if cfg.Obs.Active() {
			cfg.Obs.Emit(obs.Event{Kind: obs.EvAllotment, Time: now,
				Quantum: e.res.Jobs[i].NumQuanta + 1, Job: i, Name: s.spec.Name,
				IntRequest: e.requests[pos], Allotment: a, Deprived: a < e.requests[pos]})
		}
		if a <= 0 {
			// No processors this quantum (|J| > P); the job stalls and
			// its request stands.
			if cfg.TimelineRing > 0 {
				e.recordSample(i, QuantumSample{
					Quantum: e.res.Jobs[i].NumQuanta + 1, Boundary: e.k, Time: now,
					Request: s.request, IntRequest: e.requests[pos],
					Deprived: true,
				})
			}
			continue
		}
		st := qstats[pos]
		st.Index = e.res.Jobs[i].NumQuanta + 1
		st.Start = now
		st.Request = s.request
		st.Deprived = a < e.requests[pos]
		s.last = st
		e.res.Jobs[i].NumQuanta++
		if st.Deprived {
			e.res.Jobs[i].DeprivedQ++
		}
		if cfg.keepTrace() {
			e.res.Jobs[i].Quanta = append(e.res.Jobs[i].Quanta, st)
		}
		if cfg.TimelineRing > 0 {
			e.recordSample(i, QuantumSample{
				Quantum: st.Index, Boundary: e.k, Time: now,
				Request: st.Request, IntRequest: e.requests[pos],
				Allotment: a, Steps: st.Steps, Work: st.Work,
				Parallelism: st.AvgParallelism(),
				Deprived:    st.Deprived, Completed: st.Completed,
			})
		}
		// The job holds its allotment until the boundary, so the whole
		// quantum's cycles are charged.
		waste := int64(a)*e.L64 - st.Work
		e.res.Jobs[i].Waste += waste
		e.res.TotalWaste += waste
		s.attemptWork += st.Work
		if cfg.Obs.Active() {
			emitQuantum(cfg.Obs, st, i, s.spec.Name, &s.deprived)
		}
		if !st.Completed && s.spec.Restart.fires(st.Index, e.res.Jobs[i].Restarts) {
			e.res.Jobs[i].Restarts++
			e.res.Jobs[i].LostWork += s.attemptWork
			if cfg.Obs.Active() {
				cfg.Obs.Emit(obs.Event{Kind: obs.EvJobRestarted,
					Time: now + int64(st.Steps), Quantum: st.Index,
					Job: i, Name: s.spec.Name, Work: s.attemptWork})
			}
			s.attemptWork = 0
			s.spec.Inst = s.spec.Restart.New()
			s.spec.Policy.Reset()
			s.request = s.spec.Policy.InitialRequest()
			continue
		}
		if st.Completed {
			e.completeJob(i, now+int64(st.Steps))
			info.Completed = append(info.Completed, i)
		} else {
			s.request = s.spec.Policy.NextRequest(st)
		}
	}
	e.k++
	info.QuantaElapsed = e.res.QuantaElapsed
	return info, nil
}

// completeJob marks job i done as of step t and emits its completion event.
func (e *Engine) completeJob(i int, t int64) {
	s := &e.states[i]
	s.done = true
	e.remaining--
	j := &e.res.Jobs[i]
	j.Completion = t
	j.Response = j.Completion - s.spec.Release
	if j.Completion > e.res.Makespan {
		e.res.Makespan = j.Completion
	}
	if e.cfg.Obs.Active() {
		e.cfg.Obs.Emit(obs.Event{Kind: obs.EvJobCompleted,
			Time: j.Completion, Job: i, Name: s.spec.Name,
			Work: j.Work, Response: j.Response})
	}
}

// Run steps the engine until every submitted job has completed and returns
// the result — RunMulti's tail. Jobs submitted while Run executes (from the
// same goroutine, e.g. via an obs subscriber) extend the run.
func (e *Engine) Run() (MultiResult, error) {
	for e.remaining > 0 {
		if _, err := e.Step(); err != nil {
			return e.Result(), err
		}
	}
	return e.Result(), nil
}

// Result returns a snapshot of the accumulated outcome. The Jobs slice is
// copied, so the snapshot stays stable while the engine keeps stepping.
func (e *Engine) Result() MultiResult {
	out := e.res
	out.Jobs = append([]JobOutcome(nil), e.res.Jobs...)
	return out
}

// JobStatus returns the live snapshot of one job; ok is false for an
// unknown id.
func (e *Engine) JobStatus(id int) (JobStatus, bool) {
	if id < 0 || id >= len(e.states) {
		return JobStatus{}, false
	}
	s := &e.states[id]
	j := &e.res.Jobs[id]
	st := JobStatus{
		ID:           id,
		Name:         j.Name,
		Release:      j.Release,
		Work:         j.Work,
		CriticalPath: j.CriticalPath,
		Request:      s.request,
		Allotment:    s.last.Allotment,
		Parallelism:  s.last.AvgParallelism(),
		Deprived:     s.last.Deprived,
		NumQuanta:    j.NumQuanta,
		DeprivedQ:    j.DeprivedQ,
		Restarts:     j.Restarts,
		LostWork:     j.LostWork,
		Waste:        j.Waste,
	}
	if s.started {
		st.IntRequest = RoundRequest(s.request)
	}
	switch {
	case s.done:
		st.State = JobDone
		st.Completion = j.Completion
		st.Response = j.Response
	case s.started:
		st.State = JobRunning
	default:
		st.State = JobPending
	}
	return st, true
}

// Statuses returns the live snapshot of every submitted job, in ascending
// id order (out[i].ID == i always). The returned slice is owned by the
// engine and reused by the next Statuses call, so a caller that serialises
// engine access (the documented contract) can poll it under load without
// per-call allocation; copy the elements before releasing the lock if they
// must outlive the next engine call.
func (e *Engine) Statuses() []JobStatus {
	if cap(e.statusBuf) < len(e.states) {
		e.statusBuf = make([]JobStatus, len(e.states))
	}
	out := e.statusBuf[:len(e.states)]
	for i := range e.states {
		out[i], _ = e.JobStatus(i)
	}
	return out
}
