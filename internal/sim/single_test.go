package sim

import (
	"math"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/sched"
	"abg/internal/workload"
	"abg/internal/xrand"
)

func TestRoundRequest(t *testing.T) {
	cases := []struct {
		d    float64
		want int
	}{
		{0, 1}, {0.3, 1}, {1, 1}, {1.0000000001, 1}, {1.1, 2}, {7.5, 8}, {8, 8}, {-2, 1},
	}
	for _, c := range cases {
		if got := RoundRequest(c.d); got != c.want {
			t.Errorf("RoundRequest(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRunSingleConstantJobABG(t *testing.T) {
	// Constant parallelism 10 for many quanta: A-Control requests converge
	// to 10 with rate r and stay (Theorem 1 realised in simulation).
	const width, L = 10, 100
	p := workload.ConstantJob(width, 20, L)
	res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(128), SingleConfig{L: L, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	reqs := res.Requests()
	// After a handful of quanta the request must sit at 10 ± tiny.
	for i := 6; i < len(reqs); i++ {
		if math.Abs(reqs[i]-width) > 0.05 {
			t.Fatalf("request %d = %v, want ~%d", i, reqs[i], width)
		}
	}
	// No overshoot ever.
	for i, d := range reqs {
		if d > width+1e-9 {
			t.Fatalf("request %d overshot: %v", i, d)
		}
	}
	// Runtime near optimal: T∞ plus the warm-up quanta where a < width.
	if res.NormalizedRuntime() > 1.25 {
		t.Fatalf("normalized runtime %v too high", res.NormalizedRuntime())
	}
}

func TestRunSingleAGreedyOscillates(t *testing.T) {
	const width, L = 10, 100
	p := workload.ConstantJob(width, 30, L)
	res, err := RunSingle(job.NewRun(p), feedback.DefaultAGreedy(), sched.Greedy(),
		alloc.NewUnconstrained(128), SingleConfig{L: L, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	reqs := res.Requests()
	if len(reqs) < 10 {
		t.Fatalf("too few quanta: %d", len(reqs))
	}
	// In the steady regime, requests keep moving.
	changes := 0
	for i := len(reqs) / 2; i < len(reqs); i++ {
		if reqs[i] != reqs[i-1] {
			changes++
		}
	}
	if changes == 0 {
		t.Fatalf("A-Greedy stabilised unexpectedly: %v", reqs)
	}
}

func TestRunSingleAccountingIdentity(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 10; trial++ {
		p := workload.GenJob(rng, workload.ScaledJobParams(rng.IntRange(2, 12), 50, 1))
		res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(64), SingleConfig{L: 50, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.AllottedCycles-res.Work != res.Waste {
			t.Fatalf("accounting: allotted %d − work %d != waste %d",
				res.AllottedCycles, res.Work, res.Waste)
		}
		if res.Work != p.Work() || res.CriticalPath != p.CriticalPathLen() {
			t.Fatal("work/cpl echo wrong")
		}
		// Runtime is at least both classic lower bounds for the granted
		// allotments... at minimum the critical path.
		if res.Runtime < int64(p.CriticalPathLen()) {
			t.Fatalf("runtime %d below critical path %d", res.Runtime, p.CriticalPathLen())
		}
		if res.Utilization() <= 0 || res.Utilization() > 1 {
			t.Fatalf("utilization %v out of range", res.Utilization())
		}
		if res.Speedup() <= 0 {
			t.Fatal("speedup must be positive")
		}
		sumSteps := 0
		for _, q := range res.Quanta {
			sumSteps += q.Steps
		}
		if int64(sumSteps) != res.Runtime {
			t.Fatal("trace steps disagree with runtime")
		}
		if res.NumQuanta != len(res.Quanta) {
			t.Fatal("NumQuanta disagrees with trace length")
		}
	}
}

func TestRunSingleDropTrace(t *testing.T) {
	p := workload.ConstantJob(4, 3, 20)
	res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(16), SingleConfig{L: 20, DropTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quanta) != 0 || res.NumQuanta == 0 {
		t.Fatalf("trace should be dropped: %d records, %d quanta", len(res.Quanta), res.NumQuanta)
	}
}

func TestRunSingleConfigValidation(t *testing.T) {
	p := workload.ConstantJob(2, 1, 10)
	if _, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(4), SingleConfig{L: 0}); err == nil {
		t.Fatal("L=0 accepted")
	}
}

func TestRunSingleMaxQuanta(t *testing.T) {
	p := workload.ConstantJob(2, 10, 10)
	_, err := RunSingle(job.NewRun(p), feedback.NewStatic(1), sched.BGreedy(),
		alloc.NewUnconstrained(4), SingleConfig{L: 10, MaxQuanta: 2})
	if err == nil {
		t.Fatal("expected max-quanta error")
	}
}

func TestRunSingleDeprivedFlag(t *testing.T) {
	// Availability of 3 with requests that grow beyond it: deprived quanta
	// must be flagged.
	p := workload.ConstantJob(16, 10, 50)
	a := alloc.NewAvailabilityTrace(128, func(int) int { return 3 }, "cap3")
	res, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.0), sched.BGreedy(), a,
		SingleConfig{L: 50, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	deprived := 0
	for _, q := range res.Quanta {
		if q.Deprived {
			deprived++
		}
		if q.Allotment > 3 {
			t.Fatalf("allotment %d above availability", q.Allotment)
		}
	}
	if deprived == 0 {
		t.Fatal("no deprived quanta recorded")
	}
}

func TestRunSingleBoundaryWaste(t *testing.T) {
	// A job that finishes mid-quantum leaves a boundary tail a·(L−steps).
	p := job.Constant(4, 30) // 30 levels; with a=4 finishes in 30 steps
	res, err := RunSingle(job.NewRun(p), feedback.NewStatic(4), sched.BGreedy(),
		alloc.NewUnconstrained(8), SingleConfig{L: 100, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != 30 {
		t.Fatalf("runtime = %d", res.Runtime)
	}
	if res.BoundaryWaste != 4*(100-30) {
		t.Fatalf("boundary waste = %d", res.BoundaryWaste)
	}
}

// TestLemma2RequestBounds validates Lemma 2 against simulation: with the
// transition factor C_L measured from the executed trace and r < 1/C_L,
// every full quantum satisfies
// (1−r)/(C_L−r)·A(q) ≤ d(q) ≤ C_L(1−r)/(1−C_L·r)·A(q).
func TestLemma2RequestBounds(t *testing.T) {
	rng := xrand.New(41)
	checked := 0
	for trial := 0; trial < 30; trial++ {
		w := rng.IntRange(2, 6)
		r := rng.FloatRange(0, 0.12)
		p := workload.GenJob(rng, workload.ScaledJobParams(w, 40, 1))
		res, err := RunSingle(job.NewRun(p), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewUnconstrained(256), SingleConfig{L: 40, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		if r >= 1/cl {
			continue // Lemma 2's upper bound does not apply
		}
		lo, hi := metrics.Lemma2Bounds(cl, r)
		for _, q := range res.Quanta {
			if !q.Full() {
				continue
			}
			a := q.AvgParallelism()
			if q.Request < lo*a-1e-9 {
				t.Fatalf("trial %d q%d: d=%v < lo bound %v (A=%v C_L=%v r=%v)",
					trial, q.Index, q.Request, lo*a, a, cl, r)
			}
			if q.Request > hi*a+1e-9 {
				t.Fatalf("trial %d q%d: d=%v > hi bound %v (A=%v C_L=%v r=%v)",
					trial, q.Index, q.Request, hi*a, a, cl, r)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("too few quanta checked: %d", checked)
	}
}

// TestTheorem4WasteBound validates Theorem 4 against simulation: total waste
// (including the final quantum's boundary tail, which the theorem budgets as
// P·L) stays below C_L(1−r)/(1−C_L·r)·T1 + P·L.
func TestTheorem4WasteBound(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 20; trial++ {
		w := rng.IntRange(2, 6)
		r := rng.FloatRange(0, 0.12)
		const P, L = 64, 40
		p := workload.GenJob(rng, workload.ScaledJobParams(w, L, 1))
		res, err := RunSingle(job.NewRun(p), feedback.NewAControl(r), sched.BGreedy(),
			alloc.NewUnconstrained(P), SingleConfig{L: L, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		if r >= 1/cl {
			continue
		}
		bound := metrics.Theorem4WasteBound(res.Work, cl, r, P, L)
		total := float64(res.Waste + res.BoundaryWaste)
		if total > bound+1e-6 {
			t.Fatalf("trial %d: waste %v > bound %v (C_L=%v r=%v T1=%d)",
				trial, total, bound, cl, r, res.Work)
		}
	}
}

// TestTheorem3RuntimeBound validates Theorem 3 against simulation under an
// adversarial availability trace: the runtime stays below
// 2·T1/P̃ + ((C_L+1−2r)/(1−r))·T∞ + L where P̃ is the trimmed availability.
//
// The workload is a gradual parallelism ramp: for fork-join jobs with
// abrupt serial↔parallel transitions C_L is as large as the parallel width,
// the trim term exceeds the whole run, P̃ is 0 and the bound is vacuous
// (+Inf). Ramps keep C_L ≈ 2 while reaching high parallelism, so the test
// asserts the bound where it actually bites (and checks it bit).
func TestTheorem3RuntimeBound(t *testing.T) {
	rng := xrand.New(47)
	const P, L = 64, 40
	nonVacuous := 0
	for trial := 0; trial < 15; trial++ {
		r := rng.FloatRange(0, 0.12)
		// Parallelism ramp 2 → up to P with adjacent ratios ≤ 2.
		widths := []int{2}
		for widths[len(widths)-1] < P {
			next := widths[len(widths)-1]*3/2 + 1
			if next > P {
				next = P
			}
			widths = append(widths, next)
		}
		p := workload.StepWidths(widths, rng.IntRange(L, 3*L))
		// Adversary: starve mostly, flood occasionally.
		flood := rng.IntRange(5, 9)
		availFn := func(q int) int {
			if q%flood == 0 {
				return P
			}
			return 2
		}
		a := alloc.NewAvailabilityTrace(P, availFn, "adversary")
		res, err := RunSingle(job.NewRun(p), feedback.NewAControl(r), sched.BGreedy(), a,
			SingleConfig{L: L, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		trimTerm := metrics.Theorem3TrimTerm(res.CriticalPath, cl, r)
		avail := make([]int, res.NumQuanta)
		for q := 1; q <= res.NumQuanta; q++ {
			v := availFn(q)
			if v < 1 {
				v = 1
			}
			if v > P {
				v = P
			}
			avail[q-1] = v
		}
		pTrim := metrics.TrimmedAvailability(avail, L, trimTerm+L)
		bound := metrics.Theorem3RuntimeBound(res.Work, res.CriticalPath, cl, r, L, pTrim)
		if pTrim > 0 {
			nonVacuous++
		}
		if float64(res.Runtime) > bound+1e-6 {
			t.Fatalf("trial %d: runtime %d > bound %v (C_L=%v r=%v P̃=%v)",
				trial, res.Runtime, bound, cl, r, pTrim)
		}
	}
	if nonVacuous < 8 {
		t.Fatalf("only %d/15 trials exercised a finite bound — test is vacuous", nonVacuous)
	}
}

// TestABGBeatsAGreedyOnWaste is the headline claim at unit-test scale: on
// fork-join jobs ABG wastes fewer processor cycles than A-Greedy.
func TestABGBeatsAGreedyOnWaste(t *testing.T) {
	rng := xrand.New(53)
	var abgWaste, agWaste float64
	const L = 100
	for trial := 0; trial < 12; trial++ {
		w := rng.IntRange(10, 60)
		params := workload.ScaledJobParams(w, L, 1)
		phases := workload.GenPhases(rng.Split(), params)
		p := workload.BuildForkJoin(phases)
		ra, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(128), SingleConfig{L: L, DropTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := RunSingle(job.NewRun(p), feedback.DefaultAGreedy(), sched.Greedy(),
			alloc.NewUnconstrained(128), SingleConfig{L: L, DropTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		abgWaste += ra.NormalizedWaste()
		agWaste += rg.NormalizedWaste()
	}
	if abgWaste >= agWaste {
		t.Fatalf("ABG waste %v >= A-Greedy waste %v", abgWaste, agWaste)
	}
}
