package sim

import (
	"reflect"
	"testing"

	"abg/internal/alloc"
	"abg/internal/fault"
	"abg/internal/obs"
)

// fullFaultSpec is the disturbance stack the PR 3/4 equivalence suites use:
// lossy control channel, measurement noise, capacity churn, seeded restarts.
const fullFaultSpec = "drop=0.15,delay=2:0.1,dup=0.1,noise=0.3,restart=0.1,restartat=2,maxrestarts=2,cap=churn:0.5:4,seed=11"

// runWithWorkers drives the standard equivalence job set through an engine
// configured with the given StepWorkers and returns the result, the
// recorded event stream, and a copy of the final statuses.
func runWithWorkers(t *testing.T, plan fault.Plan, workers int) (MultiResult, []obs.Event, []JobStatus) {
	t.Helper()
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	bus.Subscribe(rec)
	cfg := MultiConfig{P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true,
		Obs: bus, StepWorkers: workers}
	if plan.Capacity != nil {
		cfg.Capacity = plan.Capacity
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range equivSpecs(t, plan, bus) {
		if _, err := eng.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	steps := 0
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		if steps++; steps > DefaultMaxQuanta {
			t.Fatalf("workers=%d: engine did not terminate", workers)
		}
	}
	sts := append([]JobStatus(nil), eng.Statuses()...)
	return eng.Result(), rec.Events(), sts
}

// TestParallelStepEquivalence is the parallel-path determinism regression:
// stepping independent jobs concurrently (workers 2 and 8) must reproduce
// the serial engine's MultiResult, per-quantum traces, final statuses, and
// full event stream bit-identically — with and without the complete fault
// stack (lossy channel, noise, capacity churn, restarts) armed. Run under
// -race this also proves the execute phase shares no unsynchronised state.
func TestParallelStepEquivalence(t *testing.T) {
	plans := map[string]fault.Plan{"fault-free": {}}
	plan, err := fault.ParseSpec(fullFaultSpec, 16)
	if err != nil {
		t.Fatal(err)
	}
	plans["faulted"] = plan

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			refRes, refEv, refSts := runWithWorkers(t, plan, 0) // serial reference
			if refRes.Makespan == 0 || refRes.QuantaElapsed == 0 {
				t.Fatalf("degenerate reference run: %+v", refRes)
			}
			if name == "faulted" {
				restarts := 0
				for _, j := range refRes.Jobs {
					restarts += j.Restarts
				}
				if restarts == 0 {
					t.Fatal("fault plan injected no restarts; equivalence check lost its teeth")
				}
			}
			for _, workers := range []int{1, 2, 8} {
				res, ev, sts := runWithWorkers(t, plan, workers)
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("workers=%d: results diverge:\n got %+v\nwant %+v", workers, res, refRes)
				}
				if !reflect.DeepEqual(ev, refEv) {
					t.Fatalf("workers=%d: event streams diverge (%d events, want %d)",
						workers, len(ev), len(refEv))
				}
				if !reflect.DeepEqual(sts, refSts) {
					t.Fatalf("workers=%d: statuses diverge:\n got %+v\nwant %+v", workers, sts, refSts)
				}
			}
		})
	}
}

// TestParallelSnapshotRestoreEquivalence: a parallel engine snapshotted
// mid-run and restored into an engine with a different worker count must
// continue to the serial reference's exact result and event suffix —
// StepWorkers is a pure execution knob, invisible to persisted state.
func TestParallelSnapshotRestoreEquivalence(t *testing.T) {
	plan, err := fault.ParseSpec(fullFaultSpec, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := MultiConfig{P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{}, Capacity: plan.Capacity}

	// Serial reference with per-step event counts.
	busR := obs.NewBus()
	recR := &obs.Recorder{}
	busR.Subscribe(recR)
	cfgR := base
	cfgR.Obs = busR
	engR, err := NewEngine(cfgR)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range equivSpecs(t, plan, busR) {
		if _, err := engR.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	prefix := []int{len(recR.Events())}
	for !engR.Done() {
		if _, err := engR.Step(); err != nil {
			t.Fatal(err)
		}
		if prefix = append(prefix, len(recR.Events())); len(prefix) > DefaultMaxQuanta {
			t.Fatal("reference run did not terminate")
		}
	}
	total := len(prefix) - 1
	refRes := engR.Result()
	refEvents := recR.Events()

	for _, cut := range []int{1, total / 2, total - 1} {
		// Victim runs with 8 workers to the cut, then snapshots.
		busV := obs.NewBus()
		cfgV := base
		cfgV.Obs = busV
		cfgV.StepWorkers = 8
		engV, err := NewEngine(cfgV)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range equivSpecs(t, plan, busV) {
			if _, err := engV.Submit(sp); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < cut; s++ {
			if _, err := engV.Step(); err != nil {
				t.Fatalf("cut %d: victim step %d: %v", cut, s, err)
			}
		}
		blob, err := engV.MarshalBinary()
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}

		// Survivor restores with 2 workers and runs down.
		busC := obs.NewBus()
		recC := &obs.Recorder{}
		busC.Subscribe(recC)
		cfgC := base
		cfgC.Obs = busC
		cfgC.StepWorkers = 2
		engC, err := RestoreEngine(cfgC, blob, equivSpecs(t, plan, busC))
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		steps := 0
		for !engC.Done() {
			if _, err := engC.Step(); err != nil {
				t.Fatalf("cut %d: restored step: %v", cut, err)
			}
			if steps++; steps > total {
				t.Fatalf("cut %d: restored engine overran the reference", cut)
			}
		}
		if got := engC.Result(); !reflect.DeepEqual(got, refRes) {
			t.Fatalf("cut %d: restored result diverges:\n got %+v\nwant %+v", cut, got, refRes)
		}
		if got, want := recC.Events(), refEvents[prefix[cut]:]; !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored event suffix diverges: %d events, want %d",
				cut, len(got), len(want))
		}
	}
}

// TestStatusesStableOrderAndReuse pins the two Statuses guarantees the
// /state handler leans on under load: ascending-id order on every call, and
// no per-call reallocation once the job count is stable.
func TestStatusesStableOrderAndReuse(t *testing.T) {
	eng, err := NewEngine(engCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := eng.Submit(constSpec("s", 1+i%4, 50+10*i, int64(50*i))); err != nil {
			t.Fatal(err)
		}
	}
	check := func(e *Engine, sts []JobStatus) {
		t.Helper()
		if len(sts) != e.NumJobs() {
			t.Fatalf("Statuses len %d, want %d", len(sts), e.NumJobs())
		}
		for i, st := range sts {
			if st.ID != i {
				t.Fatalf("Statuses()[%d].ID = %d, want ascending ids", i, st.ID)
			}
		}
	}
	first := eng.Statuses()
	check(eng, first)
	backing := &first[0]
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
		sts := eng.Statuses()
		check(eng, sts)
		if &sts[0] != backing {
			t.Fatal("Statuses reallocated its buffer with an unchanged job count")
		}
	}
	// Growth keeps the contract: new submissions appear in order.
	eng2, err := NewEngine(engCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.Submit(constSpec("a", 2, 10, 0)); err != nil {
		t.Fatal(err)
	}
	check(eng2, eng2.Statuses())
	if _, err := eng2.Submit(constSpec("b", 2, 10, 0)); err != nil {
		t.Fatal(err)
	}
	check(eng2, eng2.Statuses())
}
