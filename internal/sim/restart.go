package sim

import "abg/internal/job"

// RestartPlan injects job failures into an engine run: when At fires after
// a quantum on which the job did not complete, the job aborts mid-DAG,
// loses all work completed so far, and restarts from a fresh instance with
// its feedback policy reset to its constructed state — the disturbance that
// exercises the controllers' re-convergence (Theorem 3's O(log_{1/r})
// settling applies from the reset request d(1)=1).
//
// The engine accounts the aborted attempts' work in LostWork, so work is
// conserved across restarts: Σ executed work = T1 + LostWork.
type RestartPlan struct {
	// At reports whether the job fails after its q-th executed quantum
	// (per-job, 1-based, counted across attempts). Must be deterministic;
	// abg/internal/fault builds seeded schedules.
	At func(q int) bool
	// New builds a fresh instance of the job for each restart.
	New func() job.Instance
	// Max caps the number of restarts (0 = unlimited; the engine's quantum
	// cap still bounds the run).
	Max int
}

// fires reports whether the plan triggers a restart after quantum q given
// the number of restarts already taken.
func (r *RestartPlan) fires(q, taken int) bool {
	if r == nil || r.At == nil || r.New == nil {
		return false
	}
	if r.Max > 0 && taken >= r.Max {
		return false
	}
	return r.At(q)
}
