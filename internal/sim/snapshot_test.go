package sim

import (
	"reflect"
	"testing"

	"abg/internal/alloc"
	"abg/internal/fault"
	"abg/internal/job"
	"abg/internal/obs"
)

// snapCfg is the machine used by the snapshot tests. Traces stay off:
// snapshots refuse KeepTrace engines.
func snapCfg(plan fault.Plan) MultiConfig {
	cfg := MultiConfig{P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{}}
	if plan.Capacity != nil {
		cfg.Capacity = plan.Capacity
	}
	return cfg
}

// runSnapshotCase is the crash-recovery equivalence regression: step a
// reference engine to completion recording its event stream, then for
// several cut points run a victim engine to the cut, snapshot it, restore
// onto freshly built specs, and continue. The restored engine must
// reproduce the reference's MultiResult, final statuses, AND the exact
// suffix of the reference event stream — the property the live service's
// SSE sequence numbering relies on.
func runSnapshotCase(t *testing.T, plan fault.Plan) {
	t.Helper()

	// Reference run, with the recorded event count noted after every step.
	busR := obs.NewBus()
	recR := &obs.Recorder{}
	busR.Subscribe(recR)
	cfgR := snapCfg(plan)
	cfgR.Obs = busR
	engR, err := NewEngine(cfgR)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range equivSpecs(t, plan, busR) {
		if _, err := engR.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	prefix := []int{len(recR.Events())} // prefix[s] = events after s steps
	for !engR.Done() {
		if _, err := engR.Step(); err != nil {
			t.Fatal(err)
		}
		if prefix = append(prefix, len(recR.Events())); len(prefix) > DefaultMaxQuanta {
			t.Fatal("reference run did not terminate")
		}
	}
	total := len(prefix) - 1
	refRes := engR.Result()
	refEvents := recR.Events()

	cuts := []int{0, 1, 5, total / 2, total - 1, total}
	for _, cut := range cuts {
		// Victim: identical run stopped at the cut, then snapshotted.
		busV := obs.NewBus()
		cfgV := snapCfg(plan)
		cfgV.Obs = busV
		engV, err := NewEngine(cfgV)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range equivSpecs(t, plan, busV) {
			if _, err := engV.Submit(sp); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < cut; s++ {
			if _, err := engV.Step(); err != nil {
				t.Fatalf("cut %d: victim step %d: %v", cut, s, err)
			}
		}
		blob, err := engV.MarshalBinary()
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}

		// Survivor: fresh specs, restored cursor, run to completion.
		busC := obs.NewBus()
		recC := &obs.Recorder{}
		busC.Subscribe(recC)
		cfgC := snapCfg(plan)
		cfgC.Obs = busC
		engC, err := RestoreEngine(cfgC, blob, equivSpecs(t, plan, busC))
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if got, want := engC.Boundary(), engV.Boundary(); got != want {
			t.Fatalf("cut %d: restored boundary %d, want %d", cut, got, want)
		}
		steps := 0
		for !engC.Done() {
			if _, err := engC.Step(); err != nil {
				t.Fatalf("cut %d: restored step: %v", cut, err)
			}
			if steps++; steps > total {
				t.Fatalf("cut %d: restored engine overran the reference (%d steps)", cut, total)
			}
		}
		if got := engC.Result(); !reflect.DeepEqual(got, refRes) {
			t.Fatalf("cut %d: restored result diverges:\n got %+v\nwant %+v", cut, got, refRes)
		}
		if got, want := engC.Statuses(), engR.Statuses(); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored statuses diverge:\n got %+v\nwant %+v", cut, got, want)
		}
		if got, want := recC.Events(), refEvents[prefix[cut]:]; !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored event suffix diverges: %d events, want %d",
				cut, len(got), len(want))
		}
	}
}

// TestEngineSnapshotRoundTrip covers the fault-free job set, including the
// fast-forward idle gap.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	runSnapshotCase(t, fault.Plan{})
}

// TestEngineSnapshotRoundTripUnderFaults repeats the round trip with the
// full disturbance stack armed: lossy control channel with in-flight
// messages, measurement noise, capacity churn, and seeded restarts — the
// hardest state to carry across a crash.
func TestEngineSnapshotRoundTripUnderFaults(t *testing.T) {
	plan, err := fault.ParseSpec(
		"drop=0.15,delay=2:0.1,dup=0.1,noise=0.3,restart=0.1,restartat=2,maxrestarts=2,cap=churn:0.5:4,seed=11", 16)
	if err != nil {
		t.Fatal(err)
	}
	runSnapshotCase(t, plan)
}

// TestEngineSnapshotRejectsKeepTrace: per-quantum traces are not carried by
// snapshots, so a tracing engine must refuse to marshal rather than restore
// into a silently different result.
func TestEngineSnapshotRejectsKeepTrace(t *testing.T) {
	cfg := snapCfg(fault.Plan{})
	cfg.KeepTrace = true
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MarshalBinary(); err == nil {
		t.Fatal("KeepTrace engine marshalled a snapshot")
	}
}

// TestRestoreEngineRejects pins clean failures for the ways a snapshot and
// its rebuilt job set can disagree.
func TestRestoreEngineRejects(t *testing.T) {
	cfg := snapCfg(fault.Plan{})
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range equivSpecs(t, fault.Plan{}, nil) {
		if _, err := eng.Submit(sp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := RestoreEngine(cfg, nil, equivSpecs(t, fault.Plan{}, nil)); err == nil {
		t.Error("restored from empty data")
	}
	if _, err := RestoreEngine(cfg, []byte("not a snapshot, definitely"), equivSpecs(t, fault.Plan{}, nil)); err == nil {
		t.Error("restored from garbage")
	}
	bad := append([]byte{}, blob...)
	bad[len(snapMagic)] = 200
	if _, err := RestoreEngine(cfg, bad, equivSpecs(t, fault.Plan{}, nil)); err == nil {
		t.Error("restored from future snapshot version")
	}
	if _, err := RestoreEngine(cfg, blob[:len(blob)-3], equivSpecs(t, fault.Plan{}, nil)); err == nil {
		t.Error("restored from truncated snapshot")
	}
	if _, err := RestoreEngine(cfg, append(append([]byte{}, blob...), 0), equivSpecs(t, fault.Plan{}, nil)); err == nil {
		t.Error("restored with trailing bytes")
	}
	if _, err := RestoreEngine(cfg, blob, equivSpecs(t, fault.Plan{}, nil)[:2]); err == nil {
		t.Error("restored onto too few specs")
	}
	wrong := equivSpecs(t, fault.Plan{}, nil)
	wrong[0].Inst = job.NewRun(job.Constant(2, 3)) // different workload
	if _, err := RestoreEngine(cfg, blob, wrong); err == nil {
		t.Error("restored onto a different workload")
	}
}

// TestEngineResumeStates pins the accessor a recovering service uses to
// re-prime run-scoped subscribers: started/done/deprivation/attempt-work
// must mirror the engine's own bookkeeping.
func TestEngineResumeStates(t *testing.T) {
	eng, err := NewEngine(engCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("a", 2, 4, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("b", 2, 400, 10_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	rs := eng.ResumeStates()
	if len(rs) != 2 {
		t.Fatalf("ResumeStates len %d, want 2", len(rs))
	}
	if !rs[0].Started || rs[0].AttemptWork == 0 {
		t.Fatalf("job a resume state after one quantum: %+v", rs[0])
	}
	if rs[1].Started || rs[1].Done || rs[1].AttemptWork != 0 {
		t.Fatalf("pending job b resume state: %+v", rs[1])
	}
	for !eng.states[0].done {
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if rs = eng.ResumeStates(); !rs[0].Done {
		t.Fatalf("job a resume state after completion: %+v", rs[0])
	}
}
