package sim

import "testing"

// AggregateRequest is the cluster layer's second-level desire signal: the
// sum of every admitted, unfinished job's rounded request. It must track
// admissions and completions and read as zero on an idle engine — and
// reading it must never perturb the run.
func TestEngineAggregateRequest(t *testing.T) {
	eng, err := NewEngine(engCfg())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if got := eng.AggregateRequest(); got != 0 {
		t.Fatalf("idle engine aggregate = %d, want 0", got)
	}
	if _, err := eng.Submit(constSpec("a", 4, 600, 0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := eng.Submit(constSpec("b", 2, 400, 0)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Submitted but not yet admitted (no boundary crossed): no desire yet.
	if got := eng.AggregateRequest(); got != 0 {
		t.Fatalf("pre-admission aggregate = %d, want 0", got)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// Both jobs admitted and unfinished: the aggregate is the sum of two
	// positive per-job requests, and reading it twice changes nothing.
	mid := eng.AggregateRequest()
	if mid < 2 {
		t.Fatalf("mid-run aggregate = %d, want ≥ 2 (two active jobs)", mid)
	}
	if again := eng.AggregateRequest(); again != mid {
		t.Fatalf("reread aggregate = %d, want %d (pure read)", again, mid)
	}
	if rem := eng.Remaining(); rem != 2 {
		t.Fatalf("remaining = %d, want 2", rem)
	}
	steps := 0
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if steps++; steps > DefaultMaxQuanta {
			t.Fatal("engine did not terminate")
		}
	}
	if got := eng.AggregateRequest(); got != 0 {
		t.Fatalf("post-completion aggregate = %d, want 0", got)
	}
	if rem := eng.Remaining(); rem != 0 {
		t.Fatalf("post-completion remaining = %d, want 0", rem)
	}
}
