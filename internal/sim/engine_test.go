package sim

import (
	"reflect"
	"testing"

	"abg/internal/alloc"
	"abg/internal/fault"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// equivSpecs builds a deterministic mixed job set: random fork-join jobs
// under alternating ABG/A-Greedy policies with staggered releases, including
// a long idle gap that forces the engine's fast-forward path. Each call
// constructs fresh instances and policies, so two calls drive two
// independent but identical runs. A non-zero plan wraps each policy in the
// lossy control channel and arms a seeded restart schedule, exactly as
// cmd/abgsim does.
func equivSpecs(t *testing.T, plan fault.Plan, bus *obs.Bus) []JobSpec {
	t.Helper()
	releases := []int64{0, 150, 150, 400, 9000} // 9000 ≫ the rest: idle gap
	specs := make([]JobSpec, len(releases))
	for i := range specs {
		profile := workload.GenJob(xrand.New(uint64(1000+i)),
			workload.ScaledJobParams(4+3*i, 50, 4))
		var pol feedback.Policy
		var sc sched.Scheduler
		if i%2 == 0 {
			pol, sc = feedback.NewAControl(0.2), sched.BGreedy()
		} else {
			pol, sc = feedback.NewAGreedy(2, 0.8), sched.Greedy()
		}
		specs[i] = JobSpec{
			Name:    "j",
			Release: releases[i],
			Inst:    job.NewRun(profile),
			Policy:  plan.Policy(pol, i, bus),
			Sched:   sc,
		}
		if hook := plan.RestartHook(i); hook != nil {
			p := profile
			specs[i].Restart = &RestartPlan{
				At:  hook,
				New: func() job.Instance { return job.NewRun(p) },
				Max: plan.MaxRestarts,
			}
		}
	}
	return specs
}

// runBoth drives the same job set through RunMulti and through a
// hand-stepped Engine and returns both results and event streams.
func runBoth(t *testing.T, plan fault.Plan) (a, b MultiResult, ea, eb []obs.Event) {
	t.Helper()
	cfg := MultiConfig{P: 16, L: 50, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true}
	if plan.Capacity != nil {
		cfg.Capacity = plan.Capacity
	}

	busA := obs.NewBus()
	recA := &obs.Recorder{}
	busA.Subscribe(recA)
	cfgA := cfg
	cfgA.Obs = busA
	resA, err := RunMulti(equivSpecs(t, plan, busA), cfgA)
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}

	busB := obs.NewBus()
	recB := &obs.Recorder{}
	busB.Subscribe(recB)
	cfgB := cfg
	cfgB.Obs = busB
	eng, err := NewEngine(cfgB)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for i, spec := range equivSpecs(t, plan, busB) {
		id, err := eng.Submit(spec)
		if err != nil {
			t.Fatalf("Submit(%d): %v", i, err)
		}
		if id != i {
			t.Fatalf("Submit(%d) assigned id %d", i, id)
		}
	}
	steps := 0
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
		if steps++; steps > DefaultMaxQuanta {
			t.Fatal("engine did not terminate")
		}
	}
	return resA, eng.Result(), recA.Events(), recB.Events()
}

// TestEngineMatchesRunMulti is the equivalence regression: a hand-stepped
// Engine must reproduce RunMulti's event stream and MultiResult
// bit-identically on the same specs and seed.
func TestEngineMatchesRunMulti(t *testing.T) {
	resA, resB, evA, evB := runBoth(t, fault.Plan{})
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("event streams diverge: RunMulti %d events, Engine %d events",
			len(evA), len(evB))
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("results diverge:\nRunMulti: %+v\nEngine:   %+v", resA, resB)
	}
	if resA.Makespan == 0 || resA.QuantaElapsed == 0 {
		t.Fatalf("degenerate run: %+v", resA)
	}
}

// TestEngineMatchesRunMultiUnderFaults repeats the equivalence check with
// the full disturbance stack armed: lossy control channel, measurement
// noise, capacity churn, and seeded RestartPlans.
func TestEngineMatchesRunMultiUnderFaults(t *testing.T) {
	plan, err := fault.ParseSpec(
		"drop=0.15,delay=2:0.1,dup=0.1,noise=0.3,restart=0.1,restartat=2,maxrestarts=2,cap=churn:0.5:4,seed=11", 16)
	if err != nil {
		t.Fatal(err)
	}
	resA, resB, evA, evB := runBoth(t, plan)
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("faulted event streams diverge: RunMulti %d events, Engine %d events",
			len(evA), len(evB))
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("faulted results diverge:\nRunMulti: %+v\nEngine:   %+v", resA, resB)
	}
	restarts := 0
	for _, j := range resA.Jobs {
		restarts += j.Restarts
	}
	if restarts == 0 {
		t.Fatal("fault plan injected no restarts; equivalence check lost its teeth")
	}
}

// engCfg is the small machine used by the edge-case tests.
func engCfg() MultiConfig {
	return MultiConfig{P: 8, L: 100, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true}
}

// constSpec builds a constant-parallelism job spec under A-Control.
func constSpec(name string, width, levels int, release int64) JobSpec {
	return JobSpec{
		Name:    name,
		Release: release,
		Inst:    job.NewRun(job.Constant(width, levels)),
		Policy:  feedback.NewAControl(0.2),
		Sched:   sched.BGreedy(),
	}
}

// TestEngineMidRunSubmission: a job submitted mid-quantum becomes
// schedulable at the next quantum boundary, not mid-quantum and not at its
// raw release step.
func TestEngineMidRunSubmission(t *testing.T) {
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	bus.Subscribe(rec)
	cfg := engCfg()
	cfg.Obs = bus
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("a", 4, 1000, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil { // boundary 0 → now = 100
		t.Fatal(err)
	}
	// Arrives at step 150, in the middle of quantum [100, 200).
	id, err := eng.Submit(constSpec("b", 2, 300, 150))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil { // boundary 1: b not yet released
		t.Fatal(err)
	}
	if st, _ := eng.JobStatus(id); st.State != JobPending {
		t.Fatalf("job b at boundary 1: state %v, want pending", st.State)
	}
	info, err := eng.Step() // boundary 2, time 200: b admitted
	if err != nil {
		t.Fatal(err)
	}
	if info.Active != 2 {
		t.Fatalf("boundary 2 active = %d, want 2", info.Active)
	}
	st, _ := eng.JobStatus(id)
	if st.State != JobRunning || st.NumQuanta != 1 {
		t.Fatalf("job b at boundary 2: %+v, want running with 1 quantum", st)
	}
	for _, e := range rec.Events() {
		if e.Kind == obs.EvJobAdmitted && e.Job == id {
			if e.Time != 200 {
				t.Fatalf("job b admitted at step %d, want boundary 200", e.Time)
			}
			return
		}
	}
	t.Fatal("no admission event for job b")
}

// TestEngineSubmitAfterDrain: Drain stops admission but runs accepted work
// to completion.
func TestEngineSubmitAfterDrain(t *testing.T) {
	eng, err := NewEngine(engCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("a", 2, 250, 0)); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if !eng.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, err := eng.Submit(constSpec("late", 2, 100, 0)); err == nil {
		t.Fatal("Submit after Drain succeeded, want rejection")
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Completion == 0 {
		t.Fatalf("drained run did not finish the accepted job: %+v", res)
	}
}

// TestEngineZeroWorkJob: a job with no executable work left completes in
// its arrival quantum instead of hanging the job set.
func TestEngineZeroWorkJob(t *testing.T) {
	// Drive an instance to completion before submitting it.
	done := job.NewRun(job.Constant(1, 1))
	sched.RunQuantum(done, sched.BGreedy(), 1, 10)
	if !done.Done() {
		t.Fatal("setup: instance not complete")
	}

	bus := obs.NewBus()
	rec := &obs.Recorder{}
	bus.Subscribe(rec)
	cfg := engCfg()
	cfg.Obs = bus
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("real", 2, 300, 0)); err != nil {
		t.Fatal(err)
	}
	zid, err := eng.Submit(JobSpec{
		Name: "zero", Release: 150, Inst: done,
		Policy: feedback.NewAControl(0.2), Sched: sched.BGreedy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	z := res.Jobs[zid]
	// Released at 150 → admitted and completed at the next boundary, 200.
	if z.Completion != 200 || z.Response != 50 || z.NumQuanta != 0 {
		t.Fatalf("zero-work outcome: %+v, want completion 200, response 50, 0 quanta", z)
	}
	var admitted, completed bool
	for _, e := range rec.Events() {
		if e.Job != zid {
			continue
		}
		switch e.Kind {
		case obs.EvJobAdmitted:
			admitted = true
		case obs.EvJobCompleted:
			completed = true
			if !admitted {
				t.Fatal("zero-work job completed before admission event")
			}
			if e.Time != 200 {
				t.Fatalf("zero-work completion at %d, want 200", e.Time)
			}
		case obs.EvRequest, obs.EvAllotment, obs.EvQuantumEnd:
			t.Fatalf("zero-work job executed a quantum: %+v", e)
		}
	}
	if !admitted || !completed {
		t.Fatalf("zero-work lifecycle events missing: admitted=%v completed=%v", admitted, completed)
	}
}

// dipCap is a capacity model that depresses P(t) over a quantum window.
type dipCap struct{ p, low, from, until int }

func (c dipCap) At(q int) int {
	if q >= c.from && q < c.until {
		return c.low
	}
	return c.p
}
func (c dipCap) Name() string { return "test-dip" }

// TestEngineAdmissionUnderDepressedCapacity: a job admitted while capacity
// churn has P(t) depressed is granted at most P(t), the invariant checker
// holds over the whole run, and both jobs finish once capacity recovers.
func TestEngineAdmissionUnderDepressedCapacity(t *testing.T) {
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	checker := fault.NewChecker(8, false)
	bus.Subscribe(rec)
	bus.Subscribe(checker)
	cfg := engCfg()
	cfg.Obs = bus
	cfg.Capacity = dipCap{p: 8, low: 2, from: 3, until: 6}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(constSpec("a", 6, 900, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // boundaries 0..2; quantum 4 runs depressed
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	bid, err := eng.Submit(constSpec("b", 6, 400, eng.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.JobStatus(bid)
	if st.State != JobRunning {
		t.Fatalf("job b state %v, want running while capacity depressed", st.State)
	}
	if st.Allotment > 2 {
		t.Fatalf("job b allotment %d exceeds depressed capacity 2", st.Allotment)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.Completion == 0 {
			t.Fatalf("job %q never completed: %+v", j.Name, j)
		}
	}
	if err := checker.Err(); err != nil {
		t.Fatalf("invariant checker: %v", err)
	}
	sawDip := false
	for _, e := range rec.Events() {
		if e.Kind == obs.EvCapacity && e.P == 2 {
			sawDip = true
		}
	}
	if !sawDip {
		t.Fatal("capacity dip never took effect")
	}
}

// TestEngineIdleAndStatus: an empty engine idles (time advances, no quanta),
// and job statuses move pending → running → done.
func TestEngineIdleAndStatus(t *testing.T) {
	eng, err := NewEngine(engCfg())
	if err != nil {
		t.Fatal(err)
	}
	info, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Idle || info.Executed || eng.Now() != 100 || eng.QuantaElapsed() != 0 {
		t.Fatalf("idle step: %+v, now=%d, quanta=%d", info, eng.Now(), eng.QuantaElapsed())
	}
	id, err := eng.Submit(constSpec("a", 2, 150, eng.Now()))
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := eng.JobStatus(id); !ok || st.State != JobPending && st.State != JobRunning {
		t.Fatalf("fresh submission status: %+v ok=%v", st, ok)
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.JobStatus(id)
	if st.State != JobRunning || st.Request <= 0 || st.Allotment < 1 || st.Parallelism <= 0 {
		t.Fatalf("running status incomplete: %+v", st)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ = eng.JobStatus(id)
	if st.State != JobDone || st.Completion == 0 || st.Response != st.Completion-st.Release {
		t.Fatalf("done status incomplete: %+v", st)
	}
	if got := eng.Statuses(); len(got) != 1 || got[0].ID != id {
		t.Fatalf("Statuses() = %+v", got)
	}
	if _, ok := eng.JobStatus(99); ok {
		t.Fatal("JobStatus(99) reported ok for unknown id")
	}
}
