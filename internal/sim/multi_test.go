package sim

import (
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/sched"
	"abg/internal/workload"
	"abg/internal/xrand"
)

func abgSpec(name string, release int64, p *job.Profile) JobSpec {
	return JobSpec{
		Name:    name,
		Release: release,
		Inst:    job.NewRun(p),
		Policy:  feedback.NewAControl(0.2),
		Sched:   sched.BGreedy(),
	}
}

func TestRunMultiValidation(t *testing.T) {
	p := workload.ConstantJob(2, 1, 10)
	deq := alloc.DynamicEquiPartition{}
	if _, err := RunMulti(nil, MultiConfig{P: 4, L: 10, Allocator: deq}); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := RunMulti([]JobSpec{abgSpec("a", 0, p)}, MultiConfig{P: 0, L: 10, Allocator: deq}); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := RunMulti([]JobSpec{abgSpec("a", 0, p)}, MultiConfig{P: 4, L: 0, Allocator: deq}); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := RunMulti([]JobSpec{abgSpec("a", 0, p)}, MultiConfig{P: 4, L: 10}); err == nil {
		t.Fatal("nil allocator accepted")
	}
	if _, err := RunMulti([]JobSpec{{Name: "broken"}}, MultiConfig{P: 4, L: 10, Allocator: deq}); err == nil {
		t.Fatal("missing instance accepted")
	}
}

func TestRunMultiSingleJobMatchesRunSingle(t *testing.T) {
	// One job under DEQ on P processors behaves exactly like RunSingle with
	// an unconstrained allocator of the same P.
	rng := xrand.New(61)
	p := workload.GenJob(rng, workload.ScaledJobParams(6, 30, 2))
	const P, L = 32, 30
	single, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
		alloc.NewUnconstrained(P), SingleConfig{L: L})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti([]JobSpec{abgSpec("solo", 0, p)},
		MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Makespan != single.Runtime {
		t.Fatalf("makespan %d != single runtime %d", multi.Makespan, single.Runtime)
	}
	if multi.Jobs[0].NumQuanta != single.NumQuanta {
		t.Fatalf("quanta %d != %d", multi.Jobs[0].NumQuanta, single.NumQuanta)
	}
}

func TestRunMultiTwoJobsShare(t *testing.T) {
	// Two identical wide jobs on a machine that fits exactly one: they
	// space-share and both finish; makespan is roughly double the solo time.
	p1 := workload.ConstantJob(16, 4, 50)
	p2 := workload.ConstantJob(16, 4, 50)
	const P, L = 16, 50
	solo, err := RunMulti([]JobSpec{abgSpec("solo", 0, p1)},
		MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunMulti([]JobSpec{abgSpec("a", 0, p1), abgSpec("b", 0, p2)},
		MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	if both.Makespan < solo.Makespan {
		t.Fatalf("sharing cannot beat solo: %d < %d", both.Makespan, solo.Makespan)
	}
	if both.Makespan > 3*solo.Makespan {
		t.Fatalf("sharing too slow: %d vs solo %d", both.Makespan, solo.Makespan)
	}
	for _, j := range both.Jobs {
		if j.Completion == 0 {
			t.Fatalf("job %s never completed", j.Name)
		}
	}
}

func TestRunMultiReleaseTimes(t *testing.T) {
	// A job released mid-quantum must not start before the next boundary.
	const P, L = 8, 100
	early := workload.ConstantJob(2, 2, L)
	late := workload.ConstantJob(2, 2, L)
	res, err := RunMulti([]JobSpec{
		abgSpec("early", 0, early),
		abgSpec("late", 150, late), // arrives inside quantum 2 → starts at t=200
	}, MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	lateJob := res.Jobs[1]
	// Work cannot have started before step 200, so completion ≥ 200 + T∞.
	if lateJob.Completion < 200+int64(late.CriticalPathLen()) {
		t.Fatalf("late job completed at %d, impossible before %d",
			lateJob.Completion, 200+int64(late.CriticalPathLen()))
	}
	if lateJob.Response != lateJob.Completion-150 {
		t.Fatal("response accounting wrong")
	}
}

func TestRunMultiIdleGap(t *testing.T) {
	// A gap with no active jobs must be skipped, not simulated.
	const L = 10
	res, err := RunMulti([]JobSpec{
		abgSpec("a", 0, workload.ConstantJob(1, 1, L)),
		abgSpec("b", 100000, workload.ConstantJob(1, 1, L)),
	}, MultiConfig{P: 4, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	// Quanta processed should be tiny (about 2 jobs' worth), not 10000.
	if res.QuantaElapsed > 10 {
		t.Fatalf("engine simulated the idle gap: %d quanta", res.QuantaElapsed)
	}
	if res.Jobs[1].Completion < 100000 {
		t.Fatal("job b completed before its release")
	}
}

func TestRunMultiMoreJobsThanProcessors(t *testing.T) {
	// |J| > P: allocator hands out one processor to the first P jobs; the
	// rest stall but everyone eventually completes.
	var specs []JobSpec
	for i := 0; i < 5; i++ {
		specs = append(specs, abgSpec("j", 0, workload.ConstantJob(2, 1, 10)))
	}
	res, err := RunMulti(specs, MultiConfig{P: 2, L: 10, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		if j.Completion == 0 {
			t.Fatalf("job %d starved", i)
		}
	}
}

func TestRunMultiMaxQuanta(t *testing.T) {
	specs := []JobSpec{abgSpec("a", 0, workload.ConstantJob(2, 10, 10))}
	if _, err := RunMulti(specs, MultiConfig{P: 4, L: 10, Allocator: alloc.DynamicEquiPartition{},
		MaxQuanta: 1}); err == nil {
		t.Fatal("expected max-quanta error")
	}
}

func TestRunMultiWasteAndMeanResponse(t *testing.T) {
	specs := []JobSpec{
		abgSpec("a", 0, workload.ConstantJob(4, 2, 20)),
		abgSpec("b", 0, workload.ConstantJob(4, 2, 20)),
	}
	res, err := RunMulti(specs, MultiConfig{P: 16, L: 20, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, j := range res.Jobs {
		if j.Waste < 0 {
			t.Fatalf("negative waste: %+v", j)
		}
		total += j.Waste
	}
	if total != res.TotalWaste {
		t.Fatal("TotalWaste mismatch")
	}
	wantMean := float64(res.Jobs[0].Response+res.Jobs[1].Response) / 2
	if res.MeanResponse() != wantMean {
		t.Fatalf("mean response %v, want %v", res.MeanResponse(), wantMean)
	}
	if (MultiResult{}).MeanResponse() != 0 {
		t.Fatal("empty mean response should be 0")
	}
}

// TestRunMultiRespectsLowerBounds: simulated makespan and mean response
// time are never below the theoretical lower bounds used in Figure 6.
func TestRunMultiRespectsLowerBounds(t *testing.T) {
	rng := xrand.New(67)
	const P, L = 32, 40
	for trial := 0; trial < 8; trial++ {
		profiles := workload.GenJobSet(rng, workload.SetParams{
			TargetLoad: 0.5 + rng.Float64()*2, P: P, QuantumLen: L,
			CLMin: 2, CLMax: 20, Shrink: 8, MaxJobs: P,
		})
		var specs []JobSpec
		var infos []metrics.JobInfo
		for i, p := range profiles {
			specs = append(specs, abgSpec("j", 0, p))
			_ = i
			infos = append(infos, metrics.JobInfo{Work: p.Work(), CriticalPath: p.CriticalPathLen()})
		}
		res, err := RunMulti(specs, MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
		if err != nil {
			t.Fatal(err)
		}
		mStar := metrics.MakespanLowerBound(infos, P)
		rStar := metrics.ResponseLowerBound(infos, P)
		if float64(res.Makespan) < mStar-1e-9 {
			t.Fatalf("makespan %d below lower bound %v", res.Makespan, mStar)
		}
		if res.MeanResponse() < rStar-1e-9 {
			t.Fatalf("mean response %v below lower bound %v", res.MeanResponse(), rStar)
		}
	}
}

// TestDEQBeatsEqualSplit: with heterogeneous requests, the non-reserving
// DEQ allocator finishes the set no later than the reserving EqualSplit.
func TestDEQBeatsEqualSplit(t *testing.T) {
	const P, L = 32, 40
	mk := func() []JobSpec {
		// One serial job (tiny requests) and two wide jobs.
		specs := []JobSpec{abgSpec("serial", 0, job.Serial(200))}
		for i := 0; i < 2; i++ {
			specs = append(specs, abgSpec("wide", 0, workload.ConstantJob(24, 6, L)))
		}
		return specs
	}
	deqRes, err := RunMulti(mk(), MultiConfig{P: P, L: L, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	eqRes, err := RunMulti(mk(), MultiConfig{P: P, L: L, Allocator: alloc.EqualSplit{}})
	if err != nil {
		t.Fatal(err)
	}
	if deqRes.Makespan > eqRes.Makespan {
		t.Fatalf("DEQ makespan %d worse than EqualSplit %d", deqRes.Makespan, eqRes.Makespan)
	}
}

func TestRunMultiKeepTraces(t *testing.T) {
	specs := []JobSpec{
		abgSpec("a", 0, workload.ConstantJob(4, 2, 20)),
		abgSpec("b", 0, workload.ConstantJob(4, 2, 20)),
	}
	res, err := RunMulti(specs, MultiConfig{
		P: 16, L: 20, Allocator: alloc.DynamicEquiPartition{}, KeepTraces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Jobs {
		if len(j.Quanta) != j.NumQuanta {
			t.Fatalf("job %d: %d trace records vs %d quanta", i, len(j.Quanta), j.NumQuanta)
		}
		var work int64
		for _, q := range j.Quanta {
			work += q.Work
		}
		if work != j.Work {
			t.Fatalf("job %d: trace work %d != %d", i, work, j.Work)
		}
	}
	// Default: no traces.
	res2, err := RunMulti([]JobSpec{abgSpec("a", 0, workload.ConstantJob(4, 2, 20))},
		MultiConfig{P: 16, L: 20, Allocator: alloc.DynamicEquiPartition{}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jobs[0].Quanta != nil {
		t.Fatal("traces kept by default")
	}
}
