package sim

// QuantumSample is one recorded quantum of a job's in-engine timeline: the
// desire d(q) the job presented, the allotment a(q) the allocator granted,
// the measured parallelism A(q) the quantum achieved, and the resulting
// satisfied/deprived verdict — the per-quantum view behind abgd's
// GET /api/v1/jobs/{id}/timeline. Stalled quanta (the allocator granted
// nothing because |J| > P) are recorded too, with zero Steps and Work, so a
// timeline shows starvation rather than silently skipping it.
type QuantumSample struct {
	// Quantum is the job's 1-based executed-quantum index; a stalled sample
	// carries the index of the quantum the job was waiting to execute, so
	// consecutive stalls repeat the same value.
	Quantum int `json:"quantum"`
	// Boundary is the global boundary index at which the quantum started,
	// and Time its simulation step (Boundary·L).
	Boundary int   `json:"boundary"`
	Time     int64 `json:"time"`
	// Request is the continuous desire d(q); IntRequest its ceiling as
	// presented to the allocator.
	Request    float64 `json:"request"`
	IntRequest int     `json:"intRequest"`
	// Allotment is the granted a(q); zero on a stalled quantum.
	Allotment int `json:"allotment"`
	// Steps and Work are the executed steps and completed work of the
	// quantum; Parallelism is the measured A(q) = Work/Steps.
	Steps       int     `json:"steps"`
	Work        int64   `json:"work"`
	Parallelism float64 `json:"parallelism"`
	// Deprived is the quantum's verdict: a(q) < ⌈d(q)⌉ (always true for a
	// stalled quantum). Completed marks the job's final quantum.
	Deprived  bool `json:"deprived"`
	Completed bool `json:"completed"`
}

// timelineRing is a bounded per-job ring of QuantumSamples. It is purely
// observational state: snapshots exclude it (a recovered engine rebuilds
// samples only for the quanta it replays), and recording never emits events
// or touches scheduling state.
type timelineRing struct {
	buf   []QuantumSample
	next  int // next write position
	total int // samples ever recorded
}

func newTimelineRing(capacity int) *timelineRing {
	return &timelineRing{buf: make([]QuantumSample, 0, capacity)}
}

// record appends a sample, evicting the oldest once the ring is full.
func (r *timelineRing) record(s QuantumSample) {
	if cap(r.buf) == 0 {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
}

// samples returns the retained samples in chronological order (a copy).
func (r *timelineRing) samples() []QuantumSample {
	out := make([]QuantumSample, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// recordSample stores one quantum sample on job i's ring, allocating the
// ring lazily so jobs that never run (pending, zero-work) carry no buffer.
func (e *Engine) recordSample(i int, s QuantumSample) {
	st := &e.states[i]
	if st.timeline == nil {
		st.timeline = newTimelineRing(e.cfg.TimelineRing)
	}
	st.timeline.record(s)
}

// Timeline returns job id's retained quantum samples in chronological order
// plus the number of older samples the bounded ring has evicted. With
// MultiConfig.TimelineRing unset, or for a job that has not yet executed or
// stalled on any quantum, it returns an empty timeline. ok is false only
// for an unknown id.
func (e *Engine) Timeline(id int) (samples []QuantumSample, evicted int, ok bool) {
	if id < 0 || id >= len(e.states) {
		return nil, 0, false
	}
	r := e.states[id].timeline
	if r == nil {
		return nil, 0, true
	}
	return r.samples(), r.total - len(r.buf), true
}
