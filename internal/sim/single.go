// Package sim is the quantum-driven discrete-time simulation engine of the
// two-level scheduling framework. It drives jobs (job.Instance) through
// scheduling quanta: between quanta a feedback policy computes the processor
// request, an OS allocator grants an allotment, and the task scheduler
// executes the quantum while measuring it (sched.RunQuantum).
//
// RunSingle simulates one job on a machine by itself (the paper's first
// simulation set, Figure 5); RunMulti space-shares a machine among a job set
// via a multi-job allocator such as dynamic equi-partitioning (Figure 6).
// Reallocation happens only at quantum boundaries and scheduling overheads
// are ignored, exactly as in the paper.
package sim

import (
	"fmt"
	"math"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
)

// DefaultMaxQuanta bounds runaway simulations; generously above anything the
// experiments need.
const DefaultMaxQuanta = 1 << 22

// SingleConfig configures a single-job simulation.
type SingleConfig struct {
	// L is the quantum length in steps; required, ≥ 1.
	L int
	// MaxQuanta caps the simulation; DefaultMaxQuanta when zero.
	MaxQuanta int
	// KeepTrace records per-quantum stats in the result. Off by default —
	// the sweeps run millions of quanta and must not hold traces alive —
	// and opt-in, the same name and polarity as MultiConfig and
	// AdaptiveLConfig.
	KeepTrace bool
	// DropTrace is the deprecated inverse of KeepTrace, from when
	// single-job runs recorded the trace by default. Setting it still
	// forces the trace off, overriding KeepTrace.
	//
	// Deprecated: set KeepTrace instead (note the flipped default: a
	// zero-value config no longer records a trace).
	DropTrace bool
	// Obs receives the live instrumentation events of the run (see
	// abg/internal/obs). Nil — the zero value — disables emission; with a
	// bus attached but no subscribers the cost is one atomic load per
	// emission site.
	Obs *obs.Bus
	// Capacity optionally varies the machine's effective processor count
	// over time (capacity churn): the allocator's grant for quantum q is
	// additionally capped by Capacity.At(q), and an obs.EvCapacity event is
	// emitted whenever the effective capacity changes. Nil reproduces the
	// paper's fixed machine bit-for-bit.
	Capacity alloc.Capacity
	// Restart optionally injects job failures (see RestartPlan). Nil — the
	// zero value — leaves the run failure-free.
	Restart *RestartPlan
}

// keepTrace resolves the retention flags, honouring the deprecated one.
func (c SingleConfig) keepTrace() bool { return c.KeepTrace && !c.DropTrace }

// SingleResult is the outcome of simulating one job alone.
type SingleResult struct {
	// Quanta holds one record per scheduling quantum with Index, Request and
	// Deprived filled in (empty when the config dropped the trace).
	Quanta []sched.QuantumStats
	// NumQuanta is the number of quanta executed (valid even without trace).
	NumQuanta int
	// Runtime is the job's execution time T in steps: full quanta count L,
	// the final quantum counts only up to the completing step.
	Runtime int64
	// Work and CriticalPath echo the job's T1 and T∞.
	Work         int64
	CriticalPath int
	// Waste is the number of allotted-but-unused processor cycles while the
	// job ran: Σ_q a(q)·steps(q) − T1.
	Waste int64
	// BoundaryWaste is the tail of the final quantum, a(last)·(L − steps):
	// cycles the non-reserving allocator cannot reclaim until the next
	// boundary. Reported separately; the paper's Theorem 4 budget P·L for
	// the last quantum covers both.
	BoundaryWaste int64
	// AllottedCycles is Σ_q a(q)·steps(q).
	AllottedCycles int64
	// Restarts counts injected job failures (SingleConfig.Restart) and
	// LostWork the completed work thrown away by them. Work is conserved:
	// the executed work across all attempts is Work + LostWork.
	Restarts int
	LostWork int64
}

// Speedup returns T1/T, the speedup over serial execution.
func (r SingleResult) Speedup() float64 {
	if r.Runtime == 0 {
		return 0
	}
	return float64(r.Work) / float64(r.Runtime)
}

// NormalizedRuntime returns T/T∞ — Figure 5(a)'s y-axis (1.0 is optimal in
// an unconstrained environment).
func (r SingleResult) NormalizedRuntime() float64 {
	if r.CriticalPath == 0 {
		return 0
	}
	return float64(r.Runtime) / float64(r.CriticalPath)
}

// NormalizedWaste returns W/T1 — Figure 5(c)'s y-axis.
func (r SingleResult) NormalizedWaste() float64 {
	if r.Work == 0 {
		return 0
	}
	return float64(r.Waste) / float64(r.Work)
}

// Utilization returns T1 / Σ a(q)·steps(q), the fraction of allotted cycles
// spent on useful work.
func (r SingleResult) Utilization() float64 {
	if r.AllottedCycles == 0 {
		return 0
	}
	return float64(r.Work) / float64(r.AllottedCycles)
}

// Requests returns the request trace d(q) (needs the trace).
func (r SingleResult) Requests() []float64 {
	out := make([]float64, len(r.Quanta))
	for i, q := range r.Quanta {
		out[i] = q.Request
	}
	return out
}

// Allotments returns the allotment trace a(q) (needs the trace).
func (r SingleResult) Allotments() []int {
	out := make([]int, len(r.Quanta))
	for i, q := range r.Quanta {
		out[i] = q.Allotment
	}
	return out
}

// Parallelisms returns the measured A(q) trace (needs the trace).
func (r SingleResult) Parallelisms() []float64 {
	out := make([]float64, len(r.Quanta))
	for i, q := range r.Quanta {
		out[i] = q.AvgParallelism()
	}
	return out
}

// RoundRequest converts the continuous controller output into the integer
// processor request presented to the OS allocator: ⌈d⌉, at least 1.
func RoundRequest(d float64) int {
	r := int(math.Ceil(d - 1e-9))
	if r < 1 {
		r = 1
	}
	return r
}

// RunSingle simulates the job alone on the machine. The policy drives
// requests, the allocator grants allotments, and the scheduler executes each
// quantum. It returns an error only if the safety cap on quanta is hit.
func RunSingle(inst job.Instance, pol feedback.Policy, sc sched.Scheduler,
	allocator alloc.Single, cfg SingleConfig) (SingleResult, error) {

	if cfg.L < 1 {
		return SingleResult{}, fmt.Errorf("sim: quantum length %d < 1", cfg.L)
	}
	maxQ := cfg.MaxQuanta
	if maxQ <= 0 {
		maxQ = DefaultMaxQuanta
	}
	res := SingleResult{
		Work:         inst.TotalWork(),
		CriticalPath: inst.CriticalPathLen(),
	}
	bus := cfg.Obs
	if bus.Active() {
		bus.Emit(obs.Event{Kind: obs.EvJobAdmitted, Work: res.Work,
			Parallelism: avgParallelism(res.Work, res.CriticalPath)})
	}
	d := pol.InitialRequest()
	deprived := false
	capNow := -1          // last emitted effective capacity
	var attemptWork int64 // work completed since the last (re)start
	var scr sched.Scratch // reused across quanta; measurements are identical
	for q := 1; !inst.Done(); q++ {
		if q > maxQ {
			return res, fmt.Errorf("sim: job did not finish within %d quanta", maxQ)
		}
		start := res.Runtime
		req := RoundRequest(d)
		if bus.Active() {
			bus.Emit(obs.Event{Kind: obs.EvRequest, Time: start, Quantum: q,
				Request: d, IntRequest: req})
		}
		a := allocator.Grant(q, req)
		if cfg.Capacity != nil {
			pq := cfg.Capacity.At(q)
			if pq < 0 {
				pq = 0
			}
			if pq != capNow {
				capNow = pq
				if bus.Active() {
					bus.Emit(obs.Event{Kind: obs.EvCapacity, Time: start, Quantum: q,
						Job: -1, Name: cfg.Capacity.Name(), P: pq})
				}
			}
			if a > pq {
				a = pq
			}
		}
		if bus.Active() {
			bus.Emit(obs.Event{Kind: obs.EvAllotment, Time: start, Quantum: q,
				IntRequest: req, Allotment: a, Deprived: a < req})
		}
		st := sched.RunQuantumScratch(inst, sc, a, cfg.L, &scr)
		st.Index = q
		st.Start = start
		st.Request = d
		st.Deprived = a < req
		res.NumQuanta++
		res.Runtime += int64(st.Steps)
		res.AllottedCycles += int64(a) * int64(st.Steps)
		res.Waste += st.Waste()
		attemptWork += st.Work
		if st.Completed {
			res.BoundaryWaste = int64(a) * int64(cfg.L-st.Steps)
		}
		if cfg.keepTrace() {
			res.Quanta = append(res.Quanta, st)
		}
		if bus.Active() {
			emitQuantum(bus, st, 0, "", &deprived)
			if st.Completed {
				bus.Emit(obs.Event{Kind: obs.EvJobCompleted, Time: res.Runtime,
					Work: res.Work, Response: res.Runtime})
			}
		} else {
			deprived = st.Deprived
		}
		if !st.Completed && cfg.Restart.fires(q, res.Restarts) {
			res.Restarts++
			res.LostWork += attemptWork
			if bus.Active() {
				bus.Emit(obs.Event{Kind: obs.EvJobRestarted, Time: res.Runtime,
					Quantum: q, Work: attemptWork})
			}
			attemptWork = 0
			inst = cfg.Restart.New()
			pol.Reset()
			d = pol.InitialRequest()
			continue
		}
		d = pol.NextRequest(st)
	}
	return res, nil
}

// avgParallelism is T1/T∞ guarded against an empty critical path.
func avgParallelism(work int64, cpl int) float64 {
	if cpl == 0 {
		return 0
	}
	return float64(work) / float64(cpl)
}

// emitQuantum emits the measured-quantum event plus a deprivation
// transition when the state stored in *wasDeprived flipped. The caller has
// already checked bus.Active().
func emitQuantum(bus *obs.Bus, st sched.QuantumStats, jobIdx int, name string, wasDeprived *bool) {
	bus.Emit(obs.Event{Kind: obs.EvQuantumEnd, Time: st.Start + int64(st.Steps),
		Quantum: st.Index, Job: jobIdx, Name: name,
		Request: st.Request, Allotment: st.Allotment, Steps: st.Steps,
		Work: st.Work, Waste: st.Waste(), Parallelism: st.AvgParallelism(),
		Deprived: st.Deprived, Completed: st.Completed})
	if st.Deprived != *wasDeprived {
		kind := obs.EvSatisfied
		if st.Deprived {
			kind = obs.EvDeprived
		}
		bus.Emit(obs.Event{Kind: kind, Time: st.Start, Quantum: st.Index,
			Job: jobIdx, Name: name, Allotment: st.Allotment})
	}
	*wasDeprived = st.Deprived
}
