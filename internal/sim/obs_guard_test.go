package sim

import (
	"os"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/workload"
)

// benchRunSingle measures ns/op of a full RunSingle with the given bus.
func benchRunSingle(bus *obs.Bus) float64 {
	p := workload.ConstantJob(16, 40, 100)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
				alloc.NewUnconstrained(32), SingleConfig{L: 100, Obs: bus})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(r.NsPerOp())
}

// TestEventBusOverheadGuard asserts that carrying a subscriber-less event bus
// through RunSingle costs less than 2% over the nil-bus baseline. Benchmark
// timing is noisy under the race detector and on loaded CI machines, so the
// guard only runs when explicitly requested (scripts/check.sh sets
// ABG_BENCH_GUARD=1); plain `go test ./...` skips it.
func TestEventBusOverheadGuard(t *testing.T) {
	if os.Getenv("ABG_BENCH_GUARD") == "" {
		t.Skip("set ABG_BENCH_GUARD=1 to run the overhead guard")
	}
	const trials = 5
	best := func(bus *obs.Bus) float64 {
		b := benchRunSingle(bus)
		for i := 1; i < trials; i++ {
			if v := benchRunSingle(bus); v < b {
				b = v
			}
		}
		return b
	}
	baseline := best(nil)
	withBus := best(obs.NewBus())
	overhead := (withBus - baseline) / baseline
	t.Logf("nil bus %.0f ns/op, idle bus %.0f ns/op, overhead %.2f%%",
		baseline, withBus, overhead*100)
	if overhead > 0.02 {
		t.Fatalf("idle event bus adds %.2f%% to RunSingle, budget is 2%%", overhead*100)
	}
}
