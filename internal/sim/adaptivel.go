package sim

import (
	"fmt"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
)

// AdaptiveLConfig configures the dynamic quantum-length engine — an
// implementation of the paper's §9 future-work suggestion ("dynamically
// adjusting the quantum length ... to achieve better system wide
// adaptivity").
//
// The heuristic: when the processor request has settled (it changed by less
// than StableTol relative to the previous quantum), the quantum length is
// multiplied by Grow, up to LMax — fewer feedback actions and reallocations
// for a job in steady state. When the request moves more than that, the
// length resets to LMin so the controller can track the change closely.
type AdaptiveLConfig struct {
	// LMin and LMax bound the quantum length; LMin is also the initial
	// length. Required: 1 ≤ LMin ≤ LMax.
	LMin, LMax int
	// Grow is the lengthening factor applied after a stable quantum
	// (default 2 when zero; must be > 1 otherwise).
	Grow float64
	// StableTol is the relative request-change threshold below which a
	// quantum counts as stable (default 0.05 when zero).
	StableTol float64
	// MaxQuanta caps the simulation; DefaultMaxQuanta when zero.
	MaxQuanta int
	// KeepTrace records per-quantum stats in the result — the same opt-in
	// polarity as SingleConfig and MultiConfig. (Earlier versions always
	// recorded the trace.)
	KeepTrace bool
	// Obs receives the live instrumentation events of the run (see
	// abg/internal/obs); nil disables emission.
	Obs *obs.Bus
}

func (c *AdaptiveLConfig) normalize() error {
	if c.LMin < 1 || c.LMax < c.LMin {
		return fmt.Errorf("sim: invalid adaptive quantum bounds [%d,%d]", c.LMin, c.LMax)
	}
	if c.Grow == 0 {
		c.Grow = 2
	}
	if c.Grow <= 1 {
		return fmt.Errorf("sim: adaptive quantum growth factor %v must exceed 1", c.Grow)
	}
	if c.StableTol == 0 {
		c.StableTol = 0.05
	}
	if c.StableTol < 0 {
		return fmt.Errorf("sim: negative stability tolerance %v", c.StableTol)
	}
	if c.MaxQuanta <= 0 {
		c.MaxQuanta = DefaultMaxQuanta
	}
	return nil
}

// RunSingleAdaptiveL simulates a job alone like RunSingle but with a
// dynamically adjusted quantum length. The per-quantum trace (recorded with
// KeepTrace) includes the length actually used in each quantum
// (QuantumStats.Length).
func RunSingleAdaptiveL(inst job.Instance, pol feedback.Policy, sc sched.Scheduler,
	allocator alloc.Single, cfg AdaptiveLConfig) (SingleResult, error) {

	if err := cfg.normalize(); err != nil {
		return SingleResult{}, err
	}
	res := SingleResult{
		Work:         inst.TotalWork(),
		CriticalPath: inst.CriticalPathLen(),
	}
	bus := cfg.Obs
	if bus.Active() {
		bus.Emit(obs.Event{Kind: obs.EvJobAdmitted, Work: res.Work,
			Parallelism: avgParallelism(res.Work, res.CriticalPath)})
	}
	l := cfg.LMin
	d := pol.InitialRequest()
	prevD := d
	deprived := false
	var scr sched.Scratch // reused across quanta; measurements are identical
	for q := 1; !inst.Done(); q++ {
		if q > cfg.MaxQuanta {
			return res, fmt.Errorf("sim: job did not finish within %d quanta", cfg.MaxQuanta)
		}
		start := res.Runtime
		req := RoundRequest(d)
		if bus.Active() {
			bus.Emit(obs.Event{Kind: obs.EvRequest, Time: start, Quantum: q,
				Request: d, IntRequest: req})
		}
		a := allocator.Grant(q, req)
		if bus.Active() {
			bus.Emit(obs.Event{Kind: obs.EvAllotment, Time: start, Quantum: q,
				IntRequest: req, Allotment: a, Deprived: a < req})
		}
		st := sched.RunQuantumScratch(inst, sc, a, l, &scr)
		st.Index = q
		st.Start = start
		st.Request = d
		st.Deprived = a < req
		res.NumQuanta++
		res.Runtime += int64(st.Steps)
		res.AllottedCycles += int64(a) * int64(st.Steps)
		res.Waste += st.Waste()
		if st.Completed {
			res.BoundaryWaste = int64(a) * int64(l-st.Steps)
		}
		if cfg.KeepTrace {
			res.Quanta = append(res.Quanta, st)
		}
		if bus.Active() {
			emitQuantum(bus, st, 0, "", &deprived)
			if st.Completed {
				bus.Emit(obs.Event{Kind: obs.EvJobCompleted, Time: res.Runtime,
					Work: res.Work, Response: res.Runtime})
			}
		}
		prevD = d
		d = pol.NextRequest(st)
		// Adapt the quantum length from the observed request movement.
		scale := prevD
		if scale < 1 {
			scale = 1
		}
		rel := d - prevD
		if rel < 0 {
			rel = -rel
		}
		if rel/scale <= cfg.StableTol {
			l = int(float64(l) * cfg.Grow)
			if l > cfg.LMax {
				l = cfg.LMax
			}
		} else {
			l = cfg.LMin
		}
	}
	return res, nil
}
