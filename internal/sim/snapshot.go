package sim

import (
	"bytes"
	"fmt"

	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/persist"
	"abg/internal/sched"
)

// Engine snapshots: a versioned binary encoding of the engine's complete
// mutable state — quantum counters, per-job outcomes, DAG execution
// cursors, and controller state — so a crashed service can restore to a
// recent boundary and replay only the journal tail.
//
// A snapshot deliberately contains no job *descriptions* and no
// configuration: the restoring side rebuilds the same JobSpecs (profiles,
// policies, restart hooks) from its journaled workload records, then
// Restore loads the cursors onto them. Because the engine is
// bit-identically replay-deterministic, a restored engine continues exactly
// as the original would have — the recovery tests assert DeepEqual against
// an uninterrupted run.

// snapshot format: magic, version byte, then the field stream below.
var snapMagic = []byte("ABGSNAP")

const snapVersion byte = 1

// MarshalBinary encodes the engine's mutable state. It fails when the
// engine records per-quantum traces (KeepTrace) — snapshots do not carry
// traces — or when a job's instance or policy does not support state
// capture.
func (e *Engine) MarshalBinary() ([]byte, error) {
	if e.cfg.keepTrace() {
		return nil, fmt.Errorf("sim: snapshot does not support KeepTrace engines")
	}
	enc := persist.Enc{}
	enc.Int(e.k)
	enc.Int(e.capNow)
	enc.Bool(e.draining)
	enc.Int(e.remaining)
	enc.Varint(e.res.Makespan)
	enc.Varint(e.res.TotalWaste)
	enc.Int(e.res.QuantaElapsed)
	enc.Int(len(e.states))
	for i := range e.states {
		s := &e.states[i]
		j := &e.res.Jobs[i]
		enc.String(j.Name)
		enc.Varint(j.Release)
		enc.Varint(j.Completion)
		enc.Varint(j.Response)
		enc.Varint(j.Work)
		enc.Int(j.CriticalPath)
		enc.Varint(j.Waste)
		enc.Int(j.NumQuanta)
		enc.Int(j.DeprivedQ)
		enc.Int(j.Restarts)
		enc.Varint(j.LostWork)

		enc.Float(s.request)
		enc.Bool(s.started)
		enc.Bool(s.done)
		enc.Bool(s.deprived)
		enc.Varint(s.attemptWork)
		encodeQuantumStats(&enc, s.last)

		st, ok := s.spec.Inst.(job.Stateful)
		if !ok {
			return nil, fmt.Errorf("sim: job %d instance %T does not support state snapshots", i, s.spec.Inst)
		}
		inst, err := st.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("sim: job %d instance: %w", i, err)
		}
		enc.BytesField(inst)
		pol, err := feedback.MarshalState(s.spec.Policy)
		if err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		enc.BytesField(pol)
	}
	out := append([]byte{}, snapMagic...)
	out = append(out, snapVersion)
	return append(out, enc.Bytes()...), nil
}

// RestoreEngine rebuilds an engine from a snapshot. specs must contain one
// freshly built JobSpec per snapshotted job, in job-id order, describing
// the *same* jobs (same profile, same policy configuration, same restart
// hook) — total work and critical path are cross-checked. Each spec's
// instance and policy receive the snapshotted cursor and controller state;
// spec.Release is overwritten from the snapshot.
func RestoreEngine(cfg MultiConfig, data []byte, specs []JobSpec) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+1 || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
		return nil, fmt.Errorf("sim: not an engine snapshot (%d bytes)", len(data))
	}
	if v := data[len(snapMagic)]; v != snapVersion {
		return nil, fmt.Errorf("sim: snapshot version %d, this build reads %d", v, snapVersion)
	}
	d := persist.NewDec(data[len(snapMagic)+1:])
	e.k = d.Int()
	e.capNow = d.Int()
	e.draining = d.Bool()
	remaining := d.Int()
	e.res.Makespan = d.Varint()
	e.res.TotalWaste = d.Varint()
	e.res.QuantaElapsed = d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("sim: snapshot header: %w", err)
	}
	if n != len(specs) {
		return nil, fmt.Errorf("sim: snapshot holds %d jobs, caller rebuilt %d specs", n, len(specs))
	}
	unfinished := 0
	for i := 0; i < n; i++ {
		if specs[i].Inst == nil || specs[i].Policy == nil {
			return nil, fmt.Errorf("sim: rebuilt spec %d missing instance or policy", i)
		}
		sp := specs[i]
		var j JobOutcome
		j.Name = d.String()
		j.Release = d.Varint()
		j.Completion = d.Varint()
		j.Response = d.Varint()
		j.Work = d.Varint()
		j.CriticalPath = d.Int()
		j.Waste = d.Varint()
		j.NumQuanta = d.Int()
		j.DeprivedQ = d.Int()
		j.Restarts = d.Int()
		j.LostWork = d.Varint()

		var s jobState
		s.request = d.Float()
		s.started = d.Bool()
		s.done = d.Bool()
		s.deprived = d.Bool()
		s.attemptWork = d.Varint()
		s.last = decodeQuantumStats(d)
		instState := d.BytesField()
		polState := d.BytesField()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("sim: snapshot job %d: %w", i, err)
		}

		// A restarted job's live instance is a fresh attempt of the same
		// profile, so work and critical path still match the description.
		if w := sp.Inst.TotalWork(); w != j.Work {
			return nil, fmt.Errorf("sim: job %d rebuilt with work %d, snapshot has %d (wrong workload?)", i, w, j.Work)
		}
		if c := sp.Inst.CriticalPathLen(); c != j.CriticalPath {
			return nil, fmt.Errorf("sim: job %d rebuilt with critical path %d, snapshot has %d", i, c, j.CriticalPath)
		}
		st, ok := sp.Inst.(job.Stateful)
		if !ok {
			return nil, fmt.Errorf("sim: job %d instance %T does not support state snapshots", i, sp.Inst)
		}
		if err := st.UnmarshalState(instState); err != nil {
			return nil, fmt.Errorf("sim: job %d instance: %w", i, err)
		}
		if err := feedback.UnmarshalState(sp.Policy, polState); err != nil {
			return nil, fmt.Errorf("sim: job %d: %w", i, err)
		}
		sp.Release = j.Release
		s.spec = &sp
		e.states = append(e.states, s)
		e.res.Jobs = append(e.res.Jobs, j)
		if !s.done {
			unfinished++
		}
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("sim: snapshot has %d trailing bytes", d.Len())
	}
	if unfinished != remaining {
		return nil, fmt.Errorf("sim: snapshot remaining %d != %d unfinished jobs", remaining, unfinished)
	}
	e.remaining = remaining
	return e, nil
}

// encodeQuantumStats appends every QuantumStats field.
func encodeQuantumStats(e *persist.Enc, st sched.QuantumStats) {
	e.Int(st.Index)
	e.Varint(st.Start)
	e.Float(st.Request)
	e.Int(st.Allotment)
	e.Int(st.Length)
	e.Int(st.Steps)
	e.Varint(st.Work)
	e.Float(st.CPL)
	e.Int(st.IdleSteps)
	e.Int(st.PartialSteps)
	e.Int(st.LevelsTouched)
	e.Bool(st.Deprived)
	e.Bool(st.Completed)
}

// decodeQuantumStats reads what encodeQuantumStats wrote.
func decodeQuantumStats(d *persist.Dec) sched.QuantumStats {
	return sched.QuantumStats{
		Index:         d.Int(),
		Start:         d.Varint(),
		Request:       d.Float(),
		Allotment:     d.Int(),
		Length:        d.Int(),
		Steps:         d.Int(),
		Work:          d.Varint(),
		CPL:           d.Float(),
		IdleSteps:     d.Int(),
		PartialSteps:  d.Int(),
		LevelsTouched: d.Int(),
		Deprived:      d.Bool(),
		Completed:     d.Bool(),
	}
}

// ResumeState is the mid-run, per-job state a recovering service needs to
// re-prime run-scoped subscribers (e.g. the invariant checker's deprivation
// and work-conservation accounting) after restoring an engine whose earlier
// events they never saw.
type ResumeState struct {
	// Started and Done classify the job's lifecycle stage.
	Started, Done bool
	// Deprived is the job's current deprivation state (the transition
	// tracker, not just the last quantum's flag).
	Deprived bool
	// AttemptWork is the work executed since the job's last (re)start.
	AttemptWork int64
}

// ResumeStates returns the per-job resume state, by job id.
func (e *Engine) ResumeStates() []ResumeState {
	out := make([]ResumeState, len(e.states))
	for i := range e.states {
		s := &e.states[i]
		out[i] = ResumeState{
			Started:     s.started,
			Done:        s.done,
			Deprived:    s.deprived,
			AttemptWork: s.attemptWork,
		}
	}
	return out
}
