package sim

import (
	"fmt"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
)

// JobSpec describes one job of a multiprogrammed job set.
type JobSpec struct {
	// Name labels the job in results (optional).
	Name string
	// Release is the arrival time in steps. A job arriving mid-quantum
	// starts at the following quantum boundary (reallocation happens only at
	// boundaries).
	Release int64
	// Inst is the job to execute.
	Inst job.Instance
	// Policy computes its processor requests (one instance per job).
	Policy feedback.Policy
	// Sched is its task scheduler.
	Sched sched.Scheduler
	// Restart optionally injects failures for this job (see RestartPlan);
	// nil leaves the job failure-free.
	Restart *RestartPlan
}

// MultiConfig configures a multiprogrammed simulation.
type MultiConfig struct {
	// P is the machine size; L the quantum length. Both required.
	P, L int
	// Allocator space-shares the machine; required (e.g.
	// alloc.DynamicEquiPartition{}).
	Allocator alloc.Multi
	// MaxQuanta caps the simulation; DefaultMaxQuanta when zero.
	MaxQuanta int
	// KeepTrace records every job's per-quantum statistics in
	// JobOutcome.Quanta. Off by default — large sweeps would hold
	// thousands of traces alive — and opt-in, the same name and polarity
	// as SingleConfig and AdaptiveLConfig.
	KeepTrace bool
	// KeepTraces is the deprecated plural spelling of KeepTrace; setting
	// either records the traces.
	//
	// Deprecated: use KeepTrace.
	KeepTraces bool
	// Obs receives the live instrumentation events of the run (see
	// abg/internal/obs); nil disables emission.
	Obs *obs.Bus
	// Capacity optionally varies the machine's effective processor count
	// over time: each allocation round k runs with
	// P(k) = min(P, max(Capacity.At(k), 0)) processors, emitting
	// obs.EvCapacity when the value changes. Nil reproduces the fixed
	// machine bit-for-bit.
	Capacity alloc.Capacity
	// StepWorkers bounds the goroutines Engine.Step uses to execute the
	// quanta of independent active jobs concurrently. 0 (the default) and 1
	// run serially; n > 1 uses up to n workers; negative selects one worker
	// per CPU. Results, the event stream, snapshots, and replay are
	// bit-identical at every setting: the parallel phase only steps each
	// job's own instance into a per-position slot, and all shared-state
	// reduction happens serially in job-index order (pinned by the
	// serial-vs-parallel equivalence tests).
	StepWorkers int
	// TimelineRing, when positive, keeps a bounded per-job ring of the last
	// TimelineRing quantum samples (desire, allotment, measured parallelism,
	// verdict — see QuantumSample), readable via Engine.Timeline. Purely
	// observational: enabling it leaves results, the event stream, and
	// engine snapshots bit-identical, and unlike KeepTrace its memory is
	// bounded per job. Zero disables recording.
	TimelineRing int
}

// keepTrace resolves the retention flags, honouring the deprecated one.
func (c MultiConfig) keepTrace() bool { return c.KeepTrace || c.KeepTraces }

// JobOutcome is the per-job result of a multiprogrammed run.
type JobOutcome struct {
	Name         string
	Release      int64
	Completion   int64 // step at which the job's last task finished
	Response     int64 // Completion − Release
	Work         int64
	CriticalPath int
	Waste        int64 // Σ_q a(q)·L − T1: the job holds its allotment to each boundary
	NumQuanta    int
	DeprivedQ    int // quanta on which the allotment fell short of the request
	// Restarts counts injected failures (JobSpec.Restart) and LostWork the
	// completed work they threw away; executed work = Work + LostWork.
	Restarts int
	LostWork int64
	// Quanta holds the job's per-quantum trace when MultiConfig.KeepTrace
	// is set (nil otherwise).
	Quanta []sched.QuantumStats
}

// MultiResult is the outcome of a multiprogrammed run.
type MultiResult struct {
	Jobs []JobOutcome
	// Makespan is the completion time of the last job (time origin 0).
	Makespan int64
	// TotalWaste sums the per-job wastes.
	TotalWaste int64
	// QuantaElapsed is the number of global quantum boundaries processed.
	QuantaElapsed int
}

// MeanResponse returns the mean response time of the job set.
func (r MultiResult) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum int64
	for _, j := range r.Jobs {
		sum += j.Response
	}
	return float64(sum) / float64(len(r.Jobs))
}

// RunMulti simulates the job set space-sharing P processors under the given
// multi-job allocator, with synchronized quanta of length L. Allotments are
// decided at every boundary from the current requests of all active jobs.
// It is a thin wrapper over Engine: submit every spec, run to completion.
func RunMulti(specs []JobSpec, cfg MultiConfig) (MultiResult, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return MultiResult{}, err
	}
	if len(specs) == 0 {
		return MultiResult{}, fmt.Errorf("sim: empty job set")
	}
	for i := range specs {
		if _, err := e.Submit(specs[i]); err != nil {
			return MultiResult{}, err
		}
	}
	return e.Run()
}
