package sim

import (
	"fmt"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
)

// JobSpec describes one job of a multiprogrammed job set.
type JobSpec struct {
	// Name labels the job in results (optional).
	Name string
	// Release is the arrival time in steps. A job arriving mid-quantum
	// starts at the following quantum boundary (reallocation happens only at
	// boundaries).
	Release int64
	// Inst is the job to execute.
	Inst job.Instance
	// Policy computes its processor requests (one instance per job).
	Policy feedback.Policy
	// Sched is its task scheduler.
	Sched sched.Scheduler
	// Restart optionally injects failures for this job (see RestartPlan);
	// nil leaves the job failure-free.
	Restart *RestartPlan
}

// MultiConfig configures a multiprogrammed simulation.
type MultiConfig struct {
	// P is the machine size; L the quantum length. Both required.
	P, L int
	// Allocator space-shares the machine; required (e.g.
	// alloc.DynamicEquiPartition{}).
	Allocator alloc.Multi
	// MaxQuanta caps the simulation; DefaultMaxQuanta when zero.
	MaxQuanta int
	// KeepTrace records every job's per-quantum statistics in
	// JobOutcome.Quanta. Off by default — large sweeps would hold
	// thousands of traces alive — and opt-in, the same name and polarity
	// as SingleConfig and AdaptiveLConfig.
	KeepTrace bool
	// KeepTraces is the deprecated plural spelling of KeepTrace; setting
	// either records the traces.
	//
	// Deprecated: use KeepTrace.
	KeepTraces bool
	// Obs receives the live instrumentation events of the run (see
	// abg/internal/obs); nil disables emission.
	Obs *obs.Bus
	// Capacity optionally varies the machine's effective processor count
	// over time: each allocation round k runs with
	// P(k) = min(P, max(Capacity.At(k), 0)) processors, emitting
	// obs.EvCapacity when the value changes. Nil reproduces the fixed
	// machine bit-for-bit.
	Capacity alloc.Capacity
}

// keepTrace resolves the retention flags, honouring the deprecated one.
func (c MultiConfig) keepTrace() bool { return c.KeepTrace || c.KeepTraces }

// JobOutcome is the per-job result of a multiprogrammed run.
type JobOutcome struct {
	Name         string
	Release      int64
	Completion   int64 // step at which the job's last task finished
	Response     int64 // Completion − Release
	Work         int64
	CriticalPath int
	Waste        int64 // Σ_q a(q)·L − T1: the job holds its allotment to each boundary
	NumQuanta    int
	DeprivedQ    int // quanta on which the allotment fell short of the request
	// Restarts counts injected failures (JobSpec.Restart) and LostWork the
	// completed work they threw away; executed work = Work + LostWork.
	Restarts int
	LostWork int64
	// Quanta holds the job's per-quantum trace when MultiConfig.KeepTrace
	// is set (nil otherwise).
	Quanta []sched.QuantumStats
}

// MultiResult is the outcome of a multiprogrammed run.
type MultiResult struct {
	Jobs []JobOutcome
	// Makespan is the completion time of the last job (time origin 0).
	Makespan int64
	// TotalWaste sums the per-job wastes.
	TotalWaste int64
	// QuantaElapsed is the number of global quantum boundaries processed.
	QuantaElapsed int
}

// MeanResponse returns the mean response time of the job set.
func (r MultiResult) MeanResponse() float64 {
	if len(r.Jobs) == 0 {
		return 0
	}
	var sum int64
	for _, j := range r.Jobs {
		sum += j.Response
	}
	return float64(sum) / float64(len(r.Jobs))
}

// jobState is the engine's per-job bookkeeping.
type jobState struct {
	spec        *JobSpec
	request     float64
	started     bool
	done        bool
	deprived    bool
	attemptWork int64 // work completed since the job's last (re)start
}

// RunMulti simulates the job set space-sharing P processors under the given
// multi-job allocator, with synchronized quanta of length L. Allotments are
// decided at every boundary from the current requests of all active jobs.
func RunMulti(specs []JobSpec, cfg MultiConfig) (MultiResult, error) {
	if cfg.P < 1 || cfg.L < 1 {
		return MultiResult{}, fmt.Errorf("sim: invalid machine P=%d L=%d", cfg.P, cfg.L)
	}
	if cfg.Allocator == nil {
		return MultiResult{}, fmt.Errorf("sim: nil allocator")
	}
	if len(specs) == 0 {
		return MultiResult{}, fmt.Errorf("sim: empty job set")
	}
	maxQ := cfg.MaxQuanta
	if maxQ <= 0 {
		maxQ = DefaultMaxQuanta
	}
	res := MultiResult{Jobs: make([]JobOutcome, len(specs))}
	states := make([]jobState, len(specs))
	for i := range specs {
		if specs[i].Inst == nil || specs[i].Policy == nil {
			return MultiResult{}, fmt.Errorf("sim: job %d missing instance or policy", i)
		}
		states[i] = jobState{spec: &specs[i]}
		res.Jobs[i] = JobOutcome{
			Name:         specs[i].Name,
			Release:      specs[i].Release,
			Work:         specs[i].Inst.TotalWork(),
			CriticalPath: specs[i].Inst.CriticalPathLen(),
		}
	}
	remaining := len(specs)
	L64 := int64(cfg.L)
	capNow := -1 // last emitted effective capacity

	// Reusable per-boundary scratch.
	activeIdx := make([]int, 0, len(specs))
	requests := make([]int, 0, len(specs))

	for k := 0; remaining > 0; k++ {
		if k > maxQ {
			return res, fmt.Errorf("sim: job set did not finish within %d quanta", maxQ)
		}
		now := int64(k) * L64
		// Collect active jobs; fast-forward if none are released yet.
		activeIdx = activeIdx[:0]
		var nextRelease int64 = -1
		for i := range states {
			s := &states[i]
			if s.done {
				continue
			}
			if s.spec.Release > now {
				if nextRelease < 0 || s.spec.Release < nextRelease {
					nextRelease = s.spec.Release
				}
				continue
			}
			if !s.started {
				s.started = true
				s.request = s.spec.Policy.InitialRequest()
				if cfg.Obs.Active() {
					cfg.Obs.Emit(obs.Event{Kind: obs.EvJobAdmitted, Time: now,
						Job: i, Name: s.spec.Name, Work: res.Jobs[i].Work,
						Parallelism: avgParallelism(res.Jobs[i].Work, res.Jobs[i].CriticalPath)})
				}
			}
			activeIdx = append(activeIdx, i)
		}
		if len(activeIdx) == 0 {
			// Jump to the boundary at or after the next release.
			k = int((nextRelease + L64 - 1) / L64)
			k-- // loop increment
			continue
		}
		res.QuantaElapsed++
		requests = requests[:0]
		for _, i := range activeIdx {
			r := RoundRequest(states[i].request)
			requests = append(requests, r)
			if cfg.Obs.Active() {
				cfg.Obs.Emit(obs.Event{Kind: obs.EvRequest, Time: now,
					Quantum: res.Jobs[i].NumQuanta + 1, Job: i, Name: states[i].spec.Name,
					Request: states[i].request, IntRequest: r})
			}
		}
		pEff := cfg.P
		if cfg.Capacity != nil {
			pEff = alloc.CapAt(cfg.Capacity, k+1, cfg.P)
			if pEff != capNow {
				capNow = pEff
				if cfg.Obs.Active() {
					cfg.Obs.Emit(obs.Event{Kind: obs.EvCapacity, Time: now,
						Quantum: res.QuantaElapsed, Job: -1,
						Name: cfg.Capacity.Name(), P: pEff})
				}
			}
		}
		allots := cfg.Allocator.Allot(requests, pEff)
		if cfg.Obs.Active() {
			totalReq, totalAllot := 0, 0
			for pos := range requests {
				totalReq += requests[pos]
				totalAllot += allots[pos]
			}
			cfg.Obs.Emit(obs.Event{Kind: obs.EvAllocDecision, Time: now,
				Quantum: res.QuantaElapsed, Job: -1, Name: cfg.Allocator.Name(),
				P: pEff, IntRequest: totalReq, Allotment: totalAllot})
		}
		for pos, i := range activeIdx {
			s := &states[i]
			a := allots[pos]
			if cfg.Obs.Active() {
				cfg.Obs.Emit(obs.Event{Kind: obs.EvAllotment, Time: now,
					Quantum: res.Jobs[i].NumQuanta + 1, Job: i, Name: s.spec.Name,
					IntRequest: requests[pos], Allotment: a, Deprived: a < requests[pos]})
			}
			if a <= 0 {
				// No processors this quantum (|J| > P); the job stalls and
				// its request stands.
				continue
			}
			st := sched.RunQuantum(s.spec.Inst, s.spec.Sched, a, cfg.L)
			st.Index = res.Jobs[i].NumQuanta + 1
			st.Start = now
			st.Request = s.request
			st.Deprived = a < requests[pos]
			res.Jobs[i].NumQuanta++
			if st.Deprived {
				res.Jobs[i].DeprivedQ++
			}
			if cfg.keepTrace() {
				res.Jobs[i].Quanta = append(res.Jobs[i].Quanta, st)
			}
			// The job holds its allotment until the boundary, so the whole
			// quantum's cycles are charged.
			res.Jobs[i].Waste += int64(a)*L64 - st.Work
			s.attemptWork += st.Work
			if cfg.Obs.Active() {
				emitQuantum(cfg.Obs, st, i, s.spec.Name, &s.deprived)
			}
			if !st.Completed && s.spec.Restart.fires(st.Index, res.Jobs[i].Restarts) {
				res.Jobs[i].Restarts++
				res.Jobs[i].LostWork += s.attemptWork
				if cfg.Obs.Active() {
					cfg.Obs.Emit(obs.Event{Kind: obs.EvJobRestarted,
						Time: now + int64(st.Steps), Quantum: st.Index,
						Job: i, Name: s.spec.Name, Work: s.attemptWork})
				}
				s.attemptWork = 0
				s.spec.Inst = s.spec.Restart.New()
				s.spec.Policy.Reset()
				s.request = s.spec.Policy.InitialRequest()
				continue
			}
			if st.Completed {
				s.done = true
				remaining--
				res.Jobs[i].Completion = now + int64(st.Steps)
				res.Jobs[i].Response = res.Jobs[i].Completion - s.spec.Release
				if res.Jobs[i].Completion > res.Makespan {
					res.Makespan = res.Jobs[i].Completion
				}
				if cfg.Obs.Active() {
					cfg.Obs.Emit(obs.Event{Kind: obs.EvJobCompleted,
						Time: res.Jobs[i].Completion, Job: i, Name: s.spec.Name,
						Work: res.Jobs[i].Work, Response: res.Jobs[i].Response})
				}
			} else {
				s.request = s.spec.Policy.NextRequest(st)
			}
		}
	}
	for _, j := range res.Jobs {
		res.TotalWaste += j.Waste
	}
	return res, nil
}
