package sim

import (
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/workload"
)

// stepCap is a minimal capacity model for engine tests: P processors until
// quantum From, P−Loss from then on.
type stepCap struct{ p, loss, from int }

func (s stepCap) At(q int) int {
	if q >= s.from {
		return s.p - s.loss
	}
	return s.p
}
func (s stepCap) Name() string { return "step" }

func TestSingleCapacityCapsAllotments(t *testing.T) {
	cap := stepCap{p: 64, loss: 48, from: 10}
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	res, err := RunSingle(job.NewRun(workload.ConstantJob(32, 40, 50)),
		feedback.NewAControl(0.2), sched.BGreedy(), alloc.NewUnconstrained(64),
		SingleConfig{L: 50, KeepTrace: true, Obs: bus, Capacity: cap})
	if err != nil {
		t.Fatal(err)
	}
	sawCapped, sawDeprived := false, false
	for _, st := range res.Quanta {
		if ceil := alloc.CapAt(cap, st.Index, 64); st.Allotment > ceil {
			t.Fatalf("q=%d: allotment %d above capacity %d", st.Index, st.Allotment, ceil)
		}
		if st.Index >= cap.from {
			if st.Allotment == 16 {
				sawCapped = true
			}
			if st.Deprived {
				sawDeprived = true
			}
		}
	}
	if !sawCapped || !sawDeprived {
		t.Fatalf("capacity drop had no effect: capped=%v deprived=%v", sawCapped, sawDeprived)
	}
	// The engine announces each capacity change exactly once.
	var caps []int
	for _, e := range rec.Events() {
		if e.Kind == obs.EvCapacity {
			caps = append(caps, e.P)
		}
	}
	if len(caps) != 2 || caps[0] != 64 || caps[1] != 16 {
		t.Fatalf("capacity events %v, want [64 16]", caps)
	}
}

func TestSingleRestartMaxAndConservation(t *testing.T) {
	profile := workload.ConstantJob(8, 12, 50)
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	cfg := SingleConfig{L: 50, KeepTrace: true, Obs: bus}
	cfg.Restart = &RestartPlan{
		At:  func(q int) bool { return true }, // fail after every quantum...
		New: func() job.Instance { return job.NewRun(profile) },
		Max: 3, // ...but only thrice
	}
	res, err := RunSingle(job.NewRun(profile), feedback.NewStatic(8),
		sched.BGreedy(), alloc.NewUnconstrained(16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 3 {
		t.Fatalf("Max=3 but %d restarts", res.Restarts)
	}
	if res.LostWork == 0 {
		t.Fatal("restarts lost no work")
	}
	var executed int64
	for _, st := range res.Quanta {
		executed += st.Work
	}
	if executed != res.Work+res.LostWork {
		t.Fatalf("work not conserved: executed %d, T1 %d + lost %d", executed, res.Work, res.LostWork)
	}
	restartEvents := 0
	for _, e := range rec.Events() {
		if e.Kind == obs.EvJobRestarted {
			restartEvents++
		}
	}
	if restartEvents != 3 {
		t.Fatalf("%d EvJobRestarted events for 3 restarts", restartEvents)
	}
}

func TestMultiCapacityCapsRounds(t *testing.T) {
	cap := stepCap{p: 48, loss: 32, from: 5}
	specs := make([]JobSpec, 3)
	for i := range specs {
		specs[i] = JobSpec{
			Inst:   job.NewRun(workload.ConstantJob(16, 30, 50)),
			Policy: feedback.NewAControl(0.2),
			Sched:  sched.BGreedy(),
		}
	}
	res, err := RunMulti(specs, MultiConfig{
		P: 48, L: 50, Allocator: alloc.DynamicEquiPartition{},
		KeepTrace: true, Capacity: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per allocation round, the granted total must fit the perturbed machine.
	totals := map[int]int{}
	for _, j := range res.Jobs {
		for _, st := range j.Quanta {
			totals[st.Index] += st.Allotment
		}
	}
	if len(totals) == 0 {
		t.Fatal("no quanta recorded")
	}
	sawCapped := false
	for q, total := range totals {
		ceil := alloc.CapAt(cap, q, 48)
		if total > ceil {
			t.Fatalf("round %d: %d allotted above capacity %d", q, total, ceil)
		}
		if q >= cap.from && total == 16 {
			sawCapped = true
		}
	}
	if !sawCapped {
		t.Fatal("capacity drop never bound the allocation")
	}
}

func TestMultiRestartConservation(t *testing.T) {
	profile := workload.ConstantJob(8, 15, 50)
	specs := []JobSpec{
		{
			Inst: job.NewRun(profile), Policy: feedback.NewAControl(0.2),
			Sched: sched.BGreedy(),
			Restart: &RestartPlan{
				At:  func(q int) bool { return q == 3 },
				New: func() job.Instance { return job.NewRun(profile) },
				Max: 1,
			},
		},
		{Inst: job.NewRun(profile), Policy: feedback.NewAControl(0.2), Sched: sched.BGreedy()},
	}
	res, err := RunMulti(specs, MultiConfig{
		P: 32, L: 50, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Restarts != 1 || res.Jobs[0].LostWork == 0 {
		t.Fatalf("job 0 restart not injected: %+v", res.Jobs[0])
	}
	if res.Jobs[1].Restarts != 0 || res.Jobs[1].LostWork != 0 {
		t.Fatalf("job 1 wrongly restarted: %+v", res.Jobs[1])
	}
	for i, j := range res.Jobs {
		var executed int64
		for _, st := range j.Quanta {
			executed += st.Work
		}
		if executed != j.Work+j.LostWork {
			t.Fatalf("job %d: executed %d, T1 %d + lost %d", i, executed, j.Work, j.LostWork)
		}
	}
}
