// Package workload generates the synthetic data-parallel jobs of the
// paper's §7 simulations: fork-join jobs alternating serial and parallel
// phases. The level of parallelism of the parallel phases sets the job's
// transition factor; the phase lengths set its work and critical-path
// length. Job sets for the multiprogrammed experiments are assembled by
// accumulating jobs until a target system load (Σ A_i / P) is reached.
//
// All generation is driven by abg/internal/xrand so experiments are
// reproducible from a seed.
package workload

import (
	"fmt"

	"abg/internal/job"
	"abg/internal/xrand"
)

// Phase is one serial+parallel section of a fork-join job: Serial serial
// levels, then a parallel phase of Width chains of Height levels. Any part
// may be zero-length (but not all).
type Phase struct {
	Serial int
	Width  int
	Height int
}

// BuildForkJoin assembles a profile job from explicit phases. Serial levels
// are width-1 Sync levels; a parallel phase is one Sync fan-out level of the
// given width followed by Height−1 Chain levels (independent chains), and
// the next level after it acts as the join.
func BuildForkJoin(phases []Phase) *job.Profile {
	var levels []job.Level
	for _, ph := range phases {
		if ph.Serial < 0 || ph.Width < 0 || ph.Height < 0 {
			panic(fmt.Sprintf("workload: negative phase field %+v", ph))
		}
		for i := 0; i < ph.Serial; i++ {
			levels = append(levels, job.Level{Width: 1, Kind: job.Sync})
		}
		if ph.Width > 0 && ph.Height > 0 {
			levels = append(levels, job.Level{Width: ph.Width, Kind: job.Sync})
			for i := 1; i < ph.Height; i++ {
				levels = append(levels, job.Level{Width: ph.Width, Kind: job.Chain})
			}
		}
	}
	if len(levels) == 0 {
		panic("workload: fork-join job with no levels")
	}
	return job.MustProfile(levels)
}

// JobParams parameterises one random fork-join job.
type JobParams struct {
	// Width is the parallelism of the parallel phases; for long phases the
	// measured transition factor approaches this value (serial phases have
	// parallelism ~1).
	Width int
	// PhasesMin..PhasesMax bounds the number of serial+parallel phase pairs.
	PhasesMin, PhasesMax int
	// SerialMin..SerialMax bounds each serial phase length (levels).
	SerialMin, SerialMax int
	// HeightMin..HeightMax bounds each parallel phase height (levels).
	HeightMin, HeightMax int
}

// Validate checks the parameter ranges.
func (p JobParams) Validate() error {
	switch {
	case p.Width < 1:
		return fmt.Errorf("workload: width %d < 1", p.Width)
	case p.PhasesMin < 1 || p.PhasesMax < p.PhasesMin:
		return fmt.Errorf("workload: bad phase count range [%d,%d]", p.PhasesMin, p.PhasesMax)
	case p.SerialMin < 0 || p.SerialMax < p.SerialMin:
		return fmt.Errorf("workload: bad serial range [%d,%d]", p.SerialMin, p.SerialMax)
	case p.HeightMin < 1 || p.HeightMax < p.HeightMin:
		return fmt.Errorf("workload: bad height range [%d,%d]", p.HeightMin, p.HeightMax)
	}
	return nil
}

// DefaultJobParams returns the parameters used by the Figure 5 experiments:
// parallel width = the target transition factor, 6–12 phases, and phase
// lengths of 0.5–2 quanta so that quanta land both inside phases and across
// transitions.
func DefaultJobParams(transitionFactor, quantumLen int) JobParams {
	return JobParams{
		Width:     transitionFactor,
		PhasesMin: 6, PhasesMax: 12,
		SerialMin: quantumLen / 2, SerialMax: 2 * quantumLen,
		HeightMin: quantumLen / 2, HeightMax: 2 * quantumLen,
	}
}

// ScaledJobParams returns DefaultJobParams with all phase lengths scaled by
// 1/div — the smaller jobs used when assembling large multiprogrammed job
// sets (Figure 6) and fast unit tests.
func ScaledJobParams(transitionFactor, quantumLen, div int) JobParams {
	p := DefaultJobParams(transitionFactor, quantumLen)
	p.SerialMin /= div
	p.SerialMax /= div
	p.HeightMin /= div
	p.HeightMax /= div
	if p.SerialMin < 1 {
		p.SerialMin = 1
	}
	if p.SerialMax < p.SerialMin {
		p.SerialMax = p.SerialMin
	}
	if p.HeightMin < 1 {
		p.HeightMin = 1
	}
	if p.HeightMax < p.HeightMin {
		p.HeightMax = p.HeightMin
	}
	return p
}

// GenPhases draws a random phase list from the parameters.
func GenPhases(rng *xrand.RNG, p JobParams) []Phase {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := rng.IntRange(p.PhasesMin, p.PhasesMax)
	phases := make([]Phase, 0, n+1)
	for i := 0; i < n; i++ {
		phases = append(phases, Phase{
			Serial: rng.IntRange(p.SerialMin, p.SerialMax),
			Width:  p.Width,
			Height: rng.IntRange(p.HeightMin, p.HeightMax),
		})
	}
	// Trailing serial join so the job ends on its critical path.
	phases = append(phases, Phase{Serial: rng.IntRange(1, p.SerialMax)})
	return phases
}

// GenJob draws one random fork-join job.
func GenJob(rng *xrand.RNG, p JobParams) *job.Profile {
	return BuildForkJoin(GenPhases(rng, p))
}

// SetParams parameterises a multiprogrammed job set (Figure 6).
type SetParams struct {
	// TargetLoad is the desired Σ A_i / P of the set.
	TargetLoad float64
	// P is the machine size the load is normalised against.
	P int
	// QuantumLen is L, used to scale phase lengths.
	QuantumLen int
	// CLMin..CLMax bounds the per-job transition factors (parallel widths).
	CLMin, CLMax int
	// Shrink divides the phase lengths (jobs in sets are smaller than the
	// standalone Figure 5 jobs so that thousands of sets stay simulable).
	Shrink int
	// MaxJobs caps the set size; the paper requires |J| ≤ P.
	MaxJobs int
}

// DefaultSetParams returns the Figure 6 setup for the given target load.
func DefaultSetParams(targetLoad float64, p, quantumLen int) SetParams {
	return SetParams{
		TargetLoad: targetLoad,
		P:          p,
		QuantumLen: quantumLen,
		CLMin:      2, CLMax: 100,
		Shrink:  4,
		MaxJobs: p,
	}
}

// GenJobSet assembles a job set whose load approximates TargetLoad by
// accumulating random fork-join jobs until the load is reached (always at
// least one job, at most MaxJobs). It returns the profiles; the realised
// load can be computed from them via Load.
func GenJobSet(rng *xrand.RNG, sp SetParams) []*job.Profile {
	if sp.TargetLoad <= 0 || sp.P < 1 || sp.QuantumLen < 1 {
		panic(fmt.Sprintf("workload: invalid set params %+v", sp))
	}
	if sp.CLMin < 1 || sp.CLMax < sp.CLMin {
		panic(fmt.Sprintf("workload: invalid CL range [%d,%d]", sp.CLMin, sp.CLMax))
	}
	if sp.Shrink < 1 {
		sp.Shrink = 1
	}
	maxJobs := sp.MaxJobs
	if maxJobs < 1 {
		maxJobs = sp.P
	}
	var jobs []*job.Profile
	load := 0.0
	for load < sp.TargetLoad && len(jobs) < maxJobs {
		cl := rng.IntRange(sp.CLMin, sp.CLMax)
		p := GenJob(rng, ScaledJobParams(cl, sp.QuantumLen, sp.Shrink))
		jobs = append(jobs, p)
		load += p.AvgParallelism() / float64(sp.P)
	}
	return jobs
}

// Load returns the system load Σ A_i / P of a set of profiles.
func Load(jobs []*job.Profile, p int) float64 {
	sum := 0.0
	for _, j := range jobs {
		sum += j.AvgParallelism()
	}
	return sum / float64(p)
}

// StepWidths builds a profile whose parallelism steps through the given
// widths, each held for `hold` levels — the "step job" used to study
// transient response to parallelism changes (ablation experiments).
func StepWidths(widths []int, hold int) *job.Profile {
	if len(widths) == 0 || hold < 1 {
		panic("workload: StepWidths needs widths and hold >= 1")
	}
	var levels []job.Level
	for _, w := range widths {
		if w < 1 {
			panic("workload: step width must be >= 1")
		}
		levels = append(levels, job.Level{Width: w, Kind: job.Sync})
		for i := 1; i < hold; i++ {
			levels = append(levels, job.Level{Width: w, Kind: job.Chain})
		}
	}
	return job.MustProfile(levels)
}

// ConstantJob returns a constant-parallelism job sized to run for about the
// given number of quanta when fully allotted: width chains of quanta·L
// levels (Figures 1 and 4).
func ConstantJob(width, quanta, quantumLen int) *job.Profile {
	if quanta < 1 || quantumLen < 1 {
		panic("workload: ConstantJob needs quanta, quantumLen >= 1")
	}
	return job.Constant(width, quanta*quantumLen)
}
