package workload

import (
	"math"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/xrand"
)

func TestBuildForkJoinStructure(t *testing.T) {
	p := BuildForkJoin([]Phase{
		{Serial: 2, Width: 3, Height: 4},
		{Serial: 1},
	})
	// Levels: 2 serial + 4 parallel + 1 serial = 7; work = 2 + 12 + 1.
	if p.CriticalPathLen() != 7 {
		t.Fatalf("cpl = %d", p.CriticalPathLen())
	}
	if p.Work() != 15 {
		t.Fatalf("work = %d", p.Work())
	}
	// Parallel phase: first level Sync, interior Chain.
	if p.Level(2).Kind != job.Sync || p.Level(2).Width != 3 {
		t.Fatalf("fork level = %+v", p.Level(2))
	}
	if p.Level(3).Kind != job.Chain {
		t.Fatalf("interior level = %+v", p.Level(3))
	}
	// Join back to serial.
	if p.Level(6).Width != 1 || p.Level(6).Kind != job.Sync {
		t.Fatalf("join level = %+v", p.Level(6))
	}
}

func TestBuildForkJoinPanics(t *testing.T) {
	for name, phases := range map[string][]Phase{
		"empty":    {},
		"all zero": {{Serial: 0, Width: 0, Height: 0}},
		"negative": {{Serial: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			BuildForkJoin(phases)
		}()
	}
}

func TestBuildForkJoinZeroParts(t *testing.T) {
	// Width or Height zero omits the parallel part.
	p := BuildForkJoin([]Phase{{Serial: 3, Width: 0, Height: 5}})
	if p.Work() != 3 || p.CriticalPathLen() != 3 {
		t.Fatalf("serial-only: %d/%d", p.Work(), p.CriticalPathLen())
	}
	p = BuildForkJoin([]Phase{{Width: 4, Height: 2}})
	if p.Work() != 8 || p.CriticalPathLen() != 2 {
		t.Fatalf("parallel-only: %d/%d", p.Work(), p.CriticalPathLen())
	}
}

func TestJobParamsValidate(t *testing.T) {
	good := DefaultJobParams(10, 100)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []JobParams{
		{Width: 0, PhasesMin: 1, PhasesMax: 1, HeightMin: 1, HeightMax: 1},
		{Width: 1, PhasesMin: 0, PhasesMax: 1, HeightMin: 1, HeightMax: 1},
		{Width: 1, PhasesMin: 2, PhasesMax: 1, HeightMin: 1, HeightMax: 1},
		{Width: 1, PhasesMin: 1, PhasesMax: 1, SerialMin: 3, SerialMax: 1, HeightMin: 1, HeightMax: 1},
		{Width: 1, PhasesMin: 1, PhasesMax: 1, HeightMin: 0, HeightMax: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGenJobDeterministic(t *testing.T) {
	a := GenJob(xrand.New(5), DefaultJobParams(20, 50))
	b := GenJob(xrand.New(5), DefaultJobParams(20, 50))
	if a.Work() != b.Work() || a.CriticalPathLen() != b.CriticalPathLen() {
		t.Fatal("generation is not deterministic")
	}
}

func TestGenJobRespectsParams(t *testing.T) {
	rng := xrand.New(9)
	p := JobParams{Width: 7, PhasesMin: 3, PhasesMax: 5, SerialMin: 2, SerialMax: 4, HeightMin: 2, HeightMax: 3}
	for trial := 0; trial < 20; trial++ {
		phases := GenPhases(rng, p)
		// Last phase is the trailing serial join.
		n := len(phases) - 1
		if n < p.PhasesMin || n > p.PhasesMax {
			t.Fatalf("phase count %d outside [%d,%d]", n, p.PhasesMin, p.PhasesMax)
		}
		for i, ph := range phases[:n] {
			if ph.Width != 7 {
				t.Fatalf("phase %d width %d", i, ph.Width)
			}
			if ph.Serial < 2 || ph.Serial > 4 || ph.Height < 2 || ph.Height > 3 {
				t.Fatalf("phase %d out of range: %+v", i, ph)
			}
		}
		if phases[n].Width != 0 || phases[n].Serial < 1 {
			t.Fatalf("trailing phase: %+v", phases[n])
		}
	}
}

func TestGenPhasesPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenPhases(xrand.New(1), JobParams{})
}

func TestScaledJobParams(t *testing.T) {
	p := ScaledJobParams(10, 100, 4)
	d := DefaultJobParams(10, 100)
	if p.SerialMax != d.SerialMax/4 || p.HeightMax != d.HeightMax/4 {
		t.Fatalf("scaling wrong: %+v", p)
	}
	// Extreme shrink clamps to 1.
	p = ScaledJobParams(10, 4, 1000)
	if p.SerialMin < 1 || p.HeightMin < 1 || p.SerialMax < p.SerialMin || p.HeightMax < p.HeightMin {
		t.Fatalf("clamping wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMeasuredTransitionFactorTracksWidth is the generator's core promise:
// simulating a generated job and measuring C_L from the quantum trace gives
// roughly the configured parallel width.
func TestMeasuredTransitionFactorTracksWidth(t *testing.T) {
	rng := xrand.New(11)
	const L = 100
	for _, w := range []int{2, 5, 10, 25} {
		p := GenJob(rng, DefaultJobParams(w, L))
		res, err := sim.RunSingle(job.NewRun(p), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(256), sim.SingleConfig{L: L, KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		cl := metrics.TransitionFactorFromQuanta(res.Quanta)
		if cl < float64(w)/2 || cl > float64(w)*2.5 {
			t.Fatalf("width %d: measured C_L %v far from target", w, cl)
		}
	}
}

func TestGenJobSetLoad(t *testing.T) {
	rng := xrand.New(13)
	const P = 64
	for _, target := range []float64{0.5, 1, 3} {
		jobs := GenJobSet(rng, SetParams{
			TargetLoad: target, P: P, QuantumLen: 100,
			CLMin: 2, CLMax: 40, Shrink: 4, MaxJobs: P,
		})
		if len(jobs) == 0 {
			t.Fatal("empty set")
		}
		load := Load(jobs, P)
		// Load must reach the target unless the job cap intervened; with a
		// generous cap the overshoot is at most one job's parallelism.
		if len(jobs) < P && load < target {
			t.Fatalf("target %v: load %v with %d jobs", target, load, len(jobs))
		}
	}
}

func TestGenJobSetCaps(t *testing.T) {
	rng := xrand.New(17)
	jobs := GenJobSet(rng, SetParams{
		TargetLoad: 1000, P: 8, QuantumLen: 50,
		CLMin: 2, CLMax: 10, Shrink: 8, MaxJobs: 8,
	})
	if len(jobs) != 8 {
		t.Fatalf("cap not applied: %d jobs", len(jobs))
	}
}

func TestGenJobSetPanics(t *testing.T) {
	for name, sp := range map[string]SetParams{
		"zero load": {TargetLoad: 0, P: 8, QuantumLen: 10, CLMin: 2, CLMax: 4},
		"bad P":     {TargetLoad: 1, P: 0, QuantumLen: 10, CLMin: 2, CLMax: 4},
		"bad CL":    {TargetLoad: 1, P: 8, QuantumLen: 10, CLMin: 5, CLMax: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			GenJobSet(xrand.New(1), sp)
		}()
	}
}

func TestDefaultSetParams(t *testing.T) {
	sp := DefaultSetParams(2.5, 128, 1000)
	if sp.TargetLoad != 2.5 || sp.P != 128 || sp.CLMax != 100 || sp.MaxJobs != 128 {
		t.Fatalf("defaults: %+v", sp)
	}
}

func TestStepWidths(t *testing.T) {
	p := StepWidths([]int{2, 8, 2}, 5)
	if p.CriticalPathLen() != 15 {
		t.Fatalf("cpl = %d", p.CriticalPathLen())
	}
	if p.Work() != 5*(2+8+2) {
		t.Fatalf("work = %d", p.Work())
	}
	if p.Level(5).Kind != job.Sync || p.Level(6).Kind != job.Chain {
		t.Fatal("step boundaries wrong")
	}
	for _, f := range []func(){
		func() { StepWidths(nil, 3) },
		func() { StepWidths([]int{2}, 0) },
		func() { StepWidths([]int{0}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConstantJob(t *testing.T) {
	p := ConstantJob(6, 3, 100)
	if p.CriticalPathLen() != 300 || math.Abs(p.AvgParallelism()-6) > 1e-12 {
		t.Fatalf("constant job: cpl=%d A=%v", p.CriticalPathLen(), p.AvgParallelism())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConstantJob(2, 0, 100)
}

func BenchmarkGenJob(b *testing.B) {
	rng := xrand.New(1)
	params := DefaultJobParams(50, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenJob(rng, params)
	}
}
