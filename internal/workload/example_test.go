package workload_test

import (
	"fmt"

	"abg/internal/workload"
	"abg/internal/xrand"
)

// ExampleGenJob draws a reproducible fork-join job with a target transition
// factor: the parallel-phase width sets how abruptly the parallelism swings
// between 1 (serial phases) and the width.
func ExampleGenJob() {
	rng := xrand.New(2008)
	p := workload.GenJob(rng, workload.DefaultJobParams(16, 1000))
	fmt.Printf("levels: %d\n", p.CriticalPathLen())
	fmt.Printf("max width: %d\n", p.MaxWidth())
	fmt.Printf("same seed, same job: %v\n",
		workload.GenJob(xrand.New(2008), workload.DefaultJobParams(16, 1000)).Work() == p.Work())
	// Output:
	// levels: 26579
	// max width: 16
	// same seed, same job: true
}
