package wsteal

import (
	"testing"

	"abg/internal/alloc"
	"abg/internal/dag"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/xrand"
)

func drive(t *testing.T, r *Run, p int) (steps int, total int64) {
	t.Helper()
	var buf []job.LevelCount
	for !r.Done() {
		var n int
		buf = buf[:0]
		n, buf = r.Step(p, job.BreadthFirst, buf)
		total += int64(n)
		steps++
		if steps > 1<<22 {
			t.Fatal("runaway")
		}
	}
	return
}

func TestCompletesChain(t *testing.T) {
	// One worker, no thieves: exactly one task per step.
	g := dag.Chain(10)
	r := NewRun(g, 1)
	steps, total := drive(t, r, 1)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	if steps != 10 {
		t.Fatalf("steps = %d", steps)
	}
	if !r.Done() || r.Remaining() != 0 {
		t.Fatal("not done")
	}
	// With extra workers, steal latency may stretch the chain, but never
	// beyond one steal hop per task.
	r2 := NewRun(g, 1)
	steps2, _ := drive(t, r2, 4)
	if steps2 > 20 {
		t.Fatalf("steps with thieves = %d", steps2)
	}
}

func TestCompletesRandomDags(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 15; trial++ {
		widths := make([]int, rng.IntRange(2, 8))
		for i := range widths {
			widths[i] = rng.IntRange(1, 10)
		}
		g := dag.LayeredRandom(rng, widths, 0.3)
		for _, p := range []int{1, 2, 5, 16} {
			r := NewRun(g, uint64(trial))
			_, total := drive(t, r, p)
			if total != g.Work() {
				t.Fatalf("p=%d: total %d != %d", p, total, g.Work())
			}
		}
	}
}

func TestSingleWorkerNeverSteals(t *testing.T) {
	g := dag.IndependentChains(4, 20)
	r := NewRun(g, 9)
	drive(t, r, 1)
	if r.StealAttempts() != 0 {
		t.Fatalf("steals with one worker: %d", r.StealAttempts())
	}
}

func TestStealsHappenAndSpreadWork(t *testing.T) {
	// Wide dag, all sources on worker 0: other workers must steal to help.
	g := dag.IndependentChains(16, 50)
	r := NewRun(g, 5)
	steps, _ := drive(t, r, 8)
	if r.StealAttempts() == 0 {
		t.Fatal("no steals on a wide dag")
	}
	// With 8 workers on a 16-wide dag, runtime must beat serial by a lot
	// despite steal overhead.
	if int64(steps) > g.Work()/4 {
		t.Fatalf("steps %d show no meaningful parallelism (work %d)", steps, g.Work())
	}
}

func TestStealOverheadCountsAsWaste(t *testing.T) {
	// Work-stealing completes the same work with extra idle (steal) cycles
	// compared to the centralized B-Greedy executor.
	g := dag.IndependentChains(8, 100)
	ws := NewRun(g, 11)
	wsSteps, _ := drive(t, ws, 8)
	central := dag.NewRun(g)
	var buf []job.LevelCount
	cSteps := 0
	for !central.Done() {
		buf = buf[:0]
		_, buf = central.Step(8, job.BreadthFirst, buf)
		cSteps++
	}
	if wsSteps < cSteps {
		t.Fatalf("work stealing (%d steps) beat centralized greedy (%d)", wsSteps, cSteps)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := dag.IndependentChains(6, 40)
	a := NewRun(g, 42)
	b := NewRun(g, 42)
	var bufA, bufB []job.LevelCount
	for !a.Done() || !b.Done() {
		na, _ := a.Step(4, job.BreadthFirst, bufA[:0])
		nb, _ := b.Step(4, job.BreadthFirst, bufB[:0])
		if na != nb {
			t.Fatal("same seed diverged")
		}
	}
	if a.StealAttempts() != b.StealAttempts() {
		t.Fatal("steal counts diverged")
	}
}

func TestMuggingOnShrink(t *testing.T) {
	g := dag.IndependentChains(16, 60)
	r := NewRun(g, 7)
	var buf []job.LevelCount
	// Warm up with 8 workers so several deques are populated.
	for i := 0; i < 30 && !r.Done(); i++ {
		_, buf = r.Step(8, job.BreadthFirst, buf[:0])
	}
	// Shrink to 2: abandoned non-empty deques must be mugged, not lost.
	for !r.Done() {
		_, buf = r.Step(2, job.BreadthFirst, buf[:0])
	}
	if r.Mugs() == 0 {
		t.Fatal("no mugging recorded after allotment shrink")
	}
}

func TestGrowShrinkOscillation(t *testing.T) {
	g := dag.IndependentChains(12, 80)
	r := NewRun(g, 13)
	var buf []job.LevelCount
	p := 1
	steps := 0
	for !r.Done() {
		_, buf = r.Step(p, job.BreadthFirst, buf[:0])
		steps++
		if steps%10 == 0 {
			if p == 1 {
				p = 12
			} else {
				p = 1
			}
		}
		if steps > 1<<20 {
			t.Fatal("runaway")
		}
	}
}

func TestZeroAndDoneGuards(t *testing.T) {
	g := dag.Chain(2)
	r := NewRun(g, 1)
	if n, _ := r.Step(0, job.BreadthFirst, nil); n != 0 {
		t.Fatal("p=0 should do nothing")
	}
	drive(t, r, 2)
	if n, _ := r.Step(4, job.BreadthFirst, nil); n != 0 {
		t.Fatal("finished instance should do nothing")
	}
}

func TestLevelAccounting(t *testing.T) {
	g := dag.IndependentChains(5, 20)
	r := NewRun(g, 17)
	perLevel := make([]int, g.CriticalPathLen())
	var buf []job.LevelCount
	for !r.Done() {
		var n int
		buf = buf[:0]
		n, buf = r.Step(3, job.BreadthFirst, buf)
		sum := 0
		for _, lc := range buf {
			perLevel[lc.Level] += lc.Count
			sum += lc.Count
		}
		if sum != n {
			t.Fatalf("byLevel sum %d != completed %d", sum, n)
		}
	}
	for l := range perLevel {
		if perLevel[l] != g.LevelWidth(l) {
			t.Fatalf("level %d: %d completions, width %d", l, perLevel[l], g.LevelWidth(l))
		}
	}
}

func TestManyLevelsPerStepSpillPath(t *testing.T) {
	// More than 8 distinct levels touched in one step exercises the spill
	// path of the per-step level counter. A dag of many independent chains
	// at staggered depths achieves this under stealing.
	g := dag.New()
	// 12 chains of different lengths, no common source.
	for c := 0; c < 12; c++ {
		var prev dag.NodeID = -1
		for h := 0; h <= c; h++ {
			id := g.AddNode()
			if prev >= 0 {
				g.MustEdge(prev, id)
			}
			prev = id
		}
	}
	g.MustFinalize()
	r := NewRun(g, 23)
	perLevel := make([]int, g.CriticalPathLen())
	var buf []job.LevelCount
	for !r.Done() {
		buf = buf[:0]
		_, buf = r.Step(12, job.BreadthFirst, buf)
		for _, lc := range buf {
			perLevel[lc.Level] += lc.Count
		}
	}
	for l := range perLevel {
		if perLevel[l] != g.LevelWidth(l) {
			t.Fatalf("level %d: %d vs width %d", l, perLevel[l], g.LevelWidth(l))
		}
	}
}

// TestWithSimEngine runs the work-stealing executor under the full two-level
// engine with the A-Greedy desire policy — an A-Steal-like scheduler.
func TestWithSimEngine(t *testing.T) {
	g := dag.ForkJoin([]dag.Phase{
		{SerialLen: 10, Width: 12, Height: 60},
		{SerialLen: 10, Width: 4, Height: 60},
		{SerialLen: 5},
	})
	res, err := sim.RunSingle(NewRun(g, 31), feedback.DefaultAGreedy(), sched.Greedy(),
		alloc.NewUnconstrained(32), sim.SingleConfig{L: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != g.Work() {
		t.Fatal("work mismatch")
	}
	if res.Waste <= 0 {
		t.Fatal("steal cycles should register as waste")
	}
	if res.Runtime < int64(g.CriticalPathLen()) {
		t.Fatal("runtime below critical path")
	}
}

func BenchmarkStepWideDag(b *testing.B) {
	g := dag.IndependentChains(64, 256)
	r := NewRun(g, 1)
	var buf []job.LevelCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			b.StopTimer()
			r = NewRun(g, 1)
			b.StartTimer()
		}
		buf = buf[:0]
		_, buf = r.Step(32, job.BreadthFirst, buf)
	}
}

// TestSerialChainLargeAllotmentProgress is the regression test for the
// stolen-task ping-pong pathology: on a pure chain with a huge allotment,
// a stolen task must be private to its thief and execute the next step, so
// the chain advances at least one task every two steps.
func TestSerialChainLargeAllotmentProgress(t *testing.T) {
	const n = 400
	g := dag.Chain(n)
	r := NewRun(g, 3)
	steps, _ := drive(t, r, 128)
	if steps > 2*n+10 {
		t.Fatalf("chain of %d tasks took %d steps with 128 workers (ping-pong bug)", n, steps)
	}
}
