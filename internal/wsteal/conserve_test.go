package wsteal

import (
	"testing"

	"abg/internal/dag"
	"abg/internal/job"
	"abg/internal/xrand"
)

// TestTaskConservationFuzz drives random dags withrandom per-step allotments and
// checks that no ready task is ever lost and the job always finishes.
func TestTaskConservationFuzz(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		widths := make([]int, rng.IntRange(2, 10))
		for i := range widths {
			widths[i] = rng.IntRange(1, 12)
		}
		g := dag.LayeredRandom(rng, widths, 0.3)
		r := NewRun(g, uint64(trial))
		var buf []job.LevelCount
		steps := 0
		zeroRun := 0
		for !r.Done() {
			p := rng.IntRange(1, 10)
			n, _ := r.Step(p, job.BreadthFirst, buf[:0])
			if n == 0 {
				zeroRun++
				if zeroRun > 1000 {
					t.Fatalf("trial %d: livelock (p=%d, queued=%d, remaining=%d)",
						trial, p, r.queuedTasks(), r.Remaining())
				}
			} else {
				zeroRun = 0
			}
			if r.queuedTasks() == 0 && !r.Done() {
				t.Fatalf("trial %d: all deques empty with %d tasks remaining", trial, r.Remaining())
			}
			steps++
			if steps > 1<<21 {
				t.Fatal("runaway")
			}
		}
	}
}
