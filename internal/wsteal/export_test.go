package wsteal

// queuedTasks returns the number of ready tasks currently sitting in worker
// deques and orphaned deques — test-only visibility for the conservation
// invariant: queuedTasks must equal the number of ready, unexecuted nodes.
func (r *Run) queuedTasks() int {
	n := 0
	for _, d := range r.deques {
		n += len(d)
	}
	for _, d := range r.orphans {
		n += len(d)
	}
	for _, a := range r.assigned {
		if a >= 0 {
			n++
		}
	}
	return n
}
