// Package wsteal implements a distributed work-stealing task executor in
// the style of A-Steal (Agrawal, He, Leiserson; PPoPP 2007) and ABP (Arora,
// Blumofe, Plaxton), the decentralized alternatives the paper's §8 relates
// ABG to. Each allotted processor owns a deque of ready tasks; it pops work
// from the bottom of its own deque and, when empty, spends a time step
// attempting to steal from the top of a random victim's deque. When the
// allotment shrinks between quanta, abandoned deques are "mugged" —
// adopted by idle processors, again at a one-step cost.
//
// The executor implements job.Instance, so the same simulation engine,
// feedback policies and OS allocators drive it. Pairing it with the
// A-Greedy desire policy yields an A-Steal-like scheduler; pairing it with
// A-Control shows how the accuracy of the parallelism measurement degrades
// without B-Greedy's breadth-first order (the steal ablation in
// abg/internal/experiments).
//
// Modelling simplifications (documented per DESIGN.md): workers act in a
// fixed order within a step, so a task enabled earlier in a step is
// stealable later in the same step; a successful steal deposits the task in
// the thief's deque and execution starts the next step; steal victims are
// chosen uniformly among the other workers.
package wsteal

import (
	"abg/internal/dag"
	"abg/internal/job"
	"abg/internal/xrand"
)

// Run executes a finalized dag under randomized work stealing. It is
// single-use and implements job.Instance.
type Run struct {
	g         *dag.Graph
	rng       *xrand.RNG
	predsLeft []int32
	deques    [][]dag.NodeID // per-worker; bottom = end of slice
	// assigned holds a task a worker stole last step and will execute this
	// step. Stolen tasks are private to the thief — they cannot be
	// re-stolen, matching the take-and-execute semantics of real
	// work-stealing deques. (Without this, one serial task ping-pongs among
	// p−1 thieves and almost never executes.) −1 when empty.
	assigned []dag.NodeID
	orphans  [][]dag.NodeID // deques abandoned by a shrinking allotment
	done     int64

	steals      int64 // steal attempts
	failedSteal int64 // attempts that found an empty victim
	mugs        int64 // orphan-deque adoptions
}

// NewRun returns a work-stealing instance of g with the given RNG seed.
// All sources start on the first worker's deque; everyone else steals.
func NewRun(g *dag.Graph, seed uint64) *Run {
	r := &Run{
		g:         g,
		rng:       xrand.New(seed),
		predsLeft: make([]int32, g.NumNodes()),
	}
	var sources []dag.NodeID
	for v := 0; v < g.NumNodes(); v++ {
		r.predsLeft[v] = int32(g.NumPreds(dag.NodeID(v)))
		if r.predsLeft[v] == 0 {
			sources = append(sources, dag.NodeID(v))
		}
	}
	r.deques = [][]dag.NodeID{sources}
	r.assigned = []dag.NodeID{-1}
	return r
}

// Done implements job.Instance.
func (r *Run) Done() bool { return r.done == r.g.Work() }

// Remaining implements job.Instance.
func (r *Run) Remaining() int64 { return r.g.Work() - r.done }

// TotalWork implements job.Instance.
func (r *Run) TotalWork() int64 { return r.g.Work() }

// CriticalPathLen implements job.Instance.
func (r *Run) CriticalPathLen() int { return r.g.CriticalPathLen() }

// LevelWidth implements job.Instance.
func (r *Run) LevelWidth(level int) int { return r.g.LevelWidth(level) }

// StealAttempts returns the number of steal attempts so far.
func (r *Run) StealAttempts() int64 { return r.steals }

// FailedSteals returns the number of steal attempts that found nothing.
func (r *Run) FailedSteals() int64 { return r.failedSteal }

// Mugs returns the number of orphan-deque adoptions.
func (r *Run) Mugs() int64 { return r.mugs }

// resize adapts the worker set to a new allotment. Growing adds empty
// deques; shrinking orphans the abandoned non-empty deques (including any
// privately assigned task) for mugging.
func (r *Run) resize(p int) {
	for len(r.deques) < p {
		r.deques = append(r.deques, nil)
		r.assigned = append(r.assigned, -1)
	}
	for len(r.deques) > p {
		i := len(r.deques) - 1
		last := r.deques[i]
		if r.assigned[i] >= 0 {
			last = append(last, r.assigned[i])
		}
		r.deques = r.deques[:i]
		r.assigned = r.assigned[:i]
		if len(last) > 0 {
			r.orphans = append(r.orphans, last)
		}
	}
}

// Step implements job.Instance. The order argument is ignored: scheduling
// order emerges from the deque discipline.
func (r *Run) Step(p int, _ job.Order, buf []job.LevelCount) (int, []job.LevelCount) {
	if p <= 0 || r.Done() {
		return 0, buf
	}
	r.resize(p)
	start := len(buf)
	completed := 0
	var counts [8]struct {
		level, count int
	}
	nCounts := 0
	record := func(level int) {
		for i := 0; i < nCounts; i++ {
			if counts[i].level == level {
				counts[i].count++
				return
			}
		}
		if nCounts < len(counts) {
			counts[nCounts].level = level
			counts[nCounts].count = 1
			nCounts++
			return
		}
		// Overflow (more than 8 distinct levels in one step): spill
		// directly to buf; merged below.
		buf = append(buf, job.LevelCount{Level: level, Count: 1})
	}
	for w := 0; w < p; w++ {
		// A task stolen last step executes now, ahead of the own deque.
		var v dag.NodeID = -1
		if r.assigned[w] >= 0 {
			v = r.assigned[w]
			r.assigned[w] = -1
		} else if dq := r.deques[w]; len(dq) > 0 {
			// Execute the bottom task of the own deque.
			v = dq[len(dq)-1]
			r.deques[w] = dq[:len(dq)-1]
		}
		if v >= 0 {
			completed++
			record(r.g.Level(v))
			r.g.EachSucc(v, func(child dag.NodeID) {
				r.predsLeft[child]--
				if r.predsLeft[child] == 0 {
					r.deques[w] = append(r.deques[w], child)
				}
			})
			continue
		}
		// Idle: adopt an orphaned deque if any (mugging), else steal.
		if n := len(r.orphans); n > 0 {
			r.deques[w] = r.orphans[n-1]
			r.orphans = r.orphans[:n-1]
			r.mugs++
			continue
		}
		if p > 1 {
			r.steals++
			victim := r.rng.Intn(p - 1)
			if victim >= w {
				victim++
			}
			vd := r.deques[victim]
			if len(vd) == 0 {
				r.failedSteal++
				continue
			}
			// Steal from the top (front); the task is now private to the
			// thief and executes next step.
			r.assigned[w] = vd[0]
			r.deques[victim] = vd[1:]
		}
	}
	r.done += int64(completed)
	for i := 0; i < nCounts; i++ {
		buf = append(buf, job.LevelCount{Level: counts[i].level, Count: counts[i].count})
	}
	mergeLevelCounts(buf[start:])
	return completed, buf
}

// mergeLevelCounts sorts the segment by level and merges duplicates in
// place is unnecessary — duplicates only arise on the >8-level spill path;
// consumers sum per level anyway, so sorting suffices for determinism.
func mergeLevelCounts(lcs []job.LevelCount) {
	for i := 1; i < len(lcs); i++ {
		for j := i; j > 0 && lcs[j].Level < lcs[j-1].Level; j-- {
			lcs[j], lcs[j-1] = lcs[j-1], lcs[j]
		}
	}
}

var _ job.Instance = (*Run)(nil)
