// Package chart renders (x, y) series as ASCII line charts — a terminal
// approximation of the paper's figures, used by cmd/abgexp's -chart flag.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"

	"abg/internal/trace"
)

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Options controls the plot layout.
type Options struct {
	// Width and Height are the plot area size in characters (defaults 64×16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel / YLabel annotate the axes.
	XLabel, YLabel string
}

func (o *Options) normalize() {
	if o.Width < 8 {
		o.Width = 64
	}
	if o.Height < 4 {
		o.Height = 16
	}
}

// Render draws the series into w. Series share the axes; each gets a marker
// listed in the legend. Empty or degenerate input renders a note instead of
// a chart.
func Render(w io.Writer, series []trace.Series, opts Options) error {
	opts.normalize()
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if points == 0 {
		_, err := fmt.Fprintln(w, "(no finite points to plot)")
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(opts.Width-1))
			row := opts.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(opts.Height-1))
			if grid[row][col] == ' ' || grid[row][col] == m {
				grid[row][col] = m
			} else {
				grid[row][col] = '&' // collision of different series
			}
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintln(w, opts.Title); err != nil {
			return err
		}
	}
	yTop := fmt.Sprintf("%.4g", ymax)
	yBot := fmt.Sprintf("%.4g", ymin)
	labelWidth := len(yTop)
	if len(yBot) > labelWidth {
		labelWidth = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yTop)
		case opts.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(line), " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth),
		strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g  %s\n", strings.Repeat(" ", labelWidth),
		opts.Width/2, xmin, opts.Width-opts.Width/2, xmax, opts.XLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if opts.YLabel != "" {
		legend = append(legend, "y: "+opts.YLabel)
	}
	_, err := fmt.Fprintln(w, strings.Join(legend, "   "))
	return err
}
