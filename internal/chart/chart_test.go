package chart

import (
	"math"
	"strings"
	"testing"

	"abg/internal/trace"
)

func TestRenderBasic(t *testing.T) {
	series := []trace.Series{
		{Name: "abg", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
		{Name: "agreedy", X: []float64{0, 1, 2, 3}, Y: []float64{4, 3, 2, 1}},
	}
	var sb strings.Builder
	if err := Render(&sb, series, Options{Title: "test chart", XLabel: "quantum"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"test chart", "* abg", "o agreedy", "quantum", "+--"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
	// Both markers appear in the plot area.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	// Y-axis labels present.
	if !strings.Contains(out, "4") || !strings.Contains(out, "1") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no finite points") {
		t.Fatalf("empty note missing: %q", sb.String())
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	series := []trace.Series{{
		Name: "s",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.NaN(), math.Inf(1)},
	}}
	var sb strings.Builder
	if err := Render(&sb, series, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN leaked into the plot")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	series := []trace.Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}
	var sb strings.Builder
	if err := Render(&sb, series, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("point missing")
	}
}

func TestCollisionMarker(t *testing.T) {
	series := []trace.Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{0, 1}},
	}
	var sb strings.Builder
	if err := Render(&sb, series, Options{Width: 10, Height: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "&") {
		t.Fatalf("collision marker missing:\n%s", sb.String())
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{Width: 1, Height: 1}
	o.normalize()
	if o.Width < 8 || o.Height < 4 {
		t.Fatalf("normalize failed: %+v", o)
	}
}
