package job

import (
	"testing"
)

func TestNewProfileValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []Level
		ok     bool
	}{
		{"empty", nil, false},
		{"zero width", []Level{{Width: 0, Kind: Sync}}, false},
		{"negative width", []Level{{Width: -3, Kind: Sync}}, false},
		{"chain first", []Level{{Width: 2, Kind: Chain}}, false},
		{"chain width mismatch", []Level{{Width: 2, Kind: Sync}, {Width: 3, Kind: Chain}}, false},
		{"valid single", []Level{{Width: 4, Kind: Sync}}, true},
		{"valid chain", []Level{{Width: 4, Kind: Sync}, {Width: 4, Kind: Chain}}, true},
		{"valid sync resize", []Level{{Width: 4, Kind: Sync}, {Width: 9, Kind: Sync}}, true},
	}
	for _, c := range cases {
		_, err := NewProfile(c.levels)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestProfileAccessors(t *testing.T) {
	p := MustProfile([]Level{
		{Width: 1, Kind: Sync},
		{Width: 5, Kind: Sync},
		{Width: 5, Kind: Chain},
	})
	if p.Work() != 11 {
		t.Fatalf("work = %d", p.Work())
	}
	if p.CriticalPathLen() != 3 {
		t.Fatalf("cpl = %d", p.CriticalPathLen())
	}
	if got := p.AvgParallelism(); got != 11.0/3.0 {
		t.Fatalf("avg parallelism = %v", got)
	}
	if p.MaxWidth() != 5 {
		t.Fatalf("max width = %d", p.MaxWidth())
	}
	if w := p.Widths(); len(w) != 3 || w[1] != 5 {
		t.Fatalf("widths = %v", w)
	}
	if p.Level(2).Kind != Chain {
		t.Fatalf("level 2 kind = %v", p.Level(2).Kind)
	}
}

func TestConstantProfile(t *testing.T) {
	p := Constant(8, 5)
	if p.Work() != 40 || p.CriticalPathLen() != 5 {
		t.Fatalf("work=%d cpl=%d", p.Work(), p.CriticalPathLen())
	}
	if p.AvgParallelism() != 8 {
		t.Fatalf("avg = %v", p.AvgParallelism())
	}
	if p.Level(0).Kind != Sync || p.Level(1).Kind != Chain {
		t.Fatal("constant profile kinds wrong")
	}
}

func TestSerialProfile(t *testing.T) {
	p := Serial(7)
	if p.Work() != 7 || p.CriticalPathLen() != 7 || p.AvgParallelism() != 1 {
		t.Fatalf("serial profile wrong: %d %d", p.Work(), p.CriticalPathLen())
	}
}

func TestConcat(t *testing.T) {
	p := Concat(Serial(2), Constant(3, 2))
	if p.Work() != 8 || p.CriticalPathLen() != 4 {
		t.Fatalf("concat: work=%d cpl=%d", p.Work(), p.CriticalPathLen())
	}
	// First level of the appended profile must have been forced to Sync.
	if p.Level(2).Kind != Sync {
		t.Fatal("concat should force join to Sync")
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Constant":    func() { Constant(0, 1) },
		"Serial":      func() { Serial(0) },
		"Concat":      func() { Concat() },
		"MustProfile": func() { MustProfile(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// runToCompletion drives an instance with a fixed allotment and returns the
// number of steps taken and total completions.
func runToCompletion(t *testing.T, inst Instance, p int, order Order) (steps int, total int64) {
	t.Helper()
	var buf []LevelCount
	for !inst.Done() {
		var n int
		buf = buf[:0]
		n, buf = inst.Step(p, order, buf)
		if n == 0 {
			t.Fatalf("no progress at step %d (order %v)", steps, order)
		}
		total += int64(n)
		steps++
		if steps > 1<<22 {
			t.Fatal("runaway execution")
		}
	}
	return steps, total
}

func TestRunBreadthFirstUnlimited(t *testing.T) {
	// With p >= max width, BF completes one level per step: runtime = T∞.
	p := Constant(5, 3)
	r := NewRun(p)
	steps, total := runToCompletion(t, r, 25, BreadthFirst)
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	if total != p.Work() {
		t.Fatalf("total = %d, want %d", total, p.Work())
	}
}

func TestRunBreadthFirstLimited(t *testing.T) {
	// Width 5, height 2, p=3: greedy bound gives ceil(10/3) = 4 steps and the
	// BF schedule achieves it (pipelining into level 1).
	r := NewRun(Constant(5, 2))
	steps, _ := runToCompletion(t, r, 3, BreadthFirst)
	if steps != 4 {
		t.Fatalf("steps = %d, want 4", steps)
	}
}

func TestRunNoWithinStepChaining(t *testing.T) {
	// Serial chain: even with many processors, only one task per step.
	r := NewRun(Serial(6))
	steps, _ := runToCompletion(t, r, 100, BreadthFirst)
	if steps != 6 {
		t.Fatalf("steps = %d, want 6", steps)
	}
}

func TestRunSyncBarrier(t *testing.T) {
	// Level-synchronized profile: a wide level cannot start until the
	// previous narrow level fully completes.
	p := FromWidths([]int{3, 6})
	r := NewRun(p)
	var buf []LevelCount
	n, buf := r.Step(2, BreadthFirst, buf[:0])
	if n != 2 {
		t.Fatalf("step1 completed %d", n)
	}
	// Level 0 has one task left; level 1 must stay untouched.
	n, buf = r.Step(10, BreadthFirst, buf[:0])
	if n != 1 {
		t.Fatalf("step2 completed %d, want 1 (sync barrier)", n)
	}
	n, _ = r.Step(10, BreadthFirst, buf[:0])
	if n != 6 {
		t.Fatalf("step3 completed %d, want 6", n)
	}
	if !r.Done() {
		t.Fatal("should be done")
	}
}

func TestRunChainSpillover(t *testing.T) {
	// Chain levels allow starting level l+1 tasks whose chain finished
	// earlier, even while level l is incomplete — the fractional-level
	// behaviour of Figure 2.
	p := Constant(5, 3)
	r := NewRun(p)
	var buf []LevelCount
	n, buf := r.Step(3, BreadthFirst, buf[:0])
	if n != 3 {
		t.Fatalf("step1: %d", n)
	}
	// Step 2: 2 remaining at level 0, then 3 ready at level 1 (chains done
	// in step 1); budget 4 → 2 + 2.
	buf = buf[:0]
	n, buf = r.Step(4, BreadthFirst, buf)
	if n != 4 {
		t.Fatalf("step2: %d", n)
	}
	want := []LevelCount{{Level: 0, Count: 2}, {Level: 1, Count: 2}}
	if len(buf) != 2 || buf[0] != want[0] || buf[1] != want[1] {
		t.Fatalf("step2 byLevel = %v, want %v", buf, want)
	}
}

func TestRunStepOnFinished(t *testing.T) {
	r := NewRun(Serial(1))
	runToCompletion(t, r, 1, BreadthFirst)
	if n, _ := r.Step(5, BreadthFirst, nil); n != 0 {
		t.Fatalf("step on finished job completed %d", n)
	}
}

func TestRunZeroProcessors(t *testing.T) {
	r := NewRun(Serial(2))
	if n, _ := r.Step(0, BreadthFirst, nil); n != 0 {
		t.Fatal("zero processors should complete nothing")
	}
	if n, _ := r.Step(-1, BreadthFirst, nil); n != 0 {
		t.Fatal("negative processors should complete nothing")
	}
}

func TestRunReset(t *testing.T) {
	p := Constant(4, 4)
	r := NewRun(p)
	runToCompletion(t, r, 2, BreadthFirst)
	r.Reset()
	if r.Done() || r.Remaining() != p.Work() {
		t.Fatal("reset did not rewind")
	}
	steps, total := runToCompletion(t, r, 2, BreadthFirst)
	if total != p.Work() {
		t.Fatalf("after reset total = %d", total)
	}
	if steps != 8 { // 16 tasks / 2 processors, perfectly pipelined
		t.Fatalf("after reset steps = %d", steps)
	}
}

func TestRunDepthFirstStillCompletes(t *testing.T) {
	p := Constant(3, 4)
	r := NewRun(p)
	_, total := runToCompletion(t, r, 2, DepthFirst)
	if total != p.Work() {
		t.Fatalf("DF total = %d", total)
	}
}

func TestRunDepthFirstSlowerThanBreadthFirst(t *testing.T) {
	// DF starves low levels and wastes slots; BF is never worse here.
	p := Constant(3, 40)
	bf := NewRun(p)
	df := NewRun(p)
	bfSteps, _ := runToCompletion(t, bf, 2, BreadthFirst)
	dfSteps, _ := runToCompletion(t, df, 2, DepthFirst)
	if dfSteps < bfSteps {
		t.Fatalf("DF (%d steps) beat BF (%d steps)", dfSteps, bfSteps)
	}
}

func TestRunFIFOMatchesBFForProfiles(t *testing.T) {
	p := Constant(5, 5)
	a := NewRun(p)
	b := NewRun(p)
	sa, _ := runToCompletion(t, a, 3, FIFO)
	sb, _ := runToCompletion(t, b, 3, BreadthFirst)
	if sa != sb {
		t.Fatalf("FIFO %d steps, BF %d steps", sa, sb)
	}
}

func TestRunConservation(t *testing.T) {
	// Total completions across any schedule equals the work, and per-level
	// completions never exceed level widths.
	p := MustProfile([]Level{
		{Width: 1, Kind: Sync},
		{Width: 7, Kind: Sync},
		{Width: 7, Kind: Chain},
		{Width: 7, Kind: Chain},
		{Width: 2, Kind: Sync},
	})
	for _, order := range []Order{BreadthFirst, DepthFirst} {
		r := NewRun(p)
		perLevel := make([]int, p.CriticalPathLen())
		var buf []LevelCount
		var total int64
		for !r.Done() {
			var n int
			buf = buf[:0]
			n, buf = r.Step(3, order, buf)
			sum := 0
			for _, lc := range buf {
				perLevel[lc.Level] += lc.Count
				sum += lc.Count
			}
			if sum != n {
				t.Fatalf("byLevel sum %d != completed %d", sum, n)
			}
			total += int64(n)
		}
		if total != p.Work() {
			t.Fatalf("%v: total %d != work %d", order, total, p.Work())
		}
		for l, c := range perLevel {
			if c != p.Level(l).Width {
				t.Fatalf("%v: level %d completions %d != width %d", order, l, c, p.Level(l).Width)
			}
		}
	}
}

func TestOrderAndKindStrings(t *testing.T) {
	if BreadthFirst.String() != "breadth-first" || DepthFirst.String() != "depth-first" ||
		FIFO.String() != "fifo" || Order(99).String() == "" {
		t.Fatal("Order.String broken")
	}
	if Sync.String() != "sync" || Chain.String() != "chain" || LevelKind(9).String() == "" {
		t.Fatal("LevelKind.String broken")
	}
}

func TestGreedyCompletionBound(t *testing.T) {
	// Graham/Brent: greedy with p processors finishes in ≤ T1/p + T∞ steps.
	cases := []*Profile{
		Constant(10, 20),
		Serial(15),
		FromWidths([]int{1, 9, 1, 9, 1, 9}),
		Concat(Serial(3), Constant(6, 4), Serial(2)),
	}
	for _, p := range cases {
		for _, procs := range []int{1, 2, 3, 7, 100} {
			r := NewRun(p)
			steps, _ := runToCompletion(t, r, procs, BreadthFirst)
			bound := float64(p.Work())/float64(procs) + float64(p.CriticalPathLen())
			if float64(steps) > bound {
				t.Errorf("p=%d procs=%d: steps %d > greedy bound %v", p.Work(), procs, steps, bound)
			}
		}
	}
}

func BenchmarkProfileStepBF(b *testing.B) {
	p := Constant(64, 100000)
	r := NewRun(p)
	var buf []LevelCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			r.Reset()
		}
		buf = buf[:0]
		_, buf = r.Step(48, BreadthFirst, buf)
	}
}

func BenchmarkProfileStepDF(b *testing.B) {
	p := Constant(64, 100000)
	r := NewRun(p)
	var buf []LevelCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Done() {
			r.Reset()
		}
		buf = buf[:0]
		_, buf = r.Step(48, DepthFirst, buf)
	}
}
