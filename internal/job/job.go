// Package job defines the executable job abstraction the simulator drives.
//
// A malleable job is, per the paper, a dynamically unfolding DAG of unit-size
// tasks. The simulator only ever interacts with a job through the Instance
// interface: it executes one discrete time step at a time with a given
// processor allotment and observes which tasks (grouped by DAG level)
// completed. That keeps the scheduler non-clairvoyant — nothing about the
// future structure of the job leaks into scheduling decisions.
//
// Two implementations exist:
//
//   - Profile/Run (this package): jobs described as a sequence of levels with
//     widths and readiness kinds. This covers the paper's data-parallel
//     fork-join workloads and executes in O(active levels) per step, fast
//     enough for the Figure 5/6 sweeps.
//   - dag.Run (package abg/internal/dag): explicit node/edge DAGs for exact
//     small-scale experiments such as the Figure 2 measurement example.
package job

import "fmt"

// Order selects which ready tasks a greedy scheduler executes first when
// there are more ready tasks than processors.
type Order uint8

const (
	// BreadthFirst gives priority to the ready task with the lowest level —
	// the B-Greedy strategy (paper §2). It guarantees no task at level l
	// completes later than any task at level l+1 and makes the per-quantum
	// average-parallelism measurement exact.
	BreadthFirst Order = iota
	// DepthFirst gives priority to the highest level, the adversarial
	// ordering for the measurement; used by the execution-order ablation.
	DepthFirst
	// FIFO executes ready tasks in the order they became ready — a plain
	// greedy scheduler with no level awareness.
	FIFO
)

// String returns the conventional name of the order.
func (o Order) String() string {
	switch o {
	case BreadthFirst:
		return "breadth-first"
	case DepthFirst:
		return "depth-first"
	case FIFO:
		return "fifo"
	default:
		return fmt.Sprintf("order(%d)", uint8(o))
	}
}

// LevelCount records how many tasks of one DAG level completed in one step.
type LevelCount struct {
	Level int
	Count int
}

// Instance is one executable run of a job. Implementations are single-use:
// once Done reports true the instance stays finished.
//
// Step semantics: a task is eligible in a step only if all its parents
// completed in a *previous* step (tasks never chain within one step), and at
// most p tasks execute. Implementations must execute exactly
// min(p, #ready tasks) tasks, picking victims per the given Order.
type Instance interface {
	// Step executes one time step with p processors. It appends per-level
	// completion counts to buf (which may be nil) and returns the total
	// number of tasks completed together with the (possibly reallocated)
	// buffer. Calling Step on a finished instance returns 0 completions.
	Step(p int, order Order, buf []LevelCount) (int, []LevelCount)

	// Done reports whether every task of the job has completed.
	Done() bool

	// Remaining returns the number of tasks not yet completed.
	Remaining() int64

	// TotalWork returns T1, the total number of unit tasks. Analysis only;
	// scheduling policies must not consult it.
	TotalWork() int64

	// CriticalPathLen returns T∞ in levels. Analysis only.
	CriticalPathLen() int

	// LevelWidth returns the total number of tasks at the given level; the
	// quantum measurement divides per-level completions by this to form the
	// fractional quantum critical-path length of paper §2.
	LevelWidth(level int) int
}
