package job

import (
	"fmt"

	"abg/internal/persist"
)

// Stateful is implemented by job instances whose execution cursor can be
// captured and restored for crash recovery. The contract mirrors
// feedback.StateCodec: restore the blob onto a fresh instance of the *same*
// job description and every subsequent Step behaves bit-identically to the
// original. The description itself (the Profile) is not part of the state —
// it is rebuilt deterministically from the journaled workload spec.
type Stateful interface {
	// MarshalState returns the instance's execution cursor.
	MarshalState() ([]byte, error)
	// UnmarshalState restores a cursor captured on an instance of the same
	// job description.
	UnmarshalState(data []byte) error
}

// runStateTag versions the Run cursor layout.
const runStateTag byte = 20

// MarshalState implements Stateful: the per-level completion counts plus
// the derived cursors (frontier, head, done) that make Step O(active
// window).
func (r *Run) MarshalState() ([]byte, error) {
	e := persist.Enc{}
	e.Int(len(r.completed))
	for _, c := range r.completed {
		e.Int(c)
	}
	e.Int(r.frontier)
	e.Int(r.head)
	e.Varint(r.done)
	return append([]byte{runStateTag}, e.Bytes()...), nil
}

// UnmarshalState implements Stateful. The cursor must match this run's
// profile shape: a level-count mismatch means the blob belongs to a
// different job and is rejected.
func (r *Run) UnmarshalState(data []byte) error {
	if len(data) < 1 || data[0] != runStateTag {
		return fmt.Errorf("job: run cursor: bad state tag (%d bytes)", len(data))
	}
	d := persist.NewDec(data[1:])
	n := d.Int()
	if d.Err() == nil && n != len(r.completed) {
		return fmt.Errorf("job: run cursor for %d levels, profile has %d", n, len(r.completed))
	}
	completed := make([]int, len(r.completed))
	for i := 0; i < n && d.Err() == nil; i++ {
		completed[i] = d.Int()
	}
	frontier, head, done := d.Int(), d.Int(), d.Varint()
	if err := d.Err(); err != nil {
		return fmt.Errorf("job: run cursor: %w", err)
	}
	if d.Len() != 0 {
		return fmt.Errorf("job: run cursor: %d trailing bytes", d.Len())
	}
	for i, c := range completed {
		if c < 0 || c > r.p.levels[i].Width {
			return fmt.Errorf("job: run cursor: level %d completion %d outside [0,%d]",
				i, c, r.p.levels[i].Width)
		}
	}
	if frontier < 0 || frontier > len(completed) || head < -1 || head >= len(completed) ||
		done < 0 || done > r.p.work {
		return fmt.Errorf("job: run cursor: implausible frontier=%d head=%d done=%d",
			frontier, head, done)
	}
	copy(r.completed, completed)
	r.frontier = frontier
	r.head = head
	r.done = done
	return nil
}

var _ Stateful = (*Run)(nil)
