package job

// Run executes a Profile step by step. It implements Instance.
//
// The representation exploits the level structure: per level it tracks only
// the number of completed tasks. Chains within a parallel phase are
// symmetric, so without loss of generality completions are assigned to chains
// in index order; the number of ready tasks at a Chain level l is then
// completed(l−1) − completed(l), and at a Sync level it is the whole level
// once level l−1 finishes. One step costs O(active window) — the span of
// levels with partial progress — which is what makes the Figure 5/6 sweeps
// (hundreds of millions of simulated steps) tractable.
type Run struct {
	p         *Profile
	completed []int
	frontier  int   // lowest incomplete level
	head      int   // highest level with any completions (valid if done>0)
	done      int64 // tasks completed so far
}

// NewRun returns a fresh executable instance of the profile.
func NewRun(p *Profile) *Run {
	return &Run{
		p:         p,
		completed: make([]int, len(p.levels)),
		head:      -1,
	}
}

// Reset rewinds the run to the beginning for reuse.
func (r *Run) Reset() {
	for i := range r.completed {
		r.completed[i] = 0
	}
	r.frontier = 0
	r.head = -1
	r.done = 0
}

// Done implements Instance.
func (r *Run) Done() bool { return r.done == r.p.work }

// Remaining implements Instance.
func (r *Run) Remaining() int64 { return r.p.work - r.done }

// TotalWork implements Instance.
func (r *Run) TotalWork() int64 { return r.p.work }

// CriticalPathLen implements Instance.
func (r *Run) CriticalPathLen() int { return len(r.p.levels) }

// LevelWidth implements Instance.
func (r *Run) LevelWidth(level int) int { return r.p.levels[level].Width }

// Profile returns the immutable description this run executes.
func (r *Run) Profile() *Profile { return r.p }

// CompletedAt returns how many tasks of the given level have completed.
func (r *Run) CompletedAt(level int) int { return r.completed[level] }

// Step implements Instance. FIFO degenerates to BreadthFirst for profile
// jobs: tasks become ready in level order, so FIFO picks lowest levels first
// anyway (exact tie-breaking within a level is unobservable here because
// chains are symmetric).
func (r *Run) Step(p int, order Order, buf []LevelCount) (int, []LevelCount) {
	if p <= 0 || r.Done() {
		return 0, buf
	}
	switch order {
	case DepthFirst:
		return r.stepDepthFirst(p, buf)
	default:
		return r.stepBreadthFirst(p, buf)
	}
}

func (r *Run) stepBreadthFirst(p int, buf []LevelCount) (int, []LevelCount) {
	levels := r.p.levels
	budget := p
	total := 0
	prevOld := 0 // completed count of the previous level at step start
	for l := r.frontier; budget > 0 && l < len(levels); l++ {
		var ready int
		switch {
		case l == r.frontier:
			// Levels below the frontier finished in earlier steps, so
			// every remaining task here is ready regardless of kind.
			ready = levels[l].Width - r.completed[l]
		case levels[l].Kind == Chain:
			// Parents are the same-index tasks of level l−1; only those
			// that completed before this step (prevOld) count.
			ready = prevOld - r.completed[l]
		default:
			// Sync above the frontier: previous level was incomplete at
			// step start, so nothing is ready.
			ready = 0
		}
		take := ready
		if take > budget {
			take = budget
		}
		old := r.completed[l]
		if take > 0 {
			r.completed[l] = old + take
			budget -= take
			total += take
			buf = append(buf, LevelCount{Level: l, Count: take})
			if l > r.head {
				r.head = l
			}
		}
		prevOld = old
		if old == 0 && take == 0 {
			// Nothing had started here before this step and nothing ran
			// now; no deeper level can hold ready tasks.
			break
		}
	}
	r.finishStep(total)
	return total, buf
}

func (r *Run) stepDepthFirst(p int, buf []LevelCount) (int, []LevelCount) {
	levels := r.p.levels
	budget := p
	total := 0
	// The deepest level that can hold ready tasks is one past the head
	// (children of already-completed head tasks), clamped to the profile.
	top := r.head + 1
	if top >= len(levels) {
		top = len(levels) - 1
	}
	if top < r.frontier {
		top = r.frontier
	}
	for l := top; budget > 0 && l >= r.frontier; l-- {
		var ready int
		switch {
		case l == r.frontier:
			ready = levels[l].Width - r.completed[l]
		case levels[l].Kind == Chain:
			// Iterating downward means completed[l−1] is still its
			// start-of-step value: children never enable parents, so this
			// is a faithful snapshot.
			ready = r.completed[l-1] - r.completed[l]
		default:
			ready = 0
		}
		take := ready
		if take > budget {
			take = budget
		}
		if take > 0 {
			r.completed[l] += take
			budget -= take
			total += take
			buf = append(buf, LevelCount{Level: l, Count: take})
			if l > r.head {
				r.head = l
			}
		}
	}
	r.finishStep(total)
	return total, buf
}

func (r *Run) finishStep(completed int) {
	r.done += int64(completed)
	levels := r.p.levels
	for r.frontier < len(levels) && r.completed[r.frontier] == levels[r.frontier].Width {
		r.frontier++
	}
}

var _ Instance = (*Run)(nil)
