package job

import "testing"

// FuzzProfileRun decodes arbitrary bytes into a profile and an allotment
// schedule, executes it under both orders, and asserts the executor's
// invariants: conservation of work, no over-completion per level, and
// termination within the serial bound. The seed corpus runs as part of the
// normal test suite; `go test -fuzz=FuzzProfileRun ./internal/job` explores
// further.
func FuzzProfileRun(f *testing.F) {
	f.Add([]byte{3, 1, 5, 2}, uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(1))
	f.Add([]byte{9, 9, 9, 0, 4}, uint8(7))
	f.Add([]byte{}, uint8(3))
	f.Fuzz(func(t *testing.T, widths []byte, procs uint8) {
		if len(widths) == 0 || len(widths) > 64 {
			return
		}
		levels := make([]Level, 0, len(widths))
		for i, b := range widths {
			w := int(b%16) + 1
			kind := Sync
			// Chain when the width matches the predecessor and the low bit
			// of the byte says so.
			if i > 0 && b&1 == 1 && levels[i-1].Width == w {
				kind = Chain
			}
			levels = append(levels, Level{Width: w, Kind: kind})
		}
		p, err := NewProfile(levels)
		if err != nil {
			t.Fatalf("constructed profile rejected: %v", err)
		}
		pn := int(procs%12) + 1
		for _, order := range []Order{BreadthFirst, DepthFirst} {
			r := NewRun(p)
			perLevel := make([]int, p.CriticalPathLen())
			var total int64
			var buf []LevelCount
			steps := 0
			for !r.Done() {
				var n int
				buf = buf[:0]
				n, buf = r.Step(pn, order, buf)
				if n == 0 {
					t.Fatalf("no progress (order %v, p %d)", order, pn)
				}
				for _, lc := range buf {
					perLevel[lc.Level] += lc.Count
					if perLevel[lc.Level] > p.Level(lc.Level).Width {
						t.Fatalf("level %d over-completed", lc.Level)
					}
				}
				total += int64(n)
				steps++
				if int64(steps) > p.Work()+int64(p.CriticalPathLen()) {
					t.Fatalf("exceeded serial bound (order %v)", order)
				}
			}
			if total != p.Work() {
				t.Fatalf("work conservation broken: %d != %d", total, p.Work())
			}
		}
	})
}
