package job

import (
	"reflect"
	"testing"
)

// stateTestProfile builds a small fork-join profile with both level kinds.
func stateTestProfile(t *testing.T) *Profile {
	t.Helper()
	return MustProfile([]Level{
		{Kind: Sync, Width: 1},
		{Kind: Chain, Width: 1},
		{Kind: Sync, Width: 8},
		{Kind: Chain, Width: 8},
		{Kind: Chain, Width: 8},
		{Kind: Sync, Width: 2},
	})
}

// TestRunStateRoundTrip pins the crash-recovery contract of the execution
// cursor: capture mid-run, restore onto a fresh Run of the same profile,
// and stepping both onward yields identical completions and final state.
func TestRunStateRoundTrip(t *testing.T) {
	p := stateTestProfile(t)
	for cut := 0; cut < 12; cut++ {
		orig := NewRun(p)
		for s := 0; s < cut && !orig.Done(); s++ {
			orig.Step(3, BreadthFirst, nil)
		}
		blob, err := orig.MarshalState()
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}
		restored := NewRun(p)
		if err := restored.UnmarshalState(blob); err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}
		if !reflect.DeepEqual(orig, restored) {
			t.Fatalf("cut %d: restored run differs:\n got %+v\nwant %+v", cut, restored, orig)
		}
		for !orig.Done() {
			n1, _ := orig.Step(3, BreadthFirst, nil)
			n2, _ := restored.Step(3, BreadthFirst, nil)
			if n1 != n2 {
				t.Fatalf("cut %d: step completions diverge: %d != %d", cut, n2, n1)
			}
		}
		if !restored.Done() || restored.Remaining() != 0 {
			t.Fatalf("cut %d: restored run did not finish with the original", cut)
		}
	}
}

// TestRunStateRejectsMismatch pins that a cursor cannot land on the wrong
// profile or carry implausible values.
func TestRunStateRejectsMismatch(t *testing.T) {
	p := stateTestProfile(t)
	other := MustProfile([]Level{{Kind: Sync, Width: 4}})
	r := NewRun(p)
	r.Step(4, BreadthFirst, nil)
	blob, err := r.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if err := NewRun(other).UnmarshalState(blob); err == nil {
		t.Error("cursor accepted by a different profile")
	}
	if err := NewRun(p).UnmarshalState(nil); err == nil {
		t.Error("accepted empty cursor")
	}
	if err := NewRun(p).UnmarshalState(blob[:len(blob)/2]); err == nil {
		t.Error("accepted truncated cursor")
	}
	mut := append([]byte{}, blob...)
	mut[0] = 99
	if err := NewRun(p).UnmarshalState(mut); err == nil {
		t.Error("accepted wrong tag")
	}
}
