package job

import (
	"errors"
	"fmt"
)

// LevelKind describes how tasks of a level become ready.
type LevelKind uint8

const (
	// Sync levels become ready only once the entire previous level has
	// completed (fork and join points, serial tasks, level-barrier jobs).
	Sync LevelKind = iota
	// Chain levels pair tasks with the previous level: task i becomes ready
	// when task i of the previous level completes (the interior of a
	// parallel phase made of independent chains). A Chain level must have
	// the same width as its predecessor.
	Chain
)

// String returns the name of the kind.
func (k LevelKind) String() string {
	switch k {
	case Sync:
		return "sync"
	case Chain:
		return "chain"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Level is one level of a profile job: Width unit tasks that become ready
// according to Kind.
type Level struct {
	Width int
	Kind  LevelKind
}

// Profile describes a job as a sequence of levels. It is the compact,
// immutable description; Run executes it. Profiles model exactly the
// level-structured data-parallel jobs the paper simulates, while arbitrary
// DAGs are handled by package dag.
type Profile struct {
	levels []Level
	work   int64
}

// NewProfile validates the level sequence and returns a Profile.
// Rules: at least one level; every width ≥ 1; level 0 must be Sync (there is
// nothing to chain from); a Chain level must match its predecessor's width.
func NewProfile(levels []Level) (*Profile, error) {
	if len(levels) == 0 {
		return nil, errors.New("job: profile needs at least one level")
	}
	var work int64
	for i, l := range levels {
		if l.Width < 1 {
			return nil, fmt.Errorf("job: level %d has width %d", i, l.Width)
		}
		if i == 0 && l.Kind != Sync {
			return nil, errors.New("job: level 0 must be Sync")
		}
		if l.Kind == Chain && levels[i-1].Width != l.Width {
			return nil, fmt.Errorf("job: chain level %d width %d != predecessor width %d",
				i, l.Width, levels[i-1].Width)
		}
		work += int64(l.Width)
	}
	return &Profile{levels: append([]Level(nil), levels...), work: work}, nil
}

// MustProfile is NewProfile that panics on error; for tests and literals.
func MustProfile(levels []Level) *Profile {
	p, err := NewProfile(levels)
	if err != nil {
		panic(err)
	}
	return p
}

// Work returns T1, the total number of unit tasks.
func (p *Profile) Work() int64 { return p.work }

// CriticalPathLen returns T∞ in levels (every level contributes one node to
// the longest chain).
func (p *Profile) CriticalPathLen() int { return len(p.levels) }

// AvgParallelism returns T1/T∞.
func (p *Profile) AvgParallelism() float64 {
	return float64(p.work) / float64(len(p.levels))
}

// MaxWidth returns the widest level.
func (p *Profile) MaxWidth() int {
	m := 0
	for _, l := range p.levels {
		if l.Width > m {
			m = l.Width
		}
	}
	return m
}

// Level returns the i-th level.
func (p *Profile) Level(i int) Level { return p.levels[i] }

// Widths returns a copy of the level widths, mostly for tests and display.
func (p *Profile) Widths() []int {
	ws := make([]int, len(p.levels))
	for i, l := range p.levels {
		ws[i] = l.Width
	}
	return ws
}

// Constant returns a profile with constant parallelism: `height` levels of
// `width` independent chains (a Sync fan-out level followed by Chain levels).
// This is the constant-parallelism job of Figures 1 and 4.
func Constant(width, height int) *Profile {
	if width < 1 || height < 1 {
		panic("job: Constant needs width, height >= 1")
	}
	levels := make([]Level, height)
	levels[0] = Level{Width: width, Kind: Sync}
	for i := 1; i < height; i++ {
		levels[i] = Level{Width: width, Kind: Chain}
	}
	return MustProfile(levels)
}

// Serial returns a profile that is a chain of n unit tasks.
func Serial(n int) *Profile {
	if n < 1 {
		panic("job: Serial needs n >= 1")
	}
	levels := make([]Level, n)
	for i := range levels {
		levels[i] = Level{Width: 1, Kind: Sync}
	}
	return MustProfile(levels)
}

// FromWidths returns a level-synchronized profile (every level Sync) with the
// given widths. This models barrier-style data-parallel jobs.
func FromWidths(widths []int) *Profile {
	levels := make([]Level, len(widths))
	for i, w := range widths {
		levels[i] = Level{Width: w, Kind: Sync}
	}
	return MustProfile(levels)
}

// Concat returns a profile that runs the given profiles back to back. The
// first level of each appended profile is forced to Sync, which models a join
// between consecutive job fragments.
func Concat(ps ...*Profile) *Profile {
	if len(ps) == 0 {
		panic("job: Concat of nothing")
	}
	var levels []Level
	for _, p := range ps {
		for i, l := range p.levels {
			if len(levels) > 0 && i == 0 {
				l.Kind = Sync
			}
			levels = append(levels, l)
		}
	}
	return MustProfile(levels)
}
