package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"abg/internal/failover"
	"abg/internal/persist"
	"abg/internal/replica"
)

// Replication. The write-ahead journal is the daemon's complete op log
// (header, submits, admits, steps, drain, snapshots — see journal.go), and
// the engine is bit-identically replay-deterministic, so replication is
// journal shipping: a leader streams its journal file's bytes; a follower
// appends each shipped record to its own journal (keeping its file a byte
// prefix of the leader's) and applies it to its own engine through the same
// code paths boot recovery uses. Follower state is therefore a pure
// function of its applied byte offset — at equal offsets, leader and
// follower hold identical engines, identical job results, and identical
// SSE event ids, which is what lets followers serve reads (/state, job
// status, /metrics, /api/v1/events) and re-serve the event stream to their
// own subscribers while the leader takes only writes. Followers also serve
// /api/v1/journal themselves, so followers can chain off followers (a
// fan-out relay tier).
//
// Failover is promotion: a follower stops tailing and starts the quantum
// clock on the state it has applied — exactly the crash-recovery resume,
// so the promoted daemon provably continues the leader's run. Shipping is
// asynchronous, so the guarantee is exact-prefix: every record that reached
// the promoted follower is preserved with identical ids and results; an
// acknowledged-but-unshipped tail is lost, and idempotent client
// re-submission heals it (the same key regenerates the same jobs under
// fresh ids). The follower with the LONGEST applied journal must be the one
// promoted: every follower's journal is a byte prefix of the dead leader's,
// hence of each other's, so the longest one subsumes the rest and the
// shorter followers retarget at it.
//
// Promotion is fenced by leader epochs (see failover.go and
// internal/failover). Every journal record is framed under the epoch of the
// leader that wrote it; a promotion appends a KindEpoch record under the
// next epoch before the new leader resumes the clock. A replica applying
// shipped bytes rejects any record whose epoch is below its own — the
// durable, journal-level guarantee that a resurrected stale leader can
// never fork a survivor's history. With -group configured, promotion is
// automated: a per-node supervisor probes the group, detects leader death
// by quorum, elects the longest-prefix follower under a new epoch, and
// retargets the survivors — zero operator action.

// Role is a daemon's replication role.
type Role int32

const (
	// RoleLeader runs the quantum clock and takes writes. A daemon without
	// -follow is a leader from boot (replication needs -journal, but a
	// journal-less leader is still "leader": it simply has nothing to ship).
	RoleLeader Role = iota
	// RoleFollower tails a leader's journal and serves only reads; writes
	// are answered with a 307 to the leader.
	RoleFollower
)

func (r Role) String() string {
	if r == RoleFollower {
		return "follower"
	}
	return "leader"
}

// isFollower reports whether the daemon currently serves in follower role.
func (s *Server) isFollower() bool { return Role(s.role.Load()) == RoleFollower }

// replState is the follower's incremental view of the shipped journal —
// the same bookkeeping parseJournal derives at boot, maintained record by
// record as the stream applies.
type replState struct {
	headerSeen bool
	submits    []submitRecord // resolve job ids → specs at admit time
	admitted   int            // jobs handed to the engine so far
	applied    int64          // records applied since boot (recovery + stream)
	maxStep    int            // highest applied step boundary
}

// shippedApplier adapts the Server's follower role onto replica.Applier.
type shippedApplier struct{ s *Server }

func (a shippedApplier) Offset() int64 { return a.s.journal.Size() }

func (a shippedApplier) Apply(rec persist.Record) error { return a.s.applyShipped(rec) }

// applyShipped applies one shipped journal record: append it to the local
// journal first (identical bytes — the follower's file stays a verbatim
// prefix of the leader's), then mutate the engine through the same
// constructions recovery uses. Any inconsistency is fatal: a follower that
// cannot apply must wedge loudly, never serve state it knows is divergent.
func (s *Server) applyShipped(rec persist.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return s.fatal
	}
	// Epoch fencing: shipped records never step backwards, and step forwards
	// only through an explicit epoch record. A lower epoch means the upstream
	// is a resurrected stale leader trying to fork history — nothing it ships
	// may ever reach this journal.
	cur := s.journal.Epoch()
	switch {
	case rec.Epoch < cur:
		err := fmt.Errorf("fenced: shipped %s record carries stale epoch %d, local epoch is %d",
			persist.KindName(rec.Kind), rec.Epoch, cur)
		s.failLocked(err)
		return err
	case rec.Epoch > cur && rec.Kind != persist.KindEpoch:
		err := fmt.Errorf("shipped %s record jumps to epoch %d without an epoch record (local epoch %d)",
			persist.KindName(rec.Kind), rec.Epoch, cur)
		s.failLocked(err)
		return err
	}
	// AppendRecord preserves the shipped framing epoch verbatim, keeping the
	// file a byte copy of the upstream journal.
	if err := s.journal.AppendRecord(rec); err != nil {
		s.failLocked(fmt.Errorf("replica journal append: %w", err))
		return err
	}
	var err error
	switch rec.Kind {
	case persist.KindHeader:
		err = s.applyHeaderLocked(rec.Body)
	case persist.KindSubmit:
		err = s.applySubmitLocked(rec.Body)
	case persist.KindAdmit:
		err = s.applyAdmitLocked(rec.Body)
	case persist.KindStep:
		err = s.applyStepLocked(rec.Body)
	case persist.KindSnapshot:
		err = s.applySnapshotLocked(rec.Body)
	case persist.KindDrain:
		s.draining.Store(true)
	case persist.KindEpoch:
		err = s.applyEpochLocked(rec)
	default:
		err = fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	if err != nil {
		s.failLocked(fmt.Errorf("replica apply: %w", err))
		return err
	}
	s.repl.applied++
	return nil
}

// applyEpochLocked applies a shipped leadership change: the journal epoch
// was already raised by AppendRecord; mirror it into the served epoch so
// this replica's API answers under the new term immediately.
func (s *Server) applyEpochLocked(rec persist.Record) error {
	ep, err := decodeEpoch(rec.Body)
	if err != nil {
		return err
	}
	if ep.epoch != rec.Epoch {
		return fmt.Errorf("epoch record body says %d, framing says %d", ep.epoch, rec.Epoch)
	}
	s.epoch.Store(ep.epoch)
	s.log.Info("applied leadership change", "epoch", ep.epoch, "leader", ep.leader)
	return nil
}

func (s *Server) applyHeaderLocked(body []byte) error {
	if s.repl.headerSeen {
		return fmt.Errorf("duplicate header record")
	}
	h, err := decodeHeader(body)
	if err != nil {
		return err
	}
	if want := s.headerRecord(); h != want {
		return fmt.Errorf("leader journal written under a different configuration:\n  leader:   %+v\n  follower: %+v",
			h, want)
	}
	s.repl.headerSeen = true
	return nil
}

func (s *Server) applySubmitLocked(body []byte) error {
	sub, err := decodeSubmit(body)
	if err != nil {
		return err
	}
	if sub.firstID != s.nextID {
		return fmt.Errorf("submit ids start at %d, follower expects %d", sub.firstID, s.nextID)
	}
	ids := make([]int, sub.count)
	for i := range ids {
		id := sub.firstID + i
		ids[i] = id
		s.queue = append(s.queue, pendingJob{
			id:      id,
			name:    sub.req.jobName(i, id),
			profile: sub.req.BuildProfile(i, s.cfg.L),
		})
	}
	if sub.key != "" {
		s.keys[sub.key] = ids
	}
	s.nextID = sub.firstID + sub.count
	s.repl.submits = append(s.repl.submits, sub)
	return nil
}

func (s *Server) applyAdmitLocked(body []byte) error {
	adm, err := decodeAdmit(body)
	if err != nil {
		return err
	}
	// The leader admits its entire queue at a boundary, so the record's ids
	// must be exactly the follower's queued jobs, in order.
	if len(adm.ids) != len(s.queue) {
		return fmt.Errorf("admit covers %d jobs, follower queue holds %d", len(adm.ids), len(s.queue))
	}
	l64 := int64(s.cfg.L)
	for _, id := range adm.ids {
		if id != s.repl.admitted {
			return fmt.Errorf("admit id %d out of order (follower expects %d)", id, s.repl.admitted)
		}
		sub, idx, err := submitIn(s.repl.submits, id)
		if err != nil {
			return err
		}
		got, err := s.eng.Submit(replaySpec(sub, idx, id, s.cfg.L,
			int64(adm.boundary)*l64, s.plan, s.sched, s.bus))
		if err != nil {
			return err
		}
		if got != id {
			return fmt.Errorf("id skew: engine assigned %d, record has %d", got, id)
		}
		s.repl.admitted++
	}
	s.queue = s.queue[:0]
	return nil
}

func (s *Server) applyStepLocked(body []byte) error {
	st, err := decodeStep(body)
	if err != nil {
		return err
	}
	if st.boundary < s.repl.maxStep {
		return fmt.Errorf("step boundary %d below previous %d", st.boundary, s.repl.maxStep)
	}
	s.repl.maxStep = st.boundary
	if st.share >= 0 {
		// A cluster shard's record: the follower must execute this quantum
		// under the leader's pinned share or it diverges.
		t, ok := s.capacity.(*ShareTable)
		if !ok {
			return fmt.Errorf("leader journal carries cluster capacity shares; boot the follower behind the cluster layer")
		}
		t.Set(st.boundary+1, st.share)
	}
	// Catch up to and execute the recorded boundary. Idle boundaries the
	// leader skipped journaling replay here as idle steps (or a single
	// fast-forward when only future releases are pending) — both paths land
	// exactly on the recorded boundary, then execute the same quantum the
	// leader executed, re-emitting its events under its SSE ids.
	for s.eng.Boundary() <= st.boundary {
		if _, err := s.eng.Step(); err != nil {
			return fmt.Errorf("step boundary %d: %w", s.eng.Boundary(), err)
		}
	}
	return nil
}

// applySnapshotLocked treats the leader's snapshot as a cross-check, not a
// restore: the follower already holds the state by construction, so the
// snapshot's coordinates must match exactly — a cheap, continuous proof
// that the replica has not diverged. (The full engine blob is already in
// the follower's journal for its own boot recovery.)
func (s *Server) applySnapshotLocked(body []byte) error {
	snap, err := decodeSnapshot(body)
	if err != nil {
		return err
	}
	if snap.boundary != s.eng.Boundary() || snap.quanta != s.eng.QuantaElapsed() {
		return fmt.Errorf("diverged from leader: snapshot at boundary %d quanta %d, follower at %d/%d",
			snap.boundary, snap.quanta, s.eng.Boundary(), s.eng.QuantaElapsed())
	}
	if seq := s.hub.Seq(); snap.sseSeq != seq {
		return fmt.Errorf("diverged from leader: snapshot SSE seq %d, follower at %d", snap.sseSeq, seq)
	}
	s.lastSnapQ = snap.quanta
	s.lastSnapSeq = snap.sseSeq
	s.snapshotCount++
	s.metrics.snapshots.Inc()
	return nil
}

// submitIn resolves a job id to its submission record and index within it.
func submitIn(submits []submitRecord, id int) (submitRecord, int, error) {
	for _, sub := range submits {
		if id >= sub.firstID && id < sub.firstID+sub.count {
			return sub, id - sub.firstID, nil
		}
	}
	return submitRecord{}, 0, fmt.Errorf("job %d has no submit record", id)
}

// follow is the follower's driver goroutine: tail the leader until the
// tailer stops. Three exits: promotion (this goroutine becomes the quantum
// clock, via drive), shutdown (ctx cancelled / tailer stopped), or a fatal
// replication error (the daemon wedges and reports it through Wait).
func (s *Server) follow(ctx context.Context) {
	err := s.tailer.Run(ctx)
	if err != nil {
		s.mu.Lock()
		s.failLocked(err)
		s.mu.Unlock()
	}
	if s.killed.Load() {
		// Crash simulation (tests only): stop dead, like SIGKILL would.
		s.closeStopped()
		return
	}
	if err == nil && ctx.Err() == nil && !s.isFollower() {
		// Promoted: continue the leader's run on the applied state — the
		// same resume crash recovery performs. The epoch record is appended
		// here, after the tailer has fully stopped, so it can never
		// interleave with an in-flight shipped append; then this goroutine
		// becomes the quantum clock (or, if the dead leader had already
		// drained, just finishes the drain).
		s.sealPromotion()
		if !s.draining.Load() {
			s.log.Info("follower promoted, starting quantum clock",
				"epoch", s.epoch.Load(), "boundary", s.boundaryNow(),
				"journalBytes", s.journal.Size())
		}
		s.drive(ctx)
		return
	}
	s.mu.Lock()
	fatal := s.fatal
	s.mu.Unlock()
	if s.draining.Load() && fatal == nil {
		s.log.Info("follower drained with leader", "jobs", s.snapshotJobs())
	}
	s.hub.closeAll()
	s.closeDrained()
	s.closeStopped()
}

func (s *Server) boundaryNow() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Boundary()
}

// closeDrained and closeStopped make the lifecycle channels safe to close
// from both the leader drive path and the follower shutdown path.
func (s *Server) closeDrained() { s.drainedOnce.Do(func() { close(s.drained) }) }
func (s *Server) closeStopped() { s.stoppedOnce.Do(func() { close(s.stopped) }) }

// Promote switches a follower to leader under the next epoch: the tailer
// stops, and the follow goroutine seals the new term (KindEpoch record) and
// starts the quantum clock on the applied state. The promoted daemon
// resumes the leader's run exactly where its applied journal prefix ends —
// same job ids, same results, same SSE event ids (the PR 4 recovery
// guarantee, reached over the network instead of a reboot).
func (s *Server) Promote(reason string) error {
	return s.PromoteTo(s.epoch.Load()+1, reason)
}

// PromoteTo promotes under an explicit epoch — the term the election (or
// manual claim) won. In group mode the epoch must be promised to this node
// (see Promise): the re-check under s.mu closes the race where this node
// self-promised and then deferred to a strictly longer candidate while its
// own claim was still collecting grants.
func (s *Server) PromoteTo(epoch uint32, reason string) error {
	s.mu.Lock()
	ready := s.repl.headerSeen
	promised := s.promiseEpoch == epoch && s.promiseHolder == s.advertise()
	s.mu.Unlock()
	if !ready {
		return fmt.Errorf("server: follower has no replicated state to promote")
	}
	if cur := s.epoch.Load(); epoch <= cur {
		return fmt.Errorf("server: promotion epoch %d is not beyond current epoch %d", epoch, cur)
	}
	if len(s.cfg.Group) > 0 && !promised {
		return fmt.Errorf("server: epoch %d is not promised to this node", epoch)
	}
	if !s.role.CompareAndSwap(int32(RoleFollower), int32(RoleLeader)) {
		return fmt.Errorf("server: not a follower")
	}
	s.mu.Lock()
	s.pendingEpoch = epoch
	s.mu.Unlock()
	s.confirmed.Store(true) // the quorum (or the operator) just confirmed us
	s.promotions.Add(1)
	s.log.Info("promoting to leader",
		"reason", reason, "epoch", epoch, "journalBytes", s.journal.Size())
	s.tailer.Stop()
	return nil
}

// sealPromotion makes a just-promoted leader's term durable: raise the
// journal epoch and append the KindEpoch record as the first record of the
// new term, before any submit or step is written under it. Runs on the
// follow goroutine after the tailer has stopped; no shipped append can race.
func (s *Server) sealPromotion() {
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.pendingEpoch
	s.pendingEpoch = 0
	if epoch == 0 || s.journal == nil || s.fatal != nil {
		return
	}
	s.journal.SetEpoch(epoch)
	s.epoch.Store(epoch)
	_ = s.appendJournal(persist.KindEpoch,
		encodeEpoch(epochRecord{epoch: epoch, leader: s.advertise()}))
}

// --- HTTP surface ---------------------------------------------------------

// redirectToLeader answers writes arriving at a follower with a 307 to the
// current leader, preserving method and body. Returns true when handled.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) bool {
	if !s.isFollower() {
		return false
	}
	http.Redirect(w, r, s.tailer.Leader()+r.URL.RequestURI(), http.StatusTemporaryRedirect)
	return true
}

// handleJournal streams the journal's bytes from the requested offset,
// then keeps the response open, shipping every new record as it is
// appended (chunked transfer; each burst is flushed). Served by leaders
// and followers alike — a follower's journal is a byte prefix of its
// leader's, so followers can feed further followers (relay tier).
func (s *Server) handleJournal(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, errorDTO{"journal disabled (-journal not set)"})
		return
	}
	from := int64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		p, err := strconv.ParseInt(v, 10, 64)
		if err != nil || p < 0 {
			writeJSON(w, http.StatusBadRequest, errorDTO{"bad from offset: " + v})
			return
		}
		from = p
	}
	size := s.journal.Size()
	if from > size {
		// The requester holds bytes this journal never wrote: divergent
		// histories (e.g. a shorter journal was promoted after a failover).
		// 409 is a hard error on the follower side — reconnecting cannot
		// heal a wrong history.
		writeJSON(w, http.StatusConflict, errorDTO{fmt.Sprintf(
			"offset %d beyond journal size %d: divergent history", from, size)})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDTO{"streaming unsupported"})
		return
	}
	f, err := os.Open(s.journal.Path())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorDTO{"open journal: " + err.Error()})
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(replica.SizeHeader, strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	buf := make([]byte, 64*1024)
	pos := from
	for {
		// Ship everything committed so far. Size() is the clean length —
		// bytes below it are whole records, safe to expose mid-append.
		size = s.journal.Size()
		for pos < size {
			n := len(buf)
			if int64(n) > size-pos {
				n = int(size - pos)
			}
			if _, err := f.ReadAt(buf[:n], pos); err != nil {
				return
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return
			}
			pos += int64(n)
		}
		flusher.Flush()
		ch := s.journal.Updated()
		if s.journal.Size() > pos {
			continue // appended between the copy loop and the channel fetch
		}
		select {
		case <-ch:
		case <-s.drained:
			if s.journal.Size() > pos {
				continue // final drain records still to ship
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}

// ReplicationDTO is served at /api/v1/replication.
type ReplicationDTO struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// JournalBytes is the local journal's clean length: the leader's
	// shipping high-water mark, the follower's applied offset. The follower
	// with the largest value holds the longest prefix of the dead leader's
	// journal and is the one to promote.
	JournalBytes int64 `json:"journalBytes"`
	// AppliedRecords counts records applied since boot (recovery + stream);
	// follower only.
	AppliedRecords int64 `json:"appliedRecords,omitempty"`
	// LagBytes is the follower's best-effort byte lag behind its leader
	// (last observed leader size minus applied offset, floored at zero).
	LagBytes int64 `json:"lagBytes"`
	// Promotions counts role transitions to leader since boot (0 or 1).
	Promotions int64 `json:"promotions"`
	// Epoch is the leadership term this daemon serves under: the highest
	// epoch in its journal. Stale leaders are exactly those whose epoch is
	// below the group maximum.
	Epoch uint32 `json:"epoch"`
	// Addr is the daemon's advertised base URL (-advertise, else the bound
	// listen address) — what group peers and clients should dial.
	Addr string `json:"addr,omitempty"`
	// Fenced reports that this daemon observed a successor's higher epoch
	// and has permanently stopped taking writes (it is shutting down).
	Fenced bool `json:"fenced,omitempty"`
	// Confirmed reports that a grouped leader has completed a probe round
	// without seeing a higher epoch and accepts writes. Followers and
	// groupless leaders are always confirmed.
	Confirmed bool `json:"confirmed"`
	// PromisedEpoch is the highest epoch this member has promised to a
	// failover candidate (zero if none). Probing supervisors treat an
	// outstanding promise beyond their own epoch as "a succession is in
	// flight" — a rebooted stale leader must not confirm through it.
	PromisedEpoch uint32 `json:"promisedEpoch,omitempty"`
	// Tail is the transport status; follower only.
	Tail *replica.Status `json:"tail,omitempty"`
}

func (s *Server) replication() ReplicationDTO {
	dto := ReplicationDTO{
		Role:       Role(s.role.Load()).String(),
		Promotions: s.promotions.Load(),
		Epoch:      s.epoch.Load(),
		Addr:       s.advertise(),
		Fenced:     s.fenced.Load(),
		Confirmed:  s.confirmed.Load(),
	}
	s.mu.Lock()
	dto.PromisedEpoch = s.promiseEpoch
	s.mu.Unlock()
	if s.journal != nil {
		dto.JournalBytes = s.journal.Size()
	}
	if s.tailer != nil && s.isFollower() {
		st := s.tailer.Status()
		dto.Tail = &st
		if lag := st.LeaderBytes - dto.JournalBytes; lag > 0 {
			dto.LagBytes = lag
		}
		s.mu.Lock()
		dto.AppliedRecords = s.repl.applied
		s.mu.Unlock()
	}
	return dto
}

func (s *Server) handleReplication(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.replication())
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.isFollower() {
		writeJSON(w, http.StatusConflict, errorDTO{"not a follower"})
		return
	}
	if s.super != nil {
		// Group mode: a manual promote runs the same quorum claim an
		// automated election runs, so two operators promoting two followers
		// of the same dead leader serialize — exactly one (the longer
		// prefix) wins, and the loser's 409 names the winner.
		if err := s.super.ManualPromote(r.Context()); err != nil {
			var lost *failover.ElectionLost
			if errors.As(err, &lost) && lost.Winner != "" {
				w.Header().Set(WinnerHeader, lost.Winner)
			}
			writeJSON(w, http.StatusConflict, errorDTO{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, s.replication())
		return
	}
	if err := s.Promote("api"); err != nil {
		writeJSON(w, http.StatusConflict, errorDTO{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.replication())
}

// retargetRequest is the POST /api/v1/retarget body.
type retargetRequest struct {
	Leader string `json:"leader"`
}

// handleRetarget re-points a follower at a new leader — after a failover,
// the surviving followers retarget at the promoted one. Safe because every
// follower's journal is a byte prefix of the promoted leader's; if this
// follower were somehow ahead (operator promoted the wrong, shorter
// journal), the offset check on reconnect turns it into a loud 409 instead
// of silent divergence.
func (s *Server) handleRetarget(w http.ResponseWriter, r *http.Request) {
	if !s.isFollower() {
		writeJSON(w, http.StatusConflict, errorDTO{"not a follower"})
		return
	}
	var req retargetRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad request body: " + err.Error()})
		return
	}
	if req.Leader == "" {
		writeJSON(w, http.StatusBadRequest, errorDTO{"leader is required"})
		return
	}
	s.tailer.SetLeader(req.Leader)
	s.log.Info("retargeted", "leader", s.tailer.Leader())
	writeJSON(w, http.StatusOK, s.replication())
}
