package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"abg/internal/obs"
)

// eventDTO is the JSON wire form of one obs.Event on the SSE stream.
// Fields follow the event taxonomy; irrelevant ones are omitted.
type eventDTO struct {
	Kind        string  `json:"kind"`
	Time        int64   `json:"time"`
	Quantum     int     `json:"quantum,omitempty"`
	Job         int     `json:"job"`
	Name        string  `json:"name,omitempty"`
	Request     float64 `json:"request,omitempty"`
	IntRequest  int     `json:"intRequest,omitempty"`
	Allotment   int     `json:"allotment,omitempty"`
	P           int     `json:"p,omitempty"`
	Steps       int     `json:"steps,omitempty"`
	Work        int64   `json:"work,omitempty"`
	Waste       int64   `json:"waste,omitempty"`
	Response    int64   `json:"response,omitempty"`
	Parallelism float64 `json:"parallelism,omitempty"`
	Deprived    bool    `json:"deprived,omitempty"`
	Completed   bool    `json:"completed,omitempty"`
}

// marshalEvent renders one instrumentation event as JSON.
func marshalEvent(e obs.Event) []byte {
	b, err := json.Marshal(eventDTO{
		Kind: e.Kind.String(), Time: e.Time, Quantum: e.Quantum, Job: e.Job,
		Name: e.Name, Request: e.Request, IntRequest: e.IntRequest,
		Allotment: e.Allotment, P: e.P, Steps: e.Steps, Work: e.Work,
		Waste: e.Waste, Response: e.Response, Parallelism: e.Parallelism,
		Deprived: e.Deprived, Completed: e.Completed,
	})
	if err != nil { // a flat struct of scalars cannot fail to marshal
		return []byte(`{"kind":"marshal_error"}`)
	}
	return b
}

// sseHub fans instrumentation events out to the connected SSE clients. It
// subscribes to the run's obs bus, so OnEvent is called synchronously from
// the simulation driver: sends are non-blocking, and a client that cannot
// keep up loses events (counted in dropped) rather than stalling the
// scheduler — backpressure never propagates into the quantum clock.
type sseHub struct {
	mu      sync.Mutex
	clients map[chan []byte]struct{}
	n       atomic.Int64 // len(clients), readable without the lock
	dropped atomic.Int64
	closed  bool
}

func newSSEHub() *sseHub {
	return &sseHub{clients: make(map[chan []byte]struct{})}
}

// OnEvent implements obs.Subscriber. Marshalling happens once per event and
// only while someone is listening.
func (h *sseHub) OnEvent(e obs.Event) {
	if h.n.Load() == 0 {
		return
	}
	b := marshalEvent(e)
	h.mu.Lock()
	for ch := range h.clients {
		select {
		case ch <- b:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// subscribe registers a client and returns its event channel plus an
// unsubscribe func. A nil channel is returned after the hub closed.
func (h *sseHub) subscribe(buffer int) (<-chan []byte, func()) {
	ch := make(chan []byte, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, func() {}
	}
	h.clients[ch] = struct{}{}
	h.n.Store(int64(len(h.clients)))
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.clients[ch]; ok {
				delete(h.clients, ch)
				close(ch)
			}
			h.n.Store(int64(len(h.clients)))
			h.mu.Unlock()
		})
	}
}

// closeAll disconnects every client (end of drain): their channels close,
// which ends the streaming handlers so HTTP shutdown can complete.
func (h *sseHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.clients {
		delete(h.clients, ch)
		close(ch)
	}
	h.n.Store(0)
}

// history records each job's lifecycle transitions — admitted,
// deprived↔satisfied flips, restarts, completion — from the event stream,
// bounded per job so a long-lived daemon cannot grow without bound.
type history struct {
	mu    sync.Mutex
	max   int
	byJob map[int][]historyEntry
}

// historyEntry is one lifecycle transition of a job.
type historyEntry struct {
	Quantum int    `json:"quantum,omitempty"`
	Time    int64  `json:"time"`
	Event   string `json:"event"`
}

func newHistory(maxPerJob int) *history {
	return &history{max: maxPerJob, byJob: make(map[int][]historyEntry)}
}

// OnEvent implements obs.Subscriber.
func (h *history) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.EvJobAdmitted, obs.EvDeprived, obs.EvSatisfied,
		obs.EvJobRestarted, obs.EvJobCompleted:
	default:
		return
	}
	if e.Job < 0 {
		return
	}
	h.mu.Lock()
	entries := h.byJob[e.Job]
	if len(entries) >= h.max { // keep the newest transitions
		copy(entries, entries[1:])
		entries = entries[:len(entries)-1]
	}
	h.byJob[e.Job] = append(entries, historyEntry{
		Quantum: e.Quantum, Time: e.Time, Event: e.Kind.String(),
	})
	h.mu.Unlock()
}

// get returns a copy of the job's transition history.
func (h *history) get(job int) []historyEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]historyEntry(nil), h.byJob[job]...)
}
