package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"abg/internal/obs"
)

// eventDTO is the JSON wire form of one obs.Event on the SSE stream.
// Fields follow the event taxonomy; irrelevant ones are omitted.
type eventDTO struct {
	Kind        string  `json:"kind"`
	Time        int64   `json:"time"`
	Quantum     int     `json:"quantum,omitempty"`
	Job         int     `json:"job"`
	Name        string  `json:"name,omitempty"`
	Request     float64 `json:"request,omitempty"`
	IntRequest  int     `json:"intRequest,omitempty"`
	Allotment   int     `json:"allotment,omitempty"`
	P           int     `json:"p,omitempty"`
	Steps       int     `json:"steps,omitempty"`
	Work        int64   `json:"work,omitempty"`
	Waste       int64   `json:"waste,omitempty"`
	Response    int64   `json:"response,omitempty"`
	Parallelism float64 `json:"parallelism,omitempty"`
	Deprived    bool    `json:"deprived,omitempty"`
	Completed   bool    `json:"completed,omitempty"`
}

// marshalEvent renders one instrumentation event as JSON.
func marshalEvent(e obs.Event) []byte {
	b, err := json.Marshal(eventDTO{
		Kind: e.Kind.String(), Time: e.Time, Quantum: e.Quantum, Job: e.Job,
		Name: e.Name, Request: e.Request, IntRequest: e.IntRequest,
		Allotment: e.Allotment, P: e.P, Steps: e.Steps, Work: e.Work,
		Waste: e.Waste, Response: e.Response, Parallelism: e.Parallelism,
		Deprived: e.Deprived, Completed: e.Completed,
	})
	if err != nil { // a flat struct of scalars cannot fail to marshal
		return []byte(`{"kind":"marshal_error"}`)
	}
	return b
}

// sseMsg is one stream item: a marshalled event plus its monotonic id.
type sseMsg struct {
	id   uint64
	data []byte
}

// sseHub fans instrumentation events out to the connected SSE clients. It
// subscribes to the run's obs bus, so OnEvent is called synchronously from
// the simulation driver: sends are non-blocking, and a client that cannot
// keep up loses events (counted in dropped) rather than stalling the
// scheduler — backpressure never propagates into the quantum clock.
//
// Every event carries a monotonic sequence id, assigned whether or not a
// client is connected, and the newest events are retained in a bounded
// replay ring. A client that reconnects with Last-Event-ID resumes from the
// ring without loss; one that fell behind the ring is told to resync.
// Because the ids count the deterministic event stream itself (and the
// counter is persisted in engine snapshots), a recovered daemon re-issues
// the same events under the same ids — reconnecting subscribers cannot tell
// a crash-restart from a slow network.
type sseHub struct {
	mu      sync.Mutex
	clients map[chan sseMsg]struct{}
	seq     uint64   // id of the most recently published event
	ring    []sseMsg // newest ringCap events, oldest first
	ringCap int
	// byteCap bounds the summed payload bytes the ring may hold (0 = entry
	// cap only). Event payloads vary by an order of magnitude across kinds,
	// so an entry cap alone leaves the ring's memory footprint workload-
	// dependent; whichever cap is hit first evicts the oldest events. At
	// least one event is always retained so replay ids stay anchored.
	byteCap   int
	ringBytes int          // summed len(data) currently in the ring
	n         atomic.Int64 // len(clients), readable without the lock
	dropped   atomic.Int64
	evicted   atomic.Int64 // events pushed out of the replay ring
	closed    bool
}

func newSSEHub(ringCap, byteCap int) *sseHub {
	return &sseHub{clients: make(map[chan sseMsg]struct{}), ringCap: ringCap, byteCap: byteCap}
}

// OnEvent implements obs.Subscriber.
func (h *sseHub) OnEvent(e obs.Event) {
	h.mu.Lock()
	h.seq++
	m := sseMsg{id: h.seq, data: marshalEvent(e)}
	for len(h.ring) > 0 &&
		(len(h.ring) >= h.ringCap ||
			(h.byteCap > 0 && h.ringBytes+len(m.data) > h.byteCap)) {
		h.ringBytes -= len(h.ring[0].data)
		copy(h.ring, h.ring[1:])
		h.ring = h.ring[:len(h.ring)-1]
		h.evicted.Add(1)
	}
	h.ringBytes += len(m.data)
	h.ring = append(h.ring, m)
	for ch := range h.clients {
		select {
		case ch <- m:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// setSeq restores the sequence counter from a snapshot (recovery only,
// before any event flows).
func (h *sseHub) setSeq(seq uint64) {
	h.mu.Lock()
	h.seq = seq
	h.mu.Unlock()
}

// subscribe registers a client that has seen events up to afterID (zero for
// a fresh client). It returns the events the ring still holds beyond
// afterID, the live channel, and an unsubscribe func — registered and
// replayed under one lock acquisition, so no event can fall between the
// replay slice and the channel. resync reports that afterID has already
// been evicted from the ring: the replay starts later than the client's
// position and it must refetch absolute state. A nil channel is returned
// after the hub closed.
func (h *sseHub) subscribe(buffer int, afterID uint64) (replay []sseMsg, ch <-chan sseMsg, resync bool, unsub func()) {
	c := make(chan sseMsg, buffer)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, false, func() {}
	}
	switch {
	case afterID > h.seq:
		// The client is ahead of us: it saw events from a journal tail that
		// did not survive the crash. Only absolute state can reconcile that.
		resync = true
	case afterID < h.seq:
		oldest := h.seq - uint64(len(h.ring)) + 1
		if len(h.ring) == 0 || afterID+1 < oldest {
			resync = true
		}
		for _, m := range h.ring {
			if m.id > afterID {
				replay = append(replay, m)
			}
		}
	}
	h.clients[c] = struct{}{}
	h.n.Store(int64(len(h.clients)))
	var once sync.Once
	return replay, c, resync, func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.clients[c]; ok {
				delete(h.clients, c)
				close(c)
			}
			h.n.Store(int64(len(h.clients)))
			h.mu.Unlock()
		})
	}
}

// Seq returns the id of the most recently published event.
func (h *sseHub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// closeAll disconnects every client (end of drain): their channels close,
// which ends the streaming handlers so HTTP shutdown can complete.
func (h *sseHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.clients {
		delete(h.clients, ch)
		close(ch)
	}
	h.n.Store(0)
}

// history records each job's lifecycle transitions — admitted,
// deprived↔satisfied flips, restarts, completion — from the event stream,
// bounded per job so a long-lived daemon cannot grow without bound.
type history struct {
	mu    sync.Mutex
	max   int
	byJob map[int][]HistoryEntry
}

// HistoryEntry is one lifecycle transition of a job.
type HistoryEntry struct {
	Quantum int    `json:"quantum,omitempty"`
	Time    int64  `json:"time"`
	Event   string `json:"event"`
}

func newHistory(maxPerJob int) *history {
	return &history{max: maxPerJob, byJob: make(map[int][]HistoryEntry)}
}

// OnEvent implements obs.Subscriber.
func (h *history) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.EvJobAdmitted, obs.EvDeprived, obs.EvSatisfied,
		obs.EvJobRestarted, obs.EvJobCompleted:
	default:
		return
	}
	if e.Job < 0 {
		return
	}
	h.mu.Lock()
	entries := h.byJob[e.Job]
	if len(entries) >= h.max { // keep the newest transitions
		copy(entries, entries[1:])
		entries = entries[:len(entries)-1]
	}
	h.byJob[e.Job] = append(entries, HistoryEntry{
		Quantum: e.Quantum, Time: e.Time, Event: e.Kind.String(),
	})
	h.mu.Unlock()
}

// get returns a copy of the job's transition history.
func (h *history) get(job int) []HistoryEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HistoryEntry(nil), h.byJob[job]...)
}
