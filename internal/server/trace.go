package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"abg/internal/obs"
	"abg/internal/sim"
)

// Request tracing. A submission that carries an X-Abg-Trace-Id header (the
// Client generates one per Submit, stable across its retries) is followed
// end to end: the submit instant, the queued interval up to admission, every
// executed quantum, restarts, and completion are recorded as obs.Spans on
// one track per job. Traces live only in memory — they are observational,
// never journaled, and a crash forgets the traces in flight; the store is
// bounded both in trace count and in spans per trace so a long-lived daemon
// cannot grow without bound. GET /api/v1/traces/{id} serves a trace as JSON
// or, with ?format=perfetto, as Chrome trace-event JSON for
// https://ui.perfetto.dev. Timestamps are simulation steps (one step = one
// trace microsecond), the repo-wide trace convention.

// TraceHeader is the request header that carries the client trace id.
const TraceHeader = "X-Abg-Trace-Id"

const (
	maxTraces        = 256  // retained traces; oldest evicted first
	maxSpansPerTrace = 4096 // per-trace span cap; overflow sets Truncated
)

// TraceDTO is the JSON wire form of one trace.
type TraceDTO struct {
	ID   string `json:"id"`
	Jobs []int  `json:"jobs"`
	// Done counts the trace's jobs that have completed.
	Done int `json:"done"`
	// Truncated reports that the span cap cut the record (completion
	// instants are still appended).
	Truncated bool       `json:"truncated,omitempty"`
	Spans     []obs.Span `json:"spans"`
}

// traceRec is one trace under construction.
type traceRec struct {
	id        string
	jobs      []int
	submitted int64 // sim step of the accepted submission
	spans     []obs.Span
	done      int
	truncated bool
}

// traceStore follows submissions through the event stream. OnEvent runs
// synchronously on the driver goroutine, so per-event work is one bounded
// map lookup when no trace covers the job.
type traceStore struct {
	mu    sync.Mutex
	byID  map[string]*traceRec
	byJob map[int]*traceRec
	order []string // insertion order, for FIFO eviction
}

func newTraceStore() *traceStore {
	return &traceStore{
		byID:  make(map[string]*traceRec),
		byJob: make(map[int]*traceRec),
	}
}

// register opens a trace for the given job ids. now is the submission's
// simulation step. A re-registered id (client retry that lost the ack but
// hit a fresh daemon) keeps the original record.
func (t *traceStore) register(id string, jobs []int, now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; ok {
		return
	}
	if len(t.order) == maxTraces {
		t.evictLocked(t.order[0])
	}
	rec := &traceRec{id: id, jobs: append([]int(nil), jobs...), submitted: now}
	track := func(job int) string { return fmt.Sprintf("job %d", job) }
	for _, j := range jobs {
		t.byJob[j] = rec
		rec.spans = append(rec.spans, obs.Span{
			Name: "submit", Track: track(j), Cat: "lifecycle", Start: now,
		})
	}
	t.byID[id] = rec
	t.order = append(t.order, id)
}

// evictLocked drops one trace and its job index entries.
func (t *traceStore) evictLocked(id string) {
	rec := t.byID[id]
	delete(t.byID, id)
	for _, j := range rec.jobs {
		if t.byJob[j] == rec {
			delete(t.byJob, j)
		}
	}
	for i, v := range t.order {
		if v == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
}

// append adds a span, honouring the per-trace cap; force bypasses it so
// lifecycle boundaries survive truncation.
func (rec *traceRec) append(sp obs.Span, force bool) {
	if len(rec.spans) >= maxSpansPerTrace && !force {
		rec.truncated = true
		return
	}
	rec.spans = append(rec.spans, sp)
}

// OnEvent implements obs.Subscriber.
func (t *traceStore) OnEvent(e obs.Event) {
	switch e.Kind {
	case obs.EvJobAdmitted, obs.EvQuantumEnd, obs.EvJobRestarted, obs.EvJobCompleted:
	default:
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.byJob[e.Job]
	if !ok {
		return
	}
	track := fmt.Sprintf("job %d", e.Job)
	switch e.Kind {
	case obs.EvJobAdmitted:
		rec.append(obs.Span{
			Name: "queued", Track: track, Cat: "lifecycle",
			Start: rec.submitted, Dur: e.Time - rec.submitted,
			Args: map[string]any{"name": e.Name},
		}, true)
	case obs.EvQuantumEnd:
		rec.append(obs.Span{
			Name:  fmt.Sprintf("q%d a=%d", e.Quantum, e.Allotment),
			Track: track, Cat: "quantum",
			Start: e.Time - int64(e.Steps), Dur: int64(e.Steps),
			Args: map[string]any{
				"request": e.Request, "allotment": e.Allotment,
				"work": e.Work, "parallelism": e.Parallelism,
				"deprived": e.Deprived,
			},
		}, false)
	case obs.EvJobRestarted:
		rec.append(obs.Span{
			Name: "restart", Track: track, Cat: "lifecycle", Start: e.Time,
			Args: map[string]any{"lostWork": e.Work},
		}, true)
	case obs.EvJobCompleted:
		rec.append(obs.Span{
			Name: "complete", Track: track, Cat: "lifecycle", Start: e.Time,
			Args: map[string]any{"work": e.Work, "response": e.Response},
		}, true)
		rec.done++
		delete(t.byJob, e.Job)
	}
}

// get returns a copy of one trace.
func (t *traceStore) get(id string) (TraceDTO, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.byID[id]
	if !ok {
		return TraceDTO{}, false
	}
	return TraceDTO{
		ID: rec.id, Jobs: append([]int(nil), rec.jobs...), Done: rec.done,
		Truncated: rec.truncated,
		Spans:     append([]obs.Span(nil), rec.spans...),
	}, true
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dto, ok := s.traces.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("unknown trace %q", id)})
		return
	}
	if r.URL.Query().Get("format") == "perfetto" {
		if len(dto.Spans) == 0 {
			writeJSON(w, http.StatusConflict, errorDTO{"trace has no spans yet"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteSpans(w, "trace "+id, dto.Spans)
		return
	}
	writeJSON(w, http.StatusOK, dto)
}

// TimelineDTO is the JSON wire form of one job's quantum timeline, served at
// GET /api/v1/jobs/{id}/timeline: the engine's bounded in-memory ring of
// per-quantum desire/allotment/parallelism/verdict samples.
type TimelineDTO struct {
	ID    int    `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	// Ring is the configured ring depth; Evicted the samples the bound has
	// already discarded (oldest first).
	Ring    int                 `json:"ring"`
	Evicted int                 `json:"evicted"`
	Samples []sim.QuantumSample `json:"samples"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad job id"})
		return
	}
	s.mu.Lock()
	samples, evicted, known := s.eng.Timeline(id)
	st, _ := s.eng.JobStatus(id)
	s.mu.Unlock()
	if !known {
		// Not in the engine — maybe still queued.
		if dto, ok := s.lookupJob(id); ok {
			writeJSON(w, http.StatusOK, TimelineDTO{
				ID: id, Name: dto.Name, State: dto.State,
				Ring: s.cfg.TimelineRing, Samples: []sim.QuantumSample{},
			})
			return
		}
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("unknown job %d", id)})
		return
	}
	if samples == nil {
		samples = []sim.QuantumSample{}
	}
	writeJSON(w, http.StatusOK, TimelineDTO{
		ID: id, Name: st.Name, State: st.State.String(),
		Ring: s.cfg.TimelineRing, Evicted: evicted, Samples: samples,
	})
}
