package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"abg/internal/failover"
)

// This file is the server side of automated failover (see internal/failover
// for the supervisor that drives it): the fence/promise endpoint peers claim
// epochs through, the write gates that keep a deposed or unconfirmed leader
// from accepting work, and the bounded read-your-writes wait.

const (
	// EpochHeader is stamped onto every response (the serving daemon's
	// current epoch) and may be sent on writes: a request whose claimed
	// epoch exceeds the server's proves the client has already seen a newer
	// leader, so this daemon must reject the write rather than fork history.
	EpochHeader = "X-Abg-Epoch"
	// OffsetHeader carries a write's commit offset: the journal length, in
	// bytes, that includes the acknowledged record.
	OffsetHeader = "X-Abg-Offset"
	// MinOffsetHeader on a read asks the serving daemon to wait (bounded)
	// until its applied journal prefix reaches the offset — read-your-writes
	// against any replica.
	MinOffsetHeader = "X-Abg-Min-Offset"
	// WinnerHeader on a 409 names the address of the member that holds (or
	// won) the contested leadership.
	WinnerHeader = "X-Abg-Winner"
)

// advertise returns the base URL group peers and clients should dial for
// this daemon: -advertise when configured, the bound listen address
// otherwise.
func (s *Server) advertise() string {
	if s.cfg.Advertise != "" {
		return s.cfg.Advertise
	}
	return failover.NormalizeURL(s.Addr())
}

// Epoch returns the leadership term this daemon currently serves under.
func (s *Server) Epoch() uint32 { return s.epoch.Load() }

// --- failover.Node ---------------------------------------------------------

// Status implements failover.Node.
func (s *Server) Status() failover.NodeStatus {
	st := failover.NodeStatus{
		Role:      Role(s.role.Load()).String(),
		Epoch:     s.epoch.Load(),
		Fenced:    s.fenced.Load(),
		Confirmed: s.confirmed.Load(),
	}
	if s.journal != nil {
		st.JournalBytes = s.journal.Size()
	}
	if s.tailer != nil && s.isFollower() {
		ts := s.tailer.Status()
		st.Leader = ts.Leader
		st.Connected = ts.Connected
	}
	return st
}

// Confirm implements failover.Node: the supervisor completed a probe round
// without finding a higher epoch, so this leader's term is current and
// writes may flow.
func (s *Server) Confirm() {
	if s.confirmed.CompareAndSwap(false, true) {
		s.log.Info("leadership confirmed by group probe", "epoch", s.epoch.Load())
	}
}

// Fence implements failover.Node: a peer serves under a higher epoch, so
// this leader was deposed while it wasn't looking (crash, partition). It
// must never take another write — the fenced state is permanent, surfaces as
// the "fenced" health status, and shuts the daemon down with a non-zero
// exit so supervisors restart it as a follower.
func (s *Server) Fence(epoch uint32, winner string) {
	if !s.fenced.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	s.fencedBy = winner
	s.failLocked(fmt.Errorf("fenced: deposed by epoch %d (leader %s), local epoch %d",
		epoch, winner, s.epoch.Load()))
	s.mu.Unlock()
}

// Retarget implements failover.Node: re-point the tail at the promoted
// leader (same operation as POST /api/v1/retarget, driven by the supervisor
// instead of an operator).
func (s *Server) Retarget(leader string) {
	if s.tailer == nil || !s.isFollower() {
		return
	}
	s.tailer.SetLeader(leader)
	s.log.Info("retargeted by failover supervisor", "leader", s.tailer.Leader())
}

// Promise implements failover.Node: evaluate one fencing claim — candidate
// asks this member to back it as leader for epoch. At most one candidate is
// promised per epoch, which is what makes two concurrent claims serialize:
// two quorums at the same epoch would have to share a member, and that
// member only promised one of them. The single exception is a member
// deferring its own self-promise to a strictly better candidate (longer
// journal, then smaller address) — safe because the deferring member's own
// claim can no longer win (the better candidate denies it by the
// longest-prefix rule), and PromoteTo re-checks the promise before acting.
func (s *Server) Promise(epoch uint32, candidate string, candidateBytes int64) failover.FenceResponse {
	self := s.advertise()
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := failover.FenceResponse{Epoch: s.epoch.Load()}
	if s.journal != nil {
		resp.JournalBytes = s.journal.Size()
	}
	better := candidateBytes > resp.JournalBytes ||
		(candidateBytes == resp.JournalBytes && candidate < self)
	switch {
	case s.fenced.Load():
		resp.Reason = "fenced"
	case epoch <= resp.Epoch:
		resp.Reason = fmt.Sprintf("epoch %d is not beyond current %d", epoch, resp.Epoch)
	case !s.isFollower():
		// A reachable live leader never grants: if a majority can reach it,
		// no death quorum can form, so a claim reaching here is premature.
		resp.Holder = self
		resp.Reason = "live leader"
	case candidateBytes < resp.JournalBytes ||
		(candidateBytes == resp.JournalBytes && candidate != self && candidate > self):
		// Longest-prefix rule: never back a candidate whose journal is
		// shorter than ours (ties break toward the smaller address) — the
		// promoted journal must subsume every survivor's.
		resp.Holder = self
		resp.Reason = fmt.Sprintf("shorter journal (%d < %d bytes)", candidateBytes, resp.JournalBytes)
	case epoch < s.promiseEpoch:
		resp.Holder = s.promiseHolder
		resp.Reason = fmt.Sprintf("superseded by a claim at epoch %d", s.promiseEpoch)
	case epoch == s.promiseEpoch && s.promiseHolder != "" && s.promiseHolder != candidate:
		if s.promiseHolder == self && better {
			// Defer the self-promise to the strictly better candidate.
			s.promiseHolder = candidate
			resp.Granted = true
		} else {
			resp.Holder = s.promiseHolder
			resp.Reason = "already promised this epoch"
		}
	default:
		s.promiseEpoch = epoch
		s.promiseHolder = candidate
		resp.Granted = true
	}
	return resp
}

// handleFence serves POST /api/v1/fence: the wire form of Promise. Always
// answers 200 — a denial is a well-formed verdict, not an HTTP error.
func (s *Server) handleFence(w http.ResponseWriter, r *http.Request) {
	var req failover.FenceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad request body: " + err.Error()})
		return
	}
	if req.Epoch == 0 || req.Candidate == "" {
		writeJSON(w, http.StatusBadRequest, errorDTO{"epoch and candidate are required"})
		return
	}
	resp := s.Promise(req.Epoch, failover.NormalizeURL(req.Candidate), req.JournalBytes)
	if !resp.Granted {
		s.log.Info("denied fencing claim",
			"epoch", req.Epoch, "candidate", req.Candidate, "reason", resp.Reason)
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- write gates and read-your-writes -------------------------------------

// rejectWrite answers writes the daemon's replication condition forbids:
// fenced (deposed — permanent 409 naming the successor), behind the
// client's observed epoch (the client proves a newer leader exists), or an
// unconfirmed grouped leader (transient 503 until the first clean probe
// round — a restarted stale leader must discover its deposition before it
// may ack anything). Returns true when the request was answered.
func (s *Server) rejectWrite(w http.ResponseWriter, r *http.Request) bool {
	if s.fenced.Load() {
		s.mu.Lock()
		winner := s.fencedBy
		s.mu.Unlock()
		msg := "fenced: this daemon was deposed"
		if winner != "" {
			w.Header().Set(WinnerHeader, winner)
			msg += "; current leader at " + winner
		}
		writeJSON(w, http.StatusConflict, errorDTO{msg})
		return true
	}
	if c := r.Header.Get(EpochHeader); c != "" {
		if ce, err := strconv.ParseUint(c, 10, 32); err == nil && uint32(ce) > s.epoch.Load() {
			writeJSON(w, http.StatusConflict, errorDTO{fmt.Sprintf(
				"stale leader: client has observed epoch %d, this daemon serves epoch %d",
				ce, s.epoch.Load())})
			return true
		}
	}
	if !s.confirmed.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorDTO{"leader unconfirmed: awaiting first group probe round"})
		return true
	}
	return false
}

// waitMinOffset implements read-your-writes: a read carrying
// X-Abg-Min-Offset is not answered until this daemon's journal holds that
// many bytes. Replica state is a pure function of the applied prefix, so a
// write acknowledged at offset N is visible on any member whose journal has
// reached N. The wait is bounded by ReadWaitMax; on timeout the daemon
// answers 503 with Retry-After — it never serves a read it can prove stale.
// Returns true when the request was answered (error or timeout).
func (s *Server) waitMinOffset(w http.ResponseWriter, r *http.Request) bool {
	v := r.Header.Get(MinOffsetHeader)
	if v == "" {
		return false
	}
	min, err := strconv.ParseInt(v, 10, 64)
	if err != nil || min < 0 {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad " + MinOffsetHeader + ": " + v})
		return true
	}
	if min == 0 {
		return false
	}
	if s.journal == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorDTO{"journal disabled: cannot prove journal offset " + v + " applied"})
		return true
	}
	deadline := time.NewTimer(s.cfg.ReadWaitMax)
	defer deadline.Stop()
	for {
		// Fetch the wake channel before the size check: an append between
		// the two replaces the channel, and this order can only make us wake
		// spuriously, never miss.
		ch := s.journal.Updated()
		size := s.journal.Size()
		if size >= min {
			return false
		}
		select {
		case <-ch:
		case <-deadline.C:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorDTO{fmt.Sprintf(
				"replica behind: applied %d of required %d journal bytes within %s",
				size, min, s.cfg.ReadWaitMax)})
			return true
		case <-r.Context().Done():
			return true
		}
	}
}
