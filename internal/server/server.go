// Package server is the service layer of the repository: a long-running
// daemon (cmd/abgd) that exposes the two-level ABG scheduling framework as
// a live system instead of a batch simulation. An incremental sim.Engine is
// driven on a quantum clock — wall-time ticks or fast-forward virtual time —
// while an HTTP/JSON API accepts workload-generator job submissions, serves
// per-job scheduler state (request d(q), allotment a(q), measured A(q),
// deprivation history), streams the quantum-boundary instrumentation events
// over SSE, and snapshots the whole scheduler.
//
// Admission control is a bounded queue: submissions beyond the bound are
// rejected with 429 so overload surfaces as backpressure, never as unbounded
// memory. All jobs queued at a boundary are admitted together at that
// boundary (arrivals mid-quantum become schedulable at the next boundary,
// exactly as in the paper's model). Draining — via SIGTERM or POST
// /api/v1/drain — stops admission, runs every accepted job to completion at
// fast-forward speed, then shuts the listener down.
//
// The existing observability and robustness layers plug straight in: the
// run's obs.Bus feeds the SSE hub, the per-job history recorder, optional
// metrics, and — when a fault spec is configured — the invariant checker,
// while the fault plan's capacity model, lossy control channel, and restart
// schedules perturb the live engine the same way they perturb batch runs.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"abg/internal/alloc"
	"abg/internal/cli"
	"abg/internal/core"
	"abg/internal/failover"
	"abg/internal/fault"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/persist"
	"abg/internal/replica"
	"abg/internal/sim"
)

// ClockMode selects how quantum boundaries are paced.
type ClockMode string

const (
	// ClockWall advances one quantum boundary per Tick of wall time — the
	// live-service mode, where simulation time tracks real time.
	ClockWall ClockMode = "wall"
	// ClockVirtual advances boundaries as fast as the hardware allows
	// whenever unfinished jobs exist, and parks when idle — the mode for
	// load tests, CI smokes, and what-if replays.
	ClockVirtual ClockMode = "virtual"
)

// Config configures a daemon instance.
type Config struct {
	// Addr is the listen address (e.g. ":7133", "127.0.0.1:0").
	Addr string
	// P and L are the machine parameters (processors, quantum length).
	P, L int
	// Scheduler selects the two-level scheduler: "abg" or "agreedy".
	Scheduler string
	// R is ABG's convergence rate; Rho/Delta are A-Greedy's parameters.
	R, Rho, Delta float64
	// Clock and Tick pace the quantum clock (Tick is wall mode only).
	Clock ClockMode
	Tick  time.Duration
	// QueueLimit bounds the admission queue; a submission that would push
	// the queue past it is rejected with 429.
	QueueLimit int
	// FaultSpec optionally arms the fault-injection layer (fault.ParseSpec
	// grammar); the invariant checker is subscribed whenever it is set.
	FaultSpec string
	// Seed is the base seed for submissions that do not carry their own.
	Seed uint64
	// MaxQuanta caps one job set's boundaries (effectively unlimited when
	// zero — a service bound, unlike the batch simulator's default).
	MaxQuanta int
	// JournalDir enables crash safety: a write-ahead journal plus periodic
	// engine snapshots under this directory. On boot the daemon recovers to
	// the journaled state — same job ids, same results, same SSE sequence
	// numbers. Empty disables persistence.
	JournalDir string
	// SnapshotEvery is the snapshot cadence in executed quanta (default 64).
	// Smaller values shorten recovery replay; larger ones shrink the journal.
	SnapshotEvery int
	// Fsync selects the journal's fsync policy: "always" (default),
	// "snapshot", or "never". See persist.SyncPolicy for the durability
	// trade-off.
	Fsync string
	// EventRing bounds the SSE replay ring: how many recent events a
	// reconnecting subscriber can catch up on before it must resync
	// (default 4096).
	EventRing int
	// Bus receives the run's instrumentation events; one is created when
	// nil. The server always attaches its own subscribers (SSE, history).
	Bus *obs.Bus
	// Metrics receives the daemon's metric families — HTTP, admission, SSE,
	// journal, snapshot, and recovery, plus the engine's sim_* families via
	// obs.AttachMetrics — and is rendered at GET /metrics in the Prometheus
	// text format. cmd/abgd passes obs.Default so /debug/vars shows the same
	// numbers; a private registry is created when nil.
	Metrics *obs.Registry
	// JournalLagMax is the /healthz ceiling on the journal's durability debt
	// (records appended since the last fsync, persist.Journal.Lag). Above
	// it the daemon reports degraded. Default 1024; irrelevant under
	// -fsync=always, where the lag is always zero.
	JournalLagMax int
	// SnapshotAgeMax is the /healthz ceiling on executed quanta since the
	// last snapshot. Above it the daemon reports degraded (recovery replay
	// is growing unboundedly). Default 8× SnapshotEvery; only meaningful
	// with JournalDir set.
	SnapshotAgeMax int
	// TimelineRing bounds the per-job quantum-timeline ring behind
	// GET /api/v1/jobs/{id}/timeline (sim.MultiConfig.TimelineRing).
	// Default 256; negative disables the timeline.
	TimelineRing int
	// StepWorkers is sim.MultiConfig.StepWorkers: how many goroutines step
	// independent jobs within one quantum (0/1 serial, negative = one per
	// CPU). A pure execution knob — results, events, journal records, and
	// snapshots are bit-identical at every setting, so it is safe to change
	// across restarts of the same journal.
	StepWorkers int
	// Capacity overrides the engine's capacity model (the fault plan's model
	// is used when nil). The cluster layer (internal/cluster) injects a
	// *ShareTable here so a cluster-level allocator can re-partition the
	// machine across engine shards at every quantum boundary; the fault
	// plan's capacity churn, if any, must then be folded into the override
	// (ShareTable does this via its base model).
	Capacity alloc.Capacity
	// FollowURL boots the daemon as a replication follower tailing this
	// leader's journal (see replication.go). Requires JournalDir, and the
	// engine configuration (P, L, scheduler parameters, fault spec, seed)
	// must match the leader's — the shipped header record is cross-checked.
	// Followers serve reads and the SSE stream; writes answer 307 to the
	// leader.
	FollowURL string
	// PromoteAfter arms the follower's promotion watchdog: if the leader
	// stays unreachable for this long, the follower promotes itself. Zero
	// means manual promotion only (POST /api/v1/promote). Mutually exclusive
	// with Group — quorum elections replace the lone watchdog.
	PromoteAfter time.Duration
	// Group enables automated failover (internal/failover): the advertised
	// URLs of every replication-group member, this daemon included. Each
	// member runs a supervisor that probes the group, fences stale leaders
	// by epoch, and elects the longest-prefix follower when the leader dies.
	// Requires JournalDir and Advertise.
	Group []string
	// Advertise is the base URL peers and clients reach this daemon at.
	// Required with Group (the bound address of ":7133" is not something a
	// peer can dial); defaults to the bound listen address otherwise.
	Advertise string
	// ProbeEvery and FailAfter tune the failover supervisor: probe-round
	// period and how long the leader must stay unreachable before an
	// election starts. Defaults failover.DefaultProbeEvery/DefaultFailAfter.
	ProbeEvery, FailAfter time.Duration
	// FailoverSeed makes election holdoff jitter deterministic in tests.
	FailoverSeed uint64
	// ReadWaitMax bounds the read-your-writes wait: how long a read carrying
	// X-Abg-Min-Offset may block for the journal to catch up before the
	// daemon answers 503 + Retry-After (default 2s).
	ReadWaitMax time.Duration
	// EventRingBytes caps the SSE replay ring's payload footprint in bytes,
	// on top of the EventRing entry cap (default 4 MiB). Whichever cap is
	// hit first evicts the oldest events.
	EventRingBytes int
}

// normalize fills defaults and validates the configuration.
func (c *Config) normalize() error {
	if c.Addr == "" {
		c.Addr = ":7133"
	}
	if c.P == 0 {
		c.P = 128
	}
	if c.L == 0 {
		c.L = 1000
	}
	if c.P < 1 || c.L < 1 {
		return fmt.Errorf("server: invalid machine P=%d L=%d", c.P, c.L)
	}
	if c.Scheduler == "" {
		c.Scheduler = "abg"
	}
	if c.Scheduler != "abg" && c.Scheduler != "agreedy" {
		return fmt.Errorf("server: unknown scheduler %q (want abg or agreedy)", c.Scheduler)
	}
	if c.R == 0 {
		c.R = 0.2
	}
	if c.Rho == 0 {
		c.Rho = 2
	}
	if c.Delta == 0 {
		c.Delta = 0.8
	}
	switch c.Clock {
	case "":
		c.Clock = ClockWall
	case ClockWall, ClockVirtual:
	default:
		return fmt.Errorf("server: unknown clock mode %q (want wall or virtual)", c.Clock)
	}
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4096
	}
	if c.MaxQuanta <= 0 {
		c.MaxQuanta = math.MaxInt - 1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 64
	}
	if c.EventRing <= 0 {
		c.EventRing = 4096
	}
	if c.JournalLagMax <= 0 {
		c.JournalLagMax = 1024
	}
	switch {
	case c.TimelineRing == 0:
		c.TimelineRing = 256
	case c.TimelineRing < 0:
		c.TimelineRing = 0
	}
	if c.SnapshotAgeMax <= 0 {
		c.SnapshotAgeMax = 8 * c.SnapshotEvery
	}
	if _, err := persist.ParseSyncPolicy(c.Fsync); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	if c.FollowURL != "" && c.JournalDir == "" {
		return fmt.Errorf("server: follower mode requires a journal (-follow needs -journal)")
	}
	if c.PromoteAfter > 0 && c.FollowURL == "" {
		return fmt.Errorf("server: -promote-after only applies to followers (-follow)")
	}
	if c.ReadWaitMax <= 0 {
		c.ReadWaitMax = 2 * time.Second
	}
	if c.EventRingBytes <= 0 {
		c.EventRingBytes = 4 << 20
	}
	c.Advertise = failover.NormalizeURL(c.Advertise)
	if len(c.Group) > 0 {
		if c.JournalDir == "" {
			return fmt.Errorf("server: group mode requires a journal (-group needs -journal)")
		}
		if c.PromoteAfter > 0 {
			return fmt.Errorf("server: -promote-after conflicts with -group (quorum elections replace the watchdog)")
		}
		if c.Advertise == "" {
			return fmt.Errorf("server: group mode requires -advertise (peers must know this member's URL)")
		}
		if len(c.Group) < 2 {
			return fmt.Errorf("server: a replication group needs at least 2 members, got %d", len(c.Group))
		}
		self := false
		for i, m := range c.Group {
			c.Group[i] = failover.NormalizeURL(m)
			if c.Group[i] == "" {
				return fmt.Errorf("server: empty group member URL")
			}
			if c.Group[i] == c.Advertise {
				self = true
			}
		}
		if !self {
			return fmt.Errorf("server: advertised URL %s is not a group member", c.Advertise)
		}
	}
	if c.Bus == nil {
		c.Bus = obs.NewBus()
	}
	return nil
}

// pendingJob is one admission-queue entry: a job that has been accepted but
// not yet handed to the engine (that happens at the next quantum boundary).
type pendingJob struct {
	id      int
	name    string
	profile *job.Profile
}

// Server is a running abgd instance.
type Server struct {
	cfg   Config
	sched core.Scheduler
	plan  fault.Plan
	// capacity is the engine's resolved capacity model: cfg.Capacity when
	// set (the cluster layer's ShareTable), the fault plan's otherwise.
	capacity alloc.Capacity

	bus     *obs.Bus
	hub     *sseHub
	hist    *history
	traces  *traceStore
	checker *fault.Checker
	metrics *serverMetrics
	log     *slog.Logger

	mu            sync.Mutex
	eng           *sim.Engine
	queue         []pendingJob
	nextID        int
	keys          map[string][]int // idempotency key → promised ids
	fatal         error
	recovery      RecoveryDTO
	lastSnapQ     int    // QuantaElapsed at the last written snapshot
	lastSnapSeq   uint64 // SSE sequence captured by the last snapshot
	snapshotCount int

	journal *persist.Journal

	// Replication (see replication.go). role is RoleLeader or RoleFollower;
	// a follower's tailer streams the leader's journal into repl/engine.
	role       atomic.Int32
	promotions atomic.Int64
	tailer     *replica.Tailer
	repl       replState

	// Failover (see failover.go, internal/failover). epoch is the leadership
	// term served under; fenced flips once, permanently, when a successor's
	// higher epoch is observed; confirmed gates a grouped leader's writes
	// until its first clean probe round. promiseEpoch/promiseHolder (under
	// mu) record the one fencing promise outstanding; pendingEpoch (under
	// mu) carries a won epoch from PromoteTo to sealPromotion.
	epoch         atomic.Uint32
	fenced        atomic.Bool
	confirmed     atomic.Bool
	fencedBy      string
	promiseEpoch  uint32
	promiseHolder string
	pendingEpoch  uint32
	super         *failover.Supervisor

	draining    atomic.Bool
	killed      atomic.Bool // test hook: crash the driver without draining
	wake        chan struct{}
	drained     chan struct{}
	drainedOnce sync.Once
	stopped     chan struct{}
	stoppedOnce sync.Once
	started     time.Time

	ln   net.Listener
	hsrv *http.Server
}

// New builds a server from the configuration. Call Start to bind and run.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	plan, err := fault.ParseSpec(cfg.FaultSpec, cfg.P)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var scheduler core.Scheduler
	if cfg.Scheduler == "abg" {
		scheduler = core.NewABG(cfg.R)
	} else {
		scheduler = core.NewAGreedy(cfg.Rho, cfg.Delta)
	}
	capacity := cfg.Capacity
	if capacity == nil {
		capacity = plan.Capacity
	}
	eng, err := sim.NewEngine(sim.MultiConfig{
		P: cfg.P, L: cfg.L,
		Allocator: alloc.DynamicEquiPartition{},
		MaxQuanta: cfg.MaxQuanta,
		Obs:       cfg.Bus,
		Capacity:  capacity,
		// Observational: the ring never perturbs scheduling or snapshots.
		TimelineRing: cfg.TimelineRing,
		StepWorkers:  cfg.StepWorkers,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		sched:    scheduler,
		plan:     plan,
		capacity: capacity,
		bus:      cfg.Bus,
		hub:      newSSEHub(cfg.EventRing, cfg.EventRingBytes),
		hist:     newHistory(256),
		traces:   newTraceStore(),
		log:      obs.Component("server"),
		eng:      eng,
		keys:     make(map[string][]int),
		wake:     make(chan struct{}, 1),
		drained:  make(chan struct{}),
		stopped:  make(chan struct{}),
		started:  time.Now(),
	}
	s.metrics = newServerMetrics(cfg.Metrics)
	s.bus.Subscribe(s.hub)
	s.bus.Subscribe(s.hist)
	s.bus.Subscribe(s.traces)
	// Engine-level sim_* families land in the same registry; AttachMetrics
	// dedupes, so an external site attaching the same (bus, registry) pair
	// cannot double-count.
	obs.AttachMetrics(s.bus, s.metrics.reg)
	if cfg.FaultSpec != "" {
		s.checker = fault.NewChecker(cfg.P, false)
		s.bus.Subscribe(s.checker)
	}
	if cfg.FollowURL != "" {
		// Role must be set before openJournal: a fresh follower journal is
		// NOT stamped with a header — its first record is the leader's.
		s.role.Store(int32(RoleFollower))
	}
	if cfg.JournalDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
		s.journal.SetMetrics(newJournalMetrics(s.metrics.reg))
	}
	if cfg.FollowURL != "" {
		t := replica.NewTailer(cfg.FollowURL, shippedApplier{s})
		t.PromoteAfter = cfg.PromoteAfter
		t.OnPromote = func() { _ = s.Promote("watchdog") }
		// A clean EOF after the drain record has applied and the engine has
		// finished is the leader's end-of-drain: the journal is complete, so
		// the follower drains out too instead of re-dialing a gone leader.
		t.StopOnEOF = func() bool {
			if !s.draining.Load() {
				return false
			}
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.eng.Done() && len(s.queue) == 0
		}
		s.tailer = t
	}
	// The served epoch resumes from the journal (the highest epoch any
	// record was framed under; 1 for a fresh journal) so a restarted daemon
	// answers under the term it actually holds. A grouped leader boots
	// unconfirmed: it may not ack a write until its supervisor completes a
	// probe round without discovering a successor — the gate that keeps a
	// rebooted stale leader from forking history before it learns it was
	// deposed. Followers redirect writes, so they are always "confirmed".
	s.epoch.Store(1)
	if s.journal != nil {
		s.epoch.Store(s.journal.Epoch())
	}
	if len(cfg.Group) == 0 || s.isFollower() {
		s.confirmed.Store(true)
	}
	s.metrics.recordRecovery(s.recovery)
	return s, nil
}

// Start binds the listener and launches the quantum-clock driver and the
// HTTP server. Cancelling ctx initiates a graceful drain.
func (s *Server) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	s.started = time.Now()
	s.hsrv = &http.Server{Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
	if len(s.cfg.Group) > 0 {
		s.super = &failover.Supervisor{
			Node:       s,
			Self:       s.advertise(),
			Group:      s.cfg.Group,
			ProbeEvery: s.cfg.ProbeEvery,
			FailAfter:  s.cfg.FailAfter,
			Seed:       s.cfg.FailoverSeed,
			HTTP:       &http.Client{},
			Log:        obs.Component("failover"),
		}
		go s.super.Run(ctx)
	}
	if s.isFollower() {
		go s.follow(ctx)
	} else {
		go s.drive(ctx)
	}
	go func() {
		if err := s.hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("http server failed", "err", err)
		}
	}()
	s.log.Info("abgd listening",
		"addr", ln.Addr().String(), "scheduler", s.sched.Name(),
		"P", s.cfg.P, "L", s.cfg.L, "clock", string(s.cfg.Clock),
		"role", Role(s.role.Load()).String())
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Drain initiates a graceful drain: admission stops (submissions get 503),
// accepted jobs run to completion at fast-forward speed, then the listener
// shuts down. Idempotent; Wait blocks until the drain completes. The
// command is journaled, so a daemon restarted on this journal finishes the
// drain instead of reopening admission.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.log.Info("drain initiated")
		s.mu.Lock()
		_ = s.appendJournal(persist.KindDrain, nil)
		s.mu.Unlock()
	}
	s.notify()
}

// Wait blocks until the server has fully drained, then shuts the HTTP
// listener down and reports any fatal engine error or invariant violation.
func (s *Server) Wait() error {
	<-s.drained
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.hsrv.Shutdown(shutdownCtx); err != nil {
		s.hsrv.Close()
	}
	s.mu.Lock()
	err := s.fatal
	if s.journal != nil {
		_ = s.journal.Close()
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.checker != nil {
		return s.checker.Err()
	}
	return nil
}

// notify wakes the driver loop (non-blocking).
func (s *Server) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// --- HTTP surface ---------------------------------------------------------

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	// Every route is wrapped by s.instrument; the label is the path pattern,
	// so metric cardinality is bounded by the route table, not client URLs.
	mux.HandleFunc("POST /api/v1/jobs", s.instrument("/api/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /api/v1/jobs", s.instrument("/api/v1/jobs", s.handleJobs))
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.instrument("/api/v1/jobs/{id}", s.handleJob))
	mux.HandleFunc("GET /api/v1/jobs/{id}/timeline", s.instrument("/api/v1/jobs/{id}/timeline", s.handleTimeline))
	mux.HandleFunc("GET /api/v1/traces/{id}", s.instrument("/api/v1/traces/{id}", s.handleTrace))
	mux.HandleFunc("GET /api/v1/state", s.instrument("/api/v1/state", s.handleState))
	mux.HandleFunc("GET /api/v1/events", s.instrument("/api/v1/events", s.handleEvents))
	mux.HandleFunc("POST /api/v1/drain", s.instrument("/api/v1/drain", s.handleDrain))
	mux.HandleFunc("GET /api/v1/recovery", s.instrument("/api/v1/recovery", s.handleRecovery))
	mux.HandleFunc("GET /api/v1/journal", s.instrument("/api/v1/journal", s.handleJournal))
	mux.HandleFunc("GET /api/v1/replication", s.instrument("/api/v1/replication", s.handleReplication))
	mux.HandleFunc("POST /api/v1/promote", s.instrument("/api/v1/promote", s.handlePromote))
	mux.HandleFunc("POST /api/v1/retarget", s.instrument("/api/v1/retarget", s.handleRetarget))
	mux.HandleFunc("POST /api/v1/fence", s.instrument("/api/v1/fence", s.handleFence))
	mux.HandleFunc("GET /api/v1/version", s.instrument("/api/v1/version", s.handleVersion))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorDTO is the uniform error body.
type errorDTO struct {
	Error string `json:"error"`
}

// SubmitResponse acknowledges an accepted submission. State is "queued"
// for a fresh acceptance and "duplicate" when the request's idempotency key
// matched an earlier submission — IDs then repeats the original ids.
type SubmitResponse struct {
	IDs    []int  `json:"ids"`
	State  string `json:"state"`
	Queued int    `json:"queued"`
	// TraceID echoes the request's X-Abg-Trace-Id header; the submission's
	// end-to-end trace is then readable at /api/v1/traces/{traceId}.
	TraceID string `json:"traceId,omitempty"`
	// Offset is the commit offset: the journal length, in bytes, that
	// includes this submission's record. A read against any replica carrying
	// X-Abg-Min-Offset: <Offset> is guaranteed to observe the submission
	// (read-your-writes). Zero without a journal.
	Offset int64 `json:"offset,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.rejectWrite(w, r) {
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorDTO{"draining: admission closed"})
		return
	}
	if s.redirectToLeader(w, r) {
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad request body: " + err.Error()})
		return
	}
	if err := req.Normalize(); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{err.Error()})
		return
	}
	resp, status, err := s.SubmitLocal(req, r.Header.Get(TraceHeader))
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorDTO{err.Error()})
		return
	}
	if resp.Offset > 0 {
		w.Header().Set(OffsetHeader, strconv.FormatInt(resp.Offset, 10))
	}
	writeJSON(w, status, resp)
}

// SubmitLocal runs the admission path for an already-normalized request:
// idempotency-key dedup, queue-limit backpressure, journal-before-ack, id
// assignment, trace registration. It is the shared core behind POST
// /api/v1/jobs and the cluster front end's per-shard routing. The returned
// status is the HTTP status the caller should answer with (202 queued, 200
// duplicate); a non-nil error carries a 4xx/5xx status instead.
func (s *Server) SubmitLocal(req JobRequest, traceID string) (SubmitResponse, int, error) {
	if s.draining.Load() {
		return SubmitResponse{}, http.StatusServiceUnavailable,
			fmt.Errorf("draining: admission closed")
	}
	if req.Seed == 0 {
		req.Seed = s.cfg.Seed
	}
	// Build the profiles outside the engine lock: generation cost must not
	// stall the quantum clock.
	profiles := make([]*job.Profile, req.Count)
	for i := range profiles {
		profiles[i] = req.BuildProfile(i, s.cfg.L)
	}

	s.mu.Lock()
	if req.Key != "" {
		if ids, ok := s.keys[req.Key]; ok {
			// Seen before — possibly acked into a journal whose ack the
			// client never received. Same key, same jobs, no double admit.
			// The original submission's trace (if any) keeps following the
			// jobs; the duplicate only echoes the id. The commit offset is
			// the current journal size — it covers the original record.
			depth := len(s.queue)
			var off int64
			if s.journal != nil {
				off = s.journal.Size()
			}
			s.mu.Unlock()
			return SubmitResponse{
				IDs: ids, State: "duplicate", Queued: depth, TraceID: traceID, Offset: off,
			}, http.StatusOK, nil
		}
	}
	if len(s.queue)+req.Count > s.cfg.QueueLimit {
		depth := len(s.queue)
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		return SubmitResponse{}, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d/%d)", depth, s.cfg.QueueLimit)
	}
	firstID := s.nextID
	// The journal record precedes the ack: once the client hears 202, the
	// submission is recoverable. The reverse order would let a crash forget
	// an acked job.
	var off int64
	if s.journal != nil {
		body, err := encodeSubmit(submitRecord{firstID: firstID, count: req.Count, key: req.Key, req: req})
		if err == nil {
			err = s.appendJournal(persist.KindSubmit, body)
		}
		if err != nil {
			s.mu.Unlock()
			return SubmitResponse{}, http.StatusServiceUnavailable,
				fmt.Errorf("journal write failed: %w", err)
		}
		off = s.journal.Size()
	}
	ids := make([]int, req.Count)
	for i := range profiles {
		id := s.nextID
		s.nextID++
		ids[i] = id
		s.queue = append(s.queue, pendingJob{
			id: id, name: req.jobName(i, id), profile: profiles[i],
		})
	}
	if req.Key != "" {
		s.keys[req.Key] = ids
	}
	depth := len(s.queue)
	now := s.eng.Now()
	s.mu.Unlock()
	if traceID != "" {
		s.traces.register(traceID, ids, now)
	}
	s.notify()
	return SubmitResponse{
		IDs: ids, State: "queued", Queued: depth, TraceID: traceID, Offset: off,
	}, http.StatusAccepted, nil
}

// JobStatusDTO is the JSON wire form of one job's live status.
type JobStatusDTO struct {
	ID             int            `json:"id"`
	Name           string         `json:"name"`
	State          string         `json:"state"`
	Release        int64          `json:"release"`
	Completion     int64          `json:"completion,omitempty"`
	Response       int64          `json:"response,omitempty"`
	Work           int64          `json:"work"`
	CriticalPath   int            `json:"criticalPath"`
	Request        float64        `json:"request"`
	IntRequest     int            `json:"intRequest"`
	Allotment      int            `json:"allotment"`
	Parallelism    float64        `json:"parallelism"`
	Deprived       bool           `json:"deprived"`
	NumQuanta      int            `json:"numQuanta"`
	DeprivedQuanta int            `json:"deprivedQuanta"`
	Restarts       int            `json:"restarts,omitempty"`
	LostWork       int64          `json:"lostWork,omitempty"`
	Waste          int64          `json:"waste"`
	History        []HistoryEntry `json:"history,omitempty"`
}

// statusDTO converts an engine snapshot.
func statusDTO(st sim.JobStatus) JobStatusDTO {
	return JobStatusDTO{
		ID: st.ID, Name: st.Name, State: st.State.String(),
		Release: st.Release, Completion: st.Completion, Response: st.Response,
		Work: st.Work, CriticalPath: st.CriticalPath,
		Request: st.Request, IntRequest: st.IntRequest,
		Allotment: st.Allotment, Parallelism: st.Parallelism,
		Deprived: st.Deprived, NumQuanta: st.NumQuanta,
		DeprivedQuanta: st.DeprivedQ, Restarts: st.Restarts,
		LostWork: st.LostWork, Waste: st.Waste,
	}
}

// lookupJob resolves a job id to its status: engine-owned, still queued, or
// unknown.
func (s *Server) lookupJob(id int) (JobStatusDTO, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.eng.JobStatus(id); ok {
		return statusDTO(st), true
	}
	for _, p := range s.queue {
		if p.id == id {
			return JobStatusDTO{
				ID: id, Name: p.name, State: "queued",
				Work:         p.profile.Work(),
				CriticalPath: p.profile.CriticalPathLen(),
			}, true
		}
	}
	return JobStatusDTO{}, false
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.waitMinOffset(w, r) {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorDTO{"bad job id"})
		return
	}
	dto, ok := s.lookupJob(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorDTO{fmt.Sprintf("unknown job %d", id)})
		return
	}
	dto.History = s.hist.get(id)
	writeJSON(w, http.StatusOK, dto)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.waitMinOffset(w, r) {
		return
	}
	s.mu.Lock()
	// The engine owns the Statuses buffer and reuses it across calls, so
	// the DTO conversion must happen before the lock is released — another
	// handler's Statuses call would overwrite it.
	sts := s.eng.Statuses()
	out := make([]JobStatusDTO, 0, len(sts)+len(s.queue))
	for _, st := range sts {
		out = append(out, statusDTO(st))
	}
	for _, p := range s.queue {
		out = append(out, JobStatusDTO{
			ID: p.id, Name: p.name, State: "queued",
			Work: p.profile.Work(), CriticalPath: p.profile.CriticalPathLen(),
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// StateDTO is the scheduler-wide snapshot served at /api/v1/state.
type StateDTO struct {
	Version       string  `json:"version"`
	Scheduler     string  `json:"scheduler"`
	P             int     `json:"p"`
	L             int     `json:"l"`
	Clock         string  `json:"clock"`
	Draining      bool    `json:"draining"`
	Boundary      int     `json:"boundary"`
	Now           int64   `json:"now"`
	QuantaElapsed int     `json:"quantaElapsed"`
	Submitted     int     `json:"submitted"`
	Queued        int     `json:"queued"`
	Pending       int     `json:"pending"`
	Running       int     `json:"running"`
	Completed     int     `json:"completed"`
	QueueLimit    int     `json:"queueLimit"`
	Makespan      int64   `json:"makespan"`
	TotalWaste    int64   `json:"totalWaste"`
	MeanResponse  float64 `json:"meanResponse"`
	SSEClients    int64   `json:"sseClients"`
	SSEDropped    int64   `json:"sseDropped"`
	LastEventID   uint64  `json:"lastEventId"`
	// HTTP request latency percentiles across all routes, estimated from
	// the server's latency histogram (obs.Histogram.Quantile); zero until
	// the first request completes.
	HTTPRequests     int64   `json:"httpRequests"`
	HTTPLatencyP50Ms float64 `json:"httpLatencyP50Ms,omitempty"`
	HTTPLatencyP95Ms float64 `json:"httpLatencyP95Ms,omitempty"`
	HTTPLatencyP99Ms float64 `json:"httpLatencyP99Ms,omitempty"`
	Fault            string  `json:"fault,omitempty"`
	Error            string  `json:"error,omitempty"`
	UptimeSec        float64 `json:"uptimeSec"`
}

// snapshot assembles the scheduler-wide state.
func (s *Server) snapshot() StateDTO {
	s.mu.Lock()
	sts := s.eng.Statuses()
	res := s.eng.Result()
	st := StateDTO{
		Version:       cli.Version,
		Scheduler:     s.sched.Name(),
		P:             s.cfg.P,
		L:             s.cfg.L,
		Clock:         string(s.cfg.Clock),
		Draining:      s.draining.Load(),
		Boundary:      s.eng.Boundary(),
		Now:           s.eng.Now(),
		QuantaElapsed: s.eng.QuantaElapsed(),
		Submitted:     s.nextID,
		Queued:        len(s.queue),
		QueueLimit:    s.cfg.QueueLimit,
		Makespan:      res.Makespan,
		TotalWaste:    res.TotalWaste,
	}
	if s.fatal != nil {
		st.Error = s.fatal.Error()
	}
	// Aggregate before releasing the lock: the engine owns the Statuses
	// buffer and a concurrent handler's call would overwrite it in place.
	var respSum int64
	for _, j := range sts {
		switch j.State {
		case sim.JobPending:
			st.Pending++
		case sim.JobRunning:
			st.Running++
		case sim.JobDone:
			st.Completed++
			respSum += j.Response
		}
	}
	s.mu.Unlock()
	if st.Completed > 0 {
		st.MeanResponse = float64(respSum) / float64(st.Completed)
	}
	st.SSEClients = s.hub.n.Load()
	st.SSEDropped = s.hub.dropped.Load()
	st.LastEventID = s.hub.Seq()
	if agg := s.metrics.agg; agg.Count() > 0 {
		st.HTTPRequests = agg.Count()
		st.HTTPLatencyP50Ms = agg.Quantile(0.5) * 1e3
		st.HTTPLatencyP95Ms = agg.Quantile(0.95) * 1e3
		st.HTTPLatencyP99Ms = agg.Quantile(0.99) * 1e3
	}
	if !s.plan.IsZero() {
		st.Fault = s.plan.String()
	}
	if st.Error == "" && s.checker != nil {
		if err := s.checker.Err(); err != nil {
			st.Error = err.Error()
		}
	}
	st.UptimeSec = time.Since(s.started).Seconds()
	return st
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if s.waitMinOffset(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot())
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if s.redirectToLeader(w, r) {
		return
	}
	s.Drain()
	wait := r.URL.Query().Get("wait")
	done := false
	if wait == "1" || wait == "true" {
		select {
		case <-s.drained:
			done = true
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, map[string]bool{"draining": true, "done": done})
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":   cli.Version,
		"go":        runtime.Version(),
		"scheduler": s.sched.Name(),
	})
}

// HealthDTO is the /healthz body. Status is "ok", "degraded" (durability
// debt or snapshot age over its configured ceiling — the daemon still
// serves, but an operator should look), "failing" (fatal engine error or
// invariant violation), or "fenced" (this leader was deposed by a
// successor epoch and is shutting down). Everything but "ok" answers 503
// so probes and load balancers eject the instance; the body says why.
type HealthDTO struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
	// Role is the replication role, "leader" or "follower".
	Role string `json:"role"`
	// ReplConnected and ReplLagBytes describe a follower's replication
	// stream: whether it is currently attached to its leader, and the
	// best-effort byte lag behind the leader's journal. A detached follower
	// reports degraded — it still serves (possibly stale) reads, but an
	// operator should look. Absent on leaders.
	ReplConnected *bool `json:"replConnected,omitempty"`
	ReplLagBytes  int64 `json:"replLagBytes,omitempty"`
	// JournalLag is the journal's current durability debt — records appended
	// since the last fsync — and LagMax its ceiling. Absent without -journal.
	JournalLag int `json:"journalLag,omitempty"`
	LagMax     int `json:"lagMax,omitempty"`
	// SnapshotAge is executed quanta since the last engine snapshot, AgeMax
	// its ceiling. Absent without -journal.
	SnapshotAge int `json:"snapshotAge,omitempty"`
	AgeMax      int `json:"ageMax,omitempty"`
	// Invariants is "ok", "violated", or "off" (no checker configured).
	Invariants string `json:"invariants"`
	// Reasons lists everything that pushed Status off "ok".
	Reasons []string `json:"reasons,omitempty"`
}

// health assembles the health verdict and its HTTP status.
func (s *Server) health() (HealthDTO, int) {
	s.mu.Lock()
	fatal := s.fatal
	j := s.journal
	age := s.eng.QuantaElapsed() - s.lastSnapQ
	s.mu.Unlock()

	dto := HealthDTO{
		Status: "ok", Invariants: "off", Draining: s.draining.Load(),
		Role: Role(s.role.Load()).String(),
	}
	if s.isFollower() {
		repl := s.replication()
		connected := repl.Tail != nil && repl.Tail.Connected
		dto.ReplConnected = &connected
		dto.ReplLagBytes = repl.LagBytes
		if !connected && !s.draining.Load() {
			dto.Status = "degraded"
			dto.Reasons = append(dto.Reasons, fmt.Sprintf(
				"replication stream detached from %s (lag %d bytes)",
				repl.Tail.Leader, repl.LagBytes))
		}
	}
	if s.checker != nil {
		dto.Invariants = "ok"
		if err := s.checker.Err(); err != nil {
			dto.Invariants = "violated"
			dto.Reasons = append(dto.Reasons, "invariant violated: "+err.Error())
		}
	}
	if fatal != nil {
		dto.Reasons = append(dto.Reasons, "fatal: "+fatal.Error())
	}
	if fatal != nil || dto.Invariants == "violated" {
		dto.Status = "failing"
	}
	if s.fenced.Load() {
		dto.Status = "fenced"
	}
	if j != nil {
		dto.JournalLag = j.Lag()
		dto.LagMax = s.cfg.JournalLagMax
		dto.SnapshotAge = age
		dto.AgeMax = s.cfg.SnapshotAgeMax
		if dto.Status == "ok" {
			if dto.JournalLag > dto.LagMax {
				dto.Status = "degraded"
				dto.Reasons = append(dto.Reasons, fmt.Sprintf(
					"journal lag %d records exceeds %d (unsynced durability debt)",
					dto.JournalLag, dto.LagMax))
			}
			if dto.SnapshotAge > dto.AgeMax {
				dto.Status = "degraded"
				dto.Reasons = append(dto.Reasons, fmt.Sprintf(
					"last snapshot %d quanta old exceeds %d (recovery replay growing)",
					dto.SnapshotAge, dto.AgeMax))
			}
		}
	}
	code := http.StatusOK
	if dto.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	return dto, code
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	dto, code := s.health()
	writeJSON(w, code, dto)
}

// handleEvents streams the instrumentation event feed as Server-Sent
// Events: every obs event of the live run as one `id:` + `data:` JSON
// frame. Event ids are monotonic and — because the counter rides in engine
// snapshots and the event stream is replay-deterministic — stable across a
// crash-restart. A client that reconnects with Last-Event-ID resumes from
// the bounded replay ring without loss; one whose position has been evicted
// receives an `event: resync` frame first and must refetch absolute state
// (GET /api/v1/state). The stream ends when the client disconnects or the
// server finishes draining.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorDTO{"streaming unsupported"})
		return
	}
	var afterID uint64
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("lastEventID")
	}
	if lastID != "" {
		v, err := strconv.ParseUint(lastID, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDTO{"bad Last-Event-ID: " + lastID})
			return
		}
		afterID = v
	}
	replay, ch, resync, unsubscribe := s.hub.subscribe(1024, afterID)
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: %d\n: abgd event stream (%s)\n\n",
		sseRetryHintMillis, s.sched.Name())
	flusher.Flush()
	if ch == nil { // hub already closed (drained)
		return
	}
	if resync {
		// The id accompanying the marker is the position just before the
		// replay (or the current head when nothing is replayable), so the
		// client's next reconnect carries on from what it actually saw.
		rid := s.hub.Seq()
		if len(replay) > 0 {
			rid = replay[0].id - 1
		}
		fmt.Fprintf(w, "id: %d\nevent: resync\ndata: {\"reason\":\"replay ring evicted, refetch /api/v1/state\"}\n\n", rid)
	}
	for _, m := range replay {
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", m.id, m.data); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case m, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", m.id, m.data); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// sseRetryHintMillis is the reconnect delay hint sent at stream start.
const sseRetryHintMillis = 1000
