package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"abg/internal/obs"
)

// scrape fetches /metrics, checks the exposition-format basics (content
// type, TYPE-before-samples, parseable sample values), and returns the
// samples keyed by full series name (labels included) plus the family types.
func scrape(t *testing.T, base string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	samples = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("duplicate TYPE for %q", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// A sample: name[{labels}] value. The value is the last field; the
		// name may contain spaces only inside label values, so split from
		// the right.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		name, val := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		family := name
		if j := strings.IndexByte(family, '{'); j >= 0 {
			family = family[:j]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(family, suffix)
			if base != family && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			t.Fatalf("sample %q precedes its TYPE line", line)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("duplicate series %q", name)
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return samples, types
}

// TestMetricsExposition boots a journaled daemon, runs jobs through it with
// an SSE subscriber attached, and checks that one /metrics scrape covers the
// engine, HTTP, SSE, journal, and snapshot families with sane values.
func TestMetricsExposition(t *testing.T) {
	_, base := startServer(t, Config{
		P: 16, L: 50, Clock: ClockVirtual, Scheduler: "abg",
		JournalDir: t.TempDir(), SnapshotEvery: 2,
	})

	// Hold an SSE subscription open so the subscriber gauge is non-zero.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/events", nil)
	sse, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /api/v1/events: %v", err)
	}
	defer sse.Body.Close()
	sc := bufio.NewScanner(sse.Body)
	if !sc.Scan() { // retry hint: subscription is registered
		t.Fatalf("no SSE preamble: %v", sc.Err())
	}

	c := NewClient(base)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(ctx, JobRequest{Kind: "fullPar", Width: 4, Quanta: 3}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitCompleted(t, base, 3)

	samples, types := scrape(t, base)

	// Engine families, via obs.AttachMetrics on the same registry.
	if samples["sim_jobs_completed_total"] != 3 {
		t.Fatalf("sim_jobs_completed_total = %v, want 3", samples["sim_jobs_completed_total"])
	}
	if samples["sim_quanta_total"] <= 0 || samples["sim_work_cycles_total"] <= 0 {
		t.Fatalf("engine counters missing: quanta=%v work=%v",
			samples["sim_quanta_total"], samples["sim_work_cycles_total"])
	}
	if types["sim_quantum_parallelism"] != "histogram" {
		t.Fatalf("sim_quantum_parallelism type = %q", types["sim_quantum_parallelism"])
	}

	// HTTP families: the three submissions all answered 202 on this route.
	post := `abgd_http_requests_total{code="202",method="POST",route="/api/v1/jobs"}`
	if samples[post] != 3 {
		t.Fatalf("%s = %v, want 3", post, samples[post])
	}
	if types["abgd_http_requests_total"] != "counter" {
		t.Fatalf("abgd_http_requests_total type = %q", types["abgd_http_requests_total"])
	}
	histCount := `abgd_http_request_seconds_count{route="/api/v1/jobs"}`
	if samples[histCount] < 3 {
		t.Fatalf("%s = %v, want >= 3", histCount, samples[histCount])
	}
	if samples[`abgd_http_request_seconds_bucket{route="/api/v1/jobs",le="+Inf"}`] != samples[histCount] {
		t.Fatal("+Inf bucket does not equal histogram count")
	}
	if samples["abgd_http_inflight_requests"] != 1 { // the scrape itself (SSE is /api/v1/events... also in flight)
		// Both the scrape and the open SSE stream are in flight.
		if samples["abgd_http_inflight_requests"] != 2 {
			t.Fatalf("abgd_http_inflight_requests = %v, want 1 or 2",
				samples["abgd_http_inflight_requests"])
		}
	}

	// SSE: one subscriber is connected right now.
	if samples["abgd_sse_subscribers"] != 1 {
		t.Fatalf("abgd_sse_subscribers = %v, want 1", samples["abgd_sse_subscribers"])
	}

	// Journal: header isn't counted (written before metrics attach), but the
	// three submits and their admits are, each fsynced under the default
	// "always" policy, leaving zero lag.
	if v := samples[`abgd_journal_appends_total{kind="submit"}`]; v != 3 {
		t.Fatalf(`appends{kind="submit"} = %v, want 3`, v)
	}
	if samples[`abgd_journal_appends_total{kind="admit"}`] <= 0 {
		t.Fatal("no admit records counted")
	}
	if samples["abgd_journal_append_bytes_total"] <= 0 || samples["abgd_journal_fsyncs_total"] <= 0 {
		t.Fatalf("journal byte/fsync counters missing: bytes=%v fsyncs=%v",
			samples["abgd_journal_append_bytes_total"], samples["abgd_journal_fsyncs_total"])
	}
	if samples["abgd_journal_lag_records"] != 0 {
		t.Fatalf("abgd_journal_lag_records = %v, want 0 under fsync=always",
			samples["abgd_journal_lag_records"])
	}
	if samples["abgd_snapshots_total"] <= 0 {
		t.Fatal("no snapshots counted despite SnapshotEvery=2")
	}
	if _, ok := samples["abgd_snapshot_age_quanta"]; !ok {
		t.Fatal("abgd_snapshot_age_quanta missing")
	}
	if samples["abgd_recovery_recovered"] != 0 {
		t.Fatal("fresh boot reported a recovery")
	}

	// Counters must be monotonic across scrapes.
	again, _ := scrape(t, base)
	for name, v := range samples {
		family := name
		if j := strings.IndexByte(family, '{'); j >= 0 {
			family = family[:j]
		}
		if types[family] == "counter" && again[name] < v {
			t.Fatalf("counter %s went backwards: %v -> %v", name, v, again[name])
		}
	}
}

// TestMetricsRejectionsAndStatePercentiles drives the admission queue into
// 429s and checks both the rejection counter and StateDTO's aggregate HTTP
// latency fields.
func TestMetricsRejectionsAndStatePercentiles(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockWall, Tick: time.Hour, QueueLimit: 4,
	})
	if code, _, _ := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1, Count: 4}); code != http.StatusAccepted {
		t.Fatal("fill failed")
	}
	if code, _, _ := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1}); code != http.StatusTooManyRequests {
		t.Fatal("overflow not rejected")
	}

	samples, _ := scrape(t, base)
	if samples["abgd_admission_rejected_total"] != 1 {
		t.Fatalf("abgd_admission_rejected_total = %v, want 1", samples["abgd_admission_rejected_total"])
	}
	if samples["abgd_admission_queue_depth"] != 4 {
		t.Fatalf("abgd_admission_queue_depth = %v, want 4", samples["abgd_admission_queue_depth"])
	}
	rej := `abgd_http_requests_total{code="429",method="POST",route="/api/v1/jobs"}`
	if samples[rej] != 1 {
		t.Fatalf("%s = %v, want 1", rej, samples[rej])
	}

	var st StateDTO
	getJSON(t, base+"/api/v1/state", &st)
	if st.HTTPRequests < 3 { // two submits + the scrape at minimum
		t.Fatalf("state.httpRequests = %d, want >= 3", st.HTTPRequests)
	}
	if st.HTTPLatencyP50Ms < 0 || st.HTTPLatencyP95Ms < st.HTTPLatencyP50Ms ||
		st.HTTPLatencyP99Ms < st.HTTPLatencyP95Ms {
		t.Fatalf("latency percentiles not ordered: p50=%v p95=%v p99=%v",
			st.HTTPLatencyP50Ms, st.HTTPLatencyP95Ms, st.HTTPLatencyP99Ms)
	}
}

// TestTimelineEndpoint covers the per-job introspection ring: executed
// quanta for a finished job, the queued fallback, and the error shapes.
func TestTimelineEndpoint(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockVirtual, Scheduler: "abg",
	})
	ctx := context.Background()
	c := NewClient(base)
	if _, err := c.Submit(ctx, JobRequest{Kind: "fullPar", Width: 4, Quanta: 3}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitCompleted(t, base, 1)

	tl, err := c.Timeline(ctx, 0)
	if err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	if tl.ID != 0 || tl.State != "done" || tl.Ring != 256 {
		t.Fatalf("timeline header = %+v", tl)
	}
	if len(tl.Samples) == 0 {
		t.Fatal("finished job has no timeline samples")
	}
	last := tl.Samples[len(tl.Samples)-1]
	if !last.Completed {
		t.Fatalf("last sample not marked completed: %+v", last)
	}
	for i, s := range tl.Samples {
		if s.Allotment <= 0 || s.Steps <= 0 {
			t.Fatalf("sample %d lacks execution data: %+v", i, s)
		}
		if i > 0 && s.Time <= tl.Samples[i-1].Time {
			t.Fatalf("samples not chronological at %d: %+v", i, tl.Samples)
		}
	}

	if code := getJSON(t, base+"/api/v1/jobs/99/timeline", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job timeline = %d, want 404", code)
	}
	if code := getJSON(t, base+"/api/v1/jobs/zzz/timeline", nil); code != http.StatusBadRequest {
		t.Fatalf("bad job id timeline = %d, want 400", code)
	}
}

// TestTimelineQueuedFallback: a job the engine has not admitted yet answers
// with its queued state and an empty sample list, not a 404.
func TestTimelineQueuedFallback(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockWall, Tick: time.Hour, QueueLimit: 4,
	})
	if code, _, _ := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1}); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	var tl TimelineDTO
	if code := getJSON(t, base+"/api/v1/jobs/0/timeline", &tl); code != http.StatusOK {
		t.Fatalf("queued timeline = %d, want 200", code)
	}
	if tl.State != "queued" || len(tl.Samples) != 0 {
		t.Fatalf("queued timeline = %+v", tl)
	}
}

// TestTraceEndToEnd follows a Client submission through the trace store:
// the ack echoes the generated id, and the finished trace holds the full
// lifecycle — submit, queued, per-quantum spans, completion — in both JSON
// and Perfetto form.
func TestTraceEndToEnd(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockVirtual, Scheduler: "abg",
	})
	ctx := context.Background()
	c := NewClient(base)
	ack, err := c.Submit(ctx, JobRequest{Kind: "fullPar", Width: 4, Quanta: 3, Count: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if ack.TraceID == "" {
		t.Fatal("ack does not echo a trace id")
	}
	waitCompleted(t, base, 2)

	tr, err := c.Trace(ctx, ack.TraceID)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if !reflect.DeepEqual(tr.Jobs, ack.IDs) || tr.Done != 2 || tr.Truncated {
		t.Fatalf("trace header = %+v, ids %v", tr, ack.IDs)
	}
	byName := map[string]int{}
	quanta := 0
	for _, sp := range tr.Spans {
		if strings.HasPrefix(sp.Name, "q") && sp.Cat == "quantum" {
			quanta++
			if sp.Dur <= 0 {
				t.Fatalf("quantum span has no duration: %+v", sp)
			}
			continue
		}
		byName[sp.Name]++
	}
	if byName["submit"] != 2 || byName["queued"] != 2 || byName["complete"] != 2 {
		t.Fatalf("lifecycle spans = %v (want 2 of each)", byName)
	}
	if quanta < 2 {
		t.Fatalf("only %d quantum spans", quanta)
	}

	// Perfetto form: a Chrome trace-event JSON object with one event per
	// span plus metadata records.
	resp, err := http.Get(base + "/api/v1/traces/" + ack.TraceID + "?format=perfetto")
	if err != nil {
		t.Fatalf("GET perfetto: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v\n%s", err, raw)
	}
	if len(doc.TraceEvents) < len(tr.Spans) {
		t.Fatalf("perfetto has %d events for %d spans", len(doc.TraceEvents), len(tr.Spans))
	}

	if code := getJSON(t, base+"/api/v1/traces/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", code)
	}
}

// TestHealthVerdicts exercises /healthz's ok, degraded (journal lag and
// snapshot age), and failing answers.
func TestHealthVerdicts(t *testing.T) {
	t.Run("ok", func(t *testing.T) {
		_, base := startServer(t, Config{
			P: 8, L: 50, Clock: ClockVirtual, JournalDir: t.TempDir(),
		})
		var h HealthDTO
		if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if h.Status != "ok" || h.LagMax != 1024 || h.AgeMax != 8*64 || len(h.Reasons) != 0 {
			t.Fatalf("health = %+v", h)
		}
		if h.Invariants != "off" { // no fault spec, no checker
			t.Fatalf("invariants = %q", h.Invariants)
		}
	})

	t.Run("degraded_journal_lag", func(t *testing.T) {
		_, base := startServer(t, Config{
			P: 8, L: 50, Clock: ClockWall, Tick: time.Hour, QueueLimit: 16,
			JournalDir: t.TempDir(), Fsync: "never", JournalLagMax: 2,
		})
		// Each submission appends one unsynced record; the hour tick means no
		// admit/snapshot interferes.
		for i := 0; i < 3; i++ {
			if code, _, _ := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1}); code != http.StatusAccepted {
				t.Fatal("submit failed")
			}
		}
		var h HealthDTO
		if code := getJSON(t, base+"/healthz", &h); code != http.StatusServiceUnavailable {
			t.Fatalf("healthz = %d, want 503", code)
		}
		if h.Status != "degraded" || h.JournalLag <= h.LagMax {
			t.Fatalf("health = %+v", h)
		}
		if len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "journal lag") {
			t.Fatalf("reasons = %v", h.Reasons)
		}
	})

	t.Run("degraded_snapshot_age", func(t *testing.T) {
		_, base := startServer(t, Config{
			P: 8, L: 50, Clock: ClockVirtual, JournalDir: t.TempDir(),
			SnapshotEvery: 10000, SnapshotAgeMax: 2,
		})
		if code, _, _ := postJobs(t, base, JobRequest{Kind: "fullPar", Width: 4, Quanta: 6}); code != http.StatusAccepted {
			t.Fatal("submit failed")
		}
		waitCompleted(t, base, 1)
		var h HealthDTO
		if code := getJSON(t, base+"/healthz", &h); code != http.StatusServiceUnavailable {
			t.Fatalf("healthz = %d, want 503", code)
		}
		if h.Status != "degraded" || h.SnapshotAge <= h.AgeMax {
			t.Fatalf("health = %+v", h)
		}
		if len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "snapshot") {
			t.Fatalf("reasons = %v", h.Reasons)
		}
	})

	t.Run("failing_fatal", func(t *testing.T) {
		s, base := startServer(t, Config{P: 8, L: 50, Clock: ClockVirtual})
		s.mu.Lock()
		s.fatal = io.ErrUnexpectedEOF
		s.mu.Unlock()
		var h HealthDTO
		if code := getJSON(t, base+"/healthz", &h); code != http.StatusServiceUnavailable {
			t.Fatalf("healthz = %d, want 503", code)
		}
		if h.Status != "failing" || len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "fatal") {
			t.Fatalf("health = %+v", h)
		}
		s.mu.Lock()
		s.fatal = nil // let the drain in t.Cleanup finish cleanly
		s.mu.Unlock()
	})

	t.Run("checker_on", func(t *testing.T) {
		_, base := startServer(t, Config{
			P: 8, L: 50, Clock: ClockVirtual, FaultSpec: "noise=0.1,seed=3",
		})
		var h HealthDTO
		if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if h.Invariants != "ok" {
			t.Fatalf("invariants = %q, want ok", h.Invariants)
		}
	})
}

// TestMetricsConcurrentWithStreamAndStepping hammers /metrics from several
// goroutines while jobs run, the SSE stream fans out, and state is polled —
// the scenario the race detector needs to see. Run under -race via check.sh.
func TestMetricsConcurrentWithStreamAndStepping(t *testing.T) {
	_, base := startServer(t, Config{
		P: 16, L: 50, Clock: ClockVirtual, Scheduler: "abg",
		JournalDir: t.TempDir(), SnapshotEvery: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() { // SSE consumer
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/events", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	c := NewClient(base)
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(ctx, JobRequest{Kind: "batch", Seed: uint64(i + 1), Count: 2}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitCompleted(t, base, 10)
	cancel()
	wg.Wait()

	samples, _ := scrape(t, base)
	if samples["sim_jobs_completed_total"] != 10 {
		t.Fatalf("sim_jobs_completed_total = %v, want 10", samples["sim_jobs_completed_total"])
	}
}

// TestObservabilityDoesNotPerturbRecovery runs the full instrumentation
// stack — shared metrics registry, traced submissions, SSE subscriber,
// timeline ring — over a crash and recovery, then checks the final per-job
// results are bit-identical to ReferenceResult's uninstrumented replay of
// the same journal.
func TestObservabilityDoesNotPerturbRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := crashCfg(dir, "restart=0.3,restartat=1,maxrestarts=2,seed=5")
	cfg.Metrics = obs.NewRegistry()
	cfg.SnapshotEvery = 2

	s1, base := startCrashable(t, cfg)
	ctx := context.Background()
	c := NewClient(base)
	for i := 0; i < 4; i++ {
		if _, err := c.Submit(ctx, JobRequest{
			Kind: "batch", Seed: uint64(100 + i), Key: "obs-key-" + strconv.Itoa(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitQuanta(t, s1, 3, 4)
	crash(t, s1)

	cfg.Metrics = obs.NewRegistry() // a restarted process starts fresh
	s2, base2 := startCrashable(t, cfg)
	var rec RecoveryDTO
	getJSON(t, base2+"/api/v1/recovery", &rec)
	if !rec.Recovered {
		t.Fatalf("did not recover: %+v", rec)
	}
	// Recovery gauges reflect the replay.
	got, _ := scrape(t, base2)
	if got["abgd_recovery_recovered"] != 1 || got["abgd_recovery_resumed_jobs"]+got["abgd_recovery_requeued_jobs"] != 4 {
		t.Fatalf("recovery gauges = recovered %v, resumed %v, requeued %v",
			got["abgd_recovery_recovered"], got["abgd_recovery_resumed_jobs"],
			got["abgd_recovery_requeued_jobs"])
	}
	c2 := NewClient(base2)
	for i := 4; i < 6; i++ {
		if _, err := c2.Submit(ctx, JobRequest{
			Kind: "batch", Seed: uint64(100 + i), Key: "obs-key-" + strconv.Itoa(i),
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s2.Drain()
	if err := s2.Wait(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	live := liveStatuses(s2)
	ref, err := ReferenceResult(dir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if len(live) != 6 || len(ref) != 6 {
		t.Fatalf("job counts: live %d, ref %d, want 6", len(live), len(ref))
	}
	for i := range ref {
		if !reflect.DeepEqual(live[i], ref[i]) {
			t.Errorf("job %d diverged:\n live %+v\n ref  %+v", i, live[i], ref[i])
		}
	}
}
