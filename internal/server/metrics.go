package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"abg/internal/obs"
	"abg/internal/obs/promexport"
	"abg/internal/persist"
)

// Server-layer metric families, exposed at GET /metrics in the Prometheus
// text format (internal/obs/promexport) alongside the engine's sim_*
// families fed by obs.AttachMetrics:
//
//	abgd_http_requests_total{route,method,code}  counter
//	abgd_http_request_seconds{route}             histogram (wall latency)
//	abgd_http_inflight_requests                  gauge
//	abgd_admission_queue_depth                   gauge   (sampled at scrape)
//	abgd_admission_rejected_total                counter (429 responses)
//	abgd_sse_subscribers                         gauge   (sampled at scrape)
//	abgd_sse_dropped_total                       counter (slow-client drops)
//	abgd_sse_ring_evictions_total                counter
//	abgd_journal_appends_total{kind}             counter
//	abgd_journal_append_bytes_total              counter
//	abgd_journal_append_seconds                  histogram
//	abgd_journal_fsyncs_total                    counter
//	abgd_journal_fsync_seconds                   histogram
//	abgd_journal_lag_records                     gauge   (sampled at scrape)
//	abgd_snapshot_age_quanta                     gauge   (sampled at scrape)
//	abgd_snapshots_total                         counter
//	abgd_leader_epoch                            gauge   (sampled at scrape)
//	abgd_recovery_*                              gauges  (set once at boot)
//
// Counters and histograms are updated at event time on their own paths;
// the sampled gauges are refreshed by sampleMetrics under the scrape so
// one exposition is self-consistent.

// httpBuckets span sub-millisecond state reads to multi-second drains.
var httpBuckets = obs.ExponentialBuckets(0.001, 4, 7)

// journalBuckets span page-cache writes (~10µs) to slow fsyncs (~1s).
var journalBuckets = obs.ExponentialBuckets(1e-5, 4, 9)

// serverMetrics bundles the daemon's pre-resolved metric handles. The
// registry itself may be shared (cmd/abgd passes obs.Default so /debug/vars
// sees the same numbers); handles are resolved once so hot paths never
// rebuild label strings.
type serverMetrics struct {
	reg *obs.Registry

	inflight   *obs.Gauge
	queueDepth *obs.Gauge
	rejected   *obs.Counter
	sseSubs    *obs.Gauge
	sseDropped *obs.Counter
	sseEvicted *obs.Counter
	lag        *obs.Gauge
	snapAge    *obs.Gauge
	snapshots  *obs.Counter
	epochG     *obs.Gauge

	// agg is the cross-route latency aggregate behind StateDTO's
	// httpLatencyP* fields. It lives in a private registry: /metrics
	// consumers aggregate the per-route histograms themselves.
	agg *obs.Histogram

	mu          sync.Mutex // guards the sampled deltas below
	droppedSeen int64
	evictedSeen int64
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &serverMetrics{
		reg:        reg,
		inflight:   reg.Gauge("abgd_http_inflight_requests"),
		queueDepth: reg.Gauge("abgd_admission_queue_depth"),
		rejected:   reg.Counter("abgd_admission_rejected_total"),
		sseSubs:    reg.Gauge("abgd_sse_subscribers"),
		sseDropped: reg.Counter("abgd_sse_dropped_total"),
		sseEvicted: reg.Counter("abgd_sse_ring_evictions_total"),
		lag:        reg.Gauge("abgd_journal_lag_records"),
		snapAge:    reg.Gauge("abgd_snapshot_age_quanta"),
		snapshots:  reg.Counter("abgd_snapshots_total"),
		epochG:     reg.Gauge("abgd_leader_epoch"),
		agg:        obs.NewRegistry().Histogram("http_all_seconds", httpBuckets),
	}
}

// recordRecovery publishes the boot-time recovery outcome as gauges.
func (m *serverMetrics) recordRecovery(rec RecoveryDTO) {
	set := func(name string, v int) { m.reg.Gauge(name).Set(int64(v)) }
	recovered := 0
	if rec.Recovered {
		recovered = 1
	}
	set("abgd_recovery_recovered", recovered)
	set("abgd_recovery_replayed_records", rec.ReplayedRecords)
	set("abgd_recovery_replayed_boundaries", rec.ReplayedBoundaries)
	set("abgd_recovery_resumed_jobs", rec.ResumedJobs)
	set("abgd_recovery_requeued_jobs", rec.RequeuedJobs)
}

// statusRecorder captures the response status for the request counter while
// passing Flush through, so the SSE handler keeps streaming when wrapped.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route's handler with the HTTP metric families. The
// route label is the registration pattern's path — bounded cardinality, not
// the raw URL.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics
	hist := m.reg.Histogram(
		promexport.Name("abgd_http_request_seconds", "route", route), httpBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		// Every response carries the serving epoch: group-aware clients use
		// it to detect (and refuse) answers from a deposed leader.
		w.Header().Set(EpochHeader, strconv.FormatUint(uint64(s.epoch.Load()), 10))
		h(rec, r)
		sec := time.Since(start).Seconds()
		m.inflight.Add(-1)
		code := rec.code
		if code == 0 { // handler wrote nothing: net/http sends 200
			code = http.StatusOK
		}
		m.reg.Counter(promexport.Name("abgd_http_requests_total",
			"route", route, "method", r.Method, "code", strconv.Itoa(code))).Inc()
		hist.Observe(sec)
		m.agg.Observe(sec)
	}
}

// journalMetrics adapts the registry onto persist.Metrics. Per-kind
// counters are resolved up front: Append runs on the submission hot path.
type journalMetrics struct {
	appends  map[byte]*obs.Counter
	unknown  *obs.Counter
	bytes    *obs.Counter
	writeSec *obs.Histogram
	fsyncs   *obs.Counter
	fsyncSec *obs.Histogram
}

func newJournalMetrics(reg *obs.Registry) *journalMetrics {
	jm := &journalMetrics{
		appends:  make(map[byte]*obs.Counter),
		unknown:  reg.Counter(promexport.Name("abgd_journal_appends_total", "kind", "unknown")),
		bytes:    reg.Counter("abgd_journal_append_bytes_total"),
		writeSec: reg.Histogram("abgd_journal_append_seconds", journalBuckets),
		fsyncs:   reg.Counter("abgd_journal_fsyncs_total"),
		fsyncSec: reg.Histogram("abgd_journal_fsync_seconds", journalBuckets),
	}
	for _, kind := range []byte{persist.KindHeader, persist.KindSubmit,
		persist.KindAdmit, persist.KindDrain, persist.KindSnapshot, persist.KindStep,
		persist.KindEpoch} {
		jm.appends[kind] = reg.Counter(
			promexport.Name("abgd_journal_appends_total", "kind", persist.KindName(kind)))
	}
	return jm
}

func (jm *journalMetrics) JournalAppend(kind byte, n int, d time.Duration) {
	c, ok := jm.appends[kind]
	if !ok {
		c = jm.unknown
	}
	c.Inc()
	jm.bytes.Add(int64(n))
	jm.writeSec.Observe(d.Seconds())
}

func (jm *journalMetrics) JournalSync(d time.Duration) {
	jm.fsyncs.Inc()
	jm.fsyncSec.Observe(d.Seconds())
}

// sampleMetrics refreshes the scrape-sampled gauges and folds the hub's
// atomic tallies into their counters.
func (s *Server) sampleMetrics() {
	m := s.metrics
	s.mu.Lock()
	m.queueDepth.Set(int64(len(s.queue)))
	m.snapAge.Set(int64(s.eng.QuantaElapsed() - s.lastSnapQ))
	j := s.journal
	s.mu.Unlock()
	if j != nil {
		m.lag.Set(int64(j.Lag()))
	}
	m.epochG.Set(int64(s.epoch.Load()))
	m.sseSubs.Set(s.hub.n.Load())
	m.mu.Lock()
	if d := s.hub.dropped.Load(); d > m.droppedSeen {
		m.sseDropped.Add(d - m.droppedSeen)
		m.droppedSeen = d
	}
	if e := s.hub.evicted.Load(); e > m.evictedSeen {
		m.sseEvicted.Add(e - m.evictedSeen)
		m.evictedSeen = e
	}
	m.mu.Unlock()
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.sampleMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = promexport.Write(w, s.metrics.reg)
}
