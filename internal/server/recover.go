package server

import (
	"fmt"
	"math"
	"net/http"
	"path/filepath"

	"abg/internal/alloc"
	"abg/internal/core"
	"abg/internal/fault"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/persist"
	"abg/internal/sim"
)

// Crash recovery. The journal records every externally-sourced decision
// (see journal.go); the engine is bit-identically replay-deterministic; so
// recovery is: restore the last snapshot, re-submit the jobs admitted after
// it with their journaled admission boundaries pinned as releases, replay
// the engine across those boundaries (which re-emits the same events under
// the same SSE ids), and re-queue acked-but-unadmitted submissions. The
// daemon then resumes as if the crash were a pause: same job ids, same
// completion times, same event stream.

// RecoveryDTO is served at /api/v1/recovery: what the boot-time recovery
// found and did, plus the live snapshot counters.
type RecoveryDTO struct {
	// Recovered reports that the daemon restored state from a non-empty
	// journal (false on a fresh journal or without -journal).
	Recovered bool `json:"recovered"`
	// JournalPath is the journal file in use, empty when persistence is off.
	JournalPath string `json:"journalPath,omitempty"`
	// Records is the number of clean records scanned at boot.
	Records int `json:"records"`
	// TruncatedBytes is the length of the torn tail discarded at boot.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// SnapshotQuantum and SnapshotBoundary locate the restored snapshot
	// (zero when recovery replayed from the journal's beginning).
	SnapshotQuantum  int `json:"snapshotQuantum"`
	SnapshotBoundary int `json:"snapshotBoundary"`
	// ReplayedRecords counts the journal records applied after the restored
	// snapshot; ReplayedBoundaries the engine steps re-executed from them.
	ReplayedRecords    int `json:"replayedRecords"`
	ReplayedBoundaries int `json:"replayedBoundaries"`
	// ResumedJobs is the number of jobs live in the restored engine;
	// RequeuedJobs the acked submissions put back on the admission queue.
	ResumedJobs  int `json:"resumedJobs"`
	RequeuedJobs int `json:"requeuedJobs"`
	// Snapshots and LastSnapshotQuantum track snapshot writes since boot.
	Snapshots           int `json:"snapshots"`
	LastSnapshotQuantum int `json:"lastSnapshotQuantum"`
}

func (s *Server) handleRecovery(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	dto := s.recovery
	dto.Snapshots = s.snapshotCount
	dto.LastSnapshotQuantum = s.lastSnapQ
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, dto)
}

// openJournal opens (or creates) the journal, truncates any torn tail, and
// recovers the daemon's state from the clean records. Called from New
// before the daemon starts serving; everything here is single-threaded.
func (s *Server) openJournal() error {
	policy, _ := persist.ParseSyncPolicy(s.cfg.Fsync) // validated in normalize
	j, scan, err := persist.Open(s.cfg.JournalDir, policy)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.journal = j
	s.recovery.JournalPath = j.Path()
	s.recovery.Records = len(scan.Records)
	s.recovery.TruncatedBytes = scan.TruncatedBytes
	if scan.TruncatedBytes > 0 {
		s.log.Warn("journal tail truncated",
			"bytes", scan.TruncatedBytes, "cleanRecords", len(scan.Records))
	}
	if len(scan.Records) == 0 {
		if s.isFollower() {
			// A fresh follower journal stays empty: its first record will
			// be the leader's header, shipped over the stream, keeping the
			// file a byte prefix of the leader's journal.
			return nil
		}
		// Fresh journal: stamp it with this daemon's configuration.
		if err := j.Append(persist.KindHeader, encodeHeader(s.headerRecord())); err != nil {
			return fmt.Errorf("server: journal header: %w", err)
		}
		return nil
	}
	if err := s.recoverRecords(scan.Records); err != nil {
		return fmt.Errorf("server: recover %s: %w", j.Path(), err)
	}
	s.recovery.Recovered = true
	s.log.Info("recovered from journal",
		"records", len(scan.Records),
		"snapshotQuantum", s.recovery.SnapshotQuantum,
		"replayedBoundaries", s.recovery.ReplayedBoundaries,
		"resumedJobs", s.recovery.ResumedJobs,
		"requeuedJobs", s.recovery.RequeuedJobs,
		"truncatedBytes", s.recovery.TruncatedBytes)
	return nil
}

// journalLog is the decoded, cross-checked content of a journal.
type journalLog struct {
	header   headerRecord
	submits  []submitRecord
	admits   []admitRecord // in journal order; ids ascend across records
	admitted map[int]int   // job id → admission boundary
	// snap is the last snapshot, with snapAdmits the number of jobs
	// admitted before it (== the job count inside the engine blob).
	snap        *snapshotRecord
	snapAdmits  int
	snapRecords int // records up to and including the snapshot
	// maxStep is the highest journaled step boundary (-1 when the journal
	// predates step records): the engine provably executed every boundary up
	// to and including it, so recovery replays that far even past the last
	// admission, landing on the exact state the writer held.
	maxStep int
	// shares maps step boundaries to the cluster-assigned capacity shares
	// their quanta executed under (cluster-shard journals only; see
	// stepRecord). Recovery must install them before replaying.
	shares  map[int]int
	drained bool
	nextID  int
}

// parseJournal decodes and sanity-checks a clean record stream.
func parseJournal(records []persist.Record) (*journalLog, error) {
	if records[0].Kind != persist.KindHeader {
		return nil, fmt.Errorf("journal does not start with a header record (kind %d)", records[0].Kind)
	}
	h, err := decodeHeader(records[0].Body)
	if err != nil {
		return nil, err
	}
	lg := &journalLog{header: h, admitted: make(map[int]int), maxStep: -1}
	for i, rec := range records[1:] {
		switch rec.Kind {
		case persist.KindHeader:
			return nil, fmt.Errorf("record %d: duplicate header", i+1)
		case persist.KindSubmit:
			sub, err := decodeSubmit(rec.Body)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			if sub.firstID != lg.nextID {
				return nil, fmt.Errorf("record %d: submit ids start at %d, expected %d",
					i+1, sub.firstID, lg.nextID)
			}
			lg.nextID = sub.firstID + sub.count
			lg.submits = append(lg.submits, sub)
		case persist.KindAdmit:
			adm, err := decodeAdmit(rec.Body)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			for _, id := range adm.ids {
				// Admission order is id order — the engine assigns dense ids
				// and the server enforces the match, so the journal must too.
				if id != len(lg.admitted) {
					return nil, fmt.Errorf("record %d: admit id %d out of order (expected %d)",
						i+1, id, len(lg.admitted))
				}
				if id >= lg.nextID {
					return nil, fmt.Errorf("record %d: admit id %d was never submitted", i+1, id)
				}
				lg.admitted[id] = adm.boundary
			}
			lg.admits = append(lg.admits, adm)
		case persist.KindDrain:
			lg.drained = true
		case persist.KindStep:
			st, err := decodeStep(rec.Body)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			if st.boundary < lg.maxStep {
				return nil, fmt.Errorf("record %d: step boundary %d below previous %d",
					i+1, st.boundary, lg.maxStep)
			}
			lg.maxStep = st.boundary
			if st.share >= 0 {
				if lg.shares == nil {
					lg.shares = make(map[int]int)
				}
				lg.shares[st.boundary] = st.share
			}
		case persist.KindSnapshot:
			snap, err := decodeSnapshot(rec.Body)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			lg.snap = &snap
			lg.snapAdmits = len(lg.admitted)
			lg.snapRecords = i + 2 // header + records[0..i]
		case persist.KindEpoch:
			// A leadership change. The scheduling replay ignores it (an epoch
			// record mutates no engine state), but the cross-check against the
			// framing epoch still catches a corrupted promotion.
			ep, err := decodeEpoch(rec.Body)
			if err != nil {
				return nil, fmt.Errorf("record %d: %w", i+1, err)
			}
			if ep.epoch != rec.Epoch {
				return nil, fmt.Errorf("record %d: epoch record body says %d, framing says %d",
					i+1, ep.epoch, rec.Epoch)
			}
		default:
			return nil, fmt.Errorf("record %d: unknown kind %d", i+1, rec.Kind)
		}
	}
	return lg, nil
}

// submitFor resolves a job id to its submission record and the job's index
// within that request.
func (lg *journalLog) submitFor(id int) (submitRecord, int, error) {
	return submitIn(lg.submits, id)
}

// replaySpec rebuilds the engine-facing JobSpec for one journaled job —
// the same construction the live admission path performs, pinned to the
// journaled admission boundary via Release.
func replaySpec(sub submitRecord, idx, id, l int, release int64,
	plan fault.Plan, scheduler core.Scheduler, bus *obs.Bus) sim.JobSpec {
	profile := sub.req.BuildProfile(idx, l)
	spec := sim.JobSpec{
		Name:    sub.req.jobName(idx, id),
		Inst:    job.NewRun(profile),
		Policy:  plan.Policy(scheduler.NewPolicy(), id, bus),
		Sched:   scheduler.TaskScheduler(),
		Release: release,
	}
	if at := plan.RestartHook(id); at != nil {
		p := profile
		spec.Restart = &sim.RestartPlan{
			At:  at,
			New: func() job.Instance { return job.NewRun(p) },
			Max: plan.MaxRestarts,
		}
	}
	return spec
}

// recoverRecords rebuilds the daemon's state from a parsed journal.
func (s *Server) recoverRecords(records []persist.Record) error {
	lg, err := parseJournal(records)
	if err != nil {
		return err
	}
	if got, want := lg.header, s.headerRecord(); got != want {
		return fmt.Errorf("journal written under a different configuration:\n  journal: %+v\n  daemon:  %+v",
			got, want)
	}
	// Cluster-shard journals pin each executed quantum's capacity share;
	// those shares must be back in the table before any boundary replays,
	// or the replay would run under the wrong machine size.
	if len(lg.shares) > 0 {
		t, ok := s.capacity.(*ShareTable)
		if !ok {
			return fmt.Errorf("journal carries cluster capacity shares; boot it behind the cluster layer (abgd -cluster)")
		}
		for b, share := range lg.shares {
			t.Set(b+1, share)
		}
	}
	l64 := int64(s.cfg.L)

	// 1. Restore the snapshot, if any: rebuild a fresh spec for every job
	// the snapshotted engine held (ids 0..snapAdmits-1) and load the
	// cursors onto them.
	if lg.snap != nil {
		specs := make([]sim.JobSpec, lg.snapAdmits)
		for id := 0; id < lg.snapAdmits; id++ {
			sub, idx, err := lg.submitFor(id)
			if err != nil {
				return err
			}
			specs[id] = replaySpec(sub, idx, id, s.cfg.L,
				int64(lg.admitted[id])*l64, s.plan, s.sched, s.bus)
		}
		eng, err := sim.RestoreEngine(sim.MultiConfig{
			P: s.cfg.P, L: s.cfg.L,
			Allocator: alloc.DynamicEquiPartition{},
			MaxQuanta: s.cfg.MaxQuanta,
			Obs:       s.bus,
			Capacity:  s.capacity,
			// The ring is observational and excluded from snapshots; the
			// recovered engine records samples for the quanta it replays.
			TimelineRing: s.cfg.TimelineRing,
			StepWorkers:  s.cfg.StepWorkers,
		}, lg.snap.engine, specs)
		if err != nil {
			return err
		}
		s.eng = eng
		s.hub.setSeq(lg.snap.sseSeq)
		s.lastSnapQ = lg.snap.quanta
		s.lastSnapSeq = lg.snap.sseSeq
		s.recovery.SnapshotQuantum = lg.snap.quanta
		s.recovery.SnapshotBoundary = lg.snap.boundary
		s.recovery.ReplayedRecords = len(records) - lg.snapRecords
	} else {
		s.recovery.ReplayedRecords = len(records) - 1 // everything after the header
	}

	// 2. Prime the invariant checker with the restored jobs' mid-run state:
	// it never saw the pre-snapshot events, so deprivation and attempt-work
	// accounting must be seeded, not inferred.
	if s.checker != nil {
		for id, rs := range s.eng.ResumeStates() {
			if rs.Started && !rs.Done {
				s.checker.Resume(id, rs.Deprived, rs.AttemptWork)
			}
		}
	}

	// 3. Re-submit the jobs admitted after the snapshot. Release pins each
	// job to its journaled admission boundary, so the replay below admits
	// it exactly where the crashed run did.
	maxBoundary := -1
	for id := s.eng.NumJobs(); id < len(lg.admitted); id++ {
		sub, idx, err := lg.submitFor(id)
		if err != nil {
			return err
		}
		b := lg.admitted[id]
		got, err := s.eng.Submit(replaySpec(sub, idx, id, s.cfg.L,
			int64(b)*l64, s.plan, s.sched, s.bus))
		if err != nil {
			return err
		}
		if got != id {
			return fmt.Errorf("replay id skew: engine assigned %d, journal has %d", got, id)
		}
		if b > maxBoundary {
			maxBoundary = b
		}
	}

	// 4. Replay the engine across the journaled boundaries. The re-executed
	// quanta re-emit the original events under the original SSE ids —
	// determinism makes the replay indistinguishable from the run it
	// reconstructs. Step records extend the replay past the last admission
	// to the last quantum the writer provably executed; on journals that
	// predate step records (maxStep == -1) any further quanta replay
	// themselves after boot, the same way.
	if lg.maxStep > maxBoundary {
		maxBoundary = lg.maxStep
	}
	for s.eng.Boundary() <= maxBoundary {
		if _, err := s.eng.Step(); err != nil {
			return fmt.Errorf("replay boundary %d: %w", s.eng.Boundary(), err)
		}
		s.recovery.ReplayedBoundaries++
	}
	if t, ok := s.capacity.(*ShareTable); ok {
		t.PruneBelow(s.eng.Boundary())
	}
	s.recovery.ResumedJobs = s.eng.NumJobs()

	// 5. Re-queue acked submissions that were never admitted, and restore
	// the idempotency-key table so retried submissions keep deduplicating.
	for _, sub := range lg.submits {
		ids := make([]int, sub.count)
		for i := range ids {
			ids[i] = sub.firstID + i
		}
		if sub.key != "" {
			s.keys[sub.key] = ids
		}
		for i, id := range ids {
			if _, admitted := lg.admitted[id]; !admitted {
				s.queue = append(s.queue, pendingJob{
					id:      id,
					name:    sub.req.jobName(i, id),
					profile: sub.req.BuildProfile(i, s.cfg.L),
				})
				s.recovery.RequeuedJobs++
			}
		}
	}
	s.nextID = lg.nextID

	// 6. A journaled drain survives the crash: finish it.
	if lg.drained {
		s.draining.Store(true)
	}

	// 7. A follower keeps the parsed submit/admit bookkeeping: the live
	// stream continues applying records incrementally from exactly here.
	if s.isFollower() {
		s.repl = replState{
			headerSeen: true,
			submits:    lg.submits,
			admitted:   len(lg.admitted),
			maxStep:    lg.maxStep,
		}
	}
	return nil
}

// ReferenceResult replays a journal offline, from boundary zero and without
// any snapshot, and returns the final status of every admitted job. It is
// the crash soak's ground truth: a daemon that crash-recovered any number
// of times must report job results DeepEqual to this uninterrupted
// reference, because both are the same deterministic function of the same
// journal. The configuration is taken from the journal's header record.
func ReferenceResult(dir string) ([]JobStatusDTO, error) {
	scan, err := persist.ScanFile(filepath.Join(dir, persist.JournalFile))
	if err != nil {
		return nil, fmt.Errorf("server: reference: %w", err)
	}
	if len(scan.Records) == 0 {
		return nil, fmt.Errorf("server: reference: empty journal in %s", dir)
	}
	lg, err := parseJournal(scan.Records)
	if err != nil {
		return nil, fmt.Errorf("server: reference: %w", err)
	}
	h := lg.header
	plan, err := fault.ParseSpec(h.faultSpec, h.p)
	if err != nil {
		return nil, fmt.Errorf("server: reference: %w", err)
	}
	var scheduler core.Scheduler
	if h.scheduler == "abg" {
		scheduler = core.NewABG(h.r)
	} else {
		scheduler = core.NewAGreedy(h.rho, h.delta)
	}
	capacity := plan.Capacity
	if len(lg.shares) > 0 {
		// A cluster shard's journal: replay each quantum under the share the
		// cluster pinned for it, exactly as the shard executed it.
		t := NewShareTable(h.p, plan.Capacity)
		for b, share := range lg.shares {
			t.Set(b+1, share)
		}
		capacity = t
	}
	eng, err := sim.NewEngine(sim.MultiConfig{
		P: h.p, L: h.l,
		Allocator: alloc.DynamicEquiPartition{},
		MaxQuanta: math.MaxInt - 1,
		Capacity:  capacity,
	})
	if err != nil {
		return nil, err
	}
	for id := 0; id < len(lg.admitted); id++ {
		sub, idx, err := lg.submitFor(id)
		if err != nil {
			return nil, fmt.Errorf("server: reference: %w", err)
		}
		got, err := eng.Submit(replaySpec(sub, idx, id, h.l,
			int64(lg.admitted[id])*int64(h.l), plan, scheduler, nil))
		if err != nil {
			return nil, err
		}
		if got != id {
			return nil, fmt.Errorf("server: reference: id skew at job %d", id)
		}
	}
	for !eng.Done() {
		if _, err := eng.Step(); err != nil {
			return nil, fmt.Errorf("server: reference: %w", err)
		}
	}
	sts := eng.Statuses()
	out := make([]JobStatusDTO, len(sts))
	for i, st := range sts {
		out[i] = statusDTO(st)
	}
	return out, nil
}
