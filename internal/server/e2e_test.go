package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"abg/internal/alloc"
	"abg/internal/core"
	"abg/internal/job"
	"abg/internal/sim"
)

// TestE2EVirtualMatchesBatch is the end-to-end correctness smoke: a batch of
// jobs submitted to a live virtual-clock daemon must finish with exactly the
// response times the batch simulator computes for the same job set. All jobs
// of one request are admitted at the same boundary T0, and with a stateless
// allocator and no capacity model the engine is shift-invariant in time, so
// the daemon's outcome at release T0 equals the batch outcome at release 0.
func TestE2EVirtualMatchesBatch(t *testing.T) {
	const (
		jobs = 8
		p    = 16
		l    = 100
		seed = 42
	)
	_, base := startServer(t, Config{P: p, L: l, Clock: ClockVirtual, Scheduler: "abg"})

	req := JobRequest{Kind: "batch", Count: jobs, Seed: seed, CL: 20, Shrink: 4}
	if code, ack, _ := postJobs(t, base, req); code != http.StatusAccepted || len(ack.IDs) != jobs {
		t.Fatalf("submit failed: %d %v", code, ack)
	}
	resp, err := http.Post(base+"/api/v1/drain?wait=1", "", nil)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp.Body.Close()

	var live []JobStatusDTO
	getJSON(t, base+"/api/v1/jobs", &live)
	if len(live) != jobs {
		t.Fatalf("daemon has %d jobs, want %d", len(live), jobs)
	}
	t0 := live[0].Release

	// Replay the same workload in the batch simulator: BuildProfile is
	// deterministic in (seed, i), and the server defaults match.
	if err := (&req).Normalize(); err != nil {
		t.Fatal(err)
	}
	scheduler := core.NewABG(0.2)
	specs := make([]sim.JobSpec, jobs)
	for i := range specs {
		specs[i] = sim.JobSpec{
			Name:    fmt.Sprintf("job%d", i),
			Inst:    job.NewRun(req.BuildProfile(i, l)),
			Policy:  scheduler.NewPolicy(),
			Sched:   scheduler.TaskScheduler(),
			Release: 0,
		}
	}
	batch, err := sim.RunMulti(specs, sim.MultiConfig{
		P: p, L: l, Allocator: alloc.DynamicEquiPartition{},
	})
	if err != nil {
		t.Fatal(err)
	}

	var liveMakespan int64
	for i, j := range live {
		if j.State != "done" {
			t.Fatalf("job %d not done: %+v", i, j)
		}
		if j.Release != t0 {
			t.Fatalf("job %d released at %d, want common boundary %d", i, j.Release, t0)
		}
		b := batch.Jobs[i]
		if j.Response != b.Response || j.Work != b.Work || j.NumQuanta != b.NumQuanta ||
			j.Waste != b.Waste || j.DeprivedQuanta != b.DeprivedQ {
			t.Fatalf("job %d diverges from batch run:\n live %+v\nbatch %+v", i, j, b)
		}
		if c := j.Completion - t0; c > liveMakespan {
			liveMakespan = c
		}
	}
	if liveMakespan != batch.Makespan {
		t.Fatalf("live makespan %d (origin %d) != batch makespan %d", liveMakespan, t0, batch.Makespan)
	}
	var st StateDTO
	getJSON(t, base+"/api/v1/state", &st)
	if st.TotalWaste != batch.TotalWaste {
		t.Fatalf("live total waste %d != batch %d", st.TotalWaste, batch.TotalWaste)
	}
}

// TestE2EDaemonBinary exercises the real binary end to end: build cmd/abgd,
// start it on a random port, submit work over HTTP, then SIGTERM it and
// require a clean graceful drain (exit code 0).
func TestE2EDaemonBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary build")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "abgd")
	build := exec.Command(goBin, "build", "-o", bin, "abg/cmd/abgd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin,
		"-addr", "127.0.0.1:0", "-clock", "virtual", "-P", "16", "-L", "100")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start abgd: %v", err)
	}

	// The daemon announces its bound address on stderr.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, addr, ok := strings.Cut(sc.Text(), "listening on "); ok {
			base = strings.TrimSpace(addr)
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatalf("no listening line on stderr (err %v)", sc.Err())
	}
	go func() { // drain remaining stderr so the daemon never blocks on it
		for sc.Scan() {
		}
	}()

	body, _ := json.Marshal(JobRequest{Kind: "batch", Count: 4, Seed: 7})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		cmd.Process.Kill()
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// Graceful shutdown on SIGTERM: accepted jobs drain, exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("abgd did not exit cleanly after SIGTERM: %v", err)
	}
}

// moduleRoot locates the repository root (where go.mod lives) so the binary
// build runs in module mode regardless of the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not in a Go module")
	}
	return filepath.Dir(gomod)
}
