package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer boots a server on a random loopback port and returns it plus
// its base URL. The context is cancelled (triggering a drain) at test end.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		cancel()
		if err := s.Wait(); err != nil {
			t.Errorf("Wait: %v", err)
		}
	})
	return s, "http://" + s.Addr()
}

// postJobs submits a JobRequest and returns status code and decoded body.
func postJobs(t *testing.T, base string, req JobRequest) (int, SubmitResponse, errorDTO) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var ok SubmitResponse
	var bad errorDTO
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("bad ack body %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("bad error body %q: %v", raw, err)
	}
	return resp.StatusCode, ok, bad
}

// getJSON decodes a GET endpoint into out and returns the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitCompleted polls /api/v1/state until n jobs completed or the deadline
// passes.
func waitCompleted(t *testing.T, base string, n int) StateDTO {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st StateDTO
	for time.Now().Before(deadline) {
		getJSON(t, base+"/api/v1/state", &st)
		if st.Completed >= n {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d completions; state %+v", n, st)
	return st
}

func TestSubmitRunsToCompletion(t *testing.T) {
	_, base := startServer(t, Config{
		P: 16, L: 50, Clock: ClockVirtual, Scheduler: "abg",
	})

	code, ack, _ := postJobs(t, base, JobRequest{
		Name: "lifecycle", Kind: "fullPar", Width: 8, Quanta: 3, Count: 3,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if len(ack.IDs) != 3 || ack.IDs[0] != 0 || ack.IDs[2] != 2 {
		t.Fatalf("ids = %v, want [0 1 2]", ack.IDs)
	}

	st := waitCompleted(t, base, 3)
	if st.Submitted != 3 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("state after completion: %+v", st)
	}
	if st.Scheduler == "" || st.Version == "" || st.Clock != "virtual" {
		t.Fatalf("state metadata missing: %+v", st)
	}

	var dto JobStatusDTO
	if code := getJSON(t, base+"/api/v1/jobs/1", &dto); code != http.StatusOK {
		t.Fatalf("GET job 1 = %d", code)
	}
	if dto.State != "done" || dto.Name != "lifecycle-1" {
		t.Fatalf("job 1 = %+v", dto)
	}
	if dto.Work <= 0 || dto.Response <= 0 || dto.NumQuanta <= 0 {
		t.Fatalf("job 1 missing metrics: %+v", dto)
	}
	// Lifecycle history must bracket the run: admitted first, completed last.
	if len(dto.History) < 2 ||
		dto.History[0].Event != "job_admitted" ||
		dto.History[len(dto.History)-1].Event != "job_completed" {
		t.Fatalf("job 1 history = %+v", dto.History)
	}

	var all []JobStatusDTO
	getJSON(t, base+"/api/v1/jobs", &all)
	if len(all) != 3 {
		t.Fatalf("job list has %d entries, want 3", len(all))
	}

	if code := getJSON(t, base+"/api/v1/jobs/99", nil); code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d, want 404", code)
	}
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var ver map[string]string
	getJSON(t, base+"/api/v1/version", &ver)
	if ver["version"] == "" || ver["scheduler"] == "" {
		t.Fatalf("version = %v", ver)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, base := startServer(t, Config{P: 8, L: 50, Clock: ClockVirtual})
	code, _, bad := postJobs(t, base, JobRequest{Kind: "nope"})
	if code != http.StatusBadRequest || !strings.Contains(bad.Error, "unknown kind") {
		t.Fatalf("bad kind: status %d, err %q", code, bad.Error)
	}
	code, _, _ = postJobs(t, base, JobRequest{Kind: "fullpar", Width: 1 << 20})
	if code != http.StatusBadRequest {
		t.Fatalf("oversized width: status %d, want 400", code)
	}
}

func TestBackpressure429(t *testing.T) {
	// A wall clock with an hour-long tick never reaches a boundary during
	// the test, so the admission queue only empties at drain.
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockWall, Tick: time.Hour, QueueLimit: 4,
	})
	code, ack, _ := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1, Count: 4})
	if code != http.StatusAccepted || ack.Queued != 4 {
		t.Fatalf("fill: status %d ack %+v", code, ack)
	}
	code, _, bad := postJobs(t, base, JobRequest{Kind: "serial", Quanta: 1})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d (%q), want 429", code, bad.Error)
	}
	// Queued jobs are visible with state "queued" before admission.
	var dto JobStatusDTO
	getJSON(t, base+"/api/v1/jobs/2", &dto)
	if dto.State != "queued" {
		t.Fatalf("job 2 state = %q, want queued", dto.State)
	}
	// Drain must still run the queued jobs to completion (t.Cleanup checks
	// Wait() == nil; completion is asserted via the drain handler).
	resp, err := http.Post(base+"/api/v1/drain?wait=1", "", nil)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	var dr map[string]bool
	json.NewDecoder(resp.Body).Decode(&dr)
	resp.Body.Close()
	if !dr["draining"] || !dr["done"] {
		t.Fatalf("drain response = %v", dr)
	}
	var st StateDTO
	getJSON(t, base+"/api/v1/state", &st)
	if st.Completed != 4 || st.Queued != 0 || !st.Draining {
		t.Fatalf("state after drain = %+v", st)
	}
}

func TestDrainClosesAdmission(t *testing.T) {
	s, base := startServer(t, Config{P: 8, L: 50, Clock: ClockVirtual})
	s.Drain()
	code, _, bad := postJobs(t, base, JobRequest{Kind: "serial"})
	if code != http.StatusServiceUnavailable || !strings.Contains(bad.Error, "draining") {
		t.Fatalf("submit while draining: status %d err %q", code, bad.Error)
	}
}

func TestSSEStreamsEvents(t *testing.T) {
	_, base := startServer(t, Config{P: 8, L: 50, Clock: ClockVirtual})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /api/v1/events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	// The handler opens with a reconnect hint and a comment line; once they
	// arrive the subscription is live and no submission events can be missed.
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "retry: ") {
		t.Fatalf("no SSE retry hint: %q (err %v)", sc.Text(), sc.Err())
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("no SSE preamble: %q (err %v)", sc.Text(), sc.Err())
	}

	if code, _, _ := postJobs(t, base, JobRequest{Kind: "fullPar", Width: 4, Quanta: 2}); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	kinds := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev eventDTO
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		kinds[ev.Kind] = true
		if ev.Kind == "job_completed" {
			break
		}
	}
	for _, want := range []string{"job_admitted", "request", "allotment", "quantum_end", "job_completed"} {
		if !kinds[want] {
			t.Fatalf("SSE stream missing %q; saw %v", want, kinds)
		}
	}
}

func TestFaultSpecWiresCheckerAndRestarts(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 50, Clock: ClockVirtual,
		FaultSpec: "restartat=1,maxrestarts=1,seed=7",
	})
	if code, _, _ := postJobs(t, base, JobRequest{Kind: "fullPar", Width: 4, Quanta: 3}); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	waitCompleted(t, base, 1)
	var dto JobStatusDTO
	getJSON(t, base+"/api/v1/jobs/0", &dto)
	if dto.Restarts != 1 || dto.LostWork <= 0 {
		t.Fatalf("restart not injected: %+v", dto)
	}
	var found bool
	for _, h := range dto.History {
		if h.Event == "job_restarted" {
			found = true
		}
	}
	if !found {
		t.Fatalf("history missing job_restarted: %+v", dto.History)
	}
	var st StateDTO
	getJSON(t, base+"/api/v1/state", &st)
	if st.Fault == "" {
		t.Fatalf("state does not report fault plan: %+v", st)
	}
	if st.Error != "" {
		t.Fatalf("invariant checker tripped: %s", st.Error)
	}
}

func TestWallClockAdvancesIdleTime(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 100, Clock: ClockWall, Tick: time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	var st StateDTO
	for time.Now().Before(deadline) {
		getJSON(t, base+"/api/v1/state", &st)
		if st.Now >= 300 {
			return // idle boundaries are advancing simulated time
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("wall clock did not advance: %+v", st)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Scheduler: "lifo"},
		{Clock: "sundial"},
		{P: -1},
		{FaultSpec: "bogus=1"},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestJobNameAndProfileFamilies(t *testing.T) {
	l := 50
	for _, kind := range []string{"fullPar", "serial", "batch", "adversarial"} {
		req := JobRequest{Kind: kind, Width: 8, Quanta: 4, Seed: 3}
		if err := req.Normalize(); err != nil {
			t.Fatalf("normalize(%s): %v", kind, err)
		}
		p := req.BuildProfile(0, l)
		if p.Work() <= 0 || p.CriticalPathLen() <= 0 {
			t.Fatalf("%s: empty profile", kind)
		}
		if kind == "serial" && p.MaxWidth() != 1 {
			t.Fatalf("serial profile has width %d", p.MaxWidth())
		}
		if kind == "adversarial" && p.MaxWidth() != 8 {
			t.Fatalf("adversarial profile has width %d", p.MaxWidth())
		}
	}
	// Batch profiles must replay identically for the same seed — the
	// property the e2e smoke's makespan comparison rests on.
	req := JobRequest{Kind: "batch", Seed: 9}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	a, b := req.BuildProfile(2, l), req.BuildProfile(2, l)
	if a.Work() != b.Work() || a.CriticalPathLen() != b.CriticalPathLen() {
		t.Fatal("batch profile generation is not deterministic")
	}
	if fmt.Sprintf("%v", a.Widths()) != fmt.Sprintf("%v", b.Widths()) {
		t.Fatal("batch profile widths differ across replays")
	}
}
