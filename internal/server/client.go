package server

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"abg/internal/replica"
)

// Client is a hardened HTTP client for the abgd API, shared by abgload and
// the crash-soak harness. Every request runs under its own deadline and is
// retried with exponential backoff plus jitter when the daemon answers 429
// or 5xx, or when the connection fails outright (refused, reset, died
// mid-response) — the shapes a crash-restarting daemon produces. A 429's
// Retry-After header, when present, becomes the floor of the next backoff.
//
// Submissions are made idempotent by a client-generated key: if the caller
// did not set JobRequest.Key, Submit generates one, so a retry after an
// ambiguous failure (request sent, ack lost, daemon crashed) can never
// double-admit — the recovered daemon answers the retry with the original
// ids and State "duplicate".
//
// With Group set, the client is failover-transparent: writes go to the
// discovered leader (the reachable, unfenced member with the highest epoch)
// and re-discover across a failover; reads rotate over every member. The
// client remembers the highest epoch any response carried and refuses a
// write ack from a lower one — an ack a deposed leader's journal cannot
// keep — retrying it against the real leader instead (safe: submissions are
// idempotent). Write acks carry a journal commit offset, and reads demand
// it back (X-Abg-Min-Offset), so a read served by a lagging follower waits
// for this client's own writes to apply: read-your-writes across the group.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:7133".
	Base string
	// HTTP is the underlying transport client. Its Timeout is ignored;
	// per-request deadlines come from Timeout below.
	HTTP *http.Client
	// MaxAttempts bounds tries per request (first attempt included).
	MaxAttempts int
	// BaseDelay and MaxDelay shape the exponential backoff.
	BaseDelay, MaxDelay time.Duration
	// Timeout is the per-request (per-attempt) deadline.
	Timeout time.Duration
	// Group lists the other replication-group members (Base's peers).
	// Writes then target the discovered leader, wherever it currently is;
	// reads rotate over Base and Group when an attempt fails at the
	// transport level or with a 5xx.
	Group []string

	// Counters, readable concurrently while requests are in flight.
	Retried429       atomic.Int64 // attempts retried after a 429
	RetriedTransport atomic.Int64 // attempts retried after 5xx / connection failure
	DeadlineExceeded atomic.Int64 // attempts abandoned at the per-request deadline
	Reconnects       atomic.Int64 // SSE stream reconnections
	ReadRetargets    atomic.Int64 // reads failed over to another endpoint
	Failovers        atomic.Int64 // leader re-discoveries that changed the target
	FencedWrites     atomic.Int64 // write answers refused as fenced or stale-epoch

	leader     atomic.Value  // string: cached leader URL, cleared to re-discover
	lastLeader atomic.Value  // string: last leader ever discovered (never cleared)
	maxEpoch   atomic.Uint32 // highest epoch any response carried
	minOffset  atomic.Int64  // commit-offset high-water of this client's writes
}

// NewClient returns a Client with production defaults against base
// (scheme optional; "host:port" is promoted to http).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		Base:        strings.TrimRight(base, "/"),
		HTTP:        &http.Client{},
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Timeout:     10 * time.Second,
	}
}

// APIError is a non-retryable HTTP error answer from the daemon.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("abgd: status %d: %s", e.Status, e.Message)
}

// NewKey returns a fresh idempotency key for JobRequest.Key.
func NewKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to math/rand rather
		// than panicking a load generator.
		return fmt.Sprintf("k-%08x%08x", mrand.Uint32(), mrand.Uint32())
	}
	return hex.EncodeToString(b[:])
}

// retryable classifies one attempt's outcome. resp is nil on transport
// errors. floor is a server-requested minimum backoff (Retry-After).
func retryable(resp *http.Response, err error) (retry bool, floor time.Duration) {
	if err != nil {
		// Connection refused/reset, EOF mid-response, attempt deadline:
		// all shapes of "the daemon is (re)starting" — worth retrying.
		return true, 0
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests, resp.StatusCode >= 500:
		// 429 is backpressure; 503 may be an unconfirmed leader or a
		// replica's bounded read-wait timing out — both set Retry-After.
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
				floor = time.Duration(secs) * time.Second
			}
		}
		return true, floor
	}
	return false, 0
}

// backoff returns the jittered delay before attempt (0-based counts the
// retries already taken), at least floor. The machinery is shared with the
// replication tailer (replica.Backoff) so every reconnect path in the
// system backs off identically.
func (c *Client) backoff(attempt int, floor time.Duration) time.Duration {
	return replica.Backoff(c.BaseDelay, c.MaxDelay, attempt, floor)
}

// members returns the read-rotation set: Base first, then Group (each
// normalized like Base, duplicates of Base dropped).
func (c *Client) members() []string {
	eps := make([]string, 0, 1+len(c.Group))
	eps = append(eps, c.Base)
	for _, f := range c.Group {
		if !strings.Contains(f, "://") {
			f = "http://" + f
		}
		f = strings.TrimRight(f, "/")
		if f != c.Base {
			eps = append(eps, f)
		}
	}
	return eps
}

// grouped reports whether group discovery is on.
func (c *Client) grouped() bool { return len(c.Group) > 0 }

// currentLeader returns the last discovered leader URL ("" before the
// first discovery).
func (c *Client) currentLeader() string {
	s, _ := c.leader.Load().(string)
	return s
}

// noteEpoch folds a response's epoch into the high-water mark.
func (c *Client) noteEpoch(e uint32) {
	for {
		cur := c.maxEpoch.Load()
		if e <= cur || c.maxEpoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// noteOffset folds a write ack's commit offset into the high-water mark
// that subsequent reads demand back.
func (c *Client) noteOffset(off int64) {
	for {
		cur := c.minOffset.Load()
		if off <= cur || c.minOffset.CompareAndSwap(cur, off) {
			return
		}
	}
}

// setLeader records a discovered leader, counting the change-overs. The
// comparison runs against the last leader ever discovered, not the cached
// one: a kill clears the cache before re-discovery, and that cycle is
// exactly the failover the counter exists to report.
func (c *Client) setLeader(url string) {
	if prev, _ := c.lastLeader.Load().(string); prev != "" && prev != url {
		c.Failovers.Add(1)
	}
	c.lastLeader.Store(url)
	c.leader.Store(url)
}

// discoverLeader probes every member's /api/v1/replication and picks the
// reachable, unfenced leader with the highest epoch. Members are dialed by
// their configured URL (the one provably reachable from here), not the
// advertised one.
func (c *Client) discoverLeader(ctx context.Context) (string, error) {
	var best string
	var bestEpoch uint32
	found := false
	for _, m := range c.members() {
		dto, err := c.replicationOf(ctx, m)
		if err != nil {
			continue
		}
		c.noteEpoch(dto.Epoch)
		c.noteEpoch(dto.PromisedEpoch)
		if dto.Fenced || dto.Role != "leader" {
			continue
		}
		if !found || dto.Epoch > bestEpoch {
			best, bestEpoch, found = m, dto.Epoch, true
		}
	}
	if !found {
		return "", fmt.Errorf("no reachable leader among %s", strings.Join(c.members(), ", "))
	}
	c.setLeader(best)
	return best, nil
}

// replicationOf reads one member's replication status (single attempt).
func (c *Client) replicationOf(ctx context.Context, base string) (ReplicationDTO, error) {
	timeout := c.Timeout
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var dto ReplicationDTO
	req, err := http.NewRequestWithContext(actx, http.MethodGet, base+"/api/v1/replication", nil)
	if err != nil {
		return dto, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return dto, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return dto, fmt.Errorf("replication probe: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dto); err != nil {
		return dto, err
	}
	return dto, nil
}

// do runs one API request with retries. body non-nil implies POST with a
// JSON payload. hdr, when non-nil, is added to every attempt (so a retried
// request carries the same trace id). out, when non-nil, receives the
// decoded success body. ok lists the statuses accepted as success
// (default 200).
func (c *Client) do(ctx context.Context, method, path string, body []byte, hdr map[string]string, out any, ok ...int) (int, error) {
	if len(ok) == 0 {
		ok = []int{http.StatusOK}
	}
	isWrite := method != http.MethodGet
	eps := c.members()
	epIdx := 0
	var lastErr error
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Reads fail over: a transport failure or 5xx means this
			// endpoint may be dead (a killed leader), so the retry targets
			// the next one. 429 is backpressure from a live daemon — same
			// endpoint, honor its Retry-After instead.
			floor, _ := lastErr.(*retryAfterErr)
			var fd time.Duration
			if floor != nil {
				fd = floor.floor
			}
			if !isWrite && len(eps) > 1 && (floor == nil || floor.status >= 500) {
				epIdx = (epIdx + 1) % len(eps)
				c.ReadRetargets.Add(1)
			}
			select {
			case <-time.After(c.backoff(attempt-1, fd)):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		target := eps[epIdx]
		if isWrite && c.grouped() {
			// Writes chase the leader. A fenced/stale answer or a transport
			// failure on the previous attempt cleared the cached leader, so
			// re-discover; when discovery finds nothing reachable yet
			// (mid-election), fall back to the rotation and let the next
			// attempt try again.
			if lead := c.currentLeader(); lead != "" {
				target = lead
			} else if lead, err := c.discoverLeader(ctx); err == nil {
				target = lead
			}
		}
		actx, cancel := context.WithTimeout(ctx, c.Timeout)
		status, err := c.attempt(actx, target, method, path, body, hdr, out, ok)
		cancel()
		if err == nil {
			return status, nil
		}
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			return status, err // non-retryable answer
		}
		if ctx.Err() != nil {
			return 0, ctx.Err() // caller's deadline, not ours
		}
		if errors.Is(err, context.DeadlineExceeded) {
			c.DeadlineExceeded.Add(1)
		}
		var stale *staleLeaderErr
		var ra *retryAfterErr
		switch {
		case errors.As(err, &stale):
			// The target is fenced or behind the epochs this client has
			// seen. If its 409 named the winner, go straight there;
			// otherwise re-discover on the next attempt.
			c.FencedWrites.Add(1)
			if stale.winner != "" {
				c.setLeader(strings.TrimRight(stale.winner, "/"))
			} else {
				c.leader.Store("")
			}
		case errors.As(err, &ra):
			if ra.status == http.StatusTooManyRequests {
				c.Retried429.Add(1)
			} else {
				c.RetriedTransport.Add(1)
				if isWrite {
					c.leader.Store("") // the leader answered 5xx; re-discover
				}
			}
		default:
			c.RetriedTransport.Add(1)
			if isWrite {
				c.leader.Store("") // the leader is unreachable; re-discover
			}
		}
		lastErr = err
	}
	return 0, fmt.Errorf("%s %s: giving up after %d attempts: %w", method, path, c.MaxAttempts, lastErr)
}

// retryAfterErr marks a retryable status answer, carrying the server's
// Retry-After floor for the next backoff.
type retryAfterErr struct {
	status int
	floor  time.Duration
}

func (e *retryAfterErr) Error() string {
	return fmt.Sprintf("status %d (retry-after %s)", e.status, e.floor)
}

// staleLeaderErr marks a write answered by a daemon that provably is not
// (or is no longer) the leader: a fenced/stale-leader 409, or a success ack
// under an epoch below the client's high-water mark. Retryable — against
// the winner it names, when it names one.
type staleLeaderErr struct {
	status int
	winner string
	msg    string
}

func (e *staleLeaderErr) Error() string {
	msg := fmt.Sprintf("stale leader (status %d): %s", e.status, e.msg)
	if e.winner != "" {
		msg += "; leadership moved to " + e.winner
	}
	return msg
}

// readYourWrites reports whether a GET path carries the min-offset demand.
// Only job and state reads observe submissions; metrics/health/replication
// probes must answer even on a lagging replica.
func readYourWrites(path string) bool {
	return path == "/api/v1/state" || strings.HasPrefix(path, "/api/v1/jobs")
}

// attempt is a single request/response cycle against one endpoint.
func (c *Client) attempt(ctx context.Context, base, method, path string, body []byte, hdr map[string]string, out any, ok []int) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	isWrite := method != http.MethodGet
	if isWrite && c.grouped() {
		// Prove the newest leadership this client has witnessed: a leader
		// behind this epoch must reject the write instead of acking into a
		// journal history that has already been superseded.
		if e := c.maxEpoch.Load(); e > 0 {
			req.Header.Set(EpochHeader, strconv.FormatUint(uint64(e), 10))
		}
	}
	if !isWrite && readYourWrites(path) {
		if off := c.minOffset.Load(); off > 0 {
			req.Header.Set(MinOffsetHeader, strconv.FormatInt(off, 10))
		}
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	respEpoch := uint32(0)
	if s := resp.Header.Get(EpochHeader); s != "" {
		if v, perr := strconv.ParseUint(s, 10, 32); perr == nil {
			respEpoch = uint32(v)
		}
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err // died mid-response: retryable transport failure
	}
	for _, s := range ok {
		if resp.StatusCode == s {
			if isWrite && c.grouped() && respEpoch > 0 && respEpoch < c.maxEpoch.Load() {
				// An ack from a leadership term this client has already seen
				// superseded: the acking daemon is deposed (or about to be)
				// and its journal suffix will not survive the failover. The
				// idempotency key makes the retry safe.
				return resp.StatusCode, &staleLeaderErr{
					status: resp.StatusCode,
					msg: fmt.Sprintf("ack under epoch %d, but epoch %d exists",
						respEpoch, c.maxEpoch.Load()),
				}
			}
			c.noteEpoch(respEpoch)
			if out != nil {
				if err := json.Unmarshal(raw, out); err != nil {
					return resp.StatusCode, fmt.Errorf("%s %s: corrupt body %q: %w", method, path, raw, err)
				}
			}
			return resp.StatusCode, nil
		}
	}
	c.noteEpoch(respEpoch)
	msg := strings.TrimSpace(string(raw))
	var e errorDTO
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	if isWrite && c.grouped() && resp.StatusCode == http.StatusConflict &&
		(strings.Contains(msg, "fenced") || strings.Contains(msg, "stale leader")) {
		return resp.StatusCode, &staleLeaderErr{
			status: resp.StatusCode,
			winner: resp.Header.Get(WinnerHeader),
			msg:    msg,
		}
	}
	if retry, floor := retryable(resp, nil); retry {
		return resp.StatusCode, &retryAfterErr{status: resp.StatusCode, floor: floor}
	}
	return resp.StatusCode, &APIError{Status: resp.StatusCode, Message: msg}
}

// Submit posts one job request. A missing idempotency key is generated so
// retries are safe; the returned response's State distinguishes a fresh
// acceptance ("queued") from a replayed one ("duplicate"). Every submission
// carries a client-generated trace id (stable across the retries of one
// call) in the X-Abg-Trace-Id header; the ack echoes it, and the daemon's
// end-to-end trace is then readable at /api/v1/traces/{traceId}.
func (c *Client) Submit(ctx context.Context, req JobRequest) (SubmitResponse, error) {
	if req.Key == "" {
		req.Key = NewKey()
	}
	traceID := NewKey()
	body, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	var ack SubmitResponse
	_, err = c.do(ctx, http.MethodPost, "/api/v1/jobs", body,
		map[string]string{TraceHeader: traceID}, &ack,
		http.StatusAccepted, http.StatusOK)
	if err != nil {
		return SubmitResponse{}, err
	}
	if len(ack.IDs) == 0 {
		return ack, fmt.Errorf("submit: ack carries no ids")
	}
	// Remember the commit offset: subsequent reads demand it back, so any
	// member answering them must have applied this write first.
	c.noteOffset(ack.Offset)
	return ack, nil
}

// JobStatus fetches one job's live status.
func (c *Client) JobStatus(ctx context.Context, id int) (JobStatusDTO, error) {
	var st JobStatusDTO
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/jobs/%d", id), nil, nil, &st)
	return st, err
}

// Jobs fetches every known job's status.
func (c *Client) Jobs(ctx context.Context) ([]JobStatusDTO, error) {
	var sts []JobStatusDTO
	_, err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, nil, &sts)
	return sts, err
}

// State fetches the scheduler-wide snapshot.
func (c *Client) State(ctx context.Context) (StateDTO, error) {
	var st StateDTO
	_, err := c.do(ctx, http.MethodGet, "/api/v1/state", nil, nil, &st)
	return st, err
}

// Recovery fetches the boot-time recovery report.
func (c *Client) Recovery(ctx context.Context) (RecoveryDTO, error) {
	var rec RecoveryDTO
	_, err := c.do(ctx, http.MethodGet, "/api/v1/recovery", nil, nil, &rec)
	return rec, err
}

// Timeline fetches one job's bounded per-quantum timeline.
func (c *Client) Timeline(ctx context.Context, id int) (TimelineDTO, error) {
	var tl TimelineDTO
	_, err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/jobs/%d/timeline", id), nil, nil, &tl)
	return tl, err
}

// Trace fetches one submission trace by the id Submit generated.
func (c *Client) Trace(ctx context.Context, id string) (TraceDTO, error) {
	var tr TraceDTO
	_, err := c.do(ctx, http.MethodGet, "/api/v1/traces/"+id, nil, nil, &tr)
	return tr, err
}

// Drain asks the daemon to drain; wait blocks until the drain completes.
func (c *Client) Drain(ctx context.Context, wait bool) error {
	path := "/api/v1/drain"
	if wait {
		path += "?wait=1"
	}
	// A drain can legitimately outlast the per-request deadline; the wait
	// variant runs without retries under the caller's context alone.
	if wait {
		target := c.Base
		if c.grouped() {
			if lead := c.currentLeader(); lead != "" {
				target = lead
			} else if lead, err := c.discoverLeader(ctx); err == nil {
				target = lead
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, nil)
		if err != nil {
			return err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("drain: status %d", resp.StatusCode)
		}
		return nil
	}
	_, err := c.do(ctx, http.MethodPost, path, []byte("{}"), nil, nil,
		http.StatusOK, http.StatusAccepted)
	return err
}

// Health probes /healthz once (no retries): the crash harness uses it to
// detect daemon liveness transitions.
func (c *Client) Health(ctx context.Context) error {
	actx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	return nil
}

// SSEEvent is one frame from the event stream. ID is the numeric event id a
// single daemon assigns; against a multi-shard cluster front end, ids are
// per-shard vectors ("12,9,3") that do not fit a scalar — ID is then zero
// and RawID carries the wire form. RawID is always set.
type SSEEvent struct {
	ID    uint64
	RawID string
	Type  string // "" for data events, "resync" when the replay ring evicted us
	Data  []byte
}

// ErrStopStream, returned by a StreamEvents callback, ends the stream
// without error.
var ErrStopStream = errors.New("stop event stream")

// StreamEvents subscribes to /api/v1/events after event id afterID and
// calls fn for every frame. On disconnect it backs off and reconnects with
// Last-Event-ID set to the last id seen, so the daemon's replay ring fills
// any gap; a "resync" frame tells fn the gap was unrecoverable and absolute
// state must be refetched (the stream then continues from the frame's id).
// Returns when ctx ends, fn returns ErrStopStream (nil) or another error
// (propagated), or reconnection attempts are exhausted.
func (c *Client) StreamEvents(ctx context.Context, afterID uint64, fn func(SSEEvent) error) error {
	last := ""
	if afterID > 0 {
		last = strconv.FormatUint(afterID, 10)
	}
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := c.streamOnce(ctx, &last, fn)
		if errors.Is(err, ErrStopStream) {
			return nil
		}
		if err != nil && ctx.Err() == nil {
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				return err
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if n > 0 {
			failures = 0 // progress: reset the backoff ladder
		}
		failures++
		if failures > c.MaxAttempts {
			return fmt.Errorf("event stream: giving up after %d reconnects: %w", failures-1, err)
		}
		c.Reconnects.Add(1)
		select {
		case <-time.After(c.backoff(failures-1, 0)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// streamOnce is one SSE connection: subscribe after *last, dispatch frames,
// and keep *last current so the caller can resume. Returns the number of
// frames dispatched.
func (c *Client) streamOnce(ctx context.Context, last *string, fn func(SSEEvent) error) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/api/v1/events", nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last != "" {
		req.Header.Set("Last-Event-ID", *last)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(raw))}
	}

	n := 0
	var ev SSEEvent
	var haveData bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if haveData || ev.Type != "" {
				if ev.RawID != "" {
					*last = ev.RawID
				}
				n++
				if err := fn(ev); err != nil {
					return n, err
				}
			}
			ev, haveData = SSEEvent{}, false
		case strings.HasPrefix(line, "id: "):
			ev.RawID = line[4:]
			// Scalar ids (single daemon, one-shard cluster) also populate
			// ID; vector ids from a multi-shard cluster stay RawID-only.
			if id, perr := strconv.ParseUint(ev.RawID, 10, 64); perr == nil {
				ev.ID = id
			}
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.Data = append(ev.Data, line[6:]...)
			haveData = true
		case strings.HasPrefix(line, ":"), strings.HasPrefix(line, "retry: "):
			// comments and reconnect hints carry no payload
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, io.EOF // server closed the stream (drain)
}
