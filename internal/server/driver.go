package server

import (
	"context"
	"fmt"
	"time"

	"abg/internal/job"
	"abg/internal/persist"
	"abg/internal/sim"
)

// drive is the quantum clock: the single goroutine that advances the engine.
// All engine mutation happens here (and in the admission step it performs),
// serialised with the HTTP handlers by s.mu.
//
// Wall mode executes one quantum boundary per cfg.Tick of real time — idle
// boundaries advance simulated time just like busy ones, so sim time tracks
// wall time. Virtual mode fast-forwards: it steps back-to-back while jobs
// are in flight and parks (no time passes) while the system is empty, which
// is what load tests and CI smokes want.
//
// Cancelling ctx — the SIGTERM path — switches to draining: admission stops,
// every queued job is admitted, and the engine fast-forwards to completion
// regardless of clock mode. The drained channel closes last, releasing
// Server.Wait and any /api/v1/drain?wait=1 callers.
func (s *Server) drive(ctx context.Context) {
	defer s.closeStopped()
	var tick *time.Ticker
	if s.cfg.Clock == ClockWall {
		tick = time.NewTicker(s.cfg.Tick)
		defer tick.Stop()
	}
	for {
		if s.killed.Load() {
			// Crash simulation (tests only): stop dead, no drain, no final
			// journal flush — exactly what SIGKILL leaves behind.
			return
		}
		if s.draining.Load() {
			break
		}
		switch s.cfg.Clock {
		case ClockWall:
			select {
			case <-ctx.Done():
				s.Drain()
			case <-tick.C:
				s.stepOnce(true)
			case <-s.wake:
				// Admission still waits for the boundary; the wake only
				// re-checks the draining flag.
			}
		default: // virtual
			if s.hasWork() {
				s.stepOnce(false)
				continue
			}
			select {
			case <-ctx.Done():
				s.Drain()
			case <-s.wake:
			}
		}
	}
	s.drain()
	s.hub.closeAll()
	s.closeDrained()
	s.log.Info("drain complete", "jobs", s.snapshotJobs())
}

// hasWork reports whether the engine has unfinished jobs or the admission
// queue is non-empty.
func (s *Server) hasWork() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.eng.Done() || len(s.queue) > 0
}

// snapshotJobs returns the number of jobs the engine has completed.
func (s *Server) snapshotJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.eng.Statuses() {
		if st.State == sim.JobDone {
			n++
		}
	}
	return n
}

// stepOnce admits everything queued at the current boundary and advances the
// engine one quantum. idleOK selects whether an empty system still consumes
// a boundary (wall clock: yes, time passes; virtual clock: no).
func (s *Server) stepOnce(idleOK bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return
	}
	s.admitLocked()
	if s.fatal != nil {
		return
	}
	if !idleOK && s.eng.Done() {
		return
	}
	if s.journalStepLocked() != nil {
		return
	}
	if _, err := s.eng.Step(); err != nil {
		s.failLocked(err)
		return
	}
	if t, ok := s.capacity.(*ShareTable); ok {
		// Executed quanta can never be re-read; keep the table bounded.
		t.PruneBelow(s.eng.Boundary())
	}
	s.maybeSnapshotLocked()
}

// journalStepLocked writes the step record for the quantum about to execute.
// Idle boundaries — every job done, nothing queued — are skipped: they do no
// work, emit no events, and journaling each wall tick of an idle daemon
// would grow the journal without bound. Working boundaries must hit the
// journal before the engine runs them so a follower (or a reference replay)
// can re-execute exactly the quanta the leader executed. Caller holds s.mu.
func (s *Server) journalStepLocked() error {
	if s.journal == nil || s.eng.Done() {
		return nil
	}
	rec := stepRecord{boundary: s.eng.Boundary(), share: -1}
	// In cluster mode the quantum about to execute runs under the share the
	// cluster allocator pinned for it; the record must carry it so this
	// shard's recovery replays under the same capacity (see stepRecord).
	if t, ok := s.capacity.(*ShareTable); ok {
		if share, pinned := t.ShareAt(rec.boundary + 1); pinned {
			rec.share = share
		}
	}
	return s.appendJournal(persist.KindStep, encodeStep(rec))
}

// admitLocked hands every queued job to the engine at the current boundary.
// Queue order is submission order, and the engine assigns ids sequentially,
// so the engine's id for each job must equal the id the submission handler
// promised the client; any divergence is a server bug worth dying loudly
// over.
//
// The admit record is journaled before the engine sees the jobs: events for
// this boundary only flow once Step runs, so a crash anywhere in between
// recovers to "admitted at this boundary" without ever having exposed
// observable state that the replay would contradict.
func (s *Server) admitLocked() {
	if len(s.queue) == 0 {
		return
	}
	rec := admitRecord{boundary: s.eng.Boundary()}
	for _, p := range s.queue {
		rec.ids = append(rec.ids, p.id)
	}
	if s.appendJournal(persist.KindAdmit, encodeAdmit(rec)) != nil {
		return // fatal; failLocked already fired
	}
	for _, p := range s.queue {
		spec := s.jobSpec(p)
		id, err := s.eng.Submit(spec)
		if err != nil {
			s.failLocked(fmt.Errorf("admit job %d: %w", p.id, err))
			return
		}
		if id != p.id {
			s.failLocked(fmt.Errorf("job id skew: engine assigned %d, promised %d", id, p.id))
			return
		}
	}
	s.queue = s.queue[:0]
}

// maybeSnapshotLocked writes an engine snapshot once enough quanta have
// executed since the last one. The record carries the SSE sequence counter
// captured at the same instant, so a recovered daemon numbers the replayed
// event stream identically. Caller holds s.mu, on the driver goroutine.
func (s *Server) maybeSnapshotLocked() {
	if s.journal == nil || s.fatal != nil {
		return
	}
	q := s.eng.QuantaElapsed()
	if q-s.lastSnapQ < s.cfg.SnapshotEvery {
		return
	}
	if s.eng.Done() && len(s.queue) == 0 && s.hub.Seq() == s.lastSnapSeq {
		// Idle wall-clock boundaries change nothing a recovery would replay;
		// snapshotting them would grow the journal without bound.
		return
	}
	blob, err := s.eng.MarshalBinary()
	if err != nil {
		s.failLocked(fmt.Errorf("snapshot: %w", err))
		return
	}
	rec := snapshotRecord{
		boundary: s.eng.Boundary(), quanta: q,
		sseSeq: s.hub.Seq(), engine: blob,
	}
	if s.appendJournal(persist.KindSnapshot, encodeSnapshot(rec)) == nil {
		s.lastSnapQ = q
		s.lastSnapSeq = rec.sseSeq
		s.snapshotCount++
		s.metrics.snapshots.Inc()
	}
}

// jobSpec builds the engine-facing spec for one queued job: a fresh instance
// and policy, the control channel wrapped by the fault plan, and the plan's
// restart schedule (rebuilding restarted attempts from the same profile).
func (s *Server) jobSpec(p pendingJob) sim.JobSpec {
	spec := sim.JobSpec{
		Name:    p.name,
		Inst:    job.NewRun(p.profile),
		Policy:  s.plan.Policy(s.sched.NewPolicy(), p.id, s.bus),
		Sched:   s.sched.TaskScheduler(),
		Release: s.eng.Now(),
	}
	if at := s.plan.RestartHook(p.id); at != nil {
		profile := p.profile
		spec.Restart = &sim.RestartPlan{
			At:  at,
			New: func() job.Instance { return job.NewRun(profile) },
			Max: s.plan.MaxRestarts,
		}
	}
	return spec
}

// failLocked records the first fatal engine error and forces a drain so the
// daemon shuts down instead of serving a wedged scheduler. Caller holds s.mu.
func (s *Server) failLocked(err error) {
	if s.fatal == nil {
		s.fatal = err
		s.log.Error("engine failed", "err", err)
	}
	s.draining.Store(true)
	s.notify()
}

// drain admits the remaining queue and fast-forwards the engine until every
// accepted job has completed. Runs on the driver goroutine after the main
// loop exits; admission is already closed, so the queue cannot grow.
func (s *Server) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return
	}
	s.admitLocked() // flush the queue before the engine closes admission
	if s.fatal != nil {
		return
	}
	s.eng.Drain()
	for !s.eng.Done() {
		if s.journalStepLocked() != nil {
			return
		}
		if _, err := s.eng.Step(); err != nil {
			s.failLocked(err)
			return
		}
		s.maybeSnapshotLocked()
	}
	if s.journal != nil {
		if err := s.journal.Sync(); err != nil {
			// A torn final flush must not masquerade as a clean shutdown:
			// record it as the fatal error so /healthz reports failing and
			// Wait — hence the process exit code — surfaces it.
			s.failLocked(fmt.Errorf("journal sync at drain: %w", err))
		}
	}
}
