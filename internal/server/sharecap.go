package server

import (
	"fmt"
	"sync"

	"abg/internal/alloc"
)

// ShareTable is the capacity model a cluster installs into each engine shard:
// the shard's effective processor count at quantum q is the capacity share the
// cluster-level allocator assigned it for that quantum, further clamped by any
// fault-plan capacity model (capacity churn applies to the whole machine, so a
// shard can never use more of it than its share).
//
// The table is the hinge that keeps sharded runs exactly recoverable: a
// shard's share for quantum q depends on the *other* shards' desires, which
// its own journal cannot reconstruct. The driver therefore journals each
// assigned share inside the shard's step record (see stepRecord), and
// recovery re-installs the journaled shares into the table before replaying —
// making every shard's replay a pure function of its own journal bytes again.
//
// Quanta with no entry fall back to the full machine clamped by the base
// model, so a ShareTable with no shares installed behaves exactly like its
// base model — which is also why single-engine journals (whose step records
// carry no shares) replay unchanged under one.
type ShareTable struct {
	total int
	base  alloc.Capacity // optional fault-plan model, nil for a fixed machine

	mu     sync.Mutex
	shares map[int]int // quantum index q (1-based, == boundary+1) → share
}

// NewShareTable builds a share table for a machine of total processors whose
// baseline availability is base (nil means the fixed machine).
func NewShareTable(total int, base alloc.Capacity) *ShareTable {
	return &ShareTable{total: total, base: base, shares: make(map[int]int)}
}

// Set pins the shard's capacity share for quantum q. Negative shares clear
// the entry (full machine again).
func (t *ShareTable) Set(q, share int) {
	t.mu.Lock()
	if share < 0 {
		delete(t.shares, q)
	} else {
		t.shares[q] = share
	}
	t.mu.Unlock()
}

// ShareAt returns the share pinned for quantum q, if any.
func (t *ShareTable) ShareAt(q int) (int, bool) {
	t.mu.Lock()
	share, ok := t.shares[q]
	t.mu.Unlock()
	return share, ok
}

// PruneBelow drops entries for quanta before q — the engine has executed
// them, so they can never be read again. Keeps a long-running table bounded.
func (t *ShareTable) PruneBelow(q int) {
	t.mu.Lock()
	for k := range t.shares {
		if k < q {
			delete(t.shares, k)
		}
	}
	t.mu.Unlock()
}

// At implements alloc.Capacity: min(assigned share, base availability),
// defaulting to the base availability when no share is pinned.
func (t *ShareTable) At(q int) int {
	base := alloc.CapAt(t.base, q, t.total)
	share, ok := t.ShareAt(q)
	if !ok || share > base {
		return base
	}
	return share
}

// Name implements alloc.Capacity.
func (t *ShareTable) Name() string {
	if t.base != nil {
		return fmt.Sprintf("cluster-share(%s)", t.base.Name())
	}
	return "cluster-share"
}
