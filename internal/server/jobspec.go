package server

import (
	"fmt"
	"strings"

	"abg/internal/job"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// Submission limits: a single request may carry at most MaxCount jobs, and
// generator parameters are bounded so a request cannot ask the daemon to
// materialise a pathological DAG.
const (
	MaxCount  = 1024
	maxWidth  = 1 << 12
	maxQuanta = 1 << 10
	maxCL     = 1000
	maxKeyLen = 128
)

// JobRequest is the JSON body of POST /api/v1/jobs: a workload-generator
// spec, not a DAG. Kind selects the generator family:
//
//	fullPar      constant-parallelism job: Width chains, ~Quanta quanta long
//	serial       width-1 chain, ~Quanta quanta long (pure critical path)
//	batch        random fork-join job (the paper's §7 family): transition
//	             factor CL, phase lengths divided by Shrink, drawn from Seed
//	adversarial  parallelism square wave Width↔1, one quantum per plateau —
//	             the workload that maximises request-loop churn
//
// Count > 1 submits that many jobs in one request (batch kinds draw job i
// from Seed+i). All jobs of one request are admitted at the same quantum
// boundary.
type JobRequest struct {
	Name   string `json:"name,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Width  int    `json:"width,omitempty"`
	Quanta int    `json:"quanta,omitempty"`
	CL     int    `json:"cl,omitempty"`
	Shrink int    `json:"shrink,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Count  int    `json:"count,omitempty"`
	// Key is an optional client-chosen idempotency key. Submitting the same
	// key twice returns the first submission's ids instead of new jobs, so a
	// client that lost the ack to a crash or timeout can retry safely.
	Key string `json:"key,omitempty"`
}

// Normalize fills defaults and validates ranges; the error text is returned
// to the client with status 400. Exported so the cluster front end can
// normalize a request once before routing it to a shard's SubmitLocal.
func (r *JobRequest) Normalize() error {
	r.Kind = strings.ToLower(strings.TrimSpace(r.Kind))
	switch r.Kind {
	case "":
		r.Kind = "batch"
	case "fullpar", "serial", "batch", "adversarial":
	default:
		return fmt.Errorf("unknown kind %q (want fullPar|serial|batch|adversarial)", r.Kind)
	}
	setDefault := func(v *int, d, max int, name string) error {
		if *v == 0 {
			*v = d
		}
		if *v < 1 || *v > max {
			return fmt.Errorf("%s %d outside [1,%d]", name, *v, max)
		}
		return nil
	}
	if err := setDefault(&r.Width, 16, maxWidth, "width"); err != nil {
		return err
	}
	if err := setDefault(&r.Quanta, 4, maxQuanta, "quanta"); err != nil {
		return err
	}
	if err := setDefault(&r.CL, 20, maxCL, "cl"); err != nil {
		return err
	}
	if err := setDefault(&r.Shrink, 4, 1<<10, "shrink"); err != nil {
		return err
	}
	if err := setDefault(&r.Count, 1, MaxCount, "count"); err != nil {
		return err
	}
	if r.Kind == "batch" && r.CL < 2 {
		return fmt.Errorf("cl %d < 2: a fork-join job needs a parallel phase", r.CL)
	}
	if len(r.Key) > maxKeyLen {
		return fmt.Errorf("idempotency key longer than %d bytes", maxKeyLen)
	}
	return nil
}

// BuildProfile constructs the i-th job (i < Count) of a normalized request
// for quantum length l. Randomised kinds derive job i from Seed+i, so a
// request replays identically given the same seed — which is also how the
// end-to-end smoke reproduces a daemon's workload inside the batch
// simulator.
func (r JobRequest) BuildProfile(i, l int) *job.Profile {
	switch r.Kind {
	case "fullpar":
		return workload.ConstantJob(r.Width, r.Quanta, l)
	case "serial":
		return workload.ConstantJob(1, r.Quanta, l)
	case "adversarial":
		widths := make([]int, r.Quanta)
		for q := range widths {
			if q%2 == 0 {
				widths[q] = r.Width
			} else {
				widths[q] = 1
			}
		}
		return workload.StepWidths(widths, l)
	default: // batch
		return workload.GenJob(xrand.New(r.Seed+uint64(i)),
			workload.ScaledJobParams(r.CL, l, r.Shrink))
	}
}

// jobName labels the i-th job of the request.
func (r JobRequest) jobName(i, id int) string {
	if r.Name != "" {
		if r.Count == 1 {
			return r.Name
		}
		return fmt.Sprintf("%s-%d", r.Name, i)
	}
	return fmt.Sprintf("%s-%d", r.Kind, id)
}
