package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"abg/internal/persist"
)

// startFollower boots a follower tailing leaderBase, with its own journal
// directory. cfg must carry the leader's engine configuration (P, L,
// scheduler parameters, fault spec, seed) — the shipped header is
// cross-checked against it.
func startFollower(t *testing.T, cfg Config, leaderBase string) (*Server, string, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.JournalDir = dir
	cfg.FollowURL = leaderBase
	s, base := startCrashable(t, cfg)
	return s, base, dir
}

// waitReplBytes polls base's replication status until its journal holds at
// least want bytes.
func waitReplBytes(t *testing.T, base string, want int64) ReplicationDTO {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var dto ReplicationDTO
	for time.Now().Before(deadline) {
		getJSON(t, base+"/api/v1/replication", &dto)
		if dto.JournalBytes >= want {
			return dto
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at %d journal bytes, want %d (%+v)", dto.JournalBytes, want, dto)
	return dto
}

// getRaw fetches url and returns the raw response body.
func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, raw)
	}
	return raw
}

// collectSSE subscribes to base's event stream after afterID and collects
// frames until id `until` arrives.
func collectSSE(t *testing.T, base string, afterID, until uint64) []SSEEvent {
	t.Helper()
	client := NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	last := strconv.FormatUint(afterID, 10)
	if afterID == 0 {
		last = ""
	}
	var evs []SSEEvent
	_, err := client.streamOnce(ctx, &last, func(ev SSEEvent) error {
		evs = append(evs, ev)
		if ev.ID >= until {
			return ErrStopStream
		}
		return nil
	})
	if err != ErrStopStream {
		t.Fatalf("stream from %s: %v (got %d frames)", base, err, len(evs))
	}
	return evs
}

// stateSansVolatile fetches /api/v1/state and strips the fields that
// legitimately differ between two daemons holding identical scheduler state
// (uptime, HTTP traffic counters, SSE client counts).
func stateSansVolatile(t *testing.T, base string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(getRaw(t, base+"/api/v1/state"), &m); err != nil {
		t.Fatalf("state: %v", err)
	}
	for _, k := range []string{
		"uptimeSec", "sseClients", "sseDropped",
		"httpRequests", "httpLatencyP50Ms", "httpLatencyP95Ms", "httpLatencyP99Ms",
	} {
		delete(m, k)
	}
	return m
}

// replCfg is the shared engine shape of the replication tests: virtual clock
// so the leader parks (and its journal goes quiet) the moment all jobs
// finish, making "caught up" a stable condition.
func replCfg(dir, faultSpec string) Config {
	return Config{
		P: 16, L: 50, Scheduler: "abg",
		Clock: ClockVirtual, QueueLimit: 100, Seed: 7,
		JournalDir: dir, SnapshotEvery: 4, FaultSpec: faultSpec,
	}
}

// TestFollowerMirrorsLeader is the core replica guarantee: at the same
// applied journal offset, a follower serves byte-identical job state and an
// identical SSE event stream, while writes redirect to the leader.
func TestFollowerMirrorsLeader(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	_, fBase, _ := startFollower(t, cfg, leaderBase)

	for i := 0; i < 4; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 4)
	size := s1.journal.Size()
	waitReplBytes(t, fBase, size)

	// Reads: the jobs listing must be byte-identical; single-job status with
	// its history, and the per-quantum timeline, too.
	if l, f := getRaw(t, leaderBase+"/api/v1/jobs"), getRaw(t, fBase+"/api/v1/jobs"); !bytes.Equal(l, f) {
		t.Fatalf("jobs listing diverged:\n leader   %s\n follower %s", l, f)
	}
	for i := 0; i < 4; i++ {
		lURL := fmt.Sprintf("%s/api/v1/jobs/%d", leaderBase, i)
		fURL := fmt.Sprintf("%s/api/v1/jobs/%d", fBase, i)
		if l, f := getRaw(t, lURL), getRaw(t, fURL); !bytes.Equal(l, f) {
			t.Fatalf("job %d diverged:\n leader   %s\n follower %s", i, l, f)
		}
		if l, f := getRaw(t, lURL+"/timeline"), getRaw(t, fURL+"/timeline"); !bytes.Equal(l, f) {
			t.Fatalf("job %d timeline diverged:\n leader   %s\n follower %s", i, l, f)
		}
	}
	lState := stateSansVolatile(t, leaderBase)
	fState := stateSansVolatile(t, fBase)
	if !reflect.DeepEqual(lState, fState) {
		t.Fatalf("state diverged:\n leader   %+v\n follower %+v", lState, fState)
	}

	// The SSE stream: identical ids AND identical payloads, frame for frame.
	head := uint64(lState["lastEventId"].(float64))
	if head == 0 {
		t.Fatal("no events emitted")
	}
	lEvents := collectSSE(t, leaderBase, 0, head)
	fEvents := collectSSE(t, fBase, 0, head)
	if !reflect.DeepEqual(lEvents, fEvents) {
		t.Fatalf("event streams diverged: leader %d frames, follower %d", len(lEvents), len(fEvents))
	}

	// /metrics and /healthz serve on the follower; health reports the role
	// and a live replication stream.
	getRaw(t, fBase+"/metrics")
	var h HealthDTO
	if code := getJSON(t, fBase+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("follower healthz = %d (%+v)", code, h)
	}
	if h.Role != "follower" || h.ReplConnected == nil || !*h.ReplConnected {
		t.Fatalf("follower health %+v, want follower with live stream", h)
	}
	var lh HealthDTO
	getJSON(t, leaderBase+"/healthz", &lh)
	if lh.Role != "leader" || lh.ReplConnected != nil {
		t.Fatalf("leader health %+v, want leader without repl fields", lh)
	}

	// Writes: a submission POSTed to the follower lands on the leader via the
	// 307 redirect (method and body intact) and replicates back.
	code, ack, bad := postJobs(t, fBase, JobRequest{
		Kind: "batch", Name: "via-follower", Seed: 200, Key: "via-follower",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit via follower: status %d (%q)", code, bad.Error)
	}
	if len(ack.IDs) != 1 || ack.IDs[0] != 4 {
		t.Fatalf("submit via follower: ids %v, want [4]", ack.IDs)
	}
	waitCompleted(t, leaderBase, 5)
	waitReplBytes(t, fBase, s1.journal.Size())
	if l, f := getRaw(t, leaderBase+"/api/v1/jobs"), getRaw(t, fBase+"/api/v1/jobs"); !bytes.Equal(l, f) {
		t.Fatalf("jobs diverged after redirect submit:\n leader   %s\n follower %s", l, f)
	}

	// A reader claiming bytes the leader never wrote is told, loudly.
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/journal?from=%d", leaderBase, s1.journal.Size()+100))
	if err != nil {
		t.Fatalf("journal probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("journal beyond-size probe = %d, want 409", resp.StatusCode)
	}
}

// TestFollowerPromotionMatchesReference is the failover guarantee, per fault
// variant: SIGKILL the leader, promote the follower, keep submitting, and the
// promoted daemon's final results must DeepEqual an uninterrupted reference
// replay of its journal.
func TestFollowerPromotionMatchesReference(t *testing.T) {
	specs := []struct{ name, fault string }{
		{"nofault", ""},
		{"drop", "drop=0.3,seed=5"},
		{"churn", "cap=churn:0.5:4,seed=5"},
		{"restart", "restart=0.3,restartat=1,maxrestarts=2,seed=5"},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := crashCfg(t.TempDir(), tc.fault) // wall clock: crash lands mid-run
			s1, leaderBase := startCrashable(t, cfg)
			fcfg := crashCfg("", tc.fault)
			s2, fBase, fDir := startFollower(t, fcfg, leaderBase)

			for i := 0; i < 4; i++ {
				submitKeyed(t, leaderBase, i)
			}
			waitQuanta(t, s1, 3, 4)
			// Every acked submission must reach the follower before the kill:
			// the exact-prefix guarantee preserves what was shipped, and the
			// test wants a deterministic id sequence afterwards.
			waitReplBytes(t, fBase, s1.journal.Size())
			crash(t, s1)

			// Detached follower: still serving reads, but degraded.
			deadline := time.Now().Add(10 * time.Second)
			for {
				var h HealthDTO
				code := getJSON(t, fBase+"/healthz", &h)
				if code == http.StatusServiceUnavailable && h.Status == "degraded" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("follower never reported degraded after leader death: %+v", h)
				}
				time.Sleep(2 * time.Millisecond)
			}

			// Manual promotion: the follower becomes the leader and resumes
			// the run on its applied prefix.
			resp, err := http.Post(fBase+"/api/v1/promote", "application/json", nil)
			if err != nil {
				t.Fatalf("promote: %v", err)
			}
			var repl ReplicationDTO
			if err := json.NewDecoder(resp.Body).Decode(&repl); err != nil {
				t.Fatalf("promote body: %v", err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || repl.Role != "leader" || repl.Promotions != 1 {
				t.Fatalf("promote = %d %+v, want 200 leader with 1 promotion", resp.StatusCode, repl)
			}

			// The promoted daemon takes writes directly — ids continue densely.
			for i := 4; i < 8; i++ {
				submitKeyed(t, fBase, i)
			}
			waitQuanta(t, s2, s2.snapshot().QuantaElapsed+3, 8)
			s2.Drain()
			if err := s2.Wait(); err != nil {
				t.Fatalf("promoted drain: %v", err)
			}

			live := liveStatuses(s2)
			ref, err := ReferenceResult(fDir)
			if err != nil {
				t.Fatalf("ReferenceResult: %v", err)
			}
			if len(live) != 8 || len(ref) != 8 {
				t.Fatalf("job counts: live %d, reference %d, want 8", len(live), len(ref))
			}
			for i := range ref {
				if !reflect.DeepEqual(live[i], ref[i]) {
					t.Errorf("job %d diverged:\n live %+v\n ref  %+v", i, live[i], ref[i])
				}
			}
		})
	}
}

// TestWatchdogPromotion: with -promote-after armed, a follower promotes
// itself once the leader stays unreachable past the grace, and the promoted
// run still matches the reference replay.
func TestWatchdogPromotion(t *testing.T) {
	cfg := crashCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	fcfg := crashCfg("", "")
	fcfg.PromoteAfter = 150 * time.Millisecond
	s2, fBase, fDir := startFollower(t, fcfg, leaderBase)

	for i := 0; i < 4; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitQuanta(t, s1, 3, 4)
	waitReplBytes(t, fBase, s1.journal.Size())
	crash(t, s1)

	deadline := time.Now().Add(10 * time.Second)
	for {
		var dto ReplicationDTO
		getJSON(t, fBase+"/api/v1/replication", &dto)
		if dto.Role == "leader" {
			if dto.Promotions != 1 {
				t.Fatalf("promotions = %d, want 1", dto.Promotions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never promoted: %+v", dto)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s2.Drain()
	if err := s2.Wait(); err != nil {
		t.Fatalf("promoted drain: %v", err)
	}
	live := liveStatuses(s2)
	ref, err := ReferenceResult(fDir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if !reflect.DeepEqual(live, ref) {
		t.Fatalf("watchdog-promoted run diverged:\n live %+v\n ref  %+v", live, ref)
	}
}

// TestRelayChainServesEvictedReconnect: followers chained off followers
// (leader → A → B) re-serve the event stream, and a slow consumer
// reconnecting to the relay tier with an evicted Last-Event-ID gets the
// resync contract, exactly as it would from the leader.
func TestRelayChainServesEvictedReconnect(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	_, aBase, _ := startFollower(t, cfg, leaderBase)
	bCfg := replCfg("", "")
	bCfg.EventRing = 8 // tiny replay ring: eviction is easy to hit
	_, bBase, bDir := startFollower(t, bCfg, aBase)

	for i := 0; i < 3; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 3)
	size := s1.journal.Size()
	waitReplBytes(t, aBase, size)
	waitReplBytes(t, bBase, size)

	// The whole chain agrees on the event head and the journal bytes.
	var lSt, bSt StateDTO
	getJSON(t, leaderBase+"/api/v1/state", &lSt)
	getJSON(t, bBase+"/api/v1/state", &bSt)
	if lSt.LastEventID != bSt.LastEventID || lSt.LastEventID == 0 {
		t.Fatalf("event heads: leader %d, relay %d", lSt.LastEventID, bSt.LastEventID)
	}
	if lSt.LastEventID <= 8+1 {
		t.Fatalf("only %d events; the 8-entry ring cannot have evicted", lSt.LastEventID)
	}
	lRaw, err := os.ReadFile(filepath.Join(cfg.JournalDir, persist.JournalFile))
	if err != nil {
		t.Fatalf("read leader journal: %v", err)
	}
	bRaw, err := os.ReadFile(filepath.Join(bDir, persist.JournalFile))
	if err != nil {
		t.Fatalf("read relay journal: %v", err)
	}
	if !bytes.Equal(lRaw, bRaw) {
		t.Fatalf("relay journal is not a byte copy: leader %d bytes, relay %d", len(lRaw), len(bRaw))
	}

	// A consumer that saw event 1 and vanished reconnects to B: its position
	// is long evicted from B's 8-entry ring, so the first frame must be the
	// resync marker, then ids strictly ascend from inside the ring.
	got := collectSSE(t, bBase, 1, bSt.LastEventID)
	if got[0].Type != "resync" {
		t.Fatalf("first relay frame %+v, want resync", got[0])
	}
	for i := 2; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("relay ids not increasing: %+v", got)
		}
	}
	if got[1].ID <= bSt.LastEventID-8 {
		t.Fatalf("relay replay started at %d, outside the 8-entry ring ending at %d",
			got[1].ID, bSt.LastEventID)
	}
	// The frames the relay still holds are the leader's, verbatim.
	want := collectSSE(t, leaderBase, got[1].ID-1, bSt.LastEventID)
	if !reflect.DeepEqual(got[1:], want) {
		t.Fatalf("relay ring frames diverge from leader's")
	}
}

// TestLeaderDrainPropagates: a leader drain ships the drain record and the
// final quanta, then the follower drains itself out cleanly with a journal
// that is a byte copy of the leader's.
func TestLeaderDrainPropagates(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	s2, fBase, fDir := startFollower(t, cfg, leaderBase)

	for i := 0; i < 3; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 3)

	// Drain through the follower: the POST redirects to the leader.
	resp, err := http.Post(fBase+"/api/v1/drain?wait=1", "application/json", nil)
	if err != nil {
		t.Fatalf("drain via follower: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain via follower: status %d", resp.StatusCode)
	}
	if err := s1.Wait(); err != nil {
		t.Fatalf("leader Wait: %v", err)
	}

	waitDone := make(chan error, 1)
	go func() { waitDone <- s2.Wait() }()
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("follower Wait: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("follower did not drain out after the leader's drain")
	}

	lRaw, _ := os.ReadFile(filepath.Join(cfg.JournalDir, persist.JournalFile))
	fRaw, _ := os.ReadFile(filepath.Join(fDir, persist.JournalFile))
	if len(lRaw) == 0 || !bytes.Equal(lRaw, fRaw) {
		t.Fatalf("follower journal not a byte copy at drain: leader %d bytes, follower %d",
			len(lRaw), len(fRaw))
	}
	live := liveStatuses(s2)
	ref, err := ReferenceResult(fDir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if !reflect.DeepEqual(live, ref) {
		t.Fatalf("drained follower diverged:\n live %+v\n ref  %+v", live, ref)
	}
}

// TestFollowerRejectsMismatchedConfig: a follower booted with a different
// engine configuration must wedge on the shipped header, not serve state it
// would compute differently.
func TestFollowerRejectsMismatchedConfig(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	_, leaderBase := startCrashable(t, cfg)
	bad := replCfg("", "")
	bad.Seed = 99 // any header field mismatch must be fatal
	s2, fBase, _ := startFollower(t, bad, leaderBase)

	deadline := time.Now().Add(10 * time.Second)
	for {
		var h HealthDTO
		getJSON(t, fBase+"/healthz", &h)
		if h.Status == "failing" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mismatched follower never failed: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
	err := s2.Wait()
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("Wait = %v, want configuration-mismatch error", err)
	}
}

// TestPromoteRequiresReplicatedState: a follower that has not applied the
// leader's header yet (nothing replicated) refuses promotion.
func TestPromoteRequiresReplicatedState(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	// No leader at this address: the follower can never apply anything.
	s, _ := func() (*Server, string) {
		c := cfg
		c.JournalDir = t.TempDir()
		c.FollowURL = "http://127.0.0.1:1"
		return startCrashable(t, c)
	}()
	if err := s.Promote("test"); err == nil {
		t.Fatal("promoted a follower with no replicated state")
	}
	s.tailer.Stop() // let cleanup finish promptly
}

// TestClientReadFailover: reads rotate to a follower when the primary target
// is gone; writes against a follower Base ride the 307 to the leader.
func TestClientReadFailover(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	_, fBase, _ := startFollower(t, cfg, leaderBase)

	for i := 0; i < 2; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 2)
	waitReplBytes(t, fBase, s1.journal.Size())

	// Writes on a follower Base: the redirect delivers them to the leader.
	wc := NewClient(fBase)
	ack, err := wc.Submit(context.Background(), JobRequest{Kind: "batch", Seed: 50, Key: "failover-w"})
	if err != nil {
		t.Fatalf("submit via follower base: %v", err)
	}
	if len(ack.IDs) != 1 || ack.IDs[0] != 2 {
		t.Fatalf("submit via follower base: ids %v, want [2]", ack.IDs)
	}
	waitCompleted(t, leaderBase, 3)
	waitReplBytes(t, fBase, s1.journal.Size())

	// Reads with a dead primary: the client fails over to the follower.
	rc := NewClient("http://127.0.0.1:1") // reserved port: refused instantly
	rc.Group = []string{fBase}
	rc.MaxAttempts = 4
	rc.BaseDelay = time.Millisecond
	st, err := rc.State(context.Background())
	if err != nil {
		t.Fatalf("read with dead primary: %v", err)
	}
	if st.Completed != 3 {
		t.Fatalf("failover read: completed %d, want 3", st.Completed)
	}
	if rc.ReadRetargets.Load() == 0 {
		t.Fatal("failover read did not count a retarget")
	}
}

// TestRetargetFollower: after a failover, the surviving follower re-points at
// the promoted leader and keeps mirroring — including the new leader's own
// appended records.
func TestRetargetFollower(t *testing.T) {
	cfg := crashCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	s2, aBase, aDir := startFollower(t, crashCfg("", ""), leaderBase)
	s3, bBase, bDir := startFollower(t, crashCfg("", ""), leaderBase)

	for i := 0; i < 4; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitQuanta(t, s1, 3, 4)
	size := s1.journal.Size()
	waitReplBytes(t, aBase, size)
	waitReplBytes(t, bBase, size)
	crash(t, s1)

	// Promote A (both are caught up; either would do), retarget B at it.
	resp, err := http.Post(aBase+"/api/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	resp.Body.Close()
	body, _ := json.Marshal(retargetRequest{Leader: aBase})
	resp, err = http.Post(bBase+"/api/v1/retarget", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("retarget: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retarget: status %d", resp.StatusCode)
	}

	// New writes land on A and flow through to B.
	for i := 4; i < 6; i++ {
		submitKeyed(t, aBase, i)
	}
	waitQuanta(t, s2, s2.snapshot().QuantaElapsed+3, 6)
	waitReplBytes(t, bBase, s2.journal.Size())

	// Drain the new leader; B drains out with it. Comparisons happen only
	// after both have drained — a wall-clock leader keeps stepping between
	// any two mid-run reads, so live byte-compares would race.
	s2.Drain()
	if err := s2.Wait(); err != nil {
		t.Fatalf("new leader Wait: %v", err)
	}
	bDone := make(chan error, 1)
	go func() { bDone <- s3.Wait() }()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("retargeted follower Wait: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("retargeted follower did not drain out with the new leader")
	}

	aRaw, _ := os.ReadFile(filepath.Join(aDir, persist.JournalFile))
	bRaw, _ := os.ReadFile(filepath.Join(bDir, persist.JournalFile))
	if len(aRaw) == 0 || !bytes.Equal(aRaw, bRaw) {
		t.Fatalf("journals after drain: new leader %d bytes, follower %d", len(aRaw), len(bRaw))
	}
	if a, b := liveStatuses(s2), liveStatuses(s3); !reflect.DeepEqual(a, b) {
		t.Fatalf("retargeted follower diverged:\n new leader %+v\n follower   %+v", a, b)
	}
}

// TestDrainSyncFailureSurfaces: a journal fsync failure during the final
// drain flush must mark the daemon failing (healthz) and surface through
// Wait — hence the process exit code — instead of being logged and dropped.
func TestDrainSyncFailureSurfaces(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	cfg.Fsync = "never" // the drain-time Sync is then the only fsync
	s, base := startCrashable(t, cfg)

	submitKeyed(t, base, 0)
	waitCompleted(t, base, 1)
	s.journal.FailSyncForTest(errors.New("disk full"))
	s.Drain()
	select {
	case <-s.drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}

	var h HealthDTO
	code := getJSON(t, base+"/healthz", &h)
	if code != http.StatusServiceUnavailable || h.Status != "failing" {
		t.Fatalf("healthz after failed drain sync = %d %+v, want failing", code, h)
	}
	found := false
	for _, r := range h.Reasons {
		if strings.Contains(r, "journal sync at drain") {
			found = true
		}
	}
	if !found {
		t.Fatalf("healthz reasons %v lack the drain-sync failure", h.Reasons)
	}
	err := s.Wait()
	if err == nil || !strings.Contains(err.Error(), "journal sync at drain") {
		t.Fatalf("Wait = %v, want drain-sync failure", err)
	}
}
