package server

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"abg/internal/persist"
)

// startCrashable boots a journaled server whose lifecycle the test manages
// explicitly: no automatic drain or Wait, so the test can crash it.
func startCrashable(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(cancel)
	return s, "http://" + s.Addr()
}

// crash simulates SIGKILL on an in-process daemon: the driver loop stops
// dead (no drain, no final events), client connections are severed, and the
// journal file is released — exactly the state a killed process leaves on
// disk, since every append already went straight to the file.
func crash(t *testing.T, s *Server) {
	t.Helper()
	s.killed.Store(true)
	s.notify()
	select {
	case <-s.stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("driver did not stop after kill")
	}
	s.hsrv.Close()
	s.mu.Lock()
	if s.journal != nil {
		s.journal.Close()
	}
	s.mu.Unlock()
}

// submitKeyed posts one keyed batch job and asserts the acked id is dense.
func submitKeyed(t *testing.T, base string, i int) {
	t.Helper()
	code, ack, bad := postJobs(t, base, JobRequest{
		Kind: "batch", Name: fmt.Sprintf("rec-%d", i),
		Seed: uint64(100 + i), Key: fmt.Sprintf("rec-key-%d", i),
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit %d: status %d (%q)", i, code, bad.Error)
	}
	if len(ack.IDs) != 1 || ack.IDs[0] != i {
		t.Fatalf("submit %d: ids %v, want [%d]", i, ack.IDs, i)
	}
}

// waitQuanta polls until the engine has executed at least q quanta or every
// submitted job completed (idle — no more quanta will come).
func waitQuanta(t *testing.T, s *Server, q, submitted int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.snapshot()
		if st.QuantaElapsed >= q || (submitted > 0 && st.Completed >= submitted) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stuck at quantum %d (want %d, %d/%d done)",
				st.QuantaElapsed, q, st.Completed, submitted)
		}
		time.Sleep(time.Millisecond)
	}
}

// liveStatuses reads the final per-job statuses straight off the engine
// (valid after Wait: the driver is parked).
func liveStatuses(s *Server) []JobStatusDTO {
	sts := s.eng.Statuses()
	out := make([]JobStatusDTO, len(sts))
	for i, st := range sts {
		out[i] = statusDTO(st)
	}
	return out
}

// crashCfg is the shared shape of the recovery tests: a small machine on a
// fast wall clock (so crashes land mid-run), snapshotting aggressively.
func crashCfg(dir, faultSpec string) Config {
	return Config{
		P: 16, L: 50, Scheduler: "abg",
		Clock: ClockWall, Tick: time.Millisecond,
		QueueLimit: 100, Seed: 7,
		JournalDir: dir, SnapshotEvery: 4,
		FaultSpec: faultSpec,
	}
}

// TestRecoveryMatchesReference crashes a journaled daemon twice mid-run —
// once per fault-spec clause, plus fault-free and the A-Greedy scheduler —
// and checks the final per-job results equal ReferenceResult's
// uninterrupted replay of the same journal.
func TestRecoveryMatchesReference(t *testing.T) {
	specs := []struct{ name, fault, sched string }{
		{"nofault", "", "abg"},
		{"agreedy", "", "agreedy"},
		{"drop", "drop=0.3,seed=5", "abg"},
		{"delay", "delay=2:0.3,seed=5", "abg"},
		{"dup", "dup=0.3,seed=5", "abg"},
		{"noise", "noise=0.5,seed=5", "abg"},
		{"restart", "restart=0.3,restartat=1,maxrestarts=2,seed=5", "abg"},
		{"churn", "cap=churn:0.5:4,seed=5", "abg"},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := crashCfg(dir, tc.fault)
			cfg.Scheduler = tc.sched

			s1, base := startCrashable(t, cfg)
			for i := 0; i < 4; i++ {
				submitKeyed(t, base, i)
			}
			waitQuanta(t, s1, 3, 4)
			crash(t, s1)

			s2, base2 := startCrashable(t, cfg)
			var rec RecoveryDTO
			getJSON(t, base2+"/api/v1/recovery", &rec)
			if !rec.Recovered {
				t.Fatalf("first restart did not recover: %+v", rec)
			}
			for i := 4; i < 8; i++ {
				submitKeyed(t, base2, i)
			}
			waitQuanta(t, s2, s2.snapshot().QuantaElapsed+3, 8)
			crash(t, s2)

			s3, base3 := startCrashable(t, cfg)
			getJSON(t, base3+"/api/v1/recovery", &rec)
			if !rec.Recovered {
				t.Fatalf("second restart did not recover: %+v", rec)
			}
			for i := 8; i < 10; i++ {
				submitKeyed(t, base3, i)
			}
			s3.Drain()
			if err := s3.Wait(); err != nil {
				t.Fatalf("final drain: %v", err)
			}

			live := liveStatuses(s3)
			ref, err := ReferenceResult(dir)
			if err != nil {
				t.Fatalf("ReferenceResult: %v", err)
			}
			if len(live) != 10 || len(ref) != 10 {
				t.Fatalf("job counts: live %d, reference %d, want 10", len(live), len(ref))
			}
			for i := range ref {
				if !reflect.DeepEqual(live[i], ref[i]) {
					t.Errorf("job %d diverged:\n live %+v\n ref  %+v", i, live[i], ref[i])
				}
			}
		})
	}
}

// TestRecoveryIdempotentResubmit: a submission retried after a crash (same
// idempotency key) must answer with the original ids instead of admitting a
// second copy, and fresh submissions must continue the dense id sequence.
func TestRecoveryIdempotentResubmit(t *testing.T) {
	dir := t.TempDir()
	cfg := crashCfg(dir, "")

	s1, base := startCrashable(t, cfg)
	for i := 0; i < 3; i++ {
		submitKeyed(t, base, i)
	}
	waitQuanta(t, s1, 2, 3)
	crash(t, s1)

	_, base2 := startCrashable(t, cfg)
	req := JobRequest{Kind: "batch", Name: "rec-1", Seed: 101, Key: "rec-key-1"}
	code, ack, bad := postJobs(t, base2, req)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d (%q), want 200 duplicate", code, bad.Error)
	}
	if ack.State != "duplicate" || len(ack.IDs) != 1 || ack.IDs[0] != 1 {
		t.Fatalf("resubmit: got %+v, want duplicate of id 1", ack)
	}
	submitKeyed(t, base2, 3) // fresh key continues at the next dense id
}

// TestRecoveryTornTail: garbage appended to the journal (a torn write from
// the crash) is truncated at boot, and recovery proceeds from the clean
// prefix.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := crashCfg(dir, "")

	s1, base := startCrashable(t, cfg)
	for i := 0; i < 3; i++ {
		submitKeyed(t, base, i)
	}
	waitQuanta(t, s1, 3, 3)
	crash(t, s1)

	// A torn record: plausible length prefix, missing most of its payload.
	path := filepath.Join(dir, persist.JournalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.Write([]byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 2, 7}); err != nil {
		t.Fatalf("append torn tail: %v", err)
	}
	f.Close()

	s2, base2 := startCrashable(t, cfg)
	var rec RecoveryDTO
	getJSON(t, base2+"/api/v1/recovery", &rec)
	if !rec.Recovered || rec.TruncatedBytes != 10 {
		t.Fatalf("recovery = %+v, want recovered with 10 truncated bytes", rec)
	}
	s2.Drain()
	if err := s2.Wait(); err != nil {
		t.Fatalf("drain after torn-tail recovery: %v", err)
	}
	live := liveStatuses(s2)
	ref, err := ReferenceResult(dir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if !reflect.DeepEqual(live, ref) {
		t.Fatalf("torn-tail recovery diverged:\n live %+v\n ref  %+v", live, ref)
	}
}

// TestSSEReconnectWithoutLoss: a subscriber that disconnects and reconnects
// with Last-Event-ID receives exactly the events it missed, contiguously,
// with no resync marker.
func TestSSEReconnectWithoutLoss(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 20, Clock: ClockVirtual, QueueLimit: 50,
	})
	client := NewClient(base)
	ctx := context.Background()

	if _, err := client.Submit(ctx, JobRequest{Kind: "batch", Seed: 1}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitCompleted(t, base, 1)

	// First connection: take the first three events, then hang up.
	var first []SSEEvent
	last := ""
	_, err := client.streamOnce(ctx, &last, func(ev SSEEvent) error {
		first = append(first, ev)
		if len(first) == 3 {
			return ErrStopStream
		}
		return nil
	})
	if err != ErrStopStream {
		t.Fatalf("first stream: %v", err)
	}
	if len(first) != 3 || first[0].ID != 1 || first[2].ID != 3 {
		t.Fatalf("first events: %+v", first)
	}

	// Reconnect where we left off: ids continue at 4 with no gap and no
	// resync, through the ring replay.
	var second []SSEEvent
	_, err = client.streamOnce(ctx, &last, func(ev SSEEvent) error {
		if ev.Type == "resync" {
			t.Errorf("unexpected resync frame at id %d", ev.ID)
		}
		second = append(second, ev)
		if len(second) == 5 {
			return ErrStopStream
		}
		return nil
	})
	if err != ErrStopStream {
		t.Fatalf("second stream: %v", err)
	}
	for i, ev := range second {
		if want := uint64(4 + i); ev.ID != want {
			t.Fatalf("reconnect event %d has id %d, want %d (events %+v)", i, ev.ID, want, second)
		}
	}
}

// TestSSEReconnectAfterEviction: with a tiny replay ring, a subscriber too
// far behind receives a resync frame telling it to refetch absolute state,
// and the stream resumes from what the ring still holds.
func TestSSEReconnectAfterEviction(t *testing.T) {
	_, base := startServer(t, Config{
		P: 8, L: 20, Clock: ClockVirtual, QueueLimit: 50, EventRing: 8,
	})
	client := NewClient(base)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := client.Submit(ctx, JobRequest{Kind: "batch", Seed: uint64(i)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := waitCompleted(t, base, 3)
	if st.LastEventID <= 8+1 {
		t.Fatalf("only %d events; ring cannot have evicted", st.LastEventID)
	}

	// Pretend we saw event 1 and vanished: far more than 8 events later,
	// the ring has evicted our position.
	last := "1"
	var got []SSEEvent
	_, err := client.streamOnce(ctx, &last, func(ev SSEEvent) error {
		got = append(got, ev)
		if len(got) == 9 {
			return ErrStopStream
		}
		return nil
	})
	if err != ErrStopStream {
		t.Fatalf("stream: %v", err)
	}
	if got[0].Type != "resync" {
		t.Fatalf("first frame %+v, want resync", got[0])
	}
	// The resync contract: refetch absolute state, then trust the stream.
	var stNow StateDTO
	getJSON(t, base+"/api/v1/state", &stNow)
	if stNow.LastEventID < got[0].ID {
		t.Fatalf("state lastEventId %d behind resync id %d", stNow.LastEventID, got[0].ID)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Type != "" {
			t.Fatalf("frame %d: unexpected type %q", i, got[i].Type)
		}
		if got[i].ID <= got[i-1].ID && got[i-1].Type == "" {
			t.Fatalf("ids not increasing: %+v", got)
		}
	}
	// Replay resumes inside the ring: the first data frame is one of the
	// last 8 ids, nowhere near our stale position.
	if got[1].ID <= stNow.LastEventID-8 {
		t.Fatalf("replay started at %d, outside the %d-entry ring ending at %d",
			got[1].ID, 8, stNow.LastEventID)
	}
}
