package server

import (
	"fmt"

	"abg/internal/obs"
	"abg/internal/sim"
)

// External drive. The cluster layer (internal/cluster) embeds N Servers as
// engine shards behind one front door. A shard is never Start()ed — it binds
// no listener and runs no driver goroutine; instead the cluster's driver
// calls the methods below, in lockstep rounds, from a single goroutine:
//
//	for each round:
//	  desire[k] = shard[k].AggregateDesire()        (serial)
//	  share[k]  = clusterAllocator(desire, totalP)
//	  shard[k].SetShare(share[k])                   (serial)
//	  shard[k].StepExternal(idleOK)                 (parallel across shards)
//
// Everything else a shard owns — journaling, snapshots, recovery, the SSE
// hub with its exact event ids, idempotency dedup, per-shard metrics —
// works unchanged, because StepExternal is the same stepOnce the internal
// clock drives. Concurrent StepExternal calls on *different* shards are safe
// (each shard's mutable state is guarded by its own mutex and its own bus);
// a single shard must only ever be stepped by one goroutine at a time.

// StepExternal admits everything queued at the current boundary and advances
// the engine one quantum, exactly as one tick of the internal quantum clock
// would. idleOK selects whether an empty shard still consumes a boundary
// (wall clock: yes; virtual clock: no).
func (s *Server) StepExternal(idleOK bool) { s.stepOnce(idleOK) }

// NeedsSteps reports whether the shard still has work the driver must step:
// unfinished jobs or queued admissions, and no fatal error (a wedged shard
// cannot make progress; stepping it forever would hang the cluster's drain).
func (s *Server) NeedsSteps() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal == nil && (!s.eng.Done() || len(s.queue) > 0)
}

// AggregateDesire is the shard's second-level processor request: the sum of
// its unfinished jobs' current integer requests (sim.Engine.AggregateRequest)
// plus one processor per queued job, so a shard whose work is still in the
// admission queue is not starved of the capacity it needs to start it.
func (s *Server) AggregateDesire() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.AggregateRequest() + len(s.queue)
}

// SetShare pins the cluster-assigned capacity share for the quantum the next
// StepExternal will execute. No-op unless the shard was built with a
// ShareTable capacity override (Config.Capacity).
func (s *Server) SetShare(share int) {
	t, ok := s.capacity.(*ShareTable)
	if !ok {
		return
	}
	s.mu.Lock()
	t.Set(s.eng.Boundary()+1, share)
	s.mu.Unlock()
}

// DrainEngine flushes any straggler admissions and closes engine admission,
// exactly as the internal drain path does before its final fast-forward.
// The cluster calls it once per shard before the closing rounds so that
// snapshots written during those rounds record the engine as draining —
// keeping a one-shard cluster's journal byte-identical to a single daemon's.
func (s *Server) DrainEngine() {
	s.mu.Lock()
	if s.fatal == nil {
		s.admitLocked()
	}
	if s.fatal == nil {
		s.eng.Drain()
	}
	s.mu.Unlock()
}

// FinishExternal completes an externally-driven drain: flush any straggler
// admissions, close engine admission, run any remaining quanta (normally
// none — the driver steps until NeedsSteps is false first), sync and close
// the journal, and release the shard's SSE clients and lifecycle channels.
// Returns the shard's verdict the way Wait does: the first fatal error, or
// the invariant checker's, or nil.
func (s *Server) FinishExternal() error {
	s.mu.Lock()
	if s.fatal == nil {
		s.admitLocked()
	}
	if s.fatal == nil {
		s.eng.Drain()
		for !s.eng.Done() {
			if s.journalStepLocked() != nil {
				break
			}
			if _, err := s.eng.Step(); err != nil {
				s.failLocked(err)
				break
			}
			s.maybeSnapshotLocked()
		}
	}
	if s.fatal == nil && s.journal != nil {
		if err := s.journal.Sync(); err != nil {
			// Same contract as the internal drain: a torn final flush is a
			// failing shard, not a clean shutdown.
			s.failLocked(fmt.Errorf("journal sync at drain: %w", err))
		}
	}
	err := s.fatal
	if s.journal != nil {
		_ = s.journal.Close()
	}
	s.mu.Unlock()
	s.hub.closeAll()
	s.closeDrained()
	s.closeStopped()
	if err != nil {
		return err
	}
	if s.checker != nil {
		return s.checker.Err()
	}
	return nil
}

// Kill simulates SIGKILL for crash-recovery tests: the driver (if one is
// running) stops dead without draining, and the journal file handle is
// released without a final sync — exactly the state a killed process leaves
// on disk, since every append already went straight to the file.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.notify()
	s.mu.Lock()
	if s.journal != nil {
		_ = s.journal.Close()
	}
	s.mu.Unlock()
}

// Fatal returns the shard's first fatal error, if any.
func (s *Server) Fatal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// Draining reports whether admission has been closed.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth returns the admission queue's current depth.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Load is the router's load signal: queued plus admitted-but-unfinished jobs.
func (s *Server) Load() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + s.eng.Remaining()
}

// Snapshot returns the shard-wide state snapshot (the /api/v1/state body).
func (s *Server) Snapshot() StateDTO { return s.snapshot() }

// LookupJob resolves a shard-local job id to its status DTO.
func (s *Server) LookupJob(id int) (JobStatusDTO, bool) { return s.lookupJob(id) }

// JobHistory returns a job's lifecycle transitions.
func (s *Server) JobHistory(id int) []HistoryEntry { return s.hist.get(id) }

// JobStatuses returns every job's status — engine-held jobs in ascending id
// order, then still-queued ones (the GET /api/v1/jobs body).
func (s *Server) JobStatuses() []JobStatusDTO {
	s.mu.Lock()
	defer s.mu.Unlock()
	sts := s.eng.Statuses()
	out := make([]JobStatusDTO, 0, len(sts)+len(s.queue))
	for _, st := range sts {
		out = append(out, statusDTO(st))
	}
	for _, p := range s.queue {
		out = append(out, JobStatusDTO{
			ID: p.id, Name: p.name, State: "queued",
			Work: p.profile.Work(), CriticalPath: p.profile.CriticalPathLen(),
		})
	}
	return out
}

// JobTimeline returns a job's quantum-timeline DTO (the
// GET /api/v1/jobs/{id}/timeline body), or false for an unknown job.
func (s *Server) JobTimeline(id int) (TimelineDTO, bool) {
	s.mu.Lock()
	samples, evicted, known := s.eng.Timeline(id)
	st, _ := s.eng.JobStatus(id)
	s.mu.Unlock()
	if !known {
		dto, ok := s.lookupJob(id)
		if !ok {
			return TimelineDTO{}, false
		}
		return TimelineDTO{
			ID: id, Name: dto.Name, State: dto.State,
			Ring: s.cfg.TimelineRing, Samples: []sim.QuantumSample{},
		}, true
	}
	if samples == nil {
		samples = []sim.QuantumSample{}
	}
	return TimelineDTO{
		ID: id, Name: st.Name, State: st.State.String(),
		Ring: s.cfg.TimelineRing, Evicted: evicted, Samples: samples,
	}, true
}

// TraceByID returns a registered request trace.
func (s *Server) TraceByID(id string) (TraceDTO, bool) { return s.traces.get(id) }

// IdemKeys returns a copy of the idempotency-key table (key → promised ids).
// The cluster front end rebuilds its key → shard routing from this at boot,
// so a recovered cluster keeps deduplicating retries of pre-crash acks.
func (s *Server) IdemKeys() map[string][]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]int, len(s.keys))
	for k, ids := range s.keys {
		out[k] = append([]int(nil), ids...)
	}
	return out
}

// NextID returns the next job id this shard will assign.
func (s *Server) NextID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// SSESeq returns the id of the shard's most recently published SSE event.
func (s *Server) SSESeq() uint64 { return s.hub.Seq() }

// Health returns the shard's health verdict and its HTTP status code.
func (s *Server) Health() (HealthDTO, int) { return s.health() }

// Recovery returns the boot-time recovery report.
func (s *Server) Recovery() RecoveryDTO {
	s.mu.Lock()
	defer s.mu.Unlock()
	dto := s.recovery
	dto.Snapshots = s.snapshotCount
	dto.LastSnapshotQuantum = s.lastSnapQ
	return dto
}

// MetricsRegistry returns the shard's metric registry, and SampleMetrics
// refreshes its scrape-sampled gauges — the cluster's /metrics renders every
// shard's registry under a shard label (promexport.WriteSets).
func (s *Server) MetricsRegistry() *obs.Registry { return s.metrics.reg }

// SampleMetrics refreshes the scrape-sampled gauges (see MetricsRegistry).
func (s *Server) SampleMetrics() { s.sampleMetrics() }

// MarshalEvent renders one instrumentation event exactly as the SSE stream
// does — the cluster's merged stream reuses it so a one-shard cluster's
// frames are byte-identical to a single daemon's.
func MarshalEvent(e obs.Event) []byte { return marshalEvent(e) }
