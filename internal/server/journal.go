package server

import (
	"encoding/json"
	"fmt"

	"abg/internal/persist"
)

// The daemon's write-ahead journal records every externally-sourced piece of
// nondeterminism, so that snapshot + replay reconstructs the exact engine a
// crashed daemon was running:
//
//	header    the configuration fingerprint the journal was written under —
//	          replaying under a different machine or scheduler would diverge
//	          silently, so recovery refuses a mismatched journal
//	submit    one acked POST /api/v1/jobs: the normalized request (which
//	          pins the generated profiles), the ids promised to the client,
//	          and the idempotency key; written BEFORE the ack goes out
//	admit     the quantum boundary at which a batch of queued jobs entered
//	          the engine — the one scheduling decision the clock makes
//	drain     admission closed (operator intent survives a crash)
//	snapshot  a sim.Engine snapshot plus the SSE sequence counter, letting
//	          recovery replay only the journal tail
//	step      the engine executed one working quantum boundary — the record
//	          that turns the journal into a complete op log, so a follower's
//	          state is a pure function of how many journal bytes it applied
//	epoch     a leadership change: the first record a promoted leader appends,
//	          framed under the new epoch, carrying the epoch again plus the
//	          new leader's advertised URL — the durable fence that lets every
//	          replica reject a resurrected stale leader's records
//
// Everything else the daemon does is a deterministic function of these
// records, so nothing else is journaled.

// headerRecord fingerprints the configuration a journal belongs to.
type headerRecord struct {
	p, l      int
	scheduler string
	r         float64
	rho       float64
	delta     float64
	faultSpec string
	seed      uint64
}

const journalFormatVersion byte = 1

func (s *Server) headerRecord() headerRecord {
	return headerRecord{
		p: s.cfg.P, l: s.cfg.L, scheduler: s.cfg.Scheduler,
		r: s.cfg.R, rho: s.cfg.Rho, delta: s.cfg.Delta,
		faultSpec: s.cfg.FaultSpec, seed: s.cfg.Seed,
	}
}

func encodeHeader(h headerRecord) []byte {
	e := persist.Enc{}
	e.Uvarint(uint64(journalFormatVersion))
	e.Int(h.p)
	e.Int(h.l)
	e.String(h.scheduler)
	e.Float(h.r)
	e.Float(h.rho)
	e.Float(h.delta)
	e.String(h.faultSpec)
	e.Uvarint(h.seed)
	return e.Bytes()
}

func decodeHeader(body []byte) (headerRecord, error) {
	d := persist.NewDec(body)
	if v := d.Uvarint(); d.Err() == nil && v != uint64(journalFormatVersion) {
		return headerRecord{}, fmt.Errorf("journal format version %d, this build reads %d",
			v, journalFormatVersion)
	}
	h := headerRecord{
		p: d.Int(), l: d.Int(), scheduler: d.String(),
		r: d.Float(), rho: d.Float(), delta: d.Float(),
		faultSpec: d.String(), seed: d.Uvarint(),
	}
	if err := d.Err(); err != nil {
		return headerRecord{}, fmt.Errorf("journal header: %w", err)
	}
	return h, nil
}

// submitRecord is one acknowledged submission: the ids handed to the client
// and the normalized request that deterministically regenerates the jobs.
type submitRecord struct {
	firstID int
	count   int
	key     string
	req     JobRequest
}

func encodeSubmit(rec submitRecord) ([]byte, error) {
	body, err := json.Marshal(rec.req)
	if err != nil {
		return nil, fmt.Errorf("journal submit record: %w", err)
	}
	e := persist.Enc{}
	e.Int(rec.firstID)
	e.Int(rec.count)
	e.String(rec.key)
	e.BytesField(body)
	return e.Bytes(), nil
}

func decodeSubmit(body []byte) (submitRecord, error) {
	d := persist.NewDec(body)
	rec := submitRecord{firstID: d.Int(), count: d.Int(), key: d.String()}
	raw := d.BytesField()
	if err := d.Err(); err != nil {
		return submitRecord{}, fmt.Errorf("journal submit record: %w", err)
	}
	if err := json.Unmarshal(raw, &rec.req); err != nil {
		return submitRecord{}, fmt.Errorf("journal submit record: %w", err)
	}
	if rec.firstID < 0 || rec.count < 1 || rec.count != rec.req.Count {
		return submitRecord{}, fmt.Errorf("journal submit record: implausible ids %d+%d (req count %d)",
			rec.firstID, rec.count, rec.req.Count)
	}
	return rec, nil
}

// admitRecord pins the quantum boundary at which a batch of queued jobs was
// handed to the engine.
type admitRecord struct {
	boundary int
	ids      []int
}

func encodeAdmit(rec admitRecord) []byte {
	e := persist.Enc{}
	e.Int(rec.boundary)
	e.Int(len(rec.ids))
	for _, id := range rec.ids {
		e.Int(id)
	}
	return e.Bytes()
}

func decodeAdmit(body []byte) (admitRecord, error) {
	d := persist.NewDec(body)
	rec := admitRecord{boundary: d.Int()}
	n := d.Int()
	if d.Err() == nil && (n < 1 || n > d.Len()) {
		return admitRecord{}, fmt.Errorf("journal admit record: implausible id count %d", n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		rec.ids = append(rec.ids, d.Int())
	}
	if err := d.Err(); err != nil {
		return admitRecord{}, fmt.Errorf("journal admit record: %w", err)
	}
	if rec.boundary < 0 {
		return admitRecord{}, fmt.Errorf("journal admit record: negative boundary %d", rec.boundary)
	}
	return rec, nil
}

// stepRecord pins one executed quantum boundary. Submissions, admissions and
// drains alone recover a crashed daemon (everything downstream is replayed
// deterministically), but they do not tell a *live reader* how far the engine
// has actually run — which is exactly what a replicating follower must know.
// With a step record journaled before every working quantum, the journal
// becomes the daemon's complete op log: a follower that has applied the first
// N bytes holds the same engine state the leader held at that point in its
// own journal, byte for byte. Idle boundaries (no unfinished jobs) are not
// journaled; they execute no work and emit no events, and the replay loop
// reconstructs them from the next record's boundary.
type stepRecord struct {
	boundary int // engine boundary at which the step executes (pre-step)
	// share is the cluster-assigned capacity share under which this quantum
	// executed, or -1 outside cluster mode. A shard's share depends on the
	// other shards' desires — external nondeterminism its own journal could
	// not otherwise reconstruct — so it is pinned here, keeping each shard's
	// recovery a pure function of its own journal bytes. Single-engine
	// daemons encode no share at all, so their journal bytes are unchanged
	// (and old journals decode as share -1).
	share int
}

func encodeStep(rec stepRecord) []byte {
	e := persist.Enc{}
	e.Int(rec.boundary)
	if rec.share >= 0 {
		e.Int(rec.share)
	}
	return e.Bytes()
}

func decodeStep(body []byte) (stepRecord, error) {
	d := persist.NewDec(body)
	rec := stepRecord{boundary: d.Int(), share: -1}
	if d.Err() == nil && d.Len() > 0 {
		rec.share = d.Int()
	}
	if err := d.Err(); err != nil {
		return stepRecord{}, fmt.Errorf("journal step record: %w", err)
	}
	if rec.boundary < 0 {
		return stepRecord{}, fmt.Errorf("journal step record: negative boundary %d", rec.boundary)
	}
	if rec.share < -1 {
		return stepRecord{}, fmt.Errorf("journal step record: negative share %d", rec.share)
	}
	return rec, nil
}

// epochRecord marks a leadership change. The epoch duplicates the record's
// framing epoch on purpose: the body survives decoding contexts that do not
// see the framing, and the cross-check catches a corrupted promotion. Leader
// is the promoted daemon's advertised URL, so replicas applying the record
// learn where writes now live without any out-of-band discovery.
type epochRecord struct {
	epoch  uint32
	leader string
}

func encodeEpoch(rec epochRecord) []byte {
	e := persist.Enc{}
	e.Uvarint(uint64(rec.epoch))
	e.String(rec.leader)
	return e.Bytes()
}

func decodeEpoch(body []byte) (epochRecord, error) {
	d := persist.NewDec(body)
	rec := epochRecord{epoch: uint32(d.Uvarint()), leader: d.String()}
	if err := d.Err(); err != nil {
		return epochRecord{}, fmt.Errorf("journal epoch record: %w", err)
	}
	if rec.epoch < 2 {
		// Epoch 1 is the journal's birth term; a promotion can only ever
		// step beyond it.
		return epochRecord{}, fmt.Errorf("journal epoch record: implausible epoch %d", rec.epoch)
	}
	return rec, nil
}

// snapshotRecord carries one engine snapshot plus the server-side counters
// that must survive with it.
type snapshotRecord struct {
	boundary int
	quanta   int
	sseSeq   uint64
	engine   []byte
}

func encodeSnapshot(rec snapshotRecord) []byte {
	e := persist.Enc{}
	e.Int(rec.boundary)
	e.Int(rec.quanta)
	e.Uvarint(rec.sseSeq)
	e.BytesField(rec.engine)
	return e.Bytes()
}

func decodeSnapshot(body []byte) (snapshotRecord, error) {
	d := persist.NewDec(body)
	rec := snapshotRecord{
		boundary: d.Int(), quanta: d.Int(), sseSeq: d.Uvarint(),
	}
	rec.engine = append([]byte(nil), d.BytesField()...)
	if err := d.Err(); err != nil {
		return snapshotRecord{}, fmt.Errorf("journal snapshot record: %w", err)
	}
	return rec, nil
}

// appendJournal appends one record, treating a write failure as fatal: a
// daemon that cannot journal can no longer promise recoverability, so it
// drains rather than keep acking submissions it might forget. No-op without
// a journal. Caller holds s.mu.
func (s *Server) appendJournal(kind byte, body []byte) error {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Append(kind, body); err != nil {
		s.failLocked(fmt.Errorf("journal append: %w", err))
		return err
	}
	return nil
}
