package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"abg/internal/persist"
)

// chaosProxy is a TCP forwarder standing in front of one daemon. It solves
// two test problems at once: the group membership must be configured before
// any daemon binds its :0-assigned port (the proxy's address is known
// up-front), and a partition must be inducible without touching the daemon
// (setDown severs every established stream and refuses new ones, exactly
// what an unplugged network cable does).
type chaosProxy struct {
	t      *testing.T
	ln     net.Listener
	mu     sync.Mutex
	target string
	down   bool
	conns  map[net.Conn]struct{}
}

func newChaosProxy(t *testing.T) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &chaosProxy{t: t, ln: ln, conns: map[net.Conn]struct{}{}}
	t.Cleanup(func() {
		ln.Close()
		p.setDown(true)
	})
	go p.accept()
	return p
}

func (p *chaosProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) setTarget(base string) {
	p.mu.Lock()
	p.target = strings.TrimPrefix(base, "http://")
	p.mu.Unlock()
}

// setDown(true) partitions the fronted daemon: established connections are
// severed and new ones closed on accept. setDown(false) heals it.
func (p *chaosProxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	if down {
		for c := range p.conns {
			c.Close()
		}
		p.conns = map[net.Conn]struct{}{}
	}
	p.mu.Unlock()
}

func (p *chaosProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(c)
	}
}

func (p *chaosProxy) serve(c net.Conn) {
	p.mu.Lock()
	target, down := p.target, p.down
	p.mu.Unlock()
	if down || target == "" {
		c.Close()
		return
	}
	up, err := net.Dial("tcp", target)
	if err != nil {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		c.Close()
		up.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	done := make(chan struct{}, 2)
	go func() { io.Copy(up, c); done <- struct{}{} }()
	go func() { io.Copy(c, up); done <- struct{}{} }()
	<-done
	c.Close()
	up.Close()
	<-done
	p.mu.Lock()
	delete(p.conns, c)
	delete(p.conns, up)
	p.mu.Unlock()
}

// failoverCfg is the grouped engine shape of the failover tests: the
// replication tests' virtual-clock config plus supervisor timers fast
// enough that an election completes in a few hundred milliseconds.
func failoverCfg(dir string, group []string, advertise string) Config {
	cfg := replCfg(dir, "")
	cfg.Group = group
	cfg.Advertise = advertise
	cfg.ProbeEvery = 20 * time.Millisecond
	cfg.FailAfter = 150 * time.Millisecond
	cfg.FailoverSeed = 1
	return cfg
}

// waitRepl polls base's replication status until ok accepts it.
func waitRepl(t *testing.T, base, what string, ok func(ReplicationDTO) bool) ReplicationDTO {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var dto ReplicationDTO
	for time.Now().Before(deadline) {
		getJSON(t, base+"/api/v1/replication", &dto)
		if ok(dto) {
			return dto
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: timed out waiting for %s (%+v)", base, what, dto)
	return dto
}

type member struct {
	srv  *Server
	base string // direct URL the test talks to
	dir  string // journal directory
	adv  string // advertised (proxy) URL peers and clients dial
}

// waitElected polls the members until one serves as a confirmed, unfenced
// leader at or beyond epoch, and returns its index.
func waitElected(t *testing.T, members []member, epoch uint32) int {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for i, m := range members {
			var dto ReplicationDTO
			getJSON(t, m.base+"/api/v1/replication", &dto)
			if dto.Role == "leader" && dto.Confirmed && !dto.Fenced && dto.Epoch >= epoch {
				return i
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no member reached confirmed leadership at epoch %d", epoch)
	return -1
}

// TestGroupElectsOnLeaderDeath is the tentpole guarantee: in a three-member
// group, killing the leader costs zero operator action. The survivors
// detect the death, a quorum promotes the caught-up follower under epoch 2,
// the loser retargets onto the winner, writes resume with dense ids, and
// the promoted run still equals the reference replay of its journal.
func TestGroupElectsOnLeaderDeath(t *testing.T) {
	pA, pB, pC := newChaosProxy(t), newChaosProxy(t), newChaosProxy(t)
	group := []string{pA.URL(), pB.URL(), pC.URL()}

	cfg := failoverCfg(t.TempDir(), group, pA.URL())
	s1, leaderBase := startCrashable(t, cfg)
	pA.setTarget(leaderBase)
	s2, bBase, bDir := startFollower(t, failoverCfg("", group, pB.URL()), pA.URL())
	pB.setTarget(bBase)
	s3, cBase, cDir := startFollower(t, failoverCfg("", group, pC.URL()), pA.URL())
	pC.setTarget(cBase)

	// A grouped leader boots unconfirmed: its first clean probe round (a
	// quorum reachable, no higher epoch anywhere) opens the write gate.
	waitRepl(t, leaderBase, "confirmed leader", func(d ReplicationDTO) bool {
		return d.Role == "leader" && d.Confirmed && d.Epoch == 1
	})

	for i := 0; i < 4; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 4)
	size := s1.journal.Size()
	waitReplBytes(t, bBase, size)
	waitReplBytes(t, cBase, size)
	crash(t, s1)

	// Nobody posts /promote. Within FailAfter the survivors elect.
	members := []member{
		{s2, bBase, bDir, pB.URL()},
		{s3, cBase, cDir, pC.URL()},
	}
	w := waitElected(t, members, 2)
	win, lose := members[w], members[1-w]
	var dto ReplicationDTO
	getJSON(t, win.base+"/api/v1/replication", &dto)
	if dto.Epoch != 2 || dto.Promotions != 1 {
		t.Fatalf("winner %+v, want epoch 2 with exactly 1 promotion", dto)
	}
	// Every response now carries the new term.
	resp, err := http.Get(win.base + "/api/v1/state")
	if err != nil {
		t.Fatalf("winner state: %v", err)
	}
	resp.Body.Close()
	if e := resp.Header.Get(EpochHeader); e != "2" {
		t.Fatalf("winner %s = %q, want 2", EpochHeader, e)
	}

	// The losing follower retargets onto the winner, no operator involved.
	waitRepl(t, lose.base, "retarget onto winner", func(d ReplicationDTO) bool {
		return d.Role == "follower" && d.Tail != nil &&
			d.Tail.Leader == win.adv && d.Tail.Connected
	})

	// Writes resume against the new leader with dense ids.
	for i := 4; i < 8; i++ {
		submitKeyed(t, win.base, i)
	}
	waitCompleted(t, win.base, 8)
	waitReplBytes(t, lose.base, win.srv.journal.Size())

	// Drain the new leader; the survivor drains out with it. The surviving
	// journals are byte-identical and the promoted run equals the
	// uninterrupted reference replay.
	win.srv.Drain()
	if err := win.srv.Wait(); err != nil {
		t.Fatalf("winner Wait: %v", err)
	}
	loseDone := make(chan error, 1)
	go func() { loseDone <- lose.srv.Wait() }()
	select {
	case err := <-loseDone:
		if err != nil {
			t.Fatalf("survivor Wait: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("survivor did not drain out with the new leader")
	}
	wRaw, _ := os.ReadFile(filepath.Join(win.dir, persist.JournalFile))
	lRaw, _ := os.ReadFile(filepath.Join(lose.dir, persist.JournalFile))
	if len(wRaw) == 0 || !bytes.Equal(wRaw, lRaw) {
		t.Fatalf("surviving journals differ: winner %d bytes, loser %d", len(wRaw), len(lRaw))
	}
	live := liveStatuses(win.srv)
	ref, err := ReferenceResult(win.dir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if len(live) != 8 || !reflect.DeepEqual(live, ref) {
		t.Fatalf("promoted run diverged from reference:\n live %+v\n ref  %+v", live, ref)
	}
	if l := liveStatuses(lose.srv); !reflect.DeepEqual(live, l) {
		t.Fatalf("survivor diverged from winner:\n winner   %+v\n survivor %+v", live, l)
	}
}

// TestConcurrentPromoteSerializes: two operators race POST /api/v1/promote
// against two followers of the same dead leader. The claims serialize
// through the quorum's promises — exactly one wins (the longer journal
// prefix), and the loser's 409 names the winner.
func TestConcurrentPromoteSerializes(t *testing.T) {
	pA, pB, pC := newChaosProxy(t), newChaosProxy(t), newChaosProxy(t)
	feedC := newChaosProxy(t) // C's private feed: cuttable without hiding A
	group := []string{pA.URL(), pB.URL(), pC.URL()}

	// Inert supervisors on the followers (slow probes, a minute of grace):
	// every promotion below is operator-driven, never the watchdog's.
	aCfg := failoverCfg(t.TempDir(), group, pA.URL())
	aCfg.FailAfter = time.Minute
	s1, leaderBase := startCrashable(t, aCfg)
	pA.setTarget(leaderBase)
	feedC.setTarget(leaderBase)
	bCfg := failoverCfg("", group, pB.URL())
	bCfg.ProbeEvery, bCfg.FailAfter = 30*time.Second, time.Minute
	s2, bBase, _ := startFollower(t, bCfg, pA.URL())
	pB.setTarget(bBase)
	cCfg := failoverCfg("", group, pC.URL())
	cCfg.ProbeEvery, cCfg.FailAfter = 30*time.Second, time.Minute
	_, cBase, _ := startFollower(t, cCfg, feedC.URL())
	pC.setTarget(cBase)

	waitRepl(t, leaderBase, "confirmed leader", func(d ReplicationDTO) bool {
		return d.Role == "leader" && d.Confirmed
	})
	for i := 0; i < 2; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 2)
	sz1 := s1.journal.Size()
	waitReplBytes(t, bBase, sz1)
	waitReplBytes(t, cBase, sz1)

	// Cut C's feed, then keep writing: B ends up with the longer prefix.
	feedC.setDown(true)
	for i := 2; i < 4; i++ {
		submitKeyed(t, leaderBase, i)
	}
	waitCompleted(t, leaderBase, 4)
	sz2 := s1.journal.Size()
	if sz2 <= sz1 {
		t.Fatalf("journal did not grow: %d then %d", sz1, sz2)
	}
	waitReplBytes(t, bBase, sz2)
	crash(t, s1)

	type promoteResult struct {
		code   int
		winner string
		dto    ReplicationDTO
	}
	promote := func(base string) promoteResult {
		resp, err := http.Post(base+"/api/v1/promote", "application/json", nil)
		if err != nil {
			t.Errorf("promote %s: %v", base, err)
			return promoteResult{}
		}
		defer resp.Body.Close()
		r := promoteResult{code: resp.StatusCode, winner: resp.Header.Get(WinnerHeader)}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&r.dto); err != nil {
				t.Errorf("promote %s: decode: %v", base, err)
			}
		}
		return r
	}
	var rb, rc promoteResult
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); rb = promote(bBase) }()
	go func() { defer wg.Done(); rc = promote(cBase) }()
	wg.Wait()

	// B holds the longer journal: it must win no matter how the two claims
	// interleaved, and C's refusal must point the operator at B. (The new
	// epoch is sealed on the follow goroutine right after the 200, so it is
	// asserted via the poll below, not the instant response.)
	if rb.code != http.StatusOK || rb.dto.Role != "leader" {
		t.Fatalf("longer-prefix promote = %d %+v, want 200 leader", rb.code, rb.dto)
	}
	if rc.code != http.StatusConflict {
		t.Fatalf("shorter-prefix promote = %d, want 409", rc.code)
	}
	if rc.winner != pB.URL() {
		t.Fatalf("loser's %s = %q, want winner %q", WinnerHeader, rc.winner, pB.URL())
	}
	if dto := waitRepl(t, bBase, "winner serving", func(d ReplicationDTO) bool {
		return d.Role == "leader" && d.Confirmed && d.Epoch >= 2
	}); dto.Promotions != 1 {
		t.Fatalf("winner promotions = %d, want 1", dto.Promotions)
	}
	var cDto ReplicationDTO
	getJSON(t, cBase+"/api/v1/replication", &cDto)
	if cDto.Role != "follower" {
		t.Fatalf("loser role = %q, want follower", cDto.Role)
	}

	// A second promote against the loser keeps losing: the winner is now a
	// reachable live leader and denies every claim.
	if again := promote(cBase); again.code != http.StatusConflict || again.winner != pB.URL() {
		t.Fatalf("re-promote = %d winner %q, want 409 naming %q", again.code, again.winner, pB.URL())
	}

	// The winner's write gate is open.
	submitKeyed(t, bBase, 4)
	waitCompleted(t, bBase, 5)
	_ = s2
}

// TestSplitBrainFencesOldLeader: partition a leader that keeps accepting a
// write, let the majority elect a successor, and heal. The old leader must
// fence itself (409s naming the successor, "fenced" health, non-zero exit),
// and the write it acked during the partition must never reach a surviving
// journal — the survivors stay byte-identical and their id sequence shows
// no trace of it.
func TestSplitBrainFencesOldLeader(t *testing.T) {
	pA, pB, pC := newChaosProxy(t), newChaosProxy(t), newChaosProxy(t)
	group := []string{pA.URL(), pB.URL(), pC.URL()}

	aDir := t.TempDir()
	aCfg := failoverCfg(aDir, group, pA.URL())
	// Slow probes on A: the deposed leader takes a beat to learn of the new
	// epoch, which is the split-brain window the acked-but-lost write needs.
	aCfg.ProbeEvery = 250 * time.Millisecond
	s1, aBase := startCrashable(t, aCfg)
	pA.setTarget(aBase)
	s2, bBase, bDir := startFollower(t, failoverCfg("", group, pB.URL()), pA.URL())
	pB.setTarget(bBase)
	s3, cBase, cDir := startFollower(t, failoverCfg("", group, pC.URL()), pA.URL())
	pC.setTarget(cBase)

	waitRepl(t, aBase, "confirmed leader", func(d ReplicationDTO) bool {
		return d.Role == "leader" && d.Confirmed
	})
	for i := 0; i < 2; i++ {
		submitKeyed(t, aBase, i)
	}
	waitCompleted(t, aBase, 2)
	size := s1.journal.Size()
	waitReplBytes(t, bBase, size)
	waitReplBytes(t, cBase, size)

	// Partition the leader: peers cannot reach A, but A keeps running.
	pA.setDown(true)

	// The split-brain write: A has not learned of its deposition yet, so it
	// still acks — into a journal no survivor will ever mirror.
	code, ack, bad := postJobs(t, aBase, JobRequest{
		Kind: "batch", Name: "split-brain-lost", Seed: 99, Key: "split-brain-lost",
	})
	if code != http.StatusAccepted {
		t.Fatalf("write to partitioned leader: status %d (%q)", code, bad.Error)
	}
	if len(ack.IDs) != 1 || ack.IDs[0] != 2 {
		t.Fatalf("write to partitioned leader: ids %v, want [2]", ack.IDs)
	}

	// The majority elects without A.
	members := []member{
		{s2, bBase, bDir, pB.URL()},
		{s3, cBase, cDir, pC.URL()},
	}
	w := waitElected(t, members, 2)
	win, lose := members[w], members[1-w]

	// A's own probes discover epoch 2 and fence it: health flips to
	// "fenced" and the daemon exits non-zero.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var h HealthDTO
		getJSON(t, aBase+"/healthz", &h)
		if h.Status == "fenced" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old leader never fenced itself: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Writes to the fenced daemon are refused while it still listens (Wait
	// has not shut the listener down yet — in production this is the window
	// between fencing and process exit).
	code, _, bad = postJobs(t, aBase, JobRequest{Kind: "batch", Name: "after-fence", Seed: 1, Key: "after-fence"})
	if code != http.StatusConflict || !strings.Contains(bad.Error, "fenced") {
		t.Fatalf("write to fenced leader = %d (%q), want 409 fenced", code, bad.Error)
	}

	// The fenced daemon exits non-zero, naming the fence.
	waitDone := make(chan error, 1)
	go func() { waitDone <- s1.Wait() }()
	select {
	case err := <-waitDone:
		if err == nil || !strings.Contains(err.Error(), "fenced") {
			t.Fatalf("old leader Wait = %v, want fenced error", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("old leader did not stop after fencing")
	}

	// Heal the partition: the fenced daemon stays fenced, the new term is
	// undisturbed, and writes continue on the winner — job id 2 is reissued,
	// proving the lost write left no hole in the surviving history.
	pA.setDown(false)
	for i := 2; i < 4; i++ {
		submitKeyed(t, win.base, i)
	}
	waitCompleted(t, win.base, 4)
	waitRepl(t, lose.base, "retarget onto winner", func(d ReplicationDTO) bool {
		return d.Role == "follower" && d.Tail != nil && d.Tail.Leader == win.adv
	})
	waitReplBytes(t, lose.base, win.srv.journal.Size())

	win.srv.Drain()
	if err := win.srv.Wait(); err != nil {
		t.Fatalf("winner Wait: %v", err)
	}
	loseDone := make(chan error, 1)
	go func() { loseDone <- lose.srv.Wait() }()
	select {
	case err := <-loseDone:
		if err != nil {
			t.Fatalf("survivor Wait: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("survivor did not drain out with the winner")
	}

	wRaw, _ := os.ReadFile(filepath.Join(win.dir, persist.JournalFile))
	lRaw, _ := os.ReadFile(filepath.Join(lose.dir, persist.JournalFile))
	aRaw, _ := os.ReadFile(filepath.Join(aDir, persist.JournalFile))
	if len(wRaw) == 0 || !bytes.Equal(wRaw, lRaw) {
		t.Fatalf("surviving journals differ: winner %d bytes, survivor %d", len(wRaw), len(lRaw))
	}
	if bytes.Contains(wRaw, []byte("split-brain-lost")) {
		t.Fatal("fenced write leaked into a surviving journal")
	}
	if !bytes.Contains(aRaw, []byte("split-brain-lost")) {
		t.Fatal("split-brain write missing from the old leader's journal; the test exercised nothing")
	}
	live := liveStatuses(win.srv)
	ref, err := ReferenceResult(win.dir)
	if err != nil {
		t.Fatalf("ReferenceResult: %v", err)
	}
	if len(live) != 4 || !reflect.DeepEqual(live, ref) {
		t.Fatalf("post-failover run diverged from reference:\n live %+v\n ref  %+v", live, ref)
	}
}

// TestReadYourWrites: a write acks with its commit offset; a read carrying
// that offset in X-Abg-Min-Offset is answered by a lagging follower only
// once its applied prefix reaches it — immediately after catch-up, or a 503
// with Retry-After when the bound expires. Never a stale 200.
func TestReadYourWrites(t *testing.T) {
	cfg := replCfg(t.TempDir(), "")
	s1, leaderBase := startCrashable(t, cfg)
	feed := newChaosProxy(t)
	feed.setTarget(leaderBase)
	fcfg := replCfg("", "")
	fcfg.ReadWaitMax = 1200 * time.Millisecond
	_, fBase, _ := startFollower(t, fcfg, feed.URL())

	readState := func(base string, min int64) (*http.Response, StateDTO) {
		t.Helper()
		req, err := http.NewRequest("GET", base+"/api/v1/state", nil)
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		if min != 0 {
			req.Header.Set(MinOffsetHeader, strconv.FormatInt(min, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", base, err)
		}
		defer resp.Body.Close()
		var st StateDTO
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("decode state: %v", err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp, st
	}

	// The ack's offset is immediately readable on the daemon that acked it.
	code, ack, bad := postJobs(t, leaderBase, JobRequest{Kind: "batch", Name: "ryw-0", Seed: 100, Key: "ryw-0"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%q)", code, bad.Error)
	}
	if ack.Offset <= 0 {
		t.Fatalf("ack offset = %d, want the commit offset", ack.Offset)
	}
	if resp, _ := readState(leaderBase, ack.Offset); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader read at ack offset = %d, want 200", resp.StatusCode)
	}
	waitCompleted(t, leaderBase, 1)
	waitReplBytes(t, fBase, s1.journal.Size())

	// Cut the feed; the next write exists only on the leader.
	feed.setDown(true)
	code, _, bad = postJobs(t, leaderBase, JobRequest{Kind: "batch", Name: "ryw-1", Seed: 101, Key: "ryw-1"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%q)", code, bad.Error)
	}
	waitCompleted(t, leaderBase, 2)
	target := s1.journal.Size()

	// Without the header, the lagging follower happily serves its prefix.
	if resp, st := readState(fBase, 0); resp.StatusCode != http.StatusOK || st.Completed != 1 {
		t.Fatalf("plain follower read = %d completed %d, want 200 with 1", resp.StatusCode, st.Completed)
	}

	// With it, the read parks until the bytes apply: heal the feed mid-wait
	// and the answer arrives with the write visible.
	type readResult struct {
		resp *http.Response
		st   StateDTO
	}
	got := make(chan readResult, 1)
	go func() {
		resp, st := readState(fBase, target)
		got <- readResult{resp, st}
	}()
	time.Sleep(50 * time.Millisecond)
	feed.setDown(false)
	select {
	case r := <-got:
		if r.resp.StatusCode != http.StatusOK || r.st.Completed != 2 {
			t.Fatalf("read-your-writes = %d completed %d, want 200 with 2", r.resp.StatusCode, r.st.Completed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("min-offset read never returned")
	}

	// Cut again: a wait that cannot be satisfied times out into 503 +
	// Retry-After after the configured bound.
	feed.setDown(true)
	code, _, bad = postJobs(t, leaderBase, JobRequest{Kind: "batch", Name: "ryw-2", Seed: 102, Key: "ryw-2"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%q)", code, bad.Error)
	}
	waitCompleted(t, leaderBase, 3)
	target = s1.journal.Size()
	start := time.Now()
	resp, _ := readState(fBase, target)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsatisfiable min-offset read = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if e := time.Since(start); e < 800*time.Millisecond {
		t.Fatalf("timed out after %v, want the full %v bound", e, fcfg.ReadWaitMax)
	}

	// A malformed offset is a client error, not a wait.
	req, _ := http.NewRequest("GET", fBase+"/api/v1/state", nil)
	req.Header.Set(MinOffsetHeader, "-3")
	br, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("bad-offset read: %v", err)
	}
	io.Copy(io.Discard, br.Body)
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-offset read = %d, want 400", br.StatusCode)
	}
}
