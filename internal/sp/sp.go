// Package sp builds series-parallel task graphs the way a programmer would
// describe a fork-join computation (spawn/sync, Cilk-style), and lowers them
// to the executable dag model. The paper's malleable jobs are "dynamically
// unfolding dags" produced by exactly this kind of program; this package is
// the bridge from program structure to the scheduler's job model.
//
// A computation is composed recursively:
//
//	Task(n)         — a serial chain of n unit tasks
//	Seq(a, b, ...)  — run components one after another
//	Par(a, b, ...)  — fork the components, run them in parallel, join
//
// Example — a divide-and-conquer computation:
//
//	c := sp.Seq(
//	    sp.Task(4),                           // split
//	    sp.Par(leftSubtree, rightSubtree),    // conquer in parallel
//	    sp.Task(2),                           // merge
//	)
//	g := sp.Lower(c)                          // *dag.Graph, ready to schedule
package sp

import (
	"fmt"

	"abg/internal/dag"
	"abg/internal/xrand"
)

// Component is a series-parallel fragment of a computation.
type Component interface {
	// Work returns the total number of unit tasks in the fragment.
	Work() int64
	// Span returns the critical-path length of the fragment in tasks.
	Span() int64
	// lower emits the fragment into g, attaching its entry task(s) after
	// every node in heads, and returns the fragment's exit frontier.
	lower(g *dag.Graph, heads []dag.NodeID) []dag.NodeID
}

// task is a serial chain of n ≥ 1 unit tasks.
type task struct {
	n int
}

// Task returns a serial chain of n unit tasks. It panics if n < 1.
func Task(n int) Component {
	if n < 1 {
		panic("sp: Task needs n >= 1")
	}
	return task{n: n}
}

func (t task) Work() int64 { return int64(t.n) }
func (t task) Span() int64 { return int64(t.n) }

func (t task) lower(g *dag.Graph, heads []dag.NodeID) []dag.NodeID {
	var prev dag.NodeID = -1
	for i := 0; i < t.n; i++ {
		id := g.AddNode()
		if i == 0 {
			for _, h := range heads {
				g.MustEdge(h, id)
			}
		} else {
			g.MustEdge(prev, id)
		}
		prev = id
	}
	return []dag.NodeID{prev}
}

// seq runs components one after another.
type seq struct {
	parts []Component
}

// Seq returns the sequential composition of the components. It panics on an
// empty list.
func Seq(parts ...Component) Component {
	if len(parts) == 0 {
		panic("sp: Seq of nothing")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return seq{parts: parts}
}

func (s seq) Work() int64 {
	var w int64
	for _, p := range s.parts {
		w += p.Work()
	}
	return w
}

func (s seq) Span() int64 {
	var sp int64
	for _, p := range s.parts {
		sp += p.Span()
	}
	return sp
}

func (s seq) lower(g *dag.Graph, heads []dag.NodeID) []dag.NodeID {
	for _, p := range s.parts {
		heads = p.lower(g, heads)
	}
	return heads
}

// par forks the components and joins them. The join is implicit: the
// frontier is the union of the branches' exits; whatever follows the Par
// depends on all of them (a following Task acts as the join node).
type par struct {
	parts []Component
}

// Par returns the parallel composition of the components. It panics on an
// empty list.
func Par(parts ...Component) Component {
	if len(parts) == 0 {
		panic("sp: Par of nothing")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return par{parts: parts}
}

func (p par) Work() int64 {
	var w int64
	for _, c := range p.parts {
		w += c.Work()
	}
	return w
}

func (p par) Span() int64 {
	var m int64
	for _, c := range p.parts {
		if s := c.Span(); s > m {
			m = s
		}
	}
	return m
}

func (p par) lower(g *dag.Graph, heads []dag.NodeID) []dag.NodeID {
	var frontier []dag.NodeID
	for _, c := range p.parts {
		frontier = append(frontier, c.lower(g, heads)...)
	}
	return frontier
}

// Lower emits a component as an executable dag. The resulting graph's work
// equals c.Work() and its critical path equals c.Span().
func Lower(c Component) *dag.Graph {
	g := dag.New()
	c.lower(g, nil)
	return g.MustFinalize()
}

// Describe renders the component tree compactly, for logs and tests.
func Describe(c Component) string {
	switch v := c.(type) {
	case task:
		return fmt.Sprintf("Task(%d)", v.n)
	case seq:
		s := "Seq("
		for i, p := range v.parts {
			if i > 0 {
				s += ", "
			}
			s += Describe(p)
		}
		return s + ")"
	case par:
		s := "Par("
		for i, p := range v.parts {
			if i > 0 {
				s += ", "
			}
			s += Describe(p)
		}
		return s + ")"
	default:
		return fmt.Sprintf("%T", c)
	}
}

// RandomParams bounds the random series-parallel generator.
type RandomParams struct {
	// MaxDepth bounds the recursive composition depth.
	MaxDepth int
	// MaxFanout bounds Par/Seq arity (≥ 2).
	MaxFanout int
	// MaxTask bounds leaf chain lengths (≥ 1).
	MaxTask int
}

// Random draws a random series-parallel computation. Useful for
// property-based testing of schedulers against realistic recursive
// structures. It panics on invalid params.
func Random(rng *xrand.RNG, p RandomParams) Component {
	if p.MaxDepth < 0 || p.MaxFanout < 2 || p.MaxTask < 1 {
		panic(fmt.Sprintf("sp: invalid RandomParams %+v", p))
	}
	return random(rng, p, p.MaxDepth)
}

func random(rng *xrand.RNG, p RandomParams, depth int) Component {
	if depth == 0 || rng.Float64() < 0.3 {
		return Task(rng.IntRange(1, p.MaxTask))
	}
	n := rng.IntRange(2, p.MaxFanout)
	parts := make([]Component, n)
	for i := range parts {
		parts[i] = random(rng, p, depth-1)
	}
	if rng.Float64() < 0.5 {
		return Seq(parts...)
	}
	// Parallel sections are bracketed by fork/join tasks so the dag stays
	// connected even at the top level.
	return Seq(Task(1), Par(parts...), Task(1))
}
