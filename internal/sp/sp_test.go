package sp

import (
	"strings"
	"testing"

	"abg/internal/alloc"
	"abg/internal/dag"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/xrand"
)

func TestTaskWorkSpan(t *testing.T) {
	c := Task(5)
	if c.Work() != 5 || c.Span() != 5 {
		t.Fatalf("task: %d/%d", c.Work(), c.Span())
	}
}

func TestSeqComposition(t *testing.T) {
	c := Seq(Task(2), Task(3))
	if c.Work() != 5 || c.Span() != 5 {
		t.Fatalf("seq: %d/%d", c.Work(), c.Span())
	}
}

func TestParComposition(t *testing.T) {
	c := Par(Task(2), Task(7), Task(3))
	if c.Work() != 12 || c.Span() != 7 {
		t.Fatalf("par: %d/%d", c.Work(), c.Span())
	}
}

func TestNestedComposition(t *testing.T) {
	// split; two branches in parallel (one itself forked); merge.
	c := Seq(
		Task(1),
		Par(
			Seq(Task(2), Par(Task(4), Task(4)), Task(1)),
			Task(10),
		),
		Task(1),
	)
	// Work: 1 + (2+8+1) + 10 + 1 = 23.
	if c.Work() != 23 {
		t.Fatalf("work = %d", c.Work())
	}
	// Span: 1 + max(2+4+1, 10) + 1 = 12.
	if c.Span() != 12 {
		t.Fatalf("span = %d", c.Span())
	}
}

func TestSingletonCollapse(t *testing.T) {
	if Seq(Task(3)) != Task(3) {
		t.Fatal("Seq of one should collapse")
	}
	if Par(Task(3)) != Task(3) {
		t.Fatal("Par of one should collapse")
	}
}

func TestBuilderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Task(0)":   func() { Task(0) },
		"Seq()":     func() { Seq() },
		"Par()":     func() { Par() },
		"badRandom": func() { Random(xrand.New(1), RandomParams{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLowerMatchesWorkAndSpan(t *testing.T) {
	c := Seq(Task(1), Par(Task(3), Seq(Task(1), Par(Task(2), Task(2)))), Task(1))
	g := Lower(c)
	if g.Work() != c.Work() {
		t.Fatalf("dag work %d != component work %d", g.Work(), c.Work())
	}
	if int64(g.CriticalPathLen()) != c.Span() {
		t.Fatalf("dag cpl %d != component span %d", g.CriticalPathLen(), c.Span())
	}
}

func TestLowerRandomProperty(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 40; trial++ {
		c := Random(rng, RandomParams{MaxDepth: 4, MaxFanout: 4, MaxTask: 6})
		g := Lower(c)
		if g.Work() != c.Work() || int64(g.CriticalPathLen()) != c.Span() {
			t.Fatalf("trial %d: dag %d/%d vs component %d/%d (%s)",
				trial, g.Work(), g.CriticalPathLen(), c.Work(), c.Span(), Describe(c))
		}
	}
}

func TestDescribe(t *testing.T) {
	c := Seq(Task(1), Par(Task(2), Task(3)))
	s := Describe(c)
	for _, frag := range []string{"Seq(", "Par(", "Task(1)", "Task(2)", "Task(3)"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("describe %q missing %q", s, frag)
		}
	}
}

// TestScheduledEndToEnd lowers a random computation and schedules it with
// ABG: the greedy completion bound must hold, and full allotment must
// achieve the span.
func TestScheduledEndToEnd(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 10; trial++ {
		c := Random(rng, RandomParams{MaxDepth: 5, MaxFanout: 3, MaxTask: 12})
		g := Lower(c)
		res, err := sim.RunSingle(dag.NewRun(g), feedback.NewAControl(0.2), sched.BGreedy(),
			alloc.NewUnconstrained(1024), sim.SingleConfig{L: 25})
		if err != nil {
			t.Fatal(err)
		}
		if res.Runtime < c.Span() {
			t.Fatalf("runtime %d below span %d", res.Runtime, c.Span())
		}
		bound := 2*c.Work() + c.Span() // loose sanity bound
		if res.Runtime > bound {
			t.Fatalf("runtime %d above %d", res.Runtime, bound)
		}
	}
}

// TestParallelismExpressed: with enough processors, a wide Par finishes in
// its span, not its work — the dag really is parallel.
func TestParallelismExpressed(t *testing.T) {
	var branches []Component
	for i := 0; i < 16; i++ {
		branches = append(branches, Task(20))
	}
	c := Seq(Task(1), Par(branches...), Task(1))
	g := Lower(c)
	r := dag.NewRun(g)
	var buf []job.LevelCount
	steps := 0
	for !r.Done() {
		buf = buf[:0]
		_, buf = r.Step(64, job.BreadthFirst, buf)
		steps++
	}
	if int64(steps) != c.Span() {
		t.Fatalf("steps %d != span %d with ample processors", steps, c.Span())
	}
}

func BenchmarkLower(b *testing.B) {
	rng := xrand.New(1)
	c := Random(rng, RandomParams{MaxDepth: 8, MaxFanout: 3, MaxTask: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lower(c)
	}
}
