package sp_test

import (
	"fmt"

	"abg/internal/sp"
)

// ExampleLower describes a small divide-and-conquer computation and lowers
// it to a schedulable task dag.
func ExampleLower() {
	c := sp.Seq(
		sp.Task(2),                     // split
		sp.Par(sp.Task(6), sp.Task(4)), // conquer halves in parallel
		sp.Task(3),                     // merge
	)
	fmt.Println(sp.Describe(c))
	fmt.Printf("work T1 = %d, span T∞ = %d\n", c.Work(), c.Span())

	g := sp.Lower(c)
	fmt.Printf("dag: %d nodes, critical path %d, parallelism %.2f\n",
		g.NumNodes(), g.CriticalPathLen(), g.AvgParallelism())
	// Output:
	// Seq(Task(2), Par(Task(6), Task(4)), Task(3))
	// work T1 = 15, span T∞ = 11
	// dag: 15 nodes, critical path 11, parallelism 1.36
}
