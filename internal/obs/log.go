package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// ComponentKey is the attribute under which loggers carry their component
// name; the per-component level filter keys off it.
const ComponentKey = "component"

// LevelSpec is a default log level plus per-component overrides, parsed
// from the CLIs' -log flag.
type LevelSpec struct {
	Default   slog.Level
	Component map[string]slog.Level
}

// For returns the effective level for a component ("" = no component).
func (s LevelSpec) For(component string) slog.Level {
	if component != "" {
		if lvl, ok := s.Component[component]; ok {
			return lvl
		}
	}
	return s.Default
}

// minimum returns the lowest level any component can log at — the bus-wide
// Enabled floor.
func (s LevelSpec) minimum() slog.Level {
	min := s.Default
	for _, lvl := range s.Component {
		if lvl < min {
			min = lvl
		}
	}
	return min
}

// ParseLevel parses one level name (debug|info|warn|error, any case).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// ParseLevels parses a -log flag value: a default level optionally followed
// by comma-separated component overrides, e.g.
//
//	"warn"
//	"info,sim=debug,alloc=error"
//	"sim=debug"             (default stays warn)
//
// An empty spec yields the warn default with no overrides.
func ParseLevels(spec string) (LevelSpec, error) {
	out := LevelSpec{Default: slog.LevelWarn}
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, lvlStr, found := strings.Cut(part, "=")
		if !found {
			if i != 0 {
				return out, fmt.Errorf("obs: default level %q must come first in %q", part, spec)
			}
			lvl, err := ParseLevel(part)
			if err != nil {
				return out, err
			}
			out.Default = lvl
			continue
		}
		lvl, err := ParseLevel(lvlStr)
		if err != nil {
			return out, fmt.Errorf("obs: component %q: %w", name, err)
		}
		if out.Component == nil {
			out.Component = make(map[string]slog.Level)
		}
		out.Component[strings.TrimSpace(name)] = lvl
	}
	return out, nil
}

// componentHandler filters records by the level of the component they carry
// (the ComponentKey attribute), wrapping an inner slog.Handler.
type componentHandler struct {
	inner     slog.Handler
	levels    LevelSpec
	component string // bound via WithAttrs, "" until then
}

// Enabled implements slog.Handler. When the component is not yet known the
// floor across all components applies, so component loggers built later via
// With(ComponentKey, …) are not pre-filtered away.
func (h *componentHandler) Enabled(_ context.Context, lvl slog.Level) bool {
	if h.component != "" {
		return lvl >= h.levels.For(h.component)
	}
	return lvl >= h.levels.minimum()
}

// Handle implements slog.Handler.
func (h *componentHandler) Handle(ctx context.Context, r slog.Record) error {
	component := h.component
	if component == "" {
		r.Attrs(func(a slog.Attr) bool {
			if a.Key == ComponentKey {
				component = a.Value.String()
				return false
			}
			return true
		})
	}
	if r.Level < h.levels.For(component) {
		return nil
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler, binding the component when the
// attribute passes through.
func (h *componentHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	next := *h
	next.inner = h.inner.WithAttrs(attrs)
	for _, a := range attrs {
		if a.Key == ComponentKey {
			next.component = a.Value.String()
		}
	}
	return &next
}

// WithGroup implements slog.Handler.
func (h *componentHandler) WithGroup(name string) slog.Handler {
	next := *h
	next.inner = h.inner.WithGroup(name)
	return &next
}

// NewLogger builds a text logger on w honouring the -log spec.
func NewLogger(w io.Writer, spec string) (*slog.Logger, error) {
	levels, err := ParseLevels(spec)
	if err != nil {
		return nil, err
	}
	inner := slog.NewTextHandler(w, &slog.HandlerOptions{Level: levels.minimum()})
	return slog.New(&componentHandler{inner: inner, levels: levels}), nil
}

// SetupDefaultLogger configures the process-wide slog default from a -log
// flag value, writing to stderr. Every cmd/ binary calls this first.
func SetupDefaultLogger(spec string) error {
	logger, err := NewLogger(os.Stderr, spec)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	return nil
}

// Component returns the default logger scoped to a component, e.g.
// obs.Component("sim").
func Component(name string) *slog.Logger {
	return slog.Default().With(slog.String(ComponentKey, name))
}

// LogSubscriber bridges the event bus onto a slog logger: quantum-rate
// events log at Debug, job lifecycle at Info. Attach it with
// bus.Subscribe(obs.NewLogSubscriber(logger)) — typically behind a CLI's
// -events flag, since a million-quantum run emits a million lines at Debug.
type LogSubscriber struct {
	log *slog.Logger
}

// NewLogSubscriber returns a LogSubscriber on the given logger (the default
// logger when nil).
func NewLogSubscriber(log *slog.Logger) LogSubscriber {
	if log == nil {
		log = slog.Default()
	}
	return LogSubscriber{log: log.With(slog.String(ComponentKey, "events"))}
}

// OnEvent implements Subscriber.
func (s LogSubscriber) OnEvent(e Event) {
	lvl := slog.LevelDebug
	switch e.Kind {
	case EvJobAdmitted, EvJobCompleted:
		lvl = slog.LevelInfo
	case EvJobRestarted, EvCapacity:
		lvl = slog.LevelInfo
	case EvWarning:
		lvl = slog.LevelWarn
	}
	if !s.log.Enabled(context.Background(), lvl) {
		return
	}
	attrs := []any{
		slog.Int64("t", e.Time),
		slog.Int("q", e.Quantum),
		slog.Int("job", e.Job),
	}
	if e.Name != "" {
		attrs = append(attrs, slog.String("name", e.Name))
	}
	switch e.Kind {
	case EvRequest:
		attrs = append(attrs, slog.Float64("d", e.Request), slog.Int("req", e.IntRequest))
	case EvAllotment:
		attrs = append(attrs, slog.Int("req", e.IntRequest), slog.Int("a", e.Allotment),
			slog.Bool("deprived", e.Deprived))
	case EvQuantumEnd:
		attrs = append(attrs, slog.Int("a", e.Allotment), slog.Int("steps", e.Steps),
			slog.Int64("work", e.Work), slog.Int64("waste", e.Waste),
			slog.Float64("A", e.Parallelism), slog.Bool("completed", e.Completed))
	case EvJobAdmitted:
		attrs = append(attrs, slog.Int64("work", e.Work), slog.Float64("A", e.Parallelism))
	case EvJobCompleted:
		attrs = append(attrs, slog.Int64("work", e.Work))
	case EvAllocDecision:
		attrs = append(attrs, slog.Int("P", e.P), slog.Int("requested", e.IntRequest),
			slog.Int("granted", e.Allotment))
	case EvCapacity:
		attrs = append(attrs, slog.Int("P", e.P))
	case EvFault:
		attrs = append(attrs, slog.Float64("value", e.Request))
	case EvJobRestarted:
		attrs = append(attrs, slog.Int64("lost", e.Work))
	}
	s.log.Log(context.Background(), lvl, e.Kind.String(), attrs...)
}
