package obs

import "testing"

func TestMetricsSubscriber(t *testing.T) {
	reg := NewRegistry()
	m := NewMetricsSubscriber(reg)
	bus := NewBus()
	defer bus.Subscribe(m)()

	bus.Emit(Event{Kind: EvJobAdmitted, Job: 0})
	bus.Emit(Event{Kind: EvRequest, Request: 3.2, IntRequest: 4})
	bus.Emit(Event{Kind: EvAllotment, IntRequest: 4, Allotment: 2, Deprived: true})
	bus.Emit(Event{Kind: EvQuantumEnd, Steps: 10, Work: 18, Waste: 2, Parallelism: 1.8, Deprived: true})
	bus.Emit(Event{Kind: EvDeprived})
	bus.Emit(Event{Kind: EvAllocDecision, P: 8, IntRequest: 4, Allotment: 2})
	bus.Emit(Event{Kind: EvSatisfied})
	bus.Emit(Event{Kind: EvQuantumEnd, Steps: 10, Work: 30, Waste: 0, Parallelism: 3})
	bus.Emit(Event{Kind: EvJobCompleted, Work: 48, Response: 20})

	expect := map[string]int64{
		"sim_quanta_total":                2,
		"sim_deprived_quanta_total":       1,
		"sim_deprived_transitions_total":  1,
		"sim_satisfied_transitions_total": 1,
		"sim_jobs_admitted_total":         1,
		"sim_jobs_completed_total":        1,
		"sim_jobs_active":                 0,
		"sim_requested_processors_total":  4,
		"sim_granted_processors_total":    2,
		"sim_work_cycles_total":           48,
		"sim_wasted_cycles_total":         2,
		"sim_alloc_rounds_total":          1,
	}
	snap := reg.Snapshot()
	for name, want := range expect {
		if got := snap[name]; got != want {
			t.Errorf("%s = %v, want %d", name, got, want)
		}
	}
	if h := reg.Histogram("sim_job_response_steps", nil); h.Count() != 1 || h.Sum() != 20 {
		t.Errorf("response histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if h := reg.Histogram("sim_quantum_parallelism", nil); h.Count() != 2 {
		t.Errorf("parallelism histogram count=%d", h.Count())
	}
}

func TestMetricsSubscriberDefaultRegistry(t *testing.T) {
	m := NewMetricsSubscriber(nil)
	if m.quanta != Default.Counter("sim_quanta_total") {
		t.Fatal("nil registry did not fall back to Default")
	}
}

func TestAttachMetricsDedupes(t *testing.T) {
	// Regression: two wiring sites attaching metrics for the same
	// (bus, registry) pair — e.g. cmd/abgd's debug path and the server's
	// own metrics wiring — must not double-count events.
	bus := NewBus()
	reg := NewRegistry()
	d1 := AttachMetrics(bus, reg)
	d2 := AttachMetrics(bus, reg) // dedup: no second subscription
	bus.Emit(Event{Kind: EvQuantumEnd, Steps: 10, Work: 5})
	if got := reg.Counter("sim_quanta_total").Value(); got != 1 {
		t.Fatalf("quanta counted %d times, want 1 (double attachment)", got)
	}
	// A distinct registry on the same bus is a separate attachment.
	reg2 := NewRegistry()
	defer AttachMetrics(bus, reg2)()
	bus.Emit(Event{Kind: EvQuantumEnd, Steps: 10, Work: 5})
	if got := reg.Counter("sim_quanta_total").Value(); got != 2 {
		t.Fatalf("first registry quanta = %d, want 2", got)
	}
	if got := reg2.Counter("sim_quanta_total").Value(); got != 1 {
		t.Fatalf("second registry quanta = %d, want 1", got)
	}
	// Detach (shared between d1 and d2) stops the feed and allows a fresh
	// attachment later.
	d1()
	d2() // idempotent
	bus.Emit(Event{Kind: EvQuantumEnd})
	if got := reg.Counter("sim_quanta_total").Value(); got != 2 {
		t.Fatalf("detached subscriber still counting: %d", got)
	}
	defer AttachMetrics(bus, reg)()
	bus.Emit(Event{Kind: EvQuantumEnd})
	if got := reg.Counter("sim_quanta_total").Value(); got != 3 {
		t.Fatalf("re-attachment after detach broken: %d", got)
	}
}
