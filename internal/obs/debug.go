package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the debug HTTP mux served behind the CLIs'
// -debug-addr flag:
//
//	/debug/vars     expvar JSON (includes the registry once published)
//	/debug/metrics  the registry's plain-text snapshot
//	/debug/pprof/*  the standard pprof handlers
//
// reg may be nil, in which case /debug/metrics serves the Default registry.
func NewDebugMux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteSnapshot(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "abg debug server: /debug/vars /debug/metrics /debug/pprof/")
	})
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close shuts the server down immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// StartDebugServer publishes reg over expvar and serves the debug mux on
// addr in a background goroutine. It returns once the listener is bound, so
// metrics are reachable for the whole lifetime of the run that follows.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = Default
	}
	reg.PublishExpvar("abg")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Component("obs").Error("debug server failed", "err", err)
		}
	}()
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}
