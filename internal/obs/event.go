// Package obs is the live instrumentation layer of the repository: a typed
// event bus fed by the simulation engines, a metrics registry published via
// expvar, structured logging built on log/slog, a Perfetto/Chrome
// trace-event exporter, and an optional debug HTTP server (pprof + expvar).
//
// Everything the post-hoc analysis sees — requests d(q), allotments a(q),
// measured parallelism A(q), deprived↔satisfied transitions, allocator
// decisions — is also emitted as it happens, so a run of millions of quanta
// can be watched in flight instead of reconstructed from a trace dump
// afterwards.
//
// The layer is free when unused: a nil *Bus (the zero value of every engine
// config) reduces every emission site to a nil check, and a Bus with no
// subscribers to one atomic load. No event value is constructed on either
// disabled path.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Kind discriminates the typed events of the simulation taxonomy.
type Kind uint8

// The event taxonomy. One simulation quantum emits, in order: EvRequest
// (the feedback policy issued d(q)), EvAllotment (the OS allocator granted
// a(q)), then after execution EvQuantumEnd with the measured statistics and,
// when the deprivation state flipped, EvDeprived or EvSatisfied. Job
// lifecycle is bracketed by EvJobAdmitted and EvJobCompleted, and
// multiprogrammed engines emit one EvAllocDecision per global boundary
// summarising the allocator's verdict over the whole job set.
const (
	// EvJobAdmitted fires when a job enters the system (single-job runs: at
	// simulation start; multiprogrammed runs: at the first boundary at or
	// after its release). Work and Parallelism carry T1 and T1/T∞.
	EvJobAdmitted Kind = iota + 1
	// EvRequest fires when a feedback policy issues a request: Request is
	// the continuous d(q), IntRequest its integer rounding.
	EvRequest
	// EvAllotment fires when the allocator grants a(q) to one job;
	// Deprived reports a(q) < request.
	EvAllotment
	// EvQuantumEnd fires at the quantum boundary after execution, carrying
	// the measured quantum: Steps, Work T1(q), Waste, Parallelism A(q),
	// Completed.
	EvQuantumEnd
	// EvDeprived and EvSatisfied fire when a job transitions into or out of
	// deprivation (a(q) < request) relative to its previous quantum.
	EvDeprived
	EvSatisfied
	// EvJobCompleted fires when a job's last task finishes; Time is the
	// completion step and Work the job's total work T1.
	EvJobCompleted
	// EvAllocDecision summarises one multi-job allocation round (or one
	// instrumented single grant): Name is the allocator, P the machine
	// size, IntRequest the summed requests and Allotment the summed grants.
	EvAllocDecision
	// EvCapacity fires when the machine's effective processor count P(t)
	// changes (capacity churn, node unplug/replug): P is the new capacity,
	// Time/Quantum locate the boundary at which it took effect.
	EvCapacity
	// EvFault fires when the fault-injection layer perturbs the run: Name
	// is the fault kind ("drop", "delay", "dup", "noise"), Job/Quantum the
	// victim, and Request the affected value (the request that was lost or
	// the parallelism after noise).
	EvFault
	// EvJobRestarted fires when a job aborts mid-DAG and restarts from
	// scratch with its feedback state reset; Work is the completed work
	// lost to the failure.
	EvJobRestarted
	// EvWarning fires when a component sanitised corrupt input instead of
	// propagating it (e.g. a feedback policy holding its previous request
	// on a non-finite measurement); Name carries the message.
	EvWarning
)

// String returns the kind's snake_case name (also used as a metric label).
func (k Kind) String() string {
	switch k {
	case EvJobAdmitted:
		return "job_admitted"
	case EvRequest:
		return "request"
	case EvAllotment:
		return "allotment"
	case EvQuantumEnd:
		return "quantum_end"
	case EvDeprived:
		return "deprived"
	case EvSatisfied:
		return "satisfied"
	case EvJobCompleted:
		return "job_completed"
	case EvAllocDecision:
		return "alloc_decision"
	case EvCapacity:
		return "capacity"
	case EvFault:
		return "fault"
	case EvJobRestarted:
		return "job_restarted"
	case EvWarning:
		return "warning"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one instrumentation sample. It is a flat value type — emitting
// one performs no allocation — whose fields are populated per Kind (see the
// Kind constants); unused fields are zero.
type Event struct {
	Kind Kind
	// Time is the absolute simulation step at which the event occurred.
	Time int64
	// Quantum is the quantum index: per-job (1-based) for job-scoped
	// events, the global boundary count for EvAllocDecision.
	Quantum int
	// Job is the index of the job within its job set; 0 for single-job
	// runs, -1 when the event is not job-scoped.
	Job int
	// Name labels the job (job-scoped events) or allocator
	// (EvAllocDecision); may be empty.
	Name string

	Request     float64 // d(q), the continuous request
	IntRequest  int     // ⌈d(q)⌉ presented to the allocator (summed for EvAllocDecision)
	Allotment   int     // a(q) granted (summed for EvAllocDecision)
	P           int     // machine size, EvAllocDecision only
	Steps       int     // steps executed in the quantum
	Work        int64   // T1(q), or the job's total T1 for lifecycle events
	Waste       int64   // allotted-but-unused cycles of the quantum
	Response    int64   // completion − release, EvJobCompleted only
	Parallelism float64 // A(q); average parallelism T1/T∞ for EvJobAdmitted
	Deprived    bool    // a(q) < request
	Completed   bool    // the job finished during this quantum
}

// Subscriber consumes events. OnEvent is called synchronously from the
// emitting goroutine; implementations that need isolation should hand off to
// their own channel. A subscriber used from the parallel sweep runners must
// be safe for concurrent OnEvent calls.
type Subscriber interface {
	OnEvent(Event)
}

// SubscriberFunc adapts a function to the Subscriber interface.
type SubscriberFunc func(Event)

// OnEvent implements Subscriber.
func (f SubscriberFunc) OnEvent(e Event) { f(e) }

// Bus fans events out to its subscribers. The zero value is ready to use,
// and all methods are safe on a nil receiver (a nil *Bus is the canonical
// "observability off" value). Subscribe/Unsubscribe are safe concurrently
// with Emit: the subscriber slice is copy-on-write behind an atomic pointer,
// so the emission path is a single atomic load and never takes a lock.
type Bus struct {
	mu   sync.Mutex // serialises subscription changes only
	subs atomic.Pointer[[]*subEntry]
}

// subEntry gives each subscription a unique identity, so unsubscribing
// works for non-comparable subscribers (e.g. SubscriberFunc) too.
type subEntry struct {
	s Subscriber
}

// NewBus returns an empty event bus.
func NewBus() *Bus { return &Bus{} }

// Active reports whether any subscriber is attached. Emission sites use it
// to skip event construction entirely: it is a nil check plus one atomic
// load, with no allocation.
func (b *Bus) Active() bool {
	if b == nil {
		return false
	}
	p := b.subs.Load()
	return p != nil && len(*p) > 0
}

// Emit fans the event out to every subscriber in subscription order. It is
// a no-op on a nil bus or with no subscribers.
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	p := b.subs.Load()
	if p == nil {
		return
	}
	for _, entry := range *p {
		entry.s.OnEvent(e)
	}
}

// Subscribe attaches s and returns a function that detaches it again.
// Subscribing a nil subscriber or subscribing on a nil bus panics (a nil bus
// means observability was never requested; subscribing to it would silently
// observe nothing).
func (b *Bus) Subscribe(s Subscriber) (unsubscribe func()) {
	if b == nil {
		panic("obs: subscribe on nil bus")
	}
	if s == nil {
		panic("obs: nil subscriber")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	entry := &subEntry{s: s}
	old := b.subs.Load()
	var next []*subEntry
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, entry)
	b.subs.Store(&next)
	var once sync.Once
	return func() {
		once.Do(func() { b.remove(entry) })
	}
}

// remove detaches one subscription entry.
func (b *Bus) remove(entry *subEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.subs.Load()
	if old == nil {
		return
	}
	next := make([]*subEntry, 0, len(*old))
	for _, have := range *old {
		if have != entry {
			next = append(next, have)
		}
	}
	b.subs.Store(&next)
}

// Recorder is a Subscriber that appends every event to an in-memory slice —
// the test and debugging sink. Safe for concurrent emitters.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// OnEvent implements Subscriber.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Kinds returns the recorded event kinds in order (test convenience).
func (r *Recorder) Kinds() []Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Kind, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind
	}
	return out
}
