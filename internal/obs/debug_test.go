package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_test_counter").Add(11)
	srv, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/debug/vars"); !strings.Contains(body, "debug_test_counter") {
		t.Fatalf("/debug/vars missing registry:\n%s", body)
	}
	if body := get("/debug/metrics"); !strings.Contains(body, "counter debug_test_counter 11") {
		t.Fatalf("/debug/metrics wrong:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body := get("/"); !strings.Contains(body, "abg debug server") {
		t.Fatalf("index page wrong:\n%s", body)
	}
}

func TestStartDebugServerBadAddr(t *testing.T) {
	if _, err := StartDebugServer("127.0.0.1:-1", nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
