package promexport

import (
	"strconv"
	"strings"
	"testing"

	"abg/internal/obs"
)

func TestName(t *testing.T) {
	for _, tc := range []struct {
		family string
		kv     []string
		want   string
	}{
		{"plain", nil, "plain"},
		{"one", []string{"k", "v"}, `one{k="v"}`},
		{"sorted", []string{"route", "/x", "code", "200"},
			`sorted{code="200",route="/x"}`},
		{"odd", []string{"k"}, "odd"},
		{"emptykey", []string{"", "v"}, "emptykey"},
		{"esc", []string{"k", `a"b\c`}, `esc{k="a\"b\\c"}`},
		{"badlabel", []string{"la-bel", "v"}, `badlabel{la_bel="v"}`},
	} {
		if got := Name(tc.family, tc.kv...); got != tc.want {
			t.Errorf("Name(%q, %v) = %q, want %q", tc.family, tc.kv, got, tc.want)
		}
	}
	// Canonical form: label order in the call must not matter.
	a := Name("f", "b", "2", "a", "1")
	b := Name("f", "a", "1", "b", "2")
	if a != b {
		t.Fatalf("Name is order-sensitive: %q vs %q", a, b)
	}
}

// parseExposition is a miniature Prometheus text-format parser: it checks
// structural validity (TYPE before samples, one TYPE per family, parseable
// sample lines) and returns samples keyed by full series name (with label
// block) plus the family → type map.
func parseExposition(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := make(map[string]float64)
	types := make(map[string]string)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			fam, typ := parts[2], parts[3]
			if _, dup := types[fam]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %q", ln+1, fam)
			}
			switch typ {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			types[fam] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "NaN" && valStr != "+Inf" && valStr != "-Inf" {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, valStr, err)
		}
		fam := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unclosed label block in %q", ln+1, series)
			}
			fam = series[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam,
			"_bucket"), "_sum"), "_count")
		if _, ok := types[fam]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("line %d: sample %q before its TYPE line", ln+1, series)
			}
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		samples[series] = val
	}
	return samples, types
}

func TestWriteCountersGaugesLabels(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("jobs_total").Add(7)
	reg.Gauge("inflight").Set(3)
	reg.Counter(Name("http_requests_total", "route", "/jobs", "code", "202")).Add(5)
	reg.Counter(Name("http_requests_total", "route", "/jobs", "code", "429")).Add(2)
	reg.Counter(Name("http_requests_total", "route", "/state", "code", "200")).Inc()

	var sb strings.Builder
	if err := Write(&sb, reg); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, sb.String())
	if types["jobs_total"] != "counter" || types["inflight"] != "gauge" ||
		types["http_requests_total"] != "counter" {
		t.Fatalf("types = %v", types)
	}
	want := map[string]float64{
		"jobs_total": 7,
		"inflight":   3,
		`http_requests_total{code="202",route="/jobs"}`:  5,
		`http_requests_total{code="429",route="/jobs"}`:  2,
		`http_requests_total{code="200",route="/state"}`: 1,
	}
	for series, wv := range want {
		if got, ok := samples[series]; !ok || got != wv {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, wv)
		}
	}
}

func TestWriteHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram(Name("req_seconds", "route", "/jobs"), []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.06, 0.5, 3} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := Write(&sb, reg); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples, types := parseExposition(t, text)
	if types["req_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	// Cumulative buckets: ≤0.01:1, ≤0.1:3, ≤1:4, +Inf:5.
	want := map[string]float64{
		`req_seconds_bucket{route="/jobs",le="0.01"}`: 1,
		`req_seconds_bucket{route="/jobs",le="0.1"}`:  3,
		`req_seconds_bucket{route="/jobs",le="1"}`:    4,
		`req_seconds_bucket{route="/jobs",le="+Inf"}`: 5,
		`req_seconds_count{route="/jobs"}`:            5,
	}
	for series, wv := range want {
		if got, ok := samples[series]; !ok || got != wv {
			t.Errorf("%s = %v (present=%v), want %v\n%s", series, got, ok, wv, text)
		}
	}
	sum := samples[`req_seconds_sum{route="/jobs"}`]
	if wantSum := 0.005 + 0.05 + 0.06 + 0.5 + 3; sum < wantSum-1e-9 || sum > wantSum+1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
}

func TestWriteUnlabelledHistogramAndOrdering(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("zz_lat", []float64{1}).Observe(0.5)
	reg.Counter("aa_total").Inc()
	var sb strings.Builder
	if err := Write(&sb, reg); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `zz_lat_bucket{le="1"} 1`) {
		t.Fatalf("unlabelled histogram bucket missing:\n%s", text)
	}
	// Families sorted; repeated Write is byte-identical (deterministic).
	if strings.Index(text, "aa_total") > strings.Index(text, "zz_lat") {
		t.Fatalf("families not sorted:\n%s", text)
	}
	var sb2 strings.Builder
	if err := Write(&sb2, reg); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Fatal("Write is not deterministic across calls")
	}
}

func TestWriteMultipleRegistriesAndSanitize(t *testing.T) {
	a := obs.NewRegistry()
	a.Counter("from_a").Inc()
	b := obs.NewRegistry()
	b.Counter("bad-name.total").Add(2)
	var sb strings.Builder
	if err := Write(&sb, a, nil, b); err != nil {
		t.Fatal(err)
	}
	samples, _ := parseExposition(t, sb.String())
	if samples["from_a"] != 1 {
		t.Fatalf("missing series from first registry: %v", samples)
	}
	if samples["bad_name_total"] != 2 {
		t.Fatalf("name not sanitised: %v", samples)
	}
}

func TestWriteTypeConflictKeepsFirst(t *testing.T) {
	// Same family name as counter in one registry and gauge in another:
	// exposition must stay parseable with exactly one TYPE for the family.
	a := obs.NewRegistry()
	a.Counter("clash").Add(1)
	b := obs.NewRegistry()
	b.Gauge("clash").Set(9)
	var sb strings.Builder
	if err := Write(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, sb.String())
	if n := strings.Count(sb.String(), "# TYPE clash"); n != 1 {
		t.Fatalf("family emitted %d TYPE lines:\n%s", n, sb.String())
	}
	if types["clash"] != "counter" || samples["clash"] != 1 {
		t.Fatalf("conflict resolution wrong: types=%v samples=%v", types, samples)
	}
}

func TestWriteEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, obs.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty registry produced output: %q", sb.String())
	}
}

func TestWriteSetsInjectsLabels(t *testing.T) {
	// Two shard registries carrying the *same* family names, plus an
	// unlabelled cluster registry: WriteSets must merge them into single
	// families whose series are distinguished by the injected shard label
	// (appended after a family's own labels).
	s0, s1, cl := obs.NewRegistry(), obs.NewRegistry(), obs.NewRegistry()
	s0.Counter("sim_quanta_total").Add(11)
	s1.Counter("sim_quanta_total").Add(22)
	s0.Counter(Name("jobs_total", "state", "done")).Add(3)
	s1.Counter(Name("jobs_total", "state", "done")).Add(4)
	cl.Gauge("cluster_shards").Set(2)

	var sb strings.Builder
	err := WriteSets(&sb,
		Set{Reg: cl},
		Set{Reg: s0, Labels: []string{"shard", "0"}},
		Set{Reg: s1, Labels: []string{"shard", "1"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, sb.String())
	if types["sim_quanta_total"] != "counter" || types["cluster_shards"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	want := map[string]float64{
		"cluster_shards":                     2,
		`sim_quanta_total{shard="0"}`:        11,
		`sim_quanta_total{shard="1"}`:        22,
		`jobs_total{state="done",shard="0"}`: 3,
		`jobs_total{state="done",shard="1"}`: 4,
	}
	for series, wv := range want {
		if got, ok := samples[series]; !ok || got != wv {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, wv)
		}
	}
	// Exactly one TYPE line per family even though two registries share it.
	if n := strings.Count(sb.String(), "# TYPE sim_quanta_total"); n != 1 {
		t.Errorf("%d TYPE lines for sim_quanta_total, want 1", n)
	}
}
