// Package promexport renders an obs.Registry in the Prometheus text
// exposition format (version 0.0.4), the format behind abgd's GET /metrics:
//
//	# TYPE sim_quanta_total counter
//	sim_quanta_total 42
//	# TYPE abgd_http_request_seconds histogram
//	abgd_http_request_seconds_bucket{route="/api/v1/jobs",le="0.001"} 7
//	abgd_http_request_seconds_bucket{route="/api/v1/jobs",le="+Inf"} 9
//	abgd_http_request_seconds_sum{route="/api/v1/jobs"} 0.0123
//	abgd_http_request_seconds_count{route="/api/v1/jobs"} 9
//
// The obs registry is a flat name → metric map with no label concept, which
// is exactly right for its lock-free hot path; labels are layered on top as
// a naming convention instead. A registry key produced by Name — e.g.
// `abgd_http_requests_total{code="202",route="/api/v1/jobs"}` — is parsed
// back into (family, labels) at exposition time, and all series of one
// family are grouped under a single # TYPE header as Prometheus requires.
// Keys without braces are plain single-series families.
//
// Counters map to counter, gauges to gauge, histograms to histogram with
// the cumulative le-bucket encoding (obs.Histogram already stores
// fixed-bound buckets, so the conversion is a running sum). Metric and
// label names are sanitised to the Prometheus charset; label values are
// escaped per the text-format rules.
package promexport

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"abg/internal/obs"
)

// Name builds a registry key carrying Prometheus labels: family plus
// alternating label key/value pairs, rendered in sorted-key canonical form
// so the same label set always produces the same registry key (and thus the
// same obs metric). Odd trailing arguments and empty keys are ignored.
//
//	Name("abgd_http_requests_total", "route", "/api/v1/jobs", "code", "202")
//	  → `abgd_http_requests_total{code="202",route="/api/v1/jobs"}`
//
// Hot paths should build the key once and cache the returned metric, as
// with any registry lookup.
func Name(family string, kv ...string) string {
	if len(kv) < 2 {
		return family
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i] == "" {
			continue
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	if len(pairs) == 0 {
		return family
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteString(family)
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(sanitizeLabelName(p.k))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// series is one parsed registry entry: family, rendered label block, and
// the metric it carries.
type series struct {
	family string
	labels string // canonical `{k="v",…}` block, empty for unlabelled
	metric any
}

// splitKey parses a registry key into family and label block. The label
// block is kept verbatim (Name already canonicalised it); a key with
// malformed braces is treated as an unlabelled family of its sanitised
// whole.
func splitKey(key string) (family, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return sanitizeMetricName(key), ""
	}
	return sanitizeMetricName(key[:i]), key[i:]
}

// Write renders every metric of the given registries in the Prometheus text
// format. Later registries win family-type conflicts silently skipped —
// a family must have one type, so a name that is a counter in one registry
// and a gauge in another keeps its first type and drops the clashing
// series (the exposition stays parseable, which matters more than the
// conflicting series; fix the naming instead).
func Write(w io.Writer, regs ...*obs.Registry) error {
	sets := make([]Set, len(regs))
	for i, reg := range regs {
		sets[i] = Set{Reg: reg}
	}
	return WriteSets(w, sets...)
}

// Set pairs a registry with extra labels injected into every series it
// exposes, alternating key/value as in Name. The cluster front end renders N
// otherwise-identical shard registries in one exposition this way: the same
// `sim_quanta_total` family from every shard, distinguished by `shard="k"`.
type Set struct {
	Reg    *obs.Registry
	Labels []string
}

// WriteSets is Write with per-registry label injection. Sets sharing a family
// merge under one # TYPE header; their injected labels keep the series
// distinct.
func WriteSets(w io.Writer, sets ...Set) error {
	byFamily := make(map[string][]series)
	famType := make(map[string]string)
	var order []string
	for _, set := range sets {
		reg := set.Reg
		if reg == nil {
			continue
		}
		extra := ""
		if block := Name("", set.Labels...); block != "" {
			extra = block[1 : len(block)-1] // strip the surrounding braces
		}
		reg.Visit(func(key string, metric any) {
			fam, labels := splitKey(key)
			if extra != "" {
				labels = mergeLabels(labels, extra)
			}
			typ := typeOf(metric)
			if prev, ok := famType[fam]; ok && prev != typ {
				return // family-type conflict: keep the first type
			}
			if _, ok := famType[fam]; !ok {
				famType[fam] = typ
				order = append(order, fam)
			}
			byFamily[fam] = append(byFamily[fam], series{fam, labels, metric})
		})
	}
	sort.Strings(order)
	for _, fam := range order {
		all := byFamily[fam]
		sort.Slice(all, func(i, j int) bool { return all[i].labels < all[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, famType[fam]); err != nil {
			return err
		}
		for _, s := range all {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// typeOf maps an obs metric to its Prometheus type keyword.
func typeOf(metric any) string {
	switch metric.(type) {
	case *obs.Counter:
		return "counter"
	case *obs.Gauge:
		return "gauge"
	case *obs.Histogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// writeSeries renders one series (one registry entry).
func writeSeries(w io.Writer, s series) error {
	switch m := s.metric.(type) {
	case *obs.Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, m.Value())
		return err
	case *obs.Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, m.Value())
		return err
	case *obs.Histogram:
		return writeHistogram(w, s.family, s.labels, m)
	default:
		return nil
	}
}

// writeHistogram renders the cumulative bucket series plus _sum and _count.
// The le label is appended to (or merged into) the series' label block.
func writeHistogram(w io.Writer, family, labels string, h *obs.Histogram) error {
	bounds, counts := h.Buckets()
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		le := "+Inf"
		if !math.IsInf(b, 1) {
			le = formatFloat(b)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			family, mergeLabels(labels, `le="`+le+`"`), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count())
	return err
}

// mergeLabels appends one `k="v"` item to an existing label block.
func mergeLabels(labels, item string) string {
	if labels == "" {
		return "{" + item + "}"
	}
	return labels[:len(labels)-1] + "," + item + "}"
}

// formatFloat renders a float the way Prometheus expects: shortest exact
// decimal, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a name onto [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	return sanitize(name, true)
}

// sanitizeLabelName maps a name onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	return sanitize(name, false)
}

func sanitize(name string, allowColon bool) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9') || (allowColon && r == ':')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// text-format rules.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}
