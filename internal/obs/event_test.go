package obs

import (
	"sync"
	"testing"
)

func TestNilBusIsInert(t *testing.T) {
	var b *Bus
	if b.Active() {
		t.Fatal("nil bus reports active")
	}
	b.Emit(Event{Kind: EvRequest}) // must not panic
}

func TestEmptyBusInactive(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("empty bus reports active")
	}
	b.Emit(Event{Kind: EvRequest}) // no subscribers: no-op
}

func TestSubscribeFanOutAndUnsubscribe(t *testing.T) {
	b := NewBus()
	var first, second []Kind
	u1 := b.Subscribe(SubscriberFunc(func(e Event) { first = append(first, e.Kind) }))
	u2 := b.Subscribe(SubscriberFunc(func(e Event) { second = append(second, e.Kind) }))
	if !b.Active() {
		t.Fatal("bus with subscribers reports inactive")
	}
	b.Emit(Event{Kind: EvJobAdmitted})
	b.Emit(Event{Kind: EvQuantumEnd})
	u1()
	b.Emit(Event{Kind: EvJobCompleted})
	u1() // double-unsubscribe is a no-op
	if len(first) != 2 || len(second) != 3 {
		t.Fatalf("fan-out counts: first=%d second=%d", len(first), len(second))
	}
	if second[2] != EvJobCompleted {
		t.Fatalf("event order: %v", second)
	}
	u2()
	if b.Active() {
		t.Fatal("bus active after all unsubscribed")
	}
}

func TestBusConcurrentEmit(t *testing.T) {
	b := NewBus()
	rec := &Recorder{}
	defer b.Subscribe(rec)()
	const emitters, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Emit(Event{Kind: EvQuantumEnd, Job: g, Quantum: i})
			}
		}(g)
	}
	wg.Wait()
	if got := len(rec.Events()); got != emitters*each {
		t.Fatalf("recorded %d events, want %d", got, emitters*each)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{EvJobAdmitted, EvRequest, EvAllotment, EvQuantumEnd,
		EvDeprived, EvSatisfied, EvJobCompleted, EvAllocDecision,
		EvCapacity, EvFault, EvJobRestarted, EvWarning}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatalf("unknown kind name: %q", Kind(99).String())
	}
}

func BenchmarkBusEmitNoSubscribers(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bus.Active() {
			bus.Emit(Event{Kind: EvQuantumEnd, Quantum: i})
		}
	}
}

func BenchmarkBusEmitNilBus(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bus.Active() {
			bus.Emit(Event{Kind: EvQuantumEnd, Quantum: i})
		}
	}
}

func BenchmarkBusEmitOneSubscriber(b *testing.B) {
	bus := NewBus()
	var count int64
	defer bus.Subscribe(SubscriberFunc(func(Event) { count++ }))()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bus.Active() {
			bus.Emit(Event{Kind: EvQuantumEnd, Quantum: i})
		}
	}
}

func TestEmitNoSubscribersDoesNotAllocate(t *testing.T) {
	bus := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		if bus.Active() {
			bus.Emit(Event{Kind: EvQuantumEnd})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emission allocates %v per op", allocs)
	}
}
