package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits") != c {
		t.Fatal("counter lookup is not idempotent")
	}
	g := r.Gauge("active")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+5+50+500+5000; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 4 || !math.IsInf(bounds[3], 1) {
		t.Fatalf("bounds = %v", bounds)
	}
	// ≤1: 0.5 and 1.0; ≤10: 5; ≤100: 50; overflow: 500 and 5000.
	want := []int64{2, 1, 1, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], want[i], counts)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("x", LinearBuckets(1, 1, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 10))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), 8.0*1000*4.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestBucketHelpers(t *testing.T) {
	if got := LinearBuckets(0, 10, 3); got[0] != 0 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("linear buckets: %v", got)
	}
	if got := ExponentialBuckets(1, 2, 4); got[3] != 8 {
		t.Fatalf("exponential buckets: %v", got)
	}
}

func TestSnapshotAndWriteSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("sims").Add(7)
	r.Gauge("active").Set(2)
	r.Histogram("waste", []float64{10, 100}).Observe(42)

	snap := r.Snapshot()
	if snap["sims"] != int64(7) || snap["active"] != int64(2) {
		t.Fatalf("snapshot = %v", snap)
	}
	hv, ok := snap["waste"].(map[string]any)
	if !ok || hv["count"] != int64(1) {
		t.Fatalf("histogram snapshot = %v", snap["waste"])
	}

	var sb strings.Builder
	if err := r.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{"counter sims 7", "gauge active 2", "histogram waste count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot text missing %q:\n%s", want, text)
		}
	}
	// Sorted output: counter < gauge < histogram lines.
	if strings.Index(text, "counter") > strings.Index(text, "gauge") {
		t.Fatalf("snapshot not sorted:\n%s", text)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LinearBuckets(10, 10, 10)) // 10, 20, …, 100
	// Empty histogram: every quantile is a defined 0, never NaN/∞ — these
	// values flow straight into /state JSON on a fresh daemon.
	for _, q := range []float64{0, 0.5, 0.95, 1, -3, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// 100 uniform samples 1..100: every value v lands in bucket ⌈v/10⌉.
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 50, 1},   // exact at a bucket boundary
		{0.95, 95, 1},  // interpolated inside (90, 100]
		{0.99, 99, 1},  //
		{0.1, 10, 1},   //
		{0, 1, 1},      // clamped to the observed min
		{1, 100, 1e-9}, // clamped to the observed max
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}
	// Out-of-range (and NaN) q clamps into [0, 1] instead of going NaN.
	for _, tc := range []struct{ q, want float64 }{
		{-0.1, 1}, {1.1, 100}, {math.NaN(), 1},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("clamped Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileDefined is the table regression for the edge cases
// that used to leak NaN into /state: empty histograms, single samples (in a
// finite bucket, at a bucket bound, and in the overflow bucket), and
// no-bucket histograms. Every combination must yield a defined, finite
// value.
func TestHistogramQuantileDefined(t *testing.T) {
	qs := []float64{0, 0.25, 0.5, 0.95, 0.99, 1}
	cases := []struct {
		name   string
		bounds []float64
		sample []float64
		want   func(q float64) float64
	}{
		{"empty", LinearBuckets(1, 1, 4), nil, func(float64) float64 { return 0 }},
		{"empty-no-buckets", nil, nil, func(float64) float64 { return 0 }},
		{"single-mid-bucket", []float64{10, 20}, []float64{13}, func(float64) float64 { return 13 }},
		{"single-at-bound", []float64{10, 20}, []float64{10}, func(float64) float64 { return 10 }},
		{"single-overflow", []float64{1}, []float64{42}, func(float64) float64 { return 42 }},
		{"single-no-buckets", nil, []float64{5}, func(float64) float64 { return 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewRegistry().Histogram("h", tc.bounds)
			for _, v := range tc.sample {
				h.Observe(v)
			}
			for _, q := range qs {
				got := h.Quantile(q)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("Quantile(%v) = %v, want a finite value", q, got)
				}
				if want := tc.want(q); got != want {
					t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
				}
			}
		})
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewRegistry().Histogram("x", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(40) // overflow bucket
	// p99 rank lands in +Inf: the histogram's best estimate is the max.
	if got := h.Quantile(0.99); got != 40 {
		t.Fatalf("overflow quantile = %v, want 40", got)
	}
	if got := h.Min(); got != 0.5 {
		t.Fatalf("min = %v, want 0.5", got)
	}
	if got := h.Max(); got != 40 {
		t.Fatalf("max = %v, want 40", got)
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := NewRegistry().Histogram("x", ExponentialBuckets(1, 2, 8))
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %v, want 7 (clamped to the only sample)", q, got)
		}
	}
}

func TestVisit(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(5)
	r.Histogram("h", []float64{1}).Observe(3)
	seen := map[string]string{}
	r.Visit(func(name string, m any) {
		switch m.(type) {
		case *Counter:
			seen[name] = "counter"
		case *Gauge:
			seen[name] = "gauge"
		case *Histogram:
			seen[name] = "histogram"
		default:
			t.Fatalf("Visit(%q): unexpected metric type %T", name, m)
		}
	})
	want := map[string]string{"c": "counter", "g": "gauge", "h": "histogram"}
	for name, kind := range want {
		if seen[name] != kind {
			t.Fatalf("Visit saw %v, want %v", seen, want)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("published_counter").Add(3)
	r.PublishExpvar("abg_test_metrics")
	r.PublishExpvar("abg_test_metrics") // second publish must not panic
	v := expvar.Get("abg_test_metrics")
	if v == nil {
		t.Fatal("registry not published")
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(v.String()), &decoded); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if decoded["published_counter"] != float64(3) {
		t.Fatalf("expvar snapshot = %v", decoded)
	}
}

func TestPublishExpvarRebind(t *testing.T) {
	// Regression: publishing a second registry under an already-published
	// name must rebind the expvar to the new registry (a daemon that
	// rebuilt its engine after recovery), not keep serving the stale one.
	a := NewRegistry()
	a.Counter("generation").Add(1)
	a.PublishExpvar("abg_test_rebind")
	b := NewRegistry()
	b.Counter("generation").Add(2)
	b.PublishExpvar("abg_test_rebind") // must not panic, must win
	var decoded map[string]any
	if err := json.Unmarshal([]byte(expvar.Get("abg_test_rebind").String()), &decoded); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if decoded["generation"] != float64(2) {
		t.Fatalf("expvar still serves the stale registry: %v", decoded)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Reset()
	if r.Counter("c").Value() != 0 {
		t.Fatal("reset did not clear counters")
	}
}
