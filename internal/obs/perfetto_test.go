package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"abg/internal/sched"
)

func sampleQuanta() []sched.QuantumStats {
	return []sched.QuantumStats{
		{Index: 1, Start: 0, Length: 100, Steps: 100, Request: 2, Allotment: 2, Work: 180, CPL: 90},
		{Index: 2, Start: 100, Length: 100, Steps: 100, Request: 6, Allotment: 4, Work: 380, CPL: 95, Deprived: true},
		{Index: 3, Start: 200, Length: 100, Steps: 40, Request: 4, Allotment: 4, Work: 150, CPL: 38, Completed: true},
	}
}

func TestTimelineWriteTraceEvents(t *testing.T) {
	var tl Timeline
	tl.AddJob("alpha", sampleQuanta())
	tl.AddJob("", sampleQuanta()[:1])

	var sb strings.Builder
	if err := tl.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}

	var procNames []string
	slices, deprived, counters := 0, 0, 0
	var sawFinalZero bool
	for _, e := range decoded.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procNames = append(procNames, e.Args["name"].(string))
		case e.Ph == "X" && e.Tid == tidQuanta:
			slices++
			if e.Dur <= 0 {
				t.Fatalf("slice %q has non-positive dur %d", e.Name, e.Dur)
			}
		case e.Ph == "X" && e.Tid == tidDeprived:
			deprived++
			if e.Ts != 100 {
				t.Fatalf("deprived span at ts=%d, want 100", e.Ts)
			}
		case e.Ph == "C":
			counters++
			if e.Ts == 240 && e.Name == "allotment" && e.Args["processors"] == float64(0) {
				sawFinalZero = true
			}
		}
	}
	if len(procNames) != 2 || procNames[0] != "alpha" || procNames[1] != "job 1" {
		t.Fatalf("process names = %v", procNames)
	}
	if slices != 4 {
		t.Fatalf("quantum slices = %d, want 4", slices)
	}
	if deprived != 1 {
		t.Fatalf("deprived spans = %d, want 1", deprived)
	}
	if counters == 0 || !sawFinalZero {
		t.Fatalf("counter events = %d, finalZero=%v", counters, sawFinalZero)
	}
}

func TestWriteSpans(t *testing.T) {
	spans := []Span{
		{Name: "queued", Track: "lifecycle", Cat: "queue", Start: 0, Dur: 1000},
		{Name: "q1 a=4", Track: "quanta", Cat: "quantum", Start: 1000, Dur: 200,
			Args: map[string]any{"allotment": 4}},
		{Name: "complete", Track: "lifecycle", Start: 1200, Dur: 0},
	}
	var sb strings.Builder
	if err := WriteSpans(&sb, "trace abc", spans); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("span trace is not valid JSON: %v", err)
	}
	threads := map[string]int{}
	var durations, instants int
	for _, e := range decoded.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threads[e.Args["name"].(string)] = e.Tid
		case e.Ph == "X":
			durations++
		case e.Ph == "i":
			instants++
			if e.S != "t" {
				t.Fatalf("instant scope = %q, want thread", e.S)
			}
		}
	}
	if len(threads) != 2 || threads["lifecycle"] == 0 || threads["quanta"] == 0 {
		t.Fatalf("threads = %v", threads)
	}
	if durations != 2 || instants != 1 {
		t.Fatalf("durations=%d instants=%d, want 2/1", durations, instants)
	}
	if err := WriteSpans(&strings.Builder{}, "x", nil); err == nil {
		t.Fatal("empty span set exported without error")
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	if err := tl.WriteTraceEvents(&strings.Builder{}); err == nil {
		t.Fatal("empty timeline exported without error")
	}
}
