package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"abg/internal/sched"
)

func sampleQuanta() []sched.QuantumStats {
	return []sched.QuantumStats{
		{Index: 1, Start: 0, Length: 100, Steps: 100, Request: 2, Allotment: 2, Work: 180, CPL: 90},
		{Index: 2, Start: 100, Length: 100, Steps: 100, Request: 6, Allotment: 4, Work: 380, CPL: 95, Deprived: true},
		{Index: 3, Start: 200, Length: 100, Steps: 40, Request: 4, Allotment: 4, Work: 150, CPL: 38, Completed: true},
	}
}

func TestTimelineWriteTraceEvents(t *testing.T) {
	var tl Timeline
	tl.AddJob("alpha", sampleQuanta())
	tl.AddJob("", sampleQuanta()[:1])

	var sb strings.Builder
	if err := tl.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Cat  string         `json:"cat"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", decoded.DisplayTimeUnit)
	}

	var procNames []string
	slices, deprived, counters := 0, 0, 0
	var sawFinalZero bool
	for _, e := range decoded.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procNames = append(procNames, e.Args["name"].(string))
		case e.Ph == "X" && e.Tid == tidQuanta:
			slices++
			if e.Dur <= 0 {
				t.Fatalf("slice %q has non-positive dur %d", e.Name, e.Dur)
			}
		case e.Ph == "X" && e.Tid == tidDeprived:
			deprived++
			if e.Ts != 100 {
				t.Fatalf("deprived span at ts=%d, want 100", e.Ts)
			}
		case e.Ph == "C":
			counters++
			if e.Ts == 240 && e.Name == "allotment" && e.Args["processors"] == float64(0) {
				sawFinalZero = true
			}
		}
	}
	if len(procNames) != 2 || procNames[0] != "alpha" || procNames[1] != "job 1" {
		t.Fatalf("process names = %v", procNames)
	}
	if slices != 4 {
		t.Fatalf("quantum slices = %d, want 4", slices)
	}
	if deprived != 1 {
		t.Fatalf("deprived spans = %d, want 1", deprived)
	}
	if counters == 0 || !sawFinalZero {
		t.Fatalf("counter events = %d, finalZero=%v", counters, sawFinalZero)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl Timeline
	if err := tl.WriteTraceEvents(&strings.Builder{}); err == nil {
		t.Fatal("empty timeline exported without error")
	}
}
