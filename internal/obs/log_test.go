package obs

import (
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevels(t *testing.T) {
	spec, err := ParseLevels("info,sim=debug,alloc=error")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Default != slog.LevelInfo {
		t.Fatalf("default = %v", spec.Default)
	}
	if spec.For("sim") != slog.LevelDebug || spec.For("alloc") != slog.LevelError {
		t.Fatalf("components = %v", spec.Component)
	}
	if spec.For("other") != slog.LevelInfo {
		t.Fatalf("unknown component level = %v", spec.For("other"))
	}
	if spec.minimum() != slog.LevelDebug {
		t.Fatalf("minimum = %v", spec.minimum())
	}
}

func TestParseLevelsDefaults(t *testing.T) {
	spec, err := ParseLevels("")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Default != slog.LevelWarn {
		t.Fatalf("empty spec default = %v", spec.Default)
	}
	// Component-only spec keeps the warn default.
	spec, err = ParseLevels("sim=debug")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Default != slog.LevelWarn || spec.For("sim") != slog.LevelDebug {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseLevelsErrors(t *testing.T) {
	for _, bad := range []string{"loud", "sim=verbose", "info,debug"} {
		if _, err := ParseLevels(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestComponentFiltering(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "warn,sim=debug")
	if err != nil {
		t.Fatal(err)
	}
	simLog := logger.With(slog.String(ComponentKey, "sim"))
	allocLog := logger.With(slog.String(ComponentKey, "alloc"))

	simLog.Debug("sim detail")    // passes: sim=debug
	allocLog.Debug("alloc noise") // filtered: default warn
	allocLog.Warn("alloc warn")   // passes
	logger.Info("plain info")     // filtered: default warn

	out := sb.String()
	if !strings.Contains(out, "sim detail") {
		t.Fatalf("sim debug line filtered:\n%s", out)
	}
	if strings.Contains(out, "alloc noise") || strings.Contains(out, "plain info") {
		t.Fatalf("filtered lines leaked:\n%s", out)
	}
	if !strings.Contains(out, "alloc warn") {
		t.Fatalf("alloc warn missing:\n%s", out)
	}
}

func TestComponentFilteringInlineAttr(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "error,sim=info")
	if err != nil {
		t.Fatal(err)
	}
	// Component passed per-record rather than via With.
	logger.Info("inline", ComponentKey, "sim")
	logger.Info("dropped", ComponentKey, "alloc")
	out := sb.String()
	if !strings.Contains(out, "inline") || strings.Contains(out, "dropped") {
		t.Fatalf("inline component filtering wrong:\n%s", out)
	}
}

func TestLogSubscriber(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "debug")
	if err != nil {
		t.Fatal(err)
	}
	sub := NewLogSubscriber(logger)
	sub.OnEvent(Event{Kind: EvJobAdmitted, Job: 2, Name: "j2", Work: 100, Parallelism: 4})
	sub.OnEvent(Event{Kind: EvQuantumEnd, Quantum: 3, Steps: 10, Work: 40, Parallelism: 4})
	sub.OnEvent(Event{Kind: EvAllocDecision, Name: "deq", P: 16, IntRequest: 20, Allotment: 16})
	out := sb.String()
	for _, want := range []string{"job_admitted", "quantum_end", "alloc_decision", "name=j2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestLogSubscriberRespectsLevel(t *testing.T) {
	var sb strings.Builder
	logger, err := NewLogger(&sb, "info")
	if err != nil {
		t.Fatal(err)
	}
	sub := NewLogSubscriber(logger)
	sub.OnEvent(Event{Kind: EvQuantumEnd}) // debug: filtered
	sub.OnEvent(Event{Kind: EvJobCompleted, Response: 5})
	out := sb.String()
	if strings.Contains(out, "quantum_end") {
		t.Fatalf("debug event leaked at info level:\n%s", out)
	}
	if !strings.Contains(out, "job_completed") {
		t.Fatalf("info event missing:\n%s", out)
	}
}
