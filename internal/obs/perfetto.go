package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"abg/internal/sched"
)

// Timeline is a multi-job run prepared for Perfetto/Chrome trace-event
// export: one process (track group) per job, every executed quantum as a
// duration slice, deprived quanta highlighted on their own track, and the
// request/allotment series as counter tracks. One simulation step maps to
// one microsecond of trace time, so Perfetto's ruler reads directly in
// kilo-steps.
//
// Load the output at https://ui.perfetto.dev (or chrome://tracing): the
// JSON is the Chrome trace-event format, `{"traceEvents": [...]}`.
type Timeline struct {
	Jobs []TimelineJob
}

// TimelineJob is one job's track data: its name and per-quantum trace
// (QuantumStats with the engine-stamped Start step).
type TimelineJob struct {
	Name   string
	Quanta []sched.QuantumStats
}

// AddJob appends a job track built from a recorded per-quantum trace (run
// with KeepTrace). Jobs are rendered in insertion order.
func (t *Timeline) AddJob(name string, quanta []sched.QuantumStats) {
	t.Jobs = append(t.Jobs, TimelineJob{Name: name, Quanta: quanta})
}

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Span is one interval (Dur > 0) or instant (Dur == 0) of a request trace,
// the generic unit behind the daemon's end-to-end tracing: submit → admit →
// per-quantum execution → complete. Start and Dur are in simulation steps
// (one step = one trace microsecond, matching Timeline's convention), and
// Track groups spans onto named rows within one process group.
type Span struct {
	Name  string         `json:"name"`
	Track string         `json:"track"`
	Cat   string         `json:"cat,omitempty"`
	Start int64          `json:"start"`
	Dur   int64          `json:"dur"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteSpans renders one trace's spans as Chrome trace-event JSON loadable
// at https://ui.perfetto.dev: a single process group labelled name, one
// thread track per distinct Span.Track (in first-appearance order), spans
// as duration slices and zero-duration spans as thread-scoped instants.
func WriteSpans(w io.Writer, name string, spans []Span) error {
	if len(spans) == 0 {
		return fmt.Errorf("obs: empty span trace")
	}
	const pid = 1
	var out traceFile
	out.DisplayTimeUnit = "ms"
	out.TraceEvents = append(out.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
	tids := make(map[string]int)
	for _, sp := range spans {
		tid, ok := tids[sp.Track]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Track] = tid
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": sp.Track},
			})
		}
		ev := traceEvent{
			Name: sp.Name, Cat: sp.Cat, Ts: sp.Start,
			Pid: pid, Tid: tid, Args: sp.Args,
		}
		if sp.Dur > 0 {
			ev.Ph, ev.Dur = "X", sp.Dur
		} else {
			ev.Ph, ev.S = "i", "t"
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	return json.NewEncoder(w).Encode(out)
}

// Track ids within each job's process group.
const (
	tidQuanta   = 1 // every executed quantum
	tidDeprived = 2 // only the quanta on which a(q) < request
)

// WriteTraceEvents renders the timeline as Chrome trace-event JSON.
func (t Timeline) WriteTraceEvents(w io.Writer) error {
	if len(t.Jobs) == 0 {
		return fmt.Errorf("obs: empty timeline (run with KeepTrace to record quanta)")
	}
	var out traceFile
	out.DisplayTimeUnit = "ms"
	for ji, tj := range t.Jobs {
		pid := ji + 1
		name := tj.Name
		if name == "" {
			name = fmt.Sprintf("job %d", ji)
		}
		out.TraceEvents = append(out.TraceEvents,
			traceEvent{Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name}},
			traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid,
				Args: map[string]any{"sort_index": ji}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidQuanta,
				Args: map[string]any{"name": "quanta"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tidDeprived,
				Args: map[string]any{"name": "deprived"}},
		)
		for _, q := range tj.Quanta {
			dur := int64(q.Steps)
			if dur == 0 {
				continue
			}
			args := map[string]any{
				"request":     q.Request,
				"allotment":   q.Allotment,
				"work":        q.Work,
				"parallelism": q.AvgParallelism(),
				"waste":       q.Waste(),
				"deprived":    q.Deprived,
			}
			cat := "quantum"
			if q.Deprived {
				cat = "quantum,deprived"
			}
			out.TraceEvents = append(out.TraceEvents, traceEvent{
				Name: fmt.Sprintf("q%d a=%d", q.Index, q.Allotment),
				Cat:  cat, Ph: "X", Ts: q.Start, Dur: dur,
				Pid: pid, Tid: tidQuanta, Args: args,
			})
			if q.Deprived {
				out.TraceEvents = append(out.TraceEvents, traceEvent{
					Name: "deprived", Cat: "deprived",
					Ph: "X", Ts: q.Start, Dur: dur,
					Pid: pid, Tid: tidDeprived,
					Args: map[string]any{"request": q.Request, "allotment": q.Allotment},
				})
			}
			// Counter tracks: step functions sampled at each quantum start
			// and closed out at the quantum end so the last value does not
			// bleed past completion.
			out.TraceEvents = append(out.TraceEvents,
				traceEvent{Name: "allotment", Ph: "C", Ts: q.Start, Pid: pid,
					Args: map[string]any{"processors": q.Allotment}},
				traceEvent{Name: "request", Ph: "C", Ts: q.Start, Pid: pid,
					Args: map[string]any{"processors": q.Request}},
			)
			if q.Completed {
				end := q.Start + dur
				out.TraceEvents = append(out.TraceEvents,
					traceEvent{Name: "allotment", Ph: "C", Ts: end, Pid: pid,
						Args: map[string]any{"processors": 0}},
					traceEvent{Name: "request", Ph: "C", Ts: end, Pid: pid,
						Args: map[string]any{"processors": 0}},
				)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
