package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use (the parallel sweep runners hammer these from every CPU).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous integer value (e.g. jobs currently active).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets (upper bounds,
// cumulative-style like Prometheus: counts[i] holds observations ≤
// bounds[i]; the final slot is the overflow bucket). The bucket layout is
// fixed at creation so Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last = +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the bucket that contains the
// target rank. The estimate is exact at bucket boundaries and degrades
// gracefully inside wide buckets — the same trade-off Prometheus's
// histogram_quantile makes, so abgd's /metrics consumers and the in-process
// consumers (abgload -json, /api/v1/state) agree on the estimator.
//
// Interpolation treats each finite bucket as uniform over (lower, upper].
// The first bucket interpolates from min(0, bound) to its bound so
// latency-style histograms (all-positive) do not report negative quantiles.
// A rank landing in the +Inf overflow bucket clamps to the largest
// observation.
//
// Quantile always returns a defined, finite value for finite observations:
// an empty histogram reports 0 (a fresh daemon's /state shows zero latency,
// not NaN — which would also fail JSON encoding), a single observation
// reports that observation exactly for every q (the min/max clamp), and q
// outside [0, 1] (or NaN) is clamped into the valid range.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := float64(0)
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if h.bounds[i] < lo { // all-negative first bucket
				lo = h.bounds[i]
			}
			frac := (rank - cum) / c
			v := lo + (h.bounds[i]-lo)*frac
			// Clamp to the observed range: interpolation cannot know the
			// sample's true extremes, but the histogram tracked them.
			if min := math.Float64frombits(h.min.Load()); v < min {
				v = min
			}
			if max := math.Float64frombits(h.max.Load()); v > max {
				v = max
			}
			return v
		}
		cum += c
	}
	// Rank lands in the overflow bucket (or rounding left it past the finite
	// ones): the best estimate the histogram holds is the maximum.
	return math.Float64frombits(h.max.Load())
}

// Min returns the smallest observation (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.max.Load())
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the (upperBound, count) pairs including the +Inf overflow
// bucket (bound = +Inf). Counts are per-bucket, not cumulative.
func (h *Histogram) Buckets() ([]float64, []int64) {
	bounds := make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = math.Inf(1)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// LinearBuckets returns n upper bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n upper bounds start, start·factor, ….
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of metrics. Lookups get-or-create under a
// lock; hot paths should look a metric up once and keep the pointer (every
// metric's methods are lock-free). The zero value is not usable — call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the CLIs publish over expvar; the
// experiment harness records its sweep totals here.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if absent (later calls may pass nil bounds
// to look it up).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Visit calls f once per registered metric with its name and the live
// metric value (*Counter, *Gauge, or *Histogram). The registration map is
// copied under the lock and f runs outside it, so f may take arbitrary time
// (e.g. render an exposition page) without stalling metric lookups.
// Iteration order is unspecified; exporters sort.
func (r *Registry) Visit(f func(name string, metric any)) {
	r.mu.Lock()
	type entry struct {
		name string
		m    any
	}
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		entries = append(entries, entry{name, c})
	}
	for name, g := range r.gauges {
		entries = append(entries, entry{name, g})
	}
	for name, h := range r.histograms {
		entries = append(entries, entry{name, h})
	}
	r.mu.Unlock()
	for _, e := range entries {
		f(e.name, e.m)
	}
}

// Reset drops every registered metric (tests).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.gauges = make(map[string]*Gauge)
	r.histograms = make(map[string]*Histogram)
}

// Snapshot returns the registry as a plain map, histograms expanded into
// count/sum/mean/min/max plus per-bucket counts. This is also the expvar
// representation.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		hv := map[string]any{
			"count": h.Count(),
			"sum":   h.Sum(),
			"mean":  h.Mean(),
		}
		if h.Count() > 0 {
			hv["min"] = math.Float64frombits(h.min.Load())
			hv["max"] = math.Float64frombits(h.max.Load())
		}
		bounds, counts := h.Buckets()
		buckets := make(map[string]int64, len(bounds))
		for i, b := range bounds {
			key := "le_inf"
			if !math.IsInf(b, 1) {
				key = "le_" + strconv.FormatFloat(b, 'g', -1, 64)
			}
			buckets[key] = counts[i]
		}
		hv["buckets"] = buckets
		out[name] = hv
	}
	return out
}

// WriteSnapshot dumps the registry as sorted plain text, one metric per
// line — the format behind abgexp -metrics and the /debug/metrics endpoint.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	r.mu.Lock()
	type hist struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make([]hist, 0, len(r.histograms))
	for name, h := range r.histograms {
		hists = append(hists, hist{name, h})
	}
	r.mu.Unlock()

	lines := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for name, v := range counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, v))
	}
	for name, v := range gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %d", name, v))
	}
	for _, hh := range hists {
		var sb strings.Builder
		fmt.Fprintf(&sb, "histogram %s count=%d mean=%.6g", hh.name, hh.h.Count(), hh.h.Mean())
		bounds, counts := hh.h.Buckets()
		for i, b := range bounds {
			if counts[i] == 0 {
				continue
			}
			if math.IsInf(b, 1) {
				fmt.Fprintf(&sb, " le_inf=%d", counts[i])
			} else {
				fmt.Fprintf(&sb, " le_%g=%d", b, counts[i])
			}
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// publishMu serialises the publication table against expvar.Publish, which
// panics on duplicates.
var (
	publishMu sync.Mutex
	published = make(map[string]*atomic.Pointer[Registry])
)

// PublishExpvar publishes the registry as a single expvar variable holding
// the Snapshot map. expvar variables cannot be unpublished, so the name is
// bound through an indirection the registry can be swapped behind:
// publishing a second registry under the same name rebinds the variable to
// the new registry instead of panicking (expvar's behaviour) or silently
// serving the stale one (this function's old behaviour). A daemon that
// tears an engine down and builds a fresh one — e.g. abgd restarting after
// crash recovery, or back-to-back in-process servers in tests — therefore
// always exposes the live registry, never a dead engine's counters.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if holder, ok := published[name]; ok {
		holder.Store(r)
		return
	}
	if expvar.Get(name) != nil {
		// The name was taken outside this registry mechanism (e.g. the
		// stdlib's own vars); leave it alone rather than panic.
		return
	}
	holder := &atomic.Pointer[Registry]{}
	holder.Store(r)
	published[name] = holder
	expvar.Publish(name, expvar.Func(func() any { return holder.Load().Snapshot() }))
}
