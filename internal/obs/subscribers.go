package obs

import "sync"

// MetricsSubscriber folds bus events into a Registry: totals for quanta,
// jobs, requested/granted processors and wasted cycles, plus fixed-bucket
// histograms of per-quantum parallelism and waste and of per-job response
// time. All underlying metrics are atomic, so one subscriber may serve
// many concurrently running simulations (the sweep runners do exactly
// that).
//
// Metric names are stable API, documented in README.md's Observability
// section.
type MetricsSubscriber struct {
	quanta        *Counter
	deprivedQ     *Counter
	intoDeprived  *Counter
	intoSatisfied *Counter
	jobsAdmitted  *Counter
	jobsCompleted *Counter
	jobsActive    *Gauge
	requested     *Counter
	granted       *Counter
	workCycles    *Counter
	wastedCycles  *Counter
	allocRounds   *Counter
	faults        *Counter
	capChanges    *Counter
	restarts      *Counter
	lostWork      *Counter
	warnings      *Counter
	parallelism   *Histogram
	waste         *Histogram
	response      *Histogram
}

// NewMetricsSubscriber registers the simulation metrics in reg (the Default
// registry when nil) and returns the subscriber feeding them.
func NewMetricsSubscriber(reg *Registry) *MetricsSubscriber {
	if reg == nil {
		reg = Default
	}
	return &MetricsSubscriber{
		quanta:        reg.Counter("sim_quanta_total"),
		deprivedQ:     reg.Counter("sim_deprived_quanta_total"),
		intoDeprived:  reg.Counter("sim_deprived_transitions_total"),
		intoSatisfied: reg.Counter("sim_satisfied_transitions_total"),
		jobsAdmitted:  reg.Counter("sim_jobs_admitted_total"),
		jobsCompleted: reg.Counter("sim_jobs_completed_total"),
		jobsActive:    reg.Gauge("sim_jobs_active"),
		requested:     reg.Counter("sim_requested_processors_total"),
		granted:       reg.Counter("sim_granted_processors_total"),
		workCycles:    reg.Counter("sim_work_cycles_total"),
		wastedCycles:  reg.Counter("sim_wasted_cycles_total"),
		allocRounds:   reg.Counter("sim_alloc_rounds_total"),
		faults:        reg.Counter("fault_injected_total"),
		capChanges:    reg.Counter("fault_capacity_changes_total"),
		restarts:      reg.Counter("fault_job_restarts_total"),
		lostWork:      reg.Counter("fault_lost_work_cycles_total"),
		warnings:      reg.Counter("fault_warnings_total"),
		parallelism:   reg.Histogram("sim_quantum_parallelism", ExponentialBuckets(1, 2, 11)),
		waste:         reg.Histogram("sim_quantum_waste", ExponentialBuckets(1, 4, 12)),
		response:      reg.Histogram("sim_job_response_steps", ExponentialBuckets(1000, 2, 16)),
	}
}

// attachments tracks which (bus, registry) pairs already have a
// MetricsSubscriber, so AttachMetrics is idempotent.
var (
	attachMu    sync.Mutex
	attachments = make(map[[2]any]func())
)

// AttachMetrics subscribes a MetricsSubscriber feeding reg (Default when
// nil) to bus, deduplicating per (bus, registry) pair: attaching the same
// pair twice keeps a single subscription, so events are never
// double-counted. Without the dedupe, two wiring sites sharing a bus and a
// registry — e.g. cmd/abgd's -debug-addr path and the server's own metrics
// wiring, or a daemon re-attaching after rebuilding its engine from a crash
// recovery — would silently inflate every counter by 2×.
//
// The returned detach function removes the subscription and forgets the
// pair (a later AttachMetrics re-attaches fresh). Detaching is idempotent
// and shared: whichever caller detaches first wins.
func AttachMetrics(bus *Bus, reg *Registry) (detach func()) {
	if reg == nil {
		reg = Default
	}
	key := [2]any{bus, reg}
	attachMu.Lock()
	defer attachMu.Unlock()
	if d, ok := attachments[key]; ok {
		return d
	}
	unsub := bus.Subscribe(NewMetricsSubscriber(reg))
	var once sync.Once
	d := func() {
		once.Do(func() {
			unsub()
			attachMu.Lock()
			delete(attachments, key)
			attachMu.Unlock()
		})
	}
	attachments[key] = d
	return d
}

// OnEvent implements Subscriber.
func (m *MetricsSubscriber) OnEvent(e Event) {
	switch e.Kind {
	case EvQuantumEnd:
		m.quanta.Inc()
		if e.Deprived {
			m.deprivedQ.Inc()
		}
		m.workCycles.Add(e.Work)
		m.wastedCycles.Add(e.Waste)
		m.parallelism.Observe(e.Parallelism)
		m.waste.Observe(float64(e.Waste))
	case EvAllotment:
		m.requested.Add(int64(e.IntRequest))
		m.granted.Add(int64(e.Allotment))
	case EvJobAdmitted:
		m.jobsAdmitted.Inc()
		m.jobsActive.Add(1)
	case EvJobCompleted:
		m.jobsCompleted.Inc()
		m.jobsActive.Add(-1)
		m.response.Observe(float64(e.Response))
	case EvDeprived:
		m.intoDeprived.Inc()
	case EvSatisfied:
		m.intoSatisfied.Inc()
	case EvAllocDecision:
		m.allocRounds.Inc()
	case EvFault:
		m.faults.Inc()
	case EvCapacity:
		m.capChanges.Inc()
	case EvJobRestarted:
		m.restarts.Inc()
		m.lostWork.Add(e.Work)
	case EvWarning:
		m.warnings.Inc()
	}
}
