package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseSpec parses the command-line fault specification into a Plan for a
// machine of p processors. The spec is a comma-separated list of
// key=value clauses; an empty spec is the zero plan. Clauses:
//
//	seed=N                  seed for all random fault decisions
//	drop=F                  drop each request message with probability F
//	delay=K:F               delay a message K quanta with probability F
//	dup=F                   duplicate a message with probability F
//	noise=F                 multiplicative A(q) noise with amplitude F
//	anoise=F                additive A(q) noise with amplitude F
//	restart=F               abort-and-restart per quantum with probability F
//	restartat=Q1+Q2+...     abort-and-restart at the listed quanta
//	maxrestarts=N           cap injected failures per job (0 = unlimited)
//	cap=step:F@Q            lose ⌊F·P⌉ processors from quantum Q on
//	cap=step:F@Q1-Q2        ... recovering at quantum Q2
//	cap=sine:F:PERIOD       sinusoidal co-tenant, amplitude F·P
//	cap=churn:F:WINDOW      random churn up to F·P, redrawn every WINDOW quanta
//
// Probabilities and fractions F must lie in [0,1] (noise amplitudes may
// exceed 1 — a reading pushed negative exercises the policy guards).
// Example: "drop=0.2,delay=3:0.1,cap=step:0.5@40,seed=7".
func ParseSpec(spec string, p int) (Plan, error) {
	var plan Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return plan, nil
	}
	if p < 1 {
		return plan, fmt.Errorf("fault: machine size %d < 1", p)
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "seed":
			plan.Seed, err = strconv.ParseUint(val, 10, 64)
		case "drop":
			plan.Drop, err = parseProb(key, val)
		case "dup":
			plan.Dup, err = parseProb(key, val)
		case "delay":
			k, f, cut := strings.Cut(val, ":")
			if !cut {
				return Plan{}, fmt.Errorf("fault: delay wants K:F, got %q", val)
			}
			plan.Delay, err = strconv.Atoi(k)
			if err == nil && plan.Delay < 1 {
				err = fmt.Errorf("delay %d < 1 quantum", plan.Delay)
			}
			if err == nil {
				plan.DelayProb, err = parseProb(key, f)
			}
		case "noise":
			plan.NoiseMul, err = parseAmp(key, val)
		case "anoise":
			plan.NoiseAdd, err = parseAmp(key, val)
		case "restart":
			plan.RestartProb, err = parseProb(key, val)
		case "restartat":
			for _, qs := range strings.Split(val, "+") {
				q, qerr := strconv.Atoi(qs)
				if qerr != nil || q < 1 {
					return Plan{}, fmt.Errorf("fault: restartat quantum %q invalid", qs)
				}
				plan.RestartAt = append(plan.RestartAt, q)
			}
			sort.Ints(plan.RestartAt)
		case "maxrestarts":
			plan.MaxRestarts, err = strconv.Atoi(val)
			if err == nil && plan.MaxRestarts < 0 {
				err = fmt.Errorf("maxrestarts %d < 0", plan.MaxRestarts)
			}
		case "cap":
			plan.Capacity, err = parseCap(val, p)
		default:
			return Plan{}, fmt.Errorf("fault: unknown clause %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: clause %q: %v", clause, err)
		}
	}
	return plan, nil
}

// parseProb parses a probability in [0,1].
func parseProb(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || f < 0 || f > 1 {
		return 0, fmt.Errorf("%s probability %v outside [0,1]", key, f)
	}
	return f, nil
}

// parseAmp parses a noise amplitude (non-negative, may exceed 1).
func parseAmp(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("%s amplitude %v invalid", key, f)
	}
	return f, nil
}

// parseCap parses the capacity-model sub-grammar for a machine of size p.
func parseCap(val string, p int) (CapacityModel, error) {
	kind, rest, ok := strings.Cut(val, ":")
	if !ok {
		return nil, fmt.Errorf("cap wants model:params, got %q", val)
	}
	frac := func(s string) (int, error) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		if math.IsNaN(f) || f < 0 || f > 1 {
			return 0, fmt.Errorf("capacity fraction %v outside [0,1]", f)
		}
		return int(math.Round(f * float64(p))), nil
	}
	switch kind {
	case "step":
		fs, at, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("cap=step wants F@Q, got %q", rest)
		}
		loss, err := frac(fs)
		if err != nil {
			return nil, err
		}
		from, until := at, ""
		if f, u, ranged := strings.Cut(at, "-"); ranged {
			from, until = f, u
		}
		m := StepCapacity{P: p, Loss: loss}
		if m.From, err = strconv.Atoi(from); err != nil || m.From < 1 {
			return nil, fmt.Errorf("cap=step quantum %q invalid", from)
		}
		if until != "" {
			if m.Until, err = strconv.Atoi(until); err != nil || m.Until <= m.From {
				return nil, fmt.Errorf("cap=step recovery quantum %q invalid", until)
			}
		}
		return m, nil
	case "sine":
		fs, per, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("cap=sine wants F:PERIOD, got %q", rest)
		}
		amp, err := frac(fs)
		if err != nil {
			return nil, err
		}
		period, err := strconv.Atoi(per)
		if err != nil || period < 2 {
			return nil, fmt.Errorf("cap=sine period %q invalid", per)
		}
		return SineCapacity{P: p, Amp: amp, Period: period}, nil
	case "churn":
		fs, win, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("cap=churn wants F:WINDOW, got %q", rest)
		}
		loss, err := frac(fs)
		if err != nil {
			return nil, err
		}
		window, err := strconv.Atoi(win)
		if err != nil || window < 1 {
			return nil, fmt.Errorf("cap=churn window %q invalid", win)
		}
		return ChurnCapacity{P: p, MaxLoss: loss, Window: window}, nil
	default:
		return nil, fmt.Errorf("cap model %q unknown (step|sine|churn)", kind)
	}
}

// String renders the plan in the spec grammar (capacity models render via
// their Name, which is descriptive rather than re-parsable). The zero plan
// renders as "none".
func (p Plan) String() string {
	if p.IsZero() && p.Seed == 0 {
		return "none"
	}
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	if p.Drop > 0 {
		add("drop=%g", p.Drop)
	}
	if p.DelayProb > 0 && p.Delay > 0 {
		add("delay=%d:%g", p.Delay, p.DelayProb)
	}
	if p.Dup > 0 {
		add("dup=%g", p.Dup)
	}
	if p.NoiseMul != 0 {
		add("noise=%g", p.NoiseMul)
	}
	if p.NoiseAdd != 0 {
		add("anoise=%g", p.NoiseAdd)
	}
	if p.RestartProb > 0 {
		add("restart=%g", p.RestartProb)
	}
	if len(p.RestartAt) > 0 {
		qs := make([]string, len(p.RestartAt))
		for i, q := range p.RestartAt {
			qs[i] = strconv.Itoa(q)
		}
		add("restartat=%s", strings.Join(qs, "+"))
	}
	if p.MaxRestarts > 0 {
		add("maxrestarts=%d", p.MaxRestarts)
	}
	if p.Capacity != nil {
		add("cap=%s", p.Capacity.Name())
	}
	if p.Seed != 0 {
		add("seed=%d", p.Seed)
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
