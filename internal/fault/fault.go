// Package fault is the deterministic fault-injection and degradation layer
// of the simulator. The paper evaluates ABG in a frictionless setting —
// fixed P, exact A(q) measurement, lossless request/allotment exchange —
// but the A-Control loop's claim to fame (BIBO stability with zero
// steady-state error) only matters in production if the loop stays stable
// under disturbance. This package perturbs every interface of the two-level
// framework:
//
//   - capacity churn: the machine's total processor count P(t) varies over
//     time (StepCapacity, SineCapacity, ChurnCapacity), consumed by the
//     engines via sim.SingleConfig.Capacity / sim.MultiConfig.Capacity;
//   - lossy control channel: per-quantum request messages can be dropped,
//     delayed k quanta, or duplicated, with the allocator reusing the
//     last-seen request (stale-state semantics), and the measured A(q) can
//     carry multiplicative/additive noise before it reaches the feedback
//     policy (Plan.Policy);
//   - job failure/restart: a job aborts mid-DAG and restarts with its
//     feedback state reset (Plan.RestartHook + sim.RestartPlan);
//   - a runtime invariant Checker that subscribes to a run's obs bus and
//     fails fast on contract violations (allotments above P(t), non-finite
//     or negative requests, unbalanced deprivation accounting, work not
//     conserved across restarts).
//
// Everything is seeded and *stateless*: each random decision is a hash of
// (seed, stream, coordinates), never a draw from shared generator state, so
// identical seeds and specs replay byte-identically regardless of call
// order, parallelism, or which subset of faults is enabled — and a plan
// scaled to intensity zero is bit-identical to the unperturbed simulator.
package fault

import "math"

// Hash streams: each consumer of randomness mixes in its own salt so the
// decisions of different fault kinds are independent even at the same
// (seed, job, quantum) coordinates.
const (
	saltChannel  uint64 = 0xc4ceb9fe1a85ec53
	saltNoiseMul uint64 = 0xff51afd7ed558ccd
	saltNoiseAdd uint64 = 0x2545f4914f6cdd1d
	saltRestart  uint64 = 0x9e3779b97f4a7c15
	saltChurn    uint64 = 0xd6e8feb86659fd93
)

// mix64 is the splitmix64 finalizer — a cheap, well-dispersed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash chains the values into one dispersed 64-bit key.
func hash(seed uint64, vals ...uint64) uint64 {
	h := mix64(seed + 0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = mix64(h ^ v)
	}
	return h
}

// unit returns a deterministic uniform float64 in [0,1) keyed by the given
// coordinates — the stateless replacement for an RNG draw.
func unit(seed uint64, vals ...uint64) float64 {
	return float64(hash(seed, vals...)>>11) * (1.0 / (1 << 53))
}

// Plan describes the full disturbance applied to one run. The zero value is
// the frictionless simulator. Probabilities are per quantum; all randomness
// derives from Seed.
type Plan struct {
	// Seed drives every random fault decision.
	Seed uint64
	// Capacity varies the machine's P(t); nil keeps it fixed.
	Capacity CapacityModel
	// Drop is the probability that a quantum's request message is lost;
	// the allocator keeps acting on the last-seen request.
	Drop float64
	// DelayProb is the probability that a request message is delayed by
	// Delay quanta instead of arriving at its own boundary.
	DelayProb float64
	Delay     int
	// Dup is the probability that a request message is duplicated: it
	// arrives on time and again one quantum later, where the stale copy
	// overwrites whatever arrived in between.
	Dup float64
	// NoiseMul and NoiseAdd perturb the measured parallelism before it
	// reaches the feedback policy: A' = A·(1 + NoiseMul·u) + NoiseAdd·v
	// with u, v uniform in [−1, 1). Large noise can push A' negative —
	// deliberately: that is the poisoned sample the policy guards absorb.
	NoiseMul float64
	NoiseAdd float64
	// RestartProb is the per-quantum probability that the job aborts and
	// restarts; RestartAt lists quanta at which it always does.
	RestartProb float64
	RestartAt   []int
	// MaxRestarts caps injected failures per job (0 = unlimited).
	MaxRestarts int
}

// channelActive reports whether the plan perturbs the control channel or
// the measurement (the parts Policy wraps).
func (p Plan) channelActive() bool {
	return p.Drop > 0 || (p.DelayProb > 0 && p.Delay > 0) || p.Dup > 0 ||
		p.NoiseMul != 0 || p.NoiseAdd != 0
}

// restartActive reports whether the plan injects job failures.
func (p Plan) restartActive() bool {
	return p.RestartProb > 0 || len(p.RestartAt) > 0
}

// IsZero reports whether the plan perturbs nothing.
func (p Plan) IsZero() bool {
	return p.Capacity == nil && !p.channelActive() && !p.restartActive()
}

// clampProb clamps x into [0, 1].
func clampProb(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Scale returns the plan with every disturbance amplitude multiplied by
// intensity — the chaos harness's single knob. Intensity 0 returns a plan
// that is exactly the unperturbed simulator (IsZero); intensity 1 returns
// the plan unchanged; intermediate values scale probabilities, noise
// amplitudes, and the capacity model's amplitude linearly. The seed is
// preserved so the same workload replays under every intensity.
func (p Plan) Scale(intensity float64) Plan {
	if intensity <= 0 || math.IsNaN(intensity) {
		return Plan{Seed: p.Seed}
	}
	out := p
	out.Drop = clampProb(p.Drop * intensity)
	out.DelayProb = clampProb(p.DelayProb * intensity)
	out.Dup = clampProb(p.Dup * intensity)
	out.RestartProb = clampProb(p.RestartProb * intensity)
	out.NoiseMul = p.NoiseMul * intensity
	out.NoiseAdd = p.NoiseAdd * intensity
	if p.Capacity != nil {
		if s, ok := p.Capacity.(Scalable); ok {
			out.Capacity = s.Scaled(intensity)
		}
	}
	return out
}
