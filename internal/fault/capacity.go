package fault

import (
	"fmt"
	"math"

	"abg/internal/alloc"
)

// CapacityModel is the time-varying machine-size interface the engines
// consume (an alias of alloc.Capacity, so this package adds no dependency to
// the engine layer). At(q) is the number of processors available during
// quantum q (1-based); it must be deterministic, as the engines and the
// invariant checker both evaluate it.
type CapacityModel = alloc.Capacity

// Scalable is implemented by capacity models whose disturbance amplitude the
// chaos harness can scale with its intensity knob. Scaled(0) must return nil
// (the fixed machine); Scaled(1) must be equivalent to the receiver.
type Scalable interface {
	CapacityModel
	Scaled(intensity float64) CapacityModel
}

// scaleAmp scales an integer disturbance amplitude, rounding to nearest and
// clamping into [0, amp·max(f,0)] sensibly.
func scaleAmp(amp int, f float64) int {
	if f <= 0 || amp <= 0 {
		return 0
	}
	return int(math.Round(float64(amp) * f))
}

// StepCapacity models hot-unplug/replug: the machine runs at P processors,
// drops to P−Loss at quantum From, and recovers at quantum Until (Until ≤ 0
// means the nodes never come back).
type StepCapacity struct {
	P, Loss     int
	From, Until int
}

// At implements CapacityModel.
func (s StepCapacity) At(q int) int {
	if q >= s.From && (s.Until <= 0 || q < s.Until) {
		return s.P - s.Loss
	}
	return s.P
}

// Name implements CapacityModel.
func (s StepCapacity) Name() string {
	if s.Until > 0 {
		return fmt.Sprintf("step(%d-%d@%d-%d)", s.P, s.Loss, s.From, s.Until)
	}
	return fmt.Sprintf("step(%d-%d@%d)", s.P, s.Loss, s.From)
}

// Scaled implements Scalable by scaling the number of lost processors.
func (s StepCapacity) Scaled(f float64) CapacityModel {
	loss := scaleAmp(s.Loss, f)
	if loss == 0 {
		return nil
	}
	s.Loss = loss
	return s
}

// SineCapacity models a co-tenant whose load oscillates sinusoidally: the
// available capacity is P − Amp·(1+sin(2πq/Period))/2, i.e. it swings
// between P and P−Amp with the given period in quanta.
type SineCapacity struct {
	P, Amp, Period int
}

// At implements CapacityModel.
func (s SineCapacity) At(q int) int {
	if s.Period <= 0 || s.Amp <= 0 {
		return s.P
	}
	theta := 2 * math.Pi * float64(q) / float64(s.Period)
	return s.P - int(math.Round(float64(s.Amp)*(1+math.Sin(theta))/2))
}

// Name implements CapacityModel.
func (s SineCapacity) Name() string {
	return fmt.Sprintf("sine(%d-%d/%d)", s.P, s.Amp, s.Period)
}

// Scaled implements Scalable by scaling the oscillation amplitude.
func (s SineCapacity) Scaled(f float64) CapacityModel {
	amp := scaleAmp(s.Amp, f)
	if amp == 0 {
		return nil
	}
	s.Amp = amp
	return s
}

// ChurnCapacity models random node churn: time is split into windows of
// Window quanta, and during window w a deterministic draw from (Seed, w)
// takes MaxLoss·u(w) processors offline, u uniform in [0,1). Because the
// draw is a stateless hash of the window index, replays and partial
// evaluations agree regardless of which quanta are sampled.
type ChurnCapacity struct {
	P, MaxLoss, Window int
	Seed               uint64
}

// At implements CapacityModel.
func (c ChurnCapacity) At(q int) int {
	if c.Window <= 0 || c.MaxLoss <= 0 {
		return c.P
	}
	w := uint64(q / c.Window)
	loss := int(hash(c.Seed, saltChurn, w) % uint64(c.MaxLoss+1))
	return c.P - loss
}

// Name implements CapacityModel.
func (c ChurnCapacity) Name() string {
	return fmt.Sprintf("churn(%d-%d/%d)", c.P, c.MaxLoss, c.Window)
}

// Scaled implements Scalable by scaling the maximum simultaneous loss.
func (c ChurnCapacity) Scaled(f float64) CapacityModel {
	loss := scaleAmp(c.MaxLoss, f)
	if loss == 0 {
		return nil
	}
	c.MaxLoss = loss
	return c
}
