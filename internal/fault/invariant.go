package fault

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"abg/internal/obs"
)

// maxViolations bounds the checker's memory on a badly broken run; the
// count keeps incrementing past it.
const maxViolations = 64

// Checker is a runtime invariant checker for the two-level scheduling
// contract. Subscribe it to a run's obs bus and it validates, as the events
// stream past, that
//
//   - requests are finite and non-negative (continuous and integer);
//   - allotments are non-negative and never exceed the machine capacity
//     P(t) in effect at that boundary, and the per-job deprived flag
//     matches a(q) < request;
//   - measured quanta are sane: non-negative steps, work, and waste, and
//     finite non-negative parallelism;
//   - deprived/satisfied transitions balance (a job never enters a state
//     it is already in);
//   - work is conserved across restarts: each EvJobRestarted's lost work
//     equals the work executed since the job's last (re)start, and at
//     completion the total executed work equals T1 plus all lost work.
//
// A Checker watches one run at a time (job indices are per-run); it is safe
// for concurrent OnEvent calls. With failFast set the first violation
// panics, pinpointing the offending event mid-run; otherwise violations
// accumulate for Err / Violations.
type Checker struct {
	mu       sync.Mutex
	p        int // machine size; ceiling for every capacity and allotment
	capNow   int // capacity currently in effect
	failFast bool

	count      int
	violations []string
	jobs       map[int]*jobAccount
}

// jobAccount tracks one job's conservation state.
type jobAccount struct {
	admitted bool
	work     int64 // T1 from admission
	executed int64 // Σ work over all quanta, all attempts
	lost     int64 // Σ work thrown away by restarts
	attempt  int64 // work since the last (re)start
	deprived bool
}

// NewChecker returns a Checker for a run on a machine of size p. With
// failFast the first violation panics; otherwise inspect Err after the run.
func NewChecker(p int, failFast bool) *Checker {
	return &Checker{p: p, capNow: p, failFast: failFast,
		jobs: make(map[int]*jobAccount)}
}

// violate records one contract violation.
func (c *Checker) violate(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c.failFast {
		panic("fault: invariant violated: " + msg)
	}
	c.count++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, msg)
	}
}

// job returns the accounting record for job i, creating it on first sight.
func (c *Checker) job(i int) *jobAccount {
	a := c.jobs[i]
	if a == nil {
		a = &jobAccount{}
		c.jobs[i] = a
	}
	return a
}

// OnEvent implements obs.Subscriber.
func (c *Checker) OnEvent(e obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch e.Kind {
	case obs.EvCapacity:
		if e.P < 0 || e.P > c.p {
			c.violate("capacity P(q=%d)=%d outside [0,%d]", e.Quantum, e.P, c.p)
		}
		c.capNow = e.P
	case obs.EvJobAdmitted:
		a := c.job(e.Job)
		a.admitted = true
		a.work = e.Work
	case obs.EvRequest:
		if math.IsNaN(e.Request) || math.IsInf(e.Request, 0) || e.Request < 0 {
			c.violate("job %d q=%d: non-finite or negative request d=%v",
				e.Job, e.Quantum, e.Request)
		}
		if e.IntRequest < 0 {
			c.violate("job %d q=%d: negative integer request %d",
				e.Job, e.Quantum, e.IntRequest)
		}
	case obs.EvAllotment:
		if e.Allotment < 0 {
			c.violate("job %d q=%d: negative allotment %d",
				e.Job, e.Quantum, e.Allotment)
		}
		if e.Allotment > c.capNow {
			c.violate("job %d q=%d: allotment %d exceeds capacity P(t)=%d",
				e.Job, e.Quantum, e.Allotment, c.capNow)
		}
		if want := e.Allotment < e.IntRequest; e.Deprived != want {
			c.violate("job %d q=%d: deprived flag %v but a=%d req=%d",
				e.Job, e.Quantum, e.Deprived, e.Allotment, e.IntRequest)
		}
	case obs.EvAllocDecision:
		if e.P > 0 && e.Allotment > e.P {
			c.violate("boundary %d: allocator %q granted %d > machine %d",
				e.Quantum, e.Name, e.Allotment, e.P)
		}
	case obs.EvQuantumEnd:
		if e.Steps < 0 || e.Work < 0 || e.Waste < 0 {
			c.violate("job %d q=%d: negative measurement steps=%d work=%d waste=%d",
				e.Job, e.Quantum, e.Steps, e.Work, e.Waste)
		}
		if math.IsNaN(e.Parallelism) || math.IsInf(e.Parallelism, 0) || e.Parallelism < 0 {
			c.violate("job %d q=%d: non-finite parallelism A=%v",
				e.Job, e.Quantum, e.Parallelism)
		}
		if e.Allotment > c.capNow {
			c.violate("job %d q=%d: executed on %d processors above capacity %d",
				e.Job, e.Quantum, e.Allotment, c.capNow)
		}
		a := c.job(e.Job)
		a.executed += e.Work
		a.attempt += e.Work
	case obs.EvDeprived:
		a := c.job(e.Job)
		if a.deprived {
			c.violate("job %d q=%d: deprived transition while already deprived",
				e.Job, e.Quantum)
		}
		a.deprived = true
	case obs.EvSatisfied:
		a := c.job(e.Job)
		if !a.deprived {
			c.violate("job %d q=%d: satisfied transition while not deprived",
				e.Job, e.Quantum)
		}
		a.deprived = false
	case obs.EvJobRestarted:
		a := c.job(e.Job)
		if e.Work != a.attempt {
			c.violate("job %d q=%d: restart lost %d but attempt executed %d",
				e.Job, e.Quantum, e.Work, a.attempt)
		}
		a.lost += e.Work
		a.attempt = 0
	case obs.EvJobCompleted:
		a := c.job(e.Job)
		if a.admitted && a.executed != a.work+a.lost {
			c.violate("job %d: executed %d ≠ T1 %d + lost %d (work not conserved)",
				e.Job, a.executed, a.work, a.lost)
		}
	}
}

// Resume primes job i's accounting from a crash-recovery snapshot: the
// job's current deprivation state and the work executed since its last
// (re)start. A service that restores an engine mid-run subscribes a fresh
// Checker that never saw the earlier events — without priming, the first
// EvSatisfied after restore would report a bogus transition and the next
// EvJobRestarted a bogus conservation mismatch. The job's admission record
// is deliberately left unset: pre-snapshot executed work is unknown, so the
// end-of-job conservation check stays disarmed for resumed jobs.
func (c *Checker) Resume(i int, deprived bool, attempt int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.job(i)
	a.deprived = deprived
	a.attempt = attempt
}

// Count returns the number of violations seen (including any beyond the
// retention cap).
func (c *Checker) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Violations returns the recorded violation messages (at most
// maxViolations).
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err returns nil if the run was clean, or one error summarising every
// recorded violation.
func (c *Checker) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.count == 0 {
		return nil
	}
	return fmt.Errorf("fault: %d invariant violation(s):\n  %s",
		c.count, strings.Join(c.violations, "\n  "))
}
