package fault

import (
	"math"
	"strings"
	"testing"
)

func TestUnitDeterministicAndUniform(t *testing.T) {
	if unit(7, saltChannel, 3, 9) != unit(7, saltChannel, 3, 9) {
		t.Fatal("unit is not deterministic")
	}
	if unit(7, saltChannel, 3, 9) == unit(8, saltChannel, 3, 9) {
		t.Fatal("seed does not reach the hash")
	}
	if unit(7, saltChannel, 3, 9) == unit(7, saltRestart, 3, 9) {
		t.Fatal("salt does not separate streams")
	}
	// Crude uniformity: mean of many draws near 1/2, all in [0,1).
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		u := unit(42, saltNoiseMul, uint64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("draw %d outside [0,1): %v", i, u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("draws not uniform: mean %v", mean)
	}
}

func TestPlanScale(t *testing.T) {
	full := Plan{
		Seed:     9,
		Capacity: StepCapacity{P: 100, Loss: 40, From: 10},
		Drop:     0.4, DelayProb: 0.2, Delay: 3, Dup: 0.1,
		NoiseMul: 0.5, NoiseAdd: 2,
		RestartProb: 0.02, RestartAt: []int{5}, MaxRestarts: 2,
	}
	zero := full.Scale(0)
	if !zero.IsZero() {
		t.Fatalf("Scale(0) not zero: %+v", zero)
	}
	if zero.Seed != 9 {
		t.Fatalf("Scale(0) dropped the seed")
	}
	if got := full.Scale(1); got.Drop != 0.4 || got.NoiseAdd != 2 ||
		got.Capacity.(StepCapacity).Loss != 40 {
		t.Fatalf("Scale(1) changed the plan: %+v", got)
	}
	half := full.Scale(0.5)
	if half.Drop != 0.2 || half.DelayProb != 0.1 || half.NoiseMul != 0.25 {
		t.Fatalf("Scale(0.5) wrong: %+v", half)
	}
	if half.Capacity.(StepCapacity).Loss != 20 {
		t.Fatalf("Scale(0.5) capacity loss: %+v", half.Capacity)
	}
	if half.Delay != 3 || half.MaxRestarts != 2 {
		t.Fatalf("Scale must not scale structural fields: %+v", half)
	}
	if over := full.Scale(10); over.Drop != 1 || over.Dup != 1 {
		t.Fatalf("Scale(10) must clamp probabilities: %+v", over)
	}
}

func TestCapacityModels(t *testing.T) {
	step := StepCapacity{P: 100, Loss: 30, From: 10, Until: 20}
	for q, want := range map[int]int{1: 100, 9: 100, 10: 70, 19: 70, 20: 100, 500: 100} {
		if got := step.At(q); got != want {
			t.Fatalf("step At(%d) = %d, want %d", q, got, want)
		}
	}
	forever := StepCapacity{P: 100, Loss: 30, From: 10}
	if forever.At(10_000) != 70 {
		t.Fatal("step without Until must never recover")
	}

	sine := SineCapacity{P: 100, Amp: 40, Period: 16}
	lo, hi := 101, -1
	for q := 1; q <= 64; q++ {
		v := sine.At(q)
		if v < 60 || v > 100 {
			t.Fatalf("sine At(%d) = %d outside [60,100]", q, v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo != 60 || hi != 100 {
		t.Fatalf("sine did not reach its envelope: [%d,%d]", lo, hi)
	}

	churn := ChurnCapacity{P: 100, MaxLoss: 50, Window: 8, Seed: 3}
	if churn.At(1) != churn.At(7) {
		t.Fatal("churn must be constant within a window")
	}
	distinct := map[int]bool{}
	for q := 1; q <= 400; q += 8 {
		v := churn.At(q)
		if v < 50 || v > 100 {
			t.Fatalf("churn At(%d) = %d outside [50,100]", q, v)
		}
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatalf("churn never varies: %v", distinct)
	}
	if churn.At(33) != churn.At(33) {
		t.Fatal("churn not deterministic")
	}

	// Scaled(0) must disable every model.
	for _, s := range []Scalable{step, sine, churn} {
		if s.Scaled(0) != nil {
			t.Fatalf("%s Scaled(0) != nil", s.Name())
		}
		if s.Scaled(1) == nil {
			t.Fatalf("%s Scaled(1) == nil", s.Name())
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := "drop=0.2,delay=3:0.1,dup=0.05,noise=0.4,anoise=1.5," +
		"restart=0.01,restartat=5+12,maxrestarts=2,cap=step:0.5@30-60,seed=77"
	plan, err := ParseSpec(spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Drop != 0.2 || plan.Delay != 3 || plan.DelayProb != 0.1 ||
		plan.Dup != 0.05 || plan.NoiseMul != 0.4 || plan.NoiseAdd != 1.5 ||
		plan.RestartProb != 0.01 || plan.MaxRestarts != 2 || plan.Seed != 77 {
		t.Fatalf("parsed plan wrong: %+v", plan)
	}
	if len(plan.RestartAt) != 2 || plan.RestartAt[0] != 5 || plan.RestartAt[1] != 12 {
		t.Fatalf("restartat wrong: %v", plan.RestartAt)
	}
	sc, ok := plan.Capacity.(StepCapacity)
	if !ok || sc.P != 128 || sc.Loss != 64 || sc.From != 30 || sc.Until != 60 {
		t.Fatalf("capacity wrong: %+v", plan.Capacity)
	}
	// String renders the same clauses (order is canonical, cap via Name).
	s := plan.String()
	for _, want := range []string{"drop=0.2", "delay=3:0.1", "dup=0.05",
		"noise=0.4", "anoise=1.5", "restart=0.01", "restartat=5+12",
		"maxrestarts=2", "cap=step(128-64@30-60)", "seed=77"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() %q missing %q", s, want)
		}
	}
}

func TestParseSpecVariants(t *testing.T) {
	for _, spec := range []string{"", "none", "  "} {
		plan, err := ParseSpec(spec, 64)
		if err != nil || !plan.IsZero() {
			t.Fatalf("spec %q: plan %+v err %v", spec, plan, err)
		}
	}
	if plan, err := ParseSpec("cap=sine:0.25:16", 64); err != nil {
		t.Fatal(err)
	} else if sc := plan.Capacity.(SineCapacity); sc.Amp != 16 || sc.Period != 16 {
		t.Fatalf("sine parse: %+v", sc)
	}
	if plan, err := ParseSpec("cap=churn:0.5:8,seed=3", 64); err != nil {
		t.Fatal(err)
	} else if cc := plan.Capacity.(ChurnCapacity); cc.MaxLoss != 32 || cc.Window != 8 {
		t.Fatalf("churn parse: %+v", cc)
	}
	if s := (Plan{}).String(); s != "none" {
		t.Fatalf("zero plan String: %q", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"drop",               // not key=value
		"bogus=1",            // unknown clause
		"drop=1.5",           // probability out of range
		"drop=-0.1",          // negative probability
		"delay=0:0.5",        // zero delay
		"delay=2",            // missing probability
		"noise=-1",           // negative amplitude
		"restartat=0",        // quantum < 1
		"restartat=3+x",      // junk quantum
		"maxrestarts=-1",     // negative cap
		"cap=step:0.5",       // missing @Q
		"cap=step:2@5",       // fraction > 1
		"cap=step:0.5@0",     // quantum < 1
		"cap=step:0.5@10-5",  // recovery before drop
		"cap=sine:0.5:1",     // period < 2
		"cap=churn:0.5:0",    // window < 1
		"cap=warp:0.5:3",     // unknown model
		"seed=abc",           // junk seed
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 64); err == nil {
			t.Fatalf("spec %q: expected error", spec)
		}
	}
	if _, err := ParseSpec("drop=0.1", 0); err == nil {
		t.Fatal("machine size 0: expected error")
	}
}

func TestRestartHook(t *testing.T) {
	if (Plan{}).RestartHook(0) != nil {
		t.Fatal("zero plan must have no restart hook")
	}
	hook := Plan{RestartAt: []int{4, 9}}.RestartHook(0)
	for q := 1; q <= 12; q++ {
		want := q == 4 || q == 9
		if hook(q) != want {
			t.Fatalf("deterministic hook at q=%d: %v", q, hook(q))
		}
	}
	// Probabilistic schedule: deterministic per (seed, job, quantum), job-
	// and seed-dependent, and roughly at the configured rate.
	p := Plan{Seed: 5, RestartProb: 0.25}
	h0, h0b, h1 := p.RestartHook(0), p.RestartHook(0), p.RestartHook(1)
	fires0, fires1, differ := 0, 0, false
	for q := 1; q <= 2000; q++ {
		if h0(q) != h0b(q) {
			t.Fatalf("hook not deterministic at q=%d", q)
		}
		if h0(q) != h1(q) {
			differ = true
		}
		if h0(q) {
			fires0++
		}
		if h1(q) {
			fires1++
		}
	}
	if !differ {
		t.Fatal("jobs share one failure schedule")
	}
	for _, fires := range []int{fires0, fires1} {
		if fires < 400 || fires > 600 {
			t.Fatalf("fire rate %d/2000 far from 0.25", fires)
		}
	}
}
