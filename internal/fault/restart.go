package fault

// RestartHook builds the per-quantum failure predicate of the plan for the
// given job — the At function of a sim.RestartPlan. It fires at every
// quantum listed in RestartAt and, independently per quantum, with
// probability RestartProb from the stateless (Seed, job, quantum) hash. It
// returns nil when the plan injects no failures, so callers can leave
// sim.SingleConfig.Restart / sim.JobSpec.Restart nil on the zero path.
//
// The quantum index the engines pass is counted across attempts, so a
// deterministic RestartAt entry fires once, not once per attempt.
func (p Plan) RestartHook(jobID int) func(q int) bool {
	if !p.restartActive() {
		return nil
	}
	var at map[int]bool
	if len(p.RestartAt) > 0 {
		at = make(map[int]bool, len(p.RestartAt))
		for _, q := range p.RestartAt {
			at[q] = true
		}
	}
	seed, job, prob := p.Seed, uint64(jobID), p.RestartProb
	return func(q int) bool {
		if at[q] {
			return true
		}
		return prob > 0 && unit(seed, saltRestart, job, uint64(q)) < prob
	}
}
