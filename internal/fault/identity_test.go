package fault

import (
	"reflect"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/workload"
)

// TestZeroIntensityBitIdentical is the no-op regression guard from the
// acceptance criteria: a fault plan scaled to intensity zero, wired through
// the full injection path (capacity model, lossy channel, restart hook),
// must reproduce the unperturbed simulator bit for bit — every request,
// allotment and measurement of every quantum.
func TestZeroIntensityBitIdentical(t *testing.T) {
	full := Plan{
		Seed:     99,
		Capacity: SineCapacity{P: 64, Amp: 32, Period: 16},
		Drop:     0.4, Delay: 2, DelayProb: 0.3, Dup: 0.2,
		NoiseMul: 0.5, NoiseAdd: 1, RestartProb: 0.05, MaxRestarts: 3,
	}
	plan := full.Scale(0)

	profile := workload.ConstantJob(12, 30, 50)

	t.Run("single", func(t *testing.T) {
		runOne := func(p Plan, faulted bool) sim.SingleResult {
			cfg := sim.SingleConfig{L: 50, KeepTrace: true}
			pol := feedback.NewAControl(0.2)
			if faulted {
				cfg.Capacity = p.Capacity
				if at := p.RestartHook(0); at != nil {
					cfg.Restart = &sim.RestartPlan{At: at,
						New: func() job.Instance { return job.NewRun(profile) },
						Max: p.MaxRestarts}
				}
				res, err := sim.RunSingle(job.NewRun(profile), p.Policy(pol, 0, nil),
					sched.BGreedy(), alloc.NewUnconstrained(64), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			res, err := sim.RunSingle(job.NewRun(profile), pol, sched.BGreedy(),
				alloc.NewUnconstrained(64), cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		faulted := runOne(plan, true)
		plain := runOne(Plan{}, false)
		if !reflect.DeepEqual(faulted, plain) {
			t.Fatalf("zero-intensity run differs from unperturbed run:\nfaulted: %+v\nplain:   %+v",
				faulted, plain)
		}
	})

	t.Run("multi", func(t *testing.T) {
		runSet := func(p Plan, faulted bool) sim.MultiResult {
			specs := make([]sim.JobSpec, 3)
			for i := range specs {
				prof := workload.ConstantJob(6+4*i, 20, 50)
				pol := feedback.NewAControl(0.2)
				specs[i] = sim.JobSpec{Inst: job.NewRun(prof), Sched: sched.BGreedy(), Policy: pol}
				if faulted {
					specs[i].Policy = p.Policy(pol, i, nil)
					if at := p.RestartHook(i); at != nil {
						pr := prof
						specs[i].Restart = &sim.RestartPlan{At: at,
							New: func() job.Instance { return job.NewRun(pr) },
							Max: p.MaxRestarts}
					}
				}
			}
			cfg := sim.MultiConfig{P: 32, L: 50, Allocator: alloc.DynamicEquiPartition{}, KeepTrace: true}
			if faulted {
				cfg.Capacity = p.Capacity
			}
			res, err := sim.RunMulti(specs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		faulted := runSet(plan, true)
		plain := runSet(Plan{}, false)
		if !reflect.DeepEqual(faulted, plain) {
			t.Fatalf("zero-intensity multi run differs from unperturbed run")
		}
	})
}
