package fault

import (
	"math"

	"abg/internal/feedback"
	"abg/internal/obs"
	"abg/internal/sched"
)

// Policy wraps a feedback policy with the plan's lossy-control-channel and
// measurement-noise semantics for the given job. The decorator sits between
// the scheduler's measurement and the allocator's view of the request:
//
//   - measurement noise (NoiseMul/NoiseAdd) perturbs A(q) before the inner
//     policy sees it, by rewriting the quantum's critical-path term so that
//     Work/CPL equals the noisy reading;
//   - channel faults (Drop/Delay/Dup) act on the *output*: the inner policy
//     still updates its state every quantum, but the request message for
//     quantum q+1 may be lost (the allocator reuses the last-seen request),
//     delayed Delay quanta, or duplicated with the copy arriving one quantum
//     late and overwriting whatever arrived in between — stale-state
//     semantics throughout.
//
// Every decision is a stateless hash of (Seed, job, quantum), so wrapped
// runs replay deterministically. When the plan has no channel component the
// inner policy is returned unchanged, keeping the zero-fault path
// bit-identical to the unwrapped simulator.
func (p Plan) Policy(inner feedback.Policy, jobID int, bus *obs.Bus) feedback.Policy {
	if !p.channelActive() {
		return inner
	}
	return &faultPolicy{plan: p, job: jobID, inner: inner, bus: bus}
}

// message is an in-flight request with its arrival quantum.
type message struct {
	due int
	val float64
}

// faultPolicy implements feedback.Policy by filtering the inner policy's
// requests through the plan's channel model.
type faultPolicy struct {
	plan  Plan
	job   int
	inner feedback.Policy
	bus   *obs.Bus

	q         int       // quanta seen since the last (re)start
	delivered float64   // last request the allocator received
	pending   []message // in-flight messages, in send order
}

// InitialRequest implements Policy. The admission handshake is assumed
// reliable: the initial request always arrives.
func (f *faultPolicy) InitialRequest() float64 {
	f.q = 0
	f.pending = f.pending[:0]
	f.delivered = f.inner.InitialRequest()
	return f.delivered
}

// NextRequest implements Policy.
func (f *faultPolicy) NextRequest(prev sched.QuantumStats) float64 {
	f.q++
	q := f.q
	fresh := f.inner.NextRequest(f.perturb(prev, q))

	// Route this quantum's message through the channel.
	u := unit(f.plan.Seed, saltChannel, uint64(f.job), uint64(q))
	pDrop, pDelay, pDup := f.plan.Drop, f.plan.DelayProb, f.plan.Dup
	if f.plan.Delay <= 0 {
		pDelay = 0
	}
	switch {
	case u < pDrop:
		f.emit("drop", q, fresh)
	case u < pDrop+pDelay:
		f.pending = append(f.pending, message{due: q + f.plan.Delay, val: fresh})
		f.emit("delay", q, fresh)
	case u < pDrop+pDelay+pDup:
		f.pending = append(f.pending,
			message{due: q, val: fresh},
			message{due: q + 1, val: fresh})
		f.emit("dup", q, fresh)
	default:
		f.pending = append(f.pending, message{due: q, val: fresh})
	}

	// Deliver: among the messages due by now, the allocator sees the one
	// that arrived last (latest due; ties broken by send order, so a fresh
	// message beats a delayed one arriving at the same boundary).
	latest := -1
	for i, m := range f.pending {
		if m.due <= q && (latest < 0 || m.due >= f.pending[latest].due) {
			latest = i
		}
	}
	if latest >= 0 {
		f.delivered = f.pending[latest].val
	}
	keep := f.pending[:0]
	for _, m := range f.pending {
		if m.due > q {
			keep = append(keep, m)
		}
	}
	f.pending = keep
	return f.delivered
}

// perturb applies the plan's measurement noise to the quantum's stats. The
// noisy parallelism is expressed through the critical-path term (the inner
// policies derive A(q) = Work/CPL), so a reading pushed to zero or below
// surfaces as the non-finite/negative sample the policy guards must absorb.
func (f *faultPolicy) perturb(st sched.QuantumStats, q int) sched.QuantumStats {
	if f.plan.NoiseMul == 0 && f.plan.NoiseAdd == 0 {
		return st
	}
	a := st.AvgParallelism()
	if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return st
	}
	noisy := a
	if f.plan.NoiseMul != 0 {
		u := 2*unit(f.plan.Seed, saltNoiseMul, uint64(f.job), uint64(q)) - 1
		noisy *= 1 + f.plan.NoiseMul*u
	}
	if f.plan.NoiseAdd != 0 {
		v := 2*unit(f.plan.Seed, saltNoiseAdd, uint64(f.job), uint64(q)) - 1
		noisy += f.plan.NoiseAdd * v
	}
	if noisy == a {
		return st
	}
	st.CPL = float64(st.Work) / noisy
	f.emit("noise", q, noisy)
	return st
}

// emit reports an injected fault on the bus.
func (f *faultPolicy) emit(kind string, q int, val float64) {
	if !f.bus.Active() {
		return
	}
	f.bus.Emit(obs.Event{Kind: obs.EvFault, Quantum: q, Job: f.job,
		Name: kind, Request: val})
}

// Name implements Policy.
func (f *faultPolicy) Name() string { return f.inner.Name() + "+lossy" }

// Reset implements Policy, clearing the channel alongside the inner state
// (a restarted job re-registers with the allocator; stale messages from the
// aborted attempt are not delivered to the new one).
func (f *faultPolicy) Reset() {
	f.q = 0
	f.pending = f.pending[:0]
	f.delivered = 0
	f.inner.Reset()
}

// Observe implements feedback.Observable, forwarding to the inner policy.
func (f *faultPolicy) Observe(bus *obs.Bus) {
	f.bus = bus
	feedback.AttachObs(f.inner, bus)
}
