package fault

import (
	"math"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/workload"
)

// reconvergeQuanta is Theorem 3's bound: the number of quanta the integral
// controller needs to shrink an error e0 below eps at rate r,
// N = ⌈log(e0/eps) / log(1/r)⌉.
func reconvergeQuanta(e0, eps, r float64) int {
	return int(math.Ceil(math.Log(e0/eps) / math.Log(1/r)))
}

// TestAControlGeometricReconvergence drives the controller in isolation
// through a capacity-step disturbance: converge on parallelism A1, step the
// measurement to A2, and check the error decays geometrically at exactly
// rate r — so re-convergence takes the O(log_{1/r}(e0/eps)) quanta of
// Theorem 3, for responsiveness settings across the whole range.
func TestAControlGeometricReconvergence(t *testing.T) {
	const a1, a2 = 8.0, 40.0
	stats := func(a float64) sched.QuantumStats {
		return sched.QuantumStats{Length: 100, Steps: 100, Allotment: 64,
			Work: int64(a * 100), CPL: 100}
	}
	for _, r := range []float64{0.05, 0.2, 0.5, 0.8} {
		pol := feedback.NewAControl(r)
		d := pol.InitialRequest()
		for q := 0; q < 400; q++ {
			d = pol.NextRequest(stats(a1))
		}
		if math.Abs(d-a1) > 1e-6 {
			t.Fatalf("r=%v: did not converge on A1: d=%v", r, d)
		}

		// Step disturbance: the measured parallelism jumps to A2.
		e0 := math.Abs(d - a2)
		e := e0
		const eps = 0.5
		n := reconvergeQuanta(e0, eps, r)
		for k := 1; k <= n+5; k++ {
			d = pol.NextRequest(stats(a2))
			next := math.Abs(d - a2)
			// d(q+1) − A = r·(d(q) − A): per-quantum decay is exactly r,
			// up to float rounding.
			if e > 1e-6 {
				if ratio := next / e; math.Abs(ratio-r) > 1e-9 {
					t.Fatalf("r=%v quantum %d: error ratio %v, want %v", r, k, ratio, r)
				}
			}
			e = next
			if k == n && e > eps {
				t.Fatalf("r=%v: error %v > eps %v after Theorem-3 bound N=%d", r, e, eps, n)
			}
		}
	}
}

// TestRestartReconvergence checks the full pipeline: a mid-DAG failure
// resets the feedback loop, and because the engine restarts from a fresh
// instance with a reset policy, the post-restart request trace must equal
// the run's opening trace exactly — and reach the pre-restart steady request
// within Theorem 3's quantum bound.
func TestRestartReconvergence(t *testing.T) {
	const width, restartQ = 20, 40
	for _, r := range []float64{0.2, 0.8} {
		profile := workload.ConstantJob(width, 120, 50)
		plan := Plan{RestartAt: []int{restartQ}, MaxRestarts: 1}
		cfg := sim.SingleConfig{L: 50, KeepTrace: true}
		cfg.Restart = &sim.RestartPlan{
			At:  plan.RestartHook(0),
			New: func() job.Instance { return job.NewRun(profile) },
			Max: plan.MaxRestarts,
		}
		res, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(r),
			sched.BGreedy(), alloc.NewUnconstrained(64), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Restarts != 1 || res.LostWork == 0 {
			t.Fatalf("r=%v: restart not injected: %d restarts, lost %d", r, res.Restarts, res.LostWork)
		}
		// Work conservation end to end: executed = T1 + lost.
		var executed int64
		for _, st := range res.Quanta {
			executed += st.Work
		}
		if executed != res.Work+res.LostWork {
			t.Fatalf("r=%v: executed %d != T1 %d + lost %d", r, executed, res.Work, res.LostWork)
		}

		req := res.Requests()
		// The restart resets the controller: quantum restartQ+1 repeats the
		// admission request, and the whole re-convergence transient replays
		// the opening of the run exactly (same job, stateless allocator).
		for k := 0; k < 30; k++ {
			if req[restartQ+k] != req[k] {
				t.Fatalf("r=%v: post-restart quantum %d request %v != opening request %v",
					r, restartQ+k+1, req[restartQ+k], req[k])
			}
		}
		// Theorem 3 timing against the pre-restart steady request.
		steady := req[restartQ-1]
		e0 := math.Abs(steady - req[restartQ])
		const eps = 1.0
		if e0 <= eps {
			t.Fatalf("r=%v: restart caused no disturbance: e0=%v", r, e0)
		}
		n := reconvergeQuanta(e0, eps, r)
		if got := math.Abs(req[restartQ+n] - steady); got > eps {
			t.Fatalf("r=%v: %v from steady after N=%d quanta, want <= %v", r, got, n, eps)
		}
	}
}
