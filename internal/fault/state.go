package fault

import (
	"fmt"

	"abg/internal/feedback"
	"abg/internal/persist"
)

// stateTagLossy versions the lossy-channel decorator's snapshot layout.
const stateTagLossy byte = 10

// MarshalState implements feedback.StateCodec for the lossy-channel
// decorator: the per-attempt quantum counter (which keys the stateless
// fault hashes), the last request the allocator received, the in-flight
// delayed/duplicated messages, and the wrapped policy's own state. The
// plan itself is configuration, re-armed from the journaled spec.
func (f *faultPolicy) MarshalState() ([]byte, error) {
	inner, err := feedback.MarshalState(f.inner)
	if err != nil {
		return nil, fmt.Errorf("fault: lossy channel inner policy: %w", err)
	}
	e := persist.Enc{}
	e.Int(f.q)
	e.Float(f.delivered)
	e.Int(len(f.pending))
	for _, m := range f.pending {
		e.Int(m.due)
		e.Float(m.val)
	}
	e.BytesField(inner)
	return append([]byte{stateTagLossy}, e.Bytes()...), nil
}

// UnmarshalState implements feedback.StateCodec.
func (f *faultPolicy) UnmarshalState(data []byte) error {
	if len(data) < 1 || data[0] != stateTagLossy {
		return fmt.Errorf("fault: lossy channel: bad state tag (%d bytes)", len(data))
	}
	d := persist.NewDec(data[1:])
	q := d.Int()
	delivered := d.Float()
	n := d.Int()
	if d.Err() == nil && (n < 0 || n > d.Len()) {
		return fmt.Errorf("fault: lossy channel: implausible pending count %d", n)
	}
	pending := make([]message, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		pending = append(pending, message{due: d.Int(), val: d.Float()})
	}
	inner := d.BytesField()
	if err := d.Err(); err != nil {
		return fmt.Errorf("fault: lossy channel state: %w", err)
	}
	if d.Len() != 0 {
		return fmt.Errorf("fault: lossy channel state: %d trailing bytes", d.Len())
	}
	if err := feedback.UnmarshalState(f.inner, inner); err != nil {
		return err
	}
	f.q = q
	f.delivered = delivered
	f.pending = pending
	return nil
}

var _ feedback.StateCodec = (*faultPolicy)(nil)
