package fault

import (
	"math"
	"testing"

	"abg/internal/feedback"
	"abg/internal/sched"
	"abg/internal/xrand"
)

// TestLossyChannelStateRoundTrip pins the crash-recovery contract for the
// lossy-channel decorator: marshal mid-run (with messages in flight),
// restore onto a freshly built decorator over a fresh inner policy, and the
// two must deliver bit-identical requests thereafter — drops, delays, dups
// and noise included.
func TestLossyChannelStateRoundTrip(t *testing.T) {
	plan := Plan{
		Seed: 99, Drop: 0.2, DelayProb: 0.3, Delay: 3, Dup: 0.2,
		NoiseMul: 0.2, NoiseAdd: 0.1,
	}
	rng := xrand.New(7)
	stats := make([]sched.QuantumStats, 160)
	for i := range stats {
		a := rng.IntRange(1, 32)
		stats[i] = sched.QuantumStats{
			Index: i + 1, Length: 50, Steps: 50,
			Allotment: a, Work: int64(rng.IntRange(1, a*50)),
			CPL: rng.FloatRange(0.5, 50), Request: rng.FloatRange(1, 32),
		}
	}

	for _, cut := range []int{0, 1, 13, 80, 159} {
		orig := plan.Policy(feedback.NewAControl(0.2), 3, nil)
		_ = orig.InitialRequest()
		for _, st := range stats[:cut] {
			_ = orig.NextRequest(st)
		}
		blob, err := feedback.MarshalState(orig)
		if err != nil {
			t.Fatalf("cut %d: marshal: %v", cut, err)
		}

		restored := plan.Policy(feedback.NewAControl(0.2), 3, nil)
		_ = restored.InitialRequest()
		if err := feedback.UnmarshalState(restored, blob); err != nil {
			t.Fatalf("cut %d: unmarshal: %v", cut, err)
		}
		for i, st := range stats[cut:] {
			want := orig.NextRequest(st)
			got := restored.NextRequest(st)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("cut %d: request %d diverges: %v != %v", cut, i, got, want)
			}
		}
	}
}

// TestLossyChannelStateRejectsGarbage pins clean failures on corrupt state.
func TestLossyChannelStateRejectsGarbage(t *testing.T) {
	plan := Plan{Seed: 1, Drop: 0.5}
	pol := plan.Policy(feedback.NewAControl(0.2), 0, nil)
	if err := feedback.UnmarshalState(pol, nil); err == nil {
		t.Error("accepted empty state")
	}
	if err := feedback.UnmarshalState(pol, []byte{stateTagLossy, 0xff}); err == nil {
		t.Error("accepted truncated state")
	}
	blob, err := feedback.MarshalState(pol)
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0x7f
	if err := feedback.UnmarshalState(pol, blob); err == nil {
		t.Error("accepted wrong tag")
	}
}
