package fault

import (
	"math"
	"strings"
	"testing"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/workload"
)

// expectViolation feeds the events to a fresh checker and asserts exactly
// the substrings appear among its violations.
func expectViolation(t *testing.T, p int, events []obs.Event, wantSubstr string) {
	t.Helper()
	c := NewChecker(p, false)
	for _, e := range events {
		c.OnEvent(e)
	}
	if c.Count() == 0 {
		t.Fatalf("no violation recorded, want one containing %q", wantSubstr)
	}
	joined := strings.Join(c.Violations(), "\n")
	if !strings.Contains(joined, wantSubstr) {
		t.Fatalf("violations %q do not mention %q", joined, wantSubstr)
	}
	if c.Err() == nil {
		t.Fatal("Err() nil despite violations")
	}
}

func TestCheckerCatchesSyntheticViolations(t *testing.T) {
	cases := []struct {
		name   string
		events []obs.Event
		want   string
	}{
		{"negative request",
			[]obs.Event{{Kind: obs.EvRequest, Job: 0, Quantum: 1, Request: -2, IntRequest: 1}},
			"negative request"},
		{"NaN request",
			[]obs.Event{{Kind: obs.EvRequest, Job: 0, Quantum: 1, Request: math.NaN(), IntRequest: 1}},
			"non-finite"},
		{"negative integer request",
			[]obs.Event{{Kind: obs.EvRequest, Job: 0, Quantum: 1, Request: 1, IntRequest: -1}},
			"negative integer request"},
		{"allotment above machine",
			[]obs.Event{{Kind: obs.EvAllotment, Job: 0, Quantum: 1, IntRequest: 99, Allotment: 17, Deprived: true}},
			"exceeds capacity"},
		{"allotment above churned capacity",
			[]obs.Event{
				{Kind: obs.EvCapacity, Quantum: 3, P: 8},
				{Kind: obs.EvAllotment, Job: 0, Quantum: 3, IntRequest: 12, Allotment: 12},
			},
			"exceeds capacity P(t)=8"},
		{"negative allotment",
			[]obs.Event{{Kind: obs.EvAllotment, Job: 0, Quantum: 1, IntRequest: 2, Allotment: -1, Deprived: true}},
			"negative allotment"},
		{"deprived flag mismatch",
			[]obs.Event{{Kind: obs.EvAllotment, Job: 0, Quantum: 1, IntRequest: 3, Allotment: 5, Deprived: true}},
			"deprived flag"},
		{"capacity outside machine",
			[]obs.Event{{Kind: obs.EvCapacity, Quantum: 1, P: 17}},
			"outside [0,16]"},
		{"negative quantum work",
			[]obs.Event{{Kind: obs.EvQuantumEnd, Job: 0, Quantum: 1, Steps: 10, Work: -5}},
			"negative measurement"},
		{"non-finite parallelism",
			[]obs.Event{{Kind: obs.EvQuantumEnd, Job: 0, Quantum: 1, Steps: 10, Work: 5, Parallelism: math.Inf(1)}},
			"non-finite parallelism"},
		{"satisfied before deprived",
			[]obs.Event{{Kind: obs.EvSatisfied, Job: 0, Quantum: 2}},
			"not deprived"},
		{"double deprivation",
			[]obs.Event{
				{Kind: obs.EvDeprived, Job: 0, Quantum: 1},
				{Kind: obs.EvDeprived, Job: 0, Quantum: 2},
			},
			"already deprived"},
		{"restart lost-work mismatch",
			[]obs.Event{
				{Kind: obs.EvJobAdmitted, Job: 0, Work: 100},
				{Kind: obs.EvQuantumEnd, Job: 0, Quantum: 1, Steps: 10, Work: 60, Parallelism: 6},
				{Kind: obs.EvJobRestarted, Job: 0, Quantum: 1, Work: 50},
			},
			"restart lost 50 but attempt executed 60"},
		{"work not conserved at completion",
			[]obs.Event{
				{Kind: obs.EvJobAdmitted, Job: 0, Work: 100},
				{Kind: obs.EvQuantumEnd, Job: 0, Quantum: 1, Steps: 10, Work: 60, Parallelism: 6},
				{Kind: obs.EvJobCompleted, Job: 0, Work: 100},
			},
			"work not conserved"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectViolation(t, 16, tc.events, tc.want)
		})
	}
}

func TestCheckerFailFastPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("failFast checker did not panic")
		} else if !strings.Contains(r.(string), "invariant violated") {
			t.Fatalf("panic message: %v", r)
		}
	}()
	c := NewChecker(16, true)
	c.OnEvent(obs.Event{Kind: obs.EvRequest, Request: -1})
}

// maliciousPolicy emits a negative request once warmed up — the seeded
// violation the checker must catch through a real engine run.
type maliciousPolicy struct{ q int }

func (m *maliciousPolicy) InitialRequest() float64 { return 1 }
func (m *maliciousPolicy) NextRequest(sched.QuantumStats) float64 {
	m.q++
	if m.q == 3 {
		return -4
	}
	return 2
}
func (m *maliciousPolicy) Name() string { return "malicious" }
func (m *maliciousPolicy) Reset()       { m.q = 0 }

// maliciousAlloc grants more than the machine has.
type maliciousAlloc struct{ p int }

func (m maliciousAlloc) Grant(q, req int) int { return m.p + 7 }
func (m maliciousAlloc) Name() string         { return "malicious" }

func TestCheckerCatchesSeededViolationsEndToEnd(t *testing.T) {
	profile := workload.ConstantJob(4, 12, 50)

	t.Run("negative request", func(t *testing.T) {
		bus := obs.NewBus()
		c := NewChecker(16, false)
		defer bus.Subscribe(c)()
		_, err := sim.RunSingle(job.NewRun(profile), &maliciousPolicy{}, sched.BGreedy(),
			alloc.NewUnconstrained(16), sim.SingleConfig{L: 50, Obs: bus})
		if err != nil {
			t.Fatal(err)
		}
		if c.Count() == 0 {
			t.Fatal("checker missed the negative request")
		}
		if !strings.Contains(c.Err().Error(), "negative request") {
			t.Fatalf("wrong violation: %v", c.Err())
		}
	})

	t.Run("allotment above capacity", func(t *testing.T) {
		bus := obs.NewBus()
		c := NewChecker(16, false)
		defer bus.Subscribe(c)()
		_, err := sim.RunSingle(job.NewRun(profile), feedback.NewAControl(0.2), sched.BGreedy(),
			maliciousAlloc{p: 16}, sim.SingleConfig{L: 50, Obs: bus})
		if err != nil {
			t.Fatal(err)
		}
		if c.Count() == 0 || !strings.Contains(c.Err().Error(), "exceeds capacity") {
			t.Fatalf("checker missed the oversubscription: %v", c.Err())
		}
	})
}

// TestCheckerCleanRuns audits honest runs — faulted and fault-free, single
// and multi — and expects silence.
func TestCheckerCleanRuns(t *testing.T) {
	plan := Plan{
		Seed:     21,
		Capacity: ChurnCapacity{P: 32, MaxLoss: 16, Window: 4, Seed: 21},
		Drop:     0.3, Delay: 2, DelayProb: 0.2, Dup: 0.1, NoiseMul: 0.4,
		RestartAt: []int{6}, MaxRestarts: 1,
	}
	profile := workload.ConstantJob(6, 20, 50)

	t.Run("single", func(t *testing.T) {
		bus := obs.NewBus()
		c := NewChecker(32, false)
		defer bus.Subscribe(c)()
		cfg := sim.SingleConfig{L: 50, Obs: bus, Capacity: plan.Capacity}
		cfg.Restart = &sim.RestartPlan{
			At:  plan.RestartHook(0),
			New: func() job.Instance { return job.NewRun(profile) },
			Max: plan.MaxRestarts,
		}
		res, err := sim.RunSingle(job.NewRun(profile),
			plan.Policy(feedback.NewAControl(0.2), 0, bus), sched.BGreedy(),
			alloc.NewUnconstrained(32), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Restarts != 1 {
			t.Fatalf("restart did not fire: %+v", res.Restarts)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("clean faulted run flagged: %v", err)
		}
	})

	t.Run("multi", func(t *testing.T) {
		bus := obs.NewBus()
		c := NewChecker(32, false)
		defer bus.Subscribe(c)()
		specs := make([]sim.JobSpec, 3)
		for i := range specs {
			p := workload.ConstantJob(4+2*i, 12, 50)
			specs[i] = sim.JobSpec{
				Inst:   job.NewRun(p),
				Policy: plan.Policy(feedback.NewAControl(0.2), i, bus),
				Sched:  sched.BGreedy(),
				Restart: &sim.RestartPlan{
					At:  plan.RestartHook(i),
					New: func() job.Instance { return job.NewRun(p) },
					Max: plan.MaxRestarts,
				},
			}
		}
		_, err := sim.RunMulti(specs, sim.MultiConfig{
			P: 32, L: 50, Allocator: alloc.DynamicEquiPartition{},
			Obs: bus, Capacity: plan.Capacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("clean multi run flagged: %v", err)
		}
	})
}

// TestCheckerResume pins the crash-recovery priming: a checker subscribed
// after an engine restore never saw the job's earlier transitions, so
// Resume must carry the deprivation state and attempt work forward — and
// without it the same events are (correctly) flagged.
func TestCheckerResume(t *testing.T) {
	resumeEvents := []obs.Event{
		{Kind: obs.EvQuantumEnd, Job: 0, Quantum: 9, Steps: 50, Work: 70, Parallelism: 1.4},
		{Kind: obs.EvSatisfied, Job: 0, Quantum: 9},
		{Kind: obs.EvJobRestarted, Job: 0, Quantum: 10, Work: 570},
	}

	fresh := NewChecker(8, false)
	for _, e := range resumeEvents {
		fresh.OnEvent(e)
	}
	if fresh.Count() != 2 {
		t.Fatalf("unprimed checker recorded %d violations, want 2 (transition + conservation): %v",
			fresh.Count(), fresh.Violations())
	}

	primed := NewChecker(8, false)
	primed.Resume(0, true, 500) // deprived at snapshot, 500 work this attempt
	for _, e := range resumeEvents {
		primed.OnEvent(e)
	}
	if err := primed.Err(); err != nil {
		t.Fatalf("primed checker flagged a clean resume: %v", err)
	}
	// Completion conservation stays disarmed for resumed jobs: the checker
	// cannot know pre-snapshot executed work.
	primed.OnEvent(obs.Event{Kind: obs.EvJobCompleted, Job: 0, Work: 999})
	if err := primed.Err(); err != nil {
		t.Fatalf("resumed job completion flagged: %v", err)
	}
}
