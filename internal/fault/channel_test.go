package fault

import (
	"testing"

	"abg/internal/obs"
	"abg/internal/sched"
)

// seqPolicy is a scripted inner policy: InitialRequest returns 100 and the
// q-th NextRequest returns float64(q), so tests can tell exactly which
// quantum's message the channel delivered.
type seqPolicy struct {
	q     int
	seen  []sched.QuantumStats
	reset int
}

func (s *seqPolicy) InitialRequest() float64 { s.q = 0; return 100 }
func (s *seqPolicy) NextRequest(st sched.QuantumStats) float64 {
	s.q++
	s.seen = append(s.seen, st)
	return float64(s.q)
}
func (s *seqPolicy) Name() string { return "seq" }
func (s *seqPolicy) Reset()       { s.q = 0; s.reset++ }

// cleanStats is a full quantum with parallelism 8.
func cleanStats() sched.QuantumStats {
	return sched.QuantumStats{Length: 100, Steps: 100, Allotment: 8, Work: 800, CPL: 100}
}

func TestPolicyPassthroughWhenChannelInactive(t *testing.T) {
	inner := &seqPolicy{}
	if got := (Plan{Capacity: StepCapacity{P: 4, Loss: 2, From: 1}, RestartProb: 0.5}).
		Policy(inner, 0, nil); got != inner {
		t.Fatal("plan without channel faults must return the inner policy unchanged")
	}
	// DelayProb without Delay is not a channel fault.
	if got := (Plan{DelayProb: 0.5}).Policy(inner, 0, nil); got != inner {
		t.Fatal("delay probability without delay must be inert")
	}
}

func TestChannelDropHoldsLastSeen(t *testing.T) {
	inner := &seqPolicy{}
	pol := Plan{Seed: 1, Drop: 1}.Policy(inner, 0, nil)
	if d := pol.InitialRequest(); d != 100 {
		t.Fatalf("initial request %v", d)
	}
	for q := 1; q <= 10; q++ {
		if d := pol.NextRequest(cleanStats()); d != 100 {
			t.Fatalf("q=%d: delivered %v, want the initial 100 (all messages dropped)", q, d)
		}
	}
	if inner.q != 10 {
		t.Fatalf("inner policy must still see every quantum: %d", inner.q)
	}
}

func TestChannelDelayShiftsDelivery(t *testing.T) {
	const k = 2
	inner := &seqPolicy{}
	pol := Plan{Seed: 1, Delay: k, DelayProb: 1}.Policy(inner, 0, nil)
	pol.InitialRequest()
	for q := 1; q <= 10; q++ {
		want := float64(q - k)
		if q <= k {
			want = 100 // nothing has arrived yet; last-seen is the initial
		}
		if d := pol.NextRequest(cleanStats()); d != want {
			t.Fatalf("q=%d: delivered %v, want %v (messages delayed %d quanta)", q, d, want, k)
		}
	}
}

func TestChannelDupFreshWinsTie(t *testing.T) {
	// With every message duplicated and none lost, the stale copy arriving
	// at q+1 ties with the fresh message and the later send wins: behaviour
	// is identical to a clean channel.
	inner := &seqPolicy{}
	pol := Plan{Seed: 1, Dup: 1}.Policy(inner, 0, nil)
	pol.InitialRequest()
	for q := 1; q <= 10; q++ {
		if d := pol.NextRequest(cleanStats()); d != float64(q) {
			t.Fatalf("q=%d: delivered %v, want %v", q, d, float64(q))
		}
	}
}

func TestChannelDupCoversDrop(t *testing.T) {
	// Drop+dup without normal delivery: every message is either lost or
	// duplicated. After a dup at quantum q, a drop at q+1 still delivers
	// q's stale copy — the duplicate masks the loss one quantum later.
	plan := Plan{Seed: 3, Drop: 0.5, Dup: 0.5}
	inner := &seqPolicy{}
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	pol := plan.Policy(inner, 0, bus)
	pol.InitialRequest()

	const quanta = 200
	delivered := make([]float64, quanta+1)
	for q := 1; q <= quanta; q++ {
		delivered[q] = pol.NextRequest(cleanStats())
	}
	kinds := map[int]string{}
	for _, e := range rec.Events() {
		if e.Kind == obs.EvFault {
			kinds[e.Quantum] = e.Name
		}
	}
	if len(kinds) != quanta {
		t.Fatalf("every quantum must be drop or dup: %d/%d", len(kinds), quanta)
	}
	// Reference semantics: dup delivers fresh now and masks next quantum;
	// drop delivers the previous quantum's value iff it was a dup.
	last := 100.0
	sawMask := false
	for q := 1; q <= quanta; q++ {
		switch kinds[q] {
		case "dup":
			last = float64(q)
		case "drop":
			if kinds[q-1] == "dup" {
				if q >= 2 {
					sawMask = true
				}
				last = float64(q - 1) // stale copy arrives one quantum late
			}
		default:
			t.Fatalf("q=%d: unexpected fault %q", q, kinds[q])
		}
		if delivered[q] != last {
			t.Fatalf("q=%d (%s): delivered %v, reference %v", q, kinds[q], delivered[q], last)
		}
	}
	if !sawMask {
		t.Fatal("200 quanta at 50/50 never produced dup followed by drop")
	}
}

func TestChannelNoisePerturbsMeasurement(t *testing.T) {
	inner := &seqPolicy{}
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()
	pol := Plan{Seed: 5, NoiseMul: 0.5}.Policy(inner, 0, bus)
	pol.InitialRequest()
	for q := 1; q <= 50; q++ {
		pol.NextRequest(cleanStats())
	}
	if len(inner.seen) != 50 {
		t.Fatalf("inner saw %d quanta", len(inner.seen))
	}
	perturbed := 0
	for i, st := range inner.seen {
		a := st.AvgParallelism()
		if a < 8*0.5-1e-9 || a > 8*1.5+1e-9 {
			t.Fatalf("quantum %d: noisy A=%v outside ±50%% of 8", i+1, a)
		}
		if st.CPL != 100 {
			perturbed++
		}
		if st.Work != 800 || st.Allotment != 8 {
			t.Fatalf("noise must only touch the critical-path term: %+v", st)
		}
	}
	if perturbed < 40 {
		t.Fatalf("only %d/50 measurements perturbed", perturbed)
	}
	noiseEvents := 0
	for _, e := range rec.Events() {
		if e.Kind == obs.EvFault && e.Name == "noise" {
			noiseEvents++
		}
	}
	if noiseEvents != perturbed {
		t.Fatalf("%d noise events for %d perturbations", noiseEvents, perturbed)
	}
}

func TestChannelDeterministicReplay(t *testing.T) {
	plan := Plan{Seed: 11, Drop: 0.3, Delay: 2, DelayProb: 0.2, Dup: 0.1, NoiseMul: 0.4}
	run := func() []float64 {
		pol := plan.Policy(&seqPolicy{}, 3, nil)
		out := []float64{pol.InitialRequest()}
		for q := 1; q <= 100; q++ {
			out = append(out, pol.NextRequest(cleanStats()))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
	// A different job index must see a different fault schedule.
	polOther := plan.Policy(&seqPolicy{}, 4, nil)
	polOther.InitialRequest()
	same := true
	for q := 1; q <= 100; q++ {
		if polOther.NextRequest(cleanStats()) != a[q] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("jobs 3 and 4 share one fault schedule")
	}
}

func TestChannelResetClearsInFlight(t *testing.T) {
	inner := &seqPolicy{}
	pol := Plan{Seed: 1, Delay: 3, DelayProb: 1}.Policy(inner, 0, nil)
	pol.InitialRequest()
	pol.NextRequest(cleanStats()) // message 1 in flight, due q=4
	pol.Reset()
	if inner.reset != 1 {
		t.Fatalf("inner not reset: %d", inner.reset)
	}
	pol.InitialRequest()
	for q := 1; q <= 3; q++ {
		if d := pol.NextRequest(cleanStats()); d != 100 {
			t.Fatalf("stale pre-reset message delivered: q=%d d=%v", q, d)
		}
	}
	if d := pol.NextRequest(cleanStats()); d != 1 {
		t.Fatalf("post-reset delayed message wrong: %v", d)
	}
}
