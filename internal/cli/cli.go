// Package cli holds the small lifecycle helpers shared by every command of
// the repository: the toolchain version string behind the uniform -version
// flag, and the signal-aware root context that gives all commands the same
// SIGINT/SIGTERM graceful-shutdown behaviour (first signal cancels the
// context so the command can drain; a second signal kills the process).
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
)

// Version identifies the build of the abg toolchain; every command prints
// it via -version, and abgd reports it from /api/v1/version.
const Version = "0.5.0"

// VersionFlag registers the uniform -version flag on the default FlagSet.
// Call it alongside the command's other flag declarations, then pass the
// parsed value to ExitIfVersion after flag.Parse.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print version and exit")
}

// VersionFlagSet is VersionFlag for commands that parse a private FlagSet
// (testable run() mains that must not touch the process-global flag state).
func VersionFlagSet(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and exit")
}

// ExitIfVersion prints the command's version line and exits 0 when show is
// set; otherwise it is a no-op.
func ExitIfVersion(cmd string, show bool) {
	if !show {
		return
	}
	fmt.Fprintln(os.Stdout, VersionLine(cmd))
	os.Exit(0)
}

// VersionLine renders "<cmd> <version> (<go> <os>/<arch>)".
func VersionLine(cmd string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)",
		cmd, Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM. After the
// first signal the handler is unregistered, so a second signal terminates
// the process with the default disposition — the escape hatch when a drain
// hangs. Call stop to release the signal handler early.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Interrupted reports whether the signal context was cancelled, and if so
// prints a one-line notice so an operator watching the command knows the
// early exit was signal-driven. It returns true when ctx is done.
func Interrupted(ctx context.Context, w io.Writer, cmd string) bool {
	if ctx.Err() == nil {
		return false
	}
	fmt.Fprintf(w, "%s: interrupted, shutting down\n", cmd)
	return true
}
