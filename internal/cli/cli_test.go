package cli

import (
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionLine(t *testing.T) {
	if Version == "" {
		t.Fatal("Version is empty")
	}
	line := VersionLine("abgd")
	if !strings.HasPrefix(line, "abgd "+Version) || !strings.Contains(line, "go") {
		t.Fatalf("VersionLine = %q", line)
	}
}

func TestSignalContextCancelsOnSigint(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled by SIGINT")
	}
	if !Interrupted(ctx, &strings.Builder{}, "test") {
		t.Fatal("Interrupted() = false after cancellation")
	}
}
