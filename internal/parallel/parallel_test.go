package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
	// n = 1 must work (sequential fast path).
	count := 0
	ForEach(1, func(i int) { count++ })
	if count != 1 {
		t.Fatal("n=1 failed")
	}
}

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if err != errB {
		t.Fatalf("expected the lowest-index error, got %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(int) (string, error) { return "", nil })
	if err != nil || len(out) != 0 {
		t.Fatal("empty map broken")
	}
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, func(j int) {
			s := 0
			for k := 0; k < 1000; k++ {
				s += k
			}
			_ = s
		})
	}
}
