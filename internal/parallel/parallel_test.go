package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	var hits [n]int32
	ForEach(n, func(i int) {
		atomic.AddInt32(&hits[i], 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachEdgeCases(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-5, func(int) { called = true })
	if called {
		t.Fatal("fn called for n <= 0")
	}
	// n = 1 must work (sequential fast path).
	count := 0
	ForEach(1, func(i int) { count++ })
	if count != 1 {
		t.Fatal("n=1 failed")
	}
}

func TestMapOrderPreserved(t *testing.T) {
	out, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if err != errB {
		t.Fatalf("expected the lowest-index error, got %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(int) (string, error) { return "", nil })
	if err != nil || len(out) != 0 {
		t.Fatal("empty map broken")
	}
}

func TestForEachNWorkerBound(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var live, peak atomic.Int32
		var hits [256]int32
		ForEachN(len(hits), workers, func(i int) {
			n := live.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
			atomic.AddInt32(&hits[i], 1)
			live.Add(-1)
		})
		if p := peak.Load(); int(p) > workers {
			t.Fatalf("workers=%d: observed %d concurrent calls", workers, p)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachShardWorkerExclusive(t *testing.T) {
	const workers = 4
	var inUse [workers]atomic.Bool
	scratch := make([]int, workers)
	ForEachShard(500, workers, func(w, i int) {
		if !inUse[w].CompareAndSwap(false, true) {
			t.Errorf("worker slot %d used concurrently", w)
		}
		scratch[w]++ // must be safe without further synchronisation
		time.Sleep(10 * time.Microsecond)
		inUse[w].Store(false)
	})
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != 500 {
		t.Fatalf("scratch slots saw %d calls, want 500", total)
	}
}

// TestForEachPanic is the pool-deadlock regression: a panic in one worker
// must cancel the remaining work, join every sibling goroutine, and re-raise
// the original panic value on the caller's goroutine — not hang the pool.
func TestForEachPanic(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		// Far more indices than workers: before the fix the feeder goroutine
		// blocked forever on the work channel once a worker died.
		ForEachN(100000, 4, func(i int) {
			calls.Add(1)
			if i == 10 {
				panic(boom)
			}
		})
		done <- nil
	}()
	select {
	case r := <-done:
		if r != boom {
			t.Fatalf("recovered %v, want the original panic value %v", r, boom)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ForEach deadlocked after a worker panic")
	}
	if c := calls.Load(); int(c) >= 100000 {
		t.Fatalf("panic did not cancel remaining work (%d calls ran)", c)
	}
}

// TestForEachPanicSerialPath: the inline (workers == 1) path propagates
// panics naturally.
func TestForEachPanicSerialPath(t *testing.T) {
	defer func() {
		if r := recover(); r != "single" {
			t.Fatalf("recovered %v, want %q", r, "single")
		}
	}()
	ForEachN(10, 1, func(i int) {
		if i == 3 {
			panic("single")
		}
	})
	t.Fatal("panic did not propagate")
}

func TestMapPanicPropagates(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	var recovered any
	go func() {
		defer wg.Done()
		defer func() { recovered = recover() }()
		_, _ = Map(1000, func(i int) (int, error) {
			if i == 500 {
				panic("map boom")
			}
			return i, nil
		})
	}()
	wg.Wait()
	if recovered != "map boom" {
		t.Fatalf("recovered %v, want %q", recovered, "map boom")
	}
}

func BenchmarkForEach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, func(j int) {
			s := 0
			for k := 0; k < 1000; k++ {
				s += k
			}
			_ = s
		})
	}
}
