// Package parallel provides the deterministic fan-out primitives used by the
// experiment harness and the simulation engine: independent tasks are
// executed concurrently across CPUs while results land in input order, so
// output is identical no matter how many cores ran it.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) using up to GOMAXPROCS
// goroutines. fn must be safe for concurrent invocation on distinct indices;
// each index is processed exactly once. ForEach returns when all calls have
// completed. n ≤ 0 is a no-op.
//
// A panic in fn does not deadlock the pool or strand sibling goroutines:
// remaining work is cancelled, every worker is joined, and the first panic
// value observed is re-raised on the caller's goroutine.
func ForEach(n int, fn func(i int)) {
	ForEachShard(n, 0, func(_, i int) { fn(i) })
}

// ForEachN is ForEach with an explicit worker bound: at most workers
// goroutines run fn (workers ≤ 0 means GOMAXPROCS, and the count is further
// capped at n). workers == 1 runs fn inline on the calling goroutine.
func ForEachN(n, workers int, fn func(i int)) {
	ForEachShard(n, workers, func(_, i int) { fn(i) })
}

// ForEachShard is ForEachN for callers that keep per-worker scratch state:
// fn additionally receives the worker index in [0, workers), and a given
// worker index is only ever live on one goroutine at a time, so fn may use
// scratch[worker] without synchronisation. Index-to-worker assignment is
// dynamic (load-balanced) and NOT deterministic; only code whose result does
// not depend on the assignment — per-index outputs, per-worker scratch —
// belongs in fn.
func ForEachShard(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64 // next index to claim
		panicked atomic.Bool  // cancels remaining work
		panicVal any          // first panic value; published via wg.Wait
		panicMu  sync.Mutex
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if !panicked.Load() {
						panicVal = r
						panicked.Store(true)
					}
					panicMu.Unlock()
				}
			}()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map runs fn over [0, n) concurrently and returns the results in input
// order. Errors are collected per index; the first non-nil error (in index
// order) is returned alongside the full result slice. Panics in fn propagate
// to the caller per ForEach's contract.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
