// Package parallel provides the deterministic fan-out primitive used by the
// experiment harness: independent simulation tasks are executed concurrently
// across CPUs while results land in input order, so a sweep's output is
// identical no matter how many cores ran it.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) using up to GOMAXPROCS
// goroutines. fn must be safe for concurrent invocation on distinct indices;
// each index is processed exactly once. ForEach returns when all calls have
// completed. n ≤ 0 is a no-op.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Map runs fn over [0, n) concurrently and returns the results in input
// order. Errors are collected per index; the first non-nil error (in index
// order) is returned alongside the full result slice.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ForEach(n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
