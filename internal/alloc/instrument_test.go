package alloc

import (
	"testing"

	"abg/internal/obs"
)

func TestObserveSingleNilBusPassthrough(t *testing.T) {
	inner := NewUnconstrained(8)
	if got := ObserveSingle(inner, nil); got != Single(inner) {
		t.Fatal("nil bus should return the inner allocator unwrapped")
	}
	if got := ObserveMulti(DynamicEquiPartition{}, nil); got != Multi(DynamicEquiPartition{}) {
		t.Fatal("nil bus should return the inner multi allocator unwrapped")
	}
}

func TestObservedSingleEmits(t *testing.T) {
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()

	a := ObserveSingle(NewUnconstrained(8), bus)
	if a.Name() != "unconstrained(P=8)" {
		t.Fatalf("wrapped name %q", a.Name())
	}
	if got := a.Grant(3, 5); got != 5 {
		t.Fatalf("grant = %d, want 5", got)
	}
	events := rec.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Kind != obs.EvAllocDecision || e.Quantum != 3 || e.Job != -1 ||
		e.Name != "unconstrained(P=8)" || e.IntRequest != 5 || e.Allotment != 5 {
		t.Fatalf("decision event %+v", e)
	}
}

func TestObservedMultiEmitsSums(t *testing.T) {
	bus := obs.NewBus()
	rec := &obs.Recorder{}
	defer bus.Subscribe(rec)()

	a := ObserveMulti(DynamicEquiPartition{}, bus)
	out := a.Allot([]int{3, 5}, 4)
	if len(out) != 2 || out[0]+out[1] > 4 {
		t.Fatalf("allotments %v exceed machine", out)
	}
	events := rec.Events()
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Kind != obs.EvAllocDecision || e.Name != "dynamic-equi-partitioning" ||
		e.P != 4 || e.IntRequest != 8 || e.Allotment != out[0]+out[1] {
		t.Fatalf("decision event %+v", e)
	}
}
