package alloc

import "fmt"

// CheckedMulti wraps a Multi allocator and panics if a decision violates the
// framework's contracts: conservativeness (a_i ≤ max(request_i, 0)),
// capacity (Σ a_i ≤ P), non-negativity, and shape (one allotment per
// request). Wrap experimental allocators with it during development; the
// engine itself trusts its allocator, so a buggy one would otherwise corrupt
// results silently.
type CheckedMulti struct {
	Inner Multi
}

// Allot implements Multi.
func (c CheckedMulti) Allot(requests []int, p int) []int {
	out := c.Inner.Allot(requests, p)
	if len(out) != len(requests) {
		panic(fmt.Sprintf("alloc: %s returned %d allotments for %d requests",
			c.Inner.Name(), len(out), len(requests)))
	}
	total := 0
	for i, a := range out {
		if a < 0 {
			panic(fmt.Sprintf("alloc: %s gave job %d a negative allotment %d", c.Inner.Name(), i, a))
		}
		req := requests[i]
		if req < 0 {
			req = 0
		}
		if a > req {
			panic(fmt.Sprintf("alloc: %s is not conservative: job %d requested %d, got %d",
				c.Inner.Name(), i, requests[i], a))
		}
		total += a
	}
	if total > p {
		panic(fmt.Sprintf("alloc: %s oversubscribed: %d allotted of %d", c.Inner.Name(), total, p))
	}
	return out
}

// Name implements Multi.
func (c CheckedMulti) Name() string { return c.Inner.Name() + "+checked" }

// CheckedSingle wraps a Single allocator with the analogous checks:
// 0 ≤ grant ≤ max(request, 0) and grant ≤ P is the caller's policy choice,
// so only conservativeness and non-negativity are enforced here.
type CheckedSingle struct {
	Inner Single
}

// Grant implements Single.
func (c CheckedSingle) Grant(q int, request int) int {
	a := c.Inner.Grant(q, request)
	if a < 0 {
		panic(fmt.Sprintf("alloc: %s granted negative allotment %d", c.Inner.Name(), a))
	}
	req := request
	if req < 0 {
		req = 0
	}
	if a > req {
		panic(fmt.Sprintf("alloc: %s is not conservative: requested %d, granted %d",
			c.Inner.Name(), request, a))
	}
	return a
}

// Name implements Single.
func (c CheckedSingle) Name() string { return c.Inner.Name() + "+checked" }
