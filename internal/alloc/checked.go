package alloc

import "fmt"

// CheckedMulti wraps a Multi allocator and panics if a decision violates the
// framework's contracts: conservativeness (a_i ≤ max(request_i, 0)),
// capacity (Σ a_i ≤ P), non-negativity, and shape (one allotment per
// request). Wrap experimental allocators with it during development; the
// engine itself trusts its allocator, so a buggy one would otherwise corrupt
// results silently.
//
// When the engine varies the machine size over time (sim.MultiConfig
// .Capacity), it passes the effective P(t) of each round as p, so the
// capacity check automatically holds against the perturbed machine. Set Cap
// additionally to cross-check p itself against an independent capacity
// model: rounds are counted internally (Allot calls, 1-based) and p must
// not exceed the model's value for the round.
type CheckedMulti struct {
	Inner Multi
	// Cap optionally pins each round's p to a capacity model (nil skips).
	Cap Capacity

	round int
}

// Allot implements Multi.
func (c *CheckedMulti) Allot(requests []int, p int) []int {
	c.round++
	if c.Cap != nil {
		if ceil := CapAt(c.Cap, c.round, p); p > ceil {
			panic(fmt.Sprintf("alloc: round %d ran with p=%d above capacity model %s (%d)",
				c.round, p, c.Cap.Name(), ceil))
		}
	}
	out := c.Inner.Allot(requests, p)
	if len(out) != len(requests) {
		panic(fmt.Sprintf("alloc: %s returned %d allotments for %d requests",
			c.Inner.Name(), len(out), len(requests)))
	}
	total := 0
	for i, a := range out {
		if a < 0 {
			panic(fmt.Sprintf("alloc: %s gave job %d a negative allotment %d", c.Inner.Name(), i, a))
		}
		req := requests[i]
		if req < 0 {
			req = 0
		}
		if a > req {
			panic(fmt.Sprintf("alloc: %s is not conservative: job %d requested %d, got %d",
				c.Inner.Name(), i, requests[i], a))
		}
		total += a
	}
	if total > p {
		panic(fmt.Sprintf("alloc: %s oversubscribed: %d allotted of %d", c.Inner.Name(), total, p))
	}
	return out
}

// Name implements Multi.
func (c *CheckedMulti) Name() string { return c.Inner.Name() + "+checked" }

// CheckedSingle wraps a Single allocator with the analogous checks:
// 0 ≤ grant ≤ max(request, 0) and grant ≤ P is the caller's policy choice,
// so only conservativeness and non-negativity are enforced here — unless
// Cap is set, in which case each grant is additionally checked against the
// capacity model's P(q) (allotments must never exceed the machine that
// actually exists at quantum q).
type CheckedSingle struct {
	Inner Single
	// Cap optionally bounds grants by a capacity model (nil skips).
	Cap Capacity
}

// Grant implements Single.
func (c CheckedSingle) Grant(q int, request int) int {
	a := c.Inner.Grant(q, request)
	if a < 0 {
		panic(fmt.Sprintf("alloc: %s granted negative allotment %d", c.Inner.Name(), a))
	}
	if c.Cap != nil {
		if p := c.Cap.At(q); p >= 0 && a > p {
			panic(fmt.Sprintf("alloc: %s granted %d above capacity %s = %d at q=%d",
				c.Inner.Name(), a, c.Cap.Name(), p, q))
		}
	}
	req := request
	if req < 0 {
		req = 0
	}
	if a > req {
		panic(fmt.Sprintf("alloc: %s is not conservative: requested %d, granted %d",
			c.Inner.Name(), request, a))
	}
	return a
}

// Name implements Single.
func (c CheckedSingle) Name() string { return c.Inner.Name() + "+checked" }
