// Package alloc implements the system-level OS allocators of the two-level
// scheduling framework. All allocators here are *conservative* (they never
// allot a job more processors than it requested, §3). The multiprogrammed
// allocator used in the paper's Figure 6 is dynamic equi-partitioning, which
// is *fair* (equal shares unless a job asks for less) and *non-reserving*
// (no processor idles while some job wants more) — the two properties §5.1
// requires for the makespan and response-time bounds.
package alloc

import "fmt"

// Single decides the allotment for one job running alone: the job requests
// `request` processors for quantum q and receives min(request, available).
// Implementations differ in how many processors are available each quantum,
// which is how trim analysis's adversarial allocator is expressed.
type Single interface {
	// Grant returns the allotment for quantum q (1-based) given the job's
	// integer request.
	Grant(q int, request int) int
	// Name identifies the allocator.
	Name() string
}

// Unconstrained is a Single allocator with all P processors available every
// quantum — the paper's first simulation setup, where every request is
// granted (up to the machine size).
type Unconstrained struct {
	P int
}

// NewUnconstrained returns an Unconstrained allocator over P processors.
func NewUnconstrained(p int) Unconstrained {
	if p < 1 {
		panic("alloc: machine needs at least one processor")
	}
	return Unconstrained{P: p}
}

// Grant implements Single.
func (u Unconstrained) Grant(_ int, request int) int {
	if request < 0 {
		request = 0
	}
	if request > u.P {
		return u.P
	}
	return request
}

// Name implements Single.
func (u Unconstrained) Name() string { return fmt.Sprintf("unconstrained(P=%d)", u.P) }

// AvailabilityTrace is a Single allocator whose per-quantum availability
// p(q) is an arbitrary function — including an adversarial one. The grant is
// min(request, p(q)) with p(q) clamped to [1, P] (the paper's fair,
// non-reserving setting guarantees every job at least one processor while
// |J| ≤ P).
type AvailabilityTrace struct {
	P     int
	Avail func(q int) int
	Label string
}

// NewAvailabilityTrace returns an availability-driven allocator.
func NewAvailabilityTrace(p int, avail func(q int) int, label string) AvailabilityTrace {
	if p < 1 {
		panic("alloc: machine needs at least one processor")
	}
	if avail == nil {
		panic("alloc: nil availability function")
	}
	return AvailabilityTrace{P: p, Avail: avail, Label: label}
}

// Grant implements Single.
func (a AvailabilityTrace) Grant(q int, request int) int {
	avail := a.Avail(q)
	if avail < 1 {
		avail = 1
	}
	if avail > a.P {
		avail = a.P
	}
	if request < 0 {
		request = 0
	}
	if request < avail {
		return request
	}
	return avail
}

// Name implements Single.
func (a AvailabilityTrace) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return fmt.Sprintf("availability(P=%d)", a.P)
}

// Multi decides allotments for a set of concurrently active jobs.
type Multi interface {
	// Allot maps integer requests to allotments with Σ a_i ≤ P and
	// a_i ≤ max(requests[i], 0) for every i.
	Allot(requests []int, p int) []int
	// Name identifies the allocator.
	Name() string
}

// DynamicEquiPartition implements the fair, non-reserving, conservative
// dynamic equi-partitioning allocator of McCann, Vaswani and Zahorjan —
// the allocator the paper couples both schedulers with in §7.
//
// Algorithm: repeatedly compute the equal share of the remaining processors
// over the still-unsatisfied jobs; any job requesting no more than the share
// receives its full request and leaves the pool. When no such job remains,
// the remaining processors are split equally among the remaining jobs, with
// the indivisible remainder handed out one processor each in job order
// (deterministic; the order rotates with the quantum index upstream if
// desired).
type DynamicEquiPartition struct{}

// Allot implements Multi.
func (DynamicEquiPartition) Allot(requests []int, p int) []int {
	n := len(requests)
	out := make([]int, n)
	if n == 0 || p <= 0 {
		return out
	}
	type jr struct{ idx, want int }
	pool := make([]jr, 0, n)
	for i, r := range requests {
		if r > 0 {
			pool = append(pool, jr{i, r})
		}
	}
	remaining := p
	for len(pool) > 0 && remaining > 0 {
		share := remaining / len(pool)
		if share == 0 {
			// Fewer processors than jobs: hand out one each until the pool
			// or the processors run out (jobs beyond that get zero).
			for _, j := range pool {
				if remaining == 0 {
					break
				}
				out[j.idx] = 1
				remaining--
			}
			return out
		}
		moved := false
		next := pool[:0]
		for _, j := range pool {
			if j.want <= share {
				out[j.idx] = j.want
				remaining -= j.want
				moved = true
			} else {
				next = append(next, j)
			}
		}
		pool = next
		if !moved {
			// Everyone wants more than the share: equal split + remainder.
			share = remaining / len(pool)
			extra := remaining - share*len(pool)
			for k, j := range pool {
				out[j.idx] = share
				if k < extra {
					out[j.idx]++
				}
			}
			return out
		}
	}
	return out
}

// Name implements Multi.
func (DynamicEquiPartition) Name() string { return "dynamic-equi-partitioning" }

// EqualSplit is the naive fair allocator that always hands each active job
// an equal share (capped by its request) without redistributing leftovers.
// It is fair but *reserving* — processors can idle while jobs want more —
// and serves as the contrast showing why DEQ's redistribution matters.
type EqualSplit struct{}

// Allot implements Multi.
func (EqualSplit) Allot(requests []int, p int) []int {
	n := len(requests)
	out := make([]int, n)
	if n == 0 || p <= 0 {
		return out
	}
	active := 0
	for _, r := range requests {
		if r > 0 {
			active++
		}
	}
	if active == 0 {
		return out
	}
	share := p / active
	extra := p - share*active
	k := 0
	for i, r := range requests {
		if r <= 0 {
			continue
		}
		s := share
		if k < extra {
			s++
		}
		k++
		if s > r {
			s = r
		}
		out[i] = s
	}
	return out
}

// Name implements Multi.
func (EqualSplit) Name() string { return "equal-split" }
