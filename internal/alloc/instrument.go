package alloc

import "abg/internal/obs"

// ObservedSingle wraps a Single allocator and emits one EvAllocDecision per
// grant, labelled with the inner allocator's name — allocator-level
// visibility independent of which engine drives it (the engines themselves
// only see the grant, not the allocator's identity).
type ObservedSingle struct {
	Inner Single
	Bus   *obs.Bus
}

// ObserveSingle wraps inner so every grant is published on bus. A nil bus
// returns inner unchanged (no wrapping cost when observability is off).
func ObserveSingle(inner Single, bus *obs.Bus) Single {
	if bus == nil {
		return inner
	}
	return ObservedSingle{Inner: inner, Bus: bus}
}

// Grant implements Single.
func (o ObservedSingle) Grant(q int, request int) int {
	a := o.Inner.Grant(q, request)
	if o.Bus.Active() {
		o.Bus.Emit(obs.Event{Kind: obs.EvAllocDecision, Quantum: q, Job: -1,
			Name: o.Inner.Name(), IntRequest: request, Allotment: a})
	}
	return a
}

// Name implements Single.
func (o ObservedSingle) Name() string { return o.Inner.Name() }

// ObservedMulti wraps a Multi allocator and emits one EvAllocDecision per
// allocation round with the summed requests and grants.
type ObservedMulti struct {
	Inner Multi
	Bus   *obs.Bus
}

// ObserveMulti wraps inner so every allocation round is published on bus.
// A nil bus returns inner unchanged.
func ObserveMulti(inner Multi, bus *obs.Bus) Multi {
	if bus == nil {
		return inner
	}
	return ObservedMulti{Inner: inner, Bus: bus}
}

// Allot implements Multi.
func (o ObservedMulti) Allot(requests []int, p int) []int {
	out := o.Inner.Allot(requests, p)
	if o.Bus.Active() {
		totalReq, totalAllot := 0, 0
		for i := range requests {
			totalReq += requests[i]
			totalAllot += out[i]
		}
		o.Bus.Emit(obs.Event{Kind: obs.EvAllocDecision, Job: -1,
			Name: o.Inner.Name(), P: p, IntRequest: totalReq, Allotment: totalAllot})
	}
	return out
}

// Name implements Multi.
func (o ObservedMulti) Name() string { return o.Inner.Name() }
