package alloc

import (
	"reflect"
	"testing"

	"abg/internal/xrand"
)

// TestAllotterMatchesDirect: the scratch-based re-implementations must be
// bit-identical to the stateless allocators across random request vectors,
// and reuse across calls must not leak state between quanta.
func TestAllotterMatchesDirect(t *testing.T) {
	for _, m := range []Multi{DynamicEquiPartition{}, EqualSplit{}} {
		t.Run(m.Name(), func(t *testing.T) {
			a := NewAllotter(m)
			rng := xrand.New(42)
			for trial := 0; trial < 500; trial++ {
				n := rng.Intn(40) // includes n = 0
				requests := make([]int, n)
				for i := range requests {
					requests[i] = rng.Intn(12) - 2 // includes ≤ 0
				}
				p := rng.Intn(64) - 4 // includes p ≤ 0
				want := m.Allot(requests, p)
				got := a.Allot(requests, p)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d: requests=%v p=%d\ndirect:   %v\nallotter: %v",
						trial, requests, p, want, got)
				}
			}
		})
	}
}

// TestAllotterFallback: an allocator the Allotter does not special-case is
// delegated to verbatim.
func TestAllotterFallback(t *testing.T) {
	rr := &RoundRobin{}
	a := NewAllotter(rr)
	if a.Name() != rr.Name() {
		t.Fatalf("Name() = %q, want %q", a.Name(), rr.Name())
	}
	ref := &RoundRobin{}
	for q := 0; q < 5; q++ {
		requests := []int{3, 1, 4, 1, 5}
		want := ref.Allot(requests, 8)
		got := a.Allot(requests, 8)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("quantum %d: delegate %v, direct %v", q, got, want)
		}
	}
}

func BenchmarkAllotterDEQ(b *testing.B) {
	const n = 10000
	requests := make([]int, n)
	for i := range requests {
		requests[i] = 1 + i%8
	}
	a := NewAllotter(DynamicEquiPartition{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allot(requests, 2*n)
	}
}
