package alloc

// RoundRobin is the rotating-priority allocator of He, Hsu and Leiserson
// [11]: at each quantum, jobs are served in a rotating order; each job in
// turn receives min(its request, what is left). Over consecutive quanta the
// rotation equalises access, making the allocator fair in the long run while
// staying conservative and non-reserving within each quantum.
//
// RoundRobin is stateful (the rotation offset advances on every Allot call),
// so use one instance per simulation.
type RoundRobin struct {
	offset int
}

// NewRoundRobin returns a fresh rotating allocator.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Allot implements Multi.
func (r *RoundRobin) Allot(requests []int, p int) []int {
	n := len(requests)
	out := make([]int, n)
	if n == 0 || p <= 0 {
		return out
	}
	start := r.offset % n
	r.offset++
	remaining := p
	for k := 0; k < n && remaining > 0; k++ {
		i := (start + k) % n
		want := requests[i]
		if want <= 0 {
			continue
		}
		grant := want
		if grant > remaining {
			grant = remaining
		}
		out[i] = grant
		remaining -= grant
	}
	return out
}

// Name implements Multi.
func (*RoundRobin) Name() string { return "round-robin" }
