package alloc

// Allotter wraps a Multi allocator with reusable per-quantum buffers. The
// engine calls an allocator once per boundary; at large job counts the
// naive Allot implementations re-allocate an allotment slice (and, for DEQ,
// a candidate pool) every quantum, which is pure per-quantum garbage. An
// Allotter keeps those buffers across calls and runs scratch-based
// re-implementations of the stateless built-in allocators, falling back to
// the wrapped allocator's own Allot for anything it does not recognise
// (checked, observed, or user-supplied allocators keep their semantics).
//
// The returned slice is owned by the Allotter and valid until the next
// Allot call; an Allotter is not safe for concurrent use. Outputs are
// bit-identical to the wrapped allocator's.
type Allotter struct {
	m    Multi
	out  []int
	pool []poolEntry
}

type poolEntry struct{ idx, want int }

// NewAllotter returns a reusing wrapper around m.
func NewAllotter(m Multi) *Allotter { return &Allotter{m: m} }

// Name returns the wrapped allocator's name.
func (a *Allotter) Name() string { return a.m.Name() }

// Allot returns allotments for the requests, reusing internal buffers.
func (a *Allotter) Allot(requests []int, p int) []int {
	switch a.m.(type) {
	case DynamicEquiPartition:
		return a.deq(requests, p)
	case EqualSplit:
		return a.equalSplit(requests, p)
	default:
		return a.m.Allot(requests, p)
	}
}

// grow returns a zeroed allotment buffer of length n.
func (a *Allotter) grow(n int) []int {
	if cap(a.out) < n {
		a.out = make([]int, n)
	}
	a.out = a.out[:n]
	clear(a.out)
	return a.out
}

// deq mirrors DynamicEquiPartition.Allot over reused buffers.
func (a *Allotter) deq(requests []int, p int) []int {
	n := len(requests)
	out := a.grow(n)
	if n == 0 || p <= 0 {
		return out
	}
	if cap(a.pool) < n {
		a.pool = make([]poolEntry, 0, n)
	}
	pool := a.pool[:0]
	for i, r := range requests {
		if r > 0 {
			pool = append(pool, poolEntry{i, r})
		}
	}
	remaining := p
	for len(pool) > 0 && remaining > 0 {
		share := remaining / len(pool)
		if share == 0 {
			for _, j := range pool {
				if remaining == 0 {
					break
				}
				out[j.idx] = 1
				remaining--
			}
			return out
		}
		moved := false
		next := pool[:0]
		for _, j := range pool {
			if j.want <= share {
				out[j.idx] = j.want
				remaining -= j.want
				moved = true
			} else {
				next = append(next, j)
			}
		}
		pool = next
		if !moved {
			share = remaining / len(pool)
			extra := remaining - share*len(pool)
			for k, j := range pool {
				out[j.idx] = share
				if k < extra {
					out[j.idx]++
				}
			}
			return out
		}
	}
	return out
}

// equalSplit mirrors EqualSplit.Allot over the reused allotment buffer.
func (a *Allotter) equalSplit(requests []int, p int) []int {
	n := len(requests)
	out := a.grow(n)
	if n == 0 || p <= 0 {
		return out
	}
	active := 0
	for _, r := range requests {
		if r > 0 {
			active++
		}
	}
	if active == 0 {
		return out
	}
	share := p / active
	extra := p - share*active
	k := 0
	for i, r := range requests {
		if r <= 0 {
			continue
		}
		s := share
		if k < extra {
			s++
		}
		k++
		if s > r {
			s = r
		}
		out[i] = s
	}
	return out
}
