package alloc

import (
	"testing"
	"testing/quick"

	"abg/internal/xrand"
)

func TestRoundRobinBasic(t *testing.T) {
	rr := NewRoundRobin()
	// Quantum 1: priority starts at job 0.
	got := rr.Allot([]int{6, 6, 6}, 10)
	if got[0] != 6 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("q1: %v", got)
	}
	// Quantum 2: priority rotates to job 1.
	got = rr.Allot([]int{6, 6, 6}, 10)
	if got[1] != 6 || got[2] != 4 || got[0] != 0 {
		t.Fatalf("q2: %v", got)
	}
	// Quantum 3: job 2 first.
	got = rr.Allot([]int{6, 6, 6}, 10)
	if got[2] != 6 || got[0] != 4 {
		t.Fatalf("q3: %v", got)
	}
}

func TestRoundRobinSkipsZeroRequests(t *testing.T) {
	rr := NewRoundRobin()
	got := rr.Allot([]int{0, 5, 0, 5}, 7)
	if got[0] != 0 || got[2] != 0 {
		t.Fatalf("zero requests granted: %v", got)
	}
	if got[1]+got[3] != 7 {
		t.Fatalf("capacity unused: %v", got)
	}
}

func TestRoundRobinAllSatisfiedWhenAmple(t *testing.T) {
	rr := NewRoundRobin()
	got := rr.Allot([]int{3, 1, 4}, 100)
	want := []int{3, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestRoundRobinEdges(t *testing.T) {
	rr := NewRoundRobin()
	if out := rr.Allot(nil, 10); len(out) != 0 {
		t.Fatal("empty requests")
	}
	if out := rr.Allot([]int{3}, 0); out[0] != 0 {
		t.Fatal("zero processors")
	}
	if rr.Name() == "" {
		t.Fatal("name")
	}
}

func TestRoundRobinInvariants(t *testing.T) {
	rr := NewRoundRobin()
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(100)
		reqs := make([]int, n)
		totalReq := 0
		for i := range reqs {
			reqs[i] = rng.Intn(50)
			totalReq += reqs[i]
		}
		got := rr.Allot(reqs, p)
		total := 0
		for i, a := range got {
			if a < 0 || a > reqs[i] {
				return false // conservative
			}
			total += a
		}
		if total > p {
			return false // capacity
		}
		// Non-reserving: capacity idles only if all requests are satisfied.
		if total < p && total < totalReq {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundRobinLongRunFairness: with identical persistent requests, the
// rotation spreads grants evenly over many quanta.
func TestRoundRobinLongRunFairness(t *testing.T) {
	rr := NewRoundRobin()
	const n, p, rounds = 4, 6, 400
	totals := make([]int, n)
	reqs := []int{6, 6, 6, 6}
	for q := 0; q < rounds; q++ {
		got := rr.Allot(reqs, p)
		for i, a := range got {
			totals[i] += a
		}
	}
	want := rounds * p / n
	for i, tot := range totals {
		if tot < want*9/10 || tot > want*11/10 {
			t.Fatalf("job %d total %d, want ~%d (totals %v)", i, tot, want, totals)
		}
	}
}
