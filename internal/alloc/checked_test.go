package alloc

import (
	"strings"
	"testing"

	"abg/internal/xrand"
)

// brokenMulti misbehaves in a configurable way, for testing CheckedMulti.
type brokenMulti struct {
	mode string
}

func (b brokenMulti) Allot(requests []int, p int) []int {
	switch b.mode {
	case "shape":
		return make([]int, len(requests)+1)
	case "negative":
		out := make([]int, len(requests))
		out[0] = -1
		return out
	case "greedy": // exceeds request
		out := make([]int, len(requests))
		for i := range out {
			out[i] = requests[i] + 1
		}
		return out
	case "oversubscribe":
		out := make([]int, len(requests))
		for i := range out {
			out[i] = requests[i]
		}
		return out
	default:
		return make([]int, len(requests))
	}
}

func (brokenMulti) Name() string { return "broken" }

func TestCheckedMultiCatchesViolations(t *testing.T) {
	cases := map[string][]int{
		"shape":         {1, 2},
		"negative":      {1, 2},
		"greedy":        {1, 2},
		"oversubscribe": {5, 5}, // P=4 below
	}
	for mode, reqs := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mode %s: violation not caught", mode)
				}
			}()
			(&CheckedMulti{Inner: brokenMulti{mode: mode}}).Allot(reqs, 4)
		}()
	}
}

func TestCheckedMultiPassesValidAllocators(t *testing.T) {
	rng := xrand.New(3)
	allocs := []Multi{DynamicEquiPartition{}, EqualSplit{}, NewRoundRobin()}
	for _, inner := range allocs {
		checked := &CheckedMulti{Inner: inner}
		if !strings.Contains(checked.Name(), "checked") {
			t.Fatal("name")
		}
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(8)
			reqs := make([]int, n)
			for i := range reqs {
				reqs[i] = rng.Intn(40) - 2 // occasionally negative
			}
			// Must not panic.
			checked.Allot(reqs, 1+rng.Intn(64))
		}
	}
}

type brokenSingle struct{ mode string }

func (b brokenSingle) Grant(q, request int) int {
	switch b.mode {
	case "negative":
		return -1
	default:
		return request + 1
	}
}
func (brokenSingle) Name() string { return "broken" }

func TestCheckedSingleCatchesViolations(t *testing.T) {
	for _, mode := range []string{"negative", "greedy"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mode %s: violation not caught", mode)
				}
			}()
			CheckedSingle{Inner: brokenSingle{mode: mode}}.Grant(1, 5)
		}()
	}
}

func TestCheckedSinglePassesValid(t *testing.T) {
	c := CheckedSingle{Inner: NewUnconstrained(16)}
	if c.Grant(1, 8) != 8 || c.Grant(1, 100) != 16 {
		t.Fatal("pass-through broken")
	}
	if c.Grant(1, -5) != 0 {
		t.Fatal("negative request handling")
	}
	if !strings.Contains(c.Name(), "checked") {
		t.Fatal("name")
	}
}
