package alloc

import "fmt"

// Capacity models the machine's effective total processor count P(t) as a
// function of the quantum index — the paper's fixed P generalised to
// capacity churn (node hot-unplug/replug, co-tenant load). Implementations
// must be deterministic and side-effect free: At may be called for the same
// quantum any number of times and in any order (engines, invariant checkers
// and reports all consult it independently).
//
// Concrete time-varying models live in abg/internal/fault; this package
// only defines the contract the engines and allocators consume.
type Capacity interface {
	// At returns the processor count available at quantum q (1-based).
	// Values below zero are treated as zero by consumers.
	At(q int) int
	// Name identifies the model in traces and tables.
	Name() string
}

// FixedCapacity is the trivial model: P processors at every quantum — the
// paper's frictionless setting expressed in the Capacity vocabulary.
type FixedCapacity struct {
	P int
}

// At implements Capacity.
func (f FixedCapacity) At(int) int { return f.P }

// Name implements Capacity.
func (f FixedCapacity) Name() string { return fmt.Sprintf("fixed(P=%d)", f.P) }

// CapAt clamps a model value to [0, p]: the effective capacity the engines
// use for quantum q. A nil model means the machine is undisturbed (full p).
func CapAt(c Capacity, q, p int) int {
	if c == nil {
		return p
	}
	v := c.At(q)
	if v < 0 {
		v = 0
	}
	if v > p {
		v = p
	}
	return v
}

// WithCapacity wraps a Single allocator so every grant is additionally
// capped by the capacity model: grant(q) = min(inner.Grant(q, req), P(q)).
// A nil model returns inner unchanged.
func WithCapacity(inner Single, c Capacity) Single {
	if c == nil {
		return inner
	}
	return capacitySingle{inner: inner, cap: c}
}

type capacitySingle struct {
	inner Single
	cap   Capacity
}

// Grant implements Single.
func (s capacitySingle) Grant(q int, request int) int {
	a := s.inner.Grant(q, request)
	if p := s.cap.At(q); a > p {
		a = p
	}
	if a < 0 {
		a = 0
	}
	return a
}

// Name implements Single.
func (s capacitySingle) Name() string {
	return fmt.Sprintf("%s|%s", s.inner.Name(), s.cap.Name())
}
