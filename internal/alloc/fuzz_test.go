package alloc

import "testing"

// fuzzCap is a deterministic pseudo-random capacity model for fuzzing:
// a splitmix-style hash of (seed, q) folded into [0, p].
type fuzzCap struct {
	p    int
	seed uint64
}

func (c fuzzCap) At(q int) int {
	x := c.seed + uint64(q)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return int(x % uint64(c.p+1))
}
func (c fuzzCap) Name() string { return "fuzz" }

// FuzzDEQ feeds arbitrary request vectors to dynamic equi-partitioning and
// asserts the allocator contracts (conservative, within capacity, fair,
// non-reserving). Seeds run in the normal suite; use -fuzz to explore.
func FuzzDEQ(f *testing.F) {
	f.Add([]byte{5, 0, 200, 3}, uint8(16))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 255, 255}, uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, reqBytes []byte, pRaw uint8) {
		if len(reqBytes) > 64 {
			return
		}
		p := int(pRaw%200) + 1
		reqs := make([]int, len(reqBytes))
		totalReq := 0
		for i, b := range reqBytes {
			reqs[i] = int(b)
			totalReq += reqs[i]
		}
		got := DynamicEquiPartition{}.Allot(reqs, p)
		if len(got) != len(reqs) {
			t.Fatalf("shape: %d != %d", len(got), len(reqs))
		}
		total := 0
		for i, a := range got {
			if a < 0 || a > reqs[i] {
				t.Fatalf("job %d: allotment %d vs request %d", i, a, reqs[i])
			}
			total += a
		}
		if total > p {
			t.Fatalf("oversubscribed: %d > %d", total, p)
		}
		if total < p && total < totalReq {
			// Idle processors while someone wants more: only legal when
			// there are more unsatisfied jobs than leftover processors
			// cannot happen for DEQ — it hands out 1 each first.
			unsat := 0
			for i, a := range got {
				if a < reqs[i] {
					unsat++
				}
			}
			if unsat > 0 {
				t.Fatalf("reserving: %d of %d used, %d unsatisfied (reqs %v)",
					total, p, unsat, reqs)
			}
		}
	})
}

// FuzzCapacitySingle drives single-job grants through a time-varying
// capacity model: the capped allocator must stay conservative, non-negative
// and within P(q) for arbitrary (including negative) request streams. The
// CheckedSingle wrapper panics on any contract violation.
func FuzzCapacitySingle(f *testing.F) {
	f.Add([]byte{10, 3, 200, 0}, uint8(16), uint64(7))
	f.Add([]byte{255}, uint8(1), uint64(0))
	f.Add([]byte{0, 0, 0}, uint8(199), uint64(1<<63))
	f.Fuzz(func(t *testing.T, reqBytes []byte, pRaw uint8, capSeed uint64) {
		if len(reqBytes) > 64 {
			return
		}
		p := int(pRaw%200) + 1
		model := fuzzCap{p: p, seed: capSeed}
		single := CheckedSingle{
			Inner: WithCapacity(NewUnconstrained(p), model),
			Cap:   model,
		}
		for q, b := range reqBytes {
			req := int(int8(b)) // adversarial: negative requests included
			a := single.Grant(q+1, req)
			if ceil := CapAt(model, q+1, p); a > ceil {
				t.Fatalf("q=%d: grant %d above capacity %d", q+1, a, ceil)
			}
		}
	})
}

// FuzzAdversarialMulti replays a lossy control channel against every multi
// allocator: each round's request vector is either fresh, stale (the
// previous round repeated verbatim, as after a dropped message), or partly
// duplicated (one job's request smeared over its neighbour), while the
// machine size churns. The CheckedMulti wrapper panics if any allocator
// breaks conservativeness, capacity or shape under that stream.
func FuzzAdversarialMulti(f *testing.F) {
	f.Add([]byte{5, 0, 200, 3, 1, 9}, uint8(16), uint8(3), uint64(11))
	f.Add([]byte{255, 255, 0, 0}, uint8(2), uint8(2), uint64(0))
	f.Add([]byte{}, uint8(64), uint8(5), uint64(42))
	f.Fuzz(func(t *testing.T, data []byte, pRaw, nRaw uint8, capSeed uint64) {
		if len(data) > 128 {
			return
		}
		n := int(nRaw%8) + 1
		p := int(pRaw%200) + 1
		model := fuzzCap{p: p, seed: capSeed}
		allocators := []Multi{DynamicEquiPartition{}, EqualSplit{}, NewRoundRobin()}
		for _, inner := range allocators {
			checked := &CheckedMulti{Inner: inner, Cap: model}
			prev := make([]int, n)
			for round := 1; (round-1)*(n+1) < len(data); round++ {
				chunk := data[(round-1)*(n+1):]
				ctl := chunk[0]
				reqs := make([]int, n)
				for i := range reqs {
					if 1+i < len(chunk) {
						reqs[i] = int(chunk[1+i])
					}
				}
				switch ctl % 3 {
				case 1: // stale: the last vector arrives again
					copy(reqs, prev)
				case 2: // duplicated: job 0's request smeared over job n-1
					reqs[n-1] = reqs[0]
				}
				pq := CapAt(model, round, p)
				out := checked.Allot(reqs, pq)
				total := 0
				for _, a := range out {
					total += a
				}
				if total > pq {
					t.Fatalf("%s round %d: %d allotted on a %d-processor machine",
						inner.Name(), round, total, pq)
				}
				copy(prev, reqs)
			}
		}
	})
}
