package alloc

import "testing"

// FuzzDEQ feeds arbitrary request vectors to dynamic equi-partitioning and
// asserts the allocator contracts (conservative, within capacity, fair,
// non-reserving). Seeds run in the normal suite; use -fuzz to explore.
func FuzzDEQ(f *testing.F) {
	f.Add([]byte{5, 0, 200, 3}, uint8(16))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 255, 255}, uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, uint8(4))
	f.Fuzz(func(t *testing.T, reqBytes []byte, pRaw uint8) {
		if len(reqBytes) > 64 {
			return
		}
		p := int(pRaw%200) + 1
		reqs := make([]int, len(reqBytes))
		totalReq := 0
		for i, b := range reqBytes {
			reqs[i] = int(b)
			totalReq += reqs[i]
		}
		got := DynamicEquiPartition{}.Allot(reqs, p)
		if len(got) != len(reqs) {
			t.Fatalf("shape: %d != %d", len(got), len(reqs))
		}
		total := 0
		for i, a := range got {
			if a < 0 || a > reqs[i] {
				t.Fatalf("job %d: allotment %d vs request %d", i, a, reqs[i])
			}
			total += a
		}
		if total > p {
			t.Fatalf("oversubscribed: %d > %d", total, p)
		}
		if total < p && total < totalReq {
			// Idle processors while someone wants more: only legal when
			// there are more unsatisfied jobs than leftover processors
			// cannot happen for DEQ — it hands out 1 each first.
			unsat := 0
			for i, a := range got {
				if a < reqs[i] {
					unsat++
				}
			}
			if unsat > 0 {
				t.Fatalf("reserving: %d of %d used, %d unsatisfied (reqs %v)",
					total, p, unsat, reqs)
			}
		}
	})
}
