package alloc

import (
	"strings"
	"testing"
	"testing/quick"

	"abg/internal/xrand"
)

func TestUnconstrained(t *testing.T) {
	u := NewUnconstrained(128)
	if u.Grant(1, 50) != 50 {
		t.Fatal("request below P should be granted in full")
	}
	if u.Grant(1, 500) != 128 {
		t.Fatal("request above P should be capped")
	}
	if u.Grant(1, -3) != 0 {
		t.Fatal("negative request should yield 0")
	}
	if !strings.Contains(u.Name(), "128") {
		t.Fatal("name")
	}
}

func TestUnconstrainedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUnconstrained(0)
}

func TestAvailabilityTrace(t *testing.T) {
	a := NewAvailabilityTrace(100, func(q int) int { return q * 10 }, "ramp")
	if a.Grant(1, 50) != 10 {
		t.Fatal("should be capped by availability")
	}
	if a.Grant(3, 12) != 12 {
		t.Fatal("request below availability should be granted")
	}
	if a.Grant(50, 1000) != 100 {
		t.Fatal("availability should be clamped to P")
	}
	// Availability below 1 is clamped to 1 (fair allocator, |J| ≤ P).
	zero := NewAvailabilityTrace(100, func(int) int { return 0 }, "")
	if zero.Grant(1, 5) != 1 {
		t.Fatal("availability should be clamped to at least 1")
	}
	if zero.Name() == "" || a.Name() != "ramp" {
		t.Fatal("names")
	}
}

func TestAvailabilityTracePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAvailabilityTrace(0, func(int) int { return 1 }, "") },
		func() { NewAvailabilityTrace(4, nil, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDEQKnownCases(t *testing.T) {
	deq := DynamicEquiPartition{}
	cases := []struct {
		requests []int
		p        int
		want     []int
	}{
		// All satisfied.
		{[]int{2, 3, 1}, 100, []int{2, 3, 1}},
		// Equal split when everyone wants more.
		{[]int{50, 50, 50}, 30, []int{10, 10, 10}},
		// Small requesters first, leftovers redistributed: share=10;
		// job1 takes 2, remaining 28 over 2 jobs → 14 each.
		{[]int{50, 2, 50}, 30, []int{14, 2, 14}},
		// Cascading redistribution: share=8, j2(3) leaves; share=(25-3... )
		{[]int{9, 3, 100, 100}, 32, []int{9, 3, 10, 10}},
		// Remainder goes one-by-one in order.
		{[]int{50, 50, 50}, 31, []int{11, 10, 10}},
		// Zero requests get nothing.
		{[]int{0, 7, 0}, 10, []int{0, 7, 0}},
		// More jobs than processors: one each until exhausted.
		{[]int{5, 5, 5, 5}, 3, []int{1, 1, 1, 0}},
		// Empty.
		{nil, 10, []int{}},
	}
	for i, c := range cases {
		got := deq.Allot(c.requests, c.p)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
}

// TestDEQInvariants property-checks conservativeness, capacity, fairness
// and non-reservation on random inputs.
func TestDEQInvariants(t *testing.T) {
	deq := DynamicEquiPartition{}
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(12)
		p := 1 + rng.Intn(200)
		reqs := make([]int, n)
		for i := range reqs {
			reqs[i] = rng.Intn(80)
		}
		got := deq.Allot(reqs, p)
		total := 0
		for i, a := range got {
			if a < 0 || a > reqs[i] {
				return false // conservative
			}
			total += a
		}
		if total > p {
			return false // capacity
		}
		// Non-reserving: if processors idle, every job is satisfied.
		if total < p {
			for i, a := range got {
				if a < reqs[i] {
					return false
				}
			}
		}
		// Fairness: an unsatisfied job never gets fewer processors than
		// another job gets in excess of... simpler check: all unsatisfied
		// jobs receive within 1 of each other.
		lo, hi := 1<<30, -1
		for i, a := range got {
			if a < reqs[i] {
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
		}
		if hi >= 0 && hi-lo > 1 {
			return false
		}
		// Fairness vs satisfied jobs: a satisfied job's grant never exceeds
		// an unsatisfied job's grant by more than... (satisfied jobs took
		// requests ≤ running share, so their grant ≤ any unsatisfied grant+1).
		if hi >= 0 {
			for i, a := range got {
				if a == reqs[i] && a > hi+1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDEQEachActiveJobGetsOneWhenPossible(t *testing.T) {
	// |J| ≤ P: every requesting job receives at least one processor.
	deq := DynamicEquiPartition{}
	rng := xrand.New(5)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(16)
		p := n + rng.Intn(64)
		reqs := make([]int, n)
		for i := range reqs {
			reqs[i] = 1 + rng.Intn(50)
		}
		got := deq.Allot(reqs, p)
		for i, a := range got {
			if a < 1 {
				t.Fatalf("job %d got %d with P=%d reqs=%v", i, a, p, reqs)
			}
		}
	}
}

func TestDEQZeroProcessors(t *testing.T) {
	got := DynamicEquiPartition{}.Allot([]int{3, 4}, 0)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestEqualSplit(t *testing.T) {
	es := EqualSplit{}
	got := es.Allot([]int{2, 50, 50}, 30)
	// Shares of 10 each; job 0 capped at 2 and the leftover is NOT
	// redistributed (reserving).
	if got[0] != 2 || got[1] != 10 || got[2] != 10 {
		t.Fatalf("got %v", got)
	}
	got = es.Allot([]int{50, 50, 50}, 31)
	if got[0]+got[1]+got[2] != 31 {
		t.Fatalf("remainder lost: %v", got)
	}
	if got := es.Allot(nil, 5); len(got) != 0 {
		t.Fatal("empty")
	}
	if got := es.Allot([]int{0, 0}, 5); got[0] != 0 || got[1] != 0 {
		t.Fatal("all-zero requests")
	}
	if es.Name() == "" || (DynamicEquiPartition{}).Name() == "" {
		t.Fatal("names")
	}
}

func TestEqualSplitConservative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(100)
		reqs := make([]int, n)
		for i := range reqs {
			reqs[i] = rng.Intn(40)
		}
		got := EqualSplit{}.Allot(reqs, p)
		total := 0
		for i, a := range got {
			if a < 0 || a > reqs[i] {
				return false
			}
			total += a
		}
		return total <= p
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDEQDominatesEqualSplit: DEQ never hands out fewer total processors
// than EqualSplit — redistribution only helps.
func TestDEQDominatesEqualSplit(t *testing.T) {
	rng := xrand.New(9)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		p := 1 + rng.Intn(100)
		reqs := make([]int, n)
		for i := range reqs {
			reqs[i] = rng.Intn(60)
		}
		d := DynamicEquiPartition{}.Allot(reqs, p)
		e := EqualSplit{}.Allot(reqs, p)
		sd, se := 0, 0
		for i := range d {
			sd += d[i]
			se += e[i]
		}
		if sd < se {
			t.Fatalf("DEQ total %d < EqualSplit total %d (reqs=%v p=%d)", sd, se, reqs, p)
		}
	}
}

func BenchmarkDEQAllot(b *testing.B) {
	rng := xrand.New(1)
	reqs := make([]int, 64)
	for i := range reqs {
		reqs[i] = rng.Intn(40)
	}
	deq := DynamicEquiPartition{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deq.Allot(reqs, 128)
	}
}

func BenchmarkRoundRobinAllot(b *testing.B) {
	rng := xrand.New(1)
	reqs := make([]int, 64)
	for i := range reqs {
		reqs[i] = rng.Intn(40)
	}
	rr := NewRoundRobin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rr.Allot(reqs, 128)
	}
}
