package alloc

import (
	"strings"
	"testing"
)

func TestCapAt(t *testing.T) {
	if got := CapAt(nil, 7, 32); got != 32 {
		t.Fatalf("nil model: %d", got)
	}
	if got := CapAt(FixedCapacity{P: 16}, 1, 32); got != 16 {
		t.Fatalf("fixed model: %d", got)
	}
	// Clamped to [0, p]: models may return junk, consumers must not see it.
	if got := CapAt(FixedCapacity{P: -5}, 1, 32); got != 0 {
		t.Fatalf("negative model value not clamped: %d", got)
	}
	if got := CapAt(FixedCapacity{P: 99}, 1, 32); got != 32 {
		t.Fatalf("model above machine not clamped: %d", got)
	}
	if !strings.Contains((FixedCapacity{P: 8}).Name(), "8") {
		t.Fatalf("fixed name: %q", FixedCapacity{P: 8}.Name())
	}
}

func TestWithCapacity(t *testing.T) {
	inner := NewUnconstrained(64)
	if got := WithCapacity(inner, nil); got != Single(inner) {
		t.Fatal("nil model must return the inner allocator unchanged")
	}
	capped := WithCapacity(inner, FixedCapacity{P: 16})
	if got := capped.Grant(1, 40); got != 16 {
		t.Fatalf("grant not capped: %d", got)
	}
	if got := capped.Grant(1, 10); got != 10 {
		t.Fatalf("grant below capacity altered: %d", got)
	}
	if name := capped.Name(); !strings.Contains(name, inner.Name()) ||
		!strings.Contains(name, "fixed") {
		t.Fatalf("composite name: %q", name)
	}
}

// overGranter ignores the capacity model — the bug CheckedSingle.Cap exists
// to catch.
type overGranter struct{}

func (overGranter) Grant(q, request int) int { return request }
func (overGranter) Name() string             { return "overgranter" }

func TestCheckedSingleCapPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("grant above the capacity model did not panic")
		} else if !strings.Contains(r.(string), "above capacity") {
			t.Fatalf("panic message: %v", r)
		}
	}()
	c := CheckedSingle{Inner: overGranter{}, Cap: FixedCapacity{P: 8}}
	c.Grant(1, 20)
}

func TestCheckedMultiCapPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("round p above the capacity model did not panic")
		} else if !strings.Contains(r.(string), "above capacity model") {
			t.Fatalf("panic message: %v", r)
		}
	}()
	c := &CheckedMulti{Inner: DynamicEquiPartition{}, Cap: FixedCapacity{P: 8}}
	c.Allot([]int{4, 4}, 16) // caller claims 16 processors exist; model says 8
}

func TestCheckedMultiCapAccepts(t *testing.T) {
	c := &CheckedMulti{Inner: DynamicEquiPartition{}, Cap: FixedCapacity{P: 8}}
	out := c.Allot([]int{4, 4}, 8)
	if out[0]+out[1] > 8 {
		t.Fatalf("oversubscribed: %v", out)
	}
}
