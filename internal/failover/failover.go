// Package failover automates leader failover for a journal-shipping
// replication group (internal/server, internal/replica).
//
// Every member of a -group runs one Supervisor beside its daemon. The
// supervisor probes the whole group every ProbeEvery, and the group heals
// itself through three mechanisms, all built on monotonic leader epochs:
//
//   - Election. A follower that has lost its leader — tail stream down and
//     the leader unreachable by direct probe for longer than FailAfter —
//     looks for a death quorum: itself plus every reachable, unfenced
//     follower whose tail is also down must reach a strict majority of the
//     group. It then nominates the member with the longest applied journal
//     (ties break toward the smallest address; every follower's journal is
//     a byte prefix of the dead leader's, so the longest subsumes the
//     rest). If that member is itself, it claims the next epoch by asking
//     every member for a promise (POST /api/v1/fence); a majority of grants
//     wins and the node promotes under the claimed epoch. A failed claim
//     backs off for a randomized (but seed-deterministic) holdoff, so
//     competing candidates separate instead of livelocking.
//
//   - Fencing. Members promise at most one candidate per epoch, so two
//     concurrent claims for the same epoch cannot both assemble a majority
//     — any two majorities share a member. A leader that observes a peer
//     serving under a higher epoch has provably been deposed; its
//     supervisor fences it (permanent, fatal), and the epoch stamped into
//     every journal record keeps anything it wrote after deposition out of
//     every survivor's journal.
//
//   - Retargeting. A follower whose tail is down retargets at the group's
//     current leader — the reachable, unfenced leader with the highest
//     epoch — as soon as one exists, resuming shipping from its applied
//     offset with no operator action.
//
// The package speaks to its own daemon through the Node interface and to
// peers over the daemons' public HTTP API, so it has no dependency on the
// server package.
package failover

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

const (
	// FencePath is the endpoint a candidate claims an epoch through.
	FencePath = "/api/v1/fence"
	// replicationPath is the status endpoint probes read.
	replicationPath = "/api/v1/replication"

	// DefaultProbeEvery and DefaultFailAfter apply when the corresponding
	// Supervisor fields are zero.
	DefaultProbeEvery = 500 * time.Millisecond
	DefaultFailAfter  = 2 * time.Second
)

// NormalizeURL canonicalizes a member address: bare host:port gains an
// http:// scheme, trailing slashes are dropped. Group membership and
// promise-holder comparisons are by normalized URL.
func NormalizeURL(u string) string {
	u = strings.TrimSpace(u)
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// NodeStatus is the supervisor's view of its own daemon.
type NodeStatus struct {
	Role         string // "leader" or "follower"
	Epoch        uint32 // current leadership term
	JournalBytes int64  // applied journal length
	Fenced       bool   // deposed; shutting down
	Confirmed    bool   // leader has completed a clean probe round
	Leader       string // tail target (followers only)
	Connected    bool   // tail stream live right now (followers only)
}

// Node is the daemon a Supervisor manages. Implemented by *server.Server.
type Node interface {
	// Status reports the daemon's current replication condition.
	Status() NodeStatus
	// Confirm marks a leader's term current: a probe round reached a
	// majority and found no higher epoch, so writes may flow.
	Confirm()
	// Fence permanently deposes the daemon: a peer serves under a higher
	// epoch. The daemon must stop taking writes and shut down with an error.
	Fence(epoch uint32, winner string)
	// Retarget re-points a follower's tail at the given leader URL.
	Retarget(leader string)
	// Promise evaluates a fencing claim locally (the in-process twin of
	// POST /api/v1/fence).
	Promise(epoch uint32, candidate string, candidateBytes int64) FenceResponse
	// PromoteTo switches a follower to leader under the claimed epoch.
	PromoteTo(epoch uint32, reason string) error
}

// FenceRequest is the POST /api/v1/fence body: candidate asks the receiving
// member to back it as leader for Epoch.
type FenceRequest struct {
	Epoch        uint32 `json:"epoch"`
	Candidate    string `json:"candidate"`
	JournalBytes int64  `json:"journalBytes"`
}

// FenceResponse is a member's verdict on a fencing claim.
type FenceResponse struct {
	// Granted backs the candidate. A member grants at most one candidate
	// per epoch, which is what serializes concurrent claims.
	Granted bool `json:"granted"`
	// Epoch and JournalBytes describe the responder, so even a denial
	// teaches the candidate how far the group has moved.
	Epoch        uint32 `json:"epoch"`
	JournalBytes int64  `json:"journalBytes"`
	// Holder, on a denial, names who the responder backs instead: itself
	// (longest-prefix rule, live leader) or a previously promised candidate.
	Holder string `json:"holder,omitempty"`
	// Reason, on a denial, says why.
	Reason string `json:"reason,omitempty"`
}

// ElectionLost reports a claim that failed: another member holds (or won)
// the contested leadership. Callers surface Winner to the operator or
// client so the next attempt lands on the right member.
type ElectionLost struct {
	Epoch  uint32 // the epoch claimed
	Winner string // advertised URL of the member backed instead, if known
	Reason string
}

func (e *ElectionLost) Error() string {
	msg := fmt.Sprintf("election lost (epoch %d): %s", e.Epoch, e.Reason)
	if e.Winner != "" {
		msg += "; promotion is held by " + e.Winner
	}
	return msg
}

// peerView is one probe result.
type peerView struct {
	URL           string // the URL probed
	Err           error  // probe failure; all other fields are zero
	Addr          string
	Role          string
	Epoch         uint32
	PromisedEpoch uint32
	JournalBytes  int64
	Fenced        bool
	TailConnected bool
}

// probeDTO mirrors the fields of server.ReplicationDTO the supervisor
// reads. Kept as a private struct so this package needs no import of the
// server package (which imports this one).
type probeDTO struct {
	Role          string `json:"role"`
	JournalBytes  int64  `json:"journalBytes"`
	Epoch         uint32 `json:"epoch"`
	PromisedEpoch uint32 `json:"promisedEpoch"`
	Addr          string `json:"addr"`
	Fenced        bool   `json:"fenced"`
	Tail          *struct {
		Connected bool `json:"connected"`
	} `json:"tail"`
}

// Supervisor runs the failover protocol for one group member.
type Supervisor struct {
	// Node is the local daemon.
	Node Node
	// Self is the local daemon's advertised URL (must appear in Group).
	Self string
	// Group is every member's advertised URL, normalized, including Self.
	Group []string
	// ProbeEvery is the probe-round period; FailAfter is how long the
	// leader must stay unreachable before an election starts (and the base
	// of the post-defeat holdoff).
	ProbeEvery, FailAfter time.Duration
	// Seed makes the holdoff jitter deterministic (mixed with Self, so
	// members sharing a seed still separate).
	Seed uint64
	// HTTP is the probe/claim transport; http.DefaultClient when nil.
	// Per-request timeouts come from the supervisor, so Timeout may be 0.
	HTTP *http.Client
	// Log receives supervisor events; slog.Default() when nil.
	Log *slog.Logger

	mu        sync.Mutex // serializes rounds and manual promotes
	rng       *rand.Rand
	deadSince time.Time // when the tailed leader first looked dead
	holdUntil time.Time // no claims before this (post-defeat holdoff)
	maxSeen   uint32    // highest epoch (or promise) observed anywhere
}

func (s *Supervisor) probeEvery() time.Duration {
	if s.ProbeEvery <= 0 {
		return DefaultProbeEvery
	}
	return s.ProbeEvery
}

func (s *Supervisor) failAfter() time.Duration {
	if s.FailAfter <= 0 {
		return DefaultFailAfter
	}
	return s.FailAfter
}

// probeTimeout bounds one probe or claim request: a probe that outlives the
// round period is as useless as a failed one, but never go below 500ms — a
// loaded host must not fabricate leader death.
func (s *Supervisor) probeTimeout() time.Duration {
	if pe := s.probeEvery(); pe > 500*time.Millisecond {
		return pe
	}
	return 500 * time.Millisecond
}

func (s *Supervisor) client() *http.Client {
	if s.HTTP != nil {
		return s.HTTP
	}
	return http.DefaultClient
}

func (s *Supervisor) log() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return slog.Default()
}

// quorum is a strict majority of the group.
func (s *Supervisor) quorum() int { return len(s.Group)/2 + 1 }

// Run probes and heals until ctx is cancelled. Call in its own goroutine.
func (s *Supervisor) Run(ctx context.Context) {
	s.mu.Lock()
	if s.rng == nil {
		h := fnv.New64a()
		h.Write([]byte(s.Self))
		s.rng = rand.New(rand.NewSource(int64(s.Seed ^ h.Sum64())))
	}
	s.mu.Unlock()
	t := time.NewTicker(s.probeEvery())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.round(ctx)
		}
	}
}

// round is one probe-and-heal pass.
func (s *Supervisor) round(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.Node.Status()
	if st.Fenced {
		return
	}
	views := s.probeAll(ctx, st)
	s.noteEpochs(st, views)
	if st.Role == "leader" {
		s.leaderRound(st, views)
		return
	}
	s.followerRound(ctx, st, views)
}

// noteEpochs folds every observed epoch (and outstanding promise) into the
// claim floor.
func (s *Supervisor) noteEpochs(st NodeStatus, views []peerView) {
	if st.Epoch > s.maxSeen {
		s.maxSeen = st.Epoch
	}
	for _, v := range views {
		if v.Err != nil {
			continue
		}
		if v.Epoch > s.maxSeen {
			s.maxSeen = v.Epoch
		}
		if v.PromisedEpoch > s.maxSeen {
			s.maxSeen = v.PromisedEpoch
		}
	}
}

// leaderRound checks a leader's term: fence on any higher epoch; confirm
// once a majority answered and none knew better.
func (s *Supervisor) leaderRound(st NodeStatus, views []peerView) {
	var winner string
	var deposedBy uint32
	reached := 1 // self
	for _, v := range views {
		if v.Err != nil {
			continue
		}
		reached++
		if v.Epoch > st.Epoch && v.Epoch > deposedBy {
			deposedBy = v.Epoch
			winner = v.Addr
			if v.Role != "leader" {
				winner = "" // a follower already on the new term; leader unknown
			}
		}
		if v.PromisedEpoch > st.Epoch && deposedBy == 0 {
			// A claim beyond our term is in flight; do not confirm this round.
			reached--
		}
	}
	if deposedBy > 0 {
		s.log().Warn("observed a successor epoch; fencing self",
			"epoch", deposedBy, "winner", winner)
		s.Node.Fence(deposedBy, winner)
		return
	}
	if !st.Confirmed && reached >= s.quorum() {
		s.Node.Confirm()
	}
}

// followerRound heals a follower: retarget at the group's current leader
// when the tail is down, or elect a new one when there is no leader left.
func (s *Supervisor) followerRound(ctx context.Context, st NodeStatus, views []peerView) {
	tail := NormalizeURL(st.Leader)
	if st.Connected {
		s.deadSince = time.Time{}
	}
	// Retarget: a reachable, unfenced leader at (or beyond) our epoch whose
	// address differs from the tail target, while the tail is down.
	if !st.Connected {
		if lead, ok := groupLeader(views, st.Epoch); ok && NormalizeURL(lead.Addr) != tail {
			s.log().Info("retargeting at the group leader",
				"leader", lead.Addr, "epoch", lead.Epoch)
			s.Node.Retarget(lead.Addr)
			s.deadSince = time.Time{}
			return
		}
	}
	// Leader death: the tail target itself must be gone (unreachable,
	// fenced, or no longer a leader), not merely the stream dropped.
	dead := !st.Connected
	for _, v := range views {
		if NormalizeURL(v.URL) != tail {
			continue
		}
		if v.Err == nil && !v.Fenced && v.Role == "leader" {
			dead = false
		}
	}
	now := time.Now()
	if !dead {
		s.deadSince = time.Time{}
		return
	}
	if s.deadSince.IsZero() {
		s.deadSince = now
		return
	}
	if now.Sub(s.deadSince) < s.failAfter() || now.Before(s.holdUntil) {
		return
	}
	// Death quorum: self plus every reachable, unfenced follower that has
	// also lost its tail. (No check that they tailed the *same* leader —
	// members may dial the leader through different addresses.)
	votes := 1
	candAddr, candBytes := s.Self, st.JournalBytes
	for _, v := range views {
		if v.Err != nil || v.Fenced || v.Role != "follower" || v.TailConnected {
			continue
		}
		if !s.inGroup(v.Addr) {
			continue
		}
		votes++
		if v.JournalBytes > candBytes ||
			(v.JournalBytes == candBytes && v.Addr < candAddr) {
			candAddr, candBytes = v.Addr, v.JournalBytes
		}
	}
	if votes < s.quorum() {
		return
	}
	if candAddr != s.Self {
		// A peer holds a longer journal (or wins the tie): its claim must
		// win, so stand back one holdoff instead of racing it.
		s.holdUntil = now.Add(s.failAfter() + s.jitter())
		return
	}
	epoch := s.maxSeen + 1
	s.log().Info("leader death quorum reached; claiming epoch",
		"epoch", epoch, "votes", votes, "quorum", s.quorum(),
		"deadFor", now.Sub(s.deadSince).Round(time.Millisecond))
	if err := s.claim(ctx, epoch, "election"); err != nil {
		s.log().Warn("claim failed; holding off", "epoch", epoch, "err", err)
		s.holdUntil = time.Now().Add(s.failAfter() + s.jitter())
		return
	}
	s.deadSince = time.Time{}
}

// ManualPromote runs the same quorum claim an automated election runs, on
// operator demand (POST /api/v1/promote in group mode). Concurrent manual
// promotes on two followers therefore serialize exactly like competing
// elections: one wins, the loser's error names the winner.
func (s *Supervisor) ManualPromote(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.Node.Status()
	if st.Fenced {
		return fmt.Errorf("fenced: this daemon was deposed")
	}
	if st.Role != "follower" {
		return fmt.Errorf("not a follower")
	}
	views := s.probeAll(ctx, st)
	s.noteEpochs(st, views)
	return s.claim(ctx, s.maxSeen+1, "manual promote")
}

// claim asks every member to promise epoch to this node. A strict majority
// of grants (the local promise counts) wins; the node then promotes under
// the epoch. Callers hold s.mu.
func (s *Supervisor) claim(ctx context.Context, epoch uint32, reason string) error {
	st := s.Node.Status()
	if resp := s.Node.Promise(epoch, s.Self, st.JournalBytes); !resp.Granted {
		return &ElectionLost{Epoch: epoch, Winner: resp.Holder,
			Reason: "local promise denied: " + resp.Reason}
	}
	grants := 1
	var winner string
	for _, peer := range s.Group {
		if NormalizeURL(peer) == NormalizeURL(s.Self) {
			continue
		}
		resp, err := s.fence(ctx, peer, epoch, st.JournalBytes)
		if err != nil {
			continue // unreachable members simply do not vote
		}
		if resp.Epoch > s.maxSeen {
			s.maxSeen = resp.Epoch
		}
		if resp.Granted {
			grants++
		} else if resp.Holder != "" && resp.Holder != s.Self {
			winner = resp.Holder
		}
	}
	if grants < s.quorum() {
		return &ElectionLost{Epoch: epoch, Winner: winner,
			Reason: fmt.Sprintf("%d of the %d required promises granted", grants, s.quorum())}
	}
	if err := s.Node.PromoteTo(epoch, reason); err != nil {
		// The promise moved on while the claim was in flight (e.g. this node
		// deferred its self-promise to a longer candidate).
		return &ElectionLost{Epoch: epoch, Winner: winner,
			Reason: "promotion refused: " + err.Error()}
	}
	s.log().Info("claim won; promoted", "epoch", epoch, "grants", grants, "reason", reason)
	return nil
}

// fence sends one fencing claim to a peer.
func (s *Supervisor) fence(ctx context.Context, peer string, epoch uint32, journalBytes int64) (FenceResponse, error) {
	body, err := json.Marshal(FenceRequest{
		Epoch: epoch, Candidate: s.Self, JournalBytes: journalBytes,
	})
	if err != nil {
		return FenceResponse{}, err
	}
	rctx, cancel := context.WithTimeout(ctx, s.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		NormalizeURL(peer)+FencePath, bytes.NewReader(body))
	if err != nil {
		return FenceResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := s.client().Do(req)
	if err != nil {
		return FenceResponse{}, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return FenceResponse{}, fmt.Errorf("%s%s: %s", peer, FencePath, res.Status)
	}
	var resp FenceResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return FenceResponse{}, err
	}
	return resp, nil
}

// probeAll probes every group peer, plus the tail target when it is not a
// group member (followers may dial their leader through a relay or proxy
// address). Probes run concurrently; one slow member cannot starve the
// round. Callers hold s.mu.
func (s *Supervisor) probeAll(ctx context.Context, st NodeStatus) []peerView {
	targets := make([]string, 0, len(s.Group)+1)
	for _, m := range s.Group {
		if NormalizeURL(m) != NormalizeURL(s.Self) {
			targets = append(targets, m)
		}
	}
	if tail := NormalizeURL(st.Leader); tail != "" && tail != NormalizeURL(s.Self) && !s.inGroup(tail) {
		targets = append(targets, tail)
	}
	views := make([]peerView, len(targets))
	var wg sync.WaitGroup
	for i, url := range targets {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			views[i] = s.probe(ctx, url)
		}(i, url)
	}
	wg.Wait()
	return views
}

// probe reads one member's replication status.
func (s *Supervisor) probe(ctx context.Context, url string) peerView {
	v := peerView{URL: url}
	rctx, cancel := context.WithTimeout(ctx, s.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		NormalizeURL(url)+replicationPath, nil)
	if err != nil {
		v.Err = err
		return v
	}
	res, err := s.client().Do(req)
	if err != nil {
		v.Err = err
		return v
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		v.Err = fmt.Errorf("%s%s: %s", url, replicationPath, res.Status)
		return v
	}
	var dto probeDTO
	if err := json.NewDecoder(res.Body).Decode(&dto); err != nil {
		v.Err = err
		return v
	}
	v.Role = dto.Role
	v.Epoch = dto.Epoch
	v.PromisedEpoch = dto.PromisedEpoch
	v.JournalBytes = dto.JournalBytes
	v.Fenced = dto.Fenced
	v.Addr = dto.Addr
	if v.Addr == "" {
		v.Addr = NormalizeURL(url)
	}
	v.TailConnected = dto.Tail != nil && dto.Tail.Connected
	return v
}

// groupLeader picks the view to follow: the reachable, unfenced leader with
// the highest epoch at or beyond floor.
func groupLeader(views []peerView, floor uint32) (peerView, bool) {
	var best peerView
	var found bool
	for _, v := range views {
		if v.Err != nil || v.Fenced || v.Role != "leader" || v.Epoch < floor {
			continue
		}
		if !found || v.Epoch > best.Epoch {
			best, found = v, true
		}
	}
	return best, found
}

// inGroup reports whether addr is a group member.
func (s *Supervisor) inGroup(addr string) bool {
	addr = NormalizeURL(addr)
	for _, m := range s.Group {
		if NormalizeURL(m) == addr {
			return true
		}
	}
	return false
}

// jitter is a seed-deterministic holdoff fraction in [0, FailAfter).
func (s *Supervisor) jitter() time.Duration {
	if s.rng == nil {
		return 0
	}
	return time.Duration(s.rng.Int63n(int64(s.failAfter())))
}
