package failover

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeNode records every Node call the supervisor makes.
type fakeNode struct {
	mu        sync.Mutex
	st        NodeStatus
	confirms  int
	fences    []uint32
	winners   []string
	retargets []string
	promotes  []uint32
	promise   func(epoch uint32, candidate string, bytes int64) FenceResponse
}

func (n *fakeNode) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.st
}

func (n *fakeNode) Confirm() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.confirms++
	n.st.Confirmed = true
}

func (n *fakeNode) Fence(epoch uint32, winner string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fences = append(n.fences, epoch)
	n.winners = append(n.winners, winner)
	n.st.Fenced = true
}

func (n *fakeNode) Retarget(leader string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retargets = append(n.retargets, leader)
}

func (n *fakeNode) Promise(epoch uint32, candidate string, bytes int64) FenceResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promise != nil {
		return n.promise(epoch, candidate, bytes)
	}
	return FenceResponse{Granted: true, Epoch: n.st.Epoch, JournalBytes: n.st.JournalBytes}
}

func (n *fakeNode) PromoteTo(epoch uint32, reason string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.promotes = append(n.promotes, epoch)
	n.st.Role = "leader"
	n.st.Epoch = epoch
	return nil
}

// peer is an httptest group member: a fixed replication status plus an
// optional fence handler, recording every claim it receives.
type peer struct {
	srv *httptest.Server

	mu     sync.Mutex
	dto    probeDTO
	grant  bool
	holder string
	claims []FenceRequest
}

func newPeer(t *testing.T, dto probeDTO, grant bool, holder string) *peer {
	t.Helper()
	p := &peer{dto: dto, grant: grant, holder: holder}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+replicationPath, func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		d := p.dto
		p.mu.Unlock()
		if d.Addr == "" {
			d.Addr = p.srv.URL
		}
		json.NewEncoder(w).Encode(d)
	})
	mux.HandleFunc("POST "+FencePath, func(w http.ResponseWriter, r *http.Request) {
		var req FenceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.mu.Lock()
		p.claims = append(p.claims, req)
		resp := FenceResponse{Granted: p.grant, Epoch: p.dto.Epoch,
			JournalBytes: p.dto.JournalBytes, Holder: p.holder}
		p.mu.Unlock()
		json.NewEncoder(w).Encode(resp)
	})
	p.srv = httptest.NewServer(mux)
	t.Cleanup(p.srv.Close)
	return p
}

func (p *peer) lastClaim() (FenceRequest, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.claims) == 0 {
		return FenceRequest{}, false
	}
	return p.claims[len(p.claims)-1], true
}

// deadURL returns a member URL that refuses connections instantly.
func deadURL(t *testing.T) string {
	t.Helper()
	s := httptest.NewServer(http.NotFoundHandler())
	u := s.URL
	s.Close()
	return u
}

func newSup(node Node, self string, group []string) *Supervisor {
	return &Supervisor{
		Node: node, Self: self, Group: group,
		ProbeEvery: 10 * time.Millisecond,
		FailAfter:  20 * time.Millisecond,
		Seed:       1,
	}
}

// TestNormalizeURL: scheme promotion and slash trimming.
func TestNormalizeURL(t *testing.T) {
	cases := map[string]string{
		"":                       "",
		"  ":                     "",
		"127.0.0.1:7133":         "http://127.0.0.1:7133",
		"http://a:1/":            "http://a:1",
		"https://b.example:2///": "https://b.example:2",
	}
	for in, want := range cases {
		if got := NormalizeURL(in); got != want {
			t.Errorf("NormalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestElectionPromotesLongestSurvivor: the leader dies; the follower holding
// the longest journal assembles a death quorum and claims the next epoch.
func TestElectionPromotesLongestSurvivor(t *testing.T) {
	dead := deadURL(t)
	other := newPeer(t, probeDTO{
		Role: "follower", JournalBytes: 50, Epoch: 1,
		Tail: &struct {
			Connected bool `json:"connected"`
		}{Connected: false},
	}, true, "")

	self := "http://127.0.0.1:59991"
	node := &fakeNode{st: NodeStatus{
		Role: "follower", Epoch: 1, JournalBytes: 100,
		Leader: dead, Connected: false,
	}}
	sup := newSup(node, self, []string{self, other.srv.URL, dead})

	ctx := context.Background()
	sup.round(ctx) // arms deadSince
	if len(node.promotes) != 0 {
		t.Fatal("claimed before FailAfter elapsed")
	}
	time.Sleep(30 * time.Millisecond)
	sup.round(ctx) // FailAfter elapsed: quorum, claim, promote

	if len(node.promotes) != 1 || node.promotes[0] != 2 {
		t.Fatalf("promotes = %v, want [2]", node.promotes)
	}
	claim, ok := other.lastClaim()
	if !ok {
		t.Fatal("peer never saw a fencing claim")
	}
	if claim.Epoch != 2 || claim.Candidate != self || claim.JournalBytes != 100 {
		t.Fatalf("claim = %+v, want epoch 2 candidate %s bytes 100", claim, self)
	}
}

// TestElectionStandsBackForLongerPeer: a follower that sees a better-qualified
// survivor must not claim — it holds off so the longer journal wins.
func TestElectionStandsBackForLongerPeer(t *testing.T) {
	dead := deadURL(t)
	longer := newPeer(t, probeDTO{
		Role: "follower", JournalBytes: 500, Epoch: 1,
		Tail: &struct {
			Connected bool `json:"connected"`
		}{Connected: false},
	}, true, "")

	self := "http://127.0.0.1:59992"
	node := &fakeNode{st: NodeStatus{
		Role: "follower", Epoch: 1, JournalBytes: 100,
		Leader: dead, Connected: false,
	}}
	sup := newSup(node, self, []string{self, longer.srv.URL, dead})

	ctx := context.Background()
	sup.round(ctx)
	time.Sleep(30 * time.Millisecond)
	sup.round(ctx)

	if len(node.promotes) != 0 {
		t.Fatalf("promoted %v despite a longer peer", node.promotes)
	}
	if sup.holdUntil.IsZero() {
		t.Fatal("no holdoff recorded while standing back")
	}
	if _, ok := longer.lastClaim(); ok {
		t.Fatal("sent a fencing claim while standing back")
	}
}

// TestElectionNeedsQuorum: with every peer unreachable there is no death
// quorum, so the lone survivor must never promote itself (split-brain guard).
func TestElectionNeedsQuorum(t *testing.T) {
	dead := deadURL(t)
	deadPeer := deadURL(t)

	self := "http://127.0.0.1:59993"
	node := &fakeNode{st: NodeStatus{
		Role: "follower", Epoch: 1, JournalBytes: 100,
		Leader: dead, Connected: false,
	}}
	sup := newSup(node, self, []string{self, deadPeer, dead})

	ctx := context.Background()
	sup.round(ctx)
	time.Sleep(30 * time.Millisecond)
	sup.round(ctx)
	if len(node.promotes) != 0 {
		t.Fatalf("promoted %v without a quorum", node.promotes)
	}
}

// TestNoElectionWhileLeaderProbesAlive: a dropped stream alone is not death —
// while the tail target still answers probes as an unfenced leader, the
// follower must keep waiting (and retargeting is a no-op at the same addr).
func TestNoElectionWhileLeaderProbesAlive(t *testing.T) {
	leader := newPeer(t, probeDTO{Role: "leader", JournalBytes: 100, Epoch: 1}, false, "")

	self := "http://127.0.0.1:59994"
	node := &fakeNode{st: NodeStatus{
		Role: "follower", Epoch: 1, JournalBytes: 100,
		Leader: leader.srv.URL, Connected: false,
	}}
	sup := newSup(node, self, []string{self, leader.srv.URL, deadURL(t)})

	ctx := context.Background()
	sup.round(ctx)
	time.Sleep(30 * time.Millisecond)
	sup.round(ctx)
	if len(node.promotes) != 0 {
		t.Fatalf("promoted %v while the leader still answered probes", node.promotes)
	}
	if len(node.retargets) != 0 {
		t.Fatalf("retargeted %v onto the leader already tailed", node.retargets)
	}
}

// TestRetargetOntoNewLeader: a follower whose tail is down re-points at the
// group's current leader as soon as one exists — no election, no operator.
func TestRetargetOntoNewLeader(t *testing.T) {
	dead := deadURL(t)
	newLead := newPeer(t, probeDTO{Role: "leader", JournalBytes: 200, Epoch: 2}, false, "")

	self := "http://127.0.0.1:59995"
	node := &fakeNode{st: NodeStatus{
		Role: "follower", Epoch: 1, JournalBytes: 100,
		Leader: dead, Connected: false,
	}}
	sup := newSup(node, self, []string{self, newLead.srv.URL, dead})

	sup.round(context.Background())
	if len(node.retargets) != 1 || node.retargets[0] != newLead.srv.URL {
		t.Fatalf("retargets = %v, want [%s]", node.retargets, newLead.srv.URL)
	}
	if len(node.promotes) != 0 {
		t.Fatalf("promoted %v instead of retargeting", node.promotes)
	}
}

// TestLeaderFencesOnHigherEpoch: a leader that observes a peer serving a
// higher epoch has been deposed and must fence itself, naming the winner.
func TestLeaderFencesOnHigherEpoch(t *testing.T) {
	winner := newPeer(t, probeDTO{Role: "leader", JournalBytes: 300, Epoch: 5}, false, "")

	self := "http://127.0.0.1:59996"
	node := &fakeNode{st: NodeStatus{
		Role: "leader", Epoch: 3, JournalBytes: 300, Confirmed: true,
	}}
	sup := newSup(node, self, []string{self, winner.srv.URL, deadURL(t)})

	sup.round(context.Background())
	if len(node.fences) != 1 || node.fences[0] != 5 {
		t.Fatalf("fences = %v, want [5]", node.fences)
	}
	if node.winners[0] != winner.srv.URL {
		t.Fatalf("fence winner = %q, want %q", node.winners[0], winner.srv.URL)
	}
}

// TestLeaderConfirmRequiresQuorum: an unconfirmed leader confirms only after
// a probe round reaches a majority with no higher epoch or claim in flight.
func TestLeaderConfirmRequiresQuorum(t *testing.T) {
	self := "http://127.0.0.1:59997"

	// Round 1: both peers unreachable — reached = 1 < quorum 2, no confirm.
	node := &fakeNode{st: NodeStatus{Role: "leader", Epoch: 2, JournalBytes: 10}}
	sup := newSup(node, self, []string{self, deadURL(t), deadURL(t)})
	sup.round(context.Background())
	if node.confirms != 0 {
		t.Fatal("confirmed without reaching a quorum")
	}

	// Round 2: a reachable follower with an outstanding higher promise — the
	// contested term must not confirm.
	promised := newPeer(t, probeDTO{
		Role: "follower", JournalBytes: 10, Epoch: 2, PromisedEpoch: 3,
	}, false, "")
	node2 := &fakeNode{st: NodeStatus{Role: "leader", Epoch: 2, JournalBytes: 10}}
	sup2 := newSup(node2, self, []string{self, promised.srv.URL, deadURL(t)})
	sup2.round(context.Background())
	if node2.confirms != 0 {
		t.Fatal("confirmed while a higher-epoch claim was outstanding")
	}

	// Round 3: a clean follower at our epoch — quorum reached, confirm.
	clean := newPeer(t, probeDTO{Role: "follower", JournalBytes: 10, Epoch: 2}, false, "")
	node3 := &fakeNode{st: NodeStatus{Role: "leader", Epoch: 2, JournalBytes: 10}}
	sup3 := newSup(node3, self, []string{self, clean.srv.URL, deadURL(t)})
	sup3.round(context.Background())
	if node3.confirms != 1 {
		t.Fatalf("confirms = %d, want 1", node3.confirms)
	}
}

// TestManualPromoteLostNamesWinner: a claim denied by the group surfaces
// ElectionLost with the holder's address, so the caller can redirect.
func TestManualPromoteLostNamesWinner(t *testing.T) {
	winner := "http://winner.example:1"
	denyA := newPeer(t, probeDTO{Role: "follower", JournalBytes: 900, Epoch: 4}, false, winner)
	denyB := newPeer(t, probeDTO{Role: "follower", JournalBytes: 900, Epoch: 4}, false, winner)

	self := "http://127.0.0.1:59998"
	node := &fakeNode{st: NodeStatus{Role: "follower", Epoch: 4, JournalBytes: 100}}
	sup := newSup(node, self, []string{self, denyA.srv.URL, denyB.srv.URL})

	err := sup.ManualPromote(context.Background())
	var lost *ElectionLost
	if !errors.As(err, &lost) {
		t.Fatalf("ManualPromote = %v, want *ElectionLost", err)
	}
	if lost.Winner != winner {
		t.Fatalf("Winner = %q, want %q", lost.Winner, winner)
	}
	if lost.Epoch != 5 {
		t.Fatalf("claimed epoch %d, want maxSeen+1 = 5", lost.Epoch)
	}
	if len(node.promotes) != 0 {
		t.Fatalf("promoted %v despite losing the claim", node.promotes)
	}
}

// TestClaimFoldsDenialEpochs: even a failed claim advances the epoch floor,
// so the next claim does not reuse a term the group has moved past.
func TestClaimFoldsDenialEpochs(t *testing.T) {
	ahead := newPeer(t, probeDTO{Role: "follower", JournalBytes: 10, Epoch: 9}, false, "")

	self := "http://127.0.0.1:59999"
	node := &fakeNode{st: NodeStatus{Role: "follower", Epoch: 1, JournalBytes: 10}}
	sup := newSup(node, self, []string{self, ahead.srv.URL, deadURL(t)})

	// maxSeen becomes 9 via the probe; the claim must target 10, and with
	// one grant (local) of the required 2 it loses.
	err := sup.ManualPromote(context.Background())
	var lost *ElectionLost
	if !errors.As(err, &lost) {
		t.Fatalf("ManualPromote = %v, want *ElectionLost", err)
	}
	if lost.Epoch != 10 {
		t.Fatalf("claimed epoch %d, want 10", lost.Epoch)
	}
	sup.mu.Lock()
	defer sup.mu.Unlock()
	if sup.maxSeen < 9 {
		t.Fatalf("maxSeen = %d, want >= 9", sup.maxSeen)
	}
}

// TestFencedSupervisorIdles: a fenced node's supervisor must do nothing — no
// probes acted on, no elections, no retargets.
func TestFencedSupervisorIdles(t *testing.T) {
	self := "http://127.0.0.1:60000"
	node := &fakeNode{st: NodeStatus{Role: "follower", Fenced: true, Leader: deadURL(t)}}
	sup := newSup(node, self, []string{self, deadURL(t), deadURL(t)})
	sup.round(context.Background())
	time.Sleep(30 * time.Millisecond)
	sup.round(context.Background())
	if len(node.promotes)+len(node.retargets)+node.confirms != 0 {
		t.Fatalf("fenced supervisor acted: %+v", node)
	}
}
