package report

import (
	"strings"
	"testing"
	"time"
)

func TestGenerateSmallSubset(t *testing.T) {
	var sb strings.Builder
	err := Generate(&sb, Options{
		Seed:     7,
		Scale:    Small,
		Sections: []string{"fig1", "fig4", "validate"},
		Now:      time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"# ABG reproduction report",
		"## Figure 1",
		"## Figure 4",
		"## Theorem margins",
		"PASS",
		"Generated: 2026-07-06",
		"```",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q", frag)
		}
	}
	// Unselected sections must be absent.
	if strings.Contains(out, "## Figure 5") {
		t.Fatal("unselected section included")
	}
	if strings.Contains(out, "FAILED") {
		t.Fatal("a validation check failed inside the report")
	}
}

func TestGenerateUnknownSection(t *testing.T) {
	var sb strings.Builder
	if err := Generate(&sb, Options{Sections: []string{"nope"}}); err == nil {
		t.Fatal("unknown section accepted")
	}
}

func TestGenerateAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full small-scale report")
	}
	var sb strings.Builder
	if err := Generate(&sb, Options{Scale: Small}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range KnownSections() {
		_ = name // every section ran; spot-check a few headers below
	}
	for _, frag := range []string{"## Figure 5", "## Figure 6", "work-stealing", "historical"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("full report missing %q", frag)
		}
	}
}

func TestKnownSections(t *testing.T) {
	names := KnownSections()
	if len(names) != len(sections) {
		t.Fatal("section list mismatch")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate section %q", n)
		}
		seen[n] = true
	}
}
