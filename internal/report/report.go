// Package report generates a self-contained Markdown reproduction report:
// it runs the experiment suite at a chosen scale and renders every figure's
// results with the paper's reference claims alongside — the automated
// counterpart of this repository's hand-written EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"abg/internal/experiments"
	"abg/internal/validate"
)

// Scale selects the experiment sizes.
type Scale string

// Supported scales.
const (
	Small  Scale = "small"  // seconds; shapes only
	Medium Scale = "medium" // a minute; stable numbers at reduced size
	Full   Scale = "full"   // the paper's exact setup; tens of minutes
)

// Options configures Generate.
type Options struct {
	Seed  uint64
	Scale Scale
	// Sections lists the experiments to include; nil means all.
	// Known names: fig1, fig4, fig5, fig6, rsweep, gain, order, quantum,
	// adaptivel, steal, mixed, ratestudy, validate.
	Sections []string
	// Now stamps the report header; the zero value omits the timestamp.
	Now time.Time
}

type section struct {
	name  string
	title string
	ref   string // the paper's claim, quoted in the report
	run   func(cfg experiments.Config, scale Scale, w io.Writer) error
}

// Generate runs the selected experiments and writes the Markdown report.
func Generate(w io.Writer, opts Options) error {
	if opts.Scale == "" {
		opts.Scale = Small
	}
	cfg := experiments.Defaults()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	want := map[string]bool{}
	for _, s := range opts.Sections {
		want[s] = true
	}
	include := func(name string) bool { return len(want) == 0 || want[name] }

	fmt.Fprintf(w, "# ABG reproduction report\n\n")
	fmt.Fprintf(w, "Scale: %s · seed %d · machine P=%d, L=%d · r=%g, ρ=%g, δ=%g\n\n",
		opts.Scale, cfg.Seed, cfg.P, cfg.L, cfg.R, cfg.Rho, cfg.Delta)
	if !opts.Now.IsZero() {
		fmt.Fprintf(w, "Generated: %s\n\n", opts.Now.Format(time.RFC3339))
	}

	ran := 0
	for _, sec := range sections {
		if !include(sec.name) {
			continue
		}
		fmt.Fprintf(w, "## %s\n\n", sec.title)
		if sec.ref != "" {
			fmt.Fprintf(w, "Paper: %s\n\n", sec.ref)
		}
		fmt.Fprintf(w, "```\n")
		if err := sec.run(cfg, opts.Scale, w); err != nil {
			return fmt.Errorf("report: section %s: %w", sec.name, err)
		}
		fmt.Fprintf(w, "```\n\n")
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("report: no known sections among %v", opts.Sections)
	}
	return nil
}

// KnownSections lists the section names Generate accepts.
func KnownSections() []string {
	names := make([]string, len(sections))
	for i, s := range sections {
		names[i] = s.name
	}
	return names
}

// sections defines the report in order.
var sections = []section{
	{
		name: "fig1", title: "Figure 1 — request instability of A-Greedy",
		ref: "A-Greedy's request oscillates even at constant parallelism.",
		run: func(cfg experiments.Config, _ Scale, w io.Writer) error {
			res, err := experiments.Fig1(cfg)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "fig4", title: "Figure 4 — transient and steady-state behaviour",
		ref: "ABG: no overshoot, zero steady-state error, convergence rate r.",
		run: func(cfg experiments.Config, _ Scale, w io.Writer) error {
			res, err := experiments.Fig4(cfg)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "fig5", title: "Figure 5 — running time and waste vs transition factor",
		ref: "~20% running-time improvement and ~50% waste reduction on average.",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			f5 := experiments.DefaultFig5Config()
			f5.Config = cfg
			switch scale {
			case Small:
				f5.CLValues = []int{2, 10, 50, 100}
				f5.JobsPerCL, f5.Shrink = 4, 4
			case Medium:
				f5.CLValues = nil
				for cl := 2; cl <= 100; cl += 7 {
					f5.CLValues = append(f5.CLValues, cl)
				}
				f5.JobsPerCL, f5.Shrink = 15, 2
			}
			res, err := experiments.Fig5(f5)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "fig6", title: "Figure 6 — makespan and mean response time vs load",
		ref: "10–15% better at light load; comparable under heavy load.",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			f6 := experiments.DefaultFig6Config()
			f6.Config = cfg
			switch scale {
			case Small:
				f6.NumSets, f6.Shrink, f6.Bins = 20, 4, 6
			case Medium:
				f6.NumSets, f6.Bins = 150, 10
			}
			res, err := experiments.Fig6(f6)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "rsweep", title: "Footnote 3 — convergence-rate sensitivity",
		ref: "results stable for r < 0.6.",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			rs := experiments.DefaultRSweepConfig()
			rs.Config = cfg
			if scale == Small {
				rs.JobsPerPoint, rs.Shrink = 3, 4
			}
			res, err := experiments.RSweep(rs)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "gain", title: "Ablation — adaptive vs fixed-gain control",
		run: func(cfg experiments.Config, _ Scale, w io.Writer) error {
			res, err := experiments.GainAblation(cfg, 2, 64, cfg.L*2, 4)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "order", title: "Ablation — execution order",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			jobs := 8
			if scale == Small {
				jobs = 3
			}
			res, err := experiments.OrderAblation(cfg, []int{5, 20, 50}, jobs, 2)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "quantum", title: "Ablation — quantum length",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			jobs := 6
			if scale == Small {
				jobs = 2
			}
			res, err := experiments.QuantumLengthAblation(cfg,
				[]int{125, 250, 500, 1000, 2000}, []int{10, 40}, jobs, 2)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "adaptivel", title: "Extension — dynamic quantum length (§9)",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			jobs := 6
			if scale == Small {
				jobs = 2
			}
			res, err := experiments.AdaptiveQuantum(cfg, []int{5, 20, 50}, jobs, 2, cfg.L/8, cfg.L*2)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "steal", title: "Extension — work-stealing executors (§8)",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			jobs := 5
			if scale == Small {
				jobs = 2
			}
			res, err := experiments.Steal(cfg, []int{4, 16, 64}, jobs, 4)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "mixed", title: "Extension — mixed scheduler populations",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			sets := 30
			if scale == Small {
				sets = 8
			}
			res, err := experiments.Mixed(cfg, sets, 1.0, 2)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "ratestudy", title: "Extension — historical convergence-rate selection (§6.2 remark)",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			jobs := 8
			if scale == Small {
				jobs = 3
			}
			res, err := experiments.RateStudy(cfg, []int{10, 30, 60, 100}, jobs, 2)
			if err != nil {
				return err
			}
			return res.Render(w)
		},
	},
	{
		name: "validate", title: "Theorem margins vs simulation",
		run: func(cfg experiments.Config, scale Scale, w io.Writer) error {
			opts := validate.DefaultOptions()
			opts.Seed = cfg.Seed
			if scale == Small {
				opts.Trials = 8
			}
			var lines []string
			for _, c := range validate.All(opts) {
				lines = append(lines, c.String())
				if !c.Passed {
					lines = append(lines, "  ^^ FAILED")
				}
			}
			_, err := fmt.Fprintln(w, strings.Join(lines, "\n"))
			return err
		},
	},
}
