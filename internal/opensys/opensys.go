// Package opensys simulates an open multiprogrammed system: jobs arrive
// over time (Poisson process), are scheduled by the two-level framework
// under dynamic equi-partitioning, finish, and leave. Where the paper's
// Figure 6 measures closed batches, an open system exposes steady-state
// behaviour: mean response time as a function of the offered load, with the
// characteristic blow-up as the load approaches saturation.
//
// The run feeds the incremental sim.Engine: the arrival process is drawn
// deterministically from a seed, each arrival is submitted to the engine,
// and the engine is stepped to completion, with a warm-up prefix discarded
// when reporting. (A live, continuously-fed variant of the same engine is
// what abg/internal/server serves over HTTP.)
package opensys

import (
	"fmt"
	"math"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// Config describes an open-system run.
type Config struct {
	// Seed drives arrivals and job bodies.
	Seed uint64
	// P and L are the machine parameters.
	P, L int
	// Jobs is the number of arrivals to simulate; Warmup of them are
	// excluded from the reported statistics (defaults: 200 / 25%).
	Jobs, Warmup int
	// OfferedLoad is the target utilisation ρ ∈ (0, ~1): the arrival rate
	// is set to λ = ρ·P / E[T1], so work arrives at ρ times the machine's
	// processing capacity.
	OfferedLoad float64
	// CLMin..CLMax bounds the per-job transition factors.
	CLMin, CLMax int
	// Shrink divides job phase lengths.
	Shrink int
	// Policy and Scheduler define the task scheduler under test.
	Policy    feedback.Factory
	Scheduler sched.Scheduler
}

func (c *Config) normalize() error {
	if c.P < 1 || c.L < 1 {
		return fmt.Errorf("opensys: invalid machine P=%d L=%d", c.P, c.L)
	}
	if c.OfferedLoad <= 0 || c.OfferedLoad >= 2 {
		return fmt.Errorf("opensys: offered load %v out of range", c.OfferedLoad)
	}
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Jobs / 4
	}
	if c.Warmup >= c.Jobs {
		return fmt.Errorf("opensys: warmup %d >= jobs %d", c.Warmup, c.Jobs)
	}
	if c.CLMin < 1 || c.CLMax < c.CLMin {
		c.CLMin, c.CLMax = 2, 50
	}
	if c.Shrink < 1 {
		c.Shrink = 4
	}
	if c.Policy == nil {
		c.Policy = feedback.AControlFactory(0.2)
	}
	return nil
}

// Result summarises the post-warmup steady state.
type Result struct {
	// Jobs is the number of jobs measured (arrivals minus warmup).
	Jobs int
	// OfferedLoad echoes the configured load; RealizedLoad is the measured
	// total work divided by capacity over the measured span.
	OfferedLoad, RealizedLoad float64
	// Response summarises job response times (steps).
	Response stats.Summary
	// Slowdown summarises response / critical-path — how much worse than a
	// dedicated machine each job fared.
	Slowdown stats.Summary
	// MeanActiveJobs estimates the average multiprogramming level via
	// Little's law: λ · mean response.
	MeanActiveJobs float64
}

// Run simulates the open system.
func Run(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	rng := xrand.New(cfg.Seed)
	// Draw the job bodies first to learn the mean work, then place arrivals
	// at rate λ = ρ·P/E[T1].
	profiles := make([]*job.Profile, cfg.Jobs)
	var totalWork float64
	for i := range profiles {
		cl := rng.IntRange(cfg.CLMin, cfg.CLMax)
		profiles[i] = workload.GenJob(rng, workload.ScaledJobParams(cl, cfg.L, cfg.Shrink))
		totalWork += float64(profiles[i].Work())
	}
	meanWork := totalWork / float64(cfg.Jobs)
	lambda := cfg.OfferedLoad * float64(cfg.P) / meanWork // arrivals per step
	specs := make([]sim.JobSpec, cfg.Jobs)
	now := 0.0
	for i := range specs {
		now += rng.ExpFloat64() / lambda
		specs[i] = sim.JobSpec{
			Name:    fmt.Sprintf("j%d", i),
			Release: int64(now),
			Inst:    job.NewRun(profiles[i]),
			Policy:  cfg.Policy(),
			Sched:   cfg.Scheduler,
		}
	}
	eng, err := sim.NewEngine(sim.MultiConfig{
		P: cfg.P, L: cfg.L, Allocator: alloc.DynamicEquiPartition{},
	})
	if err != nil {
		return Result{}, err
	}
	for i := range specs {
		if _, err := eng.Submit(specs[i]); err != nil {
			return Result{}, err
		}
	}
	mres, err := eng.Run()
	if err != nil {
		return Result{}, err
	}
	res := Result{OfferedLoad: cfg.OfferedLoad}
	var responses, slowdowns []float64
	var measuredWork float64
	var firstRelease, lastCompletion int64 = math.MaxInt64, 0
	for i := cfg.Warmup; i < cfg.Jobs; i++ {
		j := mres.Jobs[i]
		responses = append(responses, float64(j.Response))
		slowdowns = append(slowdowns, float64(j.Response)/float64(j.CriticalPath))
		measuredWork += float64(j.Work)
		if j.Release < firstRelease {
			firstRelease = j.Release
		}
		if j.Completion > lastCompletion {
			lastCompletion = j.Completion
		}
	}
	res.Jobs = len(responses)
	res.Response = stats.Summarize(responses)
	res.Slowdown = stats.Summarize(slowdowns)
	if span := lastCompletion - firstRelease; span > 0 {
		res.RealizedLoad = measuredWork / (float64(span) * float64(cfg.P))
	}
	res.MeanActiveJobs = lambda * res.Response.Mean
	return res, nil
}

// Sweep runs the open system across offered loads with the same seed and
// returns one Result per load.
func Sweep(cfg Config, loads []float64) ([]Result, error) {
	out := make([]Result, 0, len(loads))
	for _, rho := range loads {
		c := cfg
		c.OfferedLoad = rho
		r, err := Run(c)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
