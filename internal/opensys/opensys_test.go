package opensys

import (
	"testing"

	"abg/internal/feedback"
	"abg/internal/sched"
)

func testCfg(load float64) Config {
	return Config{
		Seed: 11, P: 32, L: 50,
		Jobs: 60, Warmup: 15,
		OfferedLoad: load,
		CLMin:       2, CLMax: 16,
		Shrink:    8,
		Policy:    feedback.AControlFactory(0.2),
		Scheduler: sched.BGreedy(),
	}
}

func TestRunBasic(t *testing.T) {
	res, err := Run(testCfg(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 45 {
		t.Fatalf("measured jobs = %d", res.Jobs)
	}
	if res.Response.Mean <= 0 {
		t.Fatalf("mean response %v", res.Response.Mean)
	}
	// Every job's slowdown is at least ~1 (response ≥ critical path).
	if res.Slowdown.Min < 1-1e-9 {
		t.Fatalf("slowdown min %v < 1", res.Slowdown.Min)
	}
	if res.MeanActiveJobs <= 0 {
		t.Fatal("Little's-law estimate missing")
	}
	if res.RealizedLoad <= 0 || res.RealizedLoad > 1.5 {
		t.Fatalf("realized load %v implausible", res.RealizedLoad)
	}
}

func TestResponseGrowsWithLoad(t *testing.T) {
	// Steady-state response time must increase with offered load, sharply
	// near saturation.
	low, err := Run(testCfg(0.2))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(testCfg(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if high.Response.Mean <= low.Response.Mean {
		t.Fatalf("response did not grow with load: %v (ρ=0.9) vs %v (ρ=0.2)",
			high.Response.Mean, low.Response.Mean)
	}
}

func TestSweep(t *testing.T) {
	rs, err := Sweep(testCfg(0.1), []float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].OfferedLoad != 0.2 || rs[2].OfferedLoad != 0.8 {
		t.Fatal("loads not applied")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(testCfg(0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Response.Mean != b.Response.Mean || a.RealizedLoad != b.RealizedLoad {
		t.Fatal("open system is not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{P: 0, L: 10, OfferedLoad: 0.5},
		{P: 8, L: 0, OfferedLoad: 0.5},
		{P: 8, L: 10, OfferedLoad: 0},
		{P: 8, L: 10, OfferedLoad: 3},
		{P: 8, L: 10, OfferedLoad: 0.5, Jobs: 10, Warmup: 10},
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := Config{P: 16, L: 20, OfferedLoad: 0.3, Scheduler: sched.BGreedy()}
	if err := c.normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Jobs != 200 || c.Warmup != 50 || c.Policy == nil || c.Shrink < 1 {
		t.Fatalf("defaults: %+v", c)
	}
}

// TestABGBeatsAGreedyOpenSystem: the headline comparison holds in the open
// system at moderate load.
func TestABGBeatsAGreedyOpenSystem(t *testing.T) {
	abgCfg := testCfg(0.5)
	agCfg := testCfg(0.5)
	agCfg.Policy = feedback.AGreedyFactory(2, 0.8)
	agCfg.Scheduler = sched.Greedy()
	abg, err := Run(abgCfg)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Run(agCfg)
	if err != nil {
		t.Fatal(err)
	}
	if abg.Response.Mean > ag.Response.Mean*1.1 {
		t.Fatalf("ABG response %v materially worse than A-Greedy %v",
			abg.Response.Mean, ag.Response.Mean)
	}
}
