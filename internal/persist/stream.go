package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// StreamScanner incrementally decodes a journal byte stream arriving in
// arbitrary chunks, as when a follower tails a leader's journal over the
// replication transport. Feed appends raw bytes; Next yields each complete
// record in order.
//
// The error contract differs from ScanBytes on purpose. A file scan forgives
// a torn tail because a crash legitimately leaves one; a replication stream
// is served from the leader's clean prefix, so a bad length or checksum here
// means real corruption — a mis-resumed offset, a mangling proxy — and is a
// hard, sticky error. A record that is merely incomplete (the leader is
// mid-write, or the chunk boundary split it) is not an error: Next reports
// "no record yet" and waits for more bytes.
type StreamScanner struct {
	buf   []byte
	start int64 // absolute journal offset of buf[0]
	read  int   // bytes of buf already consumed by Next
	err   error
}

// NewStreamScanner returns a scanner whose first fed byte sits at absolute
// journal offset start (the resume offset the follower requested).
func NewStreamScanner(start int64) *StreamScanner {
	return &StreamScanner{start: start}
}

// Feed appends a chunk of journal bytes to the scanner's buffer.
func (s *StreamScanner) Feed(p []byte) {
	if s.err != nil || len(p) == 0 {
		return
	}
	// Compact consumed bytes before growing so a long-lived tail session
	// does not accumulate the whole journal in memory.
	if s.read > 0 {
		n := copy(s.buf, s.buf[s.read:])
		s.buf = s.buf[:n]
		s.start += int64(s.read)
		s.read = 0
	}
	s.buf = append(s.buf, p...)
}

// Next returns the next complete record, if one is buffered. ok is false
// when more bytes are needed; err is non-nil (and sticky) on corruption.
// The returned body is a copy and remains valid across further Feed calls.
func (s *StreamScanner) Next() (rec Record, ok bool, err error) {
	if s.err != nil {
		return Record{}, false, s.err
	}
	rest := s.buf[s.read:]
	if len(rest) < 8 {
		return Record{}, false, nil
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n < 5 || n > maxRecordLen {
		s.err = fmt.Errorf("persist: stream corrupt at offset %d: record length %d", s.Offset(), n)
		return Record{}, false, s.err
	}
	if uint64(len(rest)-8) < uint64(n) {
		return Record{}, false, nil
	}
	payload := rest[8 : 8+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		s.err = fmt.Errorf("persist: stream corrupt at offset %d: checksum mismatch", s.Offset())
		return Record{}, false, s.err
	}
	body := make([]byte, len(payload)-5)
	copy(body, payload[5:])
	s.read += 8 + int(n)
	return Record{
		Kind:  payload[0],
		Epoch: binary.LittleEndian.Uint32(payload[1:5]),
		Body:  body,
	}, true, nil
}

// Offset returns the absolute journal offset just past the last record
// returned by Next — the follower's applied-bytes position, and the offset
// to resume from after a reconnect.
func (s *StreamScanner) Offset() int64 {
	return s.start + int64(s.read)
}

// Buffered returns the number of fed bytes not yet consumed as whole
// records (a partial record the leader is still writing, typically).
func (s *StreamScanner) Buffered() int {
	return len(s.buf) - s.read
}
