package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzScanBytes throws arbitrary bytes — seeded with valid journals, torn
// tails, and bit flips — at the journal decoder. The contract under attack:
// the scan never panics, never over-reads, and either returns whole,
// checksum-verified records or reports the rest as truncation. Every clean
// record it does return must re-encode to exactly the bytes it came from
// (no silent misparse).
func FuzzScanBytes(f *testing.F) {
	// Seed: a valid three-record journal.
	valid := encodeJournal([][2]any{
		{KindHeader, []byte(`{"p":16,"l":100}`)},
		{KindSubmit, []byte(`{"base":0,"count":4}`)},
		{KindAdmit, []byte(`{"boundary":7,"ids":[0,1,2,3]}`)},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:9])                      // mid-first-record
	f.Add([]byte{})                       // empty
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // huge bogus length prefix
	flipped := append([]byte{}, valid...)
	flipped[12] ^= 0x40
	f.Add(flipped)
	// Mid-record truncations at every interesting cut of the second record:
	// inside its length/CRC header, exactly at the header/payload seam, and
	// one byte short of complete — the shapes a follower sees when it tails
	// the journal while the leader is mid-write.
	first := 8 + 5 + len(`{"p":16,"l":100}`)
	f.Add(valid[:first+3])  // inside second record's header
	f.Add(valid[:first+8])  // header complete, zero payload bytes
	f.Add(valid[:first+12]) // partial payload
	second := first + 8 + 5 + len(`{"base":0,"count":4}`)
	f.Add(valid[:second-1]) // one byte short of a whole record
	f.Add(valid[:second+8]) // third record: header only

	f.Fuzz(func(t *testing.T, data []byte) {
		res := ScanBytes(data)
		if res.CleanLen+res.TruncatedBytes != int64(len(data)) {
			t.Fatalf("accounting broken: clean %d + truncated %d != len %d",
				res.CleanLen, res.TruncatedBytes, len(data))
		}
		if res.CleanLen < 0 || res.TruncatedBytes < 0 {
			t.Fatalf("negative lengths: %+v", res)
		}
		// Re-encoding the accepted records must reproduce the clean prefix
		// byte for byte: the scan may only ever accept what a writer wrote.
		var rebuilt []byte
		for _, r := range res.Records {
			payload := binary.LittleEndian.AppendUint32([]byte{r.Kind}, r.Epoch)
			payload = append(payload, r.Body...)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
			rebuilt = append(rebuilt, hdr[:]...)
			rebuilt = append(rebuilt, payload...)
		}
		if !bytes.Equal(rebuilt, data[:res.CleanLen]) {
			t.Fatalf("clean prefix does not round-trip:\n got %x\nwant %x",
				rebuilt, data[:res.CleanLen])
		}
	})
}

// FuzzStreamScanner feeds arbitrary bytes to the incremental stream decoder
// in fuzz-chosen chunk sizes, draining records after every chunk — the
// interleaved partial reads a follower performs while tailing a journal the
// leader is mid-write on. The contract: however the bytes are chunked, the
// scanner yields exactly the records the batch scan accepts, in order, and
// its offset lands exactly on the clean-prefix length. Corruption may turn
// into a sticky error (stricter than ScanBytes), but never into a wrong or
// extra record.
func FuzzStreamScanner(f *testing.F) {
	valid := encodeJournal([][2]any{
		{KindHeader, []byte(`{"p":16,"l":100}`)},
		{KindSubmit, []byte(`{"base":0,"count":4}`)},
		{KindAdmit, []byte(`{"boundary":7,"ids":[0,1,2,3]}`)},
	})
	f.Add(valid, uint8(1))
	f.Add(valid, uint8(3))
	f.Add(valid, uint8(255))
	f.Add(valid[:len(valid)-5], uint8(2)) // mid-record truncation
	flipped := append([]byte{}, valid...)
	flipped[12] ^= 0x40
	f.Add(flipped, uint8(4)) // corrupt payload → sticky error
	f.Add([]byte{}, uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		want := ScanBytes(data)
		s := NewStreamScanner(0)
		var got []Record
		var streamErr error
		step := int(chunk)%17 + 1
		for i := 0; i < len(data) && streamErr == nil; i += step {
			end := i + step
			if end > len(data) {
				end = len(data)
			}
			s.Feed(data[i:end])
			for {
				rec, ok, err := s.Next()
				if err != nil {
					streamErr = err
					break
				}
				if !ok {
					break
				}
				got = append(got, rec)
			}
		}
		if len(got) > len(want.Records) {
			t.Fatalf("stream yielded %d records, batch scan only %d", len(got), len(want.Records))
		}
		for i, r := range got {
			w := want.Records[i]
			if r.Kind != w.Kind || !bytes.Equal(r.Body, w.Body) {
				t.Fatalf("record %d diverges: stream (%d, %x) vs batch (%d, %x)",
					i, r.Kind, r.Body, w.Kind, w.Body)
			}
		}
		if streamErr == nil {
			if len(got) != len(want.Records) {
				t.Fatalf("stream yielded %d records without error, batch scan %d", len(got), len(want.Records))
			}
			if s.Offset() != want.CleanLen {
				t.Fatalf("stream offset %d, batch clean length %d", s.Offset(), want.CleanLen)
			}
			if s.Buffered() != int(want.TruncatedBytes) {
				t.Fatalf("stream buffered %d, batch truncated %d", s.Buffered(), want.TruncatedBytes)
			}
		}
		// After a sticky error every further call must keep failing and
		// yield nothing.
		if streamErr != nil {
			s.Feed(valid)
			if _, ok, err := s.Next(); ok || err == nil {
				t.Fatalf("scanner recovered after sticky error: ok=%v err=%v", ok, err)
			}
		}
	})
}

// encodeJournal builds a journal image from (kind, body) pairs, all framed
// under epoch 1.
func encodeJournal(records [][2]any) []byte {
	var out []byte
	for _, r := range records {
		payload := binary.LittleEndian.AppendUint32([]byte{r[0].(byte)}, 1)
		payload = append(payload, r[1].([]byte)...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		out = append(out, hdr[:]...)
		out = append(out, payload...)
	}
	return out
}
