package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzScanBytes throws arbitrary bytes — seeded with valid journals, torn
// tails, and bit flips — at the journal decoder. The contract under attack:
// the scan never panics, never over-reads, and either returns whole,
// checksum-verified records or reports the rest as truncation. Every clean
// record it does return must re-encode to exactly the bytes it came from
// (no silent misparse).
func FuzzScanBytes(f *testing.F) {
	// Seed: a valid three-record journal.
	valid := encodeJournal([][2]any{
		{KindHeader, []byte(`{"p":16,"l":100}`)},
		{KindSubmit, []byte(`{"base":0,"count":4}`)},
		{KindAdmit, []byte(`{"boundary":7,"ids":[0,1,2,3]}`)},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])      // torn tail
	f.Add(valid[:9])                 // mid-first-record
	f.Add([]byte{})                  // empty
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // huge bogus length prefix
	flipped := append([]byte{}, valid...)
	flipped[12] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		res := ScanBytes(data)
		if res.CleanLen+res.TruncatedBytes != int64(len(data)) {
			t.Fatalf("accounting broken: clean %d + truncated %d != len %d",
				res.CleanLen, res.TruncatedBytes, len(data))
		}
		if res.CleanLen < 0 || res.TruncatedBytes < 0 {
			t.Fatalf("negative lengths: %+v", res)
		}
		// Re-encoding the accepted records must reproduce the clean prefix
		// byte for byte: the scan may only ever accept what a writer wrote.
		var rebuilt []byte
		for _, r := range res.Records {
			payload := append([]byte{r.Kind}, r.Body...)
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
			rebuilt = append(rebuilt, hdr[:]...)
			rebuilt = append(rebuilt, payload...)
		}
		if !bytes.Equal(rebuilt, data[:res.CleanLen]) {
			t.Fatalf("clean prefix does not round-trip:\n got %x\nwant %x",
				rebuilt, data[:res.CleanLen])
		}
	})
}

// encodeJournal builds a journal image from (kind, body) pairs.
func encodeJournal(records [][2]any) []byte {
	var out []byte
	for _, r := range records {
		payload := append([]byte{r[0].(byte)}, r[1].([]byte)...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		out = append(out, hdr[:]...)
		out = append(out, payload...)
	}
	return out
}
