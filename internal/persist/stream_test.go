package persist

import (
	"bytes"
	"testing"
)

// TestStreamScannerByteAtATime models the worst-case tail: every chunk is a
// single byte, as if the follower's reads always race the leader's writes.
// No record may surface before its final byte arrives, and each must surface
// exactly when it does.
func TestStreamScannerByteAtATime(t *testing.T) {
	recs := [][2]any{
		{KindHeader, []byte("hdr")},
		{KindStep, []byte{}},
		{KindSubmit, []byte("a longer body with some content")},
	}
	data := encodeJournal(recs)
	bounds := make(map[int]int) // byte offset after record i → i
	off := 0
	for i, r := range recs {
		off += 8 + 5 + len(r[1].([]byte))
		bounds[off] = i
	}

	s := NewStreamScanner(0)
	seen := 0
	for i := 0; i < len(data); i++ {
		s.Feed(data[i : i+1])
		rec, ok, err := s.Next()
		if err != nil {
			t.Fatalf("unexpected error at byte %d: %v", i, err)
		}
		idx, boundary := bounds[i+1]
		if ok != boundary {
			t.Fatalf("byte %d: got record=%v, want %v", i, ok, boundary)
		}
		if !ok {
			continue
		}
		want := recs[idx]
		if rec.Kind != want[0].(byte) || !bytes.Equal(rec.Body, want[1].([]byte)) {
			t.Fatalf("record %d: got (%d, %q), want (%d, %q)", idx, rec.Kind, rec.Body, want[0], want[1])
		}
		if s.Offset() != int64(i+1) {
			t.Fatalf("record %d: offset %d, want %d", idx, s.Offset(), i+1)
		}
		seen++
	}
	if seen != len(recs) {
		t.Fatalf("saw %d records, want %d", seen, len(recs))
	}
}

// TestStreamScannerResumeOffset checks that a scanner started mid-journal —
// a follower resuming after reconnect — reports absolute offsets.
func TestStreamScannerResumeOffset(t *testing.T) {
	data := encodeJournal([][2]any{
		{KindHeader, []byte("one")},
		{KindAdmit, []byte("two")},
	})
	firstLen := int64(8 + 5 + 3)
	s := NewStreamScanner(firstLen)
	s.Feed(data[firstLen:])
	rec, ok, err := s.Next()
	if err != nil || !ok {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	if rec.Kind != KindAdmit || string(rec.Body) != "two" {
		t.Fatalf("got (%d, %q)", rec.Kind, rec.Body)
	}
	if s.Offset() != int64(len(data)) {
		t.Fatalf("offset %d, want %d", s.Offset(), len(data))
	}
}

// TestStreamScannerCorruption checks that checksum damage is a sticky error,
// not a silent skip — a replication stream has no legitimate torn tail.
func TestStreamScannerCorruption(t *testing.T) {
	data := encodeJournal([][2]any{{KindHeader, []byte("good")}, {KindSubmit, []byte("bad!")}})
	data[len(data)-1] ^= 0x01
	s := NewStreamScanner(0)
	s.Feed(data)
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first record: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.Next(); ok || err == nil {
		t.Fatalf("corrupt record accepted: ok=%v err=%v", ok, err)
	}
	s.Feed(encodeJournal([][2]any{{KindDrain, []byte{}}}))
	if _, ok, err := s.Next(); ok || err == nil {
		t.Fatalf("scanner recovered after corruption: ok=%v err=%v", ok, err)
	}
}

// TestJournalSizeAndUpdated pins the replication-facing Journal surface:
// Size tracks the clean length exactly, and Updated wakes tailing readers on
// append and on close.
func TestJournalSizeAndUpdated(t *testing.T) {
	dir := t.TempDir()
	j, scan, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if scan.CleanLen != 0 || j.Size() != 0 {
		t.Fatalf("fresh journal: clean %d size %d", scan.CleanLen, j.Size())
	}
	ch := j.Updated()
	select {
	case <-ch:
		t.Fatal("Updated fired before any append")
	default:
	}
	if err := j.Append(KindHeader, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("Updated did not fire on append")
	}
	wantSize := int64(8 + 5 + 3)
	if j.Size() != wantSize {
		t.Fatalf("size %d, want %d", j.Size(), wantSize)
	}
	ch = j.Updated()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("Updated did not fire on close")
	}
	// Reopen: Size must resume from the scanned clean length.
	j2, scan2, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if scan2.CleanLen != wantSize || j2.Size() != wantSize {
		t.Fatalf("reopen: clean %d size %d, want %d", scan2.CleanLen, j2.Size(), wantSize)
	}
}
