// Package persist is the crash-safety layer of the repository: a write-ahead
// journal plus a compact binary codec for engine snapshots.
//
// The service layer (abg/internal/server) keeps all scheduler state in
// memory; this package makes that state survive process death. The design
// leans on the one property the simulator already guarantees — bit-identical
// replay determinism — so the journal only has to record the externally
// sourced nondeterminism of a run:
//
//   - the configuration the daemon booted with (machine, scheduler, armed
//     fault plan, seed) — the header record;
//   - every accepted job submission, with its generator spec and client
//     idempotency key, written before the submission is acknowledged;
//   - every admission decision: which job ids became schedulable at which
//     quantum boundary;
//   - drain commands;
//   - periodic engine snapshots, so recovery is snapshot + replay-tail
//     rather than re-execution from boundary zero.
//
// Everything else — allotments, quantum measurements, controller updates,
// fault decisions — is a pure function of that log and is recomputed
// bit-identically during recovery.
//
// # Record format
//
// The journal is a single append-only file of length-prefixed records:
//
//	[4 bytes little-endian payload length]
//	[4 bytes CRC32-Castagnoli of the payload]
//	[payload: 1 kind byte + 4 bytes little-endian leader epoch + body]
//
// The epoch is the replication-group leadership term under which the record
// was written. Within one journal epochs never decrease; they step up only
// at a KindEpoch record appended by a newly promoted leader, which is how a
// follower applying shipped bytes can tell a legitimate leadership change
// from a resurrected stale leader trying to fork history.
//
// A reader stops at the first record that does not check out — short
// header, short payload, or checksum mismatch — and reports the clean
// prefix length, so a torn tail write (the normal crash artifact) truncates
// to the last whole record instead of poisoning recovery. Corruption is
// never silently skipped: everything after the first bad byte is discarded.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record kinds. The byte values are part of the on-disk format; append new
// kinds, never renumber.
const (
	// KindHeader is the first record of every journal: the daemon
	// configuration the log was written under.
	KindHeader byte = 1
	// KindSubmit is one accepted submission (ids reserved, client acked).
	KindSubmit byte = 2
	// KindAdmit records that a set of job ids became schedulable at a
	// quantum boundary.
	KindAdmit byte = 3
	// KindDrain records that admission closed.
	KindDrain byte = 4
	// KindSnapshot is a full engine + server state snapshot.
	KindSnapshot byte = 5
	// KindStep records that the engine executed one quantum boundary. With
	// step records the journal is the daemon's complete op log — every state
	// transition is either a journaled record or a deterministic consequence
	// of one — which is what lets a replica reconstruct the leader's exact
	// state from nothing but a byte offset into this file. Idle boundaries
	// (no unfinished jobs, empty queue) are not journaled; they change no
	// replayable state and are reconstructed from the next record's boundary.
	KindStep byte = 6
	// KindEpoch records a leadership change: a newly promoted leader appends
	// it — framed under the new epoch — before resuming the run, so the epoch
	// bump is itself durable and ships to every downstream replica. The body
	// carries the new epoch again plus the new leader's advertised URL.
	KindEpoch byte = 7
)

// KindName returns a record kind's lowercase name (metric labels, logs);
// unknown kinds render as "unknown".
func KindName(k byte) string {
	switch k {
	case KindHeader:
		return "header"
	case KindSubmit:
		return "submit"
	case KindAdmit:
		return "admit"
	case KindDrain:
		return "drain"
	case KindSnapshot:
		return "snapshot"
	case KindStep:
		return "step"
	case KindEpoch:
		return "epoch"
	default:
		return "unknown"
	}
}

// Record is one decoded journal entry. Epoch is the leadership term stamped
// into the record's framing by the leader that wrote it.
type Record struct {
	Kind  byte
	Epoch uint32
	Body  []byte
}

// ---------------------------------------------------------------- binary enc

// Enc builds a length-delimited little-endian binary payload. The zero
// value is ready to use; Bytes returns the accumulated buffer.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
func (e *Enc) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Enc) Int(v int) { e.Varint(int64(v)) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a float64 by its exact IEEE-754 bits — snapshots must
// round-trip controller state bit-identically.
func (e *Enc) Float(v float64) { e.Uvarint(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Enc) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec decodes a payload written by Enc. Decoding never panics: the first
// malformed field puts the decoder in an error state and every later read
// returns zero values, so callers may decode a whole struct and check Err
// once at the end.
type Dec struct {
	buf []byte
	err error
}

// NewDec returns a decoder over the buffer.
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the first decoding error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.buf) }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: "+format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Varint reads a signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// Int reads an int-sized signed varint.
func (d *Dec) Int() int {
	v := d.Varint()
	if int64(int(v)) != v {
		d.fail("varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Bool reads one boolean byte.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) < 1 {
		d.fail("truncated bool")
		return false
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// Float reads a float64 stored as IEEE-754 bits.
func (d *Dec) Float() float64 { return math.Float64frombits(d.Uvarint()) }

// BytesField reads a length-prefixed byte slice (aliasing the input).
func (d *Dec) BytesField() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("byte field length %d exceeds remaining %d", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

// String reads a length-prefixed string.
func (d *Dec) String() string { return string(d.BytesField()) }
