package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JournalFile is the file name the journal lives under inside its directory.
const JournalFile = "abgd.wal"

// maxRecordLen bounds a single record so a corrupt length prefix cannot make
// a reader attempt a multi-gigabyte allocation. Snapshots of very large job
// sets are the biggest records; 1 GiB is far above any realistic one.
const maxRecordLen = 1 << 30

// castagnoli is the CRC32-C table used for every record checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when the journal fsyncs.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every appended record: an acknowledged
	// submission survives even a kernel or power crash.
	SyncAlways SyncPolicy = "always"
	// SyncSnapshot fsyncs only after snapshot records; other records reach
	// the OS page cache immediately (surviving process death) but may be
	// lost to a machine crash.
	SyncSnapshot SyncPolicy = "snapshot"
	// SyncNever never fsyncs explicitly; durability against machine crash
	// is left to the OS writeback. Process-death durability still holds.
	SyncNever SyncPolicy = "never"
)

// ParseSyncPolicy validates a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case "", SyncAlways:
		return SyncAlways, nil
	case SyncSnapshot, SyncNever:
		return SyncPolicy(s), nil
	default:
		return "", fmt.Errorf("persist: unknown fsync policy %q (want always, snapshot or never)", s)
	}
}

// ScanResult reports what a journal scan found.
type ScanResult struct {
	// Records is the clean prefix of the journal, in order.
	Records []Record
	// CleanLen is the byte offset after the last whole record.
	CleanLen int64
	// TruncatedBytes is the length of the torn or corrupt tail beyond
	// CleanLen (zero for a clean journal).
	TruncatedBytes int64
}

// recordOverhead is the fixed per-record framing cost beyond the body: the
// 8-byte length/CRC header, the kind byte, and the 4-byte epoch.
const recordOverhead = 8 + 1 + 4

// ScanBytes decodes the record stream from an in-memory journal image. It
// never fails: a torn or corrupt tail terminates the scan and is reported
// in TruncatedBytes. Record bodies alias data.
func ScanBytes(data []byte) ScanResult {
	var res ScanResult
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < 8 {
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n < 5 || n > maxRecordLen || uint64(len(rest)-8) < uint64(n) {
			break
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		res.Records = append(res.Records, Record{
			Kind:  payload[0],
			Epoch: binary.LittleEndian.Uint32(payload[1:5]),
			Body:  payload[5:],
		})
		off += 8 + int64(n)
	}
	res.CleanLen = off
	res.TruncatedBytes = int64(len(data)) - off
	return res
}

// ScanFile reads and decodes the journal file at path. A missing file is an
// empty journal, not an error.
func ScanFile(path string) (ScanResult, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ScanResult{}, nil
	}
	if err != nil {
		return ScanResult{}, fmt.Errorf("persist: read journal: %w", err)
	}
	return ScanBytes(data), nil
}

// Metrics receives the journal's low-level I/O measurements. The journal
// calls it synchronously from the append path, so implementations must be
// cheap and concurrency-safe (atomic counters, not I/O). persist stays free
// of an obs dependency; the server layer adapts this interface onto its
// metric registry.
type Metrics interface {
	// JournalAppend reports one appended record: its kind byte, on-disk
	// size including the length/CRC header, and the write duration
	// (excluding any fsync).
	JournalAppend(kind byte, bytes int, d time.Duration)
	// JournalSync reports one fsync and its duration.
	JournalSync(d time.Duration)
}

// Journal is the append side of the write-ahead log. Appends are serialised
// internally, so HTTP handlers and the quantum-clock driver can share one
// Journal.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	policy  SyncPolicy
	path    string
	size    int64         // bytes of whole records on disk (the clean length)
	updated chan struct{} // closed and replaced after every append
	syncErr error         // test hook: forced fsync failure
	synced  bool          // no unsynced bytes since the last fsync
	lag     int           // records appended since the last fsync
	epoch   uint32        // leadership term stamped into appended records
	metrics Metrics
}

// Size returns the journal's clean length in bytes: the offset just past the
// last whole appended record. Replication ships the byte range [offset, Size)
// to followers, so this is the leader's replication high-water mark.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Updated returns a channel that is closed the next time a record is
// appended. Each append replaces the channel, so tailing readers re-fetch it
// after every wakeup:
//
//	for {
//		ch := j.Updated()
//		... stream bytes up to j.Size() ...
//		<-ch
//	}
func (j *Journal) Updated() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.updated
}

// FailSyncForTest forces every subsequent fsync to fail with err (nil
// restores normal behaviour). Test hook for exercising the drain-time
// sync-failure path; never set in production code.
func (j *Journal) FailSyncForTest(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncErr = err
}

// SetMetrics installs (or, with nil, removes) the I/O measurement sink.
func (j *Journal) SetMetrics(m Metrics) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.metrics = m
}

// Epoch returns the leadership term the journal currently stamps into
// appended records: the highest epoch scanned at Open, raised by SetEpoch at
// promotion or by AppendRecord when a shipped record carries a higher term.
func (j *Journal) Epoch() uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// SetEpoch raises the journal's epoch. Lower values are ignored: within one
// journal the epoch is monotonic by construction.
func (j *Journal) SetEpoch(e uint32) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if e > j.epoch {
		j.epoch = e
	}
}

// Lag returns the number of records appended since the last successful
// fsync — the journal's durability debt. Zero under SyncAlways; under the
// laxer policies it is the count of acknowledged records a machine crash
// could lose, which /healthz compares against its configured ceiling.
func (j *Journal) Lag() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lag
}

// Open opens (creating if needed) the journal in dir for appending,
// truncating any torn tail left by a crash first. It returns the journal
// and the scan of the existing clean records, which recovery replays.
func Open(dir string, policy SyncPolicy) (*Journal, ScanResult, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, ScanResult{}, fmt.Errorf("persist: journal dir: %w", err)
	}
	path := filepath.Join(dir, JournalFile)
	scan, err := ScanFile(path)
	if err != nil {
		return nil, ScanResult{}, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, ScanResult{}, fmt.Errorf("persist: open journal: %w", err)
	}
	if scan.TruncatedBytes > 0 {
		if err := f.Truncate(scan.CleanLen); err != nil {
			f.Close()
			return nil, ScanResult{}, fmt.Errorf("persist: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(scan.CleanLen, io.SeekStart); err != nil {
		f.Close()
		return nil, ScanResult{}, fmt.Errorf("persist: seek journal end: %w", err)
	}
	epoch := uint32(1)
	for _, r := range scan.Records {
		if r.Epoch > epoch {
			epoch = r.Epoch
		}
	}
	j := &Journal{
		f:       f,
		policy:  policy,
		path:    path,
		size:    scan.CleanLen,
		updated: make(chan struct{}),
		synced:  true,
		epoch:   epoch,
	}
	return j, scan, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record (kind + body) stamped with the journal's current
// epoch, and applies the sync policy. The record is on disk — or at least in
// the OS page cache, surviving process death — when Append returns, so
// callers can acknowledge clients after it.
func (j *Journal) Append(kind byte, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(kind, j.epoch, body)
}

// AppendRecord re-appends a record decoded from a replication stream,
// preserving its framing epoch verbatim — a follower's journal must stay a
// byte copy of the leader's. A record carrying a higher epoch (the shipped
// KindEpoch of a promotion) raises the journal's own epoch with it.
func (j *Journal) AppendRecord(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Epoch > j.epoch {
		j.epoch = rec.Epoch
	}
	return j.appendLocked(rec.Kind, rec.Epoch, rec.Body)
}

func (j *Journal) appendLocked(kind byte, epoch uint32, body []byte) error {
	if j.f == nil {
		return fmt.Errorf("persist: journal closed")
	}
	payload := make([]byte, 0, 5+len(body))
	payload = append(payload, kind)
	payload = binary.LittleEndian.AppendUint32(payload, epoch)
	payload = append(payload, body...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	// One write call for header+payload keeps the torn-write window to a
	// single record.
	rec := append(hdr[:], payload...)
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("persist: append: %w", err)
	}
	if j.metrics != nil {
		j.metrics.JournalAppend(kind, len(rec), time.Since(start))
	}
	j.size += int64(len(rec))
	close(j.updated)
	j.updated = make(chan struct{})
	j.synced = false
	j.lag++
	if j.policy == SyncAlways || (j.policy == SyncSnapshot && kind == KindSnapshot) {
		return j.syncLocked()
	}
	return nil
}

// Sync forces an fsync regardless of policy (used at clean shutdown).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.synced {
		return nil
	}
	if j.syncErr != nil {
		return fmt.Errorf("persist: fsync: %w", j.syncErr)
	}
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("persist: fsync: %w", err)
	}
	if j.metrics != nil {
		j.metrics.JournalSync(time.Since(start))
	}
	j.synced = true
	j.lag = 0
	return nil
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	// Wake tailing readers so they observe the closed journal instead of
	// blocking forever; no more appends will replace the channel.
	close(j.updated)
	return err
}
