package persist

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestEncDecRoundTrip pins the binary codec: every field type round-trips
// exactly, including float bit patterns.
func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.Uvarint(0)
	e.Uvarint(1 << 60)
	e.Varint(-12345)
	e.Int(42)
	e.Bool(true)
	e.Bool(false)
	e.Float(0.1 + 0.2) // not exactly 0.3 — bit identity matters
	e.Float(math.Inf(-1))
	e.BytesField([]byte{1, 2, 3})
	e.String("hello")
	e.String("")

	d := NewDec(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.Uvarint(); got != 1<<60 {
		t.Errorf("uvarint = %d", got)
	}
	if got := d.Varint(); got != -12345 {
		t.Errorf("varint = %d", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools corrupted")
	}
	if got := d.Float(); math.Float64bits(got) != math.Float64bits(0.1+0.2) {
		t.Errorf("float bits differ: %v", got)
	}
	if got := d.Float(); !math.IsInf(got, -1) {
		t.Errorf("float = %v, want -Inf", got)
	}
	if got := d.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Errorf("string = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("string = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Len() != 0 {
		t.Errorf("%d bytes left over", d.Len())
	}
}

// TestDecTruncated pins that a truncated buffer reports an error instead of
// panicking or returning garbage silently.
func TestDecTruncated(t *testing.T) {
	var e Enc
	e.String("payload")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		_ = d.String()
		if d.Err() == nil && cut < len(full) {
			t.Fatalf("cut at %d: no error", cut)
		}
	}
}

// TestJournalAppendScan pins the basic append → scan round trip, including
// reopen-for-append.
func TestJournalAppendScan(t *testing.T) {
	dir := t.TempDir()
	j, scan, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.TruncatedBytes != 0 {
		t.Fatalf("fresh journal scan = %+v", scan)
	}
	records := [][2]any{
		{KindHeader, []byte(`{"p":16}`)},
		{KindSubmit, []byte(`{"base":0}`)},
		{KindAdmit, []byte(`{"boundary":3}`)},
		{KindDrain, []byte{}},
	}
	for _, r := range records {
		if err := j.Append(r[0].(byte), r[1].([]byte)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the old records must scan back, and appends must continue.
	j2, scan2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan2.Records) != len(records) {
		t.Fatalf("reopen scan found %d records, want %d", len(scan2.Records), len(records))
	}
	for i, r := range records {
		got := scan2.Records[i]
		if got.Kind != r[0].(byte) || !bytes.Equal(got.Body, r[1].([]byte)) {
			t.Errorf("record %d = kind %d body %q", i, got.Kind, got.Body)
		}
	}
	if err := j2.Append(KindSnapshot, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	scan3, err := ScanFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(scan3.Records); n != len(records)+1 {
		t.Fatalf("final scan found %d records, want %d", n, len(records)+1)
	}
}

// TestJournalTornTail pins crash semantics: a partial record at the tail is
// detected, reported, and truncated away on reopen; the clean prefix
// survives.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(KindHeader, []byte("hdr"))
	j.Append(KindSubmit, []byte("sub"))
	j.Close()
	path := filepath.Join(dir, JournalFile)
	clean, _ := os.ReadFile(path)

	// Simulate every possible torn write of a third record.
	var e [8]byte
	payload := append([]byte{KindAdmit}, []byte("admit-body")...)
	binary.LittleEndian.PutUint32(e[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e[4:8], 0xdeadbeef) // wrong CRC too
	full := append(append([]byte{}, e[:]...), payload...)
	for cut := 1; cut <= len(full); cut++ {
		if err := os.WriteFile(path, append(append([]byte{}, clean...), full[:cut]...), 0o666); err != nil {
			t.Fatal(err)
		}
		j2, scan, err := Open(dir, SyncNever)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(scan.Records) != 2 {
			t.Fatalf("cut %d: %d clean records, want 2", cut, len(scan.Records))
		}
		if scan.TruncatedBytes != int64(cut) {
			t.Fatalf("cut %d: truncated %d bytes", cut, scan.TruncatedBytes)
		}
		// The reopened journal must have physically dropped the tail and
		// accept new appends cleanly.
		if err := j2.Append(KindDrain, nil); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		scan2, err := ScanFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(scan2.Records) != 3 || scan2.TruncatedBytes != 0 {
			t.Fatalf("cut %d: post-repair scan %d records, %d truncated",
				cut, len(scan2.Records), scan2.TruncatedBytes)
		}
		// Restore the two-record prefix for the next iteration.
		if err := os.WriteFile(path, clean, 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalBitFlip pins that a checksum catches payload corruption: the
// scan stops at the flipped record rather than returning corrupt bytes.
func TestJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(KindHeader, []byte("one"))
	j.Append(KindSubmit, []byte("two"))
	j.Append(KindAdmit, []byte("three"))
	j.Close()
	path := filepath.Join(dir, JournalFile)
	clean, _ := os.ReadFile(path)

	// Flip one bit in the *second* record's payload.
	off := 8 + 5 + len("one") + 8 + 5 // into "two"
	mut := append([]byte{}, clean...)
	mut[off] ^= 0x10
	scan := ScanBytes(mut)
	if len(scan.Records) != 1 {
		t.Fatalf("scan after bit flip kept %d records, want 1", len(scan.Records))
	}
	if scan.TruncatedBytes == 0 {
		t.Fatal("bit flip not reported as truncation")
	}
}

// TestJournalEpoch pins the epoch framing: appends are stamped with the
// journal's current epoch, SetEpoch is monotonic, AppendRecord preserves a
// shipped record's epoch verbatim (raising the journal's own), and a reopen
// resumes at the highest epoch on disk.
func TestJournalEpoch(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if j.Epoch() != 1 {
		t.Fatalf("fresh journal epoch = %d, want 1", j.Epoch())
	}
	j.Append(KindHeader, []byte("hdr"))
	j.SetEpoch(3)
	j.SetEpoch(2) // lower: ignored
	if j.Epoch() != 3 {
		t.Fatalf("epoch after SetEpoch(3), SetEpoch(2) = %d, want 3", j.Epoch())
	}
	j.Append(KindEpoch, []byte("promoted"))
	// A shipped record from a higher term raises the journal's epoch too.
	if err := j.AppendRecord(Record{Kind: KindStep, Epoch: 5, Body: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	if j.Epoch() != 5 {
		t.Fatalf("epoch after AppendRecord(epoch 5) = %d, want 5", j.Epoch())
	}
	j.Close()

	scan, err := ScanFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	wantEpochs := []uint32{1, 3, 5}
	if len(scan.Records) != len(wantEpochs) {
		t.Fatalf("scanned %d records, want %d", len(scan.Records), len(wantEpochs))
	}
	for i, want := range wantEpochs {
		if scan.Records[i].Epoch != want {
			t.Errorf("record %d epoch = %d, want %d", i, scan.Records[i].Epoch, want)
		}
	}
	j2, _, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Epoch() != 5 {
		t.Fatalf("reopened epoch = %d, want 5", j2.Epoch())
	}
}

// TestParseSyncPolicy pins the flag values.
func TestParseSyncPolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "snapshot", "never"} {
		if _, err := ParseSyncPolicy(ok); err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

// countingMetrics is a test Metrics sink recording every callback.
type countingMetrics struct {
	appends int
	bytes   int
	kinds   []byte
	syncs   int
}

func (m *countingMetrics) JournalAppend(kind byte, n int, _ time.Duration) {
	m.appends++
	m.bytes += n
	m.kinds = append(m.kinds, kind)
}

func (m *countingMetrics) JournalSync(_ time.Duration) { m.syncs++ }

func TestJournalLagAndMetrics(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var m countingMetrics
	j.SetMetrics(&m)

	body := []byte("payload")
	for i := 0; i < 3; i++ {
		if err := j.Append(KindSubmit, body); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Lag(); got != 3 {
		t.Fatalf("lag under SyncNever = %d, want 3", got)
	}
	if m.appends != 3 || m.syncs != 0 {
		t.Fatalf("appends=%d syncs=%d, want 3/0", m.appends, m.syncs)
	}
	// On-disk size per record: 8-byte header + kind + epoch + body.
	if want := 3 * (8 + 5 + len(body)); m.bytes != want {
		t.Fatalf("bytes = %d, want %d", m.bytes, want)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.Lag(); got != 0 {
		t.Fatalf("lag after Sync = %d, want 0", got)
	}
	if m.syncs != 1 {
		t.Fatalf("syncs = %d, want 1", m.syncs)
	}
	// A redundant Sync with no new bytes is a no-op, not another fsync.
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if m.syncs != 1 {
		t.Fatalf("redundant sync fsynced anyway: %d", m.syncs)
	}
}

func TestJournalLagByPolicy(t *testing.T) {
	// SyncAlways never accumulates lag.
	ja, _, err := Open(t.TempDir(), SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer ja.Close()
	var ma countingMetrics
	ja.SetMetrics(&ma)
	if err := ja.Append(KindSubmit, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if ja.Lag() != 0 || ma.syncs != 1 {
		t.Fatalf("SyncAlways lag=%d syncs=%d, want 0/1", ja.Lag(), ma.syncs)
	}
	// SyncSnapshot accumulates until a snapshot record flushes the debt.
	js, _, err := Open(t.TempDir(), SyncSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	if err := js.Append(KindSubmit, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := js.Append(KindAdmit, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := js.Lag(); got != 2 {
		t.Fatalf("SyncSnapshot pre-snapshot lag = %d, want 2", got)
	}
	if err := js.Append(KindSnapshot, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got := js.Lag(); got != 0 {
		t.Fatalf("SyncSnapshot post-snapshot lag = %d, want 0", got)
	}
}
