package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// RSweepConfig sizes the convergence-rate sensitivity experiment
// (footnote 3: "the results do not deviate too much for all values of
// convergence rate less than 0.6").
type RSweepConfig struct {
	Config
	// Rs are the convergence rates to sweep.
	Rs []float64
	// CLValues are the transition factors tested at each rate.
	CLValues []int
	// JobsPerPoint is the number of random jobs per (r, C_L) pair.
	JobsPerPoint int
	// Shrink divides phase lengths.
	Shrink int
}

// DefaultRSweepConfig returns a sweep of r from 0 to 0.8.
func DefaultRSweepConfig() RSweepConfig {
	return RSweepConfig{
		Config:       Defaults(),
		Rs:           []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		CLValues:     []int{5, 20, 50, 100},
		JobsPerPoint: 10,
		Shrink:       2,
	}
}

// RSweepPoint is the averaged outcome at one convergence rate.
type RSweepPoint struct {
	R       float64
	Runtime float64 // mean T/T∞ over all jobs
	Waste   float64 // mean W/T1 over all jobs
}

// RSweepResult is the sensitivity sweep outcome.
type RSweepResult struct {
	Points []RSweepPoint
}

// RSweep runs ABG with different convergence rates on the same set of jobs
// and reports the averaged normalized runtime and waste per rate.
func RSweep(cfg RSweepConfig) (RSweepResult, error) {
	if len(cfg.Rs) == 0 || len(cfg.CLValues) == 0 || cfg.JobsPerPoint < 1 {
		return RSweepResult{}, fmt.Errorf("experiments: empty RSweep config")
	}
	if cfg.Shrink < 1 {
		cfg.Shrink = 1
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	// Draw the job population once so every r sees identical jobs.
	root := xrand.New(cfg.Seed)
	var profiles []*job.Profile
	for _, cl := range cfg.CLValues {
		for j := 0; j < cfg.JobsPerPoint; j++ {
			profiles = append(profiles, workload.GenJob(root, workload.ScaledJobParams(cl, cfg.L, cfg.Shrink)))
		}
	}
	res := RSweepResult{}
	for _, r := range cfg.Rs {
		var rt, ws stats.Welford
		for _, p := range profiles {
			out, err := sim.RunSingle(job.NewRun(p), feedback.NewAControl(r), cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: cfg.L})
			if err != nil {
				return res, err
			}
			recordSingle(out.NumQuanta, out.Runtime, out.Waste)
			rt.Add(out.NormalizedRuntime())
			ws.Add(out.NormalizedWaste())
		}
		res.Points = append(res.Points, RSweepPoint{R: r, Runtime: rt.Mean(), Waste: ws.Mean()})
	}
	return res, nil
}

// Render writes the sweep as a table.
func (r RSweepResult) Render(w io.Writer) error {
	tb := table.New("r", "T/T∞", "W/T1")
	for _, p := range r.Points {
		tb.AddRowf(p.R, p.Runtime, p.Waste)
	}
	return tb.Render(w)
}
