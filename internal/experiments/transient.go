package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/control"
	"abg/internal/job"
	"abg/internal/sim"
	"abg/internal/table"
	"abg/internal/workload"
)

// TransientResult is the outcome of the constant-parallelism transient
// experiments (Figures 1 and 4): the request traces of both schedulers on a
// job whose parallelism stays constant, plus the control-theoretic metrics
// of §4 measured on those traces.
type TransientResult struct {
	// Width is the job's constant parallelism (the target the requests
	// should converge to).
	Width int
	// Quanta is the number of scheduling quanta the traces cover.
	Quanta int
	// ABGRequests and AGreedyRequests are the d(q) traces (one value per
	// quantum, first quantum's request is d(1)=1).
	ABGRequests, AGreedyRequests []float64
	// ABG and AGreedy are the measured transient/steady-state metrics
	// against the target Width.
	ABG, AGreedy control.ResponseMetrics
	// ABGOscillations and AGreedyOscillations count target crossings
	// (Figure 1's instability, quantified).
	ABGOscillations, AGreedyOscillations int
	// ABGTotalVariation and AGreedyTotalVariation measure total request
	// movement Σ|d(q+1)−d(q)| — proportional to processor reallocations.
	ABGTotalVariation, AGreedyTotalVariation float64
}

// Transient runs the constant-parallelism experiment for the given job
// width and reports the first `quanta` scheduling quanta (the figures' time
// horizon). The job itself is sized a little larger because the warm-up
// quanta, where the request is still below the parallelism, complete less
// work than a fully-allotted quantum.
func Transient(cfg Config, width, quanta int) (TransientResult, error) {
	res := TransientResult{Width: width, Quanta: quanta}
	profile := workload.ConstantJob(width, quanta+4, cfg.L)
	allocator := alloc.NewUnconstrained(cfg.P)

	abg, err := sim.RunSingle(job.NewRun(profile), cfg.abgPolicy(), cfg.abgScheduler(),
		allocator, sim.SingleConfig{L: cfg.L, KeepTrace: true})
	if err != nil {
		return res, fmt.Errorf("experiments: transient ABG run: %w", err)
	}
	ag, err := sim.RunSingle(job.NewRun(profile), cfg.agreedyPolicy(), cfg.agreedyScheduler(),
		allocator, sim.SingleConfig{L: cfg.L, KeepTrace: true})
	if err != nil {
		return res, fmt.Errorf("experiments: transient A-Greedy run: %w", err)
	}
	truncate := func(xs []float64) []float64 {
		if len(xs) > quanta {
			return xs[:quanta]
		}
		return xs
	}
	res.ABGRequests = truncate(abg.Requests())
	res.AGreedyRequests = truncate(ag.Requests())
	target := float64(width)
	res.ABG = control.Measure(res.ABGRequests, target)
	res.AGreedy = control.Measure(res.AGreedyRequests, target)
	res.ABGOscillations = control.OscillationCount(res.ABGRequests, target)
	res.AGreedyOscillations = control.OscillationCount(res.AGreedyRequests, target)
	res.ABGTotalVariation = control.TotalVariation(res.ABGRequests)
	res.AGreedyTotalVariation = control.TotalVariation(res.AGreedyRequests)
	return res, nil
}

// Fig1 reproduces Figure 1 — the request instability of A-Greedy on a
// constant-parallelism job, observed over a longer horizon.
func Fig1(cfg Config) (TransientResult, error) {
	return Transient(cfg, 12, 30)
}

// Fig4 reproduces Figure 4 — the transient and steady-state behaviour of
// ABG vs A-Greedy over 8 scheduling quanta on a constant-parallelism job
// (the paper uses r=0.2 and ρ=2; parallelism ~12 as read off the figure).
func Fig4(cfg Config) (TransientResult, error) {
	return Transient(cfg, 12, 8)
}

// Render writes the request traces and metrics as text.
func (r TransientResult) Render(w io.Writer) error {
	tb := table.New("quantum", "parallelism", "ABG request", "A-Greedy request")
	n := len(r.ABGRequests)
	if len(r.AGreedyRequests) > n {
		n = len(r.AGreedyRequests)
	}
	at := func(xs []float64, i int) string {
		if i < len(xs) {
			return fmt.Sprintf("%.3f", xs[i])
		}
		return "-"
	}
	for i := 0; i < n; i++ {
		tb.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", r.Width),
			at(r.ABGRequests, i), at(r.AGreedyRequests, i))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	mt := table.New("metric", "ABG", "A-Greedy")
	mt.AddRowf("steady-state error", r.ABG.SteadyStateError, r.AGreedy.SteadyStateError)
	mt.AddRowf("max overshoot", r.ABG.MaxOvershoot, r.AGreedy.MaxOvershoot)
	mt.AddRowf("settling time (quanta)", r.ABG.SettlingTime, r.AGreedy.SettlingTime)
	mt.AddRowf("oscillations (target crossings)", r.ABGOscillations, r.AGreedyOscillations)
	mt.AddRowf("total request variation", r.ABGTotalVariation, r.AGreedyTotalVariation)
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return mt.Render(w)
}
