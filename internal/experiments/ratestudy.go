package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// RateStudyResult compares the paper's fixed convergence rate with the
// historical-characterization rate selection its §6.2 remark assumes
// (implemented as feedback.AutoRate). The paper itself notes that its
// simulations use r=0.2 even though that violates the r < 1/C_L requirement
// for C_L ≥ 5; this study quantifies the difference.
type RateStudyResult struct {
	Policies []string
	Runtime  []float64 // mean T/T∞
	Waste    []float64 // mean W/T1
	// BoundApplicable is the fraction of jobs for which Theorem 4's waste
	// bound applied (rate stayed below 1/C_L as measured from the trace).
	BoundApplicable []float64
	// BoundHeld is the fraction of jobs with applicable bounds whose
	// measured waste respected the bound.
	BoundHeld []float64
}

// RateStudy runs fixed-rate A-Control against AutoRate over high-C_L
// fork-join jobs (widths where r=0.2 ≥ 1/C_L).
func RateStudy(cfg Config, widths []int, jobsPerWidth, shrink int) (RateStudyResult, error) {
	if len(widths) == 0 || jobsPerWidth < 1 {
		return RateStudyResult{}, fmt.Errorf("experiments: empty rate study config")
	}
	if shrink < 1 {
		shrink = 1
	}
	root := xrand.New(cfg.Seed)
	var profiles []*job.Profile
	for _, w := range widths {
		for j := 0; j < jobsPerWidth; j++ {
			profiles = append(profiles, workload.GenJob(root, workload.ScaledJobParams(w, cfg.L, shrink)))
		}
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	type contender struct {
		name    string
		factory feedback.Factory
		rateOf  func(pol feedback.Policy) float64
	}
	contenders := []contender{
		{
			name:    fmt.Sprintf("A-Control(r=%g fixed)", cfg.R),
			factory: feedback.AControlFactory(cfg.R),
			rateOf:  func(feedback.Policy) float64 { return cfg.R },
		},
		{
			name:    "AutoRate(rMax=0.2,safety=0.5)",
			factory: feedback.AutoRateFactory(0.2, 0.5),
			rateOf: func(pol feedback.Policy) float64 {
				return pol.(*feedback.AutoRate).Rate()
			},
		},
	}
	res := RateStudyResult{}
	for _, cont := range contenders {
		type out struct {
			rt, ws           float64
			applicable, held bool
		}
		outs, err := parallel.Map(len(profiles), func(i int) (out, error) {
			pol := cont.factory()
			r, err := sim.RunSingle(job.NewRun(profiles[i]), pol, cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: cfg.L, KeepTrace: true})
			if err != nil {
				return out{}, err
			}
			o := out{rt: r.NormalizedRuntime(), ws: r.NormalizedWaste()}
			cl := metrics.TransitionFactorFromQuanta(r.Quanta)
			// The rate in force at the end of the run is the binding one for
			// the bound check (AutoRate only ever decreases it).
			rate := cont.rateOf(pol)
			if rate < 1/cl {
				o.applicable = true
				bound := metrics.Theorem4WasteBound(r.Work, cl, rate, cfg.P, cfg.L)
				o.held = float64(r.Waste+r.BoundaryWaste) <= bound
			}
			return o, nil
		})
		if err != nil {
			return res, err
		}
		var rt, ws stats.Welford
		applicable, held := 0, 0
		for _, o := range outs {
			rt.Add(o.rt)
			ws.Add(o.ws)
			if o.applicable {
				applicable++
				if o.held {
					held++
				}
			}
		}
		res.Policies = append(res.Policies, cont.name)
		res.Runtime = append(res.Runtime, rt.Mean())
		res.Waste = append(res.Waste, ws.Mean())
		res.BoundApplicable = append(res.BoundApplicable, float64(applicable)/float64(len(outs)))
		if applicable > 0 {
			res.BoundHeld = append(res.BoundHeld, float64(held)/float64(applicable))
		} else {
			res.BoundHeld = append(res.BoundHeld, 0)
		}
	}
	return res, nil
}

// Render writes the study as a table.
func (r RateStudyResult) Render(w io.Writer) error {
	tb := table.New("policy", "T/T∞", "W/T1", "Thm4 applicable", "Thm4 held")
	for i, name := range r.Policies {
		tb.AddRowf(name, r.Runtime[i], r.Waste[i],
			fmt.Sprintf("%.0f%%", 100*r.BoundApplicable[i]),
			fmt.Sprintf("%.0f%%", 100*r.BoundHeld[i]))
	}
	return tb.Render(w)
}
