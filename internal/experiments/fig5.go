package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/job"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// Fig5Config sizes the single-job sweep over transition factors.
type Fig5Config struct {
	Config
	// CLValues are the transition factors to sweep (paper: 2..100).
	CLValues []int
	// JobsPerCL is the number of random jobs per transition factor
	// (paper: 50).
	JobsPerCL int
	// Shrink divides the phase lengths (1 = paper scale; tests use more).
	Shrink int
}

// DefaultFig5Config returns the paper's Figure 5 setup.
func DefaultFig5Config() Fig5Config {
	cfg := Fig5Config{Config: Defaults(), JobsPerCL: 50, Shrink: 1}
	for cl := 2; cl <= 100; cl++ {
		cfg.CLValues = append(cfg.CLValues, cl)
	}
	return cfg
}

// Fig5Run is the outcome of one job under one scheduler.
type Fig5Run struct {
	CL      int     // configured transition factor (parallel width)
	Runtime float64 // T / T∞ (Figure 5(a) y-axis)
	Waste   float64 // W / T1 (Figure 5(c) y-axis)
}

// Fig5Point is one averaged point of the Figure 5 curves.
type Fig5Point struct {
	CL                    int
	ABGRuntime, AGRuntime float64 // mean normalized running time
	ABGWaste, AGWaste     float64 // mean normalized waste
	RuntimeRatio          float64 // mean A-Greedy/ABG running-time ratio (5b)
	WasteRatio            float64 // mean A-Greedy/ABG waste ratio (5d)
}

// Fig5Result aggregates the whole sweep.
type Fig5Result struct {
	Points []Fig5Point
	// RuntimeImprovement is the average fractional running-time improvement
	// of ABG over A-Greedy, 1 − mean(T_ABG/T_AG); the paper reports ~20%.
	RuntimeImprovement float64
	// WasteReduction is 1 − mean(W_ABG/W_AG); the paper reports ~50%.
	WasteReduction float64
}

// Fig5 runs the single-job sweep: for every transition factor, JobsPerCL
// random fork-join jobs are executed alone on the machine under both ABG
// (A-Control + B-Greedy) and A-Greedy (mul-inc/mul-dec + greedy), with every
// request granted (unconstrained allocator) as in the paper's first
// simulation set. Jobs are simulated concurrently across CPUs;
// the result is deterministic in cfg.Seed.
func Fig5(cfg Fig5Config) (Fig5Result, error) {
	if cfg.JobsPerCL < 1 || len(cfg.CLValues) == 0 {
		return Fig5Result{}, fmt.Errorf("experiments: empty Fig5 config")
	}
	if cfg.Shrink < 1 {
		cfg.Shrink = 1
	}
	type task struct {
		clIdx int
		seed  uint64
		cl    int
	}
	// Pre-draw per-job seeds sequentially so parallel execution stays
	// deterministic.
	root := xrand.New(cfg.Seed)
	var tasks []task
	for i, cl := range cfg.CLValues {
		for j := 0; j < cfg.JobsPerCL; j++ {
			tasks = append(tasks, task{clIdx: i, seed: root.Uint64(), cl: cl})
		}
	}
	type outcome struct {
		clIdx    int
		abg, ag  Fig5Run
		err      error
		rRatio   float64
		wRatio   float64
		hasRatio bool
	}
	outcomes := make([]outcome, len(tasks))
	allocator := alloc.NewUnconstrained(cfg.P)

	parallel.ForEach(len(tasks), func(ti int) {
		tk := tasks[ti]
		rng := xrand.New(tk.seed)
		profile := workload.GenJob(rng, workload.ScaledJobParams(tk.cl, cfg.L, cfg.Shrink))
		runOne := func(pol string) (Fig5Run, error) {
			var (
				r   sim.SingleResult
				err error
			)
			sweepActive.Add(1)
			defer sweepActive.Add(-1)
			if pol == "abg" {
				r, err = sim.RunSingle(job.NewRun(profile), cfg.abgPolicy(),
					cfg.abgScheduler(), allocator, sim.SingleConfig{L: cfg.L})
			} else {
				r, err = sim.RunSingle(job.NewRun(profile), cfg.agreedyPolicy(),
					cfg.agreedyScheduler(), allocator, sim.SingleConfig{L: cfg.L})
			}
			if err == nil {
				recordSingle(r.NumQuanta, r.Runtime, r.Waste)
			}
			return Fig5Run{CL: tk.cl, Runtime: r.NormalizedRuntime(), Waste: r.NormalizedWaste()}, err
		}
		abg, err := runOne("abg")
		if err != nil {
			outcomes[ti] = outcome{err: err}
			return
		}
		ag, err := runOne("agreedy")
		if err != nil {
			outcomes[ti] = outcome{err: err}
			return
		}
		oc := outcome{clIdx: tk.clIdx, abg: abg, ag: ag}
		if abg.Runtime > 0 && abg.Waste > 0 {
			oc.rRatio = ag.Runtime / abg.Runtime
			oc.wRatio = ag.Waste / abg.Waste
			oc.hasRatio = true
		}
		outcomes[ti] = oc
	})

	// Reduce.
	n := len(cfg.CLValues)
	agg := make([]struct {
		abgRT, agRT, abgW, agW, rr, wr stats.Welford
	}, n)
	var invRT, invW stats.Welford // ABG/AG ratios for the headline numbers
	for _, oc := range outcomes {
		if oc.err != nil {
			return Fig5Result{}, oc.err
		}
		a := &agg[oc.clIdx]
		a.abgRT.Add(oc.abg.Runtime)
		a.agRT.Add(oc.ag.Runtime)
		a.abgW.Add(oc.abg.Waste)
		a.agW.Add(oc.ag.Waste)
		if oc.hasRatio {
			a.rr.Add(oc.rRatio)
			a.wr.Add(oc.wRatio)
			invRT.Add(oc.abg.Runtime / oc.ag.Runtime)
			invW.Add(oc.abg.Waste / oc.ag.Waste)
		}
	}
	res := Fig5Result{Points: make([]Fig5Point, n)}
	for i, cl := range cfg.CLValues {
		a := &agg[i]
		res.Points[i] = Fig5Point{
			CL:         cl,
			ABGRuntime: a.abgRT.Mean(), AGRuntime: a.agRT.Mean(),
			ABGWaste: a.abgW.Mean(), AGWaste: a.agW.Mean(),
			RuntimeRatio: a.rr.Mean(), WasteRatio: a.wr.Mean(),
		}
	}
	res.RuntimeImprovement = 1 - invRT.Mean()
	res.WasteReduction = 1 - invW.Mean()
	return res, nil
}

// Render writes the Figure 5 curves as a table plus the headline averages.
func (r Fig5Result) Render(w io.Writer) error {
	tb := table.New("C_L", "T/T∞ ABG", "T/T∞ A-Greedy", "ratio(5b)",
		"W/T1 ABG", "W/T1 A-Greedy", "ratio(5d)")
	for _, p := range r.Points {
		tb.AddRowf(p.CL, p.ABGRuntime, p.AGRuntime, p.RuntimeRatio,
			p.ABGWaste, p.AGWaste, p.WasteRatio)
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nABG average running-time improvement over A-Greedy: %.1f%% (paper: ~20%%)\n"+
		"ABG average waste reduction over A-Greedy: %.1f%% (paper: ~50%%)\n",
		100*r.RuntimeImprovement, 100*r.WasteReduction)
	return err
}
