package experiments

import (
	"strings"
	"testing"
)

// testConfig returns a small, fast machine configuration for unit tests.
func testConfig() Config {
	return Config{Seed: 7, P: 64, L: 100, R: 0.2, Rho: 2, Delta: 0.8}
}

func TestTransientShapes(t *testing.T) {
	res, err := Transient(testConfig(), 12, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1 on the simulated trace: ABG has no overshoot, near-zero
	// steady-state error, and settles; A-Greedy oscillates forever with
	// overshoot.
	if res.ABG.MaxOvershoot > 1e-9 {
		t.Fatalf("ABG overshoot %v", res.ABG.MaxOvershoot)
	}
	if res.ABG.SteadyStateError > 0.1 {
		t.Fatalf("ABG steady-state error %v", res.ABG.SteadyStateError)
	}
	if res.AGreedy.MaxOvershoot <= 0 {
		t.Fatal("A-Greedy should overshoot")
	}
	if res.AGreedyOscillations <= res.ABGOscillations {
		t.Fatalf("A-Greedy oscillations %d not above ABG %d",
			res.AGreedyOscillations, res.ABGOscillations)
	}
	if res.AGreedyTotalVariation <= res.ABGTotalVariation {
		t.Fatalf("A-Greedy variation %v not above ABG %v",
			res.AGreedyTotalVariation, res.ABGTotalVariation)
	}
	if len(res.ABGRequests) < 15 || len(res.AGreedyRequests) < 15 {
		t.Fatal("traces too short")
	}
}

func TestFig1AndFig4Run(t *testing.T) {
	cfg := testConfig()
	f1, err := Fig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1.AGreedyOscillations == 0 {
		t.Fatal("Fig1 must show A-Greedy request instability")
	}
	f4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.ABGRequests) != 8 {
		t.Fatalf("Fig4 should cover 8 quanta, got %d", len(f4.ABGRequests))
	}
	var sb strings.Builder
	if err := f4.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"quantum", "overshoot", "A-Greedy"} {
		if !strings.Contains(sb.String(), frag) {
			t.Fatalf("render missing %q:\n%s", frag, sb.String())
		}
	}
}

func TestFig5SmallScale(t *testing.T) {
	cfg := Fig5Config{
		Config:    testConfig(),
		CLValues:  []int{2, 10, 30},
		JobsPerCL: 6,
		Shrink:    2,
	}
	res, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.ABGRuntime < 1 {
			t.Fatalf("C_L=%d: normalized runtime %v below 1 (optimal)", p.CL, p.ABGRuntime)
		}
		if p.ABGWaste < 0 || p.AGWaste < 0 {
			t.Fatalf("negative waste at C_L=%d", p.CL)
		}
	}
	// Headline claims, qualitatively: ABG no worse on average.
	if res.WasteReduction <= 0 {
		t.Fatalf("expected waste reduction > 0, got %v", res.WasteReduction)
	}
	if res.RuntimeImprovement < -0.05 {
		t.Fatalf("ABG runtime should not be materially worse: %v", res.RuntimeImprovement)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "C_L") {
		t.Fatal("render missing header")
	}
}

func TestFig5Deterministic(t *testing.T) {
	cfg := Fig5Config{Config: testConfig(), CLValues: []int{5}, JobsPerCL: 4, Shrink: 4}
	a, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0] != b.Points[0] {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Points[0], b.Points[0])
	}
}

func TestFig5Validation(t *testing.T) {
	if _, err := Fig5(Fig5Config{Config: testConfig()}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDefaultConfigs(t *testing.T) {
	d := Defaults()
	if d.P != 128 || d.L != 1000 || d.R != 0.2 || d.Rho != 2 {
		t.Fatalf("paper defaults wrong: %+v", d)
	}
	f5 := DefaultFig5Config()
	if len(f5.CLValues) != 99 || f5.JobsPerCL != 50 {
		t.Fatalf("Fig5 defaults wrong: %d CLs, %d jobs", len(f5.CLValues), f5.JobsPerCL)
	}
	f6 := DefaultFig6Config()
	if f6.NumSets != 5000 {
		t.Fatalf("Fig6 defaults wrong: %+v", f6)
	}
	rs := DefaultRSweepConfig()
	if len(rs.Rs) == 0 {
		t.Fatal("RSweep defaults empty")
	}
}

func TestFig6SmallScale(t *testing.T) {
	cfg := Fig6Config{
		Config:  testConfig(),
		NumSets: 10,
		LoadMin: 0.3, LoadMax: 4,
		Shrink: 8,
		Bins:   4,
	}
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 10 {
		t.Fatalf("sets = %d", len(res.Sets))
	}
	for i, s := range res.Sets {
		// Normalised metrics are ≥ 1 up to binning noise: the simulation can
		// never beat the lower bound.
		if s.ABGMakespan < 1-1e-9 || s.AGMakespan < 1-1e-9 {
			t.Fatalf("set %d: normalized makespan below 1: %+v", i, s)
		}
		if s.ABGResponse < 1-1e-9 || s.AGResponse < 1-1e-9 {
			t.Fatalf("set %d: normalized response below 1: %+v", i, s)
		}
		if s.Jobs < 1 {
			t.Fatalf("set %d empty", i)
		}
	}
	if len(res.ABGMakespanCurve) == 0 || len(res.ResponseRatioCurve) == 0 {
		t.Fatal("curves empty")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Light load") {
		t.Fatal("render missing summary")
	}
}

func TestFig6Deterministic(t *testing.T) {
	cfg := Fig6Config{Config: testConfig(), NumSets: 4, LoadMin: 0.5, LoadMax: 2, Shrink: 8, Bins: 2}
	a, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sets {
		if a.Sets[i] != b.Sets[i] {
			t.Fatalf("nondeterministic set %d", i)
		}
	}
}

func TestFig6Validation(t *testing.T) {
	if _, err := Fig6(Fig6Config{Config: testConfig()}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRSweepShape(t *testing.T) {
	cfg := RSweepConfig{
		Config:       testConfig(),
		Rs:           []float64{0, 0.2, 0.5, 0.9},
		CLValues:     []int{5, 20},
		JobsPerPoint: 3,
		Shrink:       4,
	}
	res, err := RSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Footnote 3's shape: small r values are all close; r=0.9 degrades
	// runtime (sluggish adaptation).
	base := res.Points[0].Runtime
	if res.Points[1].Runtime > base*1.2 {
		t.Fatalf("r=0.2 deviates too much: %v vs %v", res.Points[1].Runtime, base)
	}
	if res.Points[3].Runtime < res.Points[0].Runtime {
		t.Fatalf("r=0.9 should be slower than r=0: %v vs %v",
			res.Points[3].Runtime, res.Points[0].Runtime)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := RSweep(RSweepConfig{Config: testConfig()}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestGainAblation(t *testing.T) {
	res, err := GainAblation(testConfig(), 2, 32, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 {
		t.Fatalf("contenders = %d", len(res.Policies))
	}
	// The adaptive controller never overshoots the maximum parallelism; the
	// over-aggressive fixed gain does.
	if res.Overshoot[0] > 1e-9 {
		t.Fatalf("A-Control overshoot %v", res.Overshoot[0])
	}
	if res.Overshoot[3] <= 0 {
		t.Fatalf("FixedGain(2·high) should overshoot, got %v", res.Overshoot[3])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestOrderAblation(t *testing.T) {
	res, err := OrderAblation(testConfig(), []int{5, 15}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Orders) != 3 {
		t.Fatalf("orders = %d", len(res.Orders))
	}
	// B-Greedy (breadth-first) is never materially worse than depth-first.
	if res.Runtime[0] > res.Runtime[1]*1.05 {
		t.Fatalf("BF runtime %v worse than DF %v", res.Runtime[0], res.Runtime[1])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := OrderAblation(testConfig(), nil, 1, 1); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestQuantumLengthAblation(t *testing.T) {
	res, err := QuantumLengthAblation(testConfig(), []int{25, 100, 400}, []int{10}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ls) != 3 || len(res.Runtime) != 3 {
		t.Fatalf("result sizes wrong: %+v", res)
	}
	// Shorter quanta mean more feedback actions.
	if !(res.Quanta[0] > res.Quanta[1] && res.Quanta[1] > res.Quanta[2]) {
		t.Fatalf("quanta counts not decreasing in L: %v", res.Quanta)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := QuantumLengthAblation(testConfig(), nil, nil, 0, 0); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestFig6ArbitraryReleases(t *testing.T) {
	cfg := Fig6Config{
		Config:  testConfig(),
		NumSets: 6,
		LoadMin: 0.5, LoadMax: 3,
		Shrink: 8,
		Bins:   3,
		// Spread releases over roughly one set-duration.
		ReleaseSpread: 0.5,
	}
	res, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Sets {
		// Lower bounds stay lower bounds under releases.
		if s.ABGMakespan < 1-1e-9 || s.ABGResponse < 1-1e-9 {
			t.Fatalf("set %d beat a lower bound: %+v", i, s)
		}
	}
	// Releases are part of the seeded determinism.
	res2, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sets[0] != res2.Sets[0] {
		t.Fatal("nondeterministic with releases")
	}
}
