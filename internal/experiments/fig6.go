package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/job"
	"abg/internal/metrics"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// Fig6Config sizes the multiprogrammed experiment.
type Fig6Config struct {
	Config
	// NumSets is the number of job sets (paper: 5000).
	NumSets int
	// LoadMin..LoadMax is the range of target loads the sets are drawn from.
	LoadMin, LoadMax float64
	// Shrink divides phase lengths of the jobs inside sets (sets use smaller
	// jobs than the standalone Figure 5 runs).
	Shrink int
	// Bins is the number of load bins used to average the curves.
	Bins int
	// ReleaseSpread, when positive, draws each job's release time uniformly
	// from [0, ReleaseSpread·L·|J|] instead of releasing the whole set at
	// time 0 — the arbitrary-release-times regime of Theorem 5's makespan
	// bound. With releases, the response-time normalisation switches to the
	// release-valid lower bound (mean critical path).
	ReleaseSpread float64
}

// DefaultFig6Config returns the paper's Figure 6 setup (at the paper's
// 5000-set count; reduce NumSets for quick runs). Shrink stays at 1: the
// jobs inside the sets must keep the paper-relative phase scale (0.5–2
// quanta per phase) or A-Greedy's warm-up dominates the small jobs and
// inflates ABG's light-load advantage far beyond the paper's 10–15% (see
// EXPERIMENTS.md).
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Config:  Defaults(),
		NumSets: 5000,
		LoadMin: 0.2, LoadMax: 6.5,
		Shrink: 1,
		Bins:   16,
	}
}

// Fig6Set is the outcome of one job set under both schedulers.
type Fig6Set struct {
	Load          float64 // realised load of the set
	Jobs          int
	ABGMakespan   float64 // makespan / M*
	AGMakespan    float64
	ABGResponse   float64 // mean response time / R*
	AGResponse    float64
	MakespanRatio float64 // A-Greedy / ABG (6b)
	ResponseRatio float64 // A-Greedy / ABG (6d)
	// ABGFairness / AGFairness are Jain's fairness indices over per-job
	// slowdowns (response / T∞) — an extension metric: how evenly each
	// scheduler spreads the multiprogramming penalty.
	ABGFairness, AGFairness float64
}

// Fig6Result aggregates the multiprogrammed sweep.
type Fig6Result struct {
	Sets []Fig6Set
	// Binned curves: x = load, y = mean normalized makespan / response.
	ABGMakespanCurve, AGMakespanCurve []stats.Point
	ABGResponseCurve, AGResponseCurve []stats.Point
	MakespanRatioCurve                []stats.Point
	ResponseRatioCurve                []stats.Point
	// LightLoadMakespanGain / LightLoadResponseGain are the average
	// advantage of ABG at loads ≤ 1 (the paper reports 10–15%): the mean of
	// (A-Greedy/ABG − 1).
	LightLoadMakespanGain, LightLoadResponseGain float64
	// HeavyLoadMakespanGain is the same for loads ≥ 3 (the paper finds the
	// schedulers comparable there).
	HeavyLoadMakespanGain, HeavyLoadResponseGain float64
	// MeanABGFairness / MeanAGFairness average Jain's slowdown-fairness
	// index over all sets (extension metric; 1 = perfectly even).
	MeanABGFairness, MeanAGFairness float64
}

// Fig6 runs the multiprogrammed experiment: NumSets job sets with target
// loads drawn uniformly from [LoadMin, LoadMax], each batched (all releases
// at 0) and space-shared under dynamic equi-partitioning, once per
// scheduler. Makespan and mean response time are normalised by the
// theoretical lower bounds. Sets are simulated concurrently; the result is
// deterministic in cfg.Seed.
func Fig6(cfg Fig6Config) (Fig6Result, error) {
	if cfg.NumSets < 1 {
		return Fig6Result{}, fmt.Errorf("experiments: Fig6 needs at least one set")
	}
	if cfg.Bins < 1 {
		cfg.Bins = 12
	}
	if cfg.Shrink < 1 {
		cfg.Shrink = 1
	}
	type task struct {
		seed uint64
		load float64
	}
	root := xrand.New(cfg.Seed)
	tasks := make([]task, cfg.NumSets)
	for i := range tasks {
		tasks[i] = task{seed: root.Uint64(), load: cfg.LoadMin + (cfg.LoadMax-cfg.LoadMin)*root.Float64()}
	}
	results, err := parallel.Map(cfg.NumSets, func(ti int) (Fig6Set, error) {
		return cfg.runSet(tasks[ti].seed, tasks[ti].load)
	})
	if err != nil {
		return Fig6Result{}, err
	}

	res := Fig6Result{Sets: results}
	mkABG := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	mkAG := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	rsABG := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	rsAG := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	mkRatio := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	rsRatio := stats.NewBinnedCurve(cfg.LoadMin, cfg.LoadMax, cfg.Bins)
	var lightM, lightR, heavyM, heavyR stats.Welford
	var fairABG, fairAG stats.Welford
	for _, s := range results {
		fairABG.Add(s.ABGFairness)
		fairAG.Add(s.AGFairness)
		mkABG.Add(s.Load, s.ABGMakespan)
		mkAG.Add(s.Load, s.AGMakespan)
		rsABG.Add(s.Load, s.ABGResponse)
		rsAG.Add(s.Load, s.AGResponse)
		mkRatio.Add(s.Load, s.MakespanRatio)
		rsRatio.Add(s.Load, s.ResponseRatio)
		if s.Load <= 1 {
			lightM.Add(s.MakespanRatio - 1)
			lightR.Add(s.ResponseRatio - 1)
		}
		if s.Load >= 3 {
			heavyM.Add(s.MakespanRatio - 1)
			heavyR.Add(s.ResponseRatio - 1)
		}
	}
	res.ABGMakespanCurve = mkABG.Points()
	res.AGMakespanCurve = mkAG.Points()
	res.ABGResponseCurve = rsABG.Points()
	res.AGResponseCurve = rsAG.Points()
	res.MakespanRatioCurve = mkRatio.Points()
	res.ResponseRatioCurve = rsRatio.Points()
	res.LightLoadMakespanGain = lightM.Mean()
	res.LightLoadResponseGain = lightR.Mean()
	res.HeavyLoadMakespanGain = heavyM.Mean()
	res.HeavyLoadResponseGain = heavyR.Mean()
	res.MeanABGFairness = fairABG.Mean()
	res.MeanAGFairness = fairAG.Mean()
	return res, nil
}

// runSet simulates one job set under both schedulers.
func (cfg Fig6Config) runSet(seed uint64, targetLoad float64) (Fig6Set, error) {
	rng := xrand.New(seed)
	profiles := workload.GenJobSet(rng, workload.SetParams{
		TargetLoad: targetLoad, P: cfg.P, QuantumLen: cfg.L,
		CLMin: 2, CLMax: 100, Shrink: cfg.Shrink, MaxJobs: cfg.P,
	})
	releases := make([]int64, len(profiles))
	if cfg.ReleaseSpread > 0 {
		span := cfg.ReleaseSpread * float64(cfg.L) * float64(len(profiles))
		for i := range releases {
			releases[i] = int64(rng.Float64() * span)
		}
	}
	infos := make([]metrics.JobInfo, len(profiles))
	for i, p := range profiles {
		infos[i] = metrics.JobInfo{Work: p.Work(), CriticalPath: p.CriticalPathLen(), Release: releases[i]}
	}
	mStar := metrics.MakespanLowerBound(infos, cfg.P)
	var rStar float64
	if cfg.ReleaseSpread > 0 {
		rStar = metrics.ResponseLowerBoundReleased(infos)
	} else {
		rStar = metrics.ResponseLowerBound(infos, cfg.P)
	}
	set := Fig6Set{Load: workload.Load(profiles, cfg.P), Jobs: len(profiles)}

	run := func(abg bool) (sim.MultiResult, error) {
		specs := make([]sim.JobSpec, len(profiles))
		for i, p := range profiles {
			spec := sim.JobSpec{Name: fmt.Sprintf("j%d", i), Inst: job.NewRun(p), Release: releases[i]}
			if abg {
				spec.Policy, spec.Sched = cfg.abgPolicy(), cfg.abgScheduler()
			} else {
				spec.Policy, spec.Sched = cfg.agreedyPolicy(), cfg.agreedyScheduler()
			}
			specs[i] = spec
		}
		sweepSetActive.Add(1)
		defer sweepSetActive.Add(-1)
		res, err := sim.RunMulti(specs, sim.MultiConfig{
			P: cfg.P, L: cfg.L, Allocator: alloc.DynamicEquiPartition{},
		})
		if err == nil {
			recordSet(len(specs), res.QuantaElapsed, res.Makespan, res.TotalWaste)
		}
		return res, err
	}
	abgRes, err := run(true)
	if err != nil {
		return set, err
	}
	agRes, err := run(false)
	if err != nil {
		return set, err
	}
	set.ABGMakespan = float64(abgRes.Makespan) / mStar
	set.AGMakespan = float64(agRes.Makespan) / mStar
	set.ABGResponse = abgRes.MeanResponse() / rStar
	set.AGResponse = agRes.MeanResponse() / rStar
	set.MakespanRatio = float64(agRes.Makespan) / float64(abgRes.Makespan)
	set.ResponseRatio = agRes.MeanResponse() / abgRes.MeanResponse()
	set.ABGFairness = slowdownFairness(abgRes)
	set.AGFairness = slowdownFairness(agRes)
	return set, nil
}

// slowdownFairness computes Jain's index over per-job slowdowns.
func slowdownFairness(res sim.MultiResult) float64 {
	slow := make([]float64, len(res.Jobs))
	for i, j := range res.Jobs {
		slow[i] = float64(j.Response) / float64(j.CriticalPath)
	}
	return metrics.JainFairness(slow)
}

// Render writes the Figure 6 curves and headline averages as text.
func (r Fig6Result) Render(w io.Writer) error {
	tb := table.New("load", "M/M* ABG", "M/M* A-Greedy", "ratio(6b)",
		"R/R* ABG", "R/R* A-Greedy", "ratio(6d)")
	at := func(pts []stats.Point, i int) interface{} {
		if i < len(pts) {
			return pts[i].Y
		}
		return "-"
	}
	for i := range r.ABGMakespanCurve {
		tb.AddRowf(r.ABGMakespanCurve[i].X,
			at(r.ABGMakespanCurve, i), at(r.AGMakespanCurve, i), at(r.MakespanRatioCurve, i),
			at(r.ABGResponseCurve, i), at(r.AGResponseCurve, i), at(r.ResponseRatioCurve, i))
	}
	if err := tb.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nSlowdown fairness (Jain): ABG %.3f, A-Greedy %.3f\n",
		r.MeanABGFairness, r.MeanAGFairness); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Light load (≤1): ABG better by %.1f%% makespan, %.1f%% mean response (paper: 10–15%%)\n"+
		"Heavy load (≥3): ABG better by %.1f%% makespan, %.1f%% mean response (paper: comparable)\n",
		100*r.LightLoadMakespanGain, 100*r.LightLoadResponseGain,
		100*r.HeavyLoadMakespanGain, 100*r.HeavyLoadResponseGain)
	return err
}
