package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// smallChaos is a fast sweep for tests: fewer jobs, shorter phases.
func smallChaos() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.Jobs = 2
	cfg.Shrink = 4
	cfg.ProbeQuanta = 25
	cfg.Intensities = []float64{0, 0.5, 1}
	return cfg
}

// TestChaosDeterministicReplay is the replay guard from the acceptance
// criteria: the same seed and fault spec must produce a byte-identical
// chaos report, run to run.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() (ChaosResult, []byte) {
		r, err := Chaos(smallChaos())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	r1, b1 := run()
	r2, b2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("chaos results differ across replays:\n%+v\n%+v", r1, r2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("chaos reports differ across replays:\n%s\n---\n%s", b1, b2)
	}
}

// TestChaosZeroIntensityIsBaseline checks intensity 0 is the frictionless
// run: completion stretch exactly 1 for both schedulers (the scaled-to-zero
// plan must not perturb a single quantum) and no injected restarts.
func TestChaosZeroIntensityIsBaseline(t *testing.T) {
	r, err := Chaos(smallChaos())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("want 3 sweep points, got %d", len(r.Points))
	}
	zero := r.Points[0]
	if zero.Intensity != 0 {
		t.Fatalf("first point intensity %v", zero.Intensity)
	}
	for name, cell := range map[string]ChaosCell{"abg": zero.ABG, "agreedy": zero.AGreedy} {
		if cell.Stretch != 1 {
			t.Fatalf("%s stretch at intensity 0: %v, want exactly 1", name, cell.Stretch)
		}
		if cell.Restarts != 0 {
			t.Fatalf("%s restarts at intensity 0: %d", name, cell.Restarts)
		}
	}
	// Full intensity must actually hurt: the probe re-converges later (or
	// never, within the run) than in the frictionless baseline for at
	// least one scheduler, and some disturbance must have registered.
	full := r.Points[len(r.Points)-1]
	if full.ABG == zero.ABG && full.AGreedy == zero.AGreedy {
		t.Fatal("full-intensity point identical to the baseline — no faults injected")
	}
}

// TestChaosChecksInvariants runs the sweep with the invariant checker
// attached (the default) — any checker violation fails Chaos itself, so
// this doubles as "the whole fault path keeps the engine's books straight".
func TestChaosChecksInvariants(t *testing.T) {
	cfg := smallChaos()
	if !cfg.Check {
		t.Fatal("default chaos config must check invariants")
	}
	cfg.Intensities = []float64{1}
	if _, err := Chaos(cfg); err != nil {
		t.Fatalf("invariant checker tripped on an honest run: %v", err)
	}
}
