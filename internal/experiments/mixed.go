package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/job"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// MixedResult is an extension experiment beyond the paper: job sets in
// which half the jobs are driven by ABG and half by A-Greedy, space-sharing
// one machine under dynamic equi-partitioning. It answers two questions the
// homogeneous Figure 6 comparison cannot:
//
//  1. Does ABG's advantage persist when its competitors are A-Greedy jobs
//     whose oscillating requests perturb the allocator?
//  2. Do A-Greedy jobs free-ride on ABG jobs' accurate (modest) requests?
//
// Response times are normalised per job against that job's response in the
// corresponding homogeneous run, so a value below 1 means the job got
// faster in the mixed system.
type MixedResult struct {
	Sets int
	// ABGInMixed is the mean over ABG-driven jobs of
	// response(mixed) / response(all-ABG system).
	ABGInMixed float64
	// AGInMixed is the mean over A-Greedy-driven jobs of
	// response(mixed) / response(all-A-Greedy system).
	AGInMixed float64
	// MixedVsABG / MixedVsAG compare the whole mixed system's mean response
	// against the two homogeneous systems.
	MixedVsABG, MixedVsAG float64
}

// Mixed runs the mixed-population experiment over numSets job sets of the
// given target load.
func Mixed(cfg Config, numSets int, targetLoad float64, shrink int) (MixedResult, error) {
	if numSets < 1 || targetLoad <= 0 {
		return MixedResult{}, fmt.Errorf("experiments: invalid mixed config")
	}
	if shrink < 1 {
		shrink = 1
	}
	root := xrand.New(cfg.Seed)
	seeds := make([]uint64, numSets)
	for i := range seeds {
		seeds[i] = root.Uint64()
	}
	type outcome struct {
		abgRatio, agRatio stats.Welford
		mixedResp         float64
		abgResp, agResp   float64
		valid             bool
	}
	outs, err := parallel.Map(numSets, func(si int) (outcome, error) {
		var oc outcome
		rng := xrand.New(seeds[si])
		profiles := workload.GenJobSet(rng, workload.SetParams{
			TargetLoad: targetLoad, P: cfg.P, QuantumLen: cfg.L,
			CLMin: 2, CLMax: 100, Shrink: shrink, MaxJobs: cfg.P,
		})
		if len(profiles) < 2 {
			// Need at least one job per population; skip tiny sets.
			return oc, nil
		}
		run := func(mode string) (sim.MultiResult, error) {
			specs := make([]sim.JobSpec, len(profiles))
			for i, p := range profiles {
				abg := mode == "abg" || (mode == "mixed" && i%2 == 0)
				spec := sim.JobSpec{Name: fmt.Sprintf("j%d", i), Inst: job.NewRun(p)}
				if abg {
					spec.Policy, spec.Sched = cfg.abgPolicy(), cfg.abgScheduler()
				} else {
					spec.Policy, spec.Sched = cfg.agreedyPolicy(), cfg.agreedyScheduler()
				}
				specs[i] = spec
			}
			res, err := sim.RunMulti(specs, sim.MultiConfig{
				P: cfg.P, L: cfg.L, Allocator: alloc.DynamicEquiPartition{},
			})
			if err == nil {
				recordSet(len(specs), res.QuantaElapsed, res.Makespan, res.TotalWaste)
			}
			return res, err
		}
		allABG, err := run("abg")
		if err != nil {
			return oc, err
		}
		allAG, err := run("agreedy")
		if err != nil {
			return oc, err
		}
		mixed, err := run("mixed")
		if err != nil {
			return oc, err
		}
		for i := range profiles {
			if i%2 == 0 { // ABG-driven in the mixed system
				oc.abgRatio.Add(float64(mixed.Jobs[i].Response) / float64(allABG.Jobs[i].Response))
			} else {
				oc.agRatio.Add(float64(mixed.Jobs[i].Response) / float64(allAG.Jobs[i].Response))
			}
		}
		oc.mixedResp = mixed.MeanResponse()
		oc.abgResp = allABG.MeanResponse()
		oc.agResp = allAG.MeanResponse()
		oc.valid = true
		return oc, nil
	})
	if err != nil {
		return MixedResult{}, err
	}
	res := MixedResult{}
	var abgRatio, agRatio, vsABG, vsAG stats.Welford
	for i := range outs {
		oc := &outs[i]
		if !oc.valid {
			continue
		}
		res.Sets++
		abgRatio.Merge(&oc.abgRatio)
		agRatio.Merge(&oc.agRatio)
		vsABG.Add(oc.mixedResp / oc.abgResp)
		vsAG.Add(oc.mixedResp / oc.agResp)
	}
	if res.Sets == 0 {
		return res, fmt.Errorf("experiments: every mixed set degenerated to a single job")
	}
	res.ABGInMixed = abgRatio.Mean()
	res.AGInMixed = agRatio.Mean()
	res.MixedVsABG = vsABG.Mean()
	res.MixedVsAG = vsAG.Mean()
	return res, nil
}

// Render writes the mixed-population summary.
func (r MixedResult) Render(w io.Writer) error {
	tb := table.New("quantity", "mean ratio", "reading")
	tb.AddRowf("ABG jobs: mixed / all-ABG", r.ABGInMixed, ">1 = A-Greedy neighbours hurt them")
	tb.AddRowf("A-Greedy jobs: mixed / all-A-Greedy", r.AGInMixed, "<1 = they benefit from ABG neighbours")
	tb.AddRowf("system: mixed / all-ABG", r.MixedVsABG, "")
	tb.AddRowf("system: mixed / all-A-Greedy", r.MixedVsAG, "")
	if err := tb.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\n(%d job sets)\n", r.Sets)
	return err
}
