package experiments

import (
	"fmt"
	"io"

	"abg/internal/opensys"
	"abg/internal/parallel"
	"abg/internal/table"
)

// OpenSystemResult is the extension experiment running the two schedulers
// in an open system (Poisson arrivals, jobs leave on completion) across
// offered loads. The closed Figure 6 batches cannot show queueing effects;
// here the mean response blows up as the offered load approaches 1, and
// the question is who degrades first.
type OpenSystemResult struct {
	Loads []float64
	// ABGResponse / AGResponse are mean steady-state response times.
	ABGResponse, AGResponse []float64
	// ABGSlowdown / AGSlowdown are mean response/T∞ slowdowns.
	ABGSlowdown, AGSlowdown []float64
	// Ratio is AGResponse/ABGResponse per load.
	Ratio []float64
}

// OpenSystem sweeps offered loads for both schedulers on identical arrival
// traces.
func OpenSystem(cfg Config, loads []float64, jobs, shrink int) (OpenSystemResult, error) {
	if len(loads) == 0 || jobs < 8 {
		return OpenSystemResult{}, fmt.Errorf("experiments: invalid open-system config")
	}
	base := opensys.Config{
		Seed: cfg.Seed, P: cfg.P, L: cfg.L,
		Jobs: jobs, Warmup: jobs / 4,
		CLMin: 2, CLMax: 50,
		Shrink: shrink,
	}
	type point struct{ abg, ag opensys.Result }
	points, err := parallel.Map(len(loads), func(i int) (point, error) {
		var pt point
		abgCfg := base
		abgCfg.OfferedLoad = loads[i]
		abgCfg.Policy = cfg.abgPolicy
		abgCfg.Scheduler = cfg.abgScheduler()
		var err error
		if pt.abg, err = opensys.Run(abgCfg); err != nil {
			return pt, err
		}
		agCfg := base
		agCfg.OfferedLoad = loads[i]
		agCfg.Policy = cfg.agreedyPolicy
		agCfg.Scheduler = cfg.agreedyScheduler()
		if pt.ag, err = opensys.Run(agCfg); err != nil {
			return pt, err
		}
		return pt, nil
	})
	if err != nil {
		return OpenSystemResult{}, err
	}
	res := OpenSystemResult{Loads: loads}
	for _, pt := range points {
		res.ABGResponse = append(res.ABGResponse, pt.abg.Response.Mean)
		res.AGResponse = append(res.AGResponse, pt.ag.Response.Mean)
		res.ABGSlowdown = append(res.ABGSlowdown, pt.abg.Slowdown.Mean)
		res.AGSlowdown = append(res.AGSlowdown, pt.ag.Slowdown.Mean)
		res.Ratio = append(res.Ratio, pt.ag.Response.Mean/pt.abg.Response.Mean)
	}
	return res, nil
}

// Render writes the sweep as a table.
func (r OpenSystemResult) Render(w io.Writer) error {
	tb := table.New("offered load", "resp ABG", "resp A-Greedy", "ratio",
		"slowdown ABG", "slowdown A-Greedy")
	for i, rho := range r.Loads {
		tb.AddRowf(rho, r.ABGResponse[i], r.AGResponse[i], r.Ratio[i],
			r.ABGSlowdown[i], r.AGSlowdown[i])
	}
	return tb.Render(w)
}
