package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/dag"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/wsteal"
	"abg/internal/xrand"
)

// StealResult contrasts the centralized schedulers with decentralized
// work-stealing execution (§8's A-Steal/ABP family) on the same dags:
//
//   - ABG: B-Greedy (centralized, breadth-first) + A-Control.
//   - A-Greedy: centralized greedy + mul-inc/mul-dec desire.
//   - A-Steal: randomized work stealing + mul-inc/mul-dec desire.
//   - WS+A-Control: work stealing + the adaptive controller, showing how the
//     parallelism measurement degrades without B-Greedy's level order.
type StealResult struct {
	Schedulers []string
	Runtime    []float64 // mean T/T∞
	Waste      []float64 // mean W/T1 (for work stealing this includes steal and mug cycles)
	StealFrac  []float64 // steal attempts per allotted cycle (0 for centralized)
}

// Steal runs the comparison over random fork-join dags with the given
// parallel widths.
func Steal(cfg Config, widths []int, jobsPerWidth, shrink int) (StealResult, error) {
	if len(widths) == 0 || jobsPerWidth < 1 {
		return StealResult{}, fmt.Errorf("experiments: empty steal config")
	}
	if shrink < 1 {
		shrink = 1
	}
	// Build explicit dags (work stealing needs node-level structure).
	root := xrand.New(cfg.Seed)
	type jobCase struct {
		g    *dag.Graph
		seed uint64
	}
	var cases []jobCase
	for _, w := range widths {
		for j := 0; j < jobsPerWidth; j++ {
			var phases []dag.Phase
			n := root.IntRange(4, 8)
			for i := 0; i < n; i++ {
				phases = append(phases, dag.Phase{
					SerialLen: root.IntRange(cfg.L/(2*shrink), 2*cfg.L/shrink),
					Width:     w,
					Height:    root.IntRange(cfg.L/(2*shrink), 2*cfg.L/shrink),
				})
			}
			phases = append(phases, dag.Phase{SerialLen: root.IntRange(1, cfg.L/shrink)})
			cases = append(cases, jobCase{g: dag.ForkJoin(phases), seed: root.Uint64()})
		}
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	type contender struct {
		name string
		run  func(c jobCase) (sim.SingleResult, int64, error)
	}
	contenders := []contender{
		{"ABG (B-Greedy central)", func(c jobCase) (sim.SingleResult, int64, error) {
			r, err := sim.RunSingle(dag.NewRun(c.g), cfg.abgPolicy(), cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: cfg.L})
			return r, 0, err
		}},
		{"A-Greedy (central)", func(c jobCase) (sim.SingleResult, int64, error) {
			r, err := sim.RunSingle(dag.NewRun(c.g), cfg.agreedyPolicy(), cfg.agreedyScheduler(),
				allocator, sim.SingleConfig{L: cfg.L})
			return r, 0, err
		}},
		{"A-Steal (WS + desire)", func(c jobCase) (sim.SingleResult, int64, error) {
			ws := wsteal.NewRun(c.g, c.seed)
			r, err := sim.RunSingle(ws, cfg.agreedyPolicy(), cfg.agreedyScheduler(),
				allocator, sim.SingleConfig{L: cfg.L})
			return r, ws.StealAttempts() + ws.Mugs(), err
		}},
		{"WS + A-Control", func(c jobCase) (sim.SingleResult, int64, error) {
			ws := wsteal.NewRun(c.g, c.seed)
			r, err := sim.RunSingle(ws, cfg.abgPolicy(), cfg.agreedyScheduler(),
				allocator, sim.SingleConfig{L: cfg.L})
			return r, ws.StealAttempts() + ws.Mugs(), err
		}},
	}
	res := StealResult{}
	for _, cont := range contenders {
		type out struct {
			rt, ws, sf float64
		}
		outs, err := parallel.Map(len(cases), func(i int) (out, error) {
			r, overhead, err := cont.run(cases[i])
			if err != nil {
				return out{}, err
			}
			sf := 0.0
			if r.AllottedCycles > 0 {
				sf = float64(overhead) / float64(r.AllottedCycles)
			}
			return out{rt: r.NormalizedRuntime(), ws: r.NormalizedWaste(), sf: sf}, nil
		})
		if err != nil {
			return res, err
		}
		var rt, ws, sf stats.Welford
		for _, o := range outs {
			rt.Add(o.rt)
			ws.Add(o.ws)
			sf.Add(o.sf)
		}
		res.Schedulers = append(res.Schedulers, cont.name)
		res.Runtime = append(res.Runtime, rt.Mean())
		res.Waste = append(res.Waste, ws.Mean())
		res.StealFrac = append(res.StealFrac, sf.Mean())
	}
	return res, nil
}

// Render writes the comparison as a table.
func (r StealResult) Render(w io.Writer) error {
	tb := table.New("scheduler", "T/T∞", "W/T1", "steal+mug / cycle")
	for i, name := range r.Schedulers {
		tb.AddRowf(name, r.Runtime[i], r.Waste[i], r.StealFrac[i])
	}
	return tb.Render(w)
}
