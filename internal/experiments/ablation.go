package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/control"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// GainAblationResult contrasts the adaptive controller with fixed-gain
// integral controllers on a job whose parallelism steps between two levels —
// the design-choice justification for retuning K(q) = (1−r)·A(q−1) every
// quantum.
type GainAblationResult struct {
	// Policies names each contender.
	Policies []string
	// Runtime / Waste are T/T∞ and W/T1 per contender.
	Runtime, Waste []float64
	// TotalVariation measures request movement per contender.
	TotalVariation []float64
	// Overshoot is the maximum request excursion above the job's maximum
	// parallelism per contender (the adaptive controller's is ~0).
	Overshoot []float64
}

// GainAblation runs A-Control against fixed-gain controllers on a
// step-parallelism job (low ↔ high parallelism phases).
func GainAblation(cfg Config, low, high, hold, cycles int) (GainAblationResult, error) {
	widths := make([]int, 0, 2*cycles)
	for i := 0; i < cycles; i++ {
		widths = append(widths, low, high)
	}
	profile := workload.StepWidths(widths, hold)
	allocator := alloc.NewUnconstrained(cfg.P)
	contenders := []struct {
		name string
		pol  feedback.Policy
	}{
		{"A-Control(r=0.2)", feedback.NewAControl(0.2)},
		{fmt.Sprintf("FixedGain(K=%d)", low), feedback.NewFixedGain(float64(low))},
		{fmt.Sprintf("FixedGain(K=%d)", high), feedback.NewFixedGain(float64(high))},
		{fmt.Sprintf("FixedGain(K=%d)", 2*high), feedback.NewFixedGain(float64(2 * high))},
	}
	var res GainAblationResult
	maxPar := float64(high)
	for _, c := range contenders {
		out, err := sim.RunSingle(job.NewRun(profile), c.pol, cfg.abgScheduler(),
			allocator, sim.SingleConfig{L: cfg.L, KeepTrace: true})
		if err != nil {
			return res, err
		}
		reqs := out.Requests()
		over := 0.0
		for _, d := range reqs {
			if d-maxPar > over {
				over = d - maxPar
			}
		}
		res.Policies = append(res.Policies, c.name)
		res.Runtime = append(res.Runtime, out.NormalizedRuntime())
		res.Waste = append(res.Waste, out.NormalizedWaste())
		res.TotalVariation = append(res.TotalVariation, control.TotalVariation(reqs))
		res.Overshoot = append(res.Overshoot, over)
	}
	return res, nil
}

// Render writes the gain ablation as a table.
func (r GainAblationResult) Render(w io.Writer) error {
	tb := table.New("policy", "T/T∞", "W/T1", "request variation", "overshoot")
	for i, name := range r.Policies {
		tb.AddRowf(name, r.Runtime[i], r.Waste[i], r.TotalVariation[i], r.Overshoot[i])
	}
	return tb.Render(w)
}

// OrderAblationResult contrasts execution orders under identical feedback:
// breadth-first (B-Greedy) vs depth-first vs FIFO. The breadth-first order
// both finishes no later and measures parallelism more faithfully.
type OrderAblationResult struct {
	Orders  []string
	Runtime []float64 // mean T/T∞
	Waste   []float64 // mean W/T1
}

// OrderAblation runs A-Control with each execution order over a population
// of random fork-join jobs.
func OrderAblation(cfg Config, cls []int, jobsPerCL, shrink int) (OrderAblationResult, error) {
	if len(cls) == 0 || jobsPerCL < 1 {
		return OrderAblationResult{}, fmt.Errorf("experiments: empty order ablation config")
	}
	root := xrand.New(cfg.Seed)
	var profiles []*job.Profile
	for _, cl := range cls {
		for j := 0; j < jobsPerCL; j++ {
			profiles = append(profiles, workload.GenJob(root, workload.ScaledJobParams(cl, cfg.L, shrink)))
		}
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	res := OrderAblationResult{}
	for _, sc := range []sched.Scheduler{sched.BGreedy(), sched.DepthGreedy(), sched.Greedy()} {
		var rt, ws stats.Welford
		for _, p := range profiles {
			out, err := sim.RunSingle(job.NewRun(p), cfg.abgPolicy(), sc,
				allocator, sim.SingleConfig{L: cfg.L})
			if err != nil {
				return res, err
			}
			rt.Add(out.NormalizedRuntime())
			ws.Add(out.NormalizedWaste())
		}
		res.Orders = append(res.Orders, sc.Name())
		res.Runtime = append(res.Runtime, rt.Mean())
		res.Waste = append(res.Waste, ws.Mean())
	}
	return res, nil
}

// Render writes the order ablation as a table.
func (r OrderAblationResult) Render(w io.Writer) error {
	tb := table.New("scheduler", "T/T∞", "W/T1")
	for i, name := range r.Orders {
		tb.AddRowf(name, r.Runtime[i], r.Waste[i])
	}
	return tb.Render(w)
}

// QuantumLengthResult sweeps the quantum length L — the "dynamically
// adjusting the quantum length" future-work axis of §9, explored statically.
type QuantumLengthResult struct {
	Ls      []int
	Runtime []float64 // mean T/T∞
	Waste   []float64 // mean W/T1
	Quanta  []float64 // mean number of scheduling quanta (feedback actions)
}

// QuantumLengthAblation runs ABG over the same jobs at different L.
// Phase lengths are held at the paper-relative scale of the *reference* L so
// the jobs themselves do not change across the sweep.
func QuantumLengthAblation(cfg Config, ls []int, cls []int, jobsPerCL, shrink int) (QuantumLengthResult, error) {
	if len(ls) == 0 || len(cls) == 0 || jobsPerCL < 1 {
		return QuantumLengthResult{}, fmt.Errorf("experiments: empty quantum-length config")
	}
	root := xrand.New(cfg.Seed)
	var profiles []*job.Profile
	for _, cl := range cls {
		for j := 0; j < jobsPerCL; j++ {
			profiles = append(profiles, workload.GenJob(root, workload.ScaledJobParams(cl, cfg.L, shrink)))
		}
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	res := QuantumLengthResult{Ls: ls}
	for _, l := range ls {
		var rt, ws, nq stats.Welford
		for _, p := range profiles {
			out, err := sim.RunSingle(job.NewRun(p), cfg.abgPolicy(), cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: l})
			if err != nil {
				return res, err
			}
			rt.Add(out.NormalizedRuntime())
			ws.Add(out.NormalizedWaste())
			nq.Add(float64(out.NumQuanta))
		}
		res.Runtime = append(res.Runtime, rt.Mean())
		res.Waste = append(res.Waste, ws.Mean())
		res.Quanta = append(res.Quanta, nq.Mean())
	}
	return res, nil
}

// Render writes the quantum-length sweep as a table.
func (r QuantumLengthResult) Render(w io.Writer) error {
	tb := table.New("L", "T/T∞", "W/T1", "quanta")
	for i, l := range r.Ls {
		tb.AddRowf(l, r.Runtime[i], r.Waste[i], r.Quanta[i])
	}
	return tb.Render(w)
}
