package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/control"
	"abg/internal/fault"
	"abg/internal/feedback"
	"abg/internal/job"
	"abg/internal/obs"
	"abg/internal/sched"
	"abg/internal/sim"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// ChaosConfig parameterises the chaos soak harness: the same seeded fault
// plan is replayed at every intensity in the sweep, against both schedulers,
// and the degradation of each is measured relative to its own fault-free
// baseline.
type ChaosConfig struct {
	Config
	// Plan is the full-intensity disturbance; each sweep point runs
	// Plan.Scale(intensity). Zero plan means no faults at any intensity.
	Plan fault.Plan
	// Intensities are the scale factors swept (0 is the frictionless
	// baseline and is always computed, listed or not).
	Intensities []float64
	// Jobs random fork-join jobs with transition factor CL, phase lengths
	// shrunk by Shrink, measure completion stretch and waste.
	Jobs, CL, Shrink int
	// Width and ProbeQuanta shape the constant-parallelism probe job that
	// measures the control metrics (request overshoot, re-convergence):
	// only against a constant target are they well defined.
	Width, ProbeQuanta int
	// Check attaches a fault.Checker to every run and fails the experiment
	// on any invariant violation.
	Check bool
}

// DefaultChaosConfig returns a moderate sweep over the default plan.
func DefaultChaosConfig() ChaosConfig {
	cfg := Defaults()
	return ChaosConfig{
		Config:      cfg,
		Plan:        DefaultChaosPlan(cfg.P, cfg.Seed),
		Intensities: []float64{0, 0.25, 0.5, 1},
		Jobs:        8, CL: 20, Shrink: 2,
		Width: 24, ProbeQuanta: 60,
		Check: true,
	}
}

// DefaultChaosPlan is the reference disturbance: random node churn taking up
// to half the machine, a control channel that drops a quarter of the
// request messages and delays or duplicates more, 30% multiplicative noise
// on the measured parallelism, and occasional job failures.
func DefaultChaosPlan(p int, seed uint64) fault.Plan {
	return fault.Plan{
		Seed:     seed,
		Capacity: fault.ChurnCapacity{P: p, MaxLoss: p / 2, Window: 16, Seed: seed},
		Drop:     0.25,
		Delay:    2, DelayProb: 0.15,
		Dup:      0.1,
		NoiseMul: 0.3,
		RestartProb: 0.01, MaxRestarts: 2,
	}
}

// ChaosCell is one scheduler's measurement at one intensity.
type ChaosCell struct {
	// Stretch is Σ runtime / Σ fault-free runtime over the random jobs.
	Stretch float64
	// Waste is Σ waste / Σ T1 over the random jobs.
	Waste float64
	// Overshoot is the probe job's maximal request excursion above its
	// constant parallelism, normalised by that parallelism.
	Overshoot float64
	// SettleQ is the probe's settling time in quanta: the first quantum
	// after which the request stays within 2% of the target — with faults
	// injected mid-run, the re-convergence time after the last disturbance.
	SettleQ int
	// Restarts counts injected job failures across all runs of the cell.
	Restarts int
}

// ChaosPoint is one intensity of the sweep.
type ChaosPoint struct {
	Intensity    float64
	ABG, AGreedy ChaosCell
}

// ChaosResult is the outcome of the chaos soak.
type ChaosResult struct {
	Plan   string // the full-intensity plan, in spec syntax
	Points []ChaosPoint
}

// chaosRunner pairs a scheduler stack with its label.
type chaosRunner struct {
	policy func() feedback.Policy
	sched  func() sched.Scheduler
}

// Chaos sweeps the fault plan over the intensities and measures how much
// each scheduler degrades. All randomness — workload and faults — derives
// from the config seed, so a repeated run renders a byte-identical report.
func Chaos(cfg ChaosConfig) (ChaosResult, error) {
	res := ChaosResult{Plan: cfg.Plan.String()}
	if cfg.Jobs < 1 || cfg.Width < 1 || cfg.ProbeQuanta < 1 {
		return res, fmt.Errorf("experiments: chaos config needs jobs, width, probe quanta ≥ 1")
	}
	rng := xrand.New(cfg.Seed)
	params := workload.ScaledJobParams(cfg.CL, cfg.L, max(cfg.Shrink, 1))
	profiles := make([]*job.Profile, cfg.Jobs)
	for i := range profiles {
		profiles[i] = workload.GenJob(rng, params)
	}
	probe := workload.ConstantJob(cfg.Width, cfg.ProbeQuanta, cfg.L)
	runners := map[string]chaosRunner{
		"abg":     {cfg.abgPolicy, cfg.abgScheduler},
		"agreedy": {cfg.agreedyPolicy, cfg.agreedyScheduler},
	}

	// Fault-free baselines (intensity 0), denominator of every stretch.
	base := make(map[string]int64, len(runners))
	for name, r := range runners {
		var sum int64
		for i, pf := range profiles {
			out, err := chaosRun(cfg, pf, r, fault.Plan{}, i, false)
			if err != nil {
				return res, fmt.Errorf("experiments: chaos baseline %s: %w", name, err)
			}
			sum += out.Runtime
		}
		base[name] = sum
	}

	for _, intensity := range cfg.Intensities {
		plan := cfg.Plan.Scale(intensity)
		point := ChaosPoint{Intensity: intensity}
		for name, r := range runners {
			var cell ChaosCell
			var runtime, waste, work int64
			for i, pf := range profiles {
				out, err := chaosRun(cfg, pf, r, plan, i, true)
				if err != nil {
					return res, fmt.Errorf("experiments: chaos %s@%g job %d: %w",
						name, intensity, i, err)
				}
				runtime += out.Runtime
				waste += out.Waste
				work += out.Work
				cell.Restarts += out.Restarts
			}
			if b := base[name]; b > 0 {
				cell.Stretch = float64(runtime) / float64(b)
			}
			if work > 0 {
				cell.Waste = float64(waste) / float64(work)
			}
			pr, err := chaosRun(cfg, probe, r, plan, cfg.Jobs, true)
			if err != nil {
				return res, fmt.Errorf("experiments: chaos %s@%g probe: %w", name, intensity, err)
			}
			cell.Restarts += pr.Restarts
			target := float64(cfg.Width)
			m := control.Measure(pr.Requests(), target)
			cell.Overshoot = m.MaxOvershoot / target
			cell.SettleQ = m.SettlingTime
			switch name {
			case "abg":
				point.ABG = cell
			case "agreedy":
				point.AGreedy = cell
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// chaosRun executes one single-job run under the plan. With check set a
// fault.Checker audits the run's event stream and its verdict becomes the
// returned error.
func chaosRun(cfg ChaosConfig, profile *job.Profile, r chaosRunner,
	plan fault.Plan, jobID int, check bool) (sim.SingleResult, error) {

	sc := sim.SingleConfig{L: cfg.L, KeepTrace: true, Capacity: plan.Capacity}
	var bus *obs.Bus
	var checker *fault.Checker
	if check && cfg.Check {
		bus = obs.NewBus()
		checker = fault.NewChecker(cfg.P, false)
		defer bus.Subscribe(checker)()
		sc.Obs = bus
	}
	if hook := plan.RestartHook(jobID); hook != nil {
		sc.Restart = &sim.RestartPlan{
			At:  hook,
			New: func() job.Instance { return job.NewRun(profile) },
			Max: plan.MaxRestarts,
		}
	}
	pol := plan.Policy(r.policy(), jobID, bus)
	out, err := sim.RunSingle(job.NewRun(profile), pol, r.sched(),
		alloc.NewUnconstrained(cfg.P), sc)
	if err != nil {
		return out, err
	}
	if checker != nil {
		if cerr := checker.Err(); cerr != nil {
			return out, cerr
		}
	}
	return out, nil
}

// Render writes the degradation table.
func (r ChaosResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "fault plan (intensity 1): %s\n\n", r.Plan); err != nil {
		return err
	}
	tb := table.New("intensity",
		"ABG stretch", "AG stretch",
		"ABG waste", "AG waste",
		"ABG overshoot", "AG overshoot",
		"ABG settle(q)", "AG settle(q)",
		"restarts")
	for _, p := range r.Points {
		tb.AddRow(
			fmt.Sprintf("%.2f", p.Intensity),
			fmt.Sprintf("%.3f", p.ABG.Stretch),
			fmt.Sprintf("%.3f", p.AGreedy.Stretch),
			fmt.Sprintf("%.3f", p.ABG.Waste),
			fmt.Sprintf("%.3f", p.AGreedy.Waste),
			fmt.Sprintf("%.3f", p.ABG.Overshoot),
			fmt.Sprintf("%.3f", p.AGreedy.Overshoot),
			fmt.Sprintf("%d", p.ABG.SettleQ),
			fmt.Sprintf("%d", p.AGreedy.SettleQ),
			fmt.Sprintf("%d", p.ABG.Restarts+p.AGreedy.Restarts),
		)
	}
	return tb.Render(w)
}
