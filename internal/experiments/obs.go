package experiments

import "abg/internal/obs"

// Sweep-level progress counters on the process-wide registry, visible live
// over expvar / the -debug-addr endpoint while a long sweep runs. All are
// atomic, so the parallel runners update them from every CPU.
var (
	sweepSims      = obs.Default.Counter("experiments_sims_total")
	sweepQuanta    = obs.Default.Counter("experiments_quanta_total")
	sweepJobSets   = obs.Default.Counter("experiments_job_sets_total")
	sweepJobs      = obs.Default.Counter("experiments_jobs_total")
	sweepSteps     = obs.Default.Counter("experiments_steps_total")
	sweepWaste     = obs.Default.Counter("experiments_wasted_cycles_total")
	sweepActive    = obs.Default.Gauge("experiments_sims_active")
	sweepSetActive = obs.Default.Gauge("experiments_job_sets_active")
)

// recordSingle accounts one finished single-job simulation.
func recordSingle(numQuanta int, runtime, waste int64) {
	sweepSims.Inc()
	sweepQuanta.Add(int64(numQuanta))
	sweepSteps.Add(runtime)
	sweepWaste.Add(waste)
}

// recordSet accounts one finished multiprogrammed run.
func recordSet(jobs, quantaElapsed int, makespan, waste int64) {
	sweepJobSets.Inc()
	sweepJobs.Add(int64(jobs))
	sweepQuanta.Add(int64(quantaElapsed))
	sweepSteps.Add(makespan)
	sweepWaste.Add(waste)
}
