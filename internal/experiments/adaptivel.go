package experiments

import (
	"fmt"
	"io"

	"abg/internal/alloc"
	"abg/internal/job"
	"abg/internal/parallel"
	"abg/internal/sim"
	"abg/internal/stats"
	"abg/internal/table"
	"abg/internal/workload"
	"abg/internal/xrand"
)

// AdaptiveLResult compares fixed quantum lengths against the dynamic
// quantum-length engine (paper §9 future work, implemented in
// sim.RunSingleAdaptiveL): short quanta track parallelism changes closely
// but cost one feedback action (request calculation + potential
// reallocation) per quantum; long quanta amortise those but respond slowly.
// The adaptive engine should get close to the short-quantum waste with far
// fewer feedback actions.
type AdaptiveLResult struct {
	Modes   []string
	Runtime []float64 // mean T/T∞
	Waste   []float64 // mean W/T1
	Quanta  []float64 // mean number of feedback actions
}

// AdaptiveQuantum runs ABG with fixed L = lMin, fixed L = lMax, and the
// adaptive engine bounded by [lMin, lMax], over random fork-join jobs.
func AdaptiveQuantum(cfg Config, cls []int, jobsPerCL, shrink, lMin, lMax int) (AdaptiveLResult, error) {
	if len(cls) == 0 || jobsPerCL < 1 || lMin < 1 || lMax < lMin {
		return AdaptiveLResult{}, fmt.Errorf("experiments: invalid adaptive-quantum config")
	}
	root := xrand.New(cfg.Seed)
	var profiles []*job.Profile
	for _, cl := range cls {
		for j := 0; j < jobsPerCL; j++ {
			profiles = append(profiles, workload.GenJob(root, workload.ScaledJobParams(cl, cfg.L, shrink)))
		}
	}
	allocator := alloc.NewUnconstrained(cfg.P)
	type mode struct {
		name string
		run  func(p *job.Profile) (sim.SingleResult, error)
	}
	modes := []mode{
		{fmt.Sprintf("fixed L=%d", lMin), func(p *job.Profile) (sim.SingleResult, error) {
			return sim.RunSingle(job.NewRun(p), cfg.abgPolicy(), cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: lMin})
		}},
		{fmt.Sprintf("fixed L=%d", lMax), func(p *job.Profile) (sim.SingleResult, error) {
			return sim.RunSingle(job.NewRun(p), cfg.abgPolicy(), cfg.abgScheduler(),
				allocator, sim.SingleConfig{L: lMax})
		}},
		{fmt.Sprintf("adaptive [%d,%d]", lMin, lMax), func(p *job.Profile) (sim.SingleResult, error) {
			return sim.RunSingleAdaptiveL(job.NewRun(p), cfg.abgPolicy(), cfg.abgScheduler(),
				allocator, sim.AdaptiveLConfig{LMin: lMin, LMax: lMax})
		}},
	}
	res := AdaptiveLResult{}
	for _, m := range modes {
		type out struct{ rt, ws, nq float64 }
		outs, err := parallel.Map(len(profiles), func(i int) (out, error) {
			r, err := m.run(profiles[i])
			if err != nil {
				return out{}, err
			}
			return out{r.NormalizedRuntime(), r.NormalizedWaste(), float64(r.NumQuanta)}, nil
		})
		if err != nil {
			return res, err
		}
		var rt, ws, nq stats.Welford
		for _, o := range outs {
			rt.Add(o.rt)
			ws.Add(o.ws)
			nq.Add(o.nq)
		}
		res.Modes = append(res.Modes, m.name)
		res.Runtime = append(res.Runtime, rt.Mean())
		res.Waste = append(res.Waste, ws.Mean())
		res.Quanta = append(res.Quanta, nq.Mean())
	}
	return res, nil
}

// Render writes the comparison as a table.
func (r AdaptiveLResult) Render(w io.Writer) error {
	tb := table.New("quantum policy", "T/T∞", "W/T1", "feedback actions")
	for i, name := range r.Modes {
		tb.AddRowf(name, r.Runtime[i], r.Waste[i], r.Quanta[i])
	}
	return tb.Render(w)
}
