// Package experiments contains one runner per figure of the paper's
// evaluation (§7), plus the sensitivity sweep of footnote 3 and the ablation
// studies DESIGN.md calls out. Every runner is deterministic given its
// config seed and returns a typed result that can be rendered as an ASCII
// table or exported via abg/internal/trace.
//
// Scale note: the paper's full setup (P=128, L=1000, 50 jobs per transition
// factor 2..100, 5000 job sets) is reproduced by the cmd/abgexp tool and the
// benchmarks in full or reduced form; the runners take explicit size
// parameters so tests can use small instances.
package experiments

import (
	"abg/internal/feedback"
	"abg/internal/sched"
)

// Config carries the machine and scheduler parameters shared by all
// experiments.
type Config struct {
	// Seed drives all workload generation.
	Seed uint64
	// P is the machine size (paper: 128) and L the quantum length
	// (paper: 1000 steps).
	P, L int
	// R is ABG's convergence rate (paper: 0.2).
	R float64
	// Rho and Delta are A-Greedy's multiplicative factor and utilization
	// threshold (paper setup: ρ=2 as stated; δ=0.8 per He et al. [12]).
	Rho, Delta float64
}

// Defaults returns the paper's simulation parameters.
func Defaults() Config {
	return Config{Seed: 2008, P: 128, L: 1000, R: 0.2, Rho: 2, Delta: 0.8}
}

// abgPolicy returns a fresh A-Control policy per job.
func (c Config) abgPolicy() feedback.Policy { return feedback.NewAControl(c.R) }

// agreedyPolicy returns a fresh A-Greedy policy per job.
func (c Config) agreedyPolicy() feedback.Policy { return feedback.NewAGreedy(c.Rho, c.Delta) }

// abgScheduler returns ABG's task scheduler (B-Greedy).
func (c Config) abgScheduler() sched.Scheduler { return sched.BGreedy() }

// agreedyScheduler returns A-Greedy's task scheduler (plain greedy).
func (c Config) agreedyScheduler() sched.Scheduler { return sched.Greedy() }
