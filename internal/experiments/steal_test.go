package experiments

import (
	"strings"
	"testing"
)

func TestStealComparison(t *testing.T) {
	res, err := Steal(testConfig(), []int{8, 16}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedulers) != 4 {
		t.Fatalf("contenders = %d", len(res.Schedulers))
	}
	// Centralized schedulers make no steal attempts; work stealing does.
	if res.StealFrac[0] != 0 || res.StealFrac[1] != 0 {
		t.Fatalf("centralized steal fractions: %v", res.StealFrac)
	}
	if res.StealFrac[2] <= 0 || res.StealFrac[3] <= 0 {
		t.Fatalf("work stealing made no steals: %v", res.StealFrac)
	}
	// Everyone completes with sane normalized metrics.
	for i, rt := range res.Runtime {
		if rt < 1 {
			t.Fatalf("%s: T/T∞ = %v below optimal", res.Schedulers[i], rt)
		}
	}
	// ABG (centralized, breadth-first) never loses to the decentralized
	// executors on runtime in this overhead model.
	if res.Runtime[0] > res.Runtime[2]*1.05 {
		t.Fatalf("ABG %v materially worse than A-Steal %v", res.Runtime[0], res.Runtime[2])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-Steal") {
		t.Fatal("render missing contender")
	}
	if _, err := Steal(testConfig(), nil, 1, 1); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestStealDeterministic(t *testing.T) {
	a, err := Steal(testConfig(), []int{6}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Steal(testConfig(), []int{6}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runtime {
		if a.Runtime[i] != b.Runtime[i] || a.StealFrac[i] != b.StealFrac[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestAdaptiveQuantumExperiment(t *testing.T) {
	res, err := AdaptiveQuantum(testConfig(), []int{5, 20}, 3, 2, 25, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 3 {
		t.Fatalf("modes = %d", len(res.Modes))
	}
	// Feedback actions: fixed LMin uses the most, fixed LMax the fewest,
	// adaptive in between (and below fixed LMin).
	if !(res.Quanta[0] > res.Quanta[2] && res.Quanta[2] > res.Quanta[1]) {
		t.Fatalf("feedback action ordering wrong: %v", res.Quanta)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "adaptive") {
		t.Fatal("render missing adaptive row")
	}
	if _, err := AdaptiveQuantum(testConfig(), nil, 1, 1, 10, 5); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestMixedPopulation(t *testing.T) {
	res, err := Mixed(testConfig(), 6, 1.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sets == 0 {
		t.Fatal("no valid sets")
	}
	// Sanity: ratios are positive and finite.
	for name, v := range map[string]float64{
		"abg-in-mixed": res.ABGInMixed,
		"ag-in-mixed":  res.AGInMixed,
		"vs-abg":       res.MixedVsABG,
		"vs-ag":        res.MixedVsAG,
	} {
		if !(v > 0) || v > 100 {
			t.Fatalf("%s = %v", name, v)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mixed") {
		t.Fatal("render")
	}
	if _, err := Mixed(testConfig(), 0, 1, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOpenSystemSweep(t *testing.T) {
	res, err := OpenSystem(testConfig(), []float64{0.3, 0.8}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loads) != 2 || len(res.Ratio) != 2 {
		t.Fatalf("result sizes: %+v", res)
	}
	// Response grows with offered load for both schedulers.
	if res.ABGResponse[1] <= res.ABGResponse[0] {
		t.Fatalf("ABG response flat across loads: %v", res.ABGResponse)
	}
	if res.AGResponse[1] <= res.AGResponse[0] {
		t.Fatalf("A-Greedy response flat across loads: %v", res.AGResponse)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "offered load") {
		t.Fatal("render")
	}
	if _, err := OpenSystem(testConfig(), nil, 40, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRateStudy(t *testing.T) {
	res, err := RateStudy(testConfig(), []int{10, 30}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 2 {
		t.Fatalf("contenders = %d", len(res.Policies))
	}
	// AutoRate must make the bound applicable far more often than the fixed
	// rate on these high-C_L jobs (fixed r=0.2 needs C_L < 5).
	if res.BoundApplicable[1] <= res.BoundApplicable[0] {
		t.Fatalf("AutoRate applicability %v not above fixed %v",
			res.BoundApplicable[1], res.BoundApplicable[0])
	}
	// Wherever applicable, the bound held.
	if res.BoundApplicable[1] > 0 && res.BoundHeld[1] < 1 {
		t.Fatalf("Theorem 4 violated under AutoRate: held %v", res.BoundHeld[1])
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "AutoRate") {
		t.Fatal("render")
	}
	if _, err := RateStudy(testConfig(), nil, 1, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
