package control_test

import (
	"fmt"

	"abg/internal/control"
)

// ExampleClosedLoopABG derives the paper's Equation (2) closed loop for a
// job of parallelism A=20 and convergence rate r=0.25, and checks Theorem 1
// analytically: the single pole sits at r, the DC gain is 1 (zero
// steady-state error), and the step response carries no overshoot.
func ExampleClosedLoopABG() {
	const A, r = 20.0, 0.25
	k := control.SelfTuningGain(r, A) // K = (1−r)·A
	cl := control.ClosedLoopABG(k, A)

	fmt.Printf("gain K = %.0f\n", k)
	fmt.Printf("pole = %.2f\n", real(cl.Poles()[0]))
	fmt.Printf("stable = %v\n", cl.BIBOStable())
	fmt.Printf("dc gain = %.0f\n", cl.DCGain())

	m := control.Measure(cl.StepResponse(100), 1)
	fmt.Printf("overshoot = %.0f, settles by quantum %d\n", m.MaxOvershoot, m.SettlingTime)
	// Output:
	// gain K = 15
	// pole = 0.25
	// stable = true
	// dc gain = 1
	// overshoot = 0, settles by quantum 3
}
